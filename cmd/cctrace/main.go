// Command cctrace stitches distributed-trace span dumps from N hops into
// per-block waterfalls and a critical-path report. Inputs are JSONL span
// dumps — files written by the daemons' -trace-out flag, or /debug/spans
// URLs fetched live from their -debug planes:
//
//	cctrace pub-spans.jsonl broker-spans.jsonl recv-spans.jsonl
//	cctrace http://127.0.0.1:9984/debug/spans recv-spans.jsonl
//
// Hop clocks are never assumed synchronized: cctrace orders hops causally
// (the stamping hop first, then forwarding hops, then terminals) and
// subtracts a per-hop offset that pins each hop's fastest observed
// hand-off gap at zero — a one-way-delay floor, the best any passive
// observer can do without an RTT estimate. The report then partitions
// every trace's end-to-end latency into (hop, stage) rows — probe, encode,
// queue, write, decode, plus the "wire" and "idle" pseudo-stages — that
// sum exactly to the trace duration, and prints p50/p99 exemplar
// waterfalls.
//
// CI smoke tests assert on the same stitching via -min-hops and -require:
// exit status 1 when fewer than -require traces span at least -min-hops
// distinct hops (and, with -require-anomaly, when no anomaly span — a
// resync, gap, or migration — was captured at all).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"ccx/internal/tracing"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cctrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cctrace", flag.ContinueOnError)
	var (
		minHops    = fs.Int("min-hops", 2, "count a trace as complete when it spans at least this many distinct hops")
		require    = fs.Int("require", 0, "fail (exit 1) unless at least this many complete traces were stitched")
		reqAnomaly = fs.Bool("require-anomaly", false, "fail (exit 1) unless at least one anomaly span (resync, gap, dup, migrate, resume) was captured")
		waterfalls = fs.Int("waterfalls", 2, "render this many exemplar waterfalls (the p50 and p99 traces first)")
		jsonOut    = fs.Bool("json", false, "emit the stitched report as JSON instead of text")
		timeout    = fs.Duration("timeout", 5*time.Second, "per-URL fetch timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("need at least one span dump (file path or /debug/spans URL)")
	}
	var spans []tracing.Span
	for _, src := range fs.Args() {
		ss, err := load(src, *timeout)
		if err != nil {
			return fmt.Errorf("%s: %w", src, err)
		}
		spans = append(spans, ss...)
	}
	rep := tracing.Stitch(spans)
	complete := rep.Complete(*minHops)

	if *jsonOut {
		if err := writeJSON(out, rep, complete, *minHops); err != nil {
			return err
		}
	} else {
		writeText(out, rep, complete, *minHops, *waterfalls)
	}

	if *require > 0 && len(complete) < *require {
		return fmt.Errorf("only %d/%d required traces span >= %d hops", len(complete), *require, *minHops)
	}
	if *reqAnomaly && len(rep.Anomalies) == 0 {
		return fmt.Errorf("no anomaly spans captured (expected at least one resync/gap/migrate/resume)")
	}
	return nil
}

// load reads one span dump: a file path, "-" for stdin, or an http(s) URL.
func load(src string, timeout time.Duration) ([]tracing.Span, error) {
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		cl := &http.Client{Timeout: timeout}
		resp, err := cl.Get(src)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("HTTP %s", resp.Status)
		}
		return tracing.ReadJSONL(resp.Body)
	}
	if src == "-" {
		return tracing.ReadJSONL(os.Stdin)
	}
	f, err := os.Open(src)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return tracing.ReadJSONL(f)
}

// jsonReport is the -json output shape: stable keys, nanosecond integers.
type jsonReport struct {
	Traces    int                 `json:"traces"`
	Complete  int                 `json:"complete"`
	MinHops   int                 `json:"min_hops"`
	Origin    string              `json:"origin,omitempty"`
	Offsets   map[string]int64    `json:"offsets_ns,omitempty"`
	P50Ns     int64               `json:"p50_ns"`
	P99Ns     int64               `json:"p99_ns"`
	Critical  []tracing.StageCost `json:"critical_path"`
	Anomalies []tracing.Span      `json:"anomalies,omitempty"`
}

func writeJSON(w io.Writer, rep *tracing.Report, complete []*tracing.Trace, minHops int) error {
	durs := durations(complete)
	jr := jsonReport{
		Traces:    len(rep.Traces),
		Complete:  len(complete),
		MinHops:   minHops,
		Origin:    rep.Origin,
		Offsets:   rep.Offsets,
		P50Ns:     tracing.Percentile(durs, 50),
		P99Ns:     tracing.Percentile(durs, 99),
		Critical:  aggregate(complete),
		Anomalies: rep.Anomalies,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jr)
}

func writeText(w io.Writer, rep *tracing.Report, complete []*tracing.Trace, minHops, nWater int) {
	durs := durations(complete)
	fmt.Fprintf(w, "stitched %d traces (%d complete across >= %d hops)", len(rep.Traces), len(complete), minHops)
	if rep.Origin != "" {
		fmt.Fprintf(w, ", origin %s", rep.Origin)
	}
	fmt.Fprintln(w)
	if len(rep.Offsets) > 0 {
		hops := make([]string, 0, len(rep.Offsets))
		for h := range rep.Offsets {
			hops = append(hops, h)
		}
		sort.Strings(hops)
		fmt.Fprint(w, "clock offsets:")
		for _, h := range hops {
			fmt.Fprintf(w, "  %s=%s", h, time.Duration(rep.Offsets[h]))
		}
		fmt.Fprintln(w)
	}
	if len(complete) == 0 {
		if len(rep.Anomalies) > 0 {
			writeAnomalies(w, rep.Anomalies)
		}
		return
	}
	fmt.Fprintf(w, "end-to-end latency: p50 %s  p99 %s  (n=%d)\n",
		time.Duration(tracing.Percentile(durs, 50)), time.Duration(tracing.Percentile(durs, 99)), len(durs))

	// Aggregate critical path across complete traces: the share of total
	// end-to-end time each (hop, stage) pair owns.
	agg := aggregate(complete)
	var total int64
	for _, c := range agg {
		total += c.Ns
	}
	fmt.Fprintf(w, "\ncritical path (%d traces, %s total):\n", len(complete), time.Duration(total))
	fmt.Fprintf(w, "  %-12s %-10s %12s %7s\n", "HOP", "STAGE", "TIME", "SHARE")
	for _, c := range agg {
		fmt.Fprintf(w, "  %-12s %-10s %12s %6.1f%%\n",
			c.Hop, c.Stage, time.Duration(c.Ns), 100*float64(c.Ns)/float64(total))
	}

	// Per-placement roll-up, when the traces carry placement decisions.
	byPlacement := make(map[string][]int64)
	for _, t := range complete {
		if pl := t.Placement(); pl != "" {
			byPlacement[pl] = append(byPlacement[pl], t.Duration())
		}
	}
	if len(byPlacement) > 0 {
		pls := make([]string, 0, len(byPlacement))
		for pl := range byPlacement {
			pls = append(pls, pl)
		}
		sort.Strings(pls)
		fmt.Fprintln(w, "\nby placement:")
		for _, pl := range pls {
			d := byPlacement[pl]
			fmt.Fprintf(w, "  %-10s n=%-5d p50 %-12s p99 %s\n",
				pl, len(d), time.Duration(tracing.Percentile(d, 50)), time.Duration(tracing.Percentile(d, 99)))
		}
	}

	// Exemplar waterfalls: the traces closest to p50 and p99, then more by
	// duration if asked for.
	for i, t := range exemplars(complete, durs, nWater) {
		label := "p50"
		if i > 0 {
			label = "p99"
		}
		if i > 1 {
			label = fmt.Sprintf("#%d", i+1)
		}
		fmt.Fprintf(w, "\nwaterfall %s  trace %016x  %s across %s:\n",
			label, t.ID, time.Duration(t.Duration()), strings.Join(t.Hops, " -> "))
		waterfall(w, t)
	}

	if len(rep.Anomalies) > 0 {
		writeAnomalies(w, rep.Anomalies)
	}
}

func writeAnomalies(w io.Writer, anomalies []tracing.Span) {
	fmt.Fprintf(w, "\nanomalies (%d):\n", len(anomalies))
	max := len(anomalies)
	if max > 20 {
		max = 20
	}
	for _, s := range anomalies[len(anomalies)-max:] {
		fmt.Fprintf(w, "  %-10s %-10s seq=%-8d", s.Hop, s.Stage, s.Seq)
		if s.Err != "" {
			fmt.Fprintf(w, " %s", s.Err)
		}
		if s.Stage == tracing.StageMigrate {
			fmt.Fprintf(w, " -> %s/%s", s.Method, s.Placement)
		}
		fmt.Fprintln(w)
	}
	if max < len(anomalies) {
		fmt.Fprintf(w, "  ... %d older elided\n", len(anomalies)-max)
	}
}

// durations collects corrected end-to-end durations.
func durations(traces []*tracing.Trace) []int64 {
	out := make([]int64, 0, len(traces))
	for _, t := range traces {
		out = append(out, t.Duration())
	}
	return out
}

// aggregate sums critical-path attributions across traces, largest first.
func aggregate(traces []*tracing.Trace) []tracing.StageCost {
	type key struct{ hop, stage string }
	acc := make(map[key]int64)
	for _, t := range traces {
		for _, c := range t.Attribution() {
			acc[key{c.Hop, c.Stage}] += c.Ns
		}
	}
	out := make([]tracing.StageCost, 0, len(acc))
	for k, ns := range acc {
		out = append(out, tracing.StageCost{Hop: k.hop, Stage: k.stage, Ns: ns})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ns != out[j].Ns {
			return out[i].Ns > out[j].Ns
		}
		return out[i].Hop+out[i].Stage < out[j].Hop+out[j].Stage
	})
	return out
}

// exemplars picks up to n traces: the ones realizing the p50 and p99
// durations first, then the rest slowest-first.
func exemplars(traces []*tracing.Trace, durs []int64, n int) []*tracing.Trace {
	if n <= 0 || len(traces) == 0 {
		return nil
	}
	byDur := func(target int64) *tracing.Trace {
		var best *tracing.Trace
		for _, t := range traces {
			if best == nil || abs(t.Duration()-target) < abs(best.Duration()-target) {
				best = t
			}
		}
		return best
	}
	seen := make(map[uint64]bool)
	var out []*tracing.Trace
	for _, target := range []int64{tracing.Percentile(durs, 50), tracing.Percentile(durs, 99)} {
		if t := byDur(target); t != nil && !seen[t.ID] && len(out) < n {
			seen[t.ID] = true
			out = append(out, t)
		}
	}
	rest := append([]*tracing.Trace(nil), traces...)
	sort.Slice(rest, func(i, j int) bool { return rest[i].Duration() > rest[j].Duration() })
	for _, t := range rest {
		if len(out) >= n {
			break
		}
		if !seen[t.ID] {
			seen[t.ID] = true
			out = append(out, t)
		}
	}
	return out
}

func abs(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// waterfall renders one trace's spans as left-aligned bars on a shared
// time axis, one row per span, in corrected start order.
func waterfall(w io.Writer, t *tracing.Trace) {
	const width = 48
	start, dur := t.Start(), t.Duration()
	if dur <= 0 {
		dur = 1
	}
	for _, s := range t.Spans {
		off := int(float64(s.Start-start) / float64(dur) * width)
		bar := int(float64(s.Dur) / float64(dur) * width)
		if off > width {
			off = width
		}
		if bar < 1 {
			bar = 1
		}
		if off+bar > width {
			bar = width - off
			if bar < 1 {
				bar = 1
				off = width - 1
			}
		}
		lane := strings.Repeat(" ", off) + strings.Repeat("#", bar) + strings.Repeat(" ", width-off-bar)
		detail := ""
		if s.Method != "" {
			detail = " " + s.Method
		}
		if s.CacheHit {
			detail += " (cache)"
		}
		fmt.Fprintf(w, "  %-10s %-10s |%s| %10s @ %-10s%s\n",
			s.Hop, s.Stage, lane, time.Duration(s.Dur), time.Duration(s.Start-start), detail)
	}
}
