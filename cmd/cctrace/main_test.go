package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ccx/internal/tracing"
)

// writeDump writes spans as one hop's JSONL dump and returns its path.
func writeDump(t *testing.T, name string, spans []tracing.Span) string {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			t.Fatal(err)
		}
	}
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// synthetic three-hop dumps: a publisher with skew 0, a broker whose clock
// runs 5µs ahead, a receiver 9µs ahead. Two traces.
func dumps(t *testing.T) (pub, brk, rcv string) {
	t.Helper()
	var pubS, brkS, rcvS []tracing.Span
	for i, id := range []uint64{0xA1, 0xA2} {
		base := int64(1_000_000 + i*100_000)
		// The second trace's frames sit 700ns longer on each wire: after the
		// one-way-delay floor correction (which pins the first trace's
		// hand-off gaps at zero) that surplus must surface as "wire" time.
		jitter := int64(i) * 700
		pubS = append(pubS,
			tracing.Span{Trace: id, Seq: uint64(i + 1), Hop: "ccsend", Stage: tracing.StageStamp, Start: base},
			tracing.Span{Trace: id, Seq: uint64(i + 1), Hop: "ccsend", Stage: tracing.StageEncode, Start: base + 100, Dur: 400, Method: "lz"},
			tracing.Span{Trace: id, Seq: uint64(i + 1), Hop: "ccsend", Stage: tracing.StageWrite, Start: base + 500, Dur: 200},
		)
		brkS = append(brkS,
			tracing.Span{Trace: id, Seq: uint64(i + 1), Hop: "ccbroker", Stage: tracing.StageDecode, Start: base + 5800 + jitter},
			tracing.Span{Trace: id, Seq: uint64(i + 1), Hop: "ccbroker", Stage: tracing.StageQueue, Start: base + 5800 + jitter, Dur: 300},
			tracing.Span{Trace: id, Seq: uint64(i + 1), Hop: "ccbroker", Stage: tracing.StageWrite, Start: base + 6100 + jitter, Dur: 150},
		)
		rcvS = append(rcvS,
			tracing.Span{Trace: id, Seq: uint64(i + 1), Hop: "ccrecv", Stage: tracing.StageDecode, Start: base + 9400 + 2*jitter, Dur: 250, Method: "lz"},
		)
	}
	brkS = append(brkS, tracing.Span{Hop: "ccbroker", Stage: tracing.StageResync, Start: 999, Err: "checksum mismatch", Anomaly: true})
	return writeDump(t, "pub.jsonl", pubS), writeDump(t, "brk.jsonl", brkS), writeDump(t, "rcv.jsonl", rcvS)
}

func TestStitchThreeDumps(t *testing.T) {
	pub, brk, rcv := dumps(t)
	var out bytes.Buffer
	err := run([]string{"-min-hops", "3", "-require", "2", "-require-anomaly", pub, brk, rcv}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"2 complete", "origin ccsend", "critical path", "wire", "waterfall", "resync", "checksum mismatch"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
	// Causal hop order must survive into the waterfall header.
	if !strings.Contains(text, "ccsend -> ccbroker -> ccrecv") {
		t.Fatalf("hop order wrong:\n%s", text)
	}
}

func TestJSONReportSharesSumToDuration(t *testing.T) {
	pub, brk, rcv := dumps(t)
	var out bytes.Buffer
	if err := run([]string{"-json", "-min-hops", "3", pub, brk, rcv}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	var jr jsonReport
	if err := json.Unmarshal(out.Bytes(), &jr); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if jr.Complete != 2 || jr.Origin != "ccsend" {
		t.Fatalf("report = %+v", jr)
	}
	// Critical-path rows partition total end-to-end time: their sum equals
	// the sum of all complete trace durations.
	var sum int64
	for _, c := range jr.Critical {
		sum += c.Ns
	}
	if sum <= 0 {
		t.Fatalf("critical path sums to %d", sum)
	}
	if len(jr.Anomalies) != 1 {
		t.Fatalf("anomalies = %d", len(jr.Anomalies))
	}
}

func TestRequireFailsOnIncompleteTraces(t *testing.T) {
	pub, _, _ := dumps(t)
	var out bytes.Buffer
	if err := run([]string{"-min-hops", "3", "-require", "1", pub}, &out); err == nil {
		t.Fatal("single-hop dump satisfied a 3-hop requirement")
	}
}
