package main

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"ccx/internal/metrics"
	"ccx/internal/obs"
)

// TestFetchAndRender drives the sampling pipeline against a real obs debug
// server: fill a registry the way a broker would, poll /debug/vars twice,
// and check the rendered line carries the deltas.
func TestFetchAndRender(t *testing.T) {
	reg := metrics.NewRegistry()
	srv, err := obs.Serve("127.0.0.1:0", reg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &http.Client{Timeout: time.Second}
	url := "http://" + srv.Addr().String() + "/debug/vars"

	blocks := reg.Counter("ccx.tx_blocks")
	sizes := reg.Histogram("ccx.tx_block_bytes", metrics.SizeBuckets)
	wires := reg.Histogram("ccx.tx_wire_bytes", metrics.SizeBuckets)
	lz := reg.Counter("ccx.tx_method.lz")
	raw := reg.Counter("ccx.tx_method.none")
	reg.Gauge("broker.subscribers").Set(3)
	reg.Gauge("broker.shards").Set(4)
	wvBatches := reg.Counter("broker.writev_batches")
	wvFrames := reg.Counter("broker.writev_frames")
	encodes := reg.Counter("encplane.encodes")
	deliveries := reg.Counter("encplane.deliveries")
	hits := reg.Counter("encplane.cache_hits")
	misses := reg.Counter("encplane.cache_misses")
	reg.Gauge("chan.md.classes").Set(2)
	reg.Gauge("chan.audit.classes").Set(1)
	reg.Counter("governor.samples").Inc()
	reg.Gauge("governor.level").Set(1)
	demoted := reg.Counter("governor.demoted_blocks")
	shed := reg.Counter("governor.shed_evictions")

	prev, err := fetchVars(client, url)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		blocks.Inc()
		sizes.Observe(64 << 10)
		wires.Observe(16 << 10)
		lz.Inc()
	}
	blocks.Inc()
	sizes.Observe(64 << 10)
	wires.Observe(64 << 10)
	raw.Inc()
	encodes.Add(4)
	deliveries.Add(12)
	hits.Add(3)
	misses.Add(1)
	demoted.Add(5)
	shed.Add(2)
	wvBatches.Add(4)
	wvFrames.Add(14)
	cur, err := fetchVars(client, url)
	if err != nil {
		t.Fatal(err)
	}

	line := renderLine(time.Unix(0, 0).UTC(), prev, cur, time.Second)
	t.Logf("line: %s", line)
	for _, want := range []string{
		"blk    11 (11.0/s)", "[lz=10 none=1]", "subs 3",
		"shards 4", "wv 3.5x",
		"cls 3", "dedup 3.0x", "hit 75%",
		"prs elev", "dem 5", "shed 2",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
	// 11 * 64KiB original vs 10*16KiB + 64KiB wire = 224KiB/704KiB ≈ 31.8%.
	if !strings.Contains(line, "31.8%") {
		t.Errorf("line %q missing wire ratio 31.8%%", line)
	}

	// A second idle interval renders zero rates without dividing by missing
	// keys or showing stale mixes.
	idle := renderLine(time.Unix(1, 0).UTC(), cur, cur, time.Second)
	if strings.Contains(idle, "[") || !strings.Contains(idle, "(0.0/s)") {
		t.Errorf("idle line %q should have zero rate and no method mix", idle)
	}
}

// TestFetchVarsErrors pins the failure modes an operator actually hits:
// nothing listening, and a non-vars endpoint.
func TestFetchVarsErrors(t *testing.T) {
	client := &http.Client{Timeout: 200 * time.Millisecond}
	if _, err := fetchVars(client, "http://127.0.0.1:1/debug/vars"); err == nil {
		t.Error("want error when nothing is listening")
	}
	srv, err := obs.Serve("127.0.0.1:0", metrics.NewRegistry(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := fetchVars(client, "http://"+srv.Addr().String()+"/nope"); err == nil {
		t.Error("want error on a 404 endpoint")
	}
}
