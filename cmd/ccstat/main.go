// Command ccstat is the operator's view of a running ccx process: point it
// at a daemon's -debug address and it polls /debug/vars, printing one line
// per interval with the rates that matter — blocks and bytes per second,
// wire ratio, the method mix the adaptation loop is currently choosing,
// queue pressure, and corruption counts.
//
//	ccbroker -listen :9981 -channels md -debug 127.0.0.1:9984 &
//	ccstat -addr 127.0.0.1:9984
//	15:04:05  blk    48 (12.0/s)  data 1.5 MB/s  wire 490 kB/s ( 31.9%)  [lz=10 none=2]  subs 3  cls 2  dedup 1.5x  hit 72%
//
// Broker endpoints additionally render the shared encode plane's health:
// "cls" is the live method-class count, "dedup" the interval's deliveries
// per encode (fan-out width the plane served per compression), and "hit"
// the frame-cache hit rate.
//
// It works against any of ccbroker, ccsend, and ccrecv: the line renders
// whichever of the tx/rx/broker metric families the endpoint exposes and
// omits the rest.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ccstat:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("ccstat", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:9984", "debug address of a ccx process started with -debug")
		interval = fs.Duration("interval", time.Second, "seconds between samples")
		count    = fs.Int("n", 0, "stop after this many lines (0 = run until interrupted)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := &http.Client{Timeout: *interval}
	url := "http://" + *addr + "/debug/vars"

	prev, err := fetchVars(client, url)
	if err != nil {
		return err
	}
	// An absolute ticker, not Sleep: Sleep(interval) after each fetch adds
	// the fetch+render time to every cycle, so lines drift late and the
	// "per second" rates (divided by the nominal interval) overshoot.
	// Rates divide by the true elapsed time between fetches instead.
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	prevAt := time.Now()
	for printed := 0; *count == 0 || printed < *count; printed++ {
		<-ticker.C
		cur, err := fetchVars(client, url)
		if err != nil {
			return err
		}
		now := time.Now()
		fmt.Fprintln(out, renderLine(now, prev, cur, now.Sub(prevAt)))
		prev, prevAt = cur, now
	}
	return nil
}

// fetchVars pulls the flat JSON snapshot a ccx -debug endpoint serves at
// /debug/vars.
func fetchVars(client *http.Client, url string) (map[string]float64, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var vars map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		return nil, fmt.Errorf("decode %s: %w", url, err)
	}
	return vars, nil
}

// renderLine condenses one polling interval into a single status line.
// Every segment is optional: a segment renders only when the endpoint
// exposes its metric family, so the same code reads sender, receiver, and
// broker endpoints.
func renderLine(now time.Time, prev, cur map[string]float64, dt time.Duration) string {
	delta := func(key string) float64 { return cur[key] - prev[key] }
	secs := dt.Seconds()

	var seg []string
	seg = append(seg, now.Format("15:04:05"))

	blocks := cur["ccx.tx_blocks"] + cur["ccx.rx_blocks"]
	blockRate := (delta("ccx.tx_blocks") + delta("ccx.rx_blocks")) / secs
	seg = append(seg, fmt.Sprintf("blk %5.0f (%.1f/s)", blocks, blockRate))

	data := delta("ccx.tx_block_bytes.sum") + delta("ccx.rx_block_bytes.sum")
	wire := delta("ccx.tx_wire_bytes.sum") + delta("ccx.rx_wire_bytes.sum")
	if data > 0 {
		seg = append(seg, fmt.Sprintf("data %s", rate(data, secs)),
			fmt.Sprintf("wire %s (%5.1f%%)", rate(wire, secs), wire/data*100))
	}
	if mix := methodMix(prev, cur); mix != "" {
		seg = append(seg, mix)
	}
	// Compression placement: where the interval's blocks were (or will be)
	// compressed. Brokers expose per-class delivery counts, senders the
	// per-block placement decisions; either renders as e.g.
	// "plc[publisher=40 receiver=8]", and the segment disappears entirely on
	// endpoints (or intervals) without placement activity.
	if plc := placementMix(prev, cur); plc != "" {
		seg = append(seg, plc)
	}
	if subs, ok := cur["broker.subscribers"]; ok {
		seg = append(seg, fmt.Sprintf("subs %.0f", subs))
	}
	// Sharded core: event-loop count and the interval's vectored-write
	// coalescing (frames per writev batch — 1.0x means every frame went out
	// alone, higher means fan-out backlogs are being batched onto the wire).
	if shards, ok := cur["broker.shards"]; ok {
		seg = append(seg, fmt.Sprintf("shards %.0f", shards))
		if batches := delta("broker.writev_batches"); batches > 0 {
			seg = append(seg, fmt.Sprintf("wv %.1fx", delta("broker.writev_frames")/batches))
		}
	}
	// Overload governor: the current pressure level, plus the interval's
	// degradation activity (demoted blocks, shed subscribes/evictions,
	// breaker trips) when any occurred. Only endpoints running a governor
	// expose governor.samples, so the segment vanishes elsewhere.
	if _, ok := cur["governor.samples"]; ok {
		seg = append(seg, fmt.Sprintf("prs %s", pressureName(cur["governor.level"])))
		for _, c := range [...]struct{ key, label string }{
			{"governor.demoted_blocks", "dem"},
			{"governor.shed_subscribes", "refused"},
			{"governor.shed_evictions", "shed"},
			{"governor.breaker_trips", "brk"},
		} {
			if d := delta(c.key); d > 0 {
				seg = append(seg, fmt.Sprintf("%s %.0f", c.label, d))
			}
		}
	}
	// Runtime health: goroutine count (leak canary), from the obs plane's
	// built-in runtime sampler.
	if gor, ok := cur["go.goroutines"]; ok {
		seg = append(seg, fmt.Sprintf("gor %.0f", gor))
	}
	// Shared encode plane: live class count across channels, the interval's
	// encode-dedup ratio (deliveries per encode — the encode-once payoff),
	// and the frame-cache hit rate feeding replays and migrations.
	if _, ok := cur["encplane.encodes"]; ok {
		var classes float64
		for key, v := range cur {
			if strings.HasPrefix(key, "chan.") && strings.HasSuffix(key, ".classes") {
				classes += v
			}
		}
		seg = append(seg, fmt.Sprintf("cls %.0f", classes))
		if enc := delta("encplane.encodes"); enc > 0 {
			seg = append(seg, fmt.Sprintf("dedup %.1fx", delta("encplane.deliveries")/enc))
		}
		if hits, misses := delta("encplane.cache_hits"), delta("encplane.cache_misses"); hits+misses > 0 {
			seg = append(seg, fmt.Sprintf("hit %.0f%%", hits/(hits+misses)*100))
		}
	}
	for _, c := range [...]struct{ key, label string }{
		{"broker.drops", "drops"},
		{"broker.evictions", "evict"},
		{"ccx.rx_corrupt_frames", "corrupt"},
		{"ccx.tx_fallbacks", "fallback"},
	} {
		if cur[c.key] > 0 {
			seg = append(seg, fmt.Sprintf("%s %.0f", c.label, cur[c.key]))
		}
	}
	if p99, ok := cur["broker.queue_wait_seconds.p99"]; ok {
		seg = append(seg, fmt.Sprintf("q.p99 %s", time.Duration(p99*float64(time.Second)).Round(10*time.Microsecond)))
	}
	return strings.Join(seg, "  ")
}

// methodMix summarizes which compression methods the interval's blocks
// used, e.g. "[lz=10 none=2]". Sender endpoints expose ccx.tx_method.*,
// receivers ccx.rx_method.*; the busier family wins.
func methodMix(prev, cur map[string]float64) string {
	for _, prefix := range []string{"ccx.tx_method.", "ccx.rx_method."} {
		type mc struct {
			name string
			n    float64
		}
		var mix []mc
		for key, v := range cur {
			if d := v - prev[key]; strings.HasPrefix(key, prefix) && d > 0 {
				mix = append(mix, mc{strings.TrimPrefix(key, prefix), d})
			}
		}
		if len(mix) == 0 {
			continue
		}
		sort.Slice(mix, func(i, j int) bool {
			if mix[i].n != mix[j].n {
				return mix[i].n > mix[j].n
			}
			return mix[i].name < mix[j].name
		})
		parts := make([]string, len(mix))
		for i, m := range mix {
			parts[i] = fmt.Sprintf("%s=%.0f", m.name, m.n)
		}
		return "[" + strings.Join(parts, " ") + "]"
	}
	return ""
}

// placementMix summarizes where the interval's blocks were compressed,
// e.g. "plc[publisher=40 receiver=8]". Broker endpoints expose
// encplane.placement.* (per-class deliveries), senders ccx.tx_placement.*
// (per-block decisions); the busier family wins, matching methodMix.
func placementMix(prev, cur map[string]float64) string {
	for _, prefix := range []string{"encplane.placement.", "ccx.tx_placement."} {
		type pc struct {
			name string
			n    float64
		}
		var mix []pc
		for key, v := range cur {
			if d := v - prev[key]; strings.HasPrefix(key, prefix) && d > 0 {
				mix = append(mix, pc{strings.TrimPrefix(key, prefix), d})
			}
		}
		if len(mix) == 0 {
			continue
		}
		sort.Slice(mix, func(i, j int) bool {
			if mix[i].n != mix[j].n {
				return mix[i].n > mix[j].n
			}
			return mix[i].name < mix[j].name
		})
		parts := make([]string, len(mix))
		for i, p := range mix {
			parts[i] = fmt.Sprintf("%s=%.0f", p.name, p.n)
		}
		return "plc[" + strings.Join(parts, " ") + "]"
	}
	return ""
}

// pressureName maps the governor.level gauge to the short operator name.
func pressureName(level float64) string {
	switch level {
	case 0:
		return "ok"
	case 1:
		return "elev"
	case 2:
		return "crit"
	}
	return fmt.Sprintf("lvl%d", int(level))
}

// rate renders bytes-per-interval as a human bytes/s figure.
func rate(bytes, secs float64) string {
	bps := bytes / secs
	switch {
	case bps >= 1e6:
		return fmt.Sprintf("%.1f MB/s", bps/1e6)
	case bps >= 1e3:
		return fmt.Sprintf("%.1f kB/s", bps/1e3)
	default:
		return fmt.Sprintf("%.0f B/s", bps)
	}
}
