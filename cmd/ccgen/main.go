// Command ccgen emits the synthetic datasets used throughout the
// reproduction: OIS transactions, XML documents, PBIO-serialized molecular
// dynamics frames, low-entropy and random control streams, and the MBone
// load trace.
//
// Usage:
//
//	ccgen -kind ois -size 4194304 -out txns.dat
//	ccgen -kind molecular -size 1048576 | ccsend -addr host:9900
//	ccgen -kind mbone -out load.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ccx/internal/datagen"
	"ccx/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ccgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ccgen", flag.ContinueOnError)
	var (
		kind       = fs.String("kind", "ois", "ois | xml | molecular | lowentropy | random | mbone")
		size       = fs.Int("size", 4<<20, "output size in bytes (record-rounded for molecular)")
		seed       = fs.Int64("seed", 1, "generator seed")
		out        = fs.String("out", "", "output file (default stdout)")
		repetition = fs.Float64("repetition", 0.9, "ois: string-repetition knob in [0,1]")
		alphabet   = fs.Int("alphabet", 4, "lowentropy: alphabet cardinality")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var dst io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	var data []byte
	switch *kind {
	case "ois":
		data = datagen.OISTransactions(*size, *repetition, *seed)
	case "xml":
		data = datagen.XMLDocuments(*size, *seed)
	case "molecular":
		recSize := datagen.MolecularFormat().RecordSize()
		n := *size / recSize
		if n < 1 {
			n = 1
		}
		atoms := datagen.Molecular(n, *seed)
		var err error
		data, err = datagen.MolecularBatch(atoms)
		if err != nil {
			return err
		}
	case "lowentropy":
		data = datagen.LowEntropy(*size, *alphabet, *seed)
	case "random":
		data = datagen.Random(*size, *seed)
	case "mbone":
		return trace.MBoneSynthetic(*seed).Format(dst)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	_, err := dst.Write(data)
	return err
}
