package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ccx/internal/datagen"
	"ccx/internal/trace"
)

func genToFile(t *testing.T, args ...string) []byte {
	t.Helper()
	out := filepath.Join(t.TempDir(), "out.dat")
	if err := run(append(args, "-out", out)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestGenOIS(t *testing.T) {
	data := genToFile(t, "-kind", "ois", "-size", "5000", "-seed", "3")
	if len(data) != 5000 {
		t.Fatalf("size = %d", len(data))
	}
	if !strings.Contains(string(data), "TXN") {
		t.Fatal("not OIS shaped")
	}
}

func TestGenXML(t *testing.T) {
	data := genToFile(t, "-kind", "xml", "-size", "4000")
	if len(data) != 4000 || !strings.Contains(string(data), "<txn") {
		t.Fatalf("bad xml output (%d bytes)", len(data))
	}
}

func TestGenMolecular(t *testing.T) {
	data := genToFile(t, "-kind", "molecular", "-size", "10000")
	rec := datagen.MolecularFormat().RecordSize()
	if len(data)%rec != 0 || len(data) == 0 {
		t.Fatalf("size %d not a record multiple of %d", len(data), rec)
	}
}

func TestGenControls(t *testing.T) {
	low := genToFile(t, "-kind", "lowentropy", "-size", "1000", "-alphabet", "2")
	for _, b := range low {
		if b > 1 {
			t.Fatalf("alphabet violation: %d", b)
		}
	}
	rnd := genToFile(t, "-kind", "random", "-size", "1000")
	if len(rnd) != 1000 {
		t.Fatalf("size = %d", len(rnd))
	}
}

func TestGenMBoneTrace(t *testing.T) {
	data := genToFile(t, "-kind", "mbone", "-seed", "5")
	tr, err := trace.Parse(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Duration().Seconds() != 160 {
		t.Fatalf("duration = %v", tr.Duration())
	}
}

func TestGenUnknownKind(t *testing.T) {
	if err := run([]string{"-kind", "nope"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestGenDeterministic(t *testing.T) {
	a := genToFile(t, "-kind", "ois", "-size", "2000", "-seed", "9")
	b := genToFile(t, "-kind", "ois", "-size", "2000", "-seed", "9")
	if string(a) != string(b) {
		t.Fatal("same seed differs")
	}
}
