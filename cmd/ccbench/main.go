// Command ccbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ccbench -fig fig8            # one experiment
//	ccbench -fig all             # everything, in paper order
//	ccbench -fig conclusion -scale 8 -seed 1
//
// Reported durations are paper-equivalent virtual seconds (see the scaling
// model in internal/experiments); -scale trades fidelity of time series
// against wall-clock cost, -quick is a preset for smoke runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ccx/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ccbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ccbench", flag.ContinueOnError)
	var (
		fig          = fs.String("fig", "all", "experiment id (fig1..fig12, conclusion) or 'all'")
		scale        = fs.Float64("scale", 0, "time-scale divisor K (default 8)")
		seed         = fs.Int64("seed", 0, "random seed (default 1)")
		traceSeconds = fs.Float64("trace-seconds", 0, "MBone scenario length (default 160)")
		dataBytes    = fs.Int("data-bytes", 0, "microbenchmark dataset size (default 4 MiB)")
		quick        = fs.Bool("quick", false, "fast smoke-run preset")
		list         = fs.Bool("list", false, "list experiment ids and exit")
		format       = fs.String("format", "text", "output format: text | csv")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("%-12s %s\n", r.ID, r.Title)
		}
		return nil
	}
	opts := experiments.Options{
		TimeScale:    *scale,
		Seed:         *seed,
		TraceSeconds: *traceSeconds,
		DataBytes:    *dataBytes,
	}
	if *quick {
		q := experiments.Quick()
		if opts.TimeScale == 0 {
			opts.TimeScale = q.TimeScale
		}
		if opts.TraceSeconds == 0 {
			opts.TraceSeconds = q.TraceSeconds
		}
		if opts.DataBytes == 0 {
			opts.DataBytes = q.DataBytes
		}
	}
	ids := []string{strings.TrimSpace(*fig)}
	if ids[0] == "all" {
		ids = ids[:0]
		for _, r := range experiments.Registry() {
			ids = append(ids, r.ID)
		}
	}
	for i, id := range ids {
		if i > 0 {
			fmt.Println()
		}
		report, err := experiments.Run(id, opts)
		if err != nil {
			return err
		}
		switch *format {
		case "text":
			err = report.Render(os.Stdout)
		case "csv":
			err = report.RenderCSV(os.Stdout)
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
