package main

import (
	"testing"
)

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "fig99"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestUnknownFormat(t *testing.T) {
	if err := run([]string{"-fig", "fig7", "-format", "yaml"}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestQuickFigureTextAndCSV(t *testing.T) {
	// fig7 is the cheapest experiment (pure trace rendering).
	if err := run([]string{"-fig", "fig7", "-quick"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fig", "fig7", "-quick", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
