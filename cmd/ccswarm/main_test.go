package main

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"ccx/internal/metrics"
)

// TestQuantilesMatchMetricsExposition pins the report's percentile source
// to the /metrics surface: the swarm histogram is registered on the broker
// registry under metrics.SwarmLatencyName with the shared LatencyBuckets,
// so a quantile computed from the Prometheus exposition's bucket counts
// must agree with the report's snapshot quantile to within the width of
// the bucket the value lands in (bucket interpolation is the only slack).
func TestQuantilesMatchMetricsExposition(t *testing.T) {
	reg := metrics.NewRegistry()
	lat := reg.Histogram(metrics.SwarmLatencyName, metrics.LatencyBuckets)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		// Log-uniform over ~50µs..500ms, the realistic swarm latency span.
		lat.Observe(50e-6 * math.Pow(10, rng.Float64()*4))
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	scraped := parsePromHistogram(t, buf.String(), "swarm_latency_seconds")

	direct := lat.Snapshot()
	for _, q := range []float64{0.50, 0.90, 0.99} {
		want := direct.Quantile(q)
		got := scraped.Quantile(q)
		if math.IsNaN(want) || math.IsNaN(got) {
			t.Fatalf("q%.0f: NaN quantile (direct %v, scraped %v)", q*100, want, got)
		}
		if diff := math.Abs(got - want); diff > bucketWidthAt(direct.Bounds, want) {
			t.Errorf("q%.0f: scraped %.6f vs report %.6f differ by %.6f, over one bucket width",
				q*100, got, want, diff)
		}
	}
}

// parsePromHistogram rebuilds a histogram snapshot from the exposition
// text, the way a scraper would see it.
func parsePromHistogram(t *testing.T, text, name string) metrics.HistogramSnapshot {
	t.Helper()
	var s metrics.HistogramSnapshot
	var cum []int64
	for _, line := range strings.Split(text, "\n") {
		switch {
		case strings.HasPrefix(line, name+"_bucket{le=\""):
			rest := strings.TrimPrefix(line, name+"_bucket{le=\"")
			idx := strings.Index(rest, "\"}")
			if idx < 0 {
				t.Fatalf("malformed bucket line %q", line)
			}
			boundStr, countStr := rest[:idx], strings.TrimSpace(rest[idx+2:])
			n, err := strconv.ParseInt(countStr, 10, 64)
			if err != nil {
				t.Fatalf("bucket count in %q: %v", line, err)
			}
			cum = append(cum, n)
			if boundStr != "+Inf" {
				b, err := strconv.ParseFloat(boundStr, 64)
				if err != nil {
					t.Fatalf("bucket bound in %q: %v", line, err)
				}
				s.Bounds = append(s.Bounds, b)
			}
		case strings.HasPrefix(line, name+"_count "):
			n, err := strconv.ParseInt(strings.Fields(line)[1], 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			s.Count = n
		}
	}
	if len(cum) == 0 {
		t.Fatalf("histogram %s not found in exposition:\n%s", name, text)
	}
	// Exposition buckets are cumulative; Snapshot counts are per-bucket.
	s.Counts = make([]int64, len(cum))
	for i, c := range cum {
		s.Counts[i] = c
		if i > 0 {
			s.Counts[i] -= cum[i-1]
		}
	}
	return s
}

// bucketWidthAt returns the width of the bucket containing v.
func bucketWidthAt(bounds []float64, v float64) float64 {
	lo := 0.0
	for _, b := range bounds {
		if v <= b {
			return b - lo
		}
		lo = b
	}
	return math.Inf(1)
}

// TestTieredRunAndBaselineGate drives a tiny end-to-end sweep through
// run(): two tiers publish over unshaped pipes, the JSON artifact carries
// both tiers, a self-baseline passes the p99 gate, and a fabricated
// too-fast baseline fails it with a comparison artifact either way.
func TestTieredRunAndBaselineGate(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "swarm.json")
	var out bytes.Buffer
	args := []string{
		"-tiers", "4,8", "-events", "6", "-block", "1024",
		"-profiles", "none", "-queue", "32", "-shards", "2",
		"-json", jsonPath,
	}
	if err := run(args, &out); err != nil {
		t.Fatalf("tiered run: %v\n%s", err, out.String())
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc swarmFile
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Tiers) != 2 || doc.Tiers[0].Subscribers != 4 || doc.Tiers[1].Subscribers != 8 {
		t.Fatalf("artifact tiers = %+v, want subscriber tiers 4 and 8", doc.Tiers)
	}
	for _, r := range doc.Tiers {
		if want := int64(r.Subscribers * r.Events); r.Delivered != want {
			t.Errorf("tier %d delivered %d blocks, want %d", r.Subscribers, r.Delivered, want)
		}
		if r.Shards != 2 {
			t.Errorf("tier %d ran on %d shards, want 2", r.Subscribers, r.Shards)
		}
		if math.IsNaN(r.LatencyP99) || r.LatencyP99 <= 0 {
			t.Errorf("tier %d p99 = %v, want a positive latency", r.Subscribers, r.LatencyP99)
		}
	}
	if !strings.Contains(out.String(), "connections") {
		t.Error("multi-tier run printed no connections-vs-latency table")
	}

	// Self-baseline: the same machine re-running the same tiny tiers stays
	// within any sane regression budget.
	comparePath := filepath.Join(dir, "cmp.json")
	out.Reset()
	gateArgs := []string{
		"-tiers", "4,8", "-events", "6", "-block", "1024",
		"-profiles", "none", "-queue", "32", "-shards", "2",
		"-baseline", jsonPath, "-max-regress", "20", "-compare", comparePath,
	}
	if err := run(gateArgs, &out); err != nil {
		t.Fatalf("self-baseline gate: %v\n%s", err, out.String())
	}
	if _, err := os.Stat(comparePath); err != nil {
		t.Fatalf("comparison artifact missing: %v", err)
	}

	// A baseline claiming near-zero p99 must fail the gate, and the
	// comparison artifact is still written before the failure surfaces.
	fast := swarmFile{Tiers: doc.Tiers}
	fastTiers := make([]report, len(doc.Tiers))
	copy(fastTiers, doc.Tiers)
	for i := range fastTiers {
		fastTiers[i].LatencyP99 = 1e-12
	}
	fast.Tiers = fastTiers
	fastPath := filepath.Join(dir, "fast.json")
	enc, _ := json.Marshal(fast)
	if err := os.WriteFile(fastPath, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	failCompare := filepath.Join(dir, "fail-cmp.json")
	out.Reset()
	failArgs := []string{
		"-tiers", "4", "-events", "6", "-block", "1024",
		"-profiles", "none", "-queue", "32", "-shards", "2",
		"-baseline", fastPath, "-compare", failCompare,
	}
	err = run(failArgs, &out)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("impossible baseline: err = %v, want p99 regression failure", err)
	}
	raw, err = os.ReadFile(failCompare)
	if err != nil {
		t.Fatalf("failure-path comparison artifact missing: %v", err)
	}
	var cmp struct {
		Tiers []tierComparison `json:"tiers"`
	}
	if err := json.Unmarshal(raw, &cmp); err != nil {
		t.Fatal(err)
	}
	if len(cmp.Tiers) != 1 || cmp.Tiers[0].Pass {
		t.Fatalf("comparison rows = %+v, want one failing tier", cmp.Tiers)
	}
}
