// Command ccswarm is the subscriber-swarm load harness: it runs an
// in-process broker, attaches thousands of fake subscribers over simulated
// links, publishes a block stream, and reports end-to-end delivery latency
// percentiles alongside the shared encode plane's dedup counters.
//
// Its purpose is to demonstrate the encode-once property: broker encode CPU
// scales with the number of *distinct compression methods* in use, not with
// subscriber count. With 10 000 subscribers spread over a handful of link
// profiles, the plane performs a few encodes per block while making tens of
// thousands of deliveries — the "dedup" ratio in the report.
//
//	ccswarm -subs 10000 -events 64 -block 32768 -profiles gigabit,slow1m
//	ccswarm -tiers 1000,10000,100000 -json swarm.json
//	ccswarm -tiers 1000,10000 -baseline bench/swarm_baseline.json -compare cmp.json
//
// Each published block carries a nanosecond timestamp in its first eight
// bytes; every subscriber stamps arrival on decode, so the latency
// histogram measures publish→decode across queueing, (shared) encoding, the
// shaped link, and decompression. The histogram is registered on the
// broker's own metric registry (swarm.latency_seconds), and the report's
// percentiles are computed from that same histogram — the JSON artifact and
// a /metrics scrape cannot disagree. -tiers sweeps subscriber counts and
// prints a connections-vs-latency table; -baseline compares each tier's p99
// against a committed reference and fails the run past -max-regress
// (-compare writes the comparison as a JSON artifact either way). -json
// writes the full report; -min-dedup makes the run fail when
// deliveries/encodes drops below the floor, turning the scaling claim into
// an executable assertion.
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ccx/internal/broker"
	"ccx/internal/codec"
	"ccx/internal/metrics"
	"ccx/internal/netsim"
	"ccx/internal/selector"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ccswarm:", err)
		os.Exit(1)
	}
}

// report is the machine-readable summary of one tier (-json).
type report struct {
	Subscribers int     `json:"subscribers"`
	Events      int     `json:"events"`
	BlockBytes  int     `json:"block_bytes"`
	Profiles    string  `json:"profiles"`
	Workers     int     `json:"workers"`
	Shards      int     `json:"shards"`
	ElapsedSec  float64 `json:"elapsed_sec"`

	Delivered   int64   `json:"delivered_blocks"`
	Encodes     int64   `json:"plane_encodes"`
	Deliveries  int64   `json:"plane_deliveries"`
	Dedup       float64 `json:"dedup_ratio"` // deliveries per encode
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	EncodeCPU   float64 `json:"encode_cpu_sec"` // summed encode latency
	Classes     int64   `json:"classes"`

	// Placement is the broker-side default placement the run used, and
	// PlacementDeliveries breaks plane deliveries down by the placement of
	// the class they served (only non-zero placements appear).
	Placement           string           `json:"placement"`
	PlacementDeliveries map[string]int64 `json:"placement_deliveries,omitempty"`

	LatencyP50 float64 `json:"latency_p50_sec"`
	LatencyP90 float64 `json:"latency_p90_sec"`
	LatencyP99 float64 `json:"latency_p99_sec"`
}

// swarmFile is the multi-tier artifact shape; it doubles as the committed
// baseline format (bench/swarm_baseline.json).
type swarmFile struct {
	Tiers []report `json:"tiers"`
}

// tierComparison is one row of the regression-gate artifact (-compare).
type tierComparison struct {
	Subscribers int     `json:"subscribers"`
	BaselineP99 float64 `json:"baseline_p99_sec"`
	CurrentP99  float64 `json:"current_p99_sec"`
	Ratio       float64 `json:"ratio"`
	Pass        bool    `json:"pass"`
}

// tierOptions is everything one tier's broker lifecycle needs.
type tierOptions struct {
	subs     int
	events   int
	block    int
	interval time.Duration
	profiles string
	profs    []*netsim.Profile
	workers  int
	queue    int
	shards   int
	pol      broker.Policy
	pl       selector.Placement
	seed     int64
	drain    time.Duration
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ccswarm", flag.ContinueOnError)
	var (
		subs       = fs.Int("subs", 1000, "number of concurrent fake subscribers")
		tiers      = fs.String("tiers", "", "comma-separated subscriber tiers swept in one run (overrides -subs)")
		events     = fs.Int("events", 64, "blocks to publish")
		block      = fs.Int("block", 32<<10, "published block size in bytes")
		interval   = fs.Duration("interval", 0, "gap between publishes (0 = as fast as the broker accepts)")
		profiles   = fs.String("profiles", "gigabit", "comma-separated link profiles assigned round-robin: gigabit | fast100 | slow1m | international | none")
		workers    = fs.Int("workers", 0, "encode plane worker pool (0 = GOMAXPROCS)")
		queue      = fs.Int("queue", 1024, "outbound queue per subscriber, in events")
		shards     = fs.Int("shards", 0, "broker channel event loops (0 = GOMAXPROCS, 1 = single-loop reference)")
		policy     = fs.String("policy", "drop", "slow-subscriber policy: drop | evict")
		placemnt   = fs.String("placement", "publisher", "broker-side default compression placement for the swarm's paths: publisher | broker | receiver | auto")
		seed       = fs.Int64("seed", 1, "payload and link-jitter seed")
		jsonPath   = fs.String("json", "", `write the JSON report here ("-" = stdout)`)
		minDedup   = fs.Float64("min-dedup", 0, "fail the run when deliveries/encodes falls below this floor (0 disables)")
		baseline   = fs.String("baseline", "", "compare each tier's p99 against this committed swarm baseline")
		maxRegress = fs.Float64("max-regress", 0.15, "allowed fractional p99 regression against -baseline before the run fails")
		compare    = fs.String("compare", "", `write the baseline-comparison artifact here ("-" = stdout)`)
		drain      = fs.Duration("drain", 2*time.Minute, "graceful-shutdown drain budget")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *subs < 1 || *events < 1 || *block < 16 {
		return fmt.Errorf("need -subs >= 1, -events >= 1, -block >= 16")
	}
	profs, err := parseProfiles(*profiles)
	if err != nil {
		return err
	}
	pol, err := broker.ParsePolicy(*policy)
	if err != nil {
		return err
	}
	pl, err := selector.ParsePlacement(*placemnt)
	if err != nil {
		return err
	}
	tierSubs := []int{*subs}
	if *tiers != "" {
		tierSubs = tierSubs[:0]
		for _, part := range strings.Split(*tiers, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				return fmt.Errorf("bad -tiers entry %q", part)
			}
			tierSubs = append(tierSubs, n)
		}
	}

	results := make([]report, 0, len(tierSubs))
	for _, n := range tierSubs {
		o := tierOptions{
			subs: n, events: *events, block: *block, interval: *interval,
			profiles: *profiles, profs: profs, workers: *workers,
			queue: *queue, shards: *shards, pol: pol, pl: pl,
			seed: *seed, drain: *drain,
		}
		r, err := runTier(o)
		if err != nil {
			return fmt.Errorf("tier %d: %w", n, err)
		}
		printTier(out, r)
		if *minDedup > 0 && r.Dedup < *minDedup {
			return fmt.Errorf("tier %d: dedup ratio %.1f below floor %.1f: encode sharing regressed", n, r.Dedup, *minDedup)
		}
		results = append(results, r)
	}
	if len(results) > 1 {
		fmt.Fprintf(out, "\n%-12s %9s %9s %9s %8s\n", "connections", "p50(ms)", "p90(ms)", "p99(ms)", "dedup")
		for _, r := range results {
			fmt.Fprintf(out, "%-12d %9.1f %9.1f %9.1f %7.1fx\n",
				r.Subscribers, r.LatencyP50*1e3, r.LatencyP90*1e3, r.LatencyP99*1e3, r.Dedup)
		}
	}

	if *jsonPath != "" {
		var doc any = swarmFile{Tiers: results}
		if len(results) == 1 && *tiers == "" {
			doc = results[0] // single-run shape, for older tooling
		}
		if err := writeJSON(out, *jsonPath, doc); err != nil {
			return err
		}
	}
	if *baseline != "" {
		if err := gateAgainstBaseline(out, results, *baseline, *maxRegress, *compare); err != nil {
			return err
		}
	}
	return nil
}

// runTier runs one complete broker lifecycle at a fixed subscriber count.
func runTier(o tierOptions) (report, error) {
	met := metrics.NewRegistry()
	cfg := broker.Config{
		Channels:  []string{"swarm"},
		QueueLen:  o.queue,
		Policy:    o.pol,
		Placement: o.pl,
		Shards:    o.shards,
		Heartbeat: -1, // deterministic streams
		Metrics:   met,
	}
	cfg.Engine.Selector = selector.DefaultConfig()
	cfg.Engine.Selector.BlockSize = o.block
	cfg.Engine.Workers = o.workers
	if cfg.Engine.Workers <= 0 {
		cfg.Engine.Workers = runtime.GOMAXPROCS(0)
	}
	b, err := broker.New(cfg)
	if err != nil {
		return report{}, err
	}

	// The swarm: each subscriber handshakes over its own (optionally shaped)
	// pipe and decodes frames until the broker hangs up, folding the
	// publish→decode latency of every block into the broker registry's own
	// swarm histogram — the single source for both the report percentiles
	// below and a /metrics scrape.
	lat := met.Histogram(metrics.SwarmLatencyName, metrics.LatencyBuckets)
	delivered := met.Counter(metrics.SwarmDeliveredName)
	met.Gauge(metrics.SwarmSubscribersName).Set(int64(o.subs))
	reg := codec.NewRegistry()
	done := make(chan struct{})
	for i := 0; i < o.subs; i++ {
		var client, server net.Conn
		if p := o.profs[i%len(o.profs)]; p != nil {
			client, server = netsim.ShapedPipe(*p, o.seed+int64(i))
		} else {
			client, server = net.Pipe()
		}
		b.HandleConn(server)
		if err := broker.HandshakeSubscribe(client, "swarm"); err != nil {
			return report{}, fmt.Errorf("subscriber %d handshake: %w", i, err)
		}
		go func(conn net.Conn) {
			defer func() { done <- struct{}{} }()
			defer conn.Close()
			fr := codec.NewFrameReader(conn, reg)
			for {
				data, _, err := fr.ReadBlock()
				if err != nil {
					return
				}
				if len(data) < 8 {
					continue // heartbeat or runt
				}
				stamp := int64(binary.BigEndian.Uint64(data[:8]))
				lat.Observe(time.Duration(time.Now().UnixNano() - stamp).Seconds())
				delivered.Inc()
			}
		}(client)
	}
	fmt.Fprintf(os.Stderr, "ccswarm: %d subscribers attached (%s), publishing %d x %d B\n",
		o.subs, o.profiles, o.events, o.block)

	start := time.Now()
	payload := make([]byte, o.block)
	fillCompressible(payload, o.seed)
	for i := 0; i < o.events; i++ {
		binary.BigEndian.PutUint64(payload[:8], uint64(time.Now().UnixNano()))
		if err := b.Publish("swarm", payload); err != nil {
			return report{}, fmt.Errorf("publish %d: %w", i, err)
		}
		if o.interval > 0 {
			time.Sleep(o.interval)
		}
	}
	// Snapshot the class structure while the swarm is still attached;
	// Shutdown dismantles every membership and zeroes the gauge.
	classes := met.Gauge("chan.swarm.classes").Value()
	ctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		return report{}, fmt.Errorf("shutdown: %w", err)
	}
	for i := 0; i < o.subs; i++ {
		<-done
	}
	elapsed := time.Since(start)

	snap := lat.Snapshot()
	r := report{
		Subscribers: o.subs,
		Events:      o.events,
		BlockBytes:  o.block,
		Profiles:    o.profiles,
		Workers:     cfg.Engine.Workers,
		Shards:      int(met.Gauge("broker.shards").Value()),
		ElapsedSec:  elapsed.Seconds(),
		Delivered:   delivered.Value(),
		Encodes:     met.Counter("encplane.encodes").Value(),
		Deliveries:  met.Counter("encplane.deliveries").Value(),
		CacheHits:   met.Counter("encplane.cache_hits").Value(),
		CacheMisses: met.Counter("encplane.cache_misses").Value(),
		EncodeCPU:   met.Histogram("encplane.encode_seconds", metrics.LatencyBuckets).Sum(),
		Classes:     classes,
		Placement:   o.pl.String(),
		LatencyP50:  snap.Quantile(0.50),
		LatencyP90:  snap.Quantile(0.90),
		LatencyP99:  snap.Quantile(0.99),
	}
	if r.Encodes > 0 {
		r.Dedup = float64(r.Deliveries) / float64(r.Encodes)
	}
	for p := selector.Placement(0); p < selector.NumPlacements; p++ {
		if n := met.Counter(fmt.Sprintf("encplane.placement.%s", p)).Value(); n > 0 {
			if r.PlacementDeliveries == nil {
				r.PlacementDeliveries = make(map[string]int64)
			}
			r.PlacementDeliveries[p.String()] = n
		}
	}
	return r, nil
}

// printTier renders one tier's human-readable summary.
func printTier(out io.Writer, r report) {
	fmt.Fprintf(out, "subs=%d events=%d block=%dB elapsed=%.2fs placement=%s shards=%d\n",
		r.Subscribers, r.Events, r.BlockBytes, r.ElapsedSec, r.Placement, r.Shards)
	fmt.Fprintf(out, "delivered=%d encodes=%d deliveries=%d dedup=%.1fx classes=%d cache=%d/%d encode_cpu=%.3fs\n",
		r.Delivered, r.Encodes, r.Deliveries, r.Dedup, r.Classes, r.CacheHits, r.CacheHits+r.CacheMisses, r.EncodeCPU)
	if len(r.PlacementDeliveries) > 0 {
		var parts []string
		for p := selector.Placement(0); p < selector.NumPlacements; p++ {
			if n, ok := r.PlacementDeliveries[p.String()]; ok {
				parts = append(parts, fmt.Sprintf("%s=%d", p, n))
			}
		}
		fmt.Fprintf(out, "placement deliveries: %s\n", strings.Join(parts, " "))
	}
	fmt.Fprintf(out, "latency p50=%.1fms p90=%.1fms p99=%.1fms\n",
		r.LatencyP50*1e3, r.LatencyP90*1e3, r.LatencyP99*1e3)
}

// gateAgainstBaseline compares each tier's p99 against the committed
// baseline and fails on regressions past the allowed fraction. The
// comparison is written as a JSON artifact (when requested) before any
// failure is reported, so CI uploads the evidence either way.
func gateAgainstBaseline(out io.Writer, results []report, path string, maxRegress float64, comparePath string) error {
	base, err := loadBaseline(path)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	byTier := make(map[int]report, len(base))
	for _, r := range base {
		byTier[r.Subscribers] = r
	}
	var rows []tierComparison
	matched := 0
	failed := 0
	for _, r := range results {
		br, ok := byTier[r.Subscribers]
		if !ok {
			continue
		}
		matched++
		row := tierComparison{
			Subscribers: r.Subscribers,
			BaselineP99: br.LatencyP99,
			CurrentP99:  r.LatencyP99,
		}
		switch {
		case math.IsNaN(r.LatencyP99) || r.LatencyP99 <= 0:
			row.Pass = false // a tier that delivered nothing is a regression
		case br.LatencyP99 <= 0 || math.IsNaN(br.LatencyP99):
			row.Pass = true // no meaningful reference; record but do not gate
		default:
			row.Ratio = r.LatencyP99 / br.LatencyP99
			row.Pass = row.Ratio <= 1+maxRegress
		}
		if !row.Pass {
			failed++
		}
		rows = append(rows, row)
		status := "ok"
		if !row.Pass {
			status = "REGRESSION"
		}
		fmt.Fprintf(out, "gate tier %d: p99 %.1fms vs baseline %.1fms (%.2fx, limit %.2fx) %s\n",
			r.Subscribers, row.CurrentP99*1e3, row.BaselineP99*1e3, row.Ratio, 1+maxRegress, status)
	}
	if comparePath != "" {
		doc := struct {
			MaxRegress float64          `json:"max_regress"`
			Tiers      []tierComparison `json:"tiers"`
		}{maxRegress, rows}
		if err := writeJSON(out, comparePath, doc); err != nil {
			return err
		}
	}
	if matched == 0 {
		return fmt.Errorf("baseline %s has no tier matching this run", path)
	}
	if failed > 0 {
		return fmt.Errorf("swarm p99 regression: %d of %d gated tiers over the %.0f%% limit", failed, matched, maxRegress*100)
	}
	return nil
}

// loadBaseline reads a swarm baseline, accepting both the multi-tier
// wrapper and a bare single-run report.
func loadBaseline(path string) ([]report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f swarmFile
	if err := json.Unmarshal(raw, &f); err == nil && len(f.Tiers) > 0 {
		return f.Tiers, nil
	}
	var r report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, err
	}
	if r.Subscribers == 0 {
		return nil, fmt.Errorf("no tiers found")
	}
	return []report{r}, nil
}

// writeJSON writes doc as indented JSON to path ("-" = out).
func writeJSON(out io.Writer, path string, doc any) error {
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if path == "-" {
		_, err = out.Write(enc)
	} else {
		err = os.WriteFile(path, enc, 0o644)
	}
	return err
}

// parseProfiles maps the -profiles list to netsim profiles; nil entries mean
// an unshaped in-memory pipe.
func parseProfiles(s string) ([]*netsim.Profile, error) {
	var out []*netsim.Profile
	for _, name := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "gigabit", "1gbit":
			p := netsim.Gigabit
			out = append(out, &p)
		case "fast100", "100mbit":
			p := netsim.Fast100
			out = append(out, &p)
		case "slow1m", "1mbit":
			p := netsim.Slow1M
			out = append(out, &p)
		case "international", "wan":
			p := netsim.International
			out = append(out, &p)
		case "none", "pipe":
			out = append(out, nil)
		case "":
		default:
			return nil, fmt.Errorf("unknown profile %q", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("need at least one link profile in -profiles")
	}
	return out, nil
}

// fillCompressible fills b (past the 8-byte timestamp slot) with seeded
// text-like data so the selector has something worth compressing.
func fillCompressible(b []byte, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	const words = "the quick brown fox jumps over the lazy dog while market data ticks stream onward "
	for i := 8; i < len(b); {
		n := copy(b[i:], words[rng.Intn(len(words)/2):])
		i += n
	}
}
