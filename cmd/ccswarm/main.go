// Command ccswarm is the subscriber-swarm load harness: it runs an
// in-process broker, attaches thousands of fake subscribers over simulated
// links, publishes a block stream, and reports end-to-end delivery latency
// percentiles alongside the shared encode plane's dedup counters.
//
// Its purpose is to demonstrate the encode-once property: broker encode CPU
// scales with the number of *distinct compression methods* in use, not with
// subscriber count. With 10 000 subscribers spread over a handful of link
// profiles, the plane performs a few encodes per block while making tens of
// thousands of deliveries — the "dedup" ratio in the report.
//
//	ccswarm -subs 10000 -events 64 -block 32768 -profiles gigabit,slow1m
//	ccswarm -subs 1000 -json swarm.json -min-dedup 10
//
// Each published block carries a nanosecond timestamp in its first eight
// bytes; every subscriber stamps arrival on decode, so the latency
// histogram measures publish→decode across queueing, (shared) encoding, the
// shaped link, and decompression. -json writes the full report as a JSON
// artifact (CI uploads it); -min-dedup makes the run fail when
// deliveries/encodes drops below the floor, turning the scaling claim into
// an executable assertion.
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ccx/internal/broker"
	"ccx/internal/codec"
	"ccx/internal/metrics"
	"ccx/internal/netsim"
	"ccx/internal/selector"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ccswarm:", err)
		os.Exit(1)
	}
}

// report is the machine-readable run summary (-json).
type report struct {
	Subscribers int     `json:"subscribers"`
	Events      int     `json:"events"`
	BlockBytes  int     `json:"block_bytes"`
	Profiles    string  `json:"profiles"`
	Workers     int     `json:"workers"`
	ElapsedSec  float64 `json:"elapsed_sec"`

	Delivered   int64   `json:"delivered_blocks"`
	Encodes     int64   `json:"plane_encodes"`
	Deliveries  int64   `json:"plane_deliveries"`
	Dedup       float64 `json:"dedup_ratio"` // deliveries per encode
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	EncodeCPU   float64 `json:"encode_cpu_sec"` // summed encode latency
	Classes     int64   `json:"classes"`

	// Placement is the broker-side default placement the run used, and
	// PlacementDeliveries breaks plane deliveries down by the placement of
	// the class they served (only non-zero placements appear).
	Placement           string           `json:"placement"`
	PlacementDeliveries map[string]int64 `json:"placement_deliveries,omitempty"`

	LatencyP50 float64 `json:"latency_p50_sec"`
	LatencyP90 float64 `json:"latency_p90_sec"`
	LatencyP99 float64 `json:"latency_p99_sec"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ccswarm", flag.ContinueOnError)
	var (
		subs     = fs.Int("subs", 1000, "number of concurrent fake subscribers")
		events   = fs.Int("events", 64, "blocks to publish")
		block    = fs.Int("block", 32<<10, "published block size in bytes")
		interval = fs.Duration("interval", 0, "gap between publishes (0 = as fast as the broker accepts)")
		profiles = fs.String("profiles", "gigabit", "comma-separated link profiles assigned round-robin: gigabit | fast100 | slow1m | international | none")
		workers  = fs.Int("workers", 0, "encode plane worker pool (0 = GOMAXPROCS)")
		queue    = fs.Int("queue", 1024, "outbound queue per subscriber, in events")
		policy   = fs.String("policy", "drop", "slow-subscriber policy: drop | evict")
		placemnt = fs.String("placement", "publisher", "broker-side default compression placement for the swarm's paths: publisher | broker | receiver | auto")
		seed     = fs.Int64("seed", 1, "payload and link-jitter seed")
		jsonPath = fs.String("json", "", `write the JSON report here ("-" = stdout)`)
		minDedup = fs.Float64("min-dedup", 0, "fail the run when deliveries/encodes falls below this floor (0 disables)")
		drain    = fs.Duration("drain", 2*time.Minute, "graceful-shutdown drain budget")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *subs < 1 || *events < 1 || *block < 16 {
		return fmt.Errorf("need -subs >= 1, -events >= 1, -block >= 16")
	}
	profs, err := parseProfiles(*profiles)
	if err != nil {
		return err
	}
	pol, err := broker.ParsePolicy(*policy)
	if err != nil {
		return err
	}
	pl, err := selector.ParsePlacement(*placemnt)
	if err != nil {
		return err
	}

	cfg := broker.Config{
		Channels:  []string{"swarm"},
		QueueLen:  *queue,
		Policy:    pol,
		Placement: pl,
		Heartbeat: -1, // deterministic streams
		Metrics:   metrics.NewRegistry(),
	}
	cfg.Engine.Selector = selector.DefaultConfig()
	cfg.Engine.Selector.BlockSize = *block
	cfg.Engine.Workers = *workers
	if cfg.Engine.Workers <= 0 {
		cfg.Engine.Workers = runtime.GOMAXPROCS(0)
	}
	b, err := broker.New(cfg)
	if err != nil {
		return err
	}

	// The swarm: each subscriber handshakes over its own (optionally shaped)
	// pipe and decodes frames until the broker hangs up, folding the
	// publish→decode latency of every block into a shared histogram.
	lat := metrics.NewHistogram(metrics.LatencyBuckets)
	var delivered atomic.Int64
	reg := codec.NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < *subs; i++ {
		var client, server net.Conn
		if p := profs[i%len(profs)]; p != nil {
			client, server = netsim.ShapedPipe(*p, *seed+int64(i))
		} else {
			client, server = net.Pipe()
		}
		b.HandleConn(server)
		if err := broker.HandshakeSubscribe(client, "swarm"); err != nil {
			return fmt.Errorf("subscriber %d handshake: %w", i, err)
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			fr := codec.NewFrameReader(conn, reg)
			for {
				data, _, err := fr.ReadBlock()
				if err != nil {
					return
				}
				if len(data) < 8 {
					continue // heartbeat or runt
				}
				stamp := int64(binary.BigEndian.Uint64(data[:8]))
				lat.Observe(time.Duration(time.Now().UnixNano() - stamp).Seconds())
				delivered.Add(1)
			}
		}(client)
	}
	fmt.Fprintf(os.Stderr, "ccswarm: %d subscribers attached (%s), publishing %d x %d B\n",
		*subs, *profiles, *events, *block)

	start := time.Now()
	payload := make([]byte, *block)
	fillCompressible(payload, *seed)
	for i := 0; i < *events; i++ {
		binary.BigEndian.PutUint64(payload[:8], uint64(time.Now().UnixNano()))
		if err := b.Publish("swarm", payload); err != nil {
			return fmt.Errorf("publish %d: %w", i, err)
		}
		if *interval > 0 {
			time.Sleep(*interval)
		}
	}
	// Snapshot the class structure while the swarm is still attached;
	// Shutdown dismantles every membership and zeroes the gauge.
	classes := b.Metrics().Gauge("chan.swarm.classes").Value()
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	wg.Wait()
	elapsed := time.Since(start)

	met := b.Metrics()
	snap := lat.Snapshot()
	r := report{
		Subscribers: *subs,
		Events:      *events,
		BlockBytes:  *block,
		Profiles:    *profiles,
		Workers:     cfg.Engine.Workers,
		ElapsedSec:  elapsed.Seconds(),
		Delivered:   delivered.Load(),
		Encodes:     met.Counter("encplane.encodes").Value(),
		Deliveries:  met.Counter("encplane.deliveries").Value(),
		CacheHits:   met.Counter("encplane.cache_hits").Value(),
		CacheMisses: met.Counter("encplane.cache_misses").Value(),
		EncodeCPU:   met.Histogram("encplane.encode_seconds", metrics.LatencyBuckets).Sum(),
		Classes:     classes,
		Placement:   pl.String(),
		LatencyP50:  snap.Quantile(0.50),
		LatencyP90:  snap.Quantile(0.90),
		LatencyP99:  snap.Quantile(0.99),
	}
	if r.Encodes > 0 {
		r.Dedup = float64(r.Deliveries) / float64(r.Encodes)
	}
	for p := selector.Placement(0); p < selector.NumPlacements; p++ {
		if n := met.Counter(fmt.Sprintf("encplane.placement.%s", p)).Value(); n > 0 {
			if r.PlacementDeliveries == nil {
				r.PlacementDeliveries = make(map[string]int64)
			}
			r.PlacementDeliveries[p.String()] = n
		}
	}

	fmt.Fprintf(out, "subs=%d events=%d block=%dB elapsed=%.2fs placement=%s\n",
		r.Subscribers, r.Events, r.BlockBytes, r.ElapsedSec, r.Placement)
	fmt.Fprintf(out, "delivered=%d encodes=%d deliveries=%d dedup=%.1fx classes=%d cache=%d/%d encode_cpu=%.3fs\n",
		r.Delivered, r.Encodes, r.Deliveries, r.Dedup, r.Classes, r.CacheHits, r.CacheHits+r.CacheMisses, r.EncodeCPU)
	if len(r.PlacementDeliveries) > 0 {
		var parts []string
		for p := selector.Placement(0); p < selector.NumPlacements; p++ {
			if n, ok := r.PlacementDeliveries[p.String()]; ok {
				parts = append(parts, fmt.Sprintf("%s=%d", p, n))
			}
		}
		fmt.Fprintf(out, "placement deliveries: %s\n", strings.Join(parts, " "))
	}
	fmt.Fprintf(out, "latency p50=%.1fms p90=%.1fms p99=%.1fms\n",
		r.LatencyP50*1e3, r.LatencyP90*1e3, r.LatencyP99*1e3)

	if *jsonPath != "" {
		enc, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return err
		}
		enc = append(enc, '\n')
		if *jsonPath == "-" {
			_, err = out.Write(enc)
		} else {
			err = os.WriteFile(*jsonPath, enc, 0o644)
		}
		if err != nil {
			return err
		}
	}
	if *minDedup > 0 && r.Dedup < *minDedup {
		return fmt.Errorf("dedup ratio %.1f below floor %.1f: encode sharing regressed", r.Dedup, *minDedup)
	}
	return nil
}

// parseProfiles maps the -profiles list to netsim profiles; nil entries mean
// an unshaped in-memory pipe.
func parseProfiles(s string) ([]*netsim.Profile, error) {
	var out []*netsim.Profile
	for _, name := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "gigabit", "1gbit":
			p := netsim.Gigabit
			out = append(out, &p)
		case "fast100", "100mbit":
			p := netsim.Fast100
			out = append(out, &p)
		case "slow1m", "1mbit":
			p := netsim.Slow1M
			out = append(out, &p)
		case "international", "wan":
			p := netsim.International
			out = append(out, &p)
		case "none", "pipe":
			out = append(out, nil)
		case "":
		default:
			return nil, fmt.Errorf("unknown profile %q", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("need at least one link profile in -profiles")
	}
	return out, nil
}

// fillCompressible fills b (past the 8-byte timestamp slot) with seeded
// text-like data so the selector has something worth compressing.
func fillCompressible(b []byte, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	const words = "the quick brown fox jumps over the lazy dog while market data ticks stream onward "
	for i := 8; i < len(b); {
		n := copy(b[i:], words[rng.Intn(len(words)/2):])
		i += n
	}
}
