// Command ccrecv receives an adaptive compressed stream from ccsend and
// writes the reconstructed bytes to a file or stdout.
//
// Usage:
//
//	ccrecv -listen :9900 -out copy.dat
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"

	"ccx/internal/codec"
	"ccx/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ccrecv:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ccrecv", flag.ContinueOnError)
	var (
		listen  = fs.String("listen", "127.0.0.1:9900", "listen address")
		out     = fs.String("out", "", "output file (default stdout)")
		verbose = fs.Bool("v", false, "log every received block")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var dst io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(os.Stderr, "listening on %s\n", ln.Addr())
	conn, err := ln.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()

	var blocks, wire, orig int64
	methods := make(map[codec.Method]int64)
	r := core.NewReader(conn, nil, func(info codec.BlockInfo) {
		blocks++
		wire += int64(info.CompLen)
		orig += int64(info.OrigLen)
		methods[info.Method]++
		if *verbose {
			fmt.Fprintf(os.Stderr, "block %d: %-15s %7d -> %7d bytes\n",
				blocks-1, info.Method, info.CompLen, info.OrigLen)
		}
	})
	if _, err := io.Copy(dst, r); err != nil && err != io.EOF {
		return err
	}
	fmt.Fprintf(os.Stderr, "received %d blocks, %d wire bytes -> %d bytes", blocks, wire, orig)
	for m, n := range methods {
		fmt.Fprintf(os.Stderr, "  %s=%d", m, n)
	}
	fmt.Fprintln(os.Stderr)
	return nil
}
