// Command ccrecv receives an adaptive compressed stream and writes the
// reconstructed bytes to a file or stdout. It either listens for one ccsend
// connection (the default) or — with -addr and -channel — dials a ccbroker
// and subscribes to an event channel.
//
// Usage:
//
//	ccrecv -listen :9900 -out copy.dat
//
//	ccrecv -addr host:9981 -channel md -out copy.dat   # broker subscriber
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"ccx/internal/broker"
	"ccx/internal/codec"
	"ccx/internal/core"
	"ccx/internal/netutil"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ccrecv:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ccrecv", flag.ContinueOnError)
	var (
		listen  = fs.String("listen", "127.0.0.1:9900", "listen address")
		addr    = fs.String("addr", "", "dial a ccbroker at this address instead of listening")
		channel = fs.String("channel", "", "broker channel to subscribe to (requires -addr)")
		out     = fs.String("out", "", "output file (default stdout)")
		timeout = fs.Duration("timeout", 0, "dial timeout and per-operation I/O deadline (0 = none)")
		verbose = fs.Bool("v", false, "log every received block")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*addr == "") != (*channel == "") {
		return fmt.Errorf("-addr and -channel go together")
	}
	var dst io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}

	var conn net.Conn
	if *addr != "" {
		var err error
		if *timeout > 0 {
			conn, err = net.DialTimeout("tcp", *addr, *timeout)
		} else {
			conn, err = net.Dial("tcp", *addr)
		}
		if err != nil {
			return err
		}
		defer conn.Close()
		if err := broker.HandshakeSubscribe(netutil.WithTimeout(conn, *timeout), *channel); err != nil {
			return fmt.Errorf("subscribe to %q: %w", *channel, err)
		}
		fmt.Fprintf(os.Stderr, "subscribed to %q on %s\n", *channel, *addr)
		// Ping so a broker enforcing read deadlines keeps us attached even
		// when the channel is quiet; any bytes count, we send empty frames.
		pingDone := make(chan struct{})
		defer close(pingDone)
		go func() {
			ping, _, err := codec.AppendFrame(nil, nil, codec.None, nil)
			if err != nil {
				return
			}
			ticker := time.NewTicker(2 * time.Second)
			defer ticker.Stop()
			for {
				select {
				case <-pingDone:
					return
				case <-ticker.C:
					if _, err := conn.Write(ping); err != nil {
						return
					}
				}
			}
		}()
	} else {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "listening on %s\n", ln.Addr())
		conn, err = ln.Accept()
		if err != nil {
			return err
		}
		defer conn.Close()
	}

	var blocks, wire, orig int64
	methods := make(map[codec.Method]int64)
	r := core.NewReader(netutil.WithTimeout(conn, *timeout), nil, func(info codec.BlockInfo) {
		blocks++
		wire += int64(info.CompLen)
		orig += int64(info.OrigLen)
		methods[info.Method]++
		if *verbose {
			fmt.Fprintf(os.Stderr, "block %d: %-15s %7d -> %7d bytes\n",
				blocks-1, info.Method, info.CompLen, info.OrigLen)
		}
	})
	if _, err := io.Copy(dst, r); err != nil && err != io.EOF {
		return err
	}
	fmt.Fprintf(os.Stderr, "received %d blocks, %d wire bytes -> %d bytes", blocks, wire, orig)
	for m, n := range methods {
		fmt.Fprintf(os.Stderr, "  %s=%d", m, n)
	}
	fmt.Fprintln(os.Stderr)
	return nil
}
