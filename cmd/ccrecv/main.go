// Command ccrecv receives an adaptive compressed stream and writes the
// reconstructed bytes to a file or stdout. It either listens for one ccsend
// connection (the default) or — with -addr and -channel — dials a ccbroker
// and subscribes to an event channel.
//
// Usage:
//
//	ccrecv -listen :9900 -out copy.dat
//
//	ccrecv -addr host:9981 -channel md -out copy.dat   # broker subscriber
//
// Against unreliable links, -resync skips frames that fail their checksum
// and realigns on the next frame boundary instead of aborting, and
// -reconnect N (broker mode) redials with capped exponential backoff after
// transport errors.
//
// With -resume the subscription survives those reconnects without losing
// or repeating data: the receiver tracks the per-channel sequence numbers
// the broker stamps into frames and, on redial, presents the last sequence
// it delivered contiguously. The broker replays everything newer from its
// bounded replay window; if the window no longer reaches back far enough
// the gap is reported explicitly (stderr, metrics, decision trace) — never
// silently skipped. -watchdog D treats a connection that delivers no bytes
// for D as dead, turning a stalled-but-open link into a reconnect instead
// of an indefinite hang:
//
//	ccrecv -addr host:9981 -channel md -out copy.dat \
//	    -reconnect 10 -resume -watchdog 30s
//
// Observability: -debug serves Prometheus /metrics, the JSON /debug/vars
// snapshot, the /debug/decisions per-block trace (including skipped
// corrupt frames), and /debug/pprof over HTTP; -metrics-interval dumps
// JSON snapshots to stderr. Both are off by default and cost nothing when
// off.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"ccx/internal/broker"
	"ccx/internal/codec"
	"ccx/internal/core"
	"ccx/internal/metrics"
	"ccx/internal/netutil"
	"ccx/internal/obs"
	"ccx/internal/selector"
	"ccx/internal/tracing"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ccrecv:", err)
		os.Exit(1)
	}
}

// recvStats accumulates across connections so a reconnecting subscriber
// reports one combined summary.
type recvStats struct {
	blocks, wire, orig, corrupt int64
	methods                     map[codec.Method]int64
}

func run(args []string) error {
	fs := flag.NewFlagSet("ccrecv", flag.ContinueOnError)
	var (
		listen    = fs.String("listen", "127.0.0.1:9900", "listen address")
		addr      = fs.String("addr", "", "dial a ccbroker at this address instead of listening")
		channel   = fs.String("channel", "", "broker channel to subscribe to (requires -addr)")
		out       = fs.String("out", "", "output file (default stdout)")
		timeout   = fs.Duration("timeout", 0, "dial timeout and per-operation I/O deadline (0 = none)")
		resync    = fs.Bool("resync", false, "skip frames that fail their checksum and realign on the next frame boundary")
		reconnect = fs.Int("reconnect", 0, "broker mode: redial up to N times after a transport error (0 = give up)")
		resume    = fs.Bool("resume", false, "broker mode: resume across reconnects — present the last delivered sequence so the broker replays missed blocks and duplicates are suppressed")
		placement = fs.String("placement", "", "broker mode: advertise a compression placement for this subscription (publisher | broker | receiver | auto; empty keeps the broker's default and a legacy handshake)")
		watchdog  = fs.Duration("watchdog", 0, "broker mode: treat a connection that delivers no bytes for this long as dead and reconnect (0 disables)")
		debug     = fs.String("debug", "", "serve /metrics, /debug/vars, /debug/decisions, and /debug/pprof on this HTTP address (empty disables)")
		interval  = fs.Duration("metrics-interval", 0, "dump a metrics JSON snapshot to stderr at this interval (0 disables)")
		traceRate = fs.Float64("trace-sample", 0, "distributed-trace head-sampling rate — receivers trace whatever arrives annotated, so this only gates local anomaly sampling bookkeeping (0 disables nothing here; any trace flag enables the span ring)")
		traceOut  = fs.String("trace-out", "", "append spans as JSONL to this file (cctrace's input)")
		verbose   = fs.Bool("v", false, "log every received block")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*addr == "") != (*channel == "") {
		return fmt.Errorf("-addr and -channel go together")
	}
	if *reconnect > 0 && *addr == "" {
		return fmt.Errorf("-reconnect only applies to broker mode (-addr/-channel)")
	}
	if *resume && *addr == "" {
		return fmt.Errorf("-resume only applies to broker mode (-addr/-channel)")
	}
	if *watchdog > 0 && *addr == "" {
		return fmt.Errorf("-watchdog only applies to broker mode (-addr/-channel)")
	}
	var pl selector.Placement
	if *placement != "" {
		if *addr == "" {
			return fmt.Errorf("-placement only applies to broker mode (-addr/-channel)")
		}
		var err error
		if pl, err = selector.ParsePlacement(*placement); err != nil {
			return err
		}
	}
	var dst io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}

	// Telemetry stays nil (zero cost) unless an observability flag asks
	// for it.
	var tel core.Telemetry
	if *debug != "" || *interval > 0 {
		tel = core.Telemetry{
			Metrics: metrics.NewRegistry(),
			Trace:   obs.NewDecisionLog(obs.DefaultLogSize),
			Stream:  "recv",
		}
	}
	if *traceRate > 0 || *traceOut != "" {
		tel.Tracer = tracing.New("ccrecv", *traceRate, 0)
		if *traceOut != "" {
			if err := tel.Tracer.OpenOutput(*traceOut); err != nil {
				return fmt.Errorf("trace output: %w", err)
			}
		}
		defer tel.Tracer.Close()
	}
	if *debug != "" {
		dbg, err := obs.Serve(*debug, tel.Metrics, tel.Trace, tel.Tracer.Ring())
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "ccrecv: debug plane on http://%s/\n", dbg.Addr())
	}
	stopDump := obs.DumpEvery(tel.Metrics, *interval, os.Stderr)
	defer stopDump()

	stats := &recvStats{methods: make(map[codec.Method]int64)}
	var track *core.DeliveryTracker
	if *resume {
		track = new(core.DeliveryTracker)
	}
	var err error
	if *addr != "" {
		err = subscribeLoop(dst, stats, subOpts{
			addr:      *addr,
			channel:   *channel,
			timeout:   *timeout,
			watchdog:  *watchdog,
			resync:    *resync,
			verbose:   *verbose,
			reconnect: *reconnect,
			track:     track,
			tel:       tel,
			placement: pl,
			advertise: *placement != "",
		})
	} else {
		err = listenOnce(dst, stats, *listen, *timeout, *resync, *verbose, tel)
	}

	fmt.Fprintf(os.Stderr, "received %d blocks, %d wire bytes -> %d bytes",
		stats.blocks, stats.wire, stats.orig)
	for m, n := range stats.methods {
		fmt.Fprintf(os.Stderr, "  %s=%d", m, n)
	}
	if stats.corrupt > 0 {
		fmt.Fprintf(os.Stderr, "  (%d corrupt frames skipped)", stats.corrupt)
	}
	fmt.Fprintln(os.Stderr)
	if track != nil {
		ds := track.Stats()
		fmt.Fprintf(os.Stderr, "resume: %d delivered, %d duplicates suppressed, %d gaps (%d blocks lost)\n",
			ds.Delivered, ds.Dups, ds.GapEvents, ds.GapBlocks)
	}
	return err
}

// listenOnce accepts a single ccsend connection and drains it.
func listenOnce(dst io.Writer, stats *recvStats, listen string, timeout time.Duration, resync, verbose bool, tel core.Telemetry) error {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(os.Stderr, "listening on %s\n", ln.Addr())
	conn, err := ln.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()
	return receive(conn, dst, stats, timeout, resync, verbose, tel, nil)
}

// subOpts carries the broker-subscriber configuration through the
// dial/receive loop.
type subOpts struct {
	addr, channel     string
	timeout, watchdog time.Duration
	resync, verbose   bool
	reconnect         int
	track             *core.DeliveryTracker // non-nil: -resume session state
	tel               core.Telemetry
	placement         selector.Placement // advertised placement (version-3 hello)
	advertise         bool               // false: legacy handshake, broker default
}

// subscribeLoop dials the broker and receives, redialing with capped
// exponential backoff after transport errors until the retry budget is
// spent. A connection that delivered at least one block resets the budget,
// so a long-lived subscriber survives any number of isolated outages. With
// o.track the delivery tracker outlives every connection, so reconnects
// resume from the last delivered sequence and replayed duplicates are
// suppressed — exactly-once delivery across the whole session.
func subscribeLoop(dst io.Writer, stats *recvStats, o subOpts) error {
	// Full jitter decorrelates the reconnect storm after a broker sheds a
	// crowd of subscribers at once — without it every victim redials on the
	// same schedule and re-creates the overload it was evicted to relieve.
	bo := netutil.Backoff{Min: netutil.DefaultBackoffMin, Max: 5 * time.Second, Jitter: true}
	retries := 0
	for {
		before := stats.blocks
		err := subscribeOnce(dst, stats, o)
		if err == nil {
			return nil // clean end of stream
		}
		if stats.blocks > before {
			bo.Reset()
			retries = 0
		}
		if retries >= o.reconnect {
			return err
		}
		retries++
		// An overloaded broker's RETRY-AFTER reply knows its recovery
		// horizon better than our schedule: honor it verbatim.
		var ov *broker.OverloadError
		if errors.As(err, &ov) && ov.RetryAfter > 0 {
			bo.SetRetryAfter(ov.RetryAfter)
		}
		d := bo.Next()
		fmt.Fprintf(os.Stderr, "ccrecv: %v; reconnecting in %v (%d/%d)\n", err, d, retries, o.reconnect)
		time.Sleep(d)
	}
}

func subscribeOnce(dst io.Writer, stats *recvStats, o subOpts) error {
	var conn net.Conn
	var err error
	if o.timeout > 0 {
		conn, err = net.DialTimeout("tcp", o.addr, o.timeout)
	} else {
		conn, err = net.Dial("tcp", o.addr)
	}
	if err != nil {
		return err
	}
	defer conn.Close()
	hsConn := netutil.WithTimeout(conn, o.timeout)
	resumed := false
	if o.track != nil {
		if last, started := o.track.LastDelivered(); started {
			var firstSeq uint64
			var err error
			if o.advertise {
				firstSeq, err = broker.HandshakeResumePlacement(hsConn, o.channel, last, o.placement)
			} else {
				firstSeq, err = broker.HandshakeResume(hsConn, o.channel, last)
			}
			if err != nil {
				return fmt.Errorf("resume %q from seq %d: %w", o.channel, last, err)
			}
			if firstSeq > last+1 {
				gap := firstSeq - last - 1
				o.track.NoteGap(gap)
				o.track.SkipTo(firstSeq)
				fmt.Fprintf(os.Stderr, "ccrecv: resume gap on %q: %d blocks evicted past the replay window, resuming at seq %d\n",
					o.channel, gap, firstSeq)
			}
			fmt.Fprintf(os.Stderr, "resumed %q on %s after seq %d\n", o.channel, o.addr, last)
			resumed = true
		}
	}
	if !resumed {
		var err error
		if o.advertise {
			err = broker.HandshakeSubscribePlacement(hsConn, o.channel, o.placement)
		} else {
			err = broker.HandshakeSubscribe(hsConn, o.channel)
		}
		if err != nil {
			return fmt.Errorf("subscribe to %q: %w", o.channel, err)
		}
		fmt.Fprintf(os.Stderr, "subscribed to %q on %s\n", o.channel, o.addr)
	}
	// Ping so a broker enforcing read deadlines keeps us attached even
	// when the channel is quiet; any bytes count, we send empty frames.
	pingDone := make(chan struct{})
	defer close(pingDone)
	go func() {
		ping, _, err := codec.AppendFrame(nil, nil, codec.None, nil)
		if err != nil {
			return
		}
		ticker := time.NewTicker(2 * time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-pingDone:
				return
			case <-ticker.C:
				if _, err := conn.Write(ping); err != nil {
					return
				}
			}
		}
	}()
	// The watchdog is a rolling read deadline: a stalled-but-open link
	// (peer alive at the TCP level, delivering nothing) times out like any
	// other transport error and the loop redials instead of hanging.
	readTO := o.timeout
	if o.watchdog > 0 {
		readTO = o.watchdog
	}
	return receive(conn, dst, stats, readTO, o.resync, o.verbose, o.tel, o.track)
}

// receive drains one connection into dst, optionally resynchronising past
// corrupt frames instead of failing. A non-nil track suppresses replayed
// duplicates and accounts sequence gaps.
func receive(conn net.Conn, dst io.Writer, stats *recvStats, readTimeout time.Duration, resync, verbose bool, tel core.Telemetry, track *core.DeliveryTracker) error {
	r := core.NewReader(netutil.WithTimeouts(conn, readTimeout, 0), nil, func(info codec.BlockInfo) {
		stats.blocks++
		stats.wire += int64(info.CompLen)
		stats.orig += int64(info.OrigLen)
		stats.methods[info.Method]++
		if verbose {
			fmt.Fprintf(os.Stderr, "block %d: %-15s %7d -> %7d bytes\n",
				stats.blocks-1, info.Method, info.CompLen, info.OrigLen)
		}
	})
	r.SetTelemetry(tel)
	// A broker evicting this subscriber (overload shedding, breaker trip)
	// writes a close-reason control frame before severing the conn; surface
	// it as a typed error so the reconnect loop can say why and back off,
	// instead of reporting a generic read error.
	r.SetCloseHandler(func(anno []byte) error {
		if reason, msg, ok := codec.ParseCloseAnno(anno); ok {
			return &broker.EvictedError{Reason: reason, Msg: msg}
		}
		return nil // unknown control frame: treat as heartbeat
	})
	if track != nil {
		r.SetDeliveryTracker(track)
	}
	if resync {
		r.SetCorruptHandler(func(err error) bool {
			stats.corrupt++
			fmt.Fprintf(os.Stderr, "ccrecv: corrupt frame (%v), resynchronising\n", err)
			return true
		})
	}
	if _, err := io.Copy(dst, r); err != nil && !errors.Is(err, io.EOF) {
		return err
	}
	return nil
}
