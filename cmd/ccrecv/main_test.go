package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ccx/internal/core"
	"ccx/internal/datagen"
	"ccx/internal/selector"
)

// TestRecvRoundtrip drives run() with an in-process adaptive sender.
func TestRecvRoundtrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "copy.dat")
	data := datagen.OISTransactions(200<<10, 0.9, 6)

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:39217", "-out", out})
	}()

	// Wait for the listener, then send.
	var conn net.Conn
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		conn, err = net.Dial("tcp", "127.0.0.1:39217")
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	cfg := selector.DefaultConfig()
	cfg.BlockSize = 32 << 10
	engine, err := core.NewEngine(core.Config{Selector: cfg})
	if err != nil {
		t.Fatal(err)
	}
	w := core.NewWriter(conn, engine, nil)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("roundtrip mismatch: %d vs %d bytes", len(got), len(data))
	}
}

func TestRecvBadListenAddr(t *testing.T) {
	if err := run([]string{"-listen", "256.0.0.1:bad"}); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestRecvBadOutputPath(t *testing.T) {
	if err := run([]string{"-listen", "127.0.0.1:0", "-out", "/no/such/dir/file"}); err == nil {
		t.Fatal("bad output path accepted")
	}
}
