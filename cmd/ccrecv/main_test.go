package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ccx/internal/broker"
	"ccx/internal/codec"
	"ccx/internal/core"
	"ccx/internal/datagen"
	"ccx/internal/selector"
)

// TestRecvRoundtrip drives run() with an in-process adaptive sender.
func TestRecvRoundtrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "copy.dat")
	data := datagen.OISTransactions(200<<10, 0.9, 6)

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:39217", "-out", out})
	}()

	// Wait for the listener, then send.
	var conn net.Conn
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		conn, err = net.Dial("tcp", "127.0.0.1:39217")
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	cfg := selector.DefaultConfig()
	cfg.BlockSize = 32 << 10
	engine, err := core.NewEngine(core.Config{Selector: cfg})
	if err != nil {
		t.Fatal(err)
	}
	w := core.NewWriter(conn, engine, nil)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("roundtrip mismatch: %d vs %d bytes", len(got), len(data))
	}
}

func TestRecvBadListenAddr(t *testing.T) {
	if err := run([]string{"-listen", "256.0.0.1:bad"}); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestRecvBadOutputPath(t *testing.T) {
	if err := run([]string{"-listen", "127.0.0.1:0", "-out", "/no/such/dir/file"}); err == nil {
		t.Fatal("bad output path accepted")
	}
}

func TestRecvAddrWithoutChannel(t *testing.T) {
	if err := run([]string{"-addr", "127.0.0.1:1"}); err == nil {
		t.Fatal("-addr without -channel accepted")
	}
}

// TestRecvIdleTimeout: with -timeout set, a peer that connects and then
// goes silent must trip the read deadline instead of hanging forever.
func TestRecvIdleTimeout(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:39218", "-timeout", "300ms", "-out", filepath.Join(t.TempDir(), "x")})
	}()
	var conn net.Conn
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		conn, err = net.Dial("tcp", "127.0.0.1:39218")
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("silent peer did not trip the read deadline")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run hung despite -timeout")
	}
}

// TestRecvSubscribeRoundtrip drives the broker-subscriber mode end to end.
func TestRecvSubscribeRoundtrip(t *testing.T) {
	data := datagen.OISTransactions(120<<10, 0.9, 13)
	out := filepath.Join(t.TempDir(), "copy.dat")

	b, err := broker.New(broker.Config{Channels: []string{"md"}, Heartbeat: -1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go b.Serve(ln)

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", ln.Addr().String(), "-channel", "md", "-out", out})
	}()
	// The subscriber must be attached before publishing.
	waitFor := time.Now().Add(5 * time.Second)
	for b.Subscribers() == 0 {
		if time.Now().After(waitFor) {
			t.Fatal("subscriber never attached")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for off := 0; off < len(data); off += 16 << 10 {
		end := off + 16<<10
		if end > len(data) {
			end = len(data)
		}
		if err := b.Publish("md", data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("subscriber run: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("subscribe roundtrip mismatch: %d vs %d bytes", len(got), len(data))
	}
}

// scriptedBroker is a minimal hand-rolled broker endpoint: it accepts
// connections in order and runs one script function per connection,
// letting tests stage multi-connection failure sequences (die mid-frame,
// hang, demand a resume handshake) that the real broker would never emit
// deterministically.
type scriptedBroker struct {
	t  *testing.T
	ln net.Listener
}

func newScriptedBroker(t *testing.T, scripts ...func(t *testing.T, conn net.Conn)) *scriptedBroker {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sb := &scriptedBroker{t: t, ln: ln}
	go func() {
		for _, script := range scripts {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			script(t, conn)
			conn.Close()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return sb
}

// readSubscribeHandshake consumes a plain v1 subscribe hello for channel
// "md" and accepts it.
func readSubscribeHandshake(t *testing.T, conn net.Conn) {
	t.Helper()
	hello := make([]byte, 8) // "CCB" ver role len "md"
	if _, err := io.ReadFull(conn, hello); err != nil {
		t.Errorf("handshake read: %v", err)
		return
	}
	if hello[4] != 'S' {
		t.Errorf("handshake role = %q, want 'S'", hello[4])
	}
	if _, err := conn.Write([]byte{0}); err != nil {
		t.Errorf("handshake reply: %v", err)
	}
}

// readResumeHandshake consumes a v2 resume hello for channel "md", checks
// the presented lastSeq, and accepts with firstSeq.
func readResumeHandshake(t *testing.T, conn net.Conn, wantLast, firstSeq uint64) {
	t.Helper()
	hello := make([]byte, 8)
	if _, err := io.ReadFull(conn, hello); err != nil {
		t.Errorf("resume handshake read: %v", err)
		return
	}
	if hello[3] != 2 || hello[4] != 'R' {
		t.Errorf("resume hello version/role = %d/%q, want 2/'R'", hello[3], hello[4])
	}
	last, err := binary.ReadUvarint(oneByteReader{conn})
	if err != nil {
		t.Errorf("resume lastSeq: %v", err)
		return
	}
	if last != wantLast {
		t.Errorf("resume lastSeq = %d, want %d", last, wantLast)
	}
	reply := binary.AppendUvarint([]byte{0}, firstSeq)
	if _, err := conn.Write(reply); err != nil {
		t.Errorf("resume reply: %v", err)
	}
}

type oneByteReader struct{ r io.Reader }

func (o oneByteReader) ReadByte() (byte, error) {
	var b [1]byte
	_, err := io.ReadFull(o.r, b[:])
	return b[0], err
}

// seqFrame builds one sequenced (v3) frame holding payload.
func seqFrame(t *testing.T, payload []byte, seq uint64) []byte {
	t.Helper()
	frame, _, err := codec.AppendFrameSeq(nil, nil, codec.None, payload, seq)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// TestRecvRetryBudgetResets is the regression test for the reconnect
// budget: every connection that delivers at least one block must reset the
// retry counter, so a long-lived subscriber with -reconnect 1 survives
// arbitrarily many isolated outages. Four consecutive connections each
// deliver one block and then die mid-frame; with a budget of one retry the
// run only succeeds if the counter resets after each productive
// connection.
func TestRecvRetryBudgetResets(t *testing.T) {
	payloads := [][]byte{
		[]byte("first block "), []byte("second block "), []byte("third block "),
		[]byte("fourth block "), []byte("fifth block"),
	}
	productive := func(i int) func(*testing.T, net.Conn) {
		return func(t *testing.T, conn net.Conn) {
			readSubscribeHandshake(t, conn)
			conn.Write(seqFrame(t, payloads[i], uint64(i+1)))
			// Die inside the next frame: a few bytes of a valid header,
			// then reset. The client must see a transport error, not a
			// clean end of stream.
			next := seqFrame(t, payloads[i+1], uint64(i+2))
			conn.Write(next[:5])
		}
	}
	final := func(t *testing.T, conn net.Conn) {
		readSubscribeHandshake(t, conn)
		conn.Write(seqFrame(t, payloads[4], 5))
		// Clean close at a frame boundary ends the stream.
	}
	sb := newScriptedBroker(t, productive(0), productive(1), productive(2), productive(3), final)

	out := filepath.Join(t.TempDir(), "copy.dat")
	err := run([]string{"-addr", sb.ln.Addr().String(), "-channel", "md",
		"-reconnect", "1", "-out", out})
	if err != nil {
		t.Fatalf("run with resetting retry budget: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Join(payloads, nil)
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}
}

// TestRecvWatchdog: a connection that stays open but delivers nothing must
// trip the watchdog and surface a transport error instead of hanging.
func TestRecvWatchdog(t *testing.T) {
	hang := make(chan struct{})
	sb := newScriptedBroker(t, func(t *testing.T, conn net.Conn) {
		readSubscribeHandshake(t, conn)
		conn.Write(seqFrame(t, []byte("only block"), 1))
		<-hang // keep the connection open, deliver nothing
	})
	defer close(hang)

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", sb.ln.Addr().String(), "-channel", "md",
			"-watchdog", "250ms", "-out", filepath.Join(t.TempDir(), "x")})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("stalled connection did not trip the watchdog")
		}
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("watchdog error = %v, want a net timeout", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run hung despite -watchdog")
	}
}

// TestRecvResumeAcrossReconnect drives the full -resume client path: the
// first connection dies mid-frame after three blocks; the redial must
// present lastSeq 3 in a resume handshake, and the replayed duplicate of
// block 3 must be suppressed so the output holds every block exactly once.
func TestRecvResumeAcrossReconnect(t *testing.T) {
	payloads := [][]byte{
		[]byte("seq one "), []byte("seq two "), []byte("seq three "),
		[]byte("seq four "), []byte("seq five"),
	}
	first := func(t *testing.T, conn net.Conn) {
		readSubscribeHandshake(t, conn)
		for i := 0; i < 3; i++ {
			conn.Write(seqFrame(t, payloads[i], uint64(i+1)))
		}
		next := seqFrame(t, payloads[3], 4)
		conn.Write(next[:7]) // die mid-frame
	}
	second := func(t *testing.T, conn net.Conn) {
		readResumeHandshake(t, conn, 3, 3)
		// Replay overlaps the resume point: block 3 again (a duplicate the
		// tracker must suppress), then 4 and 5, then a clean close.
		for i := 2; i < 5; i++ {
			conn.Write(seqFrame(t, payloads[i], uint64(i+1)))
		}
	}
	sb := newScriptedBroker(t, first, second)

	out := filepath.Join(t.TempDir(), "copy.dat")
	err := run([]string{"-addr", sb.ln.Addr().String(), "-channel", "md",
		"-reconnect", "3", "-resume", "-out", out})
	if err != nil {
		t.Fatalf("resume run: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Join(payloads, nil)
	if !bytes.Equal(got, want) {
		t.Fatalf("resume output:\n got %q\nwant %q", got, want)
	}
}

func TestRecvResumeRequiresBrokerMode(t *testing.T) {
	if err := run([]string{"-resume"}); err == nil {
		t.Fatal("-resume without -addr accepted")
	}
	if err := run([]string{"-watchdog", "1s"}); err == nil {
		t.Fatal("-watchdog without -addr accepted")
	}
}
