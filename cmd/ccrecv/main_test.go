package main

import (
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ccx/internal/broker"
	"ccx/internal/core"
	"ccx/internal/datagen"
	"ccx/internal/selector"
)

// TestRecvRoundtrip drives run() with an in-process adaptive sender.
func TestRecvRoundtrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "copy.dat")
	data := datagen.OISTransactions(200<<10, 0.9, 6)

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:39217", "-out", out})
	}()

	// Wait for the listener, then send.
	var conn net.Conn
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		conn, err = net.Dial("tcp", "127.0.0.1:39217")
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	cfg := selector.DefaultConfig()
	cfg.BlockSize = 32 << 10
	engine, err := core.NewEngine(core.Config{Selector: cfg})
	if err != nil {
		t.Fatal(err)
	}
	w := core.NewWriter(conn, engine, nil)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("roundtrip mismatch: %d vs %d bytes", len(got), len(data))
	}
}

func TestRecvBadListenAddr(t *testing.T) {
	if err := run([]string{"-listen", "256.0.0.1:bad"}); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestRecvBadOutputPath(t *testing.T) {
	if err := run([]string{"-listen", "127.0.0.1:0", "-out", "/no/such/dir/file"}); err == nil {
		t.Fatal("bad output path accepted")
	}
}

func TestRecvAddrWithoutChannel(t *testing.T) {
	if err := run([]string{"-addr", "127.0.0.1:1"}); err == nil {
		t.Fatal("-addr without -channel accepted")
	}
}

// TestRecvIdleTimeout: with -timeout set, a peer that connects and then
// goes silent must trip the read deadline instead of hanging forever.
func TestRecvIdleTimeout(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:39218", "-timeout", "300ms", "-out", filepath.Join(t.TempDir(), "x")})
	}()
	var conn net.Conn
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		conn, err = net.Dial("tcp", "127.0.0.1:39218")
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("silent peer did not trip the read deadline")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run hung despite -timeout")
	}
}

// TestRecvSubscribeRoundtrip drives the broker-subscriber mode end to end.
func TestRecvSubscribeRoundtrip(t *testing.T) {
	data := datagen.OISTransactions(120<<10, 0.9, 13)
	out := filepath.Join(t.TempDir(), "copy.dat")

	b, err := broker.New(broker.Config{Channels: []string{"md"}, Heartbeat: -1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go b.Serve(ln)

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", ln.Addr().String(), "-channel", "md", "-out", out})
	}()
	// The subscriber must be attached before publishing.
	waitFor := time.Now().Add(5 * time.Second)
	for b.Subscribers() == 0 {
		if time.Now().After(waitFor) {
			t.Fatal("subscriber never attached")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for off := 0; off < len(data); off += 16 << 10 {
		end := off + 16<<10
		if end > len(data) {
			end = len(data)
		}
		if err := b.Publish("md", data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("subscriber run: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("subscribe roundtrip mismatch: %d vs %d bytes", len(got), len(data))
	}
}
