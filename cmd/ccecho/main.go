// Command ccecho runs a standalone event-middleware node: it serves a
// domain of event channels over TCP (any number of peers multiplex any
// number of channels over one connection each), optionally publishing a
// file or generated stream on a channel with configurable compression.
//
// A minimal two-node session:
//
//	ccecho -listen :9980 -publish ois.txns -kind ois -size 4194304   # node A
//	ccecho -connect hostA:9980 -subscribe ois.txns.z                 # node B
//
// Node A publishes transactions on "ois.txns" and serves the derived
// compressed channel "ois.txns.z"; node B imports the compressed channel
// and prints per-event method/size lines as they arrive.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ccx/internal/codec"
	"ccx/internal/core"
	"ccx/internal/datagen"
	"ccx/internal/echo"
	"ccx/internal/selector"
)

func main() {
	if err := run(os.Args[1:], make(chan struct{})); err != nil {
		fmt.Fprintln(os.Stderr, "ccecho:", err)
		os.Exit(1)
	}
}

// run starts the node and blocks until stop closes or SIGINT/SIGTERM.
func run(args []string, stop chan struct{}) error {
	fs := flag.NewFlagSet("ccecho", flag.ContinueOnError)
	var (
		listen    = fs.String("listen", "", "serve the domain on this TCP address")
		connect   = fs.String("connect", "", "join a remote node at this TCP address")
		publish   = fs.String("publish", "", "publish a generated stream on this channel (a .z derived channel is added)")
		subscribe = fs.String("subscribe", "", "import and print this channel")
		kind      = fs.String("kind", "ois", "publish payload kind: ois | xml | molecular")
		size      = fs.Int("size", 1<<20, "bytes per published event batch")
		events    = fs.Int("events", 16, "number of events to publish (0 = forever)")
		interval  = fs.Duration("interval", 100*time.Millisecond, "publish interval")
		blockSize = fs.Int("block", 64<<10, "compression block size")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listen == "" && *connect == "" {
		return fmt.Errorf("need -listen and/or -connect")
	}

	domain := echo.NewDomain()
	var bridgeMu sync.Mutex
	var bridges []*echo.Bridge
	addBridge := func(b *echo.Bridge) {
		bridgeMu.Lock()
		bridges = append(bridges, b)
		bridgeMu.Unlock()
	}
	defer func() {
		bridgeMu.Lock()
		all := append([]*echo.Bridge(nil), bridges...)
		bridgeMu.Unlock()
		for _, b := range all {
			b.Close()
		}
	}()

	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "serving domain on %s\n", ln.Addr())
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				addBridge(echo.NewBridge(domain, conn))
			}
		}()
	}
	var remote *echo.Bridge
	if *connect != "" {
		conn, err := net.Dial("tcp", *connect)
		if err != nil {
			return err
		}
		remote = echo.NewBridge(domain, conn)
		addBridge(remote)
		fmt.Fprintf(os.Stderr, "joined %s\n", *connect)
	}

	if *subscribe != "" {
		var ch *echo.EventChannel
		var err error
		if remote != nil {
			ch, err = remote.ImportChannel(*subscribe)
			if err != nil {
				return err
			}
		} else {
			ch = domain.OpenChannel(*subscribe)
		}
		var n atomic.Int64
		core.SubscribeDecompressed(ch, nil, 4, func(data []byte, info codec.BlockInfo) {
			fmt.Printf("event %d: %-15s %7d -> %7d bytes\n", n.Add(1), info.Method, info.CompLen, info.OrigLen)
		})
	}

	publishDone := make(chan struct{})
	if *publish != "" {
		cfg := selector.DefaultConfig()
		cfg.BlockSize = *blockSize
		engine, err := core.NewEngine(core.Config{Selector: cfg})
		if err != nil {
			return err
		}
		raw := domain.OpenChannel(*publish)
		if _, err := core.DeriveCompressed(raw, *publish+".z", engine); err != nil {
			return err
		}
		go func() {
			defer close(publishDone)
			ticker := time.NewTicker(*interval)
			defer ticker.Stop()
			for i := 0; *events == 0 || i < *events; i++ {
				select {
				case <-stop:
					return
				case <-ticker.C:
				}
				var payload []byte
				switch *kind {
				case "xml":
					payload = datagen.XMLDocuments(*size, int64(i))
				case "molecular":
					rec := datagen.MolecularFormat().RecordSize()
					payload, _ = datagen.MolecularBatch(datagen.Molecular(*size/rec, int64(i)))
				default:
					payload = datagen.OISTransactions(*size, 0.9, int64(i))
				}
				if err := raw.Submit(echo.Event{Data: payload}); err != nil {
					return
				}
			}
		}()
	} else {
		close(publishDone)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case <-stop:
	case <-sig:
	case <-publishDone:
		if *publish != "" && *events > 0 {
			// Give the last events time to drain across bridges.
			time.Sleep(200 * time.Millisecond)
		}
	}
	return nil
}
