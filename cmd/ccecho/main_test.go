package main

import (
	"net"
	"sync"
	"testing"
	"time"

	"ccx/internal/codec"
	"ccx/internal/core"
	"ccx/internal/echo"
)

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestNeedsEndpoint(t *testing.T) {
	if err := run(nil, make(chan struct{})); err == nil {
		t.Fatal("no endpoints accepted")
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-nope"}, make(chan struct{})); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-connect", "127.0.0.1:1"}, make(chan struct{})); err == nil {
		t.Fatal("dead address accepted")
	}
}

// TestPublishSubscribeSession runs a publisher node via run() and consumes
// its compressed channel from an in-process bridge.
func TestPublishSubscribeSession(t *testing.T) {
	addr := freePort(t)
	stop := make(chan struct{})
	serverDone := make(chan error, 1)
	go func() {
		serverDone <- run([]string{
			"-listen", addr,
			"-publish", "txns",
			"-kind", "ois",
			"-size", "65536",
			"-events", "6",
			"-interval", "20ms",
			"-block", "16384",
		}, stop)
	}()

	// Client side: plain library bridge.
	var conn net.Conn
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	domain := echo.NewDomain()
	bridge := echo.NewBridge(domain, conn)
	defer bridge.Close()
	ch, err := bridge.ImportChannel("txns.z")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	events, bytesIn := 0, 0
	core.SubscribeDecompressed(ch, nil, 0, func(data []byte, info codec.BlockInfo) {
		mu.Lock()
		events++
		bytesIn += len(data)
		mu.Unlock()
	})
	for time.Now().Before(deadline) {
		mu.Lock()
		n := events
		mu.Unlock()
		if n >= 3 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	gotEvents, gotBytes := events, bytesIn
	mu.Unlock()
	if gotEvents < 3 {
		t.Fatalf("received %d events", gotEvents)
	}
	if gotBytes%65536 != 0 {
		t.Fatalf("payload bytes = %d", gotBytes)
	}
	close(stop)
	select {
	case err := <-serverDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not stop")
	}
}
