// Command ccsend streams a file (or stdin) over TCP with configurable
// compression: each block's method is chosen by the §2.5 selection
// algorithm from live send-timing and data sampling. It speaks to a ccrecv
// peer directly, or — with -channel — publishes into a ccbroker event
// channel for fan-out to many subscribers.
//
// Usage:
//
//	ccrecv -listen :9900 -out copy.dat      # on the receiver
//	ccsend -addr host:9900 big.dat          # on the sender
//
//	ccsend -addr host:9981 -channel md big.dat   # into a broker channel
//
// Observability: -debug serves Prometheus /metrics, the JSON /debug/vars
// snapshot, the /debug/decisions per-block trace, and /debug/pprof over
// HTTP for the lifetime of the transfer; -metrics-interval dumps JSON
// snapshots to stderr. Both are off by default and cost nothing when off.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"time"

	"ccx/internal/broker"
	"ccx/internal/codec"
	"ccx/internal/core"
	"ccx/internal/faultnet"
	"ccx/internal/metrics"
	"ccx/internal/netutil"
	"ccx/internal/obs"
	"ccx/internal/selector"
	"ccx/internal/tracing"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ccsend:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ccsend", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:9900", "receiver or broker address")
		channel   = fs.String("channel", "", "publish into this ccbroker channel instead of a raw ccrecv peer")
		placement = fs.String("placement", "publisher", "where compression runs: publisher (inline, the default), broker (ship raw, the broker compresses per subscriber; needs -channel), receiver (ship raw end to end), auto (offload whenever the link outruns the codec)")
		blockSize = fs.Int("block", selector.DefaultBlockSize, "block size in bytes")
		workers   = fs.Int("workers", 0, "encode worker goroutines; blocks are compressed in parallel but framed in order (0 = GOMAXPROCS, 1 = the sequential loop)")
		timeout   = fs.Duration("timeout", 0, "dial timeout and per-operation I/O deadline (0 = none)")
		fault     = fs.String("fault", "", `inject faults on the outbound stream for chaos testing, e.g. "flip=65536,seed=7" (see internal/faultnet)`)
		debug     = fs.String("debug", "", "serve /metrics, /debug/vars, /debug/decisions, and /debug/pprof on this HTTP address (empty disables)")
		interval  = fs.Duration("metrics-interval", 0, "dump a metrics JSON snapshot to stderr at this interval (0 disables)")
		traceRate = fs.Float64("trace-sample", 0, "distributed-trace head-sampling rate (0..1; 0 disables, anomalies always trace)")
		traceOut  = fs.String("trace-out", "", "append sampled spans as JSONL to this file (cctrace's input)")
		verbose   = fs.Bool("v", false, "log every block's decision")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	plan, err := faultnet.ParsePlan(*fault)
	if err != nil {
		return err
	}
	if *blockSize > codec.MaxFrameLen {
		return fmt.Errorf("block size %d exceeds the frame format's limit %d", *blockSize, codec.MaxFrameLen)
	}
	var in io.Reader = os.Stdin
	name := "stdin"
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		name = fs.Arg(0)
	}

	cfg := selector.DefaultConfig()
	cfg.BlockSize = *blockSize
	// Telemetry stays nil (zero cost) unless an observability flag asks
	// for it.
	var tel core.Telemetry
	if *debug != "" || *interval > 0 {
		tel = core.Telemetry{
			Metrics: metrics.NewRegistry(),
			Trace:   obs.NewDecisionLog(obs.DefaultLogSize),
			Stream:  "send",
		}
	}
	if *traceRate > 0 || *traceOut != "" {
		tel.Tracer = tracing.New("ccsend", *traceRate, 0)
		if *traceOut != "" {
			if err := tel.Tracer.OpenOutput(*traceOut); err != nil {
				return fmt.Errorf("trace output: %w", err)
			}
		}
		defer tel.Tracer.Close()
	}
	nw := *workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	pl, err := selector.ParsePlacement(*placement)
	if err != nil {
		return err
	}
	if pl == selector.PlacementBroker && *channel == "" {
		return fmt.Errorf("-placement broker needs -channel (a raw ccrecv peer has no broker hop)")
	}
	plc := selector.PlacementPolicy{
		Mode: pl,
		Node: selector.PlacementPublisher,
		// With a broker hop downstream, auto-offload targets the broker
		// (it re-compresses per subscriber); point-to-point it targets the
		// receiver.
		Brokered: *channel != "",
	}
	engine, err := core.NewEngine(core.Config{Selector: cfg, Telemetry: tel, Workers: nw, Placement: plc})
	if err != nil {
		return err
	}
	if *debug != "" {
		dbg, err := obs.Serve(*debug, tel.Metrics, tel.Trace, tel.Tracer.Ring())
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "ccsend: debug plane on http://%s/\n", dbg.Addr())
	}
	stopDump := obs.DumpEvery(tel.Metrics, *interval, os.Stderr)
	defer stopDump()
	conn, err := dial(*addr, *timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	wire := netutil.WithTimeout(conn, *timeout)
	if *channel != "" {
		if pl != selector.PlacementPublisher {
			err = broker.HandshakePublishPlacement(wire, *channel, pl)
		} else {
			// Legacy (version-1) hello: works against brokers that predate
			// the placement dimension.
			err = broker.HandshakePublish(wire, *channel)
		}
		if err != nil {
			return fmt.Errorf("publish to %q: %w", *channel, err)
		}
	}
	if plan.Enabled() {
		// Wrap after the handshake so faults land on data frames, not on
		// connection setup — the interesting failure mode for the receiver.
		fmt.Fprintf(os.Stderr, "ccsend: injecting faults: %s\n", plan)
		wire = netutil.WithTimeout(faultnet.Wrap(conn, plan), *timeout)
	}

	var blocks, wireBytes, orig int64
	w := core.NewWriter(wire, engine, func(r core.BlockResult) {
		blocks++
		wireBytes += int64(r.WireBytes)
		orig += int64(r.Info.OrigLen)
		if *verbose {
			fmt.Fprintf(os.Stderr, "block %d: %-15s %7d -> %7d bytes  send %v  goodput %.2f MB/s\n",
				r.Index, r.Decision.Method, r.Info.OrigLen, r.Info.CompLen,
				r.SendTime.Round(1000), engine.Monitor().Goodput()/1e6)
		}
	})
	if _, err := io.Copy(w, in); err != nil {
		return fmt.Errorf("send %s: %w", name, err)
	}
	if err := w.Close(); err != nil {
		return err
	}
	if orig > 0 {
		fmt.Fprintf(os.Stderr, "sent %s: %d blocks, %d bytes original, %d on the wire (%.1f%%)\n",
			name, blocks, orig, wireBytes, float64(wireBytes)/float64(orig)*100)
	}
	return nil
}

func dial(addr string, timeout time.Duration) (net.Conn, error) {
	if timeout > 0 {
		return net.DialTimeout("tcp", addr, timeout)
	}
	return net.Dial("tcp", addr)
}
