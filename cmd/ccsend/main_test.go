package main

import (
	"bytes"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"

	"ccx/internal/core"
	"ccx/internal/datagen"
)

// TestSendRoundtrip runs the real ccsend run() against an in-process
// receiver and verifies byte-exact delivery.
func TestSendRoundtrip(t *testing.T) {
	data := datagen.OISTransactions(300<<10, 0.9, 4)
	src := filepath.Join(t.TempDir(), "src.dat")
	if err := os.WriteFile(src, data, 0o644); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan []byte, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			got <- nil
			return
		}
		defer conn.Close()
		r := core.NewReader(conn, nil, nil)
		out, _ := io.ReadAll(r)
		got <- out
	}()

	if err := run([]string{"-addr", ln.Addr().String(), "-block", "32768", src}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(<-got, data) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestSendMissingFile(t *testing.T) {
	if err := run([]string{"-addr", "127.0.0.1:1", "/does/not/exist"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSendConnectionRefused(t *testing.T) {
	src := filepath.Join(t.TempDir(), "src.dat")
	os.WriteFile(src, []byte("x"), 0o644)
	// Port 1 is essentially guaranteed closed.
	if err := run([]string{"-addr", "127.0.0.1:1", src}); err == nil {
		t.Fatal("dead address accepted")
	}
}
