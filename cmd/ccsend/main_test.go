package main

import (
	"bytes"
	"context"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ccx/internal/broker"
	"ccx/internal/core"
	"ccx/internal/datagen"
)

// TestSendRoundtrip runs the real ccsend run() against an in-process
// receiver and verifies byte-exact delivery.
func TestSendRoundtrip(t *testing.T) {
	data := datagen.OISTransactions(300<<10, 0.9, 4)
	src := filepath.Join(t.TempDir(), "src.dat")
	if err := os.WriteFile(src, data, 0o644); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan []byte, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			got <- nil
			return
		}
		defer conn.Close()
		r := core.NewReader(conn, nil, nil)
		out, _ := io.ReadAll(r)
		got <- out
	}()

	if err := run([]string{"-addr", ln.Addr().String(), "-block", "32768", src}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(<-got, data) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestSendMissingFile(t *testing.T) {
	if err := run([]string{"-addr", "127.0.0.1:1", "/does/not/exist"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSendConnectionRefused(t *testing.T) {
	src := filepath.Join(t.TempDir(), "src.dat")
	os.WriteFile(src, []byte("x"), 0o644)
	// Port 1 is essentially guaranteed closed.
	if err := run([]string{"-addr", "127.0.0.1:1", src}); err == nil {
		t.Fatal("dead address accepted")
	}
}

func TestSendBlockTooLarge(t *testing.T) {
	if err := run([]string{"-block", "33554433", "-addr", "127.0.0.1:1"}); err == nil {
		t.Fatal("block size beyond the frame limit accepted")
	}
}

// TestSendPublishToBroker drives the -channel publish mode against an
// in-process broker and checks a subscriber sees the exact bytes.
func TestSendPublishToBroker(t *testing.T) {
	data := datagen.OISTransactions(96<<10, 0.9, 11)
	src := filepath.Join(t.TempDir(), "src.dat")
	if err := os.WriteFile(src, data, 0o644); err != nil {
		t.Fatal(err)
	}

	b, err := broker.New(broker.Config{Channels: []string{"md"}, Heartbeat: -1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go b.Serve(ln)

	sub, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := broker.HandshakeSubscribe(sub, "md"); err != nil {
		t.Fatal(err)
	}
	got := make(chan []byte, 1)
	go func() {
		r := core.NewReader(sub, nil, nil)
		out, _ := io.ReadAll(r)
		got <- out
	}()

	if err := run([]string{"-addr", ln.Addr().String(), "-channel", "md", "-timeout", "5s", "-block", "16384", src}); err != nil {
		t.Fatalf("publish run: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(<-got, data) {
		t.Fatal("publish fan-out mismatch")
	}
}

func TestSendPublishRefusedChannel(t *testing.T) {
	b, err := broker.New(broker.Config{Channels: []string{"md"}, Heartbeat: -1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go b.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		b.Shutdown(ctx)
	}()

	src := filepath.Join(t.TempDir(), "src.dat")
	os.WriteFile(src, []byte("x"), 0o644)
	if err := run([]string{"-addr", ln.Addr().String(), "-channel", "other", src}); err == nil {
		t.Fatal("publish to unserved channel accepted")
	}
}
