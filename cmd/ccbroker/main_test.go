package main

import (
	"bytes"
	"net"
	"testing"
	"time"

	"ccx/internal/broker"
	"ccx/internal/codec"
	"ccx/internal/core"
	"ccx/internal/datagen"
	"ccx/internal/selector"
)

func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-channels", ""},
		{"-policy", "wedge"},
		{"-block", "999999999"},
		{"-queue", "-3"},
		{"-nope"},
	}
	for _, args := range cases {
		if err := run(args, make(chan struct{})); err == nil {
			t.Errorf("run(%v) = nil, want error", args)
		}
	}
}

// freeAddr reserves an ephemeral port and releases it for run to claim.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// dialBroker retries until the daemon under test is accepting.
func dialBroker(t *testing.T, addr string) net.Conn {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return conn
		}
		if time.Now().After(deadline) {
			t.Fatalf("dial %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestPublishFanOutSession(t *testing.T) {
	addr := freeAddr(t)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", addr,
			"-channels", "md, audit",
			"-policy", "evict",
			"-hb", "-1s",
			"-block", "8192",
		}, stop)
	}()

	// Two subscribers on the same channel.
	type sub struct {
		conn net.Conn
		got  chan []byte
	}
	var subs []sub
	for i := 0; i < 2; i++ {
		conn := dialBroker(t, addr)
		defer conn.Close()
		if err := broker.HandshakeSubscribe(conn, "md"); err != nil {
			t.Fatalf("subscribe %d: %v", i, err)
		}
		got := make(chan []byte, 1)
		go func(c net.Conn) {
			fr := codec.NewFrameReader(c, nil)
			var buf bytes.Buffer
			for {
				data, _, err := fr.ReadBlock()
				if err != nil {
					break
				}
				buf.Write(data)
			}
			got <- buf.Bytes()
		}(conn)
		subs = append(subs, sub{conn, got})
	}

	// A channel outside -channels is refused.
	bad := dialBroker(t, addr)
	defer bad.Close()
	if err := broker.HandshakeSubscribe(bad, "secrets"); err == nil {
		t.Error("subscribe to unserved channel succeeded, want refusal")
	}

	// Publish a stream through an adaptive writer.
	stream := datagen.OISTransactions(64<<10, 0.9, 7)
	pub := dialBroker(t, addr)
	defer pub.Close()
	if err := broker.HandshakePublish(pub, "md"); err != nil {
		t.Fatalf("publish handshake: %v", err)
	}
	selCfg := selector.DefaultConfig()
	selCfg.BlockSize = 8 << 10
	engine, err := core.NewEngine(core.Config{Selector: selCfg})
	if err != nil {
		t.Fatal(err)
	}
	w := core.NewWriter(pub, engine, nil)
	if _, err := w.Write(stream); err != nil {
		t.Fatalf("publish: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	pub.Close()

	// Graceful stop drains both subscriber queues before closing.
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	for i, s := range subs {
		select {
		case data := <-s.got:
			if !bytes.Equal(data, stream) {
				t.Errorf("subscriber %d: got %d bytes, want %d identical", i, len(data), len(stream))
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("subscriber %d never saw EOF", i)
		}
	}
}
