// Command ccbroker runs the fan-out broker daemon: one TCP endpoint where a
// publisher streams codec frames into a named event channel and any number
// of subscribers attach to receive them, each behind its own adaptation
// loop. A subscriber on a fast link gets raw or lightly-compressed frames; a
// subscriber on a congested link drifts toward heavier compression — the
// paper's per-path configurable compression, multiplied across consumers.
//
// A minimal three-terminal session:
//
//	ccbroker -listen :9981 -channels md,audit -policy evict    # broker
//	ccsend -addr host:9981 -channel md -in ticks.dat           # publisher
//	ccrecv -addr host:9981 -channel md -out ticks.copy         # subscriber
//
// Slow subscribers are handled per -policy: "drop" discards their oldest
// queued events (each drop is counted), "evict" disconnects them so they
// can reconnect and resynchronise.
//
// Every block published through a channel is stamped with a monotonically
// increasing sequence number and retained in a bounded per-channel replay
// ring (-replay-blocks / -replay-bytes; set both to 0 to disable). A
// subscriber that reconnects with ccrecv -resume presents its last
// delivered sequence and the broker replays everything newer it still
// holds; blocks evicted past the window are reported as an explicit gap.
//
// Observability: -metrics-interval dumps a metrics snapshot (bytes in/out,
// per-method histograms, queue depths, drops, evictions) to stderr at a
// fixed interval, and -debug serves the live debug plane over HTTP:
//
//	ccbroker -listen :9981 -channels md -debug 127.0.0.1:9984
//	curl -s http://127.0.0.1:9984/metrics           # Prometheus exposition
//	curl -s http://127.0.0.1:9984/debug/vars        # JSON snapshot
//	curl -s http://127.0.0.1:9984/debug/decisions   # recent per-block decisions
//	ccstat -addr 127.0.0.1:9984                     # one-line/s operator view
//
// net/http/pprof is mounted under /debug/pprof/ on the same listener.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"ccx/internal/broker"
	"ccx/internal/faultnet"
	"ccx/internal/governor"
	"ccx/internal/metrics"
	"ccx/internal/obs"
	"ccx/internal/selector"
	"ccx/internal/tracing"
)

func main() {
	if err := run(os.Args[1:], make(chan struct{})); err != nil {
		fmt.Fprintln(os.Stderr, "ccbroker:", err)
		os.Exit(1)
	}
}

// run starts the broker and blocks until stop closes or SIGINT/SIGTERM,
// then shuts down gracefully, draining subscriber queues.
func run(args []string, stop chan struct{}) error {
	fs := flag.NewFlagSet("ccbroker", flag.ContinueOnError)
	var (
		listen   = fs.String("listen", ":9981", "accept publishers and subscribers on this TCP address")
		channels = fs.String("channels", "events", "comma-separated channel names to serve")
		queueLen = fs.Int("queue", broker.DefaultQueueLen, "bounded outbound queue per subscriber, in events")
		policy   = fs.String("policy", "drop", "slow-subscriber policy: drop (oldest) | evict")
		placemnt = fs.String("placement", "publisher", "default compression placement for subscriber paths: publisher (broker-side encode, the default), receiver (ship raw, consumers decompress nothing), auto (per-path break-even); a version-3 subscriber hello overrides this per session")
		block    = fs.Int("block", 64<<10, "block size hint for per-subscriber selection engines")
		workers  = fs.Int("workers", 0, "encode worker goroutines in the shared encode plane, per channel; distinct (block, method) pairs compress in parallel but hit the wire in order (0 = GOMAXPROCS, 1 = sequential)")
		shards   = fs.Int("shards", 0, "channel event-loop shards, rounded up to a power of two (0 = GOMAXPROCS-aligned, 1 = single-loop reference)")
		cache    = fs.Int64("cache", 0, "per-channel encoded-frame cache budget in bytes, serving resume replays and post-migration re-encodes (0 = default)")
		hb       = fs.Duration("hb", broker.DefaultHeartbeat, "idle-link heartbeat interval (negative disables)")
		rblocks  = fs.Int("replay-blocks", broker.DefaultReplayBlocks, "per-channel replay window for resuming subscribers, in blocks (0 with -replay-bytes 0 disables replay)")
		rbytes   = fs.Int64("replay-bytes", broker.DefaultReplayBytes, "per-channel replay window for resuming subscribers, in bytes (0 with -replay-blocks 0 disables replay)")
		rto      = fs.Duration("rtimeout", 0, "per-read idle deadline on connections (0 = none)")
		wto      = fs.Duration("wtimeout", 0, "per-write deadline on subscriber links (0 = none)")
		speed    = fs.Float64("speedscale", 0, "divide measured reducing speeds by this factor (0 = off)")
		interval = fs.Duration("metrics-interval", 0, "dump a metrics JSON snapshot to stderr at this interval (0 disables)")
		stats    = fs.Duration("stats", 0, "deprecated alias for -metrics-interval")
		debug    = fs.String("debug", "", "serve /metrics, /debug/vars, /debug/decisions, and /debug/pprof on this HTTP address (empty disables)")
		traceLen = fs.Int("trace", obs.DefaultLogSize, "decision-trace ring capacity in records (served at /debug/decisions)")
		trRate   = fs.Float64("trace-sample", 0, "distributed-trace head-sampling rate for unannotated blocks (0..1); annotated blocks always trace through, as do anomalies")
		trOut    = fs.String("trace-out", "", "append spans as JSONL to this file (cctrace's input)")
		drain    = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		fault    = fs.String("fault", "", `inject faults on every accepted connection for chaos testing, e.g. "flip=65536,seed=7" (see internal/faultnet)`)
		govern   = fs.Bool("governor", false, "enable the overload governor: sample memory/CPU pressure, degrade compression, shed load, and refuse new subscribers under critical memory pressure (implied by the -mem-budget/-bytes-budget/-governor-interval flags)")
		memBudg  = fs.Int64("mem-budget", 0, "governor heap budget in bytes (0 = inherit GOMEMLIMIT, negative = disable the heap dimension)")
		byteBudg = fs.Int64("bytes-budget", 0, "governor budget for aggregate queued+cached bytes — subscriber queues, replay rings, frame cache (0 = default)")
		govIntvl = fs.Duration("governor-interval", 0, "governor sampling interval (0 = default)")
		brkWait  = fs.Duration("breaker-wait", 0, "slow-subscriber circuit breaker: evict a subscriber whose queue wait stays over this for -breaker-window (0 disables)")
		brkWin   = fs.Duration("breaker-window", 0, "how long queue wait must stay over -breaker-wait before the breaker trips (0 = default)")
		rAfter   = fs.Duration("retry-after", 0, "retry delay suggested to subscribers refused by governor admission control (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	plan, err := faultnet.ParsePlan(*fault)
	if err != nil {
		return err
	}

	var names []string
	for _, n := range strings.Split(*channels, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("need at least one channel name in -channels")
	}
	pol, err := broker.ParsePolicy(*policy)
	if err != nil {
		return err
	}
	pl, err := selector.ParsePlacement(*placemnt)
	if err != nil {
		return err
	}

	trace := obs.NewDecisionLog(*traceLen)
	var tracer *tracing.Tracer
	if *trRate > 0 || *trOut != "" {
		tracer = tracing.New("ccbroker", *trRate, 0)
		if *trOut != "" {
			if err := tracer.OpenOutput(*trOut); err != nil {
				return fmt.Errorf("trace output: %w", err)
			}
		}
		defer tracer.Close()
	}
	cfg := broker.Config{
		Channels:     names,
		QueueLen:     *queueLen,
		Shards:       *shards,
		Policy:       pol,
		Placement:    pl,
		CacheBytes:   *cache,
		Heartbeat:    *hb,
		ReplayBlocks: *rblocks,
		ReplayBytes:  *rbytes,
		ReadTimeout:  *rto,
		WriteTimeout: *wto,
		Metrics:      metrics.NewRegistry(),
		Trace:        trace,
		Tracer:       tracer,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ccbroker: "+format+"\n", args...)
		},
	}
	cfg.BreakerWait = *brkWait
	cfg.BreakerWindow = *brkWin
	cfg.RetryAfter = *rAfter
	if *govern || *memBudg != 0 || *byteBudg != 0 || *govIntvl > 0 {
		cfg.Governor = &governor.Config{
			MemBudget:   *memBudg,
			BytesBudget: *byteBudg,
			Interval:    *govIntvl,
		}
	}
	cfg.Engine.Selector = selector.DefaultConfig()
	cfg.Engine.Selector.BlockSize = *block
	cfg.Engine.SpeedScale = *speed
	cfg.Engine.Workers = *workers
	if cfg.Engine.Workers <= 0 {
		cfg.Engine.Workers = runtime.GOMAXPROCS(0)
	}
	b, err := broker.New(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	if plan.Enabled() {
		fmt.Fprintf(os.Stderr, "ccbroker: injecting faults on accepted connections: %s\n", plan)
		ln = faultnet.WrapListener(ln, plan)
	}
	fmt.Fprintf(os.Stderr, "ccbroker: serving %s on %s (policy=%s queue=%d)\n",
		strings.Join(names, ","), ln.Addr(), pol, *queueLen)
	serveDone := make(chan error, 1)
	go func() { serveDone <- b.Serve(ln) }()

	if *debug != "" {
		dbg, err := obs.Serve(*debug, b.Metrics(), trace, tracer.Ring())
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "ccbroker: debug plane on http://%s/\n", dbg.Addr())
	}
	dumpEvery := *interval
	if dumpEvery <= 0 {
		dumpEvery = *stats
	}
	stopDump := obs.DumpEvery(b.Metrics(), dumpEvery, os.Stderr)
	defer stopDump()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case <-stop:
	case <-sig:
	case err := <-serveDone:
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}
