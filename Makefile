GO      ?= go
SHA     := $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)
BENCH_OUT ?= BENCH_$(SHA).json
SWARM_OUT ?= swarm.json
SWARM_SUBS ?= 1000
SWARM_COMPARE ?= swarm-gate-compare.json
SOAK_SUBS ?= 1000
SOAK_OUT ?= soak-metrics.jsonl
SOAK_GOMEMLIMIT ?= 512MiB

.PHONY: all build test race vet bench bench-baseline swarm swarm-gate swarm-baseline breakeven soak clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench runs the pipeline benchmark suite and writes a machine-readable
# artifact (ns/block, MB/s, allocs/op, memcpy-normalized throughput) named
# after the commit under test. Set CCX_BENCH_BASELINE=bench/baseline.json
# to also enforce the 15% normalized-throughput regression gate.
bench:
	CCX_BENCH_OUT=$(BENCH_OUT) CCX_BENCH_SHA=$(SHA) $(GO) test -run TestBenchArtifact -count=1 -v .

# bench-baseline refreshes the committed baseline from this machine.
bench-baseline:
	CCX_BENCH_OUT=bench/baseline.json CCX_BENCH_SHA=$(SHA) $(GO) test -run TestBenchArtifact -count=1 -v .

# swarm drives the subscriber-swarm harness: SWARM_SUBS subscribers over
# simulated links against an in-process broker, asserting the encode
# plane's >=10x deliveries-per-encode dedup and writing delivery-latency
# percentiles to $(SWARM_OUT). Broker placement exercises the per-class
# placement machinery at fan-out scale; the report carries the
# per-placement delivery breakdown.
swarm:
	$(GO) run ./cmd/ccswarm -subs $(SWARM_SUBS) -events 16 -block 16384 \
		-profiles gigabit,fast100 -interval 25ms -min-dedup 10 \
		-placement broker -json $(SWARM_OUT)

# swarm-gate re-runs the committed baseline's gated tiers (1k and the 10k
# acceptance tier) with the baseline's exact parameters and fails on a >15%
# p99 regression at any matched tier. The per-tier comparison lands in
# $(SWARM_COMPARE) so CI can upload it whether the gate passes or fails.
swarm-gate:
	$(GO) run ./cmd/ccswarm -tiers 1000,10000 -events 8 -block 2048 -interval 250ms \
		-profiles none -placement broker -shards 4 \
		-baseline bench/swarm_baseline.json -max-regress 0.15 -compare $(SWARM_COMPARE)

# swarm-baseline refreshes the committed connections-vs-p99 baseline from
# this machine. Keep the parameters in lockstep with swarm-gate.
swarm-baseline:
	$(GO) run ./cmd/ccswarm -tiers 1000,2500,5000,10000 -events 8 -block 2048 -interval 250ms \
		-profiles none -placement broker -shards 4 -json bench/swarm_baseline.json

# soak drives the overload-governor acceptance soak under -race: SOAK_SUBS
# stalled subscribers push a memory-capped broker (GOMEMLIMIT set) past its
# byte budget; it must refuse admission, degrade the method ladder, shed in
# bounded steps, stay under the cap, and fully recover with zero leaks. The
# final governor metrics snapshot lands in $(SOAK_OUT).
soak:
	GOMEMLIMIT=$(SOAK_GOMEMLIMIT) CCX_SOAK_SUBS=$(SOAK_SUBS) CCX_METRICS_OUT=$(SOAK_OUT) \
		$(GO) test -race -count=1 -run TestSoakOverloadGovernor -v ./internal/broker/

# breakeven regenerates the placement break-even sweep (EXPERIMENTS.md
# "Compression placement break-even") and its JSON artifact.
breakeven:
	CCX_BREAKEVEN_OUT=$(PWD)/breakeven.json CCX_BREAKEVEN_MD=$(PWD)/EXPERIMENTS.md \
		$(GO) test -run TestPlacementBreakEven -count=1 ./tests/

clean:
	rm -f BENCH_*.json swarm.json swarm-gate-compare.json breakeven.json soak-metrics.jsonl
