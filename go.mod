module ccx

go 1.22
