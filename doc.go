// Package ccx is a from-scratch Go reproduction of "Efficient End to End
// Data Exchange Using Configurable Compression" (Wiseman, Schwan, Widener —
// ICDCS 2004): middleware-integrated, automatically configured lossless
// compression that matches data rates to current network bandwidth, CPU
// capacity and data compressibility.
//
// The root module holds the benchmark harness (bench_test.go, one
// testing.B target per paper table/figure); the system lives under
// internal/ (see DESIGN.md for the inventory) with executables in cmd/ and
// runnable scenarios in examples/.
package ccx
