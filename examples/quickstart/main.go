// Quickstart: adaptive compression over a simulated 1 MBit/s line.
//
// A megabyte of transactional data is streamed in 128 KB blocks. The first
// block goes out raw (no goodput measurement exists yet); as soon as the
// engine observes how slow the line is, the selector switches to a
// dictionary method and the wire volume collapses.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"ccx/internal/core"
	"ccx/internal/datagen"
	"ccx/internal/netsim"
)

func main() {
	// The engine bundles the goodput monitor, the 4 KB sampling probe and
	// the paper's selection algorithm with its published thresholds.
	engine, err := core.NewEngine(core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// A simulated 1 MBit/s line on a virtual clock: experiments finish in
	// microseconds of wall time and are perfectly reproducible.
	clock := netsim.NewVirtual()
	link := netsim.NewLink(netsim.Slow1M, clock, 42)

	data := datagen.OISTransactions(1<<20, 0.9, 7)

	session := core.NewSession(engine)
	send := func(frame []byte) (time.Duration, error) {
		return link.Send(len(frame)), nil
	}

	fmt.Println("block  method           original  wire      send time")
	results, err := session.Stream(data, send, func(r core.BlockResult) {
		fmt.Printf("%-6d %-16s %-9d %-9d %v\n",
			r.Index, r.Decision.Method, r.Info.OrigLen, r.WireBytes, r.SendTime.Round(time.Millisecond))
	})
	if err != nil {
		log.Fatal(err)
	}

	var orig, wire int
	for _, r := range results {
		orig += r.Info.OrigLen
		wire += r.WireBytes
	}
	fmt.Printf("\ntotal: %d bytes -> %d on the wire (%.1f%%), %v of virtual link time\n",
		orig, wire, float64(wire)/float64(orig)*100, clock.Elapsed().Round(time.Millisecond))
	fmt.Printf("sending raw would have taken ≈%v\n",
		time.Duration(float64(orig)/netsim.Slow1M.RateBps*float64(time.Second)).Round(time.Millisecond))
}
