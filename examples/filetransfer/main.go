// Filetransfer: adaptive transfer over a real TCP connection, with the
// receiver's acceptance rate changing mid-stream.
//
// The receiver deliberately throttles itself for the middle third of the
// transfer (as if its CPU were busy or its downstream link congested).
// TCP backpressure turns that into longer sender-side Write times, the
// goodput monitor notices, and the selector switches methods — live, on a
// loopback socket, no simulation involved.
//
//	go run ./examples/filetransfer
package main

import (
	"fmt"
	"log"
	"net"
	"sync/atomic"
	"time"

	"ccx/internal/core"
	"ccx/internal/datagen"
	"ccx/internal/selector"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()

	var throttle atomic.Bool
	recvDone := make(chan int64, 1)

	go func() {
		conn, err := ln.Accept()
		if err != nil {
			recvDone <- -1
			return
		}
		defer conn.Close()
		r := core.NewReader(conn, nil, nil)
		var total int64
		buf := make([]byte, 8<<10)
		for {
			n, err := r.Read(buf)
			total += int64(n)
			if throttle.Load() && n > 0 {
				// Busy receiver: drain slowly so the sender's socket
				// buffers fill and Writes stall.
				time.Sleep(25 * time.Millisecond)
			}
			if err != nil {
				break
			}
		}
		recvDone <- total
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return err
	}
	defer conn.Close()
	// A small socket buffer makes backpressure visible quickly.
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetWriteBuffer(32 << 10)
	}

	cfg := selector.DefaultConfig()
	cfg.BlockSize = 64 << 10
	engine, err := core.NewEngine(core.Config{Selector: cfg})
	if err != nil {
		return err
	}

	data := datagen.OISTransactions(6<<20, 0.9, 2)
	third := len(data) / 3

	fmt.Println("block  phase       method           wire bytes  send time")
	var sent int
	w := core.NewWriter(conn, engine, func(r core.BlockResult) {
		phase := "fast"
		if throttle.Load() {
			phase = "throttled"
		}
		fmt.Printf("%-6d %-11s %-16s %-11d %v\n",
			r.Index, phase, r.Decision.Method, r.WireBytes, r.SendTime.Round(time.Millisecond))
	})

	write := func(chunk []byte) error {
		_, err := w.Write(chunk)
		sent += len(chunk)
		return err
	}
	if err := write(data[:third]); err != nil {
		return err
	}
	throttle.Store(true) // receiver gets busy
	if err := write(data[third : 2*third]); err != nil {
		return err
	}
	throttle.Store(false) // and recovers
	if err := write(data[2*third:]); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	conn.Close()

	if total := <-recvDone; total != int64(len(data)) {
		return fmt.Errorf("receiver got %d of %d bytes", total, len(data))
	}
	fmt.Printf("\ntransferred %d bytes intact; methods tracked the receiver's pace\n", len(data))
	return nil
}
