// Molecular: scientific-data streaming through ECho-style middleware with
// configurable compression, under MBone-driven network load — the paper's
// §4.2 molecular scenario end to end.
//
// A producer publishes one PBIO-serialized molecular-dynamics frame per
// virtual second for 160 seconds, matching the paper's Figure 11 timeline.
// A derived channel compresses each event with whatever method the engine
// picks at that moment; the consumer decodes transparently and reports its
// acceptance rate upstream through a quality attribute. The method track
// mirrors Figure 11: raw while the MBone audience is small, mostly Huffman
// at peak load, with dictionary methods on the repetitive topology frames.
//
//	go run ./examples/molecular
package main

import (
	"fmt"
	"log"
	"time"

	"ccx/internal/codec"
	"ccx/internal/core"
	"ccx/internal/datagen"
	"ccx/internal/echo"
	"ccx/internal/netsim"
	"ccx/internal/selector"
	"ccx/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 100 MBit/s link whose background load follows the MBone trace,
	// scaled down 16x so the CPU-vs-network balance matches the paper's
	// testbed (see DESIGN.md).
	const k = 16
	clock := netsim.NewVirtual()
	start := clock.Now()
	prof := netsim.Fast100
	prof.RateBps /= k
	link := netsim.NewLink(prof, clock, 3)
	tr := trace.MBoneSynthetic(3)
	link.SetLoad(tr.LoadFunc(trace.DefaultLoadConfig(prof, start), prof))

	// Engine with a virtual CPU scaled into the paper's Figure 4 regime.
	cfg := selector.DefaultConfig()
	cfg.BlockSize = 8 << 10 // frames are the block unit here
	tick := time.Unix(0, 0)
	engine, err := core.NewEngine(core.Config{
		Selector:   cfg,
		Now:        func() time.Time { tick = tick.Add(time.Millisecond); return tick },
		SpeedScale: (0.7 * 4096 / 0.001) / (2.2e6 / k),
	})
	if err != nil {
		return err
	}

	// Middleware wiring: raw frames in, compressed frames out of a derived
	// channel (§3.2's dynamic handler instantiation).
	domain := echo.NewDomain()
	frames := domain.OpenChannel("md.frames")
	compressed, err := core.DeriveCompressed(frames, "md.frames.z", engine)
	if err != nil {
		return err
	}

	methodCounts := map[codec.Method]int{}
	var wire, orig int
	var lastMethod codec.Method
	compressed.Subscribe(func(ev echo.Event) {
		data, info, err := core.DecodeEvent(ev, nil)
		if err != nil {
			log.Printf("decode: %v", err)
			return
		}
		lastMethod = info.Method
		methodCounts[info.Method]++
		wire += info.CompLen
		orig += len(data)
		// Consumer side: the simulated send's timing is reported upstream —
		// the quality-attribute feedback loop of §3.2.
		d := link.Send(info.CompLen)
		compressed.SetAttr(core.AttrGoodput, fmt.Sprintf("%f", float64(info.CompLen)/d.Seconds()))
	})

	// Producer: one frame per virtual second; every 10th frame is
	// repetitive topology/metadata rather than particle records.
	recSize := datagen.MolecularFormat().RecordSize()
	atomsPerFrame := (8 << 10) / recSize
	topo := datagen.OISTransactions(8<<10, 0.95, 11)

	fmt.Println("t(s)   load  frame kind  method")
	frameGap := time.Second
	for i := 0; i < 160; i++ {
		var payload []byte
		kind := "records"
		if i%10 == 9 {
			payload = topo
			kind = "topology"
		} else {
			atoms := datagen.Molecular(atomsPerFrame, int64(i))
			var err error
			payload, err = datagen.MolecularBatch(atoms)
			if err != nil {
				return err
			}
		}
		if err := frames.Submit(echo.Event{Data: payload}); err != nil {
			return err
		}
		if i%10 == 0 || kind == "topology" {
			fmt.Printf("%-6.0f %-5d %-11s %s\n",
				clock.Now().Sub(start).Seconds(), tr.At(clock.Now().Sub(start)), kind, lastMethod)
		}
		// Next frame arrives after the production interval.
		clock.Advance(frameGap)
	}

	fmt.Printf("\n160 frames: %d bytes -> %d on the wire (%.1f%%)\n",
		orig, wire, float64(wire)/float64(orig)*100)
	fmt.Printf("method mix: none=%d huffman=%d lz=%d bwt=%d (paper Figure 11: mostly Huffman, dictionary islands)\n",
		methodCounts[codec.None], methodCounts[codec.Huffman],
		methodCounts[codec.LempelZiv], methodCounts[codec.BurrowsWheeler])
	return nil
}
