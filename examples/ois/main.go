// OIS: the paper's commercial scenario as real middleware — producer and
// consumer in different address spaces connected by the transport
// encapsulation layer, with a consumer-initiated derived compression
// channel and quality attributes flowing upstream (§3.2).
//
// The producer publishes operational-information-system transactions.
// The consumer, noticing how slowly it accepts events (its simulated WAN
// is congested), derives a compressed channel at runtime and subscribes to
// it instead — no producer change, no recompilation, exactly the ECho
// evolution story. Goodput reports flow back as attributes and drive the
// producer-side selector.
//
//	go run ./examples/ois
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"ccx/internal/codec"
	"ccx/internal/core"
	"ccx/internal/datagen"
	"ccx/internal/echo"
	"ccx/internal/netsim"
	"ccx/internal/selector"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Two address spaces joined by one multiplexed connection.
	producerSide, consumerSide := net.Pipe()
	prodDomain := echo.NewDomain()
	consDomain := echo.NewDomain()
	prodBridge := echo.NewBridge(prodDomain, producerSide)
	consBridge := echo.NewBridge(consDomain, consumerSide)
	defer func() {
		prodBridge.Close()
		consBridge.Close()
		<-prodBridge.Done()
		<-consBridge.Done()
	}()

	// Producer side: a raw transaction channel plus an engine that will
	// serve any derived compression channel.
	cfg := selector.DefaultConfig()
	cfg.BlockSize = 16 << 10
	engine, err := core.NewEngine(core.Config{Selector: cfg})
	if err != nil {
		return err
	}
	raw := prodDomain.OpenChannel("ois.txns")
	if _, err := core.DeriveCompressed(raw, "ois.txns.z", engine); err != nil {
		return err
	}

	// Consumer side: import the compressed channel through the bridge. In a
	// deployed system the consumer would first watch "ois.txns", measure its
	// acceptance rate, and only then derive; here it goes straight to the
	// derived channel for brevity.
	imported, err := consBridge.ImportChannel("ois.txns.z")
	if err != nil {
		return err
	}

	// The consumer's outbound WAN is a congested 1 MBit/s simulated line;
	// its acceptance rate is what the producer must adapt to.
	clock := netsim.NewVirtual()
	wan := netsim.NewLink(netsim.Slow1M, clock, 9)

	type rx struct {
		info codec.BlockInfo
	}
	got := make(chan rx, 256)
	core.SubscribeDecompressed(imported, nil, 0, func(data []byte, info codec.BlockInfo) {
		// Simulate pushing the payload onward across the WAN and report the
		// achieved rate upstream via the quality attribute.
		d := wan.Send(info.CompLen)
		imported.SetAttr(core.AttrGoodput, fmt.Sprintf("%f", float64(info.CompLen)/d.Seconds()))
		got <- rx{info}
	})

	// Wait until the subscription has propagated to the producer.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ch, ok := prodDomain.Channel("ois.txns.z"); ok && ch.Subscribers() > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	fmt.Println("event  method           original  wire")
	var orig, wire int
	for i := 0; i < 24; i++ {
		payload := datagen.OISTransactions(16<<10, 0.9, int64(i))
		if err := raw.Submit(echo.Event{Data: payload}); err != nil {
			return err
		}
		select {
		case r := <-got:
			orig += r.info.OrigLen
			wire += r.info.CompLen
			fmt.Printf("%-6d %-16s %-9d %d\n", i, r.info.Method, r.info.OrigLen, r.info.CompLen)
		case <-time.After(5 * time.Second):
			return fmt.Errorf("event %d never arrived", i)
		}
	}
	fmt.Printf("\ntotal: %d bytes -> %d across the bridge (%.1f%%)\n",
		orig, wire, float64(wire)/float64(orig)*100)
	fmt.Println("the first events travel raw; once goodput reports arrive, the selector switches on compression")
	return nil
}
