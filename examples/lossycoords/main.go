// Lossycoords: the paper's §5 future work, running — an application-
// specific lossy codec deployed into the middleware at runtime.
//
// Molecular coordinates barely compress losslessly (Figure 6); §5 concludes
// that such data needs user-integrated lossy methods. Here the application
// registers a float64 quantizer (tolerance it chooses: 0.1 mÅ) under a
// custom method identifier, derives a lossy channel from the raw coordinate
// stream, and the consumer decodes transparently through the same frame
// format — no middleware changes, no producer changes.
//
//	go run ./examples/lossycoords
package main

import (
	"bytes"
	"fmt"
	"log"

	"ccx/internal/codec"
	"ccx/internal/datagen"
	"ccx/internal/echo"
	"ccx/internal/lossy"
	"ccx/internal/pbio"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The application knows its precision needs: 1e-4 in coordinate units.
	const tolerance = 1e-4
	quantizer, err := lossy.NewFloat64Quantizer(codec.FirstCustom, tolerance)
	if err != nil {
		return err
	}
	registry := codec.NewRegistry()
	registry.Register(quantizer) // runtime deployment (§3.2 / §5)

	domain := echo.NewDomain()
	coords := domain.OpenChannel("md.coords")
	lossyCh, err := coords.Derive("md.coords.lossy", func(ev echo.Event) (echo.Event, bool) {
		var buf bytes.Buffer
		fw := codec.NewFrameWriter(&buf, registry)
		if _, err := fw.WriteBlock(quantizer.Method(), ev.Data); err != nil {
			return echo.Event{}, false
		}
		return echo.Event{Data: append([]byte(nil), buf.Bytes()...)}, true
	})
	if err != nil {
		return err
	}

	var totalIn, totalOut int
	lossyCh.Subscribe(func(ev echo.Event) {
		data, info, err := codec.NewFrameReader(bytes.NewReader(ev.Data), registry).ReadBlock()
		if err != nil {
			log.Printf("decode: %v", err)
			return
		}
		totalIn += info.OrigLen
		totalOut += info.CompLen
		_ = data // reconstructed coordinates, within ±tolerance/2
	})

	// Compare against the strongest lossless method on the same stream.
	var losslessOut int
	for frameNo := 0; frameNo < 20; frameNo++ {
		atoms := datagen.Molecular(3000, int64(frameNo))
		batch, err := datagen.MolecularBatch(atoms)
		if err != nil {
			return err
		}
		f := datagen.MolecularFormat()
		col, err := pbio.ExtractColumn(batch, f, f.FieldIndex("coordinates"))
		if err != nil {
			return err
		}
		bwtOut, err := codec.Compress(codec.BurrowsWheeler, col)
		if err != nil {
			return err
		}
		losslessOut += len(bwtOut)
		if err := coords.Submit(echo.Event{Data: col}); err != nil {
			return err
		}
	}

	fmt.Printf("20 coordinate frames, %d bytes total\n", totalIn)
	fmt.Printf("  best lossless (burrows-wheeler): %7d bytes (%.1f%%)\n",
		losslessOut, 100*float64(losslessOut)/float64(totalIn))
	fmt.Printf("  lossy quantizer (±%.0e):         %7d bytes (%.1f%%)\n",
		tolerance/2, totalOut, 100*float64(totalOut)/float64(totalIn))
	fmt.Println("the application-specific codec reaches where lossless methods cannot (paper §5)")
	return nil
}
