// Package ccx_test hosts the benchmark harness: one testing.B benchmark per
// table and figure of the paper, each delegating to internal/experiments.
// Benchmarks print the regenerated report once (first iteration) so that
// `go test -bench=.` doubles as a reproduction run; `cmd/ccbench` renders
// the same reports interactively.
package ccx_test

import (
	"fmt"
	"io"
	"os"
	"sync"
	"testing"

	"ccx/internal/experiments"
)

// benchOptions uses a mid-size scale: full MBone scenario, K=16.
func benchOptions() experiments.Options {
	return experiments.Options{TimeScale: 16}
}

var printOnce sync.Map

// runExperiment executes one registered experiment per iteration, rendering
// its report to stdout on the first run.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		report, err := experiments.Run(id, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, loaded := printOnce.LoadOrStore(id, true); !loaded {
			fmt.Println()
			if err := report.Render(os.Stdout); err != nil {
				b.Fatal(err)
			}
		} else {
			if err := report.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFigure1MethodTable(b *testing.B)          { runExperiment(b, "fig1") }
func BenchmarkFigure2CommercialRatios(b *testing.B)     { runExperiment(b, "fig2") }
func BenchmarkFigure3Times(b *testing.B)                { runExperiment(b, "fig3") }
func BenchmarkFigure4ReducingSpeed(b *testing.B)        { runExperiment(b, "fig4") }
func BenchmarkFigure5LinkSpeeds(b *testing.B)           { runExperiment(b, "fig5") }
func BenchmarkFigure6MolecularRatios(b *testing.B)      { runExperiment(b, "fig6") }
func BenchmarkFigure7MBoneTrace(b *testing.B)           { runExperiment(b, "fig7") }
func BenchmarkFigure8CommercialAdaptation(b *testing.B) { runExperiment(b, "fig8") }
func BenchmarkFigure9CompressionTimes(b *testing.B)     { runExperiment(b, "fig9") }
func BenchmarkFigure10BlockSizes(b *testing.B)          { runExperiment(b, "fig10") }
func BenchmarkFigure11MolecularAdaptation(b *testing.B) { runExperiment(b, "fig11") }
func BenchmarkFigure12MolecularBlockSizes(b *testing.B) { runExperiment(b, "fig12") }
func BenchmarkConclusionEndToEnd(b *testing.B)          { runExperiment(b, "conclusion") }

func BenchmarkAblationMethods(b *testing.B)    { runExperiment(b, "ablation-methods") }
func BenchmarkAblationThresholds(b *testing.B) { runExperiment(b, "ablation-thresholds") }
func BenchmarkAblationBlockSize(b *testing.B)  { runExperiment(b, "ablation-blocksize") }
func BenchmarkAblationProbeSize(b *testing.B)  { runExperiment(b, "ablation-probe") }
func BenchmarkAblationPolicies(b *testing.B)   { runExperiment(b, "ablation-policy") }
