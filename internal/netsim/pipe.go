package netsim

import (
	"net"
	"time"
)

// ShapedPipe returns an in-memory, full-duplex connection pair whose writes
// are paced in real time to the given link profile (rate, latency, jitter).
// It lets the live io adapters (core.Writer/Reader) and the echo bridge be
// exercised against the paper's link classes without leaving the process:
// unlike the virtual-clock Link, a shaped pipe actually takes wall time.
//
// Each direction is shaped independently with its own jitter stream.
func ShapedPipe(p Profile, seed int64) (net.Conn, net.Conn) {
	a, b := net.Pipe()
	return &shapedConn{Conn: a, link: NewLink(p, RealClock{}, seed)},
		&shapedConn{Conn: b, link: NewLink(p, RealClock{}, seed+1)}
}

// shapedConn delays every write by the link's computed transfer time before
// handing the bytes to the underlying pipe.
type shapedConn struct {
	net.Conn
	link *Link
}

var _ net.Conn = (*shapedConn)(nil)

// Write implements net.Conn with rate pacing.
func (c *shapedConn) Write(p []byte) (int, error) {
	if d := c.link.TransferTime(len(p)); d > 0 {
		time.Sleep(d)
	}
	return c.Conn.Write(p)
}

// Stats exposes the shaping link's counters for assertions and reporting.
func (c *shapedConn) Stats() Stats { return c.link.Stats() }

// LinkStats extracts shaping statistics from a ShapedPipe end; ok is false
// for connections that are not shaped.
func LinkStats(conn net.Conn) (Stats, bool) {
	sc, ok := conn.(*shapedConn)
	if !ok {
		return Stats{}, false
	}
	return sc.Stats(), true
}
