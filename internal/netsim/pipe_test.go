package netsim

import (
	"bytes"
	"io"
	"testing"
	"time"
)

func TestShapedPipeDelivers(t *testing.T) {
	fast := Profile{Name: "fast", RateBps: 100e6, JitterFrac: 0}
	a, b := ShapedPipe(fast, 1)
	defer a.Close()
	defer b.Close()
	msg := []byte("through the shaped pipe")
	go func() {
		a.Write(msg)
	}()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("got %q", buf)
	}
}

func TestShapedPipePacing(t *testing.T) {
	// 1 MB/s, 200 KB transfer → ≥ 200 ms of pacing (generous lower bound
	// to stay robust under CI scheduling noise).
	prof := Profile{Name: "paced", RateBps: 1e6, JitterFrac: 0}
	a, b := ShapedPipe(prof, 2)
	defer a.Close()
	defer b.Close()
	payload := make([]byte, 200<<10)
	done := make(chan time.Duration, 1)
	go func() {
		start := time.Now()
		for off := 0; off < len(payload); off += 8192 {
			if _, err := a.Write(payload[off : off+8192]); err != nil {
				done <- -1
				return
			}
		}
		done <- time.Since(start)
	}()
	if _, err := io.ReadFull(b, make([]byte, len(payload))); err != nil {
		t.Fatal(err)
	}
	elapsed := <-done
	if elapsed < 150*time.Millisecond {
		t.Fatalf("200 KB at 1 MB/s finished in %v — not paced", elapsed)
	}
	stats, ok := LinkStats(a)
	if !ok {
		t.Fatal("LinkStats failed on shaped end")
	}
	if stats.Bytes != int64(len(payload)) {
		t.Fatalf("stats bytes = %d", stats.Bytes)
	}
}

func TestShapedPipeBidirectional(t *testing.T) {
	fast := Profile{Name: "duplex", RateBps: 100e6, JitterFrac: 0}
	a, b := ShapedPipe(fast, 3)
	defer a.Close()
	defer b.Close()
	go func() {
		a.Write([]byte("ping"))
		buf := make([]byte, 4)
		io.ReadFull(a, buf)
	}()
	buf := make([]byte, 4)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
}

func TestLinkStatsOnUnshapedConn(t *testing.T) {
	if _, ok := LinkStats(nil); ok {
		t.Fatal("nil conn reported stats")
	}
}
