package netsim

import (
	"math"
	"testing"
	"time"
)

func TestVirtualClock(t *testing.T) {
	v := NewVirtual()
	start := v.Now()
	v.Advance(3 * time.Second)
	if got := v.Now().Sub(start); got != 3*time.Second {
		t.Fatalf("advanced %v", got)
	}
	v.Advance(-time.Second) // ignored
	if v.Elapsed() != 3*time.Second {
		t.Fatalf("Elapsed = %v", v.Elapsed())
	}
}

func TestProfilesMatchPaper(t *testing.T) {
	// Figure 5 values.
	want := []struct {
		name string
		mbps float64
		std  float64
	}{
		{"1GBit", 26.32094622, 0.00782},
		{"100MBit", 7.520270348, 0.0895},
		{"1MBit", 0.146907607, 0.0117},
		{"international", 0.10891426, 0.4602},
	}
	profs := Profiles()
	if len(profs) != 4 {
		t.Fatalf("Profiles() returned %d", len(profs))
	}
	for i, w := range want {
		p := profs[i]
		if p.Name != w.name {
			t.Errorf("profile %d name = %q", i, p.Name)
		}
		if math.Abs(p.RateBps/1e6-w.mbps) > 1e-9 {
			t.Errorf("%s rate = %v MB/s want %v", p.Name, p.RateBps/1e6, w.mbps)
		}
		if math.Abs(p.JitterFrac-w.std) > 1e-9 {
			t.Errorf("%s jitter = %v want %v", p.Name, p.JitterFrac, w.std)
		}
	}
}

func TestTransferTimeScalesWithSize(t *testing.T) {
	clk := NewVirtual()
	link := NewLink(Profile{Name: "flat", RateBps: 1e6, JitterFrac: 0, Latency: 0}, clk, 1)
	d1 := link.TransferTime(100000)
	d2 := link.TransferTime(200000)
	if math.Abs(d2.Seconds()-2*d1.Seconds()) > 1e-6 {
		t.Fatalf("expected linear scaling: %v vs %v", d1, d2)
	}
	if math.Abs(d1.Seconds()-0.1) > 1e-6 {
		t.Fatalf("100 KB at 1 MB/s should take 0.1 s, got %v", d1)
	}
}

func TestLatencyAdds(t *testing.T) {
	clk := NewVirtual()
	link := NewLink(Profile{Name: "lat", RateBps: 1e9, JitterFrac: 0, Latency: 50 * time.Millisecond}, clk, 1)
	d := link.TransferTime(1)
	if d < 50*time.Millisecond {
		t.Fatalf("latency not applied: %v", d)
	}
}

func TestLoadReducesRate(t *testing.T) {
	clk := NewVirtual()
	mk := func(loadFrac float64) time.Duration {
		link := NewLink(Profile{Name: "l", RateBps: 1e6, JitterFrac: 0}, clk, 1)
		link.SetLoad(func(time.Time) float64 { return loadFrac })
		return link.TransferTime(100000)
	}
	unloaded := mk(0)
	halfLoaded := mk(0.5)
	if math.Abs(halfLoaded.Seconds()-2*unloaded.Seconds()) > 1e-6 {
		t.Fatalf("50%% load should double send time: %v vs %v", unloaded, halfLoaded)
	}
	// Extreme load is clamped, not divide-by-zero.
	if d := mk(1.5); d <= 0 || d > time.Hour {
		t.Fatalf("clamped load produced %v", d)
	}
	if d := mk(-3); math.Abs(d.Seconds()-unloaded.Seconds()) > 1e-6 {
		t.Fatalf("negative load should clamp to none: %v", d)
	}
}

func TestJitterStatisticsMatchProfile(t *testing.T) {
	clk := NewVirtual()
	link := NewLink(Profile{Name: "j", RateBps: 1e6, JitterFrac: 0.10}, clk, 42)
	n := 20000
	blockSize := 100000
	var rates []float64
	for i := 0; i < n; i++ {
		d := link.TransferTime(blockSize)
		rates = append(rates, float64(blockSize)/d.Seconds())
	}
	mean, std := meanStd(rates)
	if math.Abs(mean-1e6)/1e6 > 0.02 {
		t.Fatalf("mean rate = %v, want ≈1e6", mean)
	}
	if rel := std / mean; math.Abs(rel-0.10) > 0.02 {
		t.Fatalf("relative stddev = %.4f, want ≈0.10", rel)
	}
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}

func TestSendAdvancesVirtualClock(t *testing.T) {
	clk := NewVirtual()
	link := NewLink(Profile{Name: "s", RateBps: 1e6, JitterFrac: 0}, clk, 1)
	d := link.Send(500000)
	if clk.Elapsed() != d {
		t.Fatalf("clock advanced %v, send took %v", clk.Elapsed(), d)
	}
}

func TestStats(t *testing.T) {
	clk := NewVirtual()
	link := NewLink(Profile{Name: "st", RateBps: 1e6, JitterFrac: 0}, clk, 1)
	link.Send(1000)
	link.Send(2000)
	s := link.Stats()
	if s.Blocks != 2 || s.Bytes != 3000 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MeanGoodput <= 0 || s.MinGoodput <= 0 || s.MaxGoodput < s.MinGoodput {
		t.Fatalf("goodput stats = %+v", s)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() []time.Duration {
		clk := NewVirtual()
		link := NewLink(Fast100, clk, 99)
		var out []time.Duration
		for i := 0; i < 10; i++ {
			out = append(out, link.Send(128*1024))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce identical transfer times")
		}
	}
}

func TestProfileString(t *testing.T) {
	s := Gigabit.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func TestRealClock(t *testing.T) {
	var c Clock = RealClock{}
	if c.Now().IsZero() {
		t.Fatal("RealClock returned zero time")
	}
}
