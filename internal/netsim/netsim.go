// Package netsim simulates the paper's four communication environments
// (Figure 5): a 1 GBit/s intranet link, a 100 MBit/s intranet link, a
// 1 MBit/s line, and the international Internet path between Georgia Tech
// and Bar-Ilan University. Links are modelled by mean transfer rate,
// propagation latency, multiplicative Gaussian rate jitter matched to the
// paper's measured standard deviations, and a pluggable background-load
// function (driven by MBone traces in §4.2).
//
// Experiments run on a virtual clock: transferring a block advances
// simulated time by the computed duration, so a 160-second scenario
// finishes in microseconds of wall time and is fully reproducible.
package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"
)

// Clock supplies the current time. The production engine uses the real
// clock; experiments use a Virtual clock.
type Clock interface {
	Now() time.Time
}

// RealClock is the wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Virtual is a manually advanced clock, safe for concurrent use.
type Virtual struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtual returns a virtual clock starting at the Unix epoch.
func NewVirtual() *Virtual {
	return &Virtual{now: time.Unix(0, 0)}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Advance moves the clock forward by d (negative d is ignored).
func (v *Virtual) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	v.mu.Unlock()
}

// Elapsed reports time since the epoch start.
func (v *Virtual) Elapsed() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now.Sub(time.Unix(0, 0))
}

// Profile describes a link class.
type Profile struct {
	// Name labels the link in reports.
	Name string
	// RateBps is the mean end-to-end transfer rate in bytes per second, as
	// measured on a warm, unloaded line.
	RateBps float64
	// JitterFrac is the relative standard deviation of the rate (the
	// paper's Figure 5 stddev percentages).
	JitterFrac float64
	// Latency is the per-block propagation delay.
	Latency time.Duration
}

// The paper's measured link profiles (Figure 5). Rates are the reported
// MBytes/s converted to bytes/s; stddevs are the reported percentages.
var (
	// Gigabit is the 1 GBit/s intranet link: 26.32094622 MB/s ± 0.782 %.
	Gigabit = Profile{Name: "1GBit", RateBps: 26.32094622 * 1e6, JitterFrac: 0.00782, Latency: 100 * time.Microsecond}
	// Fast100 is the 100 MBit/s intranet link: 7.520270348 MB/s ± 8.95 %.
	Fast100 = Profile{Name: "100MBit", RateBps: 7.520270348 * 1e6, JitterFrac: 0.0895, Latency: 200 * time.Microsecond}
	// Slow1M is the 1 MBit/s line: 0.146907607 MB/s ± 1.17 %.
	Slow1M = Profile{Name: "1MBit", RateBps: 0.146907607 * 1e6, JitterFrac: 0.0117, Latency: 5 * time.Millisecond}
	// International is the Georgia Tech ↔ Bar-Ilan Internet path:
	// 0.10891426 MB/s ± 46.02 %.
	International = Profile{Name: "international", RateBps: 0.10891426 * 1e6, JitterFrac: 0.4602, Latency: 150 * time.Millisecond}
)

// Profiles lists the paper's four links in Figure 5 order.
func Profiles() []Profile {
	return []Profile{Gigabit, Fast100, Slow1M, International}
}

// LoadFunc reports the fraction of link capacity consumed by background
// traffic at time t, in [0,1).
type LoadFunc func(t time.Time) float64

// Link is a simulated unidirectional data path.
type Link struct {
	prof  Profile
	clock Clock
	rng   *rand.Rand
	mu    sync.Mutex
	load  LoadFunc
	// stats
	bytesSent   int64
	blocksSent  int64
	busy        time.Duration
	minGoodput  float64
	maxGoodput  float64
	sumGoodput  float64
	sumGoodput2 float64
}

// NewLink creates a link with the given profile and jitter seed, on the
// given clock (Virtual for experiments, RealClock for live shaping).
func NewLink(p Profile, clock Clock, seed int64) *Link {
	if clock == nil {
		clock = RealClock{}
	}
	return &Link{prof: p, clock: clock, rng: rand.New(rand.NewSource(seed))}
}

// Profile returns the link's profile.
func (l *Link) Profile() Profile { return l.prof }

// SetLoad installs a background-load function (nil clears it).
func (l *Link) SetLoad(fn LoadFunc) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.load = fn
}

// available returns the instantaneous available rate in bytes/s at t,
// after background load and jitter. It is always positive.
func (l *Link) available(t time.Time) float64 {
	loadFrac := 0.0
	if l.load != nil {
		loadFrac = l.load(t)
		if loadFrac < 0 {
			loadFrac = 0
		}
		if loadFrac > 0.99 {
			loadFrac = 0.99
		}
	}
	jitter := 1 + l.rng.NormFloat64()*l.prof.JitterFrac
	if jitter < 0.02 {
		jitter = 0.02
	}
	return l.prof.RateBps * (1 - loadFrac) * jitter
}

// AvailableRate samples the link's instantaneous available rate in bytes/s
// (after background load, with jitter), without recording a transfer.
// Bandwidth estimators (internal/bwest) use this as the ground truth their
// probes experience; repeated calls draw fresh jitter, so measurements see
// realistic noise.
func (l *Link) AvailableRate() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.available(l.clock.Now())
}

// TransferTime computes (and records) the time to push n bytes through the
// link at the clock's current moment: latency plus serialization at the
// currently available rate.
func (l *Link) TransferTime(n int) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	t := l.clock.Now()
	rate := l.available(t)
	d := l.prof.Latency + time.Duration(float64(n)/rate*float64(time.Second))
	goodput := 0.0
	if d > 0 {
		goodput = float64(n) / d.Seconds()
	}
	l.bytesSent += int64(n)
	l.blocksSent++
	l.busy += d
	if l.blocksSent == 1 || goodput < l.minGoodput {
		l.minGoodput = goodput
	}
	if goodput > l.maxGoodput {
		l.maxGoodput = goodput
	}
	l.sumGoodput += goodput
	l.sumGoodput2 += goodput * goodput
	return d
}

// Send models a blocking send of n bytes: it computes the transfer time and,
// when the link runs on a Virtual clock, advances it.
func (l *Link) Send(n int) time.Duration {
	d := l.TransferTime(n)
	if v, ok := l.clock.(*Virtual); ok {
		v.Advance(d)
	}
	return d
}

// Stats summarizes observed link behaviour.
type Stats struct {
	Blocks      int64
	Bytes       int64
	Busy        time.Duration
	MeanGoodput float64 // bytes/s
	StdGoodput  float64 // bytes/s
	MinGoodput  float64
	MaxGoodput  float64
}

// Stats returns a snapshot of the link's counters.
func (l *Link) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Stats{
		Blocks: l.blocksSent, Bytes: l.bytesSent, Busy: l.busy,
		MinGoodput: l.minGoodput, MaxGoodput: l.maxGoodput,
	}
	if l.blocksSent > 0 {
		n := float64(l.blocksSent)
		s.MeanGoodput = l.sumGoodput / n
		varr := l.sumGoodput2/n - s.MeanGoodput*s.MeanGoodput
		if varr > 0 {
			s.StdGoodput = math.Sqrt(varr)
		}
	}
	return s
}

// String renders the profile compactly.
func (p Profile) String() string {
	return fmt.Sprintf("%s (%.3f MB/s ±%.2f%%)", p.Name, p.RateBps/1e6, p.JitterFrac*100)
}
