package testx

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// fatalAbort unwinds a fakeTB.Fatalf the way testing.T.Fatalf stops a real
// test, so helpers under test don't run past their failure point.
type fatalAbort struct{}

// fakeTB records Fatalf calls so the harness's failure paths are testable.
type fakeTB struct {
	testing.TB // panics on anything not overridden — good: nothing else should run
	failed     bool
	msg        string
}

func (f *fakeTB) Helper() {}
func (f *fakeTB) Fatalf(format string, args ...any) {
	f.failed = true
	f.msg = fmt.Sprintf(format, args...)
	panic(fatalAbort{})
}

// runFatal invokes fn, swallowing the fatalAbort unwind.
func runFatal(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(fatalAbort); !ok {
				panic(r)
			}
		}
	}()
	fn()
}

func TestByteIdentityReportsFirstDivergence(t *testing.T) {
	want := []byte("the quick brown fox jumps over the lazy dog")
	got := append([]byte(nil), want...)
	got[20] ^= 0x40

	ft := &fakeTB{}
	runFatal(func() { ByteIdentity(ft, "stream", got, want) })
	if !ft.failed {
		t.Fatal("ByteIdentity accepted diverging streams")
	}
	if !strings.Contains(ft.msg, "offset 20") {
		t.Fatalf("divergence report missing first-divergence offset: %q", ft.msg)
	}
	if !strings.Contains(ft.msg, "got") || !strings.Contains(ft.msg, "want") {
		t.Fatalf("divergence report missing hex context: %q", ft.msg)
	}

	// Identical streams must pass without touching the TB.
	ft = &fakeTB{}
	ByteIdentity(ft, "stream", want, want)
	if ft.failed {
		t.Fatal("ByteIdentity rejected identical streams")
	}
}

func TestByteIdentityLengthMismatch(t *testing.T) {
	want := []byte("abcdef")
	ft := &fakeTB{}
	runFatal(func() { ByteIdentity(ft, "stream", want[:4], want) })
	if !ft.failed || !strings.Contains(ft.msg, "offset 4") {
		t.Fatalf("truncation must diverge where the shorter stream ends: %q", ft.msg)
	}
}

func TestWaitUntil(t *testing.T) {
	var n atomic.Int64
	WaitUntil(t, "counter to advance", func() bool { return n.Add(1) >= 3 })
}

func TestGoroutineGuardCleanRun(t *testing.T) {
	guard := GoroutineGuard(t, 0)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	guard()
}

// healingLeaker reports leaked frames for a few polls, then heals —
// NoLeakedFrames must tolerate teardown lag instead of failing on the
// first read.
type healingLeaker struct{ polls atomic.Int64 }

func (h *healingLeaker) LiveFrames() int64 {
	if h.polls.Add(1) < 3 {
		return 7
	}
	return 0
}

func TestNoLeakedFramesWaitsForTeardown(t *testing.T) {
	NoLeakedFrames(t, &healingLeaker{})
}

func TestSeedDefaultsAndOverride(t *testing.T) {
	if got := Seed(t); got != 1 {
		t.Fatalf("default seed = %d, want 1", got)
	}
	t.Setenv("CCX_SEED", "42")
	if got := Seed(t); got != 42 {
		t.Fatalf("CCX_SEED seed = %d, want 42", got)
	}
	if a, b := Rand(t).Int63(), Rand(t).Int63(); a != b {
		t.Fatalf("Rand not deterministic for a fixed seed: %d vs %d", a, b)
	}
}
