// Package testx is the repo's shared invariant-test harness. The
// integration suites (fault matrix, placement equivalence, overload soak,
// governor accounting, shard routing) all assert the same process-wide
// invariants — no goroutine outlives its broker, no shared-frame reference
// outlives the plane, delivered bytes match published bytes exactly — and
// before this package each suite carried its own slightly-divergent copy
// of those checks. Centralizing them means a new suite gets the full
// invariant battery in four lines, and a strengthened check strengthens
// every suite at once.
package testx

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"ccx/internal/metrics"
)

// waitDeadline bounds every polling helper; CI machines under -race can be
// slow, but anything past this is a hang, not a scheduler hiccup.
const waitDeadline = 5 * time.Second

// WaitUntil polls cond every 2ms until it holds, failing the test with
// what's description after the deadline. It replaces the ad-hoc wait loops
// the suites grew independently.
func WaitUntil(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(waitDeadline)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// GoroutineGuard snapshots the goroutine count and returns a check that
// waits (GC'ing between polls) for the count to return to the baseline
// plus slack. Call the returned func after teardown; it fails the test
// with the final count if goroutines leaked.
//
//	guard := testx.GoroutineGuard(t, 0)
//	... run the scenario, shut everything down ...
//	guard()
func GoroutineGuard(t testing.TB, slack int) func() {
	t.Helper()
	baseline := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(waitDeadline)
		for {
			n := runtime.NumGoroutine()
			if n <= baseline+slack {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("goroutine leak: %d live, baseline %d (+%d slack)", n, baseline, slack)
			}
			runtime.GC()
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// FrameLeaker is anything that can report live shared-frame references —
// the encode plane, or a broker exposing its plane's counter.
type FrameLeaker interface {
	LiveFrames() int64
}

// NoLeakedFrames asserts that p holds zero live shared-frame references,
// waiting briefly first: frame releases ride teardown goroutines, so the
// count may trail a Shutdown by a beat.
func NoLeakedFrames(t testing.TB, p FrameLeaker) {
	t.Helper()
	deadline := time.Now().Add(waitDeadline)
	for p.LiveFrames() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("LiveFrames = %d after teardown, want 0", p.LiveFrames())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// identityContext is how many bytes of hex context ByteIdentity prints on
// each side of the first divergence.
const identityContext = 16

// ByteIdentity asserts got == want byte for byte. On mismatch it reports
// the first divergence offset with hex context around it — enough to tell
// a shifted stream from a corrupted one at a glance — instead of the bare
// "bytes differ" the suites used to print.
func ByteIdentity(t testing.TB, label string, got, want []byte) {
	t.Helper()
	if bytes.Equal(got, want) {
		return
	}
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	div := n // pure length mismatch: diverges where the shorter ends
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			div = i
			break
		}
	}
	lo := div - identityContext
	if lo < 0 {
		lo = 0
	}
	window := func(b []byte) string {
		hi := div + identityContext
		if hi > len(b) {
			hi = len(b)
		}
		if lo >= len(b) {
			return "(past end)"
		}
		return fmt.Sprintf("% x", b[lo:hi])
	}
	t.Fatalf("%s: byte identity broken at offset %d (got %d bytes, want %d)\n  got  [%d:]: %s\n  want [%d:]: %s",
		label, div, len(got), len(want), lo, window(got), lo, window(want))
}

// Seed returns the test's deterministic RNG seed: CCX_SEED when set, 1
// otherwise. The seed is logged on failure (via Cleanup), so a red run can
// always be replayed exactly with CCX_SEED=<printed value>.
func Seed(t testing.TB) int64 {
	t.Helper()
	seed := int64(1)
	if s := os.Getenv("CCX_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CCX_SEED = %q: want an integer", s)
		}
		seed = v
	}
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("replay with CCX_SEED=%d", seed)
		}
	})
	return seed
}

// Rand returns a deterministic *rand.Rand seeded via Seed — every
// randomized schedule in the suites flows from it, so one env var replays
// any failure.
func Rand(t testing.TB) *rand.Rand {
	t.Helper()
	return rand.New(rand.NewSource(Seed(t)))
}

// DumpMetrics appends one labeled JSON line holding the registry's full
// snapshot to $CCX_METRICS_OUT. CI jobs upload the file as a build
// artifact for diffing; locally the variable is unset and this is a no-op.
func DumpMetrics(t testing.TB, caseName string, met *metrics.Registry) {
	t.Helper()
	path := os.Getenv("CCX_METRICS_OUT")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("CCX_METRICS_OUT: %v", err)
	}
	defer f.Close()
	line := map[string]any{"case": caseName, "metrics": met.Snapshot()}
	if err := json.NewEncoder(f).Encode(line); err != nil {
		t.Fatalf("CCX_METRICS_OUT: %v", err)
	}
}
