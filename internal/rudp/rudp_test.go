package rudp

import (
	"testing"
	"time"

	"ccx/internal/core"
	"ccx/internal/datagen"
	"ccx/internal/netsim"
)

// fixedPath delivers every packet with constant delay, applying a scripted
// fate (loss or corruption) to chosen transmission indices.
type fixedPath struct {
	delay time.Duration
	fates map[int]Fate
	count int
}

func (p *fixedPath) Transmit(size int) (time.Duration, Fate) {
	i := p.count
	p.count++
	return p.delay, p.fates[i]
}

// drops builds a fate script that loses the given transmission indices.
func drops(idx ...int) map[int]Fate {
	m := make(map[int]Fate, len(idx))
	for _, i := range idx {
		m[i] = Lost
	}
	return m
}

func TestTransferLossFree(t *testing.T) {
	path := &fixedPath{delay: 5 * time.Millisecond}
	cfg := Config{PacketSize: 1000, RateBps: 1e6, RTT: 40 * time.Millisecond}
	res, err := Transfer(path, cfg, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 10 || res.Retransmits != 0 || res.Rounds != 1 {
		t.Fatalf("result = %+v", res)
	}
	// 10 packets paced at 1 ms each + 5 ms delay + RTT/2 tail = ~35 ms.
	want := 10*time.Millisecond + 5*time.Millisecond + 20*time.Millisecond
	if res.Duration < want-time.Millisecond || res.Duration > want+5*time.Millisecond {
		t.Fatalf("duration = %v want ≈%v", res.Duration, want)
	}
}

func TestTransferWithLoss(t *testing.T) {
	// Drop the 3rd and 7th transmissions: both retransmitted in round 2.
	path := &fixedPath{delay: time.Millisecond, fates: drops(2, 6)}
	cfg := Config{PacketSize: 1000, RateBps: 1e6, RTT: 20 * time.Millisecond}
	res, err := Transfer(path, cfg, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 12 || res.Retransmits != 2 || res.Rounds != 2 {
		t.Fatalf("result = %+v", res)
	}
}

func TestTransferTooLossy(t *testing.T) {
	all := map[int]Fate{}
	for i := 0; i < 100000; i++ {
		all[i] = Lost
	}
	path := &fixedPath{delay: time.Millisecond, fates: all}
	if _, err := Transfer(path, Config{MaxRounds: 3}, 5000); err != ErrTooLossy {
		t.Fatalf("got %v", err)
	}
}

// TestCorruptPacketIsNACKedAndRetransmitted is the regression test for the
// checksum-failure path: before Fate existed a corrupted packet counted as
// delivered, so the transfer "completed" with damaged data. Now it must be
// NACKed like a loss and retransmitted in the next round.
func TestCorruptPacketIsNACKedAndRetransmitted(t *testing.T) {
	path := &fixedPath{delay: time.Millisecond, fates: map[int]Fate{2: Corrupt}}
	cfg := Config{PacketSize: 1000, RateBps: 1e6, RTT: 20 * time.Millisecond}
	res, err := Transfer(path, cfg, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	// 10 first-round packets, one flipped → a second round retransmits it.
	if res.Packets != 11 || res.Retransmits != 1 || res.Rounds != 2 {
		t.Fatalf("result = %+v", res)
	}
	if res.Corrupted != 1 {
		t.Fatalf("Corrupted = %d, want 1", res.Corrupted)
	}

	// Stop-and-wait sees the same failure through its ack timeout.
	saw := &fixedPath{delay: time.Millisecond, fates: map[int]Fate{1: Corrupt}}
	sres, err := StopAndWait(saw, cfg, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Packets != 4 || sres.Retransmits != 1 || sres.Corrupted != 1 {
		t.Fatalf("stop-and-wait result = %+v", sres)
	}
}

// TestSimPathCorruption drives the Bernoulli path hard enough that both
// corruption and recovery show up, and the transfer still completes.
func TestSimPathCorruption(t *testing.T) {
	link := netsim.NewLink(netsim.Fast100, netsim.NewVirtual(), 3)
	path := NewSimPathCorrupting(link, 0.02, 0.08, 9)
	res, err := Transfer(path, Config{RateBps: 2e6, RTT: 50 * time.Millisecond}, 512<<10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Corrupted == 0 {
		t.Fatal("an 8% corruption rate produced zero corrupted packets")
	}
	if res.Retransmits < res.Corrupted {
		t.Fatalf("corrupted packets not all retransmitted: %+v", res)
	}
}

func TestTransferInvalidLength(t *testing.T) {
	if _, err := Transfer(&fixedPath{}, Config{}, 0); err == nil {
		t.Fatal("zero length accepted")
	}
	if _, err := StopAndWait(&fixedPath{}, Config{}, -1); err == nil {
		t.Fatal("negative length accepted")
	}
}

// TestRUDPBeatsStopAndWaitOnLongFatPath is the transport's reason to exist:
// on the international link's RTT, per-packet acknowledgement collapses.
func TestRUDPBeatsStopAndWaitOnLongFatPath(t *testing.T) {
	mk := func(seed int64) *SimPath {
		link := netsim.NewLink(netsim.International, netsim.NewVirtual(), seed)
		return NewSimPath(link, 0.02, seed+100)
	}
	cfg := Config{PacketSize: 1400, RateBps: netsim.International.RateBps, RTT: 300 * time.Millisecond}
	block := 256 << 10
	rudpRes, err := Transfer(mk(1), cfg, block)
	if err != nil {
		t.Fatal(err)
	}
	sawRes, err := StopAndWait(mk(1), cfg, block)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("rudp %v (%.0f B/s) vs stop-and-wait %v (%.0f B/s)",
		rudpRes.Duration, rudpRes.Goodput, sawRes.Duration, sawRes.Goodput)
	if rudpRes.Duration*10 > sawRes.Duration {
		t.Fatalf("rate-based transport should be ≥10x faster: %v vs %v",
			rudpRes.Duration, sawRes.Duration)
	}
}

func TestTransferRecoversAllLossRates(t *testing.T) {
	for _, loss := range []float64{0, 0.01, 0.1, 0.3} {
		link := netsim.NewLink(netsim.Fast100, netsim.NewVirtual(), 3)
		path := NewSimPath(link, loss, 7)
		res, err := Transfer(path, Config{RateBps: 2e6, RTT: 50 * time.Millisecond}, 512<<10)
		if err != nil {
			t.Fatalf("loss %v: %v", loss, err)
		}
		minPackets := (512 << 10) / 1400
		if res.Packets < minPackets {
			t.Fatalf("loss %v: only %d packets", loss, res.Packets)
		}
		if loss == 0 && res.Retransmits != 0 {
			t.Fatalf("retransmits on loss-free path: %+v", res)
		}
		if loss > 0 && res.Retransmits == 0 {
			t.Fatalf("loss %v: no retransmits recorded", loss)
		}
	}
}

// TestAsEngineTransport closes the loop with the compression engine: RUDP
// transfer durations feed the goodput monitor and drive method selection,
// the §3 "alternative communication protocols" integration.
func TestAsEngineTransport(t *testing.T) {
	engine, err := core.NewEngine(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	link := netsim.NewLink(netsim.Slow1M, netsim.NewVirtual(), 5)
	path := NewSimPath(link, 0.01, 11)
	cfg := Config{RateBps: netsim.Slow1M.RateBps, RTT: 80 * time.Millisecond}

	send := func(frame []byte) (time.Duration, error) {
		res, err := Transfer(path, cfg, len(frame))
		if err != nil {
			return 0, err
		}
		return res.Duration, nil
	}
	s := core.NewSession(engine)
	data := datagen.OISTransactions(512<<10, 0.9, 2)
	results, err := s.Stream(data, send, nil)
	if err != nil {
		t.Fatal(err)
	}
	compressed := 0
	for _, r := range results {
		if r.Info.Method.String() != "none" {
			compressed++
		}
	}
	if compressed == 0 {
		t.Fatal("engine never compressed over the slow RUDP path")
	}
}
