// Package rudp models a rate-based reliable-UDP transport in the spirit of
// IQ-RUDP (He & Schwan, the paper's ref [14]): the transport the original
// system pairs with configurable compression for large-data transfers on
// wide-area links, where per-packet acknowledgement (stop-and-wait or
// small-window TCP) wastes the bandwidth-delay product.
//
// The sender paces packets at a configured rate regardless of loss;
// receivers report missing sequence numbers once per round trip (NACKs)
// and the sender retransmits in later rounds. The model is event-driven
// over an abstract Path, so it runs against the simulated links in
// microseconds and its rate knob is exactly the "coordinating application
// adaptation with network transport" hook of the reference: the adaptive
// compression engine shrinks the data, the transport moves it at the
// negotiated rate.
package rudp

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"ccx/internal/netsim"
)

// Fate is the outcome of one packet transmission. Before it existed a
// corrupted packet was indistinguishable from a delivered one: the model
// accepted damaged payloads silently. Receivers now treat Corrupt exactly
// like Lost for reliability purposes — the packet is NACKed and
// retransmitted — while the accounting still records that it burned wire
// time and bandwidth.
type Fate int

const (
	// Delivered means the packet arrived and passed its checksum.
	Delivered Fate = iota
	// Lost means the packet vanished in transit.
	Lost
	// Corrupt means the packet arrived but failed its checksum; the
	// receiver NACKs it like a loss.
	Corrupt
)

// String names the fate.
func (f Fate) String() string {
	switch f {
	case Delivered:
		return "delivered"
	case Lost:
		return "lost"
	case Corrupt:
		return "corrupt"
	}
	return fmt.Sprintf("fate(%d)", int(f))
}

// Path is a lossy one-way packet path.
type Path interface {
	// Transmit reports the serialization+propagation delay for one packet
	// of the given size and its fate: delivered, lost, or delivered with a
	// failed checksum.
	Transmit(size int) (delay time.Duration, fate Fate)
}

// SimPath adapts a simulated link with Bernoulli loss and corruption.
type SimPath struct {
	Link *netsim.Link
	// LossRate and CorruptRate are independent per-packet probabilities;
	// their sum must stay ≤ 1.
	LossRate    float64
	CorruptRate float64
	rng         *rand.Rand
}

// NewSimPath builds a SimPath with deterministic loss decisions.
func NewSimPath(link *netsim.Link, lossRate float64, seed int64) *SimPath {
	return &SimPath{Link: link, LossRate: lossRate, rng: rand.New(rand.NewSource(seed))}
}

// NewSimPathCorrupting builds a SimPath that also flips packets: each
// transmission is lost with lossRate, corrupted with corruptRate, and
// delivered otherwise.
func NewSimPathCorrupting(link *netsim.Link, lossRate, corruptRate float64, seed int64) *SimPath {
	p := NewSimPath(link, lossRate, seed)
	p.CorruptRate = corruptRate
	return p
}

// Transmit implements Path.
func (p *SimPath) Transmit(size int) (time.Duration, Fate) {
	d := p.Link.TransferTime(size)
	if p.LossRate > 0 || p.CorruptRate > 0 {
		switch r := p.rng.Float64(); {
		case r < p.LossRate:
			return d, Lost
		case r < p.LossRate+p.CorruptRate:
			return d, Corrupt
		}
	}
	return d, Delivered
}

// Config tunes a transfer.
type Config struct {
	// PacketSize is the payload bytes per packet (default 1400).
	PacketSize int
	// RateBps is the pacing rate in bytes/s (default 1 MB/s). IQ-RUDP's
	// application-coordinated rate control sets this from the same
	// measurements the compression selector uses.
	RateBps float64
	// RTT is the round-trip time governing NACK turnaround (default 100 ms).
	RTT time.Duration
	// MaxRounds bounds retransmission rounds (default 64).
	MaxRounds int
}

func (c Config) withDefaults() Config {
	if c.PacketSize <= 0 {
		c.PacketSize = 1400
	}
	if c.RateBps <= 0 {
		c.RateBps = 1e6
	}
	if c.RTT <= 0 {
		c.RTT = 100 * time.Millisecond
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 64
	}
	return c
}

// Result summarizes one block transfer.
type Result struct {
	// Duration is the end-to-end completion time, including the final
	// notification round trip.
	Duration time.Duration
	// Packets and Retransmits count transmissions (Retransmits ⊆ Packets).
	Packets, Retransmits int
	// Corrupted counts packets that arrived with a failed checksum; each
	// was NACKed and retransmitted like a loss.
	Corrupted int
	// Rounds is how many NACK rounds the transfer needed (1 = loss-free).
	Rounds int
	// Goodput is blockLen/Duration in bytes/s.
	Goodput float64
}

// ErrTooLossy is returned when MaxRounds rounds cannot complete the block.
var ErrTooLossy = errors.New("rudp: path too lossy, transfer did not complete")

// Transfer sends blockLen bytes over path with NACK-based reliability and
// rate pacing, returning the simulated timing.
func Transfer(path Path, cfg Config, blockLen int) (Result, error) {
	cfg = cfg.withDefaults()
	var res Result
	if blockLen <= 0 {
		return res, fmt.Errorf("rudp: invalid block length %d", blockLen)
	}
	nPackets := (blockLen + cfg.PacketSize - 1) / cfg.PacketSize
	gap := time.Duration(float64(cfg.PacketSize) / cfg.RateBps * float64(time.Second))

	outstanding := nPackets
	var clock time.Duration // sender-side time
	var lastArrival time.Duration
	for round := 0; outstanding > 0; round++ {
		if round >= cfg.MaxRounds {
			return res, ErrTooLossy
		}
		res.Rounds++
		lost := 0
		for i := 0; i < outstanding; i++ {
			// Pace: one packet per gap.
			clock += gap
			delay, fate := path.Transmit(cfg.PacketSize)
			res.Packets++
			if round > 0 {
				res.Retransmits++
			}
			switch fate {
			case Lost:
				lost++
				continue
			case Corrupt:
				// The packet occupied the wire all the way to the receiver,
				// then failed its checksum: it still advances the arrival
				// clock, but the receiver NACKs it like a loss.
				res.Corrupted++
				lost++
				if arrival := clock + delay; arrival > lastArrival {
					lastArrival = arrival
				}
				continue
			}
			if arrival := clock + delay; arrival > lastArrival {
				lastArrival = arrival
			}
		}
		outstanding = lost
		if outstanding > 0 {
			// NACKs arrive one RTT after the round's last packet.
			if clock+cfg.RTT > lastArrival {
				clock += cfg.RTT
			} else {
				clock = lastArrival + cfg.RTT/2
			}
		}
	}
	// Completion notification: half an RTT after the last arrival.
	res.Duration = lastArrival + cfg.RTT/2
	if clock > res.Duration {
		res.Duration = clock
	}
	res.Goodput = float64(blockLen) / res.Duration.Seconds()
	return res, nil
}

// StopAndWait models the classical per-packet-acknowledged baseline: each
// packet waits a full RTT before the next departs, retransmitting on loss.
// It exists as the comparison point that motivates rate-based transports on
// long fat networks.
func StopAndWait(path Path, cfg Config, blockLen int) (Result, error) {
	cfg = cfg.withDefaults()
	var res Result
	if blockLen <= 0 {
		return res, fmt.Errorf("rudp: invalid block length %d", blockLen)
	}
	nPackets := (blockLen + cfg.PacketSize - 1) / cfg.PacketSize
	var clock time.Duration
	for i := 0; i < nPackets; i++ {
		attempts := 0
		for {
			attempts++
			if attempts > cfg.MaxRounds {
				return res, ErrTooLossy
			}
			delay, fate := path.Transmit(cfg.PacketSize)
			res.Packets++
			if attempts > 1 {
				res.Retransmits++
			}
			if fate == Delivered {
				clock += delay + cfg.RTT
				break
			}
			if fate == Corrupt {
				res.Corrupted++
			}
			// Loss (or checksum failure) detected by ack timeout: one RTT
			// wasted before the retransmission.
			clock += cfg.RTT
		}
	}
	res.Rounds = 1
	res.Duration = clock
	res.Goodput = float64(blockLen) / clock.Seconds()
	return res, nil
}
