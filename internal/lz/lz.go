// Package lz implements the paper's Lempel-Ziv method (§2.3): LZ77 sliding
// window matching whose back-pointers (distance, length) are entropy-coded
// with Huffman codes, following the observation of ref [27] that pointer
// components are small and skewed, so Huffman codes shorten them further.
//
// The on-disk layout of a compressed block is:
//
//	litlen code-length table (286 symbols) |
//	distance code-length table (30 symbols) |
//	token stream
//
// Tokens use a deflate-style symbol space — literals 0..255, match lengths
// 256..284 with extra bits, distance codes 0..29 with extra bits — but the
// bit stream is this package's own; it is not zlib-compatible.
package lz

import (
	"errors"
	"fmt"

	"ccx/internal/bitio"
	"ccx/internal/huffman"
)

var (
	// ErrCorrupt is returned for malformed or truncated compressed data.
	ErrCorrupt = errors.New("lz: corrupt input")
)

const (
	minMatch   = 3
	maxMatch   = 258
	windowSize = 32 * 1024 // distances are < windowSize

	numLitLenSyms = 256 + 29 // literals + length buckets
	numDistSyms   = 30

	hashBits  = 15
	hashSize  = 1 << hashBits
	hashShift = 32 - hashBits
	// maxChainLen bounds match-search effort; the paper positions LZ as the
	// mid-speed method, so we favour speed over the last percent of ratio.
	maxChainLen = 64
	// niceLen stops the chain walk early once a match this good is found.
	niceLen = 128
)

// Deflate-compatible length and distance bucket tables.
var (
	lengthBase = [29]int{
		3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51,
		59, 67, 83, 99, 115, 131, 163, 195, 227, 258,
	}
	lengthExtra = [29]uint{
		0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4,
		4, 5, 5, 5, 5, 0,
	}
	distBase = [30]int{
		1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385,
		513, 769, 1025, 1537, 2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
	}
	distExtra = [30]uint{
		0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10,
		10, 11, 11, 12, 12, 13, 13,
	}
)

// lengthSym maps a match length (3..258) to its bucket symbol offset (0..28).
func lengthSym(length int) int {
	for i := len(lengthBase) - 1; i >= 0; i-- {
		if length >= lengthBase[i] {
			return i
		}
	}
	return 0
}

// distSym maps a distance (1..32768) to its bucket symbol (0..29).
func distSym(dist int) int {
	for i := len(distBase) - 1; i >= 0; i-- {
		if dist >= distBase[i] {
			return i
		}
	}
	return 0
}

// token is one literal or match emitted by the tokenizer.
type token struct {
	length int // 0 for literal
	dist   int
	lit    byte
}

func hash4(src []byte, i int) uint32 {
	v := uint32(src[i]) | uint32(src[i+1])<<8 | uint32(src[i+2])<<16
	return (v * 506832829) >> hashShift
}

// tokenize performs greedy LZ77 parsing with one-step lazy matching.
func tokenize(src []byte) []token {
	tokens := make([]token, 0, len(src)/3+16)
	head := make([]int32, hashSize)
	for i := range head {
		head[i] = -1
	}
	prev := make([]int32, len(src))

	insert := func(i int) {
		h := hash4(src, i)
		prev[i] = head[h]
		head[h] = int32(i)
	}

	findMatch := func(pos int) (length, dist int) {
		if pos+minMatch > len(src) {
			return 0, 0
		}
		limit := pos - windowSize
		if limit < 0 {
			limit = -1
		}
		maxLen := len(src) - pos
		if maxLen > maxMatch {
			maxLen = maxMatch
		}
		cand := head[hash4(src, pos)]
		best, bestDist := 0, 0
		for chain := 0; cand > int32(limit) && cand >= 0 && chain < maxChainLen; chain++ {
			c := int(cand)
			if c != pos && src[c+best/2] == src[pos+best/2] { // cheap prefilter
				l := matchLen(src, c, pos, maxLen)
				if l > best {
					best, bestDist = l, pos-c
					if l >= niceLen {
						break
					}
				}
			}
			cand = prev[c]
		}
		if best < minMatch {
			return 0, 0
		}
		return best, bestDist
	}

	i := 0
	for i < len(src) {
		if i+minMatch > len(src) {
			tokens = append(tokens, token{lit: src[i]})
			i++
			continue
		}
		length, dist := findMatch(i)
		if length >= minMatch && i+1+minMatch <= len(src) {
			// Lazy matching: prefer a strictly longer match at i+1.
			insert(i)
			l2, d2 := findMatch(i + 1)
			if l2 > length {
				tokens = append(tokens, token{lit: src[i]})
				i++
				length, dist = l2, d2
			}
		} else if length >= minMatch {
			insert(i)
		}
		if length < minMatch {
			tokens = append(tokens, token{lit: src[i]})
			insert(i)
			i++
			continue
		}
		tokens = append(tokens, token{length: length, dist: dist})
		// Insert hash entries across the match so later data can point here.
		end := i + length
		for j := i + 1; j < end && j+minMatch <= len(src); j++ {
			insert(j)
		}
		i = end
	}
	return tokens
}

func matchLen(src []byte, a, b, max int) int {
	n := 0
	for n < max && src[a+n] == src[b+n] {
		n++
	}
	return n
}

// Compress encodes src. The caller must retain len(src) for Decompress.
func Compress(src []byte) ([]byte, error) {
	if len(src) == 0 {
		return nil, nil
	}
	tokens := tokenize(src)

	litLenFreq := make([]int64, numLitLenSyms)
	distFreq := make([]int64, numDistSyms)
	for _, t := range tokens {
		if t.length == 0 {
			litLenFreq[t.lit]++
		} else {
			litLenFreq[256+lengthSym(t.length)]++
			distFreq[distSym(t.dist)]++
		}
	}
	litLenLens, err := huffman.BuildLengths(litLenFreq)
	if err != nil {
		return nil, fmt.Errorf("lz: litlen table: %w", err)
	}
	litLenEnc, err := huffman.NewEncoder(litLenLens)
	if err != nil {
		return nil, err
	}
	var distLens []uint8
	var distEnc *huffman.Encoder
	hasDist := false
	for _, f := range distFreq {
		if f > 0 {
			hasDist = true
			break
		}
	}
	if hasDist {
		distLens, err = huffman.BuildLengths(distFreq)
		if err != nil {
			return nil, err
		}
		distEnc, err = huffman.NewEncoder(distLens)
		if err != nil {
			return nil, err
		}
	} else {
		distLens = make([]uint8, numDistSyms)
	}

	w := bitio.NewWriter(len(src)/2 + 128)
	if err := huffman.WriteLengths(w, litLenLens); err != nil {
		return nil, err
	}
	if err := huffman.WriteLengths(w, distLens); err != nil {
		return nil, err
	}
	for _, t := range tokens {
		if t.length == 0 {
			if err := litLenEnc.Encode(w, int(t.lit)); err != nil {
				return nil, err
			}
			continue
		}
		ls := lengthSym(t.length)
		if err := litLenEnc.Encode(w, 256+ls); err != nil {
			return nil, err
		}
		if eb := lengthExtra[ls]; eb > 0 {
			if err := w.WriteBits(uint64(t.length-lengthBase[ls]), eb); err != nil {
				return nil, err
			}
		}
		ds := distSym(t.dist)
		if err := distEnc.Encode(w, ds); err != nil {
			return nil, err
		}
		if eb := distExtra[ds]; eb > 0 {
			if err := w.WriteBits(uint64(t.dist-distBase[ds]), eb); err != nil {
				return nil, err
			}
		}
	}
	return w.Bytes(), nil
}

// Decompress reverses Compress, producing exactly origLen bytes.
func Decompress(src []byte, origLen int) ([]byte, error) {
	if origLen == 0 {
		return nil, nil
	}
	r := bitio.NewReader(src)
	litLenLens, err := huffman.ReadLengths(r, numLitLenSyms)
	if err != nil {
		return nil, err
	}
	distLens, err := huffman.ReadLengths(r, numDistSyms)
	if err != nil {
		return nil, err
	}
	litLenDec, err := huffman.NewDecoder(litLenLens)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var distDec *huffman.Decoder
	for _, l := range distLens {
		if l > 0 {
			distDec, err = huffman.NewDecoder(distLens)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			break
		}
	}
	dst := make([]byte, 0, origLen)
	for len(dst) < origLen {
		sym, err := litLenDec.Decode(r)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if sym < 256 {
			dst = append(dst, byte(sym))
			continue
		}
		ls := sym - 256
		if ls >= len(lengthBase) {
			return nil, ErrCorrupt
		}
		length := lengthBase[ls]
		if eb := lengthExtra[ls]; eb > 0 {
			extra, err := r.ReadBits(eb)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			length += int(extra)
		}
		if distDec == nil {
			return nil, ErrCorrupt
		}
		ds, err := distDec.Decode(r)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if ds >= len(distBase) {
			return nil, ErrCorrupt
		}
		dist := distBase[ds]
		if eb := distExtra[ds]; eb > 0 {
			extra, err := r.ReadBits(eb)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			dist += int(extra)
		}
		if dist <= 0 || dist > len(dst) {
			return nil, ErrCorrupt
		}
		if len(dst)+length > origLen {
			return nil, ErrCorrupt
		}
		// Overlapping copy, byte by byte (dist may be < length).
		start := len(dst) - dist
		for j := 0; j < length; j++ {
			dst = append(dst, dst[start+j])
		}
	}
	return dst, nil
}
