package lz

import (
	"bytes"
	"testing"
)

// FuzzLZDecode feeds arbitrary bytes to Decompress. Hostile inputs encode
// matches reaching before the start of the output or lengths past the claimed
// size; all of those must come back as errors, never panics or runaway
// allocation.
func FuzzLZDecode(f *testing.F) {
	seeds := [][]byte{
		nil,
		[]byte("z"),
		[]byte("abcabcabcabcabcabc"),
		bytes.Repeat([]byte("configurable compression "), 24),
	}
	for _, s := range seeds {
		comp, err := Compress(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(comp, len(s))
	}
	f.Add([]byte{0x01, 0x00, 0xff, 0xff}, 64)

	f.Fuzz(func(t *testing.T, data []byte, origLen int) {
		if origLen < 0 || origLen > 1<<20 {
			return
		}
		out, err := Decompress(data, origLen)
		if err != nil {
			return
		}
		if len(out) != origLen {
			t.Fatalf("decoded %d bytes, claimed %d", len(out), origLen)
		}
	})
}
