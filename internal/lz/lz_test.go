package lz

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundtrip(t *testing.T, data []byte) {
	t.Helper()
	out, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(out, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatalf("roundtrip mismatch (len %d)", len(data))
	}
}

func TestRoundtripBasic(t *testing.T) {
	roundtrip(t, []byte("abcabcabcabc repeated strings compress well abcabcabc"))
}

func TestRoundtripEmpty(t *testing.T) {
	out, err := Compress(nil)
	if err != nil || out != nil {
		t.Fatalf("Compress(nil) = %v, %v", out, err)
	}
	back, err := Decompress(nil, 0)
	if err != nil || back != nil {
		t.Fatalf("Decompress(nil, 0) = %v, %v", back, err)
	}
}

func TestRoundtripShort(t *testing.T) {
	for n := 1; n <= 8; n++ {
		roundtrip(t, []byte("abcdefgh")[:n])
	}
}

func TestRoundtripNoMatches(t *testing.T) {
	// All-distinct bytes: literal-only stream, no distance table.
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	roundtrip(t, data)
}

func TestRoundtripOverlappingCopy(t *testing.T) {
	// RLE-style run: matches with dist 1 < length exercise overlapping copy.
	roundtrip(t, bytes.Repeat([]byte{'x'}, 100000))
	roundtrip(t, bytes.Repeat([]byte{'a', 'b'}, 50000))
}

func TestRoundtripLongRange(t *testing.T) {
	// A repeat separated by nearly the full window.
	var b bytes.Buffer
	b.WriteString("SIGNATURE-BLOCK-0123456789")
	rng := rand.New(rand.NewSource(5))
	filler := make([]byte, windowSize-100)
	rng.Read(filler)
	b.Write(filler)
	b.WriteString("SIGNATURE-BLOCK-0123456789")
	roundtrip(t, b.Bytes())
}

func TestRoundtripMaxMatch(t *testing.T) {
	// Runs longer than maxMatch force chained max-length matches.
	roundtrip(t, bytes.Repeat([]byte{0}, maxMatch*4+7))
}

func TestRoundtripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 100, 4096, 70000, 200000} {
		data := make([]byte, n)
		rng.Read(data)
		roundtrip(t, data)
	}
}

func TestRoundtripStructured(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 2000; i++ {
		sb.WriteString("<transaction id='")
		sb.WriteString(strings.Repeat("9", i%5+1))
		sb.WriteString("' type='booking' carrier='DL'/>\n")
	}
	roundtrip(t, []byte(sb.String()))
}

func TestCompressionRatioRepetitive(t *testing.T) {
	data := bytes.Repeat([]byte("flight record: ATL->TLV seat 17C status OK;"), 2000)
	out, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(len(out)) / float64(len(data)); ratio > 0.05 {
		t.Fatalf("highly repetitive ratio = %.3f, want < 0.05", ratio)
	}
}

func TestLengthSymBuckets(t *testing.T) {
	for l := minMatch; l <= maxMatch; l++ {
		s := lengthSym(l)
		base := lengthBase[s]
		if l < base {
			t.Fatalf("length %d mapped below bucket base %d", l, base)
		}
		if extra := l - base; extra >= 1<<lengthExtra[s] {
			t.Fatalf("length %d: extra %d overflows %d extra bits", l, extra, lengthExtra[s])
		}
	}
}

func TestDistSymBuckets(t *testing.T) {
	for _, d := range []int{1, 2, 3, 4, 5, 100, 1024, 5000, 32767, 32768} {
		s := distSym(d)
		base := distBase[s]
		if d < base {
			t.Fatalf("dist %d mapped below bucket base %d", d, base)
		}
		if extra := d - base; extra >= 1<<distExtra[s] {
			t.Fatalf("dist %d: extra %d overflows %d extra bits", d, extra, distExtra[s])
		}
	}
}

func TestDecompressCorrupt(t *testing.T) {
	data := bytes.Repeat([]byte("hello world "), 100)
	out, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	// Truncation must error, not panic or hang.
	for _, cut := range []int{1, len(out) / 2, len(out) - 1} {
		if _, err := Decompress(out[:cut], len(data)); err == nil {
			t.Logf("truncation at %d decoded cleanly (possible but unusual)", cut)
		}
	}
	// Bit flips must never panic.
	for i := 0; i < len(out); i += 7 {
		mut := append([]byte(nil), out...)
		mut[i] ^= 0x55
		back, err := Decompress(mut, len(data))
		if err == nil && !bytes.Equal(back, data) {
			// Silent corruption at this layer is acceptable; the codec frame
			// adds CRC-32 on top.
			continue
		}
	}
}

func TestDecompressWrongLength(t *testing.T) {
	data := []byte("some data to compress, repeated: some data to compress")
	out, _ := Compress(data)
	if back, err := Decompress(out, len(data)/2); err == nil && len(back) != len(data)/2 {
		t.Fatalf("wrong-length decode returned %d bytes", len(back))
	}
}

func TestQuickRoundtrip(t *testing.T) {
	f := func(data []byte) bool {
		out, err := Compress(data)
		if err != nil {
			return false
		}
		back, err := Decompress(out, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRepetitiveRoundtrip biases quick inputs toward repetitive data so
// match paths get heavy property coverage too.
func TestQuickRepetitiveRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		motifs := make([][]byte, rng.Intn(5)+1)
		for i := range motifs {
			m := make([]byte, rng.Intn(40)+1)
			rng.Read(m)
			motifs[i] = m
		}
		var b bytes.Buffer
		for b.Len() < 20000 {
			b.Write(motifs[rng.Intn(len(motifs))])
		}
		data := b.Bytes()
		out, err := Compress(data)
		if err != nil {
			return false
		}
		back, err := Decompress(out, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress128K(b *testing.B) {
	motif := []byte("transaction: passenger rebooked ATL->JFK seat 22A; ")
	data := bytes.Repeat(motif, 128*1024/len(motif)+1)[:128*1024]
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress128K(b *testing.B) {
	motif := []byte("transaction: passenger rebooked ATL->JFK seat 22A; ")
	data := bytes.Repeat(motif, 128*1024/len(motif)+1)[:128*1024]
	out, err := Compress(data)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(out, len(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSymBucketsExhaustive sweeps every encodable distance, pinning the
// bucket tables against off-by-one drift.
func TestSymBucketsExhaustive(t *testing.T) {
	for d := 1; d <= 32768; d++ {
		s := distSym(d)
		if s < 0 || s >= len(distBase) {
			t.Fatalf("dist %d: bucket %d out of range", d, s)
		}
		if d < distBase[s] {
			t.Fatalf("dist %d below base of bucket %d", d, s)
		}
		if extra := d - distBase[s]; extra >= 1<<distExtra[s] {
			t.Fatalf("dist %d overflows bucket %d", d, s)
		}
	}
}

// TestDecompressMatchBeforeStart crafts a stream whose first token is a
// match (no history yet): the decoder must reject it.
func TestDecompressMatchBeforeStart(t *testing.T) {
	// Compress something with matches, then decode claiming a tiny original
	// length so every continuation is malformed in some way; at minimum the
	// decoder must not panic or read out of bounds.
	data := bytes.Repeat([]byte("abcd"), 2000)
	out, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, claim := range []int{1, 2, 3, 5, 17} {
		if back, err := Decompress(out, claim); err == nil && len(back) != claim {
			t.Fatalf("claim %d: got %d bytes with nil error", claim, len(back))
		}
	}
}

// TestCompressAllSameHash stresses hash-chain walking: many positions share
// one hash bucket.
func TestCompressAllSameHash(t *testing.T) {
	data := bytes.Repeat([]byte{0xAA, 0xBB, 0xCC}, 40000)
	roundtrip(t, data)
}
