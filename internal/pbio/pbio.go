// Package pbio implements a self-describing heterogeneous binary record
// format in the spirit of PBIO (Plale et al., PDCS 2000 — the paper's ref
// [35]), which the original system used to represent its binary scientific
// data efficiently.
//
// A stream carries a format descriptor once, followed by packed records.
// Formats describe named, typed, fixed-arity fields; both row-major record
// encoding (the stream format) and columnar extraction (used by the Figure 6
// experiments, which compress each field class separately) are provided.
package pbio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Kind enumerates field element types.
type Kind uint8

// Field element types. Values are wire identifiers.
const (
	Uint8 Kind = iota + 1
	Int32
	Int64
	Float32
	Float64
)

// ErrCorrupt is returned for malformed descriptors or record data.
var ErrCorrupt = errors.New("pbio: corrupt input")

// Size returns the encoded size of one element of the kind.
func (k Kind) Size() int {
	switch k {
	case Uint8:
		return 1
	case Int32, Float32:
		return 4
	case Int64, Float64:
		return 8
	}
	return 0
}

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case Uint8:
		return "uint8"
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Field is one record member: Count > 1 declares a fixed-length array.
type Field struct {
	Name  string
	Kind  Kind
	Count int
}

// Format describes a record layout.
type Format struct {
	Name   string
	Fields []Field
}

// RecordSize returns the packed byte size of one record.
func (f *Format) RecordSize() int {
	n := 0
	for _, fl := range f.Fields {
		n += fl.Kind.Size() * fl.Count
	}
	return n
}

// FieldIndex returns the index of the named field, or -1.
func (f *Format) FieldIndex(name string) int {
	for i, fl := range f.Fields {
		if fl.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks the format for encodability.
func (f *Format) Validate() error {
	if f.Name == "" {
		return errors.New("pbio: format needs a name")
	}
	if len(f.Fields) == 0 {
		return errors.New("pbio: format needs at least one field")
	}
	for _, fl := range f.Fields {
		if fl.Kind.Size() == 0 {
			return fmt.Errorf("pbio: field %q has invalid kind", fl.Name)
		}
		if fl.Count < 1 {
			return fmt.Errorf("pbio: field %q has invalid count %d", fl.Name, fl.Count)
		}
		if fl.Name == "" {
			return errors.New("pbio: field needs a name")
		}
	}
	return nil
}

// Record holds one record's values, parallel to Format.Fields. Integer kinds
// use Ints, floating kinds use Floats; each slice has the field's Count
// elements.
type Record struct {
	Ints   [][]int64
	Floats [][]float64
}

// NewRecord allocates a Record shaped for f.
func NewRecord(f *Format) Record {
	r := Record{
		Ints:   make([][]int64, len(f.Fields)),
		Floats: make([][]float64, len(f.Fields)),
	}
	for i, fl := range f.Fields {
		switch fl.Kind {
		case Uint8, Int32, Int64:
			r.Ints[i] = make([]int64, fl.Count)
		default:
			r.Floats[i] = make([]float64, fl.Count)
		}
	}
	return r
}

// WriteFormat serializes a format descriptor.
func WriteFormat(w io.Writer, f *Format) error {
	if err := f.Validate(); err != nil {
		return err
	}
	buf := make([]byte, 0, 64)
	buf = appendString(buf, f.Name)
	buf = binary.AppendUvarint(buf, uint64(len(f.Fields)))
	for _, fl := range f.Fields {
		buf = appendString(buf, fl.Name)
		buf = append(buf, byte(fl.Kind))
		buf = binary.AppendUvarint(buf, uint64(fl.Count))
	}
	_, err := w.Write(buf)
	return err
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// ReadFormat parses a format descriptor.
func ReadFormat(r io.ByteReader) (*Format, error) {
	name, err := readString(r)
	if err != nil {
		return nil, err
	}
	nf, err := binary.ReadUvarint(r)
	if err != nil || nf == 0 || nf > 1024 {
		return nil, fmt.Errorf("%w: field count", ErrCorrupt)
	}
	f := &Format{Name: name, Fields: make([]Field, nf)}
	for i := range f.Fields {
		fn, err := readString(r)
		if err != nil {
			return nil, err
		}
		kb, err := r.ReadByte()
		if err != nil {
			return nil, unexpectedEOF(err)
		}
		cnt, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, unexpectedEOF(err)
		}
		f.Fields[i] = Field{Name: fn, Kind: Kind(kb), Count: int(cnt)}
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return f, nil
}

func readString(r io.ByteReader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", unexpectedEOF(err)
	}
	if n > 4096 {
		return "", fmt.Errorf("%w: string too long", ErrCorrupt)
	}
	b := make([]byte, n)
	for i := range b {
		c, err := r.ReadByte()
		if err != nil {
			return "", unexpectedEOF(err)
		}
		b[i] = c
	}
	return string(b), nil
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// AppendRecord packs rec (shaped for f) onto dst in little-endian layout.
func AppendRecord(dst []byte, f *Format, rec Record) ([]byte, error) {
	for i, fl := range f.Fields {
		switch fl.Kind {
		case Uint8:
			vals := rec.Ints[i]
			if len(vals) != fl.Count {
				return nil, fmt.Errorf("pbio: field %q: %d values, want %d", fl.Name, len(vals), fl.Count)
			}
			for _, v := range vals {
				dst = append(dst, byte(v))
			}
		case Int32:
			vals := rec.Ints[i]
			if len(vals) != fl.Count {
				return nil, fmt.Errorf("pbio: field %q: %d values, want %d", fl.Name, len(vals), fl.Count)
			}
			for _, v := range vals {
				dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(v)))
			}
		case Int64:
			vals := rec.Ints[i]
			if len(vals) != fl.Count {
				return nil, fmt.Errorf("pbio: field %q: %d values, want %d", fl.Name, len(vals), fl.Count)
			}
			for _, v := range vals {
				dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
			}
		case Float32:
			vals := rec.Floats[i]
			if len(vals) != fl.Count {
				return nil, fmt.Errorf("pbio: field %q: %d values, want %d", fl.Name, len(vals), fl.Count)
			}
			for _, v := range vals {
				dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(v)))
			}
		case Float64:
			vals := rec.Floats[i]
			if len(vals) != fl.Count {
				return nil, fmt.Errorf("pbio: field %q: %d values, want %d", fl.Name, len(vals), fl.Count)
			}
			for _, v := range vals {
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
			}
		default:
			return nil, fmt.Errorf("pbio: field %q has invalid kind", fl.Name)
		}
	}
	return dst, nil
}

// DecodeRecord unpacks one record from src, returning the remaining bytes.
func DecodeRecord(src []byte, f *Format, rec *Record) ([]byte, error) {
	if len(src) < f.RecordSize() {
		return nil, fmt.Errorf("%w: truncated record", ErrCorrupt)
	}
	for i, fl := range f.Fields {
		switch fl.Kind {
		case Uint8:
			for j := 0; j < fl.Count; j++ {
				rec.Ints[i][j] = int64(src[0])
				src = src[1:]
			}
		case Int32:
			for j := 0; j < fl.Count; j++ {
				rec.Ints[i][j] = int64(int32(binary.LittleEndian.Uint32(src)))
				src = src[4:]
			}
		case Int64:
			for j := 0; j < fl.Count; j++ {
				rec.Ints[i][j] = int64(binary.LittleEndian.Uint64(src))
				src = src[8:]
			}
		case Float32:
			for j := 0; j < fl.Count; j++ {
				rec.Floats[i][j] = float64(math.Float32frombits(binary.LittleEndian.Uint32(src)))
				src = src[4:]
			}
		case Float64:
			for j := 0; j < fl.Count; j++ {
				rec.Floats[i][j] = math.Float64frombits(binary.LittleEndian.Uint64(src))
				src = src[8:]
			}
		}
	}
	return src, nil
}

// ExtractColumn returns the packed bytes of a single field across all
// records in src (columnar projection). This is how the Figure 6
// experiments obtain separately compressible "type", "velocity" and
// "coordinates" streams from one record batch.
func ExtractColumn(src []byte, f *Format, fieldIdx int) ([]byte, error) {
	if fieldIdx < 0 || fieldIdx >= len(f.Fields) {
		return nil, fmt.Errorf("pbio: field index %d out of range", fieldIdx)
	}
	rs := f.RecordSize()
	if rs == 0 || len(src)%rs != 0 {
		return nil, fmt.Errorf("%w: batch size %d not a multiple of record size %d", ErrCorrupt, len(src), rs)
	}
	off := 0
	for i := 0; i < fieldIdx; i++ {
		off += f.Fields[i].Kind.Size() * f.Fields[i].Count
	}
	w := f.Fields[fieldIdx].Kind.Size() * f.Fields[fieldIdx].Count
	n := len(src) / rs
	out := make([]byte, 0, n*w)
	for i := 0; i < n; i++ {
		base := i*rs + off
		out = append(out, src[base:base+w]...)
	}
	return out, nil
}
