package pbio

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func testFormat() *Format {
	return &Format{
		Name: "test_rec",
		Fields: []Field{
			{Name: "id", Kind: Int64, Count: 1},
			{Name: "flags", Kind: Uint8, Count: 4},
			{Name: "pos", Kind: Float64, Count: 3},
			{Name: "vel", Kind: Float32, Count: 3},
			{Name: "code", Kind: Int32, Count: 1},
		},
	}
}

func TestKindSizes(t *testing.T) {
	want := map[Kind]int{Uint8: 1, Int32: 4, Int64: 8, Float32: 4, Float64: 8, Kind(0): 0, Kind(99): 0}
	for k, n := range want {
		if k.Size() != n {
			t.Errorf("%v.Size() = %d want %d", k, k.Size(), n)
		}
	}
}

func TestRecordSize(t *testing.T) {
	f := testFormat()
	want := 8 + 4 + 24 + 12 + 4
	if f.RecordSize() != want {
		t.Fatalf("RecordSize = %d want %d", f.RecordSize(), want)
	}
}

func TestFieldIndex(t *testing.T) {
	f := testFormat()
	if f.FieldIndex("pos") != 2 {
		t.Fatalf("FieldIndex(pos) = %d", f.FieldIndex("pos"))
	}
	if f.FieldIndex("missing") != -1 {
		t.Fatal("expected -1 for missing field")
	}
}

func TestValidate(t *testing.T) {
	bad := []*Format{
		{Name: "", Fields: []Field{{Name: "a", Kind: Uint8, Count: 1}}},
		{Name: "x", Fields: nil},
		{Name: "x", Fields: []Field{{Name: "a", Kind: Kind(0), Count: 1}}},
		{Name: "x", Fields: []Field{{Name: "a", Kind: Uint8, Count: 0}}},
		{Name: "x", Fields: []Field{{Name: "", Kind: Uint8, Count: 1}}},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if err := testFormat().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFormatRoundtrip(t *testing.T) {
	f := testFormat()
	var buf bytes.Buffer
	if err := WriteFormat(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFormat(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != f.Name || len(got.Fields) != len(f.Fields) {
		t.Fatalf("format mismatch: %+v", got)
	}
	for i := range f.Fields {
		if got.Fields[i] != f.Fields[i] {
			t.Fatalf("field %d: %+v != %+v", i, got.Fields[i], f.Fields[i])
		}
	}
}

func TestReadFormatCorrupt(t *testing.T) {
	cases := [][]byte{
		{},
		{0x04, 'a'},             // truncated name
		{0x01, 'x', 0x00},       // zero fields
		{0x01, 'x', 0xFF, 0x7F}, // absurd field count
	}
	for i, c := range cases {
		if _, err := ReadFormat(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRecordRoundtrip(t *testing.T) {
	f := testFormat()
	rec := NewRecord(f)
	rec.Ints[0][0] = -1234567890123
	copy(rec.Ints[1], []int64{1, 2, 254, 255})
	copy(rec.Floats[2], []float64{3.14159, -2.71828, 1e-300})
	copy(rec.Floats[3], []float64{1.5, -0.25, 65504})
	rec.Ints[4][0] = -42

	buf, err := AppendRecord(nil, f, rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != f.RecordSize() {
		t.Fatalf("encoded %d bytes, want %d", len(buf), f.RecordSize())
	}
	out := NewRecord(f)
	rest, err := DecodeRecord(buf, f, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
	if out.Ints[0][0] != rec.Ints[0][0] || out.Ints[4][0] != rec.Ints[4][0] {
		t.Fatal("integer fields mismatch")
	}
	for i := range rec.Ints[1] {
		if out.Ints[1][i] != rec.Ints[1][i] {
			t.Fatal("uint8 array mismatch")
		}
	}
	for i := range rec.Floats[2] {
		if out.Floats[2][i] != rec.Floats[2][i] {
			t.Fatal("float64 array mismatch")
		}
	}
	for i := range rec.Floats[3] {
		if float32(out.Floats[3][i]) != float32(rec.Floats[3][i]) {
			t.Fatal("float32 array mismatch")
		}
	}
}

func TestAppendRecordShapeMismatch(t *testing.T) {
	f := testFormat()
	rec := NewRecord(f)
	rec.Ints[1] = rec.Ints[1][:2] // wrong arity
	if _, err := AppendRecord(nil, f, rec); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestDecodeRecordTruncated(t *testing.T) {
	f := testFormat()
	rec := NewRecord(f)
	if _, err := DecodeRecord(make([]byte, f.RecordSize()-1), f, &rec); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestExtractColumn(t *testing.T) {
	f := &Format{
		Name: "cols",
		Fields: []Field{
			{Name: "a", Kind: Uint8, Count: 1},
			{Name: "b", Kind: Int32, Count: 2},
		},
	}
	rec := NewRecord(f)
	var batch []byte
	var err error
	for i := 0; i < 5; i++ {
		rec.Ints[0][0] = int64(i)
		rec.Ints[1][0] = int64(i * 10)
		rec.Ints[1][1] = int64(i * 100)
		batch, err = AppendRecord(batch, f, rec)
		if err != nil {
			t.Fatal(err)
		}
	}
	colA, err := ExtractColumn(batch, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(colA, []byte{0, 1, 2, 3, 4}) {
		t.Fatalf("column a = %v", colA)
	}
	colB, err := ExtractColumn(batch, f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(colB) != 5*8 {
		t.Fatalf("column b size = %d", len(colB))
	}
	if _, err := ExtractColumn(batch, f, 2); err == nil {
		t.Fatal("expected index error")
	}
	if _, err := ExtractColumn(batch[:len(batch)-1], f, 0); err == nil {
		t.Fatal("expected size error")
	}
}

func TestQuickRecordRoundtrip(t *testing.T) {
	f := &Format{
		Name: "q",
		Fields: []Field{
			{Name: "i64", Kind: Int64, Count: 2},
			{Name: "f64", Kind: Float64, Count: 2},
			{Name: "u8", Kind: Uint8, Count: 3},
		},
	}
	fn := func(a, b int64, x, y float64, p, q, r uint8) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true // NaN compares unequal; skip
		}
		rec := NewRecord(f)
		rec.Ints[0][0], rec.Ints[0][1] = a, b
		rec.Floats[1][0], rec.Floats[1][1] = x, y
		rec.Ints[2][0], rec.Ints[2][1], rec.Ints[2][2] = int64(p), int64(q), int64(r)
		buf, err := AppendRecord(nil, f, rec)
		if err != nil {
			return false
		}
		out := NewRecord(f)
		if _, err := DecodeRecord(buf, f, &out); err != nil {
			return false
		}
		return out.Ints[0][0] == a && out.Ints[0][1] == b &&
			out.Floats[1][0] == x && out.Floats[1][1] == y &&
			out.Ints[2][0] == int64(p) && out.Ints[2][1] == int64(q) && out.Ints[2][2] == int64(r)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Uint8: "uint8", Int32: "int32", Int64: "int64",
		Float32: "float32", Float64: "float64", Kind(42): "kind(42)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q want %q", k, k.String(), s)
		}
	}
}

func TestReadFormatTruncatedMidFields(t *testing.T) {
	// A valid prefix that ends inside the field list must surface
	// ErrUnexpectedEOF-style failures, not io.EOF masquerading as success.
	var buf bytes.Buffer
	if err := WriteFormat(&buf, testFormat()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut += 3 {
		if _, err := ReadFormat(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("cut %d: truncated format accepted", cut)
		}
	}
}
