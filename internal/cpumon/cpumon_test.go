package cpumon

import (
	"bytes"
	"testing"
	"time"

	"ccx/internal/codec"
)

func repetitive(n int) []byte {
	motif := []byte("calibration sample: repetitive transaction record; ")
	return bytes.Repeat(motif, n/len(motif)+1)[:n]
}

func TestMeasureBasic(t *testing.T) {
	var c Calibrator
	res, err := c.Measure(codec.LempelZiv, repetitive(64*1024))
	if err != nil {
		t.Fatal(err)
	}
	if res.InLen != 64*1024 || res.OutLen <= 0 || res.OutLen >= res.InLen {
		t.Fatalf("sizes: %+v", res)
	}
	if res.ReducingSpeed <= 0 {
		t.Fatal("expected positive reducing speed on compressible data")
	}
	if res.Ratio <= 0 || res.Ratio >= 1 {
		t.Fatalf("ratio = %v", res.Ratio)
	}
	if res.CompressTime <= 0 || res.DecompressTime <= 0 {
		t.Fatalf("times: %+v", res)
	}
}

func TestMeasureAllAndLatest(t *testing.T) {
	var c Calibrator
	methods := []codec.Method{codec.Huffman, codec.LempelZiv, codec.BurrowsWheeler, codec.Arithmetic}
	res, err := c.MeasureAll(methods, repetitive(32*1024))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(methods) {
		t.Fatalf("got %d results", len(res))
	}
	for _, m := range methods {
		latest, ok := c.Latest(m)
		if !ok || latest.Method != m {
			t.Fatalf("Latest(%v) missing", m)
		}
		if c.ReducingSpeed(m) != latest.ReducingSpeed {
			t.Fatalf("ReducingSpeed(%v) mismatch", m)
		}
	}
	if c.ReducingSpeed(codec.None) != 0 {
		t.Fatal("unmeasured method should report 0")
	}
}

// TestFigure4Ordering checks the paper's headline microbenchmark shape:
// Huffman reduces fastest... actually per Figure 4, Lempel-Ziv and Huffman
// both far outpace Burrows-Wheeler; BWT is the slowest reducer.
func TestFigure4Ordering(t *testing.T) {
	var c Calibrator
	data := repetitive(256 * 1024)
	res, err := c.MeasureAll([]codec.Method{codec.Huffman, codec.LempelZiv, codec.BurrowsWheeler}, data)
	if err != nil {
		t.Fatal(err)
	}
	lzSpeed := res[codec.LempelZiv].ReducingSpeed
	bwtSpeed := res[codec.BurrowsWheeler].ReducingSpeed
	if bwtSpeed >= lzSpeed {
		t.Fatalf("BWT reducing speed (%.0f) should be below LZ (%.0f)", bwtSpeed, lzSpeed)
	}
	if res[codec.BurrowsWheeler].CompressTime <= res[codec.Huffman].CompressTime {
		t.Fatal("BWT should take longer to compress than Huffman")
	}
}

func TestSpeedScaleEmulatesSlowCPU(t *testing.T) {
	// With a virtual clock both calibrators see identical raw timings, so
	// the scale factor is exactly observable.
	mkNow := func() func() time.Time {
		tick := time.Unix(0, 0)
		return func() time.Time {
			tick = tick.Add(50 * time.Millisecond)
			return tick
		}
	}
	data := repetitive(64 * 1024)
	fast := Calibrator{Now: mkNow()}
	slow := Calibrator{Now: mkNow(), SpeedScale: 2}
	rf, err := fast.Measure(codec.LempelZiv, data)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := slow.Measure(codec.LempelZiv, data)
	if err != nil {
		t.Fatal(err)
	}
	if rs.CompressTime != 2*rf.CompressTime {
		t.Fatalf("scaled compress time %v, want 2×%v", rs.CompressTime, rf.CompressTime)
	}
	if diff := rs.ReducingSpeed*2 - rf.ReducingSpeed; diff > 1 || diff < -1 {
		t.Fatalf("scaled speed %v, want half of %v", rs.ReducingSpeed, rf.ReducingSpeed)
	}
}

func TestMeasureIncompressible(t *testing.T) {
	var c Calibrator
	data := make([]byte, 8192)
	for i := range data {
		data[i] = byte(i*7 + i>>3)
	}
	res, err := c.Measure(codec.Huffman, data)
	if err != nil {
		t.Fatal(err)
	}
	if res.OutLen < res.InLen && res.ReducingSpeed == 0 {
		t.Fatal("compressible sample should have speed")
	}
	// Either way, never negative.
	if res.ReducingSpeed < 0 {
		t.Fatal("negative reducing speed")
	}
}

func TestMeasureUnknownMethod(t *testing.T) {
	var c Calibrator
	if _, err := c.Measure(codec.Method(250), []byte("x")); err == nil {
		t.Fatal("expected error")
	}
}

func TestCustomRegistry(t *testing.T) {
	reg := codec.NewRegistry()
	c := Calibrator{Registry: reg}
	if _, err := c.Measure(codec.Huffman, repetitive(1024)); err != nil {
		t.Fatal(err)
	}
}
