// Package cpumon measures the "reducing speed" of compression methods —
// the paper's Figure 4 metric: how many bytes per second a CPU can remove
// from a data stream with a given method. The measurement is end-to-end in
// the paper's sense: it reflects the current machine, current load, and the
// data actually being streamed.
//
// A SpeedScale knob stands in for the paper's hardware diversity (Sun-Fire
// 280R vs the ~2× slower Ultra-Sparc) and for CPU contention: scaling the
// measured speed down is indistinguishable, to the selector, from running
// on a slower or busier machine.
package cpumon

import (
	"sync"
	"time"

	"ccx/internal/codec"
)

// Measurement is one method's observed compression behaviour on a data
// sample.
type Measurement struct {
	Method codec.Method
	// CompressTime and DecompressTime are per-sample wall times.
	CompressTime   time.Duration
	DecompressTime time.Duration
	// InLen and OutLen are the sample's original and compressed sizes.
	InLen, OutLen int
	// ReducingSpeed is (InLen-OutLen)/CompressTime in bytes/s (0 when the
	// sample did not shrink).
	ReducingSpeed float64
	// Ratio is OutLen/InLen.
	Ratio float64
}

// Calibrator measures methods on representative data. It is safe for
// concurrent use.
type Calibrator struct {
	// Registry supplies codecs (default registry when nil).
	Registry *codec.Registry
	// SpeedScale divides measured speeds and multiplies measured times,
	// emulating a slower CPU. Values ≤ 0 mean 1.
	SpeedScale float64
	// Now supplies timestamps; defaults to time.Now.
	Now func() time.Time

	mu     sync.Mutex
	latest map[codec.Method]Measurement
}

// scale returns the effective CPU slowdown factor.
func (c *Calibrator) scale() float64 {
	if c.SpeedScale <= 0 {
		return 1
	}
	return c.SpeedScale
}

func (c *Calibrator) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

func (c *Calibrator) registry() *codec.Registry {
	if c.Registry != nil {
		return c.Registry
	}
	return codec.NewRegistry()
}

// Measure runs one method over data and records the result.
func (c *Calibrator) Measure(m codec.Method, data []byte) (Measurement, error) {
	cd, err := c.registry().Get(m)
	if err != nil {
		return Measurement{}, err
	}
	res := Measurement{Method: m, InLen: len(data)}
	start := c.now()
	out, err := cd.Compress(data)
	res.CompressTime = time.Duration(float64(c.now().Sub(start)) * c.scale())
	if err != nil {
		return res, err
	}
	res.OutLen = len(out)
	if len(data) > 0 {
		res.Ratio = float64(len(out)) / float64(len(data))
	}
	start = c.now()
	if _, err := cd.Decompress(out, len(data)); err != nil {
		return res, err
	}
	res.DecompressTime = time.Duration(float64(c.now().Sub(start)) * c.scale())
	if reduced := res.InLen - res.OutLen; reduced > 0 && res.CompressTime > 0 {
		res.ReducingSpeed = float64(reduced) / res.CompressTime.Seconds()
	}
	c.mu.Lock()
	if c.latest == nil {
		c.latest = make(map[codec.Method]Measurement, 8)
	}
	c.latest[m] = res
	c.mu.Unlock()
	return res, nil
}

// MeasureAll measures every listed method over data.
func (c *Calibrator) MeasureAll(methods []codec.Method, data []byte) (map[codec.Method]Measurement, error) {
	out := make(map[codec.Method]Measurement, len(methods))
	for _, m := range methods {
		res, err := c.Measure(m, data)
		if err != nil {
			return nil, err
		}
		out[m] = res
	}
	return out, nil
}

// Latest returns the most recent measurement for m, if any.
func (c *Calibrator) Latest(m codec.Method) (Measurement, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.latest[m]
	return res, ok
}

// ReducingSpeed returns the latest reducing speed for m, or 0 when unknown.
func (c *Calibrator) ReducingSpeed(m codec.Method) float64 {
	res, ok := c.Latest(m)
	if !ok {
		return 0
	}
	return res.ReducingSpeed
}
