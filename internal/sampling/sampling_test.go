package sampling

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestEntropyBounds(t *testing.T) {
	if Entropy(nil) != 0 {
		t.Fatal("empty entropy != 0")
	}
	if h := Entropy(bytes.Repeat([]byte{7}, 1000)); h != 0 {
		t.Fatalf("constant data entropy = %v", h)
	}
	// Uniform over 256 values → 8 bits/byte.
	data := make([]byte, 256*64)
	for i := range data {
		data[i] = byte(i)
	}
	if h := Entropy(data); math.Abs(h-8) > 1e-9 {
		t.Fatalf("uniform entropy = %v want 8", h)
	}
	// Two equiprobable symbols → 1 bit/byte.
	ab := bytes.Repeat([]byte{'a', 'b'}, 500)
	if h := Entropy(ab); math.Abs(h-1) > 1e-9 {
		t.Fatalf("binary entropy = %v want 1", h)
	}
}

func TestRepetitionScore(t *testing.T) {
	if RepetitionScore([]byte("abc")) != 0 {
		t.Fatal("short input should score 0")
	}
	rep := RepetitionScore(bytes.Repeat([]byte("the same phrase over and over. "), 100))
	if rep < 0.9 {
		t.Fatalf("repetitive score = %.3f, want > 0.9", rep)
	}
	rng := rand.New(rand.NewSource(1))
	random := make([]byte, 4096)
	rng.Read(random)
	if r := RepetitionScore(random); r > 0.05 {
		t.Fatalf("random score = %.3f, want ≈ 0", r)
	}
}

func TestProbeCompressible(t *testing.T) {
	var s Sampler
	block := bytes.Repeat([]byte("probe sample data; "), 1000)
	res := s.Probe(block)
	if res.SampleLen != DefaultProbeSize {
		t.Fatalf("SampleLen = %d", res.SampleLen)
	}
	if res.Ratio > 0.3 {
		t.Fatalf("repetitive probe ratio = %.3f", res.Ratio)
	}
	if res.ReducingSpeed <= 0 {
		t.Fatal("expected positive reducing speed")
	}
	if res.Repetition < 0.5 {
		t.Fatalf("repetition = %.3f", res.Repetition)
	}
}

func TestProbeIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	block := make([]byte, 8192)
	rng.Read(block)
	var s Sampler
	res := s.Probe(block)
	if res.Ratio < 0.99 {
		t.Fatalf("random probe ratio = %.3f", res.Ratio)
	}
	if res.ReducingSpeed != 0 {
		t.Fatalf("reducing speed on incompressible data = %v", res.ReducingSpeed)
	}
}

func TestProbeShortBlock(t *testing.T) {
	var s Sampler
	res := s.Probe([]byte("tiny"))
	if res.SampleLen != 4 {
		t.Fatalf("SampleLen = %d", res.SampleLen)
	}
}

func TestProbeEmpty(t *testing.T) {
	var s Sampler
	res := s.Probe(nil)
	if res.Ratio != 1 || res.SampleLen != 0 {
		t.Fatalf("empty probe: %+v", res)
	}
}

func TestProbeCustomSize(t *testing.T) {
	s := Sampler{ProbeSize: 128}
	res := s.Probe(bytes.Repeat([]byte{1}, 4096))
	if res.SampleLen != 128 {
		t.Fatalf("SampleLen = %d", res.SampleLen)
	}
}

func TestProbeVirtualClock(t *testing.T) {
	// A virtual clock makes reducing speed fully deterministic.
	tick := time.Unix(0, 0)
	s := Sampler{
		Now: func() time.Time {
			tick = tick.Add(10 * time.Millisecond)
			return tick
		},
	}
	block := bytes.Repeat([]byte("deterministic timing sample; "), 500)
	res := s.Probe(block)
	if res.Duration != 10*time.Millisecond {
		t.Fatalf("Duration = %v", res.Duration)
	}
	wantSpeed := float64(res.SampleLen-res.CompressedLen) / 0.01
	if math.Abs(res.ReducingSpeed-wantSpeed) > 1e-6 {
		t.Fatalf("ReducingSpeed = %v want %v", res.ReducingSpeed, wantSpeed)
	}
}

func TestProbeSpeedScale(t *testing.T) {
	tickA := time.Unix(0, 0)
	base := Sampler{Now: func() time.Time { tickA = tickA.Add(time.Millisecond); return tickA }}
	tickB := time.Unix(0, 0)
	slow := Sampler{
		Now:        func() time.Time { tickB = tickB.Add(time.Millisecond); return tickB },
		SpeedScale: 4,
	}
	block := bytes.Repeat([]byte("scaled speed sample; "), 1000)
	rBase := base.Probe(block)
	rSlow := slow.Probe(block)
	if math.Abs(rSlow.ReducingSpeed*4-rBase.ReducingSpeed) > 1e-6 {
		t.Fatalf("SpeedScale not applied: %v vs %v", rSlow.ReducingSpeed, rBase.ReducingSpeed)
	}
}
