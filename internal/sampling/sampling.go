// Package sampling implements the data-sampling side of the paper's
// selection loop (§2.5 and §4.1): before each 128 KB block is sent, the
// first 4 KB of the *next* block is compressed with Lempel-Ziv by a
// concurrent worker; the probe's compression ratio predicts the block's
// compressibility and its timing yields the current "reducing speed"
// (bytes of size reduction per second of CPU).
//
// The package also provides the two data-characteristic detectors the paper
// derives from Figure 6: entropy estimation (low-entropy data suits
// Huffman/arithmetic) and string-repetition scoring (repetitive data suits
// Lempel-Ziv/Burrows-Wheeler).
package sampling

import (
	"math"
	"time"

	"ccx/internal/lz"
)

// DefaultProbeSize is the paper's 4 KB sample.
const DefaultProbeSize = 4 * 1024

// Entropy returns the order-0 Shannon entropy of data in bits per byte
// (0 for empty input).
func Entropy(data []byte) float64 {
	if len(data) == 0 {
		return 0
	}
	var freq [256]int
	for _, b := range data {
		freq[b]++
	}
	n := float64(len(data))
	h := 0.0
	for _, f := range freq {
		if f == 0 {
			continue
		}
		p := float64(f) / n
		h -= p * math.Log2(p)
	}
	return h
}

// RepetitionScore estimates string repetitiveness as the fraction of
// positions whose 4-byte gram already occurred earlier in data. Values near
// 1 indicate LZ-friendly data; values near 0 indicate novel content.
func RepetitionScore(data []byte) float64 {
	if len(data) < 8 {
		return 0
	}
	seen := make(map[uint32]struct{}, len(data))
	repeats := 0
	total := len(data) - 3
	for i := 0; i < total; i++ {
		g := uint32(data[i]) | uint32(data[i+1])<<8 | uint32(data[i+2])<<16 | uint32(data[i+3])<<24
		if _, ok := seen[g]; ok {
			repeats++
		} else {
			seen[g] = struct{}{}
		}
	}
	return float64(repeats) / float64(total)
}

// ProbeResult summarizes one Lempel-Ziv sampling probe.
type ProbeResult struct {
	// SampleLen is how many bytes were probed.
	SampleLen int
	// CompressedLen is the probe's compressed size.
	CompressedLen int
	// Ratio is CompressedLen/SampleLen — the paper's "sampling has been
	// compressed into less than 48.78%" test consumes this.
	Ratio float64
	// Duration is the CPU time the probe took.
	Duration time.Duration
	// ReducingSpeed is bytes of size reduction per second (the paper's
	// Figure 4 metric), 0 when the sample did not shrink.
	ReducingSpeed float64
	// Entropy and Repetition characterize the sample (Figure 6 criteria).
	Entropy    float64
	Repetition float64
}

// Sampler runs LZ probes. The zero value is usable: DefaultProbeSize and
// the real clock.
type Sampler struct {
	// ProbeSize bounds how many bytes of the block are sampled
	// (DefaultProbeSize when 0).
	ProbeSize int
	// Now supplies timestamps; defaults to time.Now. Tests and the
	// deterministic simulation harness inject virtual clocks here.
	Now func() time.Time
	// SpeedScale divides measured reducing speed, emulating a slower CPU
	// (the paper's Ultra-Sparc vs Sun-Fire comparison) or a loaded one.
	// Values ≤ 0 mean 1.
	SpeedScale float64
}

// Probe compresses the first ProbeSize bytes of block with Lempel-Ziv and
// reports ratio, timing and data characteristics.
func (s *Sampler) Probe(block []byte) ProbeResult {
	size := s.ProbeSize
	if size <= 0 {
		size = DefaultProbeSize
	}
	if size > len(block) {
		size = len(block)
	}
	sample := block[:size]
	now := s.Now
	if now == nil {
		now = time.Now
	}
	res := ProbeResult{SampleLen: size}
	if size == 0 {
		res.Ratio = 1
		return res
	}
	start := now()
	out, err := lz.Compress(sample)
	res.Duration = now().Sub(start)
	if err != nil {
		// A probe failure is not fatal to the exchange: report the sample as
		// incompressible so the selector sends raw.
		res.CompressedLen = size
		res.Ratio = 1
		return res
	}
	res.CompressedLen = len(out)
	res.Ratio = float64(len(out)) / float64(size)
	scale := s.SpeedScale
	if scale <= 0 {
		scale = 1
	}
	if reduced := size - len(out); reduced > 0 && res.Duration > 0 {
		res.ReducingSpeed = float64(reduced) / res.Duration.Seconds() / scale
	}
	res.Entropy = Entropy(sample)
	res.Repetition = RepetitionScore(sample)
	return res
}
