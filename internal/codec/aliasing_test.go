package codec

import (
	"bytes"
	"math/rand"
	"testing"
)

// aliasingInput is compressible-but-varied data so every codec produces a
// non-trivial output worth mutating.
func aliasingInput(size int) []byte {
	rng := rand.New(rand.NewSource(99))
	src := make([]byte, size)
	for i := range src {
		if rng.Intn(4) == 0 {
			src[i] = byte(rng.Intn(256))
		} else {
			src[i] = byte('a' + i%7)
		}
	}
	return src
}

// corrupt flips every byte of b in place — the harshest mutation a caller
// who "owns" a buffer could apply.
func corrupt(b []byte) {
	for i := range b {
		b[i] ^= 0xA5
	}
}

// TestEncodeAliasing enforces the Codec contract's compress half for every
// registered method: the returned buffer must alias neither src nor any
// retained codec state. The probe is behavioral — mutate the first output
// to bits, re-encode the same input, and demand a byte-identical second
// output; then mutate src and demand the second output stays intact. Any
// aliasing (a returned internal scratch buffer, an output window over src)
// fails one of the two comparisons. This is exactly the access pattern of
// the parallel pipeline, which recycles frame buffers through a sync.Pool
// while workers encode neighbouring blocks.
func TestEncodeAliasing(t *testing.T) {
	src := aliasingInput(32 << 10)
	reg := NewRegistry()
	for _, m := range reg.Methods() {
		t.Run(m.String(), func(t *testing.T) {
			c, err := reg.Get(m)
			if err != nil {
				t.Fatal(err)
			}
			pristine := bytes.Clone(src)

			first, err := c.Compress(src)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(src, pristine) {
				t.Fatal("Compress mutated src")
			}
			want := bytes.Clone(first)
			corrupt(first) // caller owns the output: trash it

			second, err := c.Compress(src)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(second, want) {
				t.Fatal("re-encoding after mutating the previous output changed the result: Compress returned retained state")
			}
			corrupt(src) // src is the caller's to reuse immediately
			if !bytes.Equal(second, want) {
				t.Fatal("mutating src changed an already-returned output: Compress output aliases src")
			}
		})
	}
}

// TestDecodeAliasing enforces the decompress half: the returned block must
// be independent of src, because the framing layer hands Decompress its
// scratch buffer and overwrites it on the next frame.
func TestDecodeAliasing(t *testing.T) {
	src := aliasingInput(32 << 10)
	reg := NewRegistry()
	for _, m := range reg.Methods() {
		t.Run(m.String(), func(t *testing.T) {
			c, err := reg.Get(m)
			if err != nil {
				t.Fatal(err)
			}
			comp, err := c.Compress(src)
			if err != nil {
				t.Fatal(err)
			}
			out, err := c.Decompress(comp, len(src))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out, src) {
				t.Fatal("round trip failed")
			}
			corrupt(comp) // simulate the FrameReader reusing its scratch
			if !bytes.Equal(out, src) {
				t.Fatal("mutating the compressed input changed an already-returned block: Decompress output aliases src")
			}
		})
	}
}

// TestFrameReaderScratchReuse is the frame-level aliasing case: blocks
// returned by consecutive ReadBlock calls must stay intact even though the
// reader reuses one payload scratch buffer across frames.
func TestFrameReaderScratchReuse(t *testing.T) {
	reg := NewRegistry()
	blockA := aliasingInput(16 << 10)
	blockB := make([]byte, 16<<10) // all-zero: a very different payload
	var wire []byte
	var err error
	for _, m := range reg.Methods() {
		for _, b := range [][]byte{blockA, blockB} {
			wire, _, err = AppendFrame(wire, reg, m, b)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	fr := NewFrameReader(bytes.NewReader(wire), reg)
	var decoded [][]byte
	for {
		data, _, err := fr.ReadBlock()
		if err != nil {
			break
		}
		decoded = append(decoded, data) // deliberately no copy
	}
	if len(decoded) != 2*len(reg.Methods()) {
		t.Fatalf("decoded %d blocks, want %d", len(decoded), 2*len(reg.Methods()))
	}
	for i, got := range decoded {
		want := blockA
		if i%2 == 1 {
			want = blockB
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d was clobbered by a later frame's decode", i)
		}
	}
}
