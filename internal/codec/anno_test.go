package codec

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// annotated frame coverage: round-trips, size caps, CRC coverage of the
// annotation region, truncation behaviour, and scratch-reuse safety of the
// returned Anno slice.

func TestFrameAnnoRoundtrip(t *testing.T) {
	anno := []byte{0x01, 3, 0x10, 0x20, 0x30, 0x7F, 2, 9, 9} // trace-ish TLV + unknown kind
	data := bytes.Repeat([]byte("annotated frame payload "), 16)
	for _, m := range []Method{None, LempelZiv, Huffman} {
		var buf bytes.Buffer
		frame, info, err := AppendFrameOpts(nil, nil, m, data, FrameOpts{Seq: 42, Anno: anno})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		buf.Write(frame)
		got, rinfo, err := NewFrameReader(&buf, nil).ReadBlock()
		if err != nil {
			t.Fatalf("%v read: %v", m, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%v payload mismatch", m)
		}
		if !rinfo.HasSeq || rinfo.Seq != 42 {
			t.Fatalf("%v seq = (%d, %v)", m, rinfo.Seq, rinfo.HasSeq)
		}
		if !bytes.Equal(rinfo.Anno, anno) {
			t.Fatalf("%v anno = %x want %x", m, rinfo.Anno, anno)
		}
		if !bytes.Equal(info.Anno, anno) {
			t.Fatalf("%v writer info anno = %x", m, info.Anno)
		}
	}
}

// An empty annotation must not bump the wire version: FrameOpts{HasSeq}
// with no Anno is exactly AppendFrameSeq.
func TestFrameOptsEmptyAnnoStaysV3(t *testing.T) {
	data := []byte("same bytes either way")
	a, _, err := AppendFrameOpts(nil, nil, None, data, FrameOpts{Seq: 7, HasSeq: true})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := AppendFrameSeq(nil, nil, None, data, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("empty-anno FrameOpts frame differs from AppendFrameSeq")
	}
	if a[2] != FrameVersionSeq {
		t.Fatalf("version byte = %d, want v3", a[2])
	}
}

func TestFrameAnnoTooLong(t *testing.T) {
	_, _, err := AppendFrameOpts(nil, nil, None, []byte("x"), FrameOpts{Anno: make([]byte, MaxAnnoLen+1)})
	if err == nil {
		t.Fatal("oversized annotation accepted")
	}
}

// Every byte of the annotation region is CRC-covered: flipping any one must
// surface as ErrCorruptFrame, never as a silently different annotation.
func TestFrameAnnoCRCCoverage(t *testing.T) {
	anno := []byte{0x01, 4, 1, 2, 3, 4}
	frame, _, err := AppendFrameOpts(nil, nil, None, []byte("payload"), FrameOpts{Seq: 5, Anno: anno})
	if err != nil {
		t.Fatal(err)
	}
	// Locate the annotation: header is magic(2) ver(1) method(1) flags(1)
	// origLen(1) compLen(1) seq(1) annoLen(1) then anno.
	start := 9
	for at := start; at < start+len(anno); at++ {
		mut := append([]byte(nil), frame...)
		mut[at] ^= 0x40
		_, _, rerr := NewFrameReader(bytes.NewReader(mut), nil).ReadBlock()
		if !errors.Is(rerr, ErrCorruptFrame) {
			t.Fatalf("flip at %d: got %v, want ErrCorruptFrame", at, rerr)
		}
	}
}

// Truncating a v4 frame at any boundary must yield io.ErrUnexpectedEOF (or
// clean io.EOF at offset zero), never a panic or a bogus success.
func TestFrameAnnoTruncation(t *testing.T) {
	anno := []byte{0x01, 8, 1, 2, 3, 4, 5, 6, 7, 8}
	frame, _, err := AppendFrameOpts(nil, nil, LempelZiv, bytes.Repeat([]byte("truncate me "), 12), FrameOpts{Seq: 9, Anno: anno})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(frame); cut++ {
		_, _, rerr := NewFrameReader(bytes.NewReader(frame[:cut]), nil).ReadBlock()
		switch {
		case cut == 0 && rerr != io.EOF:
			t.Fatalf("cut 0: got %v, want io.EOF", rerr)
		case cut > 0 && rerr == nil:
			t.Fatalf("cut %d: truncated frame decoded", cut)
		}
	}
}

// A hostile annoLen varint must be rejected before allocation.
func TestFrameAnnoHostileLength(t *testing.T) {
	frame, _, err := AppendFrameOpts(nil, nil, None, []byte("x"), FrameOpts{Seq: 1, Anno: []byte{0x01, 1, 7}})
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), frame...)
	// annoLen byte sits at offset 8; replace with a 5-byte varint claiming
	// ~512 MiB. The splice invalidates the CRC too, but the length check
	// must fire first (ErrFrameSize, not ErrChecksum).
	big := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0x01}
	mut = append(mut[:8:8], append(big, mut[9:]...)...)
	_, _, rerr := NewFrameReader(bytes.NewReader(mut), nil).ReadBlock()
	if !errors.Is(rerr, ErrFrameSize) {
		t.Fatalf("got %v, want ErrFrameSize", rerr)
	}
}

// BlockInfo.Anno must survive the reader's scratch reuse: reading the next
// frame may not clobber the previous frame's annotation.
func TestFrameAnnoOutlivesNextRead(t *testing.T) {
	annoA := []byte{0x01, 2, 0xAA, 0xAB}
	annoB := []byte{0x01, 2, 0xBB, 0xBC}
	var buf bytes.Buffer
	for _, anno := range [][]byte{annoA, annoB} {
		frame, _, err := AppendFrameOpts(nil, nil, None, []byte("block"), FrameOpts{Seq: 1, Anno: anno})
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame)
	}
	fr := NewFrameReader(&buf, nil)
	_, infoA, err := fr.ReadBlock()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fr.ReadBlock(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(infoA.Anno, annoA) {
		t.Fatalf("first frame's anno clobbered by second read: %x", infoA.Anno)
	}
}

// A corrupt v4 frame must resync like any other version, and v4 boundaries
// must count as plausible resync targets.
func TestFrameAnnoResync(t *testing.T) {
	anno := []byte{0x01, 2, 1, 2}
	good, _, err := AppendFrameOpts(nil, nil, None, []byte("survivor"), FrameOpts{Seq: 2, Anno: anno})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0xFF // payload damage
	stream := append(append([]byte{0xDE, 0xAD}, bad...), good...)
	fr := NewFrameReader(bytes.NewReader(stream), nil)
	var recovered bool
	for i := 0; i < 8; i++ {
		data, info, err := fr.ReadBlock()
		if err == nil {
			if string(data) != "survivor" || !bytes.Equal(info.Anno, anno) {
				t.Fatalf("recovered wrong frame: %q anno %x", data, info.Anno)
			}
			recovered = true
			break
		}
		if errors.Is(err, ErrCorruptFrame) {
			if rerr := fr.Resync(); rerr != nil {
				t.Fatalf("resync: %v", rerr)
			}
			continue
		}
		t.Fatalf("read: %v", err)
	}
	if !recovered {
		t.Fatal("never recovered the healthy v4 frame")
	}
}
