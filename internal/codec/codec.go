// Package codec unifies the four compression methods of the paper behind a
// single interface, assigns them stable wire identifiers, and defines the
// framed block format used by the data-exchange layer.
//
// The method set mirrors §2 of the paper — no compression, Huffman,
// arithmetic, Lempel-Ziv, Burrows-Wheeler — and the registry is open:
// middleware can deploy additional (even lossy, application-specific)
// codecs at runtime, the extension path §5 of the paper calls out.
package codec

import (
	"fmt"
	"sort"
	"sync"

	"ccx/internal/arith"
	"ccx/internal/bwt"
	"ccx/internal/huffman"
	"ccx/internal/lz"
)

// Method identifies a compression method on the wire.
//
// None is deliberately the zero value: an unconfigured exchange transports
// data uncompressed, matching the paper's default of applying no compression
// while bandwidth is plentiful.
type Method uint8

// Wire identifiers. These values appear in frame headers and must not be
// renumbered.
const (
	None Method = iota
	Huffman
	Arithmetic
	LempelZiv
	BurrowsWheeler
	// FirstCustom is the lowest identifier available to runtime-registered
	// codecs.
	FirstCustom Method = 64
)

// String returns the method's human-readable name.
func (m Method) String() string {
	switch m {
	case None:
		return "none"
	case Huffman:
		return "huffman"
	case Arithmetic:
		return "arithmetic"
	case LempelZiv:
		return "lempel-ziv"
	case BurrowsWheeler:
		return "burrows-wheeler"
	}
	return fmt.Sprintf("custom(%d)", uint8(m))
}

// CostRank orders methods by CPU cost for the overload-degradation ladder
// (BWT → LZ → Huffman → None): a method is "heavier" than a cap when its
// rank is greater. The built-in wire identifiers happen to ascend in cost
// order; custom codecs rank above everything built in, so a governor cap
// always demotes them.
func CostRank(m Method) int {
	if m <= BurrowsWheeler {
		return int(m)
	}
	return int(BurrowsWheeler) + 1
}

// Codec compresses and decompresses byte blocks. Implementations must be
// safe for concurrent use.
//
// Buffer-ownership contract (load-bearing for the parallel pipeline, which
// recycles frame buffers through a sync.Pool and encodes many blocks
// concurrently):
//
//   - Compress must return a slice that aliases neither src nor any state
//     retained by the codec: the caller owns the returned bytes outright and
//     may mutate them, while src stays the caller's to reuse immediately.
//   - Decompress must likewise return a slice independent of src — the
//     framing layer hands it a scratch buffer that is overwritten by the
//     next frame.
//
// codec's aliasing tests (TestEncodeAliasing/TestDecodeAliasing) enforce
// both rules for every registered method.
type Codec interface {
	// Method returns the codec's wire identifier.
	Method() Method
	// Compress encodes src. It must not retain or mutate src. A nil return
	// with nil error is valid for empty input.
	Compress(src []byte) ([]byte, error)
	// Decompress reverses Compress given the original length. It must not
	// retain src and must detect (not panic on) malformed input.
	Decompress(src []byte, origLen int) ([]byte, error)
}

// funcCodec adapts compress/decompress function pairs.
type funcCodec struct {
	method Method
	comp   func([]byte) ([]byte, error)
	decomp func([]byte, int) ([]byte, error)
}

func (c funcCodec) Method() Method { return c.method }
func (c funcCodec) Compress(src []byte) ([]byte, error) {
	return c.comp(src)
}
func (c funcCodec) Decompress(src []byte, origLen int) ([]byte, error) {
	return c.decomp(src, origLen)
}

// rawCodec is the built-in None method. It is a named type (not a
// funcCodec) so the framing layer can recognize the genuine raw codec and
// skip the copy-through-Compress entirely, appending the block straight
// into the frame buffer — one whole block-size allocation saved per raw
// block, which matters because None is the default on fast links. A custom
// codec registered under the None identifier is a different type and takes
// the general path.
type rawCodec struct{}

func (rawCodec) Method() Method { return None }

func (rawCodec) Compress(src []byte) ([]byte, error) {
	if len(src) == 0 {
		return nil, nil
	}
	// The copy keeps the Codec contract: the returned slice must not alias
	// src. The framing layer's fast path avoids this copy.
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

func (rawCodec) Decompress(src []byte, origLen int) ([]byte, error) {
	if len(src) != origLen {
		return nil, fmt.Errorf("codec: raw block length %d != declared %d", len(src), origLen)
	}
	// src is the FrameReader's scratch buffer, overwritten by the next
	// frame: the copy is what makes the returned block the caller's own.
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

// Registry maps wire identifiers to codecs. The zero value is empty; most
// callers want NewRegistry, which is pre-populated with the paper's methods.
type Registry struct {
	mu     sync.RWMutex
	codecs map[Method]Codec
}

// NewRegistry returns a registry containing the paper's five methods.
func NewRegistry() *Registry {
	r := &Registry{codecs: make(map[Method]Codec, 8)}
	for _, c := range builtin() {
		r.codecs[c.Method()] = c
	}
	return r
}

func builtin() []Codec {
	return []Codec{
		rawCodec{},
		funcCodec{Huffman, huffman.Compress, huffman.Decompress},
		funcCodec{Arithmetic, arith.Compress, arith.Decompress},
		funcCodec{LempelZiv, lz.Compress, lz.Decompress},
		funcCodec{BurrowsWheeler, bwt.Compress, bwt.Decompress},
	}
}

// NewOrder1Arithmetic returns the improved order-1 context-modelling
// arithmetic coder under the given identifier — the §3.2 upgrade path where
// "as improved compression algorithms are developed ... applications take
// advantage of such methods without any associated re-engineering costs".
// Register it (optionally shadowing the built-in Arithmetic id) and both
// ends decode by identifier as usual.
func NewOrder1Arithmetic(id Method) Codec {
	return funcCodec{id, arith.CompressOrder1, arith.DecompressOrder1}
}

// Register adds (or replaces) a codec. Built-in identifiers can be shadowed
// deliberately — the middleware uses this to deploy improved or
// application-specific methods at runtime (§3.2, §5).
func (r *Registry) Register(c Codec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.codecs[c.Method()] = c
}

// Get returns the codec for m.
func (r *Registry) Get(m Method) (Codec, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.codecs[m]
	if !ok {
		return nil, fmt.Errorf("codec: no codec registered for method %v", m)
	}
	return c, nil
}

// Methods returns the registered identifiers in ascending order.
func (r *Registry) Methods() []Method {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Method, 0, len(r.codecs))
	for m := range r.codecs {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// defaultRegistry serves the package-level helpers.
var defaultRegistry = NewRegistry()

// Compress encodes src with the given built-in method.
func Compress(m Method, src []byte) ([]byte, error) {
	c, err := defaultRegistry.Get(m)
	if err != nil {
		return nil, err
	}
	return c.Compress(src)
}

// Decompress decodes src with the given built-in method.
func Decompress(m Method, src []byte, origLen int) ([]byte, error) {
	c, err := defaultRegistry.Get(m)
	if err != nil {
		return nil, err
	}
	return c.Decompress(src, origLen)
}
