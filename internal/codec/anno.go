package codec

import (
	"encoding/binary"
	"fmt"
)

// Annotation TLV kind registry. A frame v4 annotation block is a sequence
// of records — kind(1) length(uvarint) payload — and readers skip kinds
// they do not understand, so new kinds never need a frame version bump.
// Kind 0x01 is the distributed-trace context (internal/tracing); kinds
// defined here must stay clear of it.
const (
	// annoKindClose carries a session-close reason: one CloseReason byte
	// followed by optional human-readable text. The broker stamps it into a
	// zero-length frame written right before it severs an evicted
	// subscriber, so the client can tell "evicted: overload" apart from a
	// generic transport error (and back off accordingly). Old readers see
	// an unknown TLV inside an empty frame — a heartbeat — and carry on.
	annoKindClose = 0x02
)

// CloseReason codes the broker's motive for severing a session.
type CloseReason byte

const (
	// CloseOverload is a slow-subscriber eviction: the outbound queue
	// overflowed under the Evict policy, or the overload governor shed the
	// session to relieve memory pressure.
	CloseOverload CloseReason = 1
	// CloseSlowConsumer is a circuit-breaker trip: the subscriber's queue
	// wait stayed over threshold for the whole breaker window.
	CloseSlowConsumer CloseReason = 2
)

// String renders the reason the way clients surface it ("evicted: <reason>").
func (r CloseReason) String() string {
	switch r {
	case CloseOverload:
		return "overload"
	case CloseSlowConsumer:
		return "slow consumer"
	}
	return fmt.Sprintf("close(%d)", byte(r))
}

// AppendCloseAnno appends a close-reason TLV record to dst. msg is
// truncated so the record always fits MaxAnnoLen alongside nothing else.
func AppendCloseAnno(dst []byte, reason CloseReason, msg string) []byte {
	const maxMsg = 128
	if len(msg) > maxMsg {
		msg = msg[:maxMsg]
	}
	dst = append(dst, annoKindClose)
	dst = binary.AppendUvarint(dst, uint64(1+len(msg)))
	dst = append(dst, byte(reason))
	return append(dst, msg...)
}

// ParseCloseAnno scans a frame annotation block for a close-reason record,
// skipping unknown TLV kinds. ok is false when the block carries none or
// is malformed (the frame CRC already covered the bytes, so malformed here
// means an incompatible writer — treat the frame as a plain heartbeat).
func ParseCloseAnno(anno []byte) (reason CloseReason, msg string, ok bool) {
	for len(anno) >= 2 {
		kind := anno[0]
		l, n := binary.Uvarint(anno[1:])
		if n <= 0 || uint64(len(anno)-1-n) < l {
			return 0, "", false
		}
		body := anno[1+n : 1+n+int(l)]
		anno = anno[1+n+int(l):]
		if kind != annoKindClose || len(body) < 1 {
			continue
		}
		return CloseReason(body[0]), string(body[1:]), true
	}
	return 0, "", false
}
