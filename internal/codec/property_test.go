package codec

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// propertyBlockSize matches selector.DefaultBlockSize (not imported to keep
// the codec package's test free of upward dependencies).
const propertyBlockSize = 64 << 10

// propertyShapes are the input families that drive each codec down a
// different internal path: degenerate single-symbol input, incompressible
// noise, run-length-friendly data, and skewed-alphabet text.
func propertyShapes(size int) map[string][]byte {
	shapes := map[string][]byte{}

	zeros := make([]byte, size)
	shapes["all-zero"] = zeros

	noise := make([]byte, size)
	rand.New(rand.NewSource(int64(size) + 1)).Read(noise)
	shapes["random"] = noise

	runs := make([]byte, size)
	rng := rand.New(rand.NewSource(int64(size) + 2))
	for i := 0; i < size; {
		b := byte(rng.Intn(8))
		n := 1 + rng.Intn(512)
		for j := 0; j < n && i < size; j++ {
			runs[i] = b
			i++
		}
	}
	shapes["long-runs"] = runs

	text := make([]byte, size)
	const alphabet = "the quick brown fox jumps over the lazy dog 0123456789\n"
	rng = rand.New(rand.NewSource(int64(size) + 3))
	for i := range text {
		// Zipf-ish skew: low indexes dominate, as in real text.
		k := rng.Intn(len(alphabet) * 3)
		if k >= len(alphabet) {
			k %= 8
		}
		text[i] = alphabet[k]
	}
	shapes["text"] = text

	return shapes
}

// TestRoundTripProperty is the cross-codec property test: every registered
// method must round-trip byte-identically across the block-size boundary
// cases (empty, single byte, blockSize±1, blockSize, 4x blockSize) for
// every input shape, and — for full-size blocks — decode within a bounded
// allocation budget, since the receive path runs a decode per frame at
// line rate.
func TestRoundTripProperty(t *testing.T) {
	bs := propertyBlockSize
	if testing.Short() {
		bs = 4 << 10
	}
	sizes := []int{0, 1, bs - 1, bs, bs + 1, 4 * bs}
	reg := NewRegistry()

	for _, m := range reg.Methods() {
		c, err := reg.Get(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, size := range sizes {
			for shape, src := range propertyShapes(size) {
				name := fmt.Sprintf("%v/size=%d/%s", m, size, shape)
				t.Run(name, func(t *testing.T) {
					comp, err := c.Compress(src)
					if err != nil {
						t.Fatalf("compress: %v", err)
					}
					got, err := c.Decompress(comp, len(src))
					if err != nil {
						t.Fatalf("decompress: %v", err)
					}
					if !bytes.Equal(got, src) {
						t.Fatalf("round trip lost data: %d in, %d compressed, %d out",
							len(src), len(comp), len(got))
					}
					if size >= bs {
						checkDecodeAllocs(t, c, comp, len(src))
					}
				})
			}
		}
	}
}

// checkDecodeAllocs bounds a single decode's heap traffic. The budget is
// deliberately loose — it exists to catch pathological per-symbol
// allocation (an accidental append-per-byte or per-node box), not to pin
// exact numbers: anything beyond ~48 bytes of allocation per output byte
// plus a fixed 1 MiB of table/scratch overhead indicates a regression.
func checkDecodeAllocs(t *testing.T, c Codec, comp []byte, origLen int) {
	t.Helper()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	out, err := c.Decompress(comp, origLen)
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	runtime.KeepAlive(out)
	spent := after.TotalAlloc - before.TotalAlloc
	budget := uint64(48*origLen + 1<<20)
	if spent > budget {
		t.Fatalf("decode of %d->%d bytes allocated %d bytes, budget %d",
			len(comp), origLen, spent, budget)
	}
}

// TestRoundTripThroughFrames pushes the same boundary sizes through the
// framing layer (AppendFrame -> FrameReader), where fallback-to-raw and
// scratch-buffer reuse live, for each method.
func TestRoundTripThroughFrames(t *testing.T) {
	bs := propertyBlockSize
	if testing.Short() {
		bs = 4 << 10
	}
	reg := NewRegistry()
	for _, m := range reg.Methods() {
		t.Run(m.String(), func(t *testing.T) {
			var wire []byte
			var blocks [][]byte
			for _, size := range []int{0, 1, bs - 1, bs, bs + 1} {
				src := propertyShapes(size)["text"]
				blocks = append(blocks, src)
				var err error
				wire, _, err = AppendFrame(wire, reg, m, src)
				if err != nil {
					t.Fatal(err)
				}
			}
			fr := NewFrameReader(bytes.NewReader(wire), reg)
			for i, want := range blocks {
				got, info, err := fr.ReadBlock()
				if err != nil {
					t.Fatalf("block %d: %v", i, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("block %d: decoded %d bytes != original %d", i, len(got), len(want))
				}
				if info.OrigLen != len(want) {
					t.Fatalf("block %d: OrigLen %d, want %d", i, info.OrigLen, len(want))
				}
			}
		})
	}
}
