package codec

import (
	"bytes"
	"testing"
)

// Fuzz targets: their seed corpora run as part of the ordinary test suite;
// `go test -fuzz=FuzzX ./internal/codec` explores further. Two invariants:
// compress∘decompress is the identity for every method, and no decoder may
// panic on arbitrary bytes.

func fuzzSeeds(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0})
	f.Add([]byte("abcabcabcabc"))
	f.Add(bytes.Repeat([]byte{0xFF}, 300))
	f.Add(bytes.Repeat([]byte("low entropy low entropy "), 40))
	f.Add([]byte{0xEC, 0x40, 1, 0, 0, 0, 0, 0, 0, 0, 0}) // frame-ish bytes
	// Annotated (v4) frame shapes: a healthy-looking header with an
	// annotation, a truncated one cut inside the annotation region, and
	// one whose annotation carries an unknown TLV kind with a lying
	// length — the reader must error cleanly, never panic.
	if v4, _, err := AppendFrameOpts(nil, nil, None, []byte("seed"), FrameOpts{Seq: 3, Anno: []byte{0x01, 2, 7, 8}}); err == nil {
		f.Add(v4)
		f.Add(v4[:len(v4)-6])
	}
	f.Add([]byte{0xEC, 0x40, 4, 0, 0, 4, 4, 1, 3, 0x7F, 0xFF, 0x02})          // unknown kind, hostile TLV length
	f.Add([]byte{0xEC, 0x40, 4, 0, 0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}) // hostile annoLen varint
}

func FuzzRoundtripAllMethods(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, m := range []Method{None, Huffman, Arithmetic, LempelZiv, BurrowsWheeler} {
			out, err := Compress(m, data)
			if err != nil {
				t.Fatalf("%v compress: %v", m, err)
			}
			back, err := Decompress(m, out, len(data))
			if err != nil {
				t.Fatalf("%v decompress: %v", m, err)
			}
			if !bytes.Equal(back, data) {
				t.Fatalf("%v roundtrip mismatch", m)
			}
		}
	})
}

func FuzzDecompressNeverPanics(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, m := range []Method{Huffman, Arithmetic, LempelZiv, BurrowsWheeler} {
			// Arbitrary bytes with arbitrary claimed lengths: errors are
			// fine, panics and runaway allocations are not.
			for _, claim := range []int{0, 1, len(data), len(data) * 3, 1 << 16} {
				_, _ = Decompress(m, data, claim)
			}
		}
	})
}

func FuzzFrameReaderNeverPanics(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data), nil)
		for i := 0; i < 16; i++ {
			if _, _, err := fr.ReadBlock(); err != nil {
				return
			}
		}
	})
}

func FuzzFrameRoundtrip(f *testing.F) {
	f.Add([]byte(nil), uint8(0))
	f.Add([]byte("abcabcabcabc"), uint8(3))
	f.Add(bytes.Repeat([]byte{0xFF}, 300), uint8(4))
	f.Add(bytes.Repeat([]byte("low entropy "), 40), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, methodByte uint8) {
		methods := []Method{None, Huffman, Arithmetic, LempelZiv, BurrowsWheeler}
		m := methods[int(methodByte)%len(methods)]
		var buf bytes.Buffer
		fw := NewFrameWriter(&buf, nil)
		if _, err := fw.WriteBlock(m, data); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, info, err := NewFrameReader(&buf, nil).ReadBlock()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("payload mismatch")
		}
		if info.OrigLen != len(data) {
			t.Fatalf("OrigLen = %d", info.OrigLen)
		}
	})
}

// FuzzFrameAnnoRoundtrip drives arbitrary annotation bytes through the v4
// writer and reader: whatever TLV soup the annotation holds, the frame must
// round-trip it verbatim (the frame layer treats it as opaque).
func FuzzFrameAnnoRoundtrip(f *testing.F) {
	f.Add([]byte("payload"), []byte{0x01, 2, 7, 8}, uint64(1))
	f.Add([]byte(nil), []byte{0x7F, 0}, uint64(0))
	f.Add(bytes.Repeat([]byte("x"), 100), bytes.Repeat([]byte{0x80}, 40), uint64(1<<40))
	f.Fuzz(func(t *testing.T, data, anno []byte, seq uint64) {
		if len(anno) > MaxAnnoLen {
			anno = anno[:MaxAnnoLen]
		}
		frame, _, err := AppendFrameOpts(nil, nil, LempelZiv, data, FrameOpts{Seq: seq, Anno: anno})
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		got, info, err := NewFrameReader(bytes.NewReader(frame), nil).ReadBlock()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("payload mismatch")
		}
		if len(anno) > 0 {
			if !bytes.Equal(info.Anno, anno) {
				t.Fatalf("anno mismatch: %x != %x", info.Anno, anno)
			}
			if info.Seq != seq || !info.HasSeq {
				t.Fatalf("seq = (%d, %v)", info.Seq, info.HasSeq)
			}
		}
	})
}
