package codec

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ccx/internal/tracing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden wire-format vectors under testdata/")

// goldenPayload is the canonical plaintext all golden frames carry: long
// enough that every method genuinely compresses it (no raw fallback), small
// enough to keep the vectors tiny.
var goldenPayload = bytes.Repeat(
	[]byte("configurable compression exchanges data efficiently across heterogeneous links. "), 8)

var goldenMethods = []Method{None, Huffman, Arithmetic, LempelZiv, BurrowsWheeler}

// goldenSeq is the sequence number stamped into the v3 vectors: large
// enough to need a two-byte varint, so the seq field's wire width is pinned
// too.
const goldenSeq = 300

// goldenAnno is the annotation stamped into the v4 vectors: a trace
// context with fixed fields, pinning the TLV layout (kind, uvarint length,
// uvarint-encoded id and clocks) alongside the frame header itself.
var goldenAnno = tracing.Context{Trace: 0xABCD1234, WallNs: 1700000000000000000, MonoNs: 123456789}.AppendAnno(nil)

func goldenName(version int, m Method) string {
	name := m.String()
	switch m {
	case LempelZiv:
		name = "lempelziv"
	case BurrowsWheeler:
		name = "burrowswheeler"
	}
	return fmt.Sprintf("v%d_%s.frame", version, name)
}

// TestGoldenWireVectors pins the wire format: the checked-in frames (one
// per method, in the legacy v1, current v2, and sequenced v3 header
// versions) must decode byte-for-byte to goldenPayload forever. A refactor
// that changes header layout, CRC coverage, varint encoding, or any
// decoder's view of a valid stream fails here before it silently breaks
// cross-version peers.
func TestGoldenWireVectors(t *testing.T) {
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		for _, m := range goldenMethods {
			v1 := appendFrameV1(t, nil, m, goldenPayload)
			v2, info, err := AppendFrame(nil, nil, m, goldenPayload)
			if err != nil {
				t.Fatal(err)
			}
			if info.Fallback {
				t.Fatalf("%v fell back to raw; pick a more compressible golden payload", m)
			}
			v3, _, err := AppendFrameSeq(nil, nil, m, goldenPayload, goldenSeq)
			if err != nil {
				t.Fatal(err)
			}
			v4, _, err := AppendFrameOpts(nil, nil, m, goldenPayload, FrameOpts{Seq: goldenSeq, Anno: goldenAnno})
			if err != nil {
				t.Fatal(err)
			}
			for version, frame := range map[int][]byte{1: v1, 2: v2, 3: v3, 4: v4} {
				path := filepath.Join("testdata", goldenName(version, m))
				if err := os.WriteFile(path, frame, 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
		t.Log("golden vectors rewritten")
	}

	for _, m := range goldenMethods {
		for _, version := range []int{1, 2, 3, 4} {
			name := goldenName(version, m)
			t.Run(name, func(t *testing.T) {
				frame, err := os.ReadFile(filepath.Join("testdata", name))
				if err != nil {
					t.Fatalf("missing golden vector (regenerate with -update-golden): %v", err)
				}
				fr := NewFrameReader(bytes.NewReader(frame), nil)
				data, info, err := fr.ReadBlock()
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				if !bytes.Equal(data, goldenPayload) {
					t.Fatal("decoded payload differs from canonical plaintext")
				}
				if info.Method != m || info.Fallback {
					t.Fatalf("info = %+v, want method %v without fallback", info, m)
				}
				if info.OrigLen != len(goldenPayload) {
					t.Fatalf("OrigLen = %d", info.OrigLen)
				}
				if m != None && info.CompLen >= info.OrigLen {
					t.Fatalf("golden %v frame is not actually compressed", m)
				}
				if version >= 3 {
					if !info.HasSeq || info.Seq != goldenSeq {
						t.Fatalf("v%d seq = (%d, %v), want (%d, true)", version, info.Seq, info.HasSeq, goldenSeq)
					}
				} else if info.HasSeq {
					t.Fatalf("v%d frame decoded with a sequence number", version)
				}
				if version == 4 {
					if !bytes.Equal(info.Anno, goldenAnno) {
						t.Fatalf("v4 anno = %x, want %x", info.Anno, goldenAnno)
					}
					if tc := tracing.ParseAnno(info.Anno); tc != (tracing.Context{Trace: 0xABCD1234, WallNs: 1700000000000000000, MonoNs: 123456789}) {
						t.Fatalf("v4 trace context = %+v", tc)
					}
				} else if info.Anno != nil {
					t.Fatalf("v%d frame decoded with an annotation", version)
				}

				// The current writers must still emit the v2/v3 vectors
				// byte-for-byte (encoder wire stability).
				switch version {
				case 2:
					enc, _, err := AppendFrame(nil, nil, m, goldenPayload)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(enc, frame) {
						t.Fatal("AppendFrame no longer reproduces the golden v2 frame")
					}
				case 3:
					enc, _, err := AppendFrameSeq(nil, nil, m, goldenPayload, goldenSeq)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(enc, frame) {
						t.Fatal("AppendFrameSeq no longer reproduces the golden v3 frame")
					}
				case 4:
					enc, _, err := AppendFrameOpts(nil, nil, m, goldenPayload, FrameOpts{Seq: goldenSeq, Anno: goldenAnno})
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(enc, frame) {
						t.Fatal("AppendFrameOpts no longer reproduces the golden v4 frame")
					}
				}

				// Integrity: for v2+ vectors every byte before the payload end
				// is CRC-protected; flip a header byte and a payload byte (for
				// v3 the header flip lands inside the seq region's coverage).
				if version >= 2 {
					for _, at := range []int{3, len(frame) - 1} {
						mut := append([]byte(nil), frame...)
						mut[at] ^= 0x08
						if _, _, err := NewFrameReader(bytes.NewReader(mut), nil).ReadBlock(); !errors.Is(err, ErrCorruptFrame) {
							t.Fatalf("flip at %d: got %v, want ErrCorruptFrame", at, err)
						}
					}
				}
			})
		}
	}
}
