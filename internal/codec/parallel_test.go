package codec

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
)

func TestParallelRoundtripOrdered(t *testing.T) {
	// Blocks of very different compression cost: order preservation must
	// not depend on completion order.
	var blocks [][]byte
	var methods []Method
	for i := 0; i < 24; i++ {
		var b []byte
		switch i % 3 {
		case 0:
			b = bytes.Repeat([]byte{byte(i)}, 200_000) // fast: trivial run
			methods = append(methods, LempelZiv)
		case 1:
			b = bytes.Repeat([]byte(fmt.Sprintf("block %d content; ", i)), 3000)
			methods = append(methods, BurrowsWheeler) // slow
		default:
			b = []byte(fmt.Sprintf("tiny %d", i))
			methods = append(methods, None)
		}
		blocks = append(blocks, b)
	}
	var wire bytes.Buffer
	p := NewParallelFrameWriter(&wire, nil, 4)
	for i, b := range blocks {
		if err := p.WriteBlock(methods[i], b); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	infos := p.Infos()
	if len(infos) != len(blocks) {
		t.Fatalf("infos = %d", len(infos))
	}
	fr := NewFrameReader(&wire, nil)
	for i, want := range blocks {
		got, info, err := fr.ReadBlock()
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d out of order or corrupt", i)
		}
		if info.OrigLen != infos[i].OrigLen {
			t.Fatalf("block %d info mismatch", i)
		}
	}
	if _, _, err := fr.ReadBlock(); err != io.EOF {
		t.Fatalf("trailing data: %v", err)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// Byte-for-byte identical output to the serial FrameWriter.
	blocks := make([][]byte, 10)
	for i := range blocks {
		blocks[i] = bytes.Repeat([]byte(fmt.Sprintf("payload %d — ", i)), 500)
	}
	var serial bytes.Buffer
	fw := NewFrameWriter(&serial, nil)
	for _, b := range blocks {
		if _, err := fw.WriteBlock(Huffman, b); err != nil {
			t.Fatal(err)
		}
	}
	var parallel bytes.Buffer
	p := NewParallelFrameWriter(&parallel, nil, 8)
	for _, b := range blocks {
		if err := p.WriteBlock(Huffman, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatal("parallel output differs from serial")
	}
}

func TestParallelErrorPropagation(t *testing.T) {
	var wire bytes.Buffer
	p := NewParallelFrameWriter(&wire, nil, 2)
	if err := p.WriteBlock(Method(200), []byte("x")); err != nil {
		t.Fatalf("enqueue itself should not fail: %v", err)
	}
	if err := p.Close(); err == nil {
		t.Fatal("unknown method error lost")
	}
	if err := p.WriteBlock(None, []byte("y")); err == nil {
		t.Fatal("write after close accepted")
	}
	if err := p.Close(); err == nil {
		t.Fatal("second close should repeat the error")
	}
}

func TestParallelCallerMayReuseBuffer(t *testing.T) {
	var wire bytes.Buffer
	p := NewParallelFrameWriter(&wire, nil, 2)
	buf := bytes.Repeat([]byte("reused"), 1000)
	want := append([]byte(nil), buf...)
	if err := p.WriteBlock(Huffman, buf); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0 // clobber immediately
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := NewFrameReader(&wire, nil).ReadBlock()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("writer aliased caller's buffer")
	}
}

func TestParallelFailedWriterSink(t *testing.T) {
	p := NewParallelFrameWriter(failWriter{}, nil, 2)
	for i := 0; i < 5; i++ {
		_ = p.WriteBlock(None, []byte("data"))
	}
	if err := p.Close(); err == nil {
		t.Fatal("sink error lost")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

func TestParallelConcurrentSafetyUnderRace(t *testing.T) {
	// The writer itself is single-producer, but Infos may be read
	// concurrently with writes.
	var wire bytes.Buffer
	p := NewParallelFrameWriter(&wire, nil, 4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = p.Infos()
		}
	}()
	for i := 0; i < 50; i++ {
		if err := p.WriteBlock(Huffman, bytes.Repeat([]byte{byte(i)}, 2000)); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if len(p.Infos()) != 50 {
		t.Fatalf("infos = %d", len(p.Infos()))
	}
}

func BenchmarkParallelVsSerialBWT(b *testing.B) {
	motif := []byte("parallel compression of block structured formats; ")
	block := bytes.Repeat(motif, 64*1024/len(motif)+1)[:64*1024]
	const nBlocks = 16
	b.Run("serial", func(b *testing.B) {
		b.SetBytes(int64(len(block) * nBlocks))
		for i := 0; i < b.N; i++ {
			fw := NewFrameWriter(io.Discard, nil)
			for j := 0; j < nBlocks; j++ {
				if _, err := fw.WriteBlock(BurrowsWheeler, block); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.SetBytes(int64(len(block) * nBlocks))
		for i := 0; i < b.N; i++ {
			p := NewParallelFrameWriter(io.Discard, nil, 0)
			for j := 0; j < nBlocks; j++ {
				if err := p.WriteBlock(BurrowsWheeler, block); err != nil {
					b.Fatal(err)
				}
			}
			if err := p.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
