package codec

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

var allMethods = []Method{None, Huffman, Arithmetic, LempelZiv, BurrowsWheeler}

func TestMethodString(t *testing.T) {
	want := map[Method]string{
		None: "none", Huffman: "huffman", Arithmetic: "arithmetic",
		LempelZiv: "lempel-ziv", BurrowsWheeler: "burrows-wheeler",
		Method(99): "custom(99)",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q want %q", m, m.String(), s)
		}
	}
}

func TestAllCodecsRoundtrip(t *testing.T) {
	data := bytes.Repeat([]byte("end to end data exchange using configurable compression; "), 300)
	for _, m := range allMethods {
		out, err := Compress(m, data)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		back, err := Decompress(m, out, len(data))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("%v: roundtrip mismatch", m)
		}
	}
}

func TestAllCodecsEmpty(t *testing.T) {
	for _, m := range allMethods {
		out, err := Compress(m, nil)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		back, err := Decompress(m, out, 0)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(back) != 0 {
			t.Fatalf("%v: got %d bytes", m, len(back))
		}
	}
}

func TestNoneCodecDoesNotAlias(t *testing.T) {
	src := []byte{1, 2, 3}
	out, err := Compress(None, src)
	if err != nil {
		t.Fatal(err)
	}
	out[0] = 99
	if src[0] != 1 {
		t.Fatal("None codec aliases its input")
	}
}

func TestNoneCodecLengthCheck(t *testing.T) {
	if _, err := Decompress(None, []byte{1, 2}, 3); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestUnknownMethod(t *testing.T) {
	if _, err := Compress(Method(200), []byte("x")); err == nil {
		t.Fatal("expected unknown-method error")
	}
}

type xorCodec struct{ key byte }

func (c xorCodec) Method() Method { return FirstCustom }
func (c xorCodec) Compress(src []byte) ([]byte, error) {
	out := make([]byte, len(src))
	for i, b := range src {
		out[i] = b ^ c.key
	}
	return out, nil
}
func (c xorCodec) Decompress(src []byte, origLen int) ([]byte, error) {
	return c.Compress(src)
}

func TestRegistryCustomCodec(t *testing.T) {
	reg := NewRegistry()
	reg.Register(xorCodec{key: 0x5A})
	c, err := reg.Get(FirstCustom)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := c.Compress([]byte("hi"))
	back, _ := c.Decompress(out, 2)
	if string(back) != "hi" {
		t.Fatalf("got %q", back)
	}
	methods := reg.Methods()
	if len(methods) != 6 {
		t.Fatalf("Methods() = %v", methods)
	}
	for i := 1; i < len(methods); i++ {
		if methods[i-1] >= methods[i] {
			t.Fatal("Methods() not sorted")
		}
	}
}

func TestFrameRoundtripAllMethods(t *testing.T) {
	data := bytes.Repeat([]byte("framed block payload with repetition repetition; "), 100)
	for _, m := range allMethods {
		var buf bytes.Buffer
		fw := NewFrameWriter(&buf, nil)
		info, err := fw.WriteBlock(m, data)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if info.Requested != m {
			t.Fatalf("%v: requested = %v", m, info.Requested)
		}
		fr := NewFrameReader(&buf, nil)
		got, rinfo, err := fr.ReadBlock()
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%v: payload mismatch", m)
		}
		if rinfo.Method != info.Method || rinfo.OrigLen != len(data) {
			t.Fatalf("%v: info mismatch: %+v vs %+v", m, rinfo, info)
		}
	}
}

func TestFrameFallbackOnExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data := make([]byte, 4096)
	rng.Read(data)
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf, nil)
	info, err := fw.WriteBlock(Huffman, data) // random data: Huffman expands
	if err != nil {
		t.Fatal(err)
	}
	if !info.Fallback || info.Method != None || info.Requested != Huffman {
		t.Fatalf("expected fallback to raw, got %+v", info)
	}
	if info.CompLen != len(data) {
		t.Fatalf("fallback CompLen = %d", info.CompLen)
	}
	fr := NewFrameReader(&buf, nil)
	got, rinfo, err := fr.ReadBlock()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) || !rinfo.Fallback {
		t.Fatalf("fallback decode: %+v", rinfo)
	}
}

func TestFrameStream(t *testing.T) {
	// Multiple frames of mixed methods through one pipe.
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf, nil)
	blocks := [][]byte{
		bytes.Repeat([]byte("aaa"), 500),
		[]byte("short"),
		nil,
		bytes.Repeat([]byte("xyz123"), 1000),
	}
	methods := []Method{Huffman, None, LempelZiv, BurrowsWheeler}
	for i, b := range blocks {
		if _, err := fw.WriteBlock(methods[i], b); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&buf, nil)
	for i, want := range blocks {
		got, _, err := fr.ReadBlock()
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d mismatch", i)
		}
	}
	if _, _, err := fr.ReadBlock(); err != io.EOF {
		t.Fatalf("expected io.EOF at stream end, got %v", err)
	}
}

func TestFrameCorruption(t *testing.T) {
	data := bytes.Repeat([]byte("protected payload "), 200)
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf, nil)
	if _, err := fw.WriteBlock(LempelZiv, data); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		mut := append([]byte(nil), frame...)
		mut[0] = 0x00
		_, _, err := NewFrameReader(bytes.NewReader(mut), nil).ReadBlock()
		if err != ErrBadMagic {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		mut := append([]byte(nil), frame...)
		mut[2] = 9
		_, _, err := NewFrameReader(bytes.NewReader(mut), nil).ReadBlock()
		if err == nil {
			t.Fatal("expected version error")
		}
	})
	t.Run("payload bit flip", func(t *testing.T) {
		mut := append([]byte(nil), frame...)
		mut[len(mut)-1] ^= 0x01
		_, _, err := NewFrameReader(bytes.NewReader(mut), nil).ReadBlock()
		if err != ErrChecksum {
			t.Fatalf("got %v want ErrChecksum", err)
		}
	})
	t.Run("truncation", func(t *testing.T) {
		for _, cut := range []int{1, 3, 6, len(frame) / 2, len(frame) - 1} {
			_, _, err := NewFrameReader(bytes.NewReader(frame[:cut]), nil).ReadBlock()
			if err == nil {
				t.Fatalf("cut %d: expected error", cut)
			}
			if err == io.EOF && cut > 0 {
				t.Fatalf("cut %d: mid-frame truncation must not be clean EOF", cut)
			}
		}
	})
}

func TestFrameSizeLimit(t *testing.T) {
	// hostileHeader builds a frame header claiming the given lengths; the
	// CRC and payload are deliberately absent because the size check must
	// reject the frame before reading (or allocating) anything after the
	// two uvarints.
	hostileHeader := func(origLen, compLen uint64) []byte {
		buf := []byte{magic0, magic1, FrameVersion, byte(None), 0}
		buf = binary.AppendUvarint(buf, origLen)
		return binary.AppendUvarint(buf, compLen)
	}
	cases := []struct {
		name             string
		origLen, compLen uint64
	}{
		{"origLen over limit", MaxFrameLen + 1, 0},
		{"compLen over limit", 0, MaxFrameLen + 1},
		{"both absurd", 1 << 34, 1 << 34},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := NewFrameReader(bytes.NewReader(hostileHeader(tc.origLen, tc.compLen)), nil).ReadBlock()
			if err != ErrFrameSize {
				t.Fatalf("got %v want ErrFrameSize", err)
			}
		})
	}
	t.Run("limit itself is allowed", func(t *testing.T) {
		// Exactly MaxFrameLen passes the bound; with no CRC bytes behind
		// it the reader then reports truncation, not ErrFrameSize.
		_, _, err := NewFrameReader(bytes.NewReader(hostileHeader(MaxFrameLen, 0)), nil).ReadBlock()
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("got %v want io.ErrUnexpectedEOF", err)
		}
	})
}

func TestBlockInfoRatio(t *testing.T) {
	if r := (BlockInfo{OrigLen: 100, CompLen: 25}).Ratio(); r != 0.25 {
		t.Fatalf("Ratio = %v", r)
	}
	if r := (BlockInfo{}).Ratio(); r != 1 {
		t.Fatalf("empty Ratio = %v", r)
	}
}

func TestQuickFrameRoundtrip(t *testing.T) {
	f := func(data []byte, methodIdx uint8) bool {
		m := allMethods[int(methodIdx)%len(allMethods)]
		var buf bytes.Buffer
		fw := NewFrameWriter(&buf, nil)
		if _, err := fw.WriteBlock(m, data); err != nil {
			return false
		}
		got, _, err := NewFrameReader(&buf, nil).ReadBlock()
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestRuntimeMethodUpgrade is §3.2's evolution story: deploy an improved
// arithmetic coder at runtime, either under a new identifier or shadowing
// the built-in one, and verify frames decode transparently.
func TestRuntimeMethodUpgrade(t *testing.T) {
	text := bytes.Repeat([]byte("an improved compression algorithm arrives at runtime; "), 400)

	// Under a fresh identifier.
	reg := NewRegistry()
	reg.Register(NewOrder1Arithmetic(FirstCustom + 1))
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf, reg)
	infoNew, err := fw.WriteBlock(FirstCustom+1, text)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := NewFrameReader(&buf, reg).ReadBlock()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, text) {
		t.Fatal("upgraded codec roundtrip failed")
	}

	// The upgrade must actually be an improvement over order-0.
	old, err := Compress(Arithmetic, text)
	if err != nil {
		t.Fatal(err)
	}
	if infoNew.CompLen >= len(old) {
		t.Fatalf("order-1 (%d) should beat order-0 (%d) on text", infoNew.CompLen, len(old))
	}

	// Shadowing the built-in identifier upgrades both ends in lock-step.
	shadow := NewRegistry()
	shadow.Register(NewOrder1Arithmetic(Arithmetic))
	buf.Reset()
	fws := NewFrameWriter(&buf, shadow)
	if _, err := fws.WriteBlock(Arithmetic, text); err != nil {
		t.Fatal(err)
	}
	got, info, err := NewFrameReader(&buf, shadow).ReadBlock()
	if err != nil || !bytes.Equal(got, text) {
		t.Fatalf("shadowed decode: %v", err)
	}
	if info.Method != Arithmetic {
		t.Fatalf("method = %v", info.Method)
	}
}
