package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"
)

// Frame header layout (see DESIGN.md §5):
//
//	magic(2) version(1) method(1) flags(1)
//	origLen(uvarint) compLen(uvarint) [seq(uvarint)] crc32(4) payload(compLen)
//
// The CRC (Castagnoli) coverage depends on the version byte:
//
//   - version 1 (legacy): CRC over the payload only. Header corruption
//     surfaces as magic/length errors or, worse, as a silently misparsed
//     frame whose payload CRC happens to line up.
//   - version 2 (current): CRC over the header bytes preceding the CRC
//     field *and* the payload, so a flipped method byte, length varint, or
//     flag is caught exactly like a flipped payload byte.
//   - version 3 (sequenced): identical to version 2 plus one uvarint
//     sequence number between compLen and the CRC, stamped by transports
//     that offer replay/resume (the fan-out broker). The seq varint is
//     inside the CRC coverage.
//   - version 4 (annotated): a version-3 frame carrying an opaque
//     annotation block between the sequence number and the CRC:
//     annoLen(uvarint) followed by annoLen annotation bytes, all inside
//     the CRC coverage. Annotations are TLV-structured (see the tracing
//     package for the trace-context kind); readers surface the raw bytes
//     as BlockInfo.Anno and skip kinds they do not understand, so the
//     format extends without another version bump.
//
// Writers emit version 2 (3 via AppendFrameSeq, 4 via AppendFrameOpts
// with a non-empty annotation); readers accept all four, so
// pre-CRC-extension frames (and recorded streams) still decode.
const (
	magic0 = 0xEC // "ECho"-flavoured magic
	magic1 = 0x40
	// FrameVersion is the current unsequenced wire version (header+payload
	// CRC).
	FrameVersion = 2
	// FrameVersionV1 is the legacy wire version (payload-only CRC); readers
	// still accept it.
	FrameVersionV1 = 1
	// FrameVersionSeq is the sequenced wire version: a v2 frame carrying a
	// per-channel block sequence number for replay/resume transports.
	FrameVersionSeq = 3
	// FrameVersionAnno is the annotated wire version: a v3 frame carrying
	// an opaque, CRC-covered annotation block (trace context today; TLV
	// kinds unknown to a reader are skipped).
	FrameVersionAnno = 4
	// MaxAnnoLen bounds a frame's annotation block. Annotations are
	// metadata (a stamped trace context is ~30 bytes), so the cap exists
	// only to keep a hostile annoLen varint from driving allocations.
	MaxAnnoLen = 1024
	// MaxFrameLen bounds a single frame's original and compressed payload
	// lengths (16 MiB), keeping hostile headers from driving huge
	// allocations. It is exported so transports (the fan-out broker, the
	// TCP tools) can validate configured block and event sizes against the
	// wire format's hard limit before streaming.
	MaxFrameLen = 16 << 20
)

// Frame flags.
const (
	// FlagFallback records that the sender requested a compressing method
	// but the payload expanded, so the block was sent raw instead.
	FlagFallback = 1 << 0
)

// Frame errors. Every way a frame can be damaged in transit — bad magic,
// unknown version, out-of-bounds lengths, checksum mismatch, or a payload
// the named codec rejects — satisfies errors.Is(err, ErrCorruptFrame), so
// consumers distinguish "this frame is poison, resync or drop it" from I/O
// errors (truncation is io.ErrUnexpectedEOF: the stream ended, there is
// nothing to resync onto).
var (
	// ErrCorruptFrame is the umbrella error for frames damaged in transit.
	ErrCorruptFrame = errors.New("codec: corrupt frame")

	ErrBadMagic   = fmt.Errorf("%w: bad frame magic", ErrCorruptFrame)
	ErrBadVersion = fmt.Errorf("%w: unsupported frame version", ErrCorruptFrame)
	ErrChecksum   = fmt.Errorf("%w: frame checksum mismatch", ErrCorruptFrame)
	ErrFrameSize  = fmt.Errorf("%w: frame length out of bounds", ErrCorruptFrame)
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// BlockInfo describes one decoded frame.
type BlockInfo struct {
	// Method is the compression method actually used on the wire (after any
	// expansion fallback).
	Method Method
	// Requested is the method the sender asked for. It differs from Method
	// only when FlagFallback is set.
	Requested Method
	// OrigLen and CompLen are the block's original and on-wire payload
	// sizes in bytes.
	OrigLen, CompLen int
	// Fallback reports whether the block fell back to raw transport because
	// compression expanded it.
	Fallback bool
	// Seq is the per-channel block sequence number carried by sequenced
	// (version-3) frames; HasSeq reports whether the frame carried one.
	// Sequence numbers start at 1, so a zero Seq with HasSeq set never
	// appears on a healthy stream.
	Seq    uint64
	HasSeq bool
	// Anno holds the raw annotation bytes carried by an annotated
	// (version-4) frame, nil otherwise. The slice is a copy owned by the
	// caller: it stays valid after the next ReadBlock. Parse it with the
	// tracing package (or any TLV consumer); unknown kinds are skipped.
	Anno []byte
	// DecodeTime is the CPU time FrameReader.ReadBlock spent decompressing
	// the payload (network wait excluded) — the decode-latency sample the
	// telemetry layer histograms. Zero for frames produced by writers.
	DecodeTime time.Duration
}

// Ratio returns CompLen/OrigLen, the fraction of the original size that
// crossed the wire (1 for empty blocks).
func (b BlockInfo) Ratio() float64 {
	if b.OrigLen == 0 {
		return 1
	}
	return float64(b.CompLen) / float64(b.OrigLen)
}

// A FrameWriter compresses blocks and writes them as self-describing frames.
type FrameWriter struct {
	w   io.Writer
	reg *Registry
	hdr []byte
}

// NewFrameWriter returns a FrameWriter using the default registry; pass a
// non-nil reg to use custom codecs.
func NewFrameWriter(w io.Writer, reg *Registry) *FrameWriter {
	if reg == nil {
		reg = defaultRegistry
	}
	return &FrameWriter{w: w, reg: reg, hdr: make([]byte, 0, 32)}
}

// AppendFrame compresses data with the requested method from reg (nil =
// default registry) and appends one complete version-2 frame to dst. If the
// compressed payload is not smaller than the original, the block is sent
// raw and flagged (the paper's selector already avoids such blocks, but
// the wire format guarantees we never expand traffic).
func AppendFrame(dst []byte, reg *Registry, m Method, data []byte) ([]byte, BlockInfo, error) {
	return AppendFrameOpts(dst, reg, m, data, FrameOpts{})
}

// AppendFrameSeq is AppendFrame with a per-channel block sequence number:
// it emits a version-3 frame whose header carries seq inside the CRC
// coverage. Receivers surface it as BlockInfo.Seq/HasSeq, which feeds the
// delivery tracker's dedup and gap accounting on resumed streams.
func AppendFrameSeq(dst []byte, reg *Registry, m Method, data []byte, seq uint64) ([]byte, BlockInfo, error) {
	return AppendFrameOpts(dst, reg, m, data, FrameOpts{Seq: seq, HasSeq: true})
}

// FrameOpts selects the optional frame-header extensions. The zero value
// emits a plain version-2 frame; HasSeq upgrades to version 3; a non-empty
// Anno upgrades to version 4 (which always carries the sequence field, so
// Anno implies HasSeq).
type FrameOpts struct {
	Seq    uint64
	HasSeq bool
	// Anno is an opaque annotation block (at most MaxAnnoLen bytes),
	// CRC-covered like the rest of the header. Writers stamp TLV records
	// here — today the tracing package's trace context.
	Anno []byte
}

// AppendFrameOpts is AppendFrame with explicit header extensions; the
// emitted wire version is the lowest one that can carry opts.
func AppendFrameOpts(dst []byte, reg *Registry, m Method, data []byte, opts FrameOpts) ([]byte, BlockInfo, error) {
	if reg == nil {
		reg = defaultRegistry
	}
	hasSeq := opts.HasSeq || len(opts.Anno) > 0
	info := BlockInfo{Method: m, Requested: m, OrigLen: len(data), Seq: opts.Seq, HasSeq: hasSeq}
	if len(opts.Anno) > MaxAnnoLen {
		return dst, info, fmt.Errorf("codec: annotation too long (%d > %d)", len(opts.Anno), MaxAnnoLen)
	}
	c, err := reg.Get(m)
	if err != nil {
		return dst, info, err
	}
	var payload []byte
	flags := byte(0)
	if _, raw := c.(rawCodec); raw {
		// The genuine raw codec copies src only to satisfy the Codec
		// aliasing contract; here the payload is immediately copied into the
		// frame, so the block serves as the payload directly and the
		// intermediate allocation disappears.
		payload = data
	} else {
		payload, err = c.Compress(data)
		if err != nil {
			return dst, info, fmt.Errorf("compress %v: %w", m, err)
		}
		if m != None && len(payload) >= len(data) {
			payload = data
			info.Method = None
			info.Fallback = true
			flags |= FlagFallback
		}
	}
	info.CompLen = len(payload)

	version := byte(FrameVersion)
	switch {
	case len(opts.Anno) > 0:
		version = FrameVersionAnno
		info.Anno = opts.Anno
	case hasSeq:
		version = FrameVersionSeq
	}
	base := len(dst)
	dst = append(dst, magic0, magic1, version, byte(info.Method), flags)
	dst = binary.AppendUvarint(dst, uint64(len(data)))
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	if hasSeq {
		dst = binary.AppendUvarint(dst, opts.Seq)
	}
	if version == FrameVersionAnno {
		dst = binary.AppendUvarint(dst, uint64(len(opts.Anno)))
		dst = append(dst, opts.Anno...)
	}
	crc := crc32.Update(0, castagnoli, dst[base:]) // header…
	crc = crc32.Update(crc, castagnoli, payload)   // …then payload
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	return append(dst, payload...), info, nil
}

// WriteBlock compresses data with the requested method and writes one
// frame (see AppendFrame for fallback semantics).
func (fw *FrameWriter) WriteBlock(m Method, data []byte) (BlockInfo, error) {
	frame, info, err := AppendFrame(fw.hdr[:0], fw.reg, m, data)
	fw.hdr = frame[:0]
	if err != nil {
		return info, err
	}
	if _, err := fw.w.Write(frame); err != nil {
		return info, err
	}
	return info, nil
}

// A FrameReader reads frames and decompresses their payloads. After a
// corrupt frame (errors.Is(err, ErrCorruptFrame)) the reader is positioned
// past the damaged bytes; call Resync to scan for the next frame boundary
// and keep decoding the survivors.
type FrameReader struct {
	r       io.Reader
	reg     *Registry
	buf     []byte // payload scratch, reused across frames
	pending []byte // bytes pushed back by Resync, consumed before r
	hdr     []byte // raw header bytes of the frame attempt in progress
	payLen  int    // payload bytes of a failed attempt retained in buf
}

// NewFrameReader returns a FrameReader using the default registry; pass a
// non-nil reg to use custom codecs.
func NewFrameReader(r io.Reader, reg *Registry) *FrameReader {
	if reg == nil {
		reg = defaultRegistry
	}
	return &FrameReader{r: r, reg: reg}
}

// readFull fills p from the pushback buffer first, then the stream. Like
// io.ReadFull it returns io.EOF only when nothing was read at all.
func (fr *FrameReader) readFull(p []byte) error {
	n := 0
	if len(fr.pending) > 0 {
		n = copy(p, fr.pending)
		fr.pending = fr.pending[n:]
		if n == len(p) {
			return nil
		}
	}
	if _, err := io.ReadFull(fr.r, p[n:]); err != nil {
		if err == io.EOF && n > 0 {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	return nil
}

func (fr *FrameReader) readUvarint() (uint64, error) {
	var one [1]byte
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if err := fr.readFull(one[:]); err != nil {
			return 0, err
		}
		b := one[0]
		fr.hdr = append(fr.hdr, b)
		v |= uint64(b&0x7F) << shift
		if b < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("%w: uvarint overflow", ErrCorruptFrame)
}

// ReadBlock reads and decodes the next frame. It returns io.EOF cleanly at
// a frame boundary, io.ErrUnexpectedEOF on mid-frame truncation, and an
// error satisfying errors.Is(err, ErrCorruptFrame) on in-frame damage.
func (fr *FrameReader) ReadBlock() ([]byte, BlockInfo, error) {
	var info BlockInfo
	fr.hdr = fr.hdr[:0]
	fr.payLen = 0
	var fixed [5]byte
	if err := fr.readFull(fixed[:1]); err != nil {
		return nil, info, err // io.EOF at a frame boundary is clean
	}
	fr.hdr = append(fr.hdr, fixed[0])
	if err := fr.readFull(fixed[1:]); err != nil {
		return nil, info, unexpectedEOF(err)
	}
	fr.hdr = append(fr.hdr, fixed[1:]...)
	if fixed[0] != magic0 || fixed[1] != magic1 {
		return nil, info, ErrBadMagic
	}
	version := fixed[2]
	if !plausibleBoundary(version) {
		return nil, info, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	info.Method = Method(fixed[3])
	info.Requested = info.Method
	flags := fixed[4]
	if flags&FlagFallback != 0 {
		info.Fallback = true
	}
	origLen, err := fr.readUvarint()
	if err != nil {
		return nil, info, unexpectedEOF(err)
	}
	compLen, err := fr.readUvarint()
	if err != nil {
		return nil, info, unexpectedEOF(err)
	}
	if origLen > MaxFrameLen || compLen > MaxFrameLen {
		return nil, info, ErrFrameSize
	}
	info.OrigLen, info.CompLen = int(origLen), int(compLen)
	if version >= FrameVersionSeq {
		seq, err := fr.readUvarint()
		if err != nil {
			return nil, info, unexpectedEOF(err)
		}
		info.Seq, info.HasSeq = seq, true
	}
	if version == FrameVersionAnno {
		annoLen, err := fr.readUvarint()
		if err != nil {
			return nil, info, unexpectedEOF(err)
		}
		if annoLen > MaxAnnoLen {
			return nil, info, ErrFrameSize
		}
		if annoLen > 0 {
			// Copied out: fr.hdr is scratch reused by the next ReadBlock,
			// but BlockInfo.Anno must outlive it.
			anno := make([]byte, annoLen)
			if err := fr.readFull(anno); err != nil {
				return nil, info, unexpectedEOF(err)
			}
			fr.hdr = append(fr.hdr, anno...) // CRC + Resync cover the annotation
			info.Anno = anno
		}
	}
	// The v2 CRC covers exactly the header bytes consumed so far.
	hdrCRC := crc32.Update(0, castagnoli, fr.hdr)
	var crcBuf [4]byte
	if err := fr.readFull(crcBuf[:]); err != nil {
		return nil, info, unexpectedEOF(err)
	}
	fr.hdr = append(fr.hdr, crcBuf[:]...) // kept only for Resync scanning
	wantCRC := binary.LittleEndian.Uint32(crcBuf[:])
	if cap(fr.buf) < info.CompLen {
		fr.buf = make([]byte, info.CompLen)
	}
	payload := fr.buf[:info.CompLen]
	if err := fr.readFull(payload); err != nil {
		return nil, info, unexpectedEOF(err)
	}
	fr.payLen = info.CompLen
	gotCRC := crc32.Checksum(payload, castagnoli)
	if version >= FrameVersion {
		gotCRC = crc32.Update(hdrCRC, castagnoli, payload)
	}
	if gotCRC != wantCRC {
		return nil, info, ErrChecksum
	}
	c, err := fr.reg.Get(info.Method)
	if err != nil {
		// A damaged method byte and a genuinely unregistered codec are
		// indistinguishable on the wire; both poison only this frame.
		return nil, info, fmt.Errorf("%w: %v", ErrCorruptFrame, err)
	}
	start := time.Now()
	data, err := c.Decompress(payload, info.OrigLen)
	info.DecodeTime = time.Since(start)
	if err != nil {
		return nil, info, fmt.Errorf("%w: decompress %v: %w", ErrCorruptFrame, info.Method, err)
	}
	fr.hdr = fr.hdr[:0]
	fr.payLen = 0
	return data, info, nil
}

// plausibleBoundary reports whether a magic pair followed by ver looks like
// the start of a real frame. Checking the version byte cuts most false
// matches inside compressed payloads; a false positive just yields another
// ErrCorruptFrame and another Resync, each advancing past the bogus match.
func plausibleBoundary(ver byte) bool {
	return ver >= FrameVersionV1 && ver <= FrameVersionAnno
}

// Resync abandons the current (corrupt) frame and scans forward for the
// next plausible frame boundary — first through the bytes the failed
// attempt already consumed (a bogus compLen routinely swallows the start of
// the next healthy frame), then byte-by-byte through the live stream. On
// success the next ReadBlock starts at the recovered boundary. It returns
// io.EOF when the stream ends without another boundary.
func (fr *FrameReader) Resync() error {
	// Everything consumed by the failed attempt, minus its first magic byte
	// (rescanning from index 0 would re-sync onto the same corrupt frame).
	scan := make([]byte, 0, len(fr.hdr)+fr.payLen+len(fr.pending))
	if len(fr.hdr) > 1 {
		scan = append(scan, fr.hdr[1:]...)
	}
	scan = append(scan, fr.buf[:fr.payLen]...)
	scan = append(scan, fr.pending...)
	fr.hdr = fr.hdr[:0]
	fr.payLen = 0
	fr.pending = nil

	for i := 0; i+2 < len(scan); i++ {
		if scan[i] == magic0 && scan[i+1] == magic1 && plausibleBoundary(scan[i+2]) {
			fr.pending = append([]byte(nil), scan[i:]...)
			return nil
		}
	}
	// A boundary may straddle the retained bytes and the live stream: seed
	// a 3-byte rolling window with the tail and keep scanning.
	var win [3]byte
	n := copy(win[:], scan[max(0, len(scan)-2):])
	for {
		var one [1]byte
		if _, err := io.ReadFull(fr.r, one[:]); err != nil {
			return err
		}
		if n < 3 {
			win[n] = one[0]
			n++
		} else {
			win[0], win[1], win[2] = win[1], win[2], one[0]
		}
		if n == 3 && win[0] == magic0 && win[1] == magic1 && plausibleBoundary(win[2]) {
			fr.pending = append([]byte(nil), win[:]...)
			return nil
		}
	}
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
