package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame header layout (see DESIGN.md §5):
//
//	magic(2) version(1) method(1) flags(1)
//	origLen(uvarint) compLen(uvarint) crc32(4) payload(compLen)
//
// The CRC (Castagnoli) covers the payload only; header corruption surfaces
// as magic/length errors.
const (
	magic0 = 0xEC // "ECho"-flavoured magic
	magic1 = 0x40
	// FrameVersion is the current wire version.
	FrameVersion = 1
	// MaxFrameLen bounds a single frame's original and compressed payload
	// lengths (16 MiB), keeping hostile headers from driving huge
	// allocations. It is exported so transports (the fan-out broker, the
	// TCP tools) can validate configured block and event sizes against the
	// wire format's hard limit before streaming.
	MaxFrameLen = 16 << 20
)

// Frame flags.
const (
	// FlagFallback records that the sender requested a compressing method
	// but the payload expanded, so the block was sent raw instead.
	FlagFallback = 1 << 0
)

// Frame errors.
var (
	ErrBadMagic   = errors.New("codec: bad frame magic")
	ErrBadVersion = errors.New("codec: unsupported frame version")
	ErrChecksum   = errors.New("codec: frame checksum mismatch")
	ErrFrameSize  = errors.New("codec: frame length out of bounds")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// BlockInfo describes one decoded frame.
type BlockInfo struct {
	// Method is the compression method actually used on the wire (after any
	// expansion fallback).
	Method Method
	// Requested is the method the sender asked for. It differs from Method
	// only when FlagFallback is set.
	Requested Method
	// OrigLen and CompLen are the block's original and on-wire payload
	// sizes in bytes.
	OrigLen, CompLen int
	// Fallback reports whether the block fell back to raw transport because
	// compression expanded it.
	Fallback bool
}

// Ratio returns CompLen/OrigLen, the fraction of the original size that
// crossed the wire (1 for empty blocks).
func (b BlockInfo) Ratio() float64 {
	if b.OrigLen == 0 {
		return 1
	}
	return float64(b.CompLen) / float64(b.OrigLen)
}

// A FrameWriter compresses blocks and writes them as self-describing frames.
type FrameWriter struct {
	w   io.Writer
	reg *Registry
	hdr []byte
}

// NewFrameWriter returns a FrameWriter using the default registry; pass a
// non-nil reg to use custom codecs.
func NewFrameWriter(w io.Writer, reg *Registry) *FrameWriter {
	if reg == nil {
		reg = defaultRegistry
	}
	return &FrameWriter{w: w, reg: reg, hdr: make([]byte, 0, 32)}
}

// AppendFrame compresses data with the requested method from reg (nil =
// default registry) and appends one complete frame to dst. If the
// compressed payload is not smaller than the original, the block is sent
// raw and flagged (the paper's selector already avoids such blocks, but
// the wire format guarantees we never expand traffic).
func AppendFrame(dst []byte, reg *Registry, m Method, data []byte) ([]byte, BlockInfo, error) {
	if reg == nil {
		reg = defaultRegistry
	}
	info := BlockInfo{Method: m, Requested: m, OrigLen: len(data)}
	c, err := reg.Get(m)
	if err != nil {
		return dst, info, err
	}
	payload, err := c.Compress(data)
	if err != nil {
		return dst, info, fmt.Errorf("compress %v: %w", m, err)
	}
	flags := byte(0)
	if m != None && len(payload) >= len(data) {
		payload = data
		info.Method = None
		info.Fallback = true
		flags |= FlagFallback
	}
	info.CompLen = len(payload)

	dst = append(dst, magic0, magic1, FrameVersion, byte(info.Method), flags)
	dst = binary.AppendUvarint(dst, uint64(len(data)))
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...), info, nil
}

// WriteBlock compresses data with the requested method and writes one
// frame (see AppendFrame for fallback semantics).
func (fw *FrameWriter) WriteBlock(m Method, data []byte) (BlockInfo, error) {
	frame, info, err := AppendFrame(fw.hdr[:0], fw.reg, m, data)
	fw.hdr = frame[:0]
	if err != nil {
		return info, err
	}
	if _, err := fw.w.Write(frame); err != nil {
		return info, err
	}
	return info, nil
}

// A FrameReader reads frames and decompresses their payloads.
type FrameReader struct {
	r   io.Reader
	reg *Registry
	buf []byte
}

// NewFrameReader returns a FrameReader using the default registry; pass a
// non-nil reg to use custom codecs.
func NewFrameReader(r io.Reader, reg *Registry) *FrameReader {
	if reg == nil {
		reg = defaultRegistry
	}
	return &FrameReader{r: r, reg: reg}
}

func (fr *FrameReader) readUvarint() (uint64, error) {
	var one [1]byte
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if _, err := io.ReadFull(fr.r, one[:]); err != nil {
			return 0, err
		}
		b := one[0]
		v |= uint64(b&0x7F) << shift
		if b < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("codec: uvarint overflow")
}

// ReadBlock reads and decodes the next frame. It returns io.EOF cleanly at
// a frame boundary and io.ErrUnexpectedEOF on mid-frame truncation.
func (fr *FrameReader) ReadBlock() ([]byte, BlockInfo, error) {
	var info BlockInfo
	var fixed [5]byte
	if _, err := io.ReadFull(fr.r, fixed[:1]); err != nil {
		return nil, info, err // io.EOF at a frame boundary is clean
	}
	if _, err := io.ReadFull(fr.r, fixed[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, info, err
	}
	if fixed[0] != magic0 || fixed[1] != magic1 {
		return nil, info, ErrBadMagic
	}
	if fixed[2] != FrameVersion {
		return nil, info, fmt.Errorf("%w: %d", ErrBadVersion, fixed[2])
	}
	info.Method = Method(fixed[3])
	info.Requested = info.Method
	flags := fixed[4]
	if flags&FlagFallback != 0 {
		info.Fallback = true
	}
	origLen, err := fr.readUvarint()
	if err != nil {
		return nil, info, unexpectedEOF(err)
	}
	compLen, err := fr.readUvarint()
	if err != nil {
		return nil, info, unexpectedEOF(err)
	}
	if origLen > MaxFrameLen || compLen > MaxFrameLen {
		return nil, info, ErrFrameSize
	}
	info.OrigLen, info.CompLen = int(origLen), int(compLen)
	var crcBuf [4]byte
	if _, err := io.ReadFull(fr.r, crcBuf[:]); err != nil {
		return nil, info, unexpectedEOF(err)
	}
	wantCRC := binary.LittleEndian.Uint32(crcBuf[:])
	if cap(fr.buf) < info.CompLen {
		fr.buf = make([]byte, info.CompLen)
	}
	payload := fr.buf[:info.CompLen]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return nil, info, unexpectedEOF(err)
	}
	if crc32.Checksum(payload, castagnoli) != wantCRC {
		return nil, info, ErrChecksum
	}
	c, err := fr.reg.Get(info.Method)
	if err != nil {
		return nil, info, err
	}
	data, err := c.Decompress(payload, info.OrigLen)
	if err != nil {
		return nil, info, fmt.Errorf("decompress %v: %w", info.Method, err)
	}
	return data, info, nil
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
