package codec

import (
	"errors"
	"io"
	"runtime"
	"sync"
)

// ParallelFrameWriter compresses blocks on a worker pool while emitting
// frames strictly in submission order — the approach of the paper's
// companion work on parallel compression (refs [32,33]): block-structured
// formats parallelize trivially because each block's code tables are
// self-contained, and the chunked Burrows-Wheeler format was explicitly
// designed so independently compressed pieces concatenate.
//
// WriteBlock is asynchronous: compression errors surface on the next call
// or on Close. The writer must not be used concurrently from multiple
// goroutines (matching io.Writer convention); internal workers provide the
// parallelism.
type ParallelFrameWriter struct {
	w       io.Writer
	reg     *Registry
	jobs    chan parallelJob
	order   chan chan parallelResult
	done    chan struct{}
	wg      sync.WaitGroup
	mu      sync.Mutex
	err     error
	infos   []BlockInfo
	closed  bool
	workers int
}

type parallelJob struct {
	method Method
	data   []byte
	out    chan parallelResult
}

type parallelResult struct {
	frame []byte
	info  BlockInfo
	err   error
}

// errClosedParallelWriter reports use after Close.
var errClosedParallelWriter = errors.New("codec: ParallelFrameWriter is closed")

// NewParallelFrameWriter builds a writer with the given worker count
// (≤0 = GOMAXPROCS). reg nil means the default registry.
func NewParallelFrameWriter(w io.Writer, reg *Registry, workers int) *ParallelFrameWriter {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &ParallelFrameWriter{
		w:       w,
		reg:     reg,
		jobs:    make(chan parallelJob),
		order:   make(chan chan parallelResult, workers*2),
		done:    make(chan struct{}),
		workers: workers,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	go p.emitter()
	return p
}

func (p *ParallelFrameWriter) worker() {
	defer p.wg.Done()
	for job := range p.jobs {
		frame, info, err := AppendFrame(nil, p.reg, job.method, job.data)
		job.out <- parallelResult{frame: frame, info: info, err: err}
	}
}

// emitter drains results in submission order and writes them out.
func (p *ParallelFrameWriter) emitter() {
	defer close(p.done)
	for out := range p.order {
		res := <-out
		p.mu.Lock()
		if p.err == nil && res.err != nil {
			p.err = res.err
		}
		failed := p.err != nil
		p.mu.Unlock()
		if failed {
			continue // drain remaining results without writing
		}
		if _, err := p.w.Write(res.frame); err != nil {
			p.mu.Lock()
			p.err = err
			p.mu.Unlock()
			continue
		}
		p.mu.Lock()
		p.infos = append(p.infos, res.info)
		p.mu.Unlock()
	}
}

// WriteBlock enqueues one block. The data is copied, so callers may reuse
// the slice immediately.
func (p *ParallelFrameWriter) WriteBlock(m Method, data []byte) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return errClosedParallelWriter
	}
	err := p.err
	p.mu.Unlock()
	if err != nil {
		return err
	}
	job := parallelJob{
		method: m,
		data:   append([]byte(nil), data...),
		out:    make(chan parallelResult, 1),
	}
	p.order <- job.out
	p.jobs <- job
	return nil
}

// Close waits for all queued blocks to be compressed and written, then
// reports the first error encountered, if any.
func (p *ParallelFrameWriter) Close() error {
	p.mu.Lock()
	if p.closed {
		err := p.err
		p.mu.Unlock()
		return err
	}
	p.closed = true
	p.mu.Unlock()
	close(p.jobs)
	p.wg.Wait()
	close(p.order)
	<-p.done
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Infos returns the BlockInfo of every frame written so far, in order.
func (p *ParallelFrameWriter) Infos() []BlockInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]BlockInfo, len(p.infos))
	copy(out, p.infos)
	return out
}
