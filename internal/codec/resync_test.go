package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

// appendFrameV1 builds a legacy version-1 frame (payload-only CRC), exactly
// as the pre-extension writer did. It exists so compatibility tests and the
// golden vectors can exercise the v1 decode path forever.
func appendFrameV1(t *testing.T, dst []byte, m Method, data []byte) []byte {
	t.Helper()
	payload, err := Compress(m, data)
	if err != nil {
		t.Fatal(err)
	}
	flags := byte(0)
	method := m
	if m != None && len(payload) >= len(data) {
		payload = data
		method = None
		flags |= FlagFallback
	}
	dst = append(dst, magic0, magic1, FrameVersionV1, byte(method), flags)
	dst = binary.AppendUvarint(dst, uint64(len(data)))
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// mustFrame appends one frame of data compressed with m.
func mustFrame(t *testing.T, dst []byte, m Method, data []byte) []byte {
	t.Helper()
	out, _, err := AppendFrame(dst, nil, m, data)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCorruptErrorsAreTyped(t *testing.T) {
	payload := bytes.Repeat([]byte("typed errors "), 100)
	frame := mustFrame(t, nil, LempelZiv, payload)

	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), frame...)
		f(b)
		return b
	}
	cases := []struct {
		name string
		in   []byte
	}{
		{"magic", mutate(func(b []byte) { b[0] = 0 })},
		{"version", mutate(func(b []byte) { b[2] = 77 })},
		{"method byte", mutate(func(b []byte) { b[3] ^= 0xFF })},
		{"flags byte", mutate(func(b []byte) { b[4] ^= 0x02 })},
		{"length varint", mutate(func(b []byte) { b[5] ^= 0x01 })},
		{"payload", mutate(func(b []byte) { b[len(b)-1] ^= 0x10 })},
		{"crc field", mutate(func(b []byte) { b[9] ^= 0x01 })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := NewFrameReader(bytes.NewReader(tc.in), nil).ReadBlock()
			if err == nil {
				t.Fatal("corruption decoded cleanly")
			}
			if !errors.Is(err, ErrCorruptFrame) {
				t.Fatalf("%v does not satisfy ErrCorruptFrame", err)
			}
		})
	}
	// Truncation is NOT corruption: the stream ended, resync is pointless.
	_, _, err := NewFrameReader(bytes.NewReader(frame[:len(frame)-3]), nil).ReadBlock()
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("truncation: got %v", err)
	}
	if errors.Is(err, ErrCorruptFrame) {
		t.Fatal("truncation must not read as frame corruption")
	}
}

// TestHeaderCorruptionDetected is the v2 upgrade's point: v1 only covered
// the payload, so a flipped header byte could misparse silently; v2 catches
// every header bit.
func TestHeaderCorruptionDetected(t *testing.T) {
	payload := bytes.Repeat([]byte("header coverage "), 64)
	frame := mustFrame(t, nil, Huffman, payload)
	crcStart := len(frame) - len(payloadOf(t, frame)) - 4
	for i := 0; i < crcStart; i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), frame...)
			mut[i] ^= 1 << bit
			data, _, err := NewFrameReader(bytes.NewReader(mut), nil).ReadBlock()
			if err == nil && !bytes.Equal(data, payload) {
				t.Fatalf("flip of header byte %d bit %d decoded to wrong data", i, bit)
			}
		}
	}
}

// payloadOf decodes a healthy frame to learn its on-wire payload length.
func payloadOf(t *testing.T, frame []byte) []byte {
	t.Helper()
	_, info, err := NewFrameReader(bytes.NewReader(frame), nil).ReadBlock()
	if err != nil {
		t.Fatal(err)
	}
	return make([]byte, info.CompLen)
}

func TestResyncSkipsCorruptPayload(t *testing.T) {
	blocks := [][]byte{
		bytes.Repeat([]byte("block zero "), 80),
		bytes.Repeat([]byte("block one "), 80),
		bytes.Repeat([]byte("block two "), 80),
		bytes.Repeat([]byte("block three "), 80),
	}
	var wire []byte
	var starts []int
	for _, b := range blocks {
		starts = append(starts, len(wire))
		wire = mustFrame(t, wire, LempelZiv, b)
	}
	// Poison block 1's payload.
	wire[starts[1]+16] ^= 0x20

	fr := NewFrameReader(bytes.NewReader(wire), nil)
	var got [][]byte
	corrupt := 0
	for {
		data, _, err := fr.ReadBlock()
		if err == io.EOF {
			break
		}
		if errors.Is(err, ErrCorruptFrame) {
			corrupt++
			if rerr := fr.Resync(); rerr != nil {
				if rerr == io.EOF {
					break
				}
				t.Fatal(rerr)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, data)
	}
	if corrupt == 0 {
		t.Fatal("corruption went unnoticed")
	}
	if len(got) != 3 {
		t.Fatalf("recovered %d of 3 healthy blocks", len(got))
	}
	for i, want := range [][]byte{blocks[0], blocks[2], blocks[3]} {
		if !bytes.Equal(got[i], want) {
			t.Fatalf("recovered block %d mismatch", i)
		}
	}
}

// TestResyncAfterBogusLength corrupts a length varint so the reader
// swallows part of the following frame; Resync must still find a later
// boundary and the CRC must reject any misaligned parse.
func TestResyncAfterBogusLength(t *testing.T) {
	blocks := make([][]byte, 6)
	for i := range blocks {
		blocks[i] = bytes.Repeat([]byte{byte('a' + i)}, 400+i*31)
	}
	var wire []byte
	var starts []int
	for _, b := range blocks {
		starts = append(starts, len(wire))
		wire = mustFrame(t, wire, Huffman, b)
	}
	wire[starts[1]+6] ^= 0x7F // somewhere in the varints

	fr := NewFrameReader(bytes.NewReader(wire), nil)
	var got [][]byte
	for {
		data, _, err := fr.ReadBlock()
		if err == io.EOF {
			break
		}
		if err != nil {
			if !errors.Is(err, ErrCorruptFrame) && err != io.ErrUnexpectedEOF {
				t.Fatalf("unexpected error class: %v", err)
			}
			if errors.Is(err, ErrCorruptFrame) {
				if rerr := fr.Resync(); rerr != nil {
					break
				}
				continue
			}
			break
		}
		got = append(got, data)
	}
	if len(got) < 3 {
		t.Fatalf("only %d blocks survived a single flipped varint", len(got))
	}
	// Every recovered block must be byte-identical to one of the originals.
	for i, g := range got {
		ok := false
		for _, b := range blocks {
			if bytes.Equal(g, b) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("recovered block %d matches no original (len %d)", i, len(g))
		}
	}
}

func TestResyncOnGarbagePrefix(t *testing.T) {
	payload := bytes.Repeat([]byte("after the noise "), 60)
	junk := bytes.Repeat([]byte{0xEC, 0x13, 0x40, 0x00}, 64) // magic-ish noise
	wire := append([]byte(nil), junk...)
	wire = mustFrame(t, wire, BurrowsWheeler, payload)

	fr := NewFrameReader(bytes.NewReader(wire), nil)
	for tries := 0; tries < 300; tries++ {
		data, _, err := fr.ReadBlock()
		if err == nil {
			if !bytes.Equal(data, payload) {
				t.Fatal("decoded wrong payload")
			}
			return
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			t.Fatalf("stream ended before recovering the frame: %v", err)
		}
		if rerr := fr.Resync(); rerr != nil {
			t.Fatalf("resync: %v", rerr)
		}
	}
	t.Fatal("never recovered the healthy frame")
}

func TestResyncAtEOFReturnsEOF(t *testing.T) {
	frame := mustFrame(t, nil, None, []byte("solo"))
	mut := append([]byte(nil), frame...)
	mut[len(mut)-1] ^= 0x01
	fr := NewFrameReader(bytes.NewReader(mut), nil)
	if _, _, err := fr.ReadBlock(); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("got %v", err)
	}
	if err := fr.Resync(); err != io.EOF {
		t.Fatalf("resync on exhausted stream: got %v want io.EOF", err)
	}
}

// TestV1FramesStillDecode hand-builds a legacy (payload-only CRC) frame and
// checks the reader accepts it.
func TestV1FramesStillDecode(t *testing.T) {
	for _, m := range []Method{None, Huffman, Arithmetic, LempelZiv, BurrowsWheeler} {
		payload := bytes.Repeat([]byte("legacy wire compatibility "), 40)
		frame := appendFrameV1(t, nil, m, payload)
		data, info, err := NewFrameReader(bytes.NewReader(frame), nil).ReadBlock()
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !bytes.Equal(data, payload) {
			t.Fatalf("%v: payload mismatch", m)
		}
		if info.Method != m {
			t.Fatalf("%v: decoded method %v", m, info.Method)
		}
		// And a flipped v1 payload byte still fails its (payload) CRC.
		mut := append([]byte(nil), frame...)
		mut[len(mut)-1] ^= 0x04
		if _, _, err := NewFrameReader(bytes.NewReader(mut), nil).ReadBlock(); !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("%v: corrupt v1 frame decoded (err=%v)", m, err)
		}
	}
}
