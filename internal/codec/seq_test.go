package codec

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

// TestAppendFrameSeqRoundtrip checks that sequenced frames carry their
// sequence number through every method, across the varint width range.
func TestAppendFrameSeqRoundtrip(t *testing.T) {
	payload := bytes.Repeat([]byte("sequenced frame payload "), 32)
	seqs := []uint64{1, 2, 127, 128, 1 << 20, math.MaxUint64}
	for _, m := range []Method{None, Huffman, Arithmetic, LempelZiv, BurrowsWheeler} {
		var wire []byte
		for _, seq := range seqs {
			frame, info, err := AppendFrameSeq(nil, nil, m, payload, seq)
			if err != nil {
				t.Fatalf("%v seq %d: %v", m, seq, err)
			}
			if !info.HasSeq || info.Seq != seq {
				t.Fatalf("%v writer info seq = (%d, %v)", m, info.Seq, info.HasSeq)
			}
			wire = append(wire, frame...)
		}
		fr := NewFrameReader(bytes.NewReader(wire), nil)
		for _, seq := range seqs {
			data, info, err := fr.ReadBlock()
			if err != nil {
				t.Fatalf("%v read seq %d: %v", m, seq, err)
			}
			if !info.HasSeq || info.Seq != seq {
				t.Fatalf("%v reader seq = (%d, %v), want %d", m, info.Seq, info.HasSeq, seq)
			}
			if !bytes.Equal(data, payload) {
				t.Fatalf("%v seq %d payload mismatch", m, seq)
			}
		}
		if _, _, err := fr.ReadBlock(); err != io.EOF {
			t.Fatalf("%v trailing read = %v, want EOF", m, err)
		}
	}
}

// TestSeqFrameCRCCoversSeq flips each byte of the seq varint and expects
// checksum failures: the sequence number is integrity-protected like every
// other header field.
func TestSeqFrameCRCCoversSeq(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 64)
	frame, _, err := AppendFrameSeq(nil, nil, None, payload, 1<<40) // 6-byte varint
	if err != nil {
		t.Fatal(err)
	}
	// Header: magic(2) ver(1) method(1) flags(1) origLen(1) compLen(1),
	// then the seq varint.
	for at := 7; at < 13; at++ {
		mut := append([]byte(nil), frame...)
		mut[at] ^= 0x10
		_, _, err := NewFrameReader(bytes.NewReader(mut), nil).ReadBlock()
		if !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("flip seq byte %d: got %v, want ErrCorruptFrame", at, err)
		}
	}
}

// TestSeqFrameFallback: the raw-fallback path must preserve the sequence
// number too.
func TestSeqFrameFallback(t *testing.T) {
	incompressible := make([]byte, 256)
	for i := range incompressible {
		incompressible[i] = byte(i * 151)
	}
	frame, winfo, err := AppendFrameSeq(nil, nil, BurrowsWheeler, incompressible, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !winfo.Fallback {
		t.Skip("payload unexpectedly compressed; fallback path not exercised")
	}
	data, info, err := NewFrameReader(bytes.NewReader(frame), nil).ReadBlock()
	if err != nil {
		t.Fatal(err)
	}
	if !info.HasSeq || info.Seq != 42 || !info.Fallback || info.Method != None {
		t.Fatalf("info = %+v", info)
	}
	if !bytes.Equal(data, incompressible) {
		t.Fatal("fallback payload mismatch")
	}
}

// TestSeqFrameResync: a corrupted sequenced frame must still be skippable,
// with Resync landing on the next (sequenced) boundary.
func TestSeqFrameResync(t *testing.T) {
	payload := bytes.Repeat([]byte("resync me "), 40)
	var wire []byte
	for seq := uint64(1); seq <= 3; seq++ {
		frame, _, err := AppendFrameSeq(nil, nil, Huffman, payload, seq)
		if err != nil {
			t.Fatal(err)
		}
		wire = append(wire, frame...)
	}
	wire[20] ^= 0xFF // damage frame 1's body
	fr := NewFrameReader(bytes.NewReader(wire), nil)
	var got []uint64
	for {
		_, info, err := fr.ReadBlock()
		if err == io.EOF {
			break
		}
		if errors.Is(err, ErrCorruptFrame) {
			if rerr := fr.Resync(); rerr != nil {
				break
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, info.Seq)
	}
	if len(got) < 2 || got[len(got)-1] != 3 {
		t.Fatalf("recovered seqs %v, want suffix ending at 3 with ≥2 survivors", got)
	}
}
