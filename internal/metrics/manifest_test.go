package metrics_test

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"

	"ccx/internal/broker"
	"ccx/internal/codec"
	"ccx/internal/core"
	"ccx/internal/governor"
	"ccx/internal/metrics"
	"ccx/internal/selector"
)

var updateManifest = flag.Bool("update-manifest", false, "rewrite testdata/names.txt from the current metric surface")

// Dynamic name segments collapse so the manifest stays stable across ids,
// channel names, and whichever methods the adaptation loop happened to
// pick during the scenario.
var (
	subSeg    = regexp.MustCompile(`\bsub\.\d+\.`)
	chanSeg   = regexp.MustCompile(`\bchan\.[^.]+\.`)
	shardSeg  = regexp.MustCompile(`\bbroker\.shard\.\d+\.`)
	methodSeg = regexp.MustCompile(`\bmethod\.[a-z-]+$`)
	placeSeg  = regexp.MustCompile(`\bplacement\.[a-z]+$`)
)

func normalize(name string) string {
	name = subSeg.ReplaceAllString(name, "sub.N.")
	name = chanSeg.ReplaceAllString(name, "chan.C.")
	name = shardSeg.ReplaceAllString(name, "broker.shard.N.")
	name = methodSeg.ReplaceAllString(name, "method.M")
	name = placeSeg.ReplaceAllString(name, "placement.P")
	return name
}

// TestMetricNameManifest pins the Prometheus metric surface: it drives the
// sender, receiver, broker, encode-plane, and runtime metric families into
// one registry the way the daemons do, then compares every (kind, name)
// pair against the committed manifest. A renamed or re-typed metric fails
// here instead of silently breaking dashboards. Run with -update-manifest
// after an intentional change.
func TestMetricNameManifest(t *testing.T) {
	reg := metrics.NewRegistry()

	// Runtime family (the obs debug plane starts this sampler).
	metrics.NewRuntimeSampler(reg).Sample()

	// Sender and receiver families: one in-memory transfer with telemetry.
	tel := core.Telemetry{Metrics: reg, Stream: "send"}
	engine, err := core.NewEngine(core.Config{Selector: selector.DefaultConfig(), Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	w := core.NewWriter(&wire, engine, nil)
	payload := bytes.Repeat([]byte("manifest manifest "), 64<<10/18)
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := core.NewReader(&wire, nil, nil)
	r.SetTelemetry(core.Telemetry{Metrics: reg, Stream: "recv"})
	if _, err := io.Copy(io.Discard, r); err != nil && err != io.EOF {
		t.Fatal(err)
	}

	// Broker, channel, subscriber, encode-plane, and governor families: a
	// broker serving one subscriber over an in-memory pipe, with the
	// overload governor watching a deliberately tiny byte budget so the
	// overload surface (admission refusals, governor shedding) registers
	// too.
	// Shards is explicit so the sharded-core families register even on a
	// single-CPU runner (GOMAXPROCS=1 would give one loop); the dynamic
	// shard index is normalized to broker.shard.N. either way.
	b, err := broker.New(broker.Config{
		Channels:  []string{"md"},
		Heartbeat: -1,
		QueueLen:  8,
		Shards:    4,
		Policy:    broker.DropOldest,
		Governor:  &governor.Config{MemBudget: -1, BytesBudget: 256 << 10, Interval: time.Hour},
		Metrics:   reg,
		Logf:      func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	client, server := net.Pipe()
	defer client.Close()
	b.HandleConn(server)
	if err := broker.HandshakeSubscribe(client, "md"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := b.Publish("md", []byte(fmt.Sprintf("block-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	fr := codec.NewFrameReader(client, nil)
	for got := 0; got < 3; {
		data, _, err := fr.ReadBlock()
		if err != nil {
			t.Fatalf("after %d blocks: %v", got, err)
		}
		if len(data) > 0 {
			got++
		}
	}

	// Overload family: with the subscriber now stalled, incompressible
	// blocks back its queue up past the byte budget; one sample goes
	// critical (shedding the stalled queue), and the next subscribe attempt
	// is refused — registering the admission and shed counters.
	rng := rand.New(rand.NewSource(7))
	junk := make([]byte, 64<<10)
	for i := 0; i < 6; i++ {
		rng.Read(junk)
		if err := b.Publish("md", junk); err != nil {
			t.Fatal(err)
		}
	}
	// Delivery is asynchronous, so sample until the backed-up queue is both
	// visible (critical) and deep enough that the governor sheds it. The
	// eviction itself finishes on the subscriber's write loop, so also wait
	// for the teardown — broker.evictions registers there — before taking
	// the snapshot. The stored level stays critical (no further samples),
	// which is what the admission check below reads.
	shed := reg.Counter("governor.shed_evictions")
	deadline := time.Now().Add(5 * time.Second)
	for shed.Value() == 0 {
		b.Governor().SampleNow()
		if time.Now().After(deadline) {
			t.Fatal("manifest overload scenario never shed the stalled subscriber")
		}
		time.Sleep(time.Millisecond)
	}
	for b.Subscribers() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("shed subscriber never finished tearing down")
		}
		time.Sleep(time.Millisecond)
	}
	refused, rserver := net.Pipe()
	b.HandleConn(rserver)
	if err := broker.HandshakeSubscribe(refused, "md"); err == nil {
		t.Fatal("subscribe under critical memory should be refused")
	}
	refused.Close()

	// Swarm family: cmd/ccswarm registers these on the broker's registry
	// (the report's percentiles read the same histogram a /metrics scrape
	// sees); register them here the same way so the names stay pinned.
	reg.Histogram(metrics.SwarmLatencyName, metrics.LatencyBuckets).Observe(0.01)
	reg.Gauge(metrics.SwarmSubscribersName).Set(1)
	reg.Counter(metrics.SwarmDeliveredName).Inc()

	seen := make(map[string]bool)
	for _, v := range reg.Views() {
		seen[fmt.Sprintf("%-9s %s", v.Kind, normalize(v.Name))] = true
	}
	lines := make([]string, 0, len(seen))
	for l := range seen {
		lines = append(lines, l)
	}
	sort.Strings(lines)
	got := strings.Join(lines, "\n") + "\n"

	path := filepath.Join("testdata", "names.txt")
	if *updateManifest {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("manifest rewritten: %d names", len(lines))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing manifest (run go test ./internal/metrics -run Manifest -update-manifest): %v", err)
	}
	if got != string(want) {
		t.Errorf("metric surface changed; diff against %s:\n%s\n"+
			"If intentional, update dashboards and run with -update-manifest.",
			path, diffLines(string(want), got))
	}
}

// diffLines renders a minimal set-difference between two sorted manifests.
func diffLines(want, got string) string {
	w := strings.Split(strings.TrimSpace(want), "\n")
	g := strings.Split(strings.TrimSpace(got), "\n")
	ws, gs := make(map[string]bool), make(map[string]bool)
	for _, l := range w {
		ws[l] = true
	}
	for _, l := range g {
		gs[l] = true
	}
	var sb strings.Builder
	for _, l := range w {
		if !gs[l] {
			fmt.Fprintf(&sb, "- %s\n", l)
		}
	}
	for _, l := range g {
		if !ws[l] {
			fmt.Fprintf(&sb, "+ %s\n", l)
		}
	}
	return sb.String()
}
