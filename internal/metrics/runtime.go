package metrics

import (
	"runtime"
	"time"
)

// Go runtime health metrics, registered under the "go." prefix:
//
//	go.goroutines          gauge      live goroutine count
//	go.gomaxprocs          gauge      scheduler parallelism
//	go.heap_alloc_bytes    gauge      live heap (runtime.MemStats.HeapAlloc)
//	go.heap_sys_bytes      gauge      heap reserved from the OS
//	go.gc_cycles           gauge      completed GC cycles since start
//	go.gc_pause_seconds    histogram  individual stop-the-world pauses
//
// They answer the operational questions the ccx-specific metrics cannot: is
// a stalled pipeline actually a goroutine leak, is the encode pool's
// buffer reuse holding heap flat, are GC pauses competing with the block
// deadline. SampleRuntime is a point-in-time refresh; StartRuntimeSampler
// runs it periodically (the obs debug plane starts one automatically).

// GCPauseBuckets covers stop-the-world pauses: 10µs..100ms exponentially.
var GCPauseBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3,
}

// RuntimeSampler refreshes the "go." metric family in a Registry. It keeps
// the last-seen GC cycle count so each stop-the-world pause is observed
// exactly once, however often Sample runs.
type RuntimeSampler struct {
	goroutines *Gauge
	gomaxprocs *Gauge
	heapAlloc  *Gauge
	heapSys    *Gauge
	gcCycles   *Gauge
	gcPause    *Histogram
	lastNumGC  uint32
}

// NewRuntimeSampler registers the "go." metrics in reg and returns a
// sampler; call Sample to refresh them.
func NewRuntimeSampler(reg *Registry) *RuntimeSampler {
	return &RuntimeSampler{
		goroutines: reg.Gauge("go.goroutines"),
		gomaxprocs: reg.Gauge("go.gomaxprocs"),
		heapAlloc:  reg.Gauge("go.heap_alloc_bytes"),
		heapSys:    reg.Gauge("go.heap_sys_bytes"),
		gcCycles:   reg.Gauge("go.gc_cycles"),
		gcPause:    reg.Histogram("go.gc_pause_seconds", GCPauseBuckets),
	}
}

// Sample refreshes every "go." metric from the live runtime. ReadMemStats
// stops the world briefly (microseconds); callers pick the cadence.
func (s *RuntimeSampler) Sample() {
	s.goroutines.Set(int64(runtime.NumGoroutine()))
	s.gomaxprocs.Set(int64(runtime.GOMAXPROCS(0)))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.heapAlloc.Set(int64(ms.HeapAlloc))
	s.heapSys.Set(int64(ms.HeapSys))
	s.gcCycles.Set(int64(ms.NumGC))
	// Each pause goes into the histogram once: PauseNs is a 256-entry ring
	// indexed by cycle, so walk only the cycles since the previous Sample.
	if n := ms.NumGC - s.lastNumGC; n > 0 {
		if n > uint32(len(ms.PauseNs)) {
			n = uint32(len(ms.PauseNs))
		}
		for i := ms.NumGC - n; i < ms.NumGC; i++ {
			s.gcPause.Observe(float64(ms.PauseNs[i%uint32(len(ms.PauseNs))]) / 1e9)
		}
		s.lastNumGC = ms.NumGC
	}
}

// StartRuntimeSampler samples the runtime into reg every interval
// (defaulting to 5s when interval <= 0) until the returned stop function is
// called. An initial sample runs synchronously so the metrics exist before
// the first scrape.
func StartRuntimeSampler(reg *Registry, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	s := NewRuntimeSampler(reg)
	s.Sample()
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s.Sample()
			}
		}
	}()
	var once func()
	closed := false
	once = func() {
		if !closed {
			closed = true
			close(done)
		}
	}
	return once
}
