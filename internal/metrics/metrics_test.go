package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterMonotonic(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-10) // ignored: counters only move forward
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestEWMASeedAndSmooth(t *testing.T) {
	e := EWMA{alpha: 0.5}
	if e.Value() != 0 {
		t.Fatalf("zero EWMA should read 0")
	}
	e.Observe(4) // seeds
	e.Observe(8) // 0.5*8 + 0.5*4 = 6
	if got := e.Value(); math.Abs(got-6) > 1e-9 {
		t.Fatalf("ewma = %v, want 6", got)
	}
	if e.Observations() != 2 {
		t.Fatalf("observations = %d, want 2", e.Observations())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name must return the same counter")
	}
	r.Counter("a").Add(5)
	r.Gauge("g").Set(-2)
	r.EWMA("e", 0).Observe(1.5)
	snap := r.Snapshot()
	if snap["a"] != 5 || snap["g"] != -2 || snap["e"] != 1.5 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("hits").Inc()
				r.Gauge("depth").Set(int64(j))
				r.EWMA("ratio", 0.3).Observe(0.5)
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != 8000 {
		t.Fatalf("hits = %d, want 8000", got)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("n").Add(3)
	r.EWMA("r", 0).Observe(0.25)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]float64
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON %q: %v", buf.String(), err)
	}
	if decoded["n"] != 3 || decoded["r"] != 0.25 {
		t.Fatalf("decoded = %v", decoded)
	}
}
