// Package metrics is a small expvar-style instrumentation substrate:
// named counters, gauges, and EWMAs collected in a Registry that can
// snapshot itself into a flat name→value map or JSON. The fan-out broker
// (internal/broker) feeds one registry with per-subscriber bytes in/out,
// compression ratios, method histograms, queue depths, and evictions, and
// cmd/ccbroker periodically dumps the snapshot for operators.
//
// All types are safe for concurrent use and allocation-free on the hot
// paths (counters and gauges are single atomics).
package metrics

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored: counters only
// move forward).
func (c *Counter) Add(n int64) {
	if n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous integer level (queue depth, subscriber count).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultEWMAAlpha weights the newest observation when no alpha is given.
const DefaultEWMAAlpha = 0.3

// EWMA is an exponentially weighted moving average of a float series
// (compression ratio, goodput). The first observation seeds the average.
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	val   float64
	n     int64
}

// Observe folds x into the average.
func (e *EWMA) Observe(x float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	a := e.alpha
	if a <= 0 || a > 1 {
		a = DefaultEWMAAlpha
	}
	if e.n == 0 {
		e.val = x
	} else {
		e.val = a*x + (1-a)*e.val
	}
	e.n++
}

// Value returns the smoothed value (0 before any observation).
func (e *EWMA) Value() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.val
}

// Observations reports how many samples have been folded in.
func (e *EWMA) Observations() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// Registry owns a flat namespace of metrics. Lookups are get-or-create, so
// instrumented code never checks registration state; the zero name is
// valid. Use dotted names ("sub.3.bytes_out") to build hierarchies. Names
// should be unique across kinds: a counter and a gauge under the same name
// coexist but collide in Snapshot output.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	ewmas    map[string]*EWMA
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		ewmas:    make(map[string]*EWMA),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// EWMA returns the named moving average, creating it with the given alpha
// on first use (alpha is fixed at creation; later calls ignore it).
func (r *Registry) EWMA(name string, alpha float64) *EWMA {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.ewmas[name]
	if !ok {
		e = &EWMA{alpha: alpha}
		r.ewmas[name] = e
	}
	return e
}

// Snapshot returns a point-in-time copy of every metric as name→value.
// Counters and gauges appear as their integer values; EWMAs as their
// smoothed float.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+len(r.ewmas))
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	ewmas := make(map[string]*EWMA, len(r.ewmas))
	for k, v := range r.ewmas {
		ewmas[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		out[k] = float64(v.Value())
	}
	for k, v := range gauges {
		out[k] = float64(v.Value())
	}
	for k, v := range ewmas {
		out[k] = v.Value()
	}
	return out
}

// WriteJSON renders the snapshot as a single JSON object with sorted keys
// (encoding/json sorts map keys), counters and gauges as integers.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	flat := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.ewmas))
	for k, v := range r.counters {
		flat[k] = v.Value()
	}
	for k, v := range r.gauges {
		flat[k] = v.Value()
	}
	for k, v := range r.ewmas {
		flat[k] = v.Value()
	}
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(flat)
}
