// Package metrics is a small expvar-style instrumentation substrate:
// named counters, gauges, EWMAs, and fixed-bucket histograms collected in
// a Registry that can snapshot itself into a flat name→value map, JSON, or
// Prometheus text exposition. The fan-out broker (internal/broker) feeds
// one registry with per-subscriber bytes in/out, compression ratios,
// method histograms, queue depths, and evictions; the adaptive engine
// (internal/core) adds encode/decode latency and block-size distributions;
// cmd/ccbroker and friends expose the snapshot over -debug HTTP
// (internal/obs) or dump it to stderr for operators.
//
// All types are safe for concurrent use and allocation-free on the hot
// paths (counters and gauges are single atomics; histograms are a binary
// search plus atomic adds).
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored: counters only
// move forward).
func (c *Counter) Add(n int64) {
	if n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous integer level (queue depth, subscriber count).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to n if n exceeds the current value — the
// lock-free high-water-mark update (queue-depth peaks and the like).
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultEWMAAlpha weights the newest observation when no alpha is given.
const DefaultEWMAAlpha = 0.3

// EWMA is an exponentially weighted moving average of a float series
// (compression ratio, goodput). The first observation seeds the average.
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	val   float64
	n     int64
}

// Observe folds x into the average.
func (e *EWMA) Observe(x float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	a := e.alpha
	if a <= 0 || a > 1 {
		a = DefaultEWMAAlpha
	}
	if e.n == 0 {
		e.val = x
	} else {
		e.val = a*x + (1-a)*e.val
	}
	e.n++
}

// Value returns the smoothed value (0 before any observation).
func (e *EWMA) Value() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.val
}

// Observations reports how many samples have been folded in.
func (e *EWMA) Observations() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// Kind identifies a metric's type inside a Registry namespace.
type Kind string

// Registry metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindEWMA      Kind = "ewma"
	KindHistogram Kind = "histogram"
)

// Registry owns a flat namespace of metrics. Lookups are get-or-create, so
// instrumented code never checks registration state; the zero name is
// valid. Use dotted names ("sub.3.bytes_out") to build hierarchies.
//
// Names are unique across kinds: requesting an existing name as a
// different kind panics with a descriptive error rather than silently
// shadowing one metric with another in Snapshot output. Metric lookups
// happen at wiring time (session or subscriber setup), so a kind collision
// is a programming error on par with a duplicate flag registration —
// panicking there, like package flag does, surfaces it at the broken call
// site instead of as a mystery in a monitoring dashboard.
type Registry struct {
	mu       sync.Mutex
	kinds    map[string]Kind
	counters map[string]*Counter
	gauges   map[string]*Gauge
	ewmas    map[string]*EWMA
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:    make(map[string]Kind),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		ewmas:    make(map[string]*EWMA),
		hists:    make(map[string]*Histogram),
	}
}

// claim records name as kind, panicking on a cross-kind collision.
// Callers hold r.mu.
func (r *Registry) claim(name string, kind Kind) {
	if prev, ok := r.kinds[name]; ok && prev != kind {
		panic(fmt.Sprintf("metrics: %q already registered as a %s, requested as a %s",
			name, prev, kind))
	}
	r.kinds[name] = kind
}

// Counter returns the named counter, creating it on first use. It panics
// if name is already registered as a different kind.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, KindCounter)
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. It panics if
// name is already registered as a different kind.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, KindGauge)
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// EWMA returns the named moving average, creating it with the given alpha
// on first use (alpha is fixed at creation; later calls ignore it). It
// panics if name is already registered as a different kind.
func (r *Registry) EWMA(name string, alpha float64) *EWMA {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, KindEWMA)
	e, ok := r.ewmas[name]
	if !ok {
		e = &EWMA{alpha: alpha}
		r.ewmas[name] = e
	}
	return e
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (bounds are fixed at creation; later calls ignore
// them). It panics if name is already registered as a different kind.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, KindHistogram)
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// View is one metric's point-in-time state in a registry snapshot.
type View struct {
	// Name is the registered metric name.
	Name string
	// Kind says which of the value fields is meaningful.
	Kind Kind
	// Value holds the counter/gauge integer (as float) or the EWMA's
	// smoothed value. Unused for histograms.
	Value float64
	// Hist is the distribution state; set only for KindHistogram.
	Hist HistogramSnapshot
}

// Views returns every metric's state, sorted by name — the typed snapshot
// the Prometheus and debug renderers compose over. The per-metric reads
// happen outside the registry lock, so a view is consistent per metric,
// not across metrics (same as Snapshot).
func (r *Registry) Views() []View {
	r.mu.Lock()
	views := make([]View, 0, len(r.kinds))
	type pending struct {
		view View
		c    *Counter
		g    *Gauge
		e    *EWMA
		h    *Histogram
	}
	ps := make([]pending, 0, len(r.kinds))
	for name, kind := range r.kinds {
		p := pending{view: View{Name: name, Kind: kind}}
		switch kind {
		case KindCounter:
			p.c = r.counters[name]
		case KindGauge:
			p.g = r.gauges[name]
		case KindEWMA:
			p.e = r.ewmas[name]
		case KindHistogram:
			p.h = r.hists[name]
		}
		ps = append(ps, p)
	}
	r.mu.Unlock()
	for _, p := range ps {
		switch {
		case p.c != nil:
			p.view.Value = float64(p.c.Value())
		case p.g != nil:
			p.view.Value = float64(p.g.Value())
		case p.e != nil:
			p.view.Value = p.e.Value()
		case p.h != nil:
			p.view.Hist = p.h.Snapshot()
		}
		views = append(views, p.view)
	}
	sort.Slice(views, func(i, j int) bool { return views[i].Name < views[j].Name })
	return views
}

// Snapshot returns a point-in-time copy of every metric as name→value.
// Counters and gauges appear as their integer values; EWMAs as their
// smoothed float. Histograms flatten into derived keys: "<name>.count",
// "<name>.sum", and estimated "<name>.p50"/"<name>.p99" quantiles (the
// quantile keys are omitted while the histogram is empty).
func (r *Registry) Snapshot() map[string]float64 {
	views := r.Views()
	out := make(map[string]float64, len(views))
	for _, v := range views {
		if v.Kind != KindHistogram {
			out[v.Name] = v.Value
			continue
		}
		out[v.Name+".count"] = float64(v.Hist.Count)
		out[v.Name+".sum"] = v.Hist.Sum
		if v.Hist.Count > 0 {
			out[v.Name+".p50"] = v.Hist.Quantile(0.50)
			out[v.Name+".p99"] = v.Hist.Quantile(0.99)
		}
	}
	return out
}

// WriteJSON renders the snapshot as a single JSON object with sorted keys
// (encoding/json sorts map keys), counters and gauges as integers.
func (r *Registry) WriteJSON(w io.Writer) error {
	flat := make(map[string]any)
	for _, v := range r.Views() {
		switch v.Kind {
		case KindCounter, KindGauge:
			flat[v.Name] = int64(v.Value)
		case KindEWMA:
			flat[v.Name] = v.Value
		case KindHistogram:
			flat[v.Name+".count"] = v.Hist.Count
			flat[v.Name+".sum"] = v.Hist.Sum
			if v.Hist.Count > 0 {
				flat[v.Name+".p50"] = v.Hist.Quantile(0.50)
				flat[v.Name+".p99"] = v.Hist.Quantile(0.99)
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(flat)
}
