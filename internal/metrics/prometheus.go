package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// PromName converts a dotted registry name into a valid Prometheus metric
// name: dots and other illegal characters become underscores, and a name
// starting with a digit gains a leading underscore. "sub.3.bytes_out" →
// "sub_3_bytes_out".
func PromName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		legal := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if legal {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a sample value the way the exposition format expects.
func promFloat(f float64) string {
	switch {
	case math.IsInf(f, 1):
		return "+Inf"
	case math.IsInf(f, -1):
		return "-Inf"
	case math.IsNaN(f):
		return "NaN"
	}
	return fmt.Sprintf("%g", f)
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as their native types, EWMAs
// as gauges, histograms as the standard cumulative _bucket/_sum/_count
// triple. Metrics are emitted in name order so the output is diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, v := range r.Views() {
		name := PromName(v.Name)
		var err error
		switch v.Kind {
		case KindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", name, name, promFloat(v.Value))
		case KindGauge, KindEWMA:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(v.Value))
		case KindHistogram:
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			var cum int64
			for i, bound := range v.Hist.Bounds {
				cum += v.Hist.Counts[i]
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(bound), cum); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, v.Hist.Count); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
				name, promFloat(v.Hist.Sum), name, v.Hist.Count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
