package metrics

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, x := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(x)
	}
	s := h.Snapshot()
	// 0.5 and 1 land in le=1; 1.5 in le=2; 3 in le=4; 100 in +Inf.
	want := []int64{2, 1, 1, 1}
	for i, n := range want {
		if s.Counts[i] != n {
			t.Errorf("bucket %d = %d, want %d (snapshot %+v)", i, s.Counts[i], n, s)
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-106) > 1e-9 {
		t.Errorf("sum = %v, want 106", s.Sum)
	}
}

func TestHistogramDedupesAndSortsBounds(t *testing.T) {
	h := NewHistogram([]float64{4, 1, 2, 2, 1})
	s := h.Snapshot()
	if len(s.Bounds) != 3 || s.Bounds[0] != 1 || s.Bounds[1] != 2 || s.Bounds[2] != 4 {
		t.Fatalf("bounds = %v, want [1 2 4]", s.Bounds)
	}
	if len(s.Counts) != 4 {
		t.Fatalf("counts len = %d, want 4 (buckets + Inf)", len(s.Counts))
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30, 40})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i % 40))
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.5)
	if p50 < 10 || p50 > 30 {
		t.Errorf("p50 = %v, want within (10,30) for a roughly uniform 0..39 series", p50)
	}
	if !math.IsNaN(NewHistogram(nil).Snapshot().Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	// All mass in the +Inf bucket reports the largest finite bound.
	over := NewHistogram([]float64{1})
	over.Observe(50)
	if q := over.Snapshot().Quantile(0.99); q != 1 {
		t.Errorf("overflow quantile = %v, want capped at 1", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(float64(i*j) * 1e-6)
				h.ObserveDuration(time.Duration(j) * time.Microsecond)
			}
		}(i)
	}
	wg.Wait()
	if got := h.Count(); got != 16000 {
		t.Fatalf("count = %d, want 16000", got)
	}
	var bucketTotal int64
	s := h.Snapshot()
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != 16000 {
		t.Fatalf("bucket total = %d, want 16000", bucketTotal)
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("broker.bytes_in")
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("cross-kind registration must panic")
		}
		msg, ok := rec.(string)
		if !ok || !strings.Contains(msg, "broker.bytes_in") ||
			!strings.Contains(msg, "counter") || !strings.Contains(msg, "gauge") {
			t.Fatalf("panic %v should name the metric and both kinds", rec)
		}
	}()
	r.Gauge("broker.bytes_in")
}

func TestRegistrySameKindNoPanic(t *testing.T) {
	r := NewRegistry()
	if r.Histogram("lat", LatencyBuckets) != r.Histogram("lat", nil) {
		t.Fatal("same name+kind must return the same histogram")
	}
	r.Counter("c")
	r.Counter("c") // same kind: fine
}

func TestSnapshotIncludesHistogramSummary(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("enc", []float64{1, 2})
	snap := r.Snapshot()
	if snap["enc.count"] != 0 {
		t.Fatalf("empty histogram count = %v", snap["enc.count"])
	}
	if _, ok := snap["enc.p50"]; ok {
		t.Fatal("empty histogram must not emit quantiles")
	}
	h.Observe(1.5)
	h.Observe(0.5)
	snap = r.Snapshot()
	if snap["enc.count"] != 2 || snap["enc.sum"] != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
	if _, ok := snap["enc.p50"]; !ok {
		t.Fatal("populated histogram should emit p50")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"enc.count":2`) {
		t.Fatalf("JSON missing histogram count: %s", buf.String())
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("broker.bytes_in").Add(10)
	r.Gauge("broker.subscribers").Set(3)
	r.EWMA("sub.3.ratio", 0).Observe(0.5)
	h := r.Histogram("ccx.encode_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE broker_bytes_in counter",
		"broker_bytes_in 10",
		"# TYPE broker_subscribers gauge",
		"# TYPE sub_3_ratio gauge",
		"sub_3_ratio 0.5",
		"# TYPE ccx_encode_seconds histogram",
		`ccx_encode_seconds_bucket{le="0.001"} 1`,
		`ccx_encode_seconds_bucket{le="0.01"} 1`,
		`ccx_encode_seconds_bucket{le="+Inf"} 2`,
		"ccx_encode_seconds_sum 0.5005",
		"ccx_encode_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Basic format sanity: every non-comment line is "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if parts := strings.Fields(line); len(parts) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"sub.3.bytes_out": "sub_3_bytes_out",
		"3abc":            "_3abc",
		"a-b c":           "a_b_c",
		"":                "_",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want high-water 5", g.Value())
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Fatalf("gauge = %d, want 9", g.Value())
	}
}
