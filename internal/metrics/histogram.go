package metrics

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket distribution metric. Buckets are cumulative
// upper bounds (Prometheus-style "le"); an observation lands in the first
// bucket whose bound is >= the value, or in the implicit +Inf overflow
// bucket. Observe is a binary search plus two atomic adds — safe for
// concurrent use and allocation-free, so it can sit on per-block hot paths.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // math.Float64bits, CAS-accumulated
}

// NewHistogram returns a histogram over the given ascending upper bounds.
// Bounds are copied, deduplicated, and sorted, so callers may pass shared
// slices. An empty bounds slice yields a single +Inf bucket (count/sum only).
func NewHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	uniq := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			uniq = append(uniq, b)
		}
	}
	return &Histogram{
		bounds: uniq,
		counts: make([]atomic.Int64, len(uniq)+1),
	}
}

// Observe folds x into the distribution.
func (h *Histogram) Observe(x float64) {
	i := sort.SearchFloat64s(h.bounds, x)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration folds a latency observation in, as seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the running total of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts[i] is the number of
	// observations <= Bounds[i]. Counts has one extra entry, the +Inf bucket.
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Snapshot copies the histogram state. The per-bucket loads are not a
// single atomic cut, so a snapshot taken mid-Observe may be off by a few
// in-flight observations — fine for monitoring, which is its only consumer.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable after NewHistogram
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the bucket where the target rank falls, the standard
// fixed-bucket estimate. It returns NaN for an empty histogram; ranks
// landing in the +Inf bucket report the largest finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q <= 0 || q > 1 {
		return math.NaN()
	}
	rank := q * float64(s.Count)
	var seen int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(seen+c) >= rank {
			if i >= len(s.Bounds) { // +Inf bucket
				if len(s.Bounds) == 0 {
					return math.NaN()
				}
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			frac := (rank - float64(seen)) / float64(c)
			return lo + (s.Bounds[i]-lo)*frac
		}
		seen += c
	}
	if len(s.Bounds) == 0 {
		return math.NaN()
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Swarm metric names, shared between cmd/ccswarm and the manifest golden.
// The harness registers its publish→decode latency histogram on the
// broker's own registry under SwarmLatencyName and computes the report's
// percentiles from that same histogram, so swarm.json and a /metrics
// scrape can never disagree beyond bucket resolution.
const (
	SwarmLatencyName     = "swarm.latency_seconds"
	SwarmSubscribersName = "swarm.subscribers"
	SwarmDeliveredName   = "swarm.delivered_blocks"
)

// Shared bucket layouts for the repo's standard views. Exported so tests
// and renderers agree with instrumented code on the exact bounds.
var (
	// LatencyBuckets covers 10µs..10s exponentially — encode/decode/send
	// latencies in seconds.
	LatencyBuckets = []float64{
		10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
		1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3,
		250e-3, 500e-3, 1, 2.5, 5, 10,
	}
	// SizeBuckets covers 256 B..16 MiB by powers of four — block and frame
	// sizes in bytes (upper end matches codec.MaxFrameLen).
	SizeBuckets = []float64{
		256, 1 << 10, 4 << 10, 16 << 10, 64 << 10,
		256 << 10, 1 << 20, 4 << 20, 16 << 20,
	}
	// RatioBuckets covers compressed/original fractions: fine steps below 1
	// where compression pays, one bucket above for expansion fallbacks.
	RatioBuckets = []float64{
		0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1,
	}
	// DepthBuckets covers queue depths and small counts.
	DepthBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 1024}
)
