// Package bwt implements the paper's adapted Burrows-Wheeler compression
// pipeline (§2.4). The stages are exactly the paper's:
//
//  1. The input is split into chunks; each chunk is Burrows-Wheeler
//     transformed (sorting all cyclic rotations).
//  2. Each transformed chunk runs through move-to-front coding.
//  3. Run-length coding with runs capped at 254 so that byte 255 never
//     appears inside a chunk; byte 255 is instead appended to the end of
//     every chunk as a synchronization marker.
//  4. All chunks are compressed jointly with a single Huffman code. Because
//     canonical Huffman decoding self-synchronizes (ref [31]), a receiver
//     that starts mid-stream can scan to the next 255 marker and resume on
//     a chunk boundary — the property the paper adds for out-of-order
//     block delivery.
//
// Rotation sorting uses counting-sort prefix doubling (O(n log n)), fast
// enough for the paper's block regime (≤128 KB) without the engineering
// burden of SA-IS.
package bwt

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ccx/internal/huffman"
)

// DefaultChunkSize is the per-chunk unit for transform and synchronization.
// Larger chunks compress better but sort slower — the paper's tradeoff of
// "shorter files are less effectively compressed".
const DefaultChunkSize = 16 * 1024

// marker is the reserved synchronization byte that terminates every chunk.
const marker = 0xFF

// ErrCorrupt is returned for malformed or truncated compressed data.
var ErrCorrupt = errors.New("bwt: corrupt input")

// Transform computes the Burrows-Wheeler transform of src: the last column
// of the sorted rotation matrix, plus the row index at which the original
// string appears. src is unmodified.
func Transform(src []byte) (last []byte, primary int) {
	n := len(src)
	if n == 0 {
		return nil, 0
	}
	if n == 1 {
		return []byte{src[0]}, 0
	}
	sa := sortRotations(src)
	last = make([]byte, n)
	for i, r := range sa {
		last[i] = src[(r+n-1)%n]
		if r == 0 {
			primary = i
		}
	}
	return last, primary
}

// sortRotations returns the start offsets of the cyclic rotations of src in
// lexicographic order. It is the cyclic-shift variant of the Manber-Myers
// doubling algorithm: each doubling round re-sorts with a counting sort, so
// the whole construction is O(n log n) with small constants — fast enough
// that the paper's "split into chunks to reduce sorting cost" tradeoff is
// about compression granularity, not wall time.
func sortRotations(src []byte) []int {
	n := len(src)
	const alphabet = 256
	p := make([]int, n) // rotations in current sorted order
	c := make([]int, n) // equivalence class of each rotation prefix
	cntSize := n + 1
	if cntSize < alphabet {
		cntSize = alphabet
	}
	cnt := make([]int, cntSize)

	// Round 0: counting sort by first character.
	for i := 0; i < n; i++ {
		cnt[src[i]]++
	}
	for i := 1; i < alphabet; i++ {
		cnt[i] += cnt[i-1]
	}
	for i := 0; i < n; i++ {
		cnt[src[i]]--
		p[cnt[src[i]]] = i
	}
	c[p[0]] = 0
	classes := 1
	for i := 1; i < n; i++ {
		if src[p[i]] != src[p[i-1]] {
			classes++
		}
		c[p[i]] = classes - 1
	}

	pn := make([]int, n)
	cn := make([]int, n)
	for h := 1; h < n && classes < n; h <<= 1 {
		// Sort by the second half: shifting the already-sorted order left by
		// h yields the order of second halves for free.
		for i := 0; i < n; i++ {
			pn[i] = p[i] - h
			if pn[i] < 0 {
				pn[i] += n
			}
		}
		// Stable counting sort by first-half class.
		for i := 0; i < classes; i++ {
			cnt[i] = 0
		}
		for i := 0; i < n; i++ {
			cnt[c[pn[i]]]++
		}
		for i := 1; i < classes; i++ {
			cnt[i] += cnt[i-1]
		}
		for i := n - 1; i >= 0; i-- {
			cnt[c[pn[i]]]--
			p[cnt[c[pn[i]]]] = pn[i]
		}
		// Recompute classes over (first-half, second-half) pairs.
		cn[p[0]] = 0
		classes = 1
		for i := 1; i < n; i++ {
			curA, curB := c[p[i]], c[(p[i]+h)%n]
			prevA, prevB := c[p[i-1]], c[(p[i-1]+h)%n]
			if curA != prevA || curB != prevB {
				classes++
			}
			cn[p[i]] = classes - 1
		}
		c, cn = cn, c
	}
	return p
}

// Inverse reverses Transform.
func Inverse(last []byte, primary int) ([]byte, error) {
	n := len(last)
	if n == 0 {
		return nil, nil
	}
	if primary < 0 || primary >= n {
		return nil, fmt.Errorf("%w: primary index %d out of range", ErrCorrupt, primary)
	}
	// LF mapping: LF(i) = C[last[i]] + occ(last[i], i).
	var count [256]int
	for _, b := range last {
		count[b]++
	}
	var c [256]int
	sum := 0
	for v := 0; v < 256; v++ {
		c[v] = sum
		sum += count[v]
	}
	lf := make([]int, n)
	var seen [256]int
	for i, b := range last {
		lf[i] = c[b] + seen[b]
		seen[b]++
	}
	dst := make([]byte, n)
	row := primary
	for k := n - 1; k >= 0; k-- {
		dst[k] = last[row]
		row = lf[row]
	}
	return dst, nil
}

// MTFEncode applies move-to-front coding: each output byte is the current
// list position of the input byte, which is then moved to position 0.
func MTFEncode(src []byte) []byte {
	var list [256]byte
	for i := range list {
		list[i] = byte(i)
	}
	dst := make([]byte, len(src))
	for i, b := range src {
		var pos int
		for list[pos] != b {
			pos++
		}
		dst[i] = byte(pos)
		copy(list[1:pos+1], list[0:pos])
		list[0] = b
	}
	return dst
}

// MTFDecode reverses MTFEncode.
func MTFDecode(src []byte) []byte {
	var list [256]byte
	for i := range list {
		list[i] = byte(i)
	}
	dst := make([]byte, len(src))
	for i, p := range src {
		b := list[p]
		dst[i] = b
		copy(list[1:int(p)+1], list[0:int(p)])
		list[0] = b
	}
	return dst
}

// RLEEncode run-length codes src with the paper's constraint that byte 255
// never appears in the output. Values 0..253 are emitted directly; a run of
// three identical such values is always followed by one count byte giving up
// to 251 additional repeats (total run ≤ 254, the paper's cap). Values 254
// and 255 are escaped as the pairs (254,0) and (254,1).
func RLEEncode(src []byte) []byte {
	dst := make([]byte, 0, len(src)+len(src)/64+8)
	i := 0
	for i < len(src) {
		v := src[i]
		if v >= 254 {
			dst = append(dst, 254, v-254)
			i++
			continue
		}
		run := 1
		for i+run < len(src) && src[i+run] == v && run < 254 {
			run++
		}
		switch {
		case run < 3:
			for j := 0; j < run; j++ {
				dst = append(dst, v)
			}
		default:
			dst = append(dst, v, v, v, byte(run-3))
		}
		i += run
	}
	return dst
}

// RLEDecode reverses RLEEncode. It stops at end of input; encountering the
// reserved byte 255 is an error at this layer (it only appears as the chunk
// marker, which the caller strips).
func RLEDecode(src []byte) ([]byte, error) {
	dst := make([]byte, 0, len(src)*2)
	streak := 0
	var prev byte
	for i := 0; i < len(src); i++ {
		b := src[i]
		switch {
		case b == marker:
			return nil, fmt.Errorf("%w: reserved marker byte inside chunk", ErrCorrupt)
		case b == 254:
			i++
			if i >= len(src) || src[i] > 1 {
				return nil, fmt.Errorf("%w: bad escape", ErrCorrupt)
			}
			dst = append(dst, 254+src[i])
			streak = 0
		default:
			if streak > 0 && b == prev {
				streak++
			} else {
				streak = 1
				prev = b
			}
			dst = append(dst, b)
			if streak == 3 {
				i++
				if i >= len(src) {
					return nil, fmt.Errorf("%w: truncated run count", ErrCorrupt)
				}
				extra := int(src[i])
				if extra > 251 {
					return nil, fmt.Errorf("%w: run count %d exceeds cap", ErrCorrupt, extra)
				}
				for j := 0; j < extra; j++ {
					dst = append(dst, b)
				}
				streak = 0
			}
		}
	}
	return dst, nil
}

// encode7 writes v as four 7-bit bytes (each ≤ 0x7F, so never the marker).
func encode7(dst []byte, v int) []byte {
	return append(dst,
		byte(v>>21&0x7F), byte(v>>14&0x7F), byte(v>>7&0x7F), byte(v&0x7F))
}

func decode7(src []byte) (int, error) {
	if len(src) < 4 {
		return 0, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	v := 0
	for i := 0; i < 4; i++ {
		if src[i] > 0x7F {
			return 0, fmt.Errorf("%w: header byte %#x out of range", ErrCorrupt, src[i])
		}
		v = v<<7 | int(src[i])
	}
	return v, nil
}

// Compress runs the full pipeline with DefaultChunkSize.
func Compress(src []byte) ([]byte, error) {
	return CompressChunked(src, DefaultChunkSize)
}

// CompressChunked runs the full pipeline with an explicit chunk size.
func CompressChunked(src []byte, chunkSize int) ([]byte, error) {
	if len(src) == 0 {
		return nil, nil
	}
	if chunkSize <= 0 {
		return nil, fmt.Errorf("bwt: invalid chunk size %d", chunkSize)
	}
	// Build the marker-delimited intermediate stream.
	inter := make([]byte, 0, len(src)/2+64)
	for off := 0; off < len(src); off += chunkSize {
		end := off + chunkSize
		if end > len(src) {
			end = len(src)
		}
		chunk := src[off:end]
		last, primary := Transform(chunk)
		rle := RLEEncode(MTFEncode(last))
		inter = encode7(inter, len(chunk))
		inter = encode7(inter, primary)
		inter = append(inter, rle...)
		inter = append(inter, marker)
	}
	// Joint Huffman over every chunk (§2.4: "all of the chunks are
	// compressed jointly using Huffman coding").
	hc, err := huffman.Compress(inter)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(hc)+binary.MaxVarintLen64)
	out = binary.AppendUvarint(out, uint64(len(inter)))
	return append(out, hc...), nil
}

// Decompress reverses Compress/CompressChunked, producing exactly origLen
// bytes. The chunk size is self-describing (each chunk header carries its
// original length), so the decoder does not need the encoder's setting.
func Decompress(src []byte, origLen int) ([]byte, error) {
	if origLen == 0 {
		return nil, nil
	}
	interLen, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad stream header", ErrCorrupt)
	}
	if interLen > uint64(origLen)*3+4096 {
		return nil, fmt.Errorf("%w: implausible intermediate length %d", ErrCorrupt, interLen)
	}
	inter, err := huffman.Decompress(src[n:], int(interLen))
	if err != nil {
		return nil, err
	}
	dst := make([]byte, 0, origLen)
	for len(inter) > 0 {
		chunkLen, err := decode7(inter)
		if err != nil {
			return nil, err
		}
		primary, err := decode7(inter[4:])
		if err != nil {
			return nil, err
		}
		inter = inter[8:]
		// Chunk body runs to the next marker byte.
		end := 0
		for end < len(inter) && inter[end] != marker {
			end++
		}
		if end == len(inter) {
			return nil, fmt.Errorf("%w: missing chunk marker", ErrCorrupt)
		}
		mtf, err := RLEDecode(inter[:end])
		if err != nil {
			return nil, err
		}
		if len(mtf) != chunkLen {
			return nil, fmt.Errorf("%w: chunk length %d != header %d", ErrCorrupt, len(mtf), chunkLen)
		}
		chunk, err := Inverse(MTFDecode(mtf), primary)
		if err != nil {
			return nil, err
		}
		dst = append(dst, chunk...)
		if len(dst) > origLen {
			return nil, fmt.Errorf("%w: output exceeds original length", ErrCorrupt)
		}
		inter = inter[end+1:]
	}
	if len(dst) != origLen {
		return nil, fmt.Errorf("%w: produced %d bytes, want %d", ErrCorrupt, len(dst), origLen)
	}
	return dst, nil
}
