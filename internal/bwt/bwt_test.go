package bwt

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTransformKnownVector(t *testing.T) {
	// The canonical BWT example: "banana".
	last, primary := Transform([]byte("banana"))
	// Sorted rotations:
	//   abanan(5) ananab(3)? — verify instead via inverse below, but the
	//   last column of sorted rotations of "banana" is well known: "nnbaaa".
	if string(last) != "nnbaaa" {
		t.Fatalf("last column = %q, want %q", last, "nnbaaa")
	}
	back, err := Inverse(last, primary)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != "banana" {
		t.Fatalf("inverse = %q", back)
	}
}

func TestTransformEmpty(t *testing.T) {
	last, primary := Transform(nil)
	if last != nil || primary != 0 {
		t.Fatalf("got %v %d", last, primary)
	}
	back, err := Inverse(nil, 0)
	if err != nil || back != nil {
		t.Fatalf("got %v %v", back, err)
	}
}

func TestTransformSingle(t *testing.T) {
	last, primary := Transform([]byte{'z'})
	if string(last) != "z" || primary != 0 {
		t.Fatalf("got %q %d", last, primary)
	}
}

func TestTransformPeriodic(t *testing.T) {
	// All rotations of a periodic string are equal per period class; the
	// prefix-doubling loop must terminate and invert correctly.
	for _, s := range []string{"aaaa", "abababab", "xyzxyzxyz"} {
		last, primary := Transform([]byte(s))
		back, err := Inverse(last, primary)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if string(back) != s {
			t.Fatalf("%q: inverse = %q", s, back)
		}
	}
}

func TestTransformIsPermutation(t *testing.T) {
	data := []byte("the burrows wheeler transform permutes but never loses bytes")
	last, _ := Transform(data)
	want := append([]byte(nil), data...)
	got := append([]byte(nil), last...)
	for _, s := range [][]byte{want, got} {
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j-1] > s[j]; j-- {
				s[j-1], s[j] = s[j], s[j-1]
			}
		}
	}
	if !bytes.Equal(want, got) {
		t.Fatal("transform output is not a permutation of input")
	}
}

func TestInverseBadPrimary(t *testing.T) {
	if _, err := Inverse([]byte("abc"), 3); err == nil {
		t.Fatal("expected error for out-of-range primary")
	}
	if _, err := Inverse([]byte("abc"), -1); err == nil {
		t.Fatal("expected error for negative primary")
	}
}

func TestMTFRoundtrip(t *testing.T) {
	cases := [][]byte{
		[]byte("mississippi"),
		{0, 0, 0, 255, 255, 1, 2, 3},
		bytes.Repeat([]byte{9}, 1000),
		{},
	}
	for i, data := range cases {
		enc := MTFEncode(data)
		dec := MTFDecode(enc)
		if !bytes.Equal(dec, data) {
			t.Fatalf("case %d: roundtrip mismatch", i)
		}
	}
}

func TestMTFFrontLoading(t *testing.T) {
	// Repeated bytes must map to zeros after the first occurrence.
	enc := MTFEncode([]byte{7, 7, 7, 7})
	if enc[0] != 7 {
		t.Fatalf("first position = %d, want original list index 7", enc[0])
	}
	for i := 1; i < 4; i++ {
		if enc[i] != 0 {
			t.Fatalf("position %d = %d, want 0", i, enc[i])
		}
	}
}

func TestRLERoundtrip(t *testing.T) {
	cases := [][]byte{
		{},
		{1, 2, 3},
		bytes.Repeat([]byte{0}, 1000),  // long zero run (typical MTF output)
		bytes.Repeat([]byte{5}, 3),     // exactly the triple threshold
		bytes.Repeat([]byte{5}, 254),   // exactly the cap
		bytes.Repeat([]byte{5}, 255),   // one over the cap
		bytes.Repeat([]byte{5}, 600),   // multiple capped runs
		{254, 254, 255, 255, 255, 253}, // escape values
		bytes.Repeat([]byte{255}, 10),  // runs of the escaped value
		{253, 253, 253, 253, 254, 0, 255},
	}
	for i, data := range cases {
		enc := RLEEncode(data)
		for _, b := range enc {
			if b == 255 {
				t.Fatalf("case %d: reserved byte 255 appears in RLE output", i)
			}
		}
		dec, err := RLEDecode(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("case %d: roundtrip mismatch: got %v want %v", i, dec, data)
		}
	}
}

func TestRLENever255(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		data := make([]byte, rng.Intn(5000))
		for i := range data {
			// Bias toward runs and high values.
			if rng.Intn(3) == 0 && i > 0 {
				data[i] = data[i-1]
			} else {
				data[i] = byte(rng.Intn(256))
			}
		}
		enc := RLEEncode(data)
		if bytes.IndexByte(enc, 255) >= 0 {
			t.Fatal("reserved byte in output")
		}
		dec, err := RLEDecode(enc)
		if err != nil || !bytes.Equal(dec, data) {
			t.Fatalf("roundtrip failed: %v", err)
		}
	}
}

func TestRLEDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		{255},          // marker inside chunk
		{254},          // truncated escape
		{254, 2},       // bad escape discriminator
		{7, 7, 7},      // missing run count
		{7, 7, 7, 252}, // run count over cap
	}
	for i, c := range cases {
		if _, err := RLEDecode(c); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func roundtrip(t *testing.T, data []byte, chunk int) {
	t.Helper()
	out, err := CompressChunked(data, chunk)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(out, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatalf("roundtrip mismatch (len %d, chunk %d)", len(data), chunk)
	}
}

func TestCompressRoundtrip(t *testing.T) {
	data := bytes.Repeat([]byte("effective end to end data exchange using configurable compression. "), 500)
	for _, chunk := range []int{64, 1024, DefaultChunkSize, 1 << 20} {
		roundtrip(t, data, chunk)
	}
}

func TestCompressEmpty(t *testing.T) {
	out, err := Compress(nil)
	if err != nil || out != nil {
		t.Fatalf("got %v %v", out, err)
	}
	back, err := Decompress(nil, 0)
	if err != nil || back != nil {
		t.Fatalf("got %v %v", back, err)
	}
}

func TestCompressSmall(t *testing.T) {
	for n := 1; n < 20; n++ {
		data := bytes.Repeat([]byte{'q'}, n)
		roundtrip(t, data, DefaultChunkSize)
	}
}

func TestCompressRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 100, 4096, 50000} {
		data := make([]byte, n)
		rng.Read(data)
		roundtrip(t, data, 8192)
	}
}

func TestCompressAllByteValues(t *testing.T) {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i)
	}
	roundtrip(t, data, 1024)
}

func TestCompressInvalidChunk(t *testing.T) {
	if _, err := CompressChunked([]byte("x"), 0); err == nil {
		t.Fatal("expected error for chunk size 0")
	}
}

func TestCompressionBeatsLZStyleOnText(t *testing.T) {
	// The paper ranks BWT as the strongest method on repetitive text.
	data := bytes.Repeat([]byte("operational information system transaction; airline booking record; "), 1500)
	out, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(len(out)) / float64(len(data)); ratio > 0.10 {
		t.Fatalf("BWT ratio on repetitive text = %.3f, want < 0.10", ratio)
	}
}

func TestDecompressCorrupt(t *testing.T) {
	data := bytes.Repeat([]byte("payload "), 500)
	out, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(out[:len(out)/3], len(data)); err == nil {
		t.Fatal("expected error on truncation")
	}
	if _, err := Decompress([]byte{0x01}, 10); err == nil {
		t.Fatal("expected error on garbage")
	}
	// Wrong original length must be detected.
	if _, err := Decompress(out, len(data)+1); err == nil {
		t.Fatal("expected error on wrong length")
	}
}

func TestQuickTransformRoundtrip(t *testing.T) {
	f := func(data []byte) bool {
		last, primary := Transform(data)
		back, err := Inverse(last, primary)
		if err != nil {
			return false
		}
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPipelineRoundtrip(t *testing.T) {
	f := func(data []byte) bool {
		out, err := CompressChunked(data, 512)
		if err != nil {
			return false
		}
		back, err := Decompress(out, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTransform16K(b *testing.B) {
	motif := []byte("the burrows wheeler transform sorts rotations ")
	data := bytes.Repeat(motif, 16*1024/len(motif)+1)[:16*1024]
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Transform(data)
	}
}

func BenchmarkCompress128K(b *testing.B) {
	motif := []byte("transaction: passenger rebooked ATL->JFK seat 22A; ")
	data := bytes.Repeat(motif, 128*1024/len(motif)+1)[:128*1024]
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress128K(b *testing.B) {
	motif := []byte("transaction: passenger rebooked ATL->JFK seat 22A; ")
	data := bytes.Repeat(motif, 128*1024/len(motif)+1)[:128*1024]
	out, err := Compress(data)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(out, len(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSortRotationsOracle compares the counting-sort rotation sorter against
// a naive string-comparison oracle on random inputs (ties between equal
// rotations may order differently; compare the rotation *strings*).
func TestSortRotationsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(200) + 1
		data := make([]byte, n)
		alphabet := rng.Intn(4) + 1 // small alphabets stress tie handling
		for i := range data {
			data[i] = byte(rng.Intn(1 << (alphabet * 2)))
		}
		rot := func(start int) string {
			return string(data[start:]) + string(data[:start])
		}
		got := sortRotations(data)
		if len(got) != n {
			t.Fatalf("trial %d: %d offsets for n=%d", trial, len(got), n)
		}
		seen := make([]bool, n)
		for i, off := range got {
			if off < 0 || off >= n || seen[off] {
				t.Fatalf("trial %d: bad permutation at %d", trial, i)
			}
			seen[off] = true
			if i > 0 && rot(got[i-1]) > rot(off) {
				t.Fatalf("trial %d: rotations out of order at %d", trial, i)
			}
		}
	}
}
