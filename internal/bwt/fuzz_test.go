package bwt

import (
	"bytes"
	"testing"
)

// FuzzBWTDecode feeds arbitrary bytes through the full inverse pipeline
// (chunk framing → RLE → MTF → inverse BWT). Corrupt primary indices and
// truncated run encodings must error out rather than panic or index out of
// range.
func FuzzBWTDecode(f *testing.F) {
	seeds := [][]byte{
		nil,
		[]byte("banana"),
		bytes.Repeat([]byte("mississippi "), 40),
		bytes.Repeat([]byte{7}, 512),
	}
	for _, s := range seeds {
		comp, err := Compress(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(comp, len(s))
	}
	// A multi-chunk seed so the fuzzer reaches the chunk-boundary logic.
	multi, err := CompressChunked(bytes.Repeat([]byte("abcd"), 600), 1024)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(multi, 2400)
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80}, 16)

	f.Fuzz(func(t *testing.T, data []byte, origLen int) {
		if origLen < 0 || origLen > 1<<20 {
			return
		}
		out, err := Decompress(data, origLen)
		if err != nil {
			return
		}
		if len(out) != origLen {
			t.Fatalf("decoded %d bytes, claimed %d", len(out), origLen)
		}
	})
}
