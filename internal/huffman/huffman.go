// Package huffman implements canonical Huffman coding over arbitrary
// alphabets (§2.1 of the paper). It is used three ways in this repository:
// as the standalone "Huffman" compression method the selector can pick, as
// the entropy coder for Lempel-Ziv back-pointers (§2.3, ref [27]), and as the
// joint final stage of the chunked Burrows-Wheeler pipeline (§2.4).
//
// Canonical codes are assigned in (length, symbol) order, which lets the
// decoder reconstruct the full code book from code lengths alone and gives
// the self-synchronization behaviour the paper relies on for decoding BWT
// chunk streams from arbitrary points (ref [31]).
package huffman

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"ccx/internal/bitio"
)

// MaxCodeLen is the longest code length this implementation emits. Frequency
// scaling keeps trees within this depth, so codes always fit the bitio fast
// path.
const MaxCodeLen = 32

var (
	// ErrEmptyAlphabet is returned when no symbol has a nonzero frequency.
	ErrEmptyAlphabet = errors.New("huffman: no symbols with nonzero frequency")
	// ErrInvalidLengths is returned when a length table does not describe a
	// prefix code (oversubscribed or malformed Kraft sum).
	ErrInvalidLengths = errors.New("huffman: invalid code length table")
	// ErrUnknownSymbol is returned when encoding a symbol with no code.
	ErrUnknownSymbol = errors.New("huffman: symbol has no code")
)

// Code is one canonical codeword.
type Code struct {
	Bits uint64
	Len  uint8
}

type treeNode struct {
	freq        int64
	sym         int // -1 for internal nodes
	left, right int // indices into node pool, -1 for leaves
}

type nodeHeap struct {
	nodes []treeNode
	order []int
}

func (h *nodeHeap) Len() int { return len(h.order) }
func (h *nodeHeap) Less(i, j int) bool {
	a, b := h.nodes[h.order[i]], h.nodes[h.order[j]]
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	// Deterministic tie-break keeps code books reproducible across runs.
	return h.order[i] < h.order[j]
}
func (h *nodeHeap) Swap(i, j int)      { h.order[i], h.order[j] = h.order[j], h.order[i] }
func (h *nodeHeap) Push(x interface{}) { h.order = append(h.order, x.(int)) }
func (h *nodeHeap) Pop() interface{} {
	old := h.order
	n := len(old)
	x := old[n-1]
	h.order = old[:n-1]
	return x
}

// BuildLengths computes canonical code lengths for the given symbol
// frequencies. Symbols with zero frequency receive length 0 (no code). The
// resulting maximum depth never exceeds MaxCodeLen: if the optimal tree is
// deeper, frequencies are repeatedly halved (rounding up) and the tree
// rebuilt, trading a negligible amount of compression for bounded codes.
func BuildLengths(freqs []int64) ([]uint8, error) {
	n := len(freqs)
	lengths := make([]uint8, n)
	live := 0
	last := -1
	for i, f := range freqs {
		if f < 0 {
			return nil, fmt.Errorf("huffman: negative frequency for symbol %d", i)
		}
		if f > 0 {
			live++
			last = i
		}
	}
	if live == 0 {
		return nil, ErrEmptyAlphabet
	}
	if live == 1 {
		// A single-symbol alphabet still needs one bit per symbol so the
		// decoder can count symbols.
		lengths[last] = 1
		return lengths, nil
	}

	work := make([]int64, n)
	copy(work, freqs)
	for {
		depths := buildTreeDepths(work)
		maxDepth := uint8(0)
		for i, d := range depths {
			lengths[i] = d
			if d > maxDepth {
				maxDepth = d
			}
		}
		if maxDepth <= MaxCodeLen {
			return lengths, nil
		}
		for i := range work {
			if work[i] > 0 {
				work[i] = work[i]/2 + 1
			}
		}
	}
}

// buildTreeDepths runs the classic two-queue/heap Huffman construction and
// returns the leaf depth per symbol.
func buildTreeDepths(freqs []int64) []uint8 {
	n := len(freqs)
	nodes := make([]treeNode, 0, 2*n)
	h := &nodeHeap{nodes: nil}
	for i, f := range freqs {
		if f > 0 {
			nodes = append(nodes, treeNode{freq: f, sym: i, left: -1, right: -1})
		}
	}
	h.nodes = nodes
	h.order = make([]int, len(nodes))
	for i := range h.order {
		h.order[i] = i
	}
	heap.Init(h)
	for h.Len() > 1 {
		a := heap.Pop(h).(int)
		b := heap.Pop(h).(int)
		h.nodes = append(h.nodes, treeNode{
			freq: h.nodes[a].freq + h.nodes[b].freq,
			sym:  -1, left: a, right: b,
		})
		heap.Push(h, len(h.nodes)-1)
	}
	root := h.order[0]
	depths := make([]uint8, n)
	// Iterative DFS with explicit stack; recursion depth could otherwise be
	// large for skewed trees.
	type frame struct {
		node  int
		depth uint8
	}
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := h.nodes[f.node]
		if nd.sym >= 0 {
			depths[nd.sym] = f.depth
			continue
		}
		stack = append(stack, frame{nd.left, f.depth + 1}, frame{nd.right, f.depth + 1})
	}
	return depths
}

// canonicalCodes assigns canonical codewords for the given lengths.
func canonicalCodes(lengths []uint8) ([]Code, error) {
	var lenCount [MaxCodeLen + 1]int
	maxLen := uint8(0)
	for _, l := range lengths {
		if l > MaxCodeLen {
			return nil, ErrInvalidLengths
		}
		if l > 0 {
			lenCount[l]++
			if l > maxLen {
				maxLen = l
			}
		}
	}
	if maxLen == 0 {
		return nil, ErrInvalidLengths
	}
	// Kraft-McMillan check: sum 2^-l must not exceed 1.
	var kraft uint64
	unit := uint64(1) << maxLen
	for l := uint8(1); l <= maxLen; l++ {
		kraft += uint64(lenCount[l]) << (maxLen - l)
	}
	if kraft > unit {
		return nil, ErrInvalidLengths
	}
	var nextCode [MaxCodeLen + 2]uint64
	code := uint64(0)
	for l := uint8(1); l <= maxLen; l++ {
		code = (code + uint64(lenCount[l-1])) << 1
		nextCode[l] = code
	}
	codes := make([]Code, len(lengths))
	for sym, l := range lengths {
		if l == 0 {
			continue
		}
		codes[sym] = Code{Bits: nextCode[l], Len: l}
		nextCode[l]++
	}
	return codes, nil
}

// Encoder encodes symbols with a canonical code book.
type Encoder struct {
	codes []Code
}

// NewEncoder builds an encoder from code lengths.
func NewEncoder(lengths []uint8) (*Encoder, error) {
	codes, err := canonicalCodes(lengths)
	if err != nil {
		return nil, err
	}
	return &Encoder{codes: codes}, nil
}

// Encode writes the code for sym.
func (e *Encoder) Encode(w *bitio.Writer, sym int) error {
	if sym < 0 || sym >= len(e.codes) || e.codes[sym].Len == 0 {
		return fmt.Errorf("%w: %d", ErrUnknownSymbol, sym)
	}
	c := e.codes[sym]
	return w.WriteBits(c.Bits, uint(c.Len))
}

// CodeLen reports the code length for sym in bits (0 if sym has no code).
func (e *Encoder) CodeLen(sym int) int {
	if sym < 0 || sym >= len(e.codes) {
		return 0
	}
	return int(e.codes[sym].Len)
}

// tableBits sizes the one-level fast decode table: codes up to this long
// resolve with a single peek, longer ones fall back to the canonical walk.
const tableBits = 10

// Decoder decodes canonical Huffman codes. Short codes (≤ tableBits) hit a
// one-level lookup table; longer codes fall back to walking the per-length
// first-code table, which is O(code length) per symbol. Both paths are
// allocation-free.
type Decoder struct {
	maxLen    uint8
	firstCode [MaxCodeLen + 1]uint64 // first canonical code of each length
	firstSym  [MaxCodeLen + 1]int    // index into syms of that code
	lenCount  [MaxCodeLen + 1]int
	syms      []int // symbols sorted by (length, symbol)
	// fast maps a tableBits-bit prefix to sym<<6 | codeLen; codeLen 0 marks
	// prefixes of longer codes (slow path).
	fast []uint32
}

// NewDecoder builds a decoder from code lengths.
func NewDecoder(lengths []uint8) (*Decoder, error) {
	codes, err := canonicalCodes(lengths)
	if err != nil {
		return nil, err
	}
	d := &Decoder{}
	type ls struct {
		sym int
		l   uint8
	}
	pairs := make([]ls, 0, len(lengths))
	for sym, l := range lengths {
		if l > 0 {
			pairs = append(pairs, ls{sym, l})
			d.lenCount[l]++
			if l > d.maxLen {
				d.maxLen = l
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].l != pairs[j].l {
			return pairs[i].l < pairs[j].l
		}
		return pairs[i].sym < pairs[j].sym
	})
	d.syms = make([]int, len(pairs))
	for i, p := range pairs {
		d.syms[i] = p.sym
	}
	idx := 0
	for l := uint8(1); l <= d.maxLen; l++ {
		if d.lenCount[l] > 0 {
			first := pairs[idx].sym
			d.firstCode[l] = codes[first].Bits
			d.firstSym[l] = idx
			idx += d.lenCount[l]
		}
	}
	d.buildFastTable(codes)
	return d, nil
}

// buildFastTable fills the one-level lookup for codes of length ≤ tableBits.
func (d *Decoder) buildFastTable(codes []Code) {
	d.fast = make([]uint32, 1<<tableBits)
	for sym, c := range codes {
		if c.Len == 0 || c.Len > tableBits {
			continue
		}
		entry := uint32(sym)<<6 | uint32(c.Len)
		shift := tableBits - uint(c.Len)
		base := c.Bits << shift
		for fill := uint64(0); fill < 1<<shift; fill++ {
			d.fast[base|fill] = entry
		}
	}
}

// Decode reads one symbol.
func (d *Decoder) Decode(r *bitio.Reader) (int, error) {
	// Fast path: resolve short codes with one table lookup. Valid even near
	// the end of input as long as the code itself fits in the available
	// bits (the peek zero-pads, which cannot turn a complete short code
	// into a different one because the table is indexed by prefix).
	if prefix, avail := r.PeekBits(tableBits); avail > 0 {
		entry := d.fast[prefix]
		if l := entry & 0x3F; l != 0 && uint(l) <= avail {
			if err := r.SkipBits(uint(l)); err != nil {
				return 0, err
			}
			return int(entry >> 6), nil
		}
	}
	var code uint64
	for l := uint8(1); l <= d.maxLen; l++ {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint64(bit)
		if l <= tableBits {
			continue // short codes were handled by the fast path
		}
		if cnt := d.lenCount[l]; cnt > 0 {
			off := code - d.firstCode[l]
			if code >= d.firstCode[l] && off < uint64(cnt) {
				return d.syms[d.firstSym[l]+int(off)], nil
			}
		}
	}
	return 0, ErrInvalidLengths
}

// MaxLen reports the longest code length in the book.
func (d *Decoder) MaxLen() int { return int(d.maxLen) }

// WriteLengths serializes a code-length table compactly: each entry is 6
// bits; a zero entry is followed by an 8-bit extra giving how many additional
// zeros follow (run-length coding of the common all-zero gaps).
func WriteLengths(w *bitio.Writer, lengths []uint8) error {
	for i := 0; i < len(lengths); {
		l := lengths[i]
		if err := w.WriteBits(uint64(l), 6); err != nil {
			return err
		}
		if l != 0 {
			i++
			continue
		}
		run := 0
		for i+run+1 < len(lengths) && lengths[i+run+1] == 0 && run < 255 {
			run++
		}
		if err := w.WriteBits(uint64(run), 8); err != nil {
			return err
		}
		i += run + 1
	}
	return nil
}

// ReadLengths reads a table of n code lengths written by WriteLengths.
func ReadLengths(r *bitio.Reader, n int) ([]uint8, error) {
	lengths := make([]uint8, n)
	for i := 0; i < n; {
		v, err := r.ReadBits(6)
		if err != nil {
			return nil, err
		}
		if v != 0 {
			lengths[i] = uint8(v)
			i++
			continue
		}
		run, err := r.ReadBits(8)
		if err != nil {
			return nil, err
		}
		i += int(run) + 1
	}
	return lengths, nil
}

// Histogram counts byte frequencies in src into a 256-entry table.
func Histogram(src []byte) []int64 {
	freqs := make([]int64, 256)
	for _, b := range src {
		freqs[b]++
	}
	return freqs
}

// Compress encodes src with an order-0 byte Huffman code. The output layout
// is: code-length table, then the coded symbols. The caller must remember
// len(src) to decompress (the codec framing layer stores it).
func Compress(src []byte) ([]byte, error) {
	if len(src) == 0 {
		return nil, nil
	}
	lengths, err := BuildLengths(Histogram(src))
	if err != nil {
		return nil, err
	}
	enc, err := NewEncoder(lengths)
	if err != nil {
		return nil, err
	}
	w := bitio.NewWriter(len(src)/2 + 64)
	if err := WriteLengths(w, lengths); err != nil {
		return nil, err
	}
	for _, b := range src {
		if err := enc.Encode(w, int(b)); err != nil {
			return nil, err
		}
	}
	return w.Bytes(), nil
}

// Decompress reverses Compress, producing exactly origLen bytes.
func Decompress(src []byte, origLen int) ([]byte, error) {
	if origLen == 0 {
		return nil, nil
	}
	r := bitio.NewReader(src)
	lengths, err := ReadLengths(r, 256)
	if err != nil {
		return nil, err
	}
	dec, err := NewDecoder(lengths)
	if err != nil {
		return nil, err
	}
	dst := make([]byte, origLen)
	for i := range dst {
		sym, err := dec.Decode(r)
		if err != nil {
			return nil, err
		}
		dst[i] = byte(sym)
	}
	return dst, nil
}
