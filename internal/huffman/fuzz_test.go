package huffman

import (
	"bytes"
	"testing"
)

// FuzzHuffmanDecode feeds arbitrary bytes to Decompress. The decoder must
// never panic or allocate proportionally to attacker-claimed lengths, only
// to what it actually decodes; any malformed input must surface as an error.
func FuzzHuffmanDecode(f *testing.F) {
	seeds := [][]byte{
		nil,
		[]byte("a"),
		[]byte("the quick brown fox jumps over the lazy dog"),
		bytes.Repeat([]byte("abab"), 64),
		bytes.Repeat([]byte{0}, 300),
	}
	for _, s := range seeds {
		comp, err := Compress(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(comp, len(s))
	}
	f.Add([]byte{0xff, 0xff, 0xff}, 10)

	f.Fuzz(func(t *testing.T, data []byte, origLen int) {
		if origLen < 0 || origLen > 1<<20 {
			return // bound allocation: real callers clamp via frame limits
		}
		out, err := Decompress(data, origLen)
		if err != nil {
			return
		}
		if len(out) != origLen {
			t.Fatalf("decoded %d bytes, claimed %d", len(out), origLen)
		}
	})
}
