package huffman

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"ccx/internal/bitio"
)

func TestBuildLengthsBasic(t *testing.T) {
	// Classic example: probabilities 0.4, 0.3, 0.2, 0.1 over 4 symbols.
	freqs := []int64{40, 30, 20, 10}
	lengths, err := BuildLengths(freqs)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal average length is 1.9 bits; verify Kraft equality and that the
	// most frequent symbol has the shortest code.
	if lengths[0] > lengths[1] || lengths[1] > lengths[2] || lengths[2] > lengths[3] {
		t.Fatalf("lengths not monotone with frequency: %v", lengths)
	}
	var kraft float64
	for _, l := range lengths {
		kraft += 1 / float64(uint64(1)<<l)
	}
	if kraft != 1.0 {
		t.Fatalf("kraft sum = %v, want exactly 1 for a complete code", kraft)
	}
}

func TestBuildLengthsSingleSymbol(t *testing.T) {
	freqs := make([]int64, 256)
	freqs[65] = 100
	lengths, err := BuildLengths(freqs)
	if err != nil {
		t.Fatal(err)
	}
	if lengths[65] != 1 {
		t.Fatalf("single symbol length = %d, want 1", lengths[65])
	}
	for i, l := range lengths {
		if i != 65 && l != 0 {
			t.Fatalf("symbol %d has spurious length %d", i, l)
		}
	}
}

func TestBuildLengthsEmpty(t *testing.T) {
	if _, err := BuildLengths(make([]int64, 256)); err != ErrEmptyAlphabet {
		t.Fatalf("got %v want ErrEmptyAlphabet", err)
	}
}

func TestBuildLengthsNegative(t *testing.T) {
	if _, err := BuildLengths([]int64{1, -1}); err == nil {
		t.Fatal("expected error for negative frequency")
	}
}

func TestDepthLimiting(t *testing.T) {
	// Fibonacci frequencies force maximal Huffman depth; with enough symbols
	// the unconstrained tree exceeds MaxCodeLen and scaling must kick in.
	n := 64
	freqs := make([]int64, n)
	a, b := int64(1), int64(1)
	for i := 0; i < n; i++ {
		freqs[i] = a
		a, b = b, a+b
		if a < 0 { // overflow guard
			a = 1 << 60
		}
	}
	lengths, err := BuildLengths(freqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range lengths {
		if l > MaxCodeLen {
			t.Fatalf("symbol %d: length %d exceeds MaxCodeLen", i, l)
		}
		if l == 0 {
			t.Fatalf("symbol %d lost its code", i)
		}
	}
	// The limited lengths must still form a valid prefix code.
	if _, err := NewDecoder(lengths); err != nil {
		t.Fatalf("limited lengths not decodable: %v", err)
	}
}

func TestCanonicalOrdering(t *testing.T) {
	freqs := []int64{10, 10, 10, 10}
	lengths, _ := BuildLengths(freqs)
	enc, err := NewEncoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	// All codes are 2 bits; canonical assignment is by symbol order.
	for sym := 0; sym < 4; sym++ {
		if enc.codes[sym].Bits != uint64(sym) {
			t.Fatalf("canonical code for %d = %b", sym, enc.codes[sym].Bits)
		}
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog; " +
		"the quick brown fox jumps over the lazy dog again and again")
	out, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(out, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatalf("roundtrip mismatch:\n got %q\nwant %q", back, data)
	}
}

func TestCompressEmpty(t *testing.T) {
	out, err := Compress(nil)
	if err != nil || out != nil {
		t.Fatalf("Compress(nil) = %v, %v", out, err)
	}
	back, err := Decompress(nil, 0)
	if err != nil || back != nil {
		t.Fatalf("Decompress(nil,0) = %v, %v", back, err)
	}
}

func TestCompressSingleByte(t *testing.T) {
	data := []byte{42}
	out, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(out, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatalf("got %v", back)
	}
}

func TestCompressUniformByte(t *testing.T) {
	data := bytes.Repeat([]byte{7}, 10000)
	out, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	// Single-symbol stream: ~1 bit/symbol plus table ≈ 1.3 KB.
	if len(out) > 2000 {
		t.Fatalf("uniform data compressed to %d bytes, expected < 2000", len(out))
	}
	back, err := Decompress(out, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestCompressLowEntropyBeatsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	low := make([]byte, 64*1024)
	for i := range low {
		low[i] = byte(rng.Intn(4)) // 2 bits of entropy per byte
	}
	random := make([]byte, 64*1024)
	rng.Read(random)
	outLow, _ := Compress(low)
	outRand, _ := Compress(random)
	if len(outLow) >= len(low)/2 {
		t.Fatalf("low-entropy data: got %d bytes, expected < %d", len(outLow), len(low)/2)
	}
	if len(outRand) < len(random) {
		t.Logf("random data compressed to %d (incompressible as expected ~%d)", len(outRand), len(random))
	}
}

func TestWriteReadLengths(t *testing.T) {
	cases := [][]uint8{
		{0, 0, 0, 5, 0, 0, 2, 2, 3},
		make([]uint8, 256), // all zero runs
		{1, 1},
	}
	cases[1][255] = 8
	for ci, lengths := range cases {
		w := bitio.NewWriter(0)
		if err := WriteLengths(w, lengths); err != nil {
			t.Fatal(err)
		}
		r := bitio.NewReader(w.Bytes())
		got, err := ReadLengths(r, len(lengths))
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if !bytes.Equal(got, lengths) {
			t.Fatalf("case %d: got %v want %v", ci, got, lengths)
		}
	}
}

func TestInvalidLengthTable(t *testing.T) {
	// Oversubscribed: three codes of length 1.
	if _, err := NewDecoder([]uint8{1, 1, 1}); err == nil {
		t.Fatal("expected error for oversubscribed lengths")
	}
	if _, err := NewEncoder([]uint8{0, 0}); err == nil {
		t.Fatal("expected error for empty code book")
	}
}

func TestEncodeUnknownSymbol(t *testing.T) {
	enc, err := NewEncoder([]uint8{1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(0)
	if err := enc.Encode(w, 2); err == nil {
		t.Fatal("expected ErrUnknownSymbol")
	}
	if err := enc.Encode(w, 99); err == nil {
		t.Fatal("expected ErrUnknownSymbol for out-of-range")
	}
}

func TestLargeAlphabet(t *testing.T) {
	// LZ uses alphabets larger than 256 (length/distance symbol spaces).
	n := 1024
	freqs := make([]int64, n)
	rng := rand.New(rand.NewSource(2))
	for i := range freqs {
		freqs[i] = int64(rng.Intn(1000) + 1)
	}
	lengths, err := BuildLengths(freqs)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(0)
	syms := make([]int, 5000)
	for i := range syms {
		syms[i] = rng.Intn(n)
		if err := enc.Encode(w, syms[i]); err != nil {
			t.Fatal(err)
		}
	}
	r := bitio.NewReader(w.Bytes())
	for i, want := range syms {
		got, err := dec.Decode(r)
		if err != nil {
			t.Fatalf("symbol %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("symbol %d: got %d want %d", i, got, want)
		}
	}
}

// TestQuickRoundtrip is the core property: Decompress(Compress(x)) == x for
// arbitrary byte strings.
func TestQuickRoundtrip(t *testing.T) {
	f := func(data []byte) bool {
		out, err := Compress(data)
		if err != nil {
			return false
		}
		back, err := Decompress(out, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSelfSynchronization exercises the property from ref [31] the paper's
// BWT chunk format depends on: starting a canonical Huffman decode from an
// arbitrary bit offset re-synchronizes after a bounded number of symbols for
// typical codes. We verify the decoder recovers the tail of the stream.
func TestSelfSynchronization(t *testing.T) {
	data := bytes.Repeat([]byte("abracadabra synchronization test "), 200)
	lengths, err := BuildLengths(Histogram(data))
	if err != nil {
		t.Fatal(err)
	}
	enc, _ := NewEncoder(lengths)
	dec, _ := NewDecoder(lengths)
	w := bitio.NewWriter(0)
	for _, b := range data {
		enc.Encode(w, int(b))
	}
	full := w.Bytes()
	// Start decoding from a byte offset in the middle.
	r := bitio.NewReader(full[len(full)/2:])
	decoded := 0
	matchedTail := 0
	for {
		sym, err := dec.Decode(r)
		if err != nil {
			break
		}
		decoded++
		if bytes.IndexByte(data, byte(sym)) >= 0 {
			matchedTail++
		}
	}
	if decoded == 0 {
		t.Fatal("mid-stream decode produced nothing")
	}
	// All decoded symbols must come from the source alphabet: decoding
	// re-locks onto valid codewords.
	if matchedTail != decoded {
		t.Fatalf("decoded %d symbols but only %d were in-alphabet", decoded, matchedTail)
	}
}

func BenchmarkCompress64K(b *testing.B) {
	motif := []byte("operational information system record;")
	data := bytes.Repeat(motif, 64*1024/len(motif)+1)[:64*1024]
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress64K(b *testing.B) {
	motif := []byte("operational information system record;")
	data := bytes.Repeat(motif, 64*1024/len(motif)+1)[:64*1024]
	out, err := Compress(data)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(out, len(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestLongCodesBeyondFastTable builds a skewed code book whose rare symbols
// get codes longer than the fast-table width, forcing the slow decode path.
func TestLongCodesBeyondFastTable(t *testing.T) {
	n := 300
	freqs := make([]int64, n)
	// Geometric-ish skew: a handful of very hot symbols, a long cold tail.
	for i := range freqs {
		switch {
		case i < 4:
			freqs[i] = 1 << 30
		case i < 16:
			freqs[i] = 1 << 18
		default:
			freqs[i] = 1
		}
	}
	lengths, err := BuildLengths(freqs)
	if err != nil {
		t.Fatal(err)
	}
	maxLen := uint8(0)
	for _, l := range lengths {
		if l > maxLen {
			maxLen = l
		}
	}
	if maxLen <= tableBits {
		t.Fatalf("maxLen = %d, test needs codes beyond the %d-bit fast table", maxLen, tableBits)
	}
	enc, err := NewEncoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	w := bitio.NewWriter(0)
	syms := make([]int, 4000)
	for i := range syms {
		if rng.Intn(3) == 0 {
			syms[i] = 16 + rng.Intn(n-16) // cold, long-code symbols
		} else {
			syms[i] = rng.Intn(16)
		}
		if err := enc.Encode(w, syms[i]); err != nil {
			t.Fatal(err)
		}
	}
	r := bitio.NewReader(w.Bytes())
	for i, want := range syms {
		got, err := dec.Decode(r)
		if err != nil {
			t.Fatalf("symbol %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("symbol %d: got %d want %d", i, got, want)
		}
	}
}
