package core

import "sync"

// DeliveryTracker enforces exactly-once, in-order delivery over sequenced
// frame streams (codec version-3 frames carrying per-channel sequence
// numbers). It survives reconnects: a Reader consults it per block, and the
// resume handshake consults it for the last contiguously delivered
// sequence to present to the broker.
//
// The model is a cursor, not a window: the broker replays from the ring in
// order and TCP preserves ordering within a connection, so a block is
// either the next expected sequence (deliver), at or below the cursor (a
// replayed duplicate — drop), or ahead of the cursor (everything between
// is lost — deliver and account the gap explicitly).
//
// All methods are safe for concurrent use, though a single Reader is the
// typical caller.
type DeliveryTracker struct {
	mu      sync.Mutex
	started bool
	last    uint64 // highest sequence delivered; all ≤ last are settled

	delivered uint64
	dups      uint64
	gapEvents uint64
	gapBlocks uint64
}

// DeliveryStats is a point-in-time snapshot of a tracker's accounting.
type DeliveryStats struct {
	// Delivered counts blocks passed through to the consumer.
	Delivered uint64
	// Dups counts replayed or repeated blocks that were suppressed.
	Dups uint64
	// GapEvents counts discontinuities observed (however many blocks each
	// spanned); GapBlocks counts the blocks known lost across all of them.
	GapEvents uint64
	GapBlocks uint64
	// Last is the highest delivered sequence; Started reports whether any
	// sequenced block has been seen at all.
	Last    uint64
	Started bool
}

// Observe decides the fate of one received block with sequence seq:
// deliver reports whether the consumer should see it (false = duplicate),
// and gap is the number of blocks that are now known lost immediately
// before it (0 on a contiguous stream).
func (t *DeliveryTracker) Observe(seq uint64) (deliver bool, gap uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.started && seq <= t.last {
		t.dups++
		return false, 0
	}
	if t.started && seq > t.last+1 {
		gap = seq - t.last - 1
	} else if !t.started && seq > 1 {
		// A fresh subscriber's first block legitimately starts mid-stream
		// (it joined live); that is a join point, not a loss. Gaps before
		// the first block are reported only via NoteGap (the resume
		// handshake's explicit verdict).
		gap = 0
	}
	if gap > 0 {
		t.gapEvents++
		t.gapBlocks += gap
	}
	t.started = true
	t.last = seq
	t.delivered++
	return true, gap
}

// NoteGap records blocks reported lost out-of-band — the broker's resume
// reply saying the replay window no longer reaches the resume point.
func (t *DeliveryTracker) NoteGap(blocks uint64) {
	if blocks == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gapEvents++
	t.gapBlocks += blocks
}

// SkipTo advances the cursor past a gap the transport has already
// surfaced, so the next delivered block (first-1 … onward) is not
// double-counted as a second discontinuity. It never rewinds.
func (t *DeliveryTracker) SkipTo(first uint64) {
	if first == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started || first-1 > t.last {
		t.started = true
		t.last = first - 1
	}
}

// LastDelivered returns the last contiguously delivered sequence number
// and whether any sequenced block has been delivered yet — exactly the
// state a resume handshake presents.
func (t *DeliveryTracker) LastDelivered() (uint64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.last, t.started
}

// Stats snapshots the tracker's accounting.
func (t *DeliveryTracker) Stats() DeliveryStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return DeliveryStats{
		Delivered: t.delivered,
		Dups:      t.dups,
		GapEvents: t.gapEvents,
		GapBlocks: t.gapBlocks,
		Last:      t.last,
		Started:   t.started,
	}
}
