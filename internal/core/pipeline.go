package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ccx/internal/codec"
	"ccx/internal/selector"
	"ccx/internal/tracing"
)

// Pipeline runs the engine's per-block loop on a bounded worker pool: each
// worker executes Engine.Decide plus the frame encode on its own block while
// a sequencer emits the finished frames strictly in submission order. The
// wire stream is therefore byte-identical to the sequential Session's output
// for the same sequence of method decisions — v3 sequence numbers, the
// broker's replay ring, and resume semantics are all untouched, because
// nothing downstream can tell the frames were compressed out of order.
//
// The paper treats compression CPU cost as the bottleneck that forces the
// selector toward weaker methods; block-structured formats parallelize
// trivially (each block's code tables are self-contained), so on multi-core
// senders the pipeline multiplies the available "reducing speed" without
// changing what crosses the wire.
//
// Concurrency contract: Submit/SubmitSeq/Close are single-owner calls — one
// goroutine drives the pipeline, the internal workers provide parallelism
// (matching io.Writer convention). Err may be called from anywhere.
//
// Buffer ownership: Submit does NOT copy the block. The caller must not
// mutate it until its BlockResult has been emitted (onBlock fired) or Close
// returned. Frames are encoded into sync.Pool-recycled buffers owned by the
// pipeline; the send function must not retain the frame slice past its
// return.
//
// Probing: workers do not use the paper's probe-ahead overlap (Engine's
// pending-probe slot is a per-stream scalar, meaningless with several
// blocks in flight). Each Decide probes its own block synchronously on the
// worker, so probe cost parallelizes along with the encode.
type Pipeline struct {
	e       *Engine
	send    SendFunc
	onBlock func(BlockResult)
	workers int

	jobs  chan pipeJob
	order chan chan pipeResult
	done  chan struct{}
	wg    sync.WaitGroup

	bufs sync.Pool // *[]byte frame scratch, recycled across blocks

	mu     sync.Mutex
	err    error
	closed bool
	index  int // ordinal of the next submitted block
}

type pipeJob struct {
	index  int
	block  []byte
	seq    uint64
	hasSeq bool
	hb     bool // heartbeat: empty None frame, no telemetry
	// preDecided skips Engine.Decide: the caller already selected method
	// (the encode plane runs one selection per method-equivalence class).
	preDecided bool
	method     codec.Method
	// anno is the frame's v4 annotation (nil = unannotated): stamped at
	// submit when this pipeline is the trace origin, or handed down by the
	// encode plane propagating an upstream publisher's context. tc is its
	// parsed trace context, kept alongside for span linkage.
	anno []byte
	tc   tracing.Context
	out  chan pipeResult
}

type pipeResult struct {
	res   BlockResult
	frame []byte
	buf   *[]byte
	hb    bool
	tc    tracing.Context
	seq   uint64
	err   error
}

// ErrPipelineClosed reports Submit after Close.
var ErrPipelineClosed = errors.New("core: pipeline is closed")

// NewPipeline starts a pipeline over e that transmits frames through send
// (in submission order, from a single sequencer goroutine). workers <= 0
// means GOMAXPROCS. onBlock, when non-nil, observes every emitted block in
// order; it runs on the sequencer goroutine, so it must not block the
// stream for long.
func NewPipeline(e *Engine, send SendFunc, workers int, onBlock func(BlockResult)) *Pipeline {
	return newPipeline(e, send, workers, 0, onBlock)
}

func newPipeline(e *Engine, send SendFunc, workers, baseIndex int, onBlock func(BlockResult)) *Pipeline {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pipeline{
		e:       e,
		send:    send,
		onBlock: onBlock,
		workers: workers,
		jobs:    make(chan pipeJob),
		order:   make(chan chan pipeResult, workers*2),
		done:    make(chan struct{}),
		index:   baseIndex,
	}
	p.bufs.New = func() any { return new([]byte) }
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	go p.emit()
	return p
}

// Workers returns the pool size.
func (p *Pipeline) Workers() int { return p.workers }

// Submit enqueues one block for compression and in-order transmission. An
// empty (or nil) block is sent as a zero-length None frame — the heartbeat
// convention — bypassing the selector and telemetry. Submit is asynchronous;
// errors from earlier blocks surface on later Submits or on Close.
func (p *Pipeline) Submit(block []byte) error { return p.submit(pipeJob{block: block}) }

// SubmitSeq is Submit with a per-channel block sequence number: the frame
// is emitted in version-3 format carrying seq (see codec.AppendFrameSeq).
func (p *Pipeline) SubmitSeq(block []byte, seq uint64) error {
	return p.submit(pipeJob{block: block, seq: seq, hasSeq: true})
}

// SubmitMethod enqueues a non-empty block whose compression method the
// caller already selected, bypassing Engine.Decide on the worker. The encode
// plane uses this to run selection once per method-equivalence class while
// distinct (block, method) pairs still compress concurrently. The frame is
// emitted in version-3 format carrying seq.
func (p *Pipeline) SubmitMethod(block []byte, m codec.Method, seq uint64) error {
	return p.submit(pipeJob{block: block, seq: seq, hasSeq: true, preDecided: true, method: m})
}

// SubmitMethodAnno is SubmitMethod for a block carrying a frame annotation:
// anno is copied verbatim into the emitted v4 frame (propagating whatever
// TLVs an upstream hop stamped), and tc — its parsed trace context — links
// the encode/write spans this pipeline records to the originating trace.
func (p *Pipeline) SubmitMethodAnno(block []byte, m codec.Method, seq uint64, anno []byte, tc tracing.Context) error {
	return p.submit(pipeJob{block: block, seq: seq, hasSeq: true, preDecided: true, method: m, anno: anno, tc: tc})
}

func (p *Pipeline) submit(job pipeJob) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPipelineClosed
	}
	if p.err != nil {
		err := p.err
		p.mu.Unlock()
		return err
	}
	job.hb = len(job.block) == 0
	job.out = make(chan pipeResult, 1)
	if !job.hb {
		job.index = p.index
		p.index++
	}
	p.mu.Unlock()
	// Origin sampling: when this pipeline starts the trace (nothing
	// upstream annotated the block), the head-based decision happens here,
	// before the job races the worker pool.
	if tr := p.e.tel.Tracer; !job.hb && len(job.anno) == 0 && !job.preDecided && tr.Sample() {
		job.tc = tr.NewContext()
		if !job.hasSeq {
			job.seq, job.hasSeq = uint64(job.index)+1, true
		}
		job.anno = job.tc.AppendAnno(nil)
		tr.Record(tracing.Span{Trace: job.tc.Trace, Seq: job.seq, Stream: p.e.tel.Stream, Stage: tracing.StageStamp, Start: job.tc.WallNs})
	}
	if ins := p.e.tx; ins != nil {
		ins.pipeDepth.Add(1)
	}
	// The order channel fixes the emission sequence before the job races
	// the worker pool; its bound (2×workers) is the pipeline depth.
	p.order <- job.out
	p.jobs <- job
	return nil
}

// Err returns the first compression or transmission error, if any.
func (p *Pipeline) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Close waits for every submitted block to be compressed and transmitted,
// stops the workers, and returns the first error encountered. It is
// idempotent.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	if p.closed {
		err := p.err
		p.mu.Unlock()
		return err
	}
	p.closed = true
	p.mu.Unlock()
	close(p.jobs)
	p.wg.Wait()
	close(p.order)
	<-p.done
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

func (p *Pipeline) worker() {
	defer p.wg.Done()
	for job := range p.jobs {
		job.out <- p.encode(job)
	}
}

// encode runs one block's Decide + frame encode on the calling worker,
// into a pooled buffer.
func (p *Pipeline) encode(job pipeJob) pipeResult {
	e := p.e
	bufp := p.bufs.Get().(*[]byte)
	if job.hb {
		frame, _, err := codec.AppendFrame((*bufp)[:0], e.reg, codec.None, nil)
		return pipeResult{frame: frame, buf: bufp, hb: true, err: err}
	}
	res := BlockResult{Index: job.index, Workers: p.workers}
	if job.preDecided {
		res.Decision = selector.Decision{Method: job.method}
	} else {
		res.Decision = e.Decide(job.block)
	}
	res.Decision.Trace = job.tc.Trace
	start := e.now()
	frame, info, err := codec.AppendFrameOpts((*bufp)[:0], e.reg, res.Decision.Method, job.block,
		codec.FrameOpts{Seq: job.seq, HasSeq: job.hasSeq, Anno: job.anno})
	res.Info = info
	res.CompressTime = e.now().Sub(start)
	if scale := e.smp.SpeedScale; scale > 0 && scale != 1 {
		res.CompressTime = time.Duration(float64(res.CompressTime) * scale)
	}
	if err != nil {
		return pipeResult{buf: bufp, err: fmt.Errorf("core: encode block %d: %w", res.Index, err)}
	}
	res.WireBytes = len(frame)
	seq := job.seq
	if !job.hasSeq {
		seq = uint64(job.index) + 1
	}
	return pipeResult{res: res, frame: frame, buf: bufp, tc: job.tc, seq: seq}
}

// emit is the sequencer: it drains results strictly in submission order,
// transmits each frame, and feeds the realized outcome back into the
// monitor and telemetry — the same end-to-end feedback the sequential loop
// produces, just decoupled from the encode.
func (p *Pipeline) emit() {
	defer close(p.done)
	for out := range p.order {
		waitStart := time.Now()
		r := <-out
		wait := time.Since(waitStart)
		if ins := p.e.tx; ins != nil {
			ins.pipeDepth.Add(-1)
			ins.pipeWait.ObserveDuration(wait)
		}
		p.mu.Lock()
		failed := p.err != nil
		if !failed && r.err != nil {
			p.err = r.err
			failed = true
		}
		p.mu.Unlock()
		if failed {
			p.recycle(r)
			continue // drain the remaining in-flight results without sending
		}
		d, err := p.send(r.frame)
		if err != nil {
			p.mu.Lock()
			if r.hb {
				p.err = fmt.Errorf("core: send heartbeat: %w", err)
			} else {
				p.err = fmt.Errorf("core: send block %d: %w", r.res.Index, err)
			}
			p.mu.Unlock()
			p.recycle(r)
			continue
		}
		if !r.hb {
			r.res.SendTime = d
			r.res.PipelineWait = wait
			p.e.mon.Observe(len(r.frame), d)
			if r.tc.Valid() {
				p.e.recordTxSpans(r.tc, r.seq, r.res, time.Now().UnixNano(), wait)
			}
			p.e.ObserveBlock(r.res)
			if p.onBlock != nil {
				p.onBlock(r.res)
			}
		}
		p.recycle(r)
	}
}

// recycle returns a result's frame buffer to the pool, keeping the larger
// array when the encode outgrew the pooled one.
func (p *Pipeline) recycle(r pipeResult) {
	if r.buf == nil {
		return
	}
	if cap(r.frame) > cap(*r.buf) {
		*r.buf = r.frame[:0]
	}
	p.bufs.Put(r.buf)
}

// streamPipelined is StreamBlocks' parallel path: it feeds the pre-cut
// blocks through a fresh pipeline and collects the in-order results.
func (s *Session) streamPipelined(blocks [][]byte, send SendFunc, onBlock func(BlockResult)) ([]BlockResult, error) {
	results := make([]BlockResult, 0, len(blocks))
	p := newPipeline(s.e, send, s.e.workers, s.index, func(r BlockResult) {
		results = append(results, r)
		if onBlock != nil {
			onBlock(r)
		}
	})
	for _, block := range blocks {
		if err := p.Submit(block); err != nil {
			break // the first error also comes out of Close
		}
	}
	err := p.Close()
	s.index += len(results)
	return results, err
}
