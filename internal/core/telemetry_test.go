package core

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"ccx/internal/codec"
	"ccx/internal/datagen"
	"ccx/internal/metrics"
	"ccx/internal/obs"
	"ccx/internal/selector"
	"ccx/internal/tracing"
)

func telemetryEngine(t *testing.T, blockSize int, tel Telemetry) *Engine {
	t.Helper()
	cfg := selector.DefaultConfig()
	cfg.BlockSize = blockSize
	e, err := NewEngine(Config{Selector: cfg, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSessionTelemetry(t *testing.T) {
	reg := metrics.NewRegistry()
	log := obs.NewDecisionLog(64)
	e := telemetryEngine(t, 8<<10, Telemetry{Metrics: reg, Trace: log, Stream: "send"})
	data := datagen.OISTransactions(64<<10, 0.9, 7)

	var wire bytes.Buffer
	w := NewWriter(&wire, e, nil)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	const blocks = 8 // 64 KiB / 8 KiB
	if got := snap["ccx.tx_blocks"]; got != blocks {
		t.Errorf("tx_blocks = %v, want %d", got, blocks)
	}
	if got := snap["ccx.encode_seconds.count"]; got != blocks {
		t.Errorf("encode latency observations = %v, want %d", got, blocks)
	}
	if got := snap["ccx.tx_block_bytes.count"]; got != blocks {
		t.Errorf("block size observations = %v, want %d", got, blocks)
	}

	recs := log.Recent(0)
	if len(recs) != blocks {
		t.Fatalf("trace has %d records, want %d", len(recs), blocks)
	}
	var methodTotal float64
	for _, m := range []codec.Method{codec.None, codec.Huffman, codec.Arithmetic, codec.LempelZiv, codec.BurrowsWheeler} {
		methodTotal += snap["ccx.tx_method."+m.String()]
	}
	if methodTotal != blocks {
		t.Errorf("per-method counters sum to %v, want %d", methodTotal, blocks)
	}
	for i, rec := range recs {
		if rec.Stream != "send" || rec.Block != i {
			t.Errorf("record %d: stream=%q block=%d", i, rec.Stream, rec.Block)
		}
		if rec.Method == "" || rec.Reason == "" {
			t.Errorf("record %d missing method/reason: %+v", i, rec)
		}
		if rec.WireBytes <= 0 || rec.BlockLen <= 0 {
			t.Errorf("record %d missing sizes: %+v", i, rec)
		}
	}
	// The first block is always sent raw (no goodput measurement yet) and
	// the trace must say why.
	if recs[0].Method != "none" || !strings.Contains(recs[0].Reason, "no goodput") {
		t.Errorf("first record = %+v, want raw with first-block reason", recs[0])
	}
}

// TestReaderTelemetryCorruptFrame is the onBlock/SetCorruptHandler
// interaction test: a frame corrupted in flight must (a) reach the corrupt
// handler, (b) be skipped via resync while later frames still decode, and
// (c) leave its mark in both the metrics counters and the decision trace,
// without ever reaching onBlock.
func TestReaderTelemetryCorruptFrame(t *testing.T) {
	e := smallBlockEngine(t, 4<<10)
	data := datagen.OISTransactions(20<<10, 0.9, 3)

	var wire bytes.Buffer
	var frameEnds []int
	w := NewWriter(&wire, e, func(BlockResult) { frameEnds = append(frameEnds, wire.Len()) })
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if len(frameEnds) < 3 {
		t.Fatalf("need >= 3 frames, got %d", len(frameEnds))
	}
	// Flip a payload byte inside the second frame.
	raw := wire.Bytes()
	raw[frameEnds[0]+20] ^= 0xFF

	reg := metrics.NewRegistry()
	log := obs.NewDecisionLog(64)
	r := NewReader(bytes.NewReader(raw), nil, func(info codec.BlockInfo) {
		if info.OrigLen == 0 {
			t.Error("onBlock observed an empty block")
		}
	})
	r.SetTelemetry(Telemetry{Metrics: reg, Trace: log, Stream: "recv"})
	var handlerCalls int
	r.SetCorruptHandler(func(err error) bool {
		handlerCalls++
		return true
	})

	got, err := io.ReadAll(r)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if handlerCalls != 1 {
		t.Fatalf("corrupt handler ran %d times, want 1", handlerCalls)
	}
	if len(got) >= len(data) || len(got) == 0 {
		t.Fatalf("resync delivered %d bytes of %d; exactly one block should be missing", len(got), len(data))
	}

	snap := reg.Snapshot()
	if c := snap["ccx.rx_corrupt_frames"]; c != 1 {
		t.Errorf("rx_corrupt_frames = %v, want 1", c)
	}
	wantBlocks := float64(len(frameEnds) - 1)
	if b := snap["ccx.rx_blocks"]; b != wantBlocks {
		t.Errorf("rx_blocks = %v, want %v (one skipped)", b, wantBlocks)
	}
	if d := snap["ccx.decode_seconds.count"]; d != wantBlocks {
		t.Errorf("decode latency observations = %v, want %v", d, wantBlocks)
	}

	recs := log.Recent(0)
	if len(recs) != len(frameEnds) {
		t.Fatalf("trace has %d records, want %d (healthy + corrupt)", len(recs), len(frameEnds))
	}
	var corrupt []obs.Record
	for _, rec := range recs {
		if rec.Corrupt {
			corrupt = append(corrupt, rec)
		} else if rec.Method == "" || rec.BlockLen == 0 {
			t.Errorf("healthy record incomplete: %+v", rec)
		}
	}
	if len(corrupt) != 1 {
		t.Fatalf("trace has %d corrupt records, want 1", len(corrupt))
	}
	if corrupt[0].Block != 1 {
		t.Errorf("corrupt record at block %d, want 1 (the damaged frame)", corrupt[0].Block)
	}
	if !strings.Contains(corrupt[0].Err, "checksum") {
		t.Errorf("corrupt record err = %q, want the checksum failure", corrupt[0].Err)
	}
}

// TestTelemetryOffCostsNothing pins the opt-out contract: a zero Telemetry
// leaves no instruments resolved and no trace running.
func TestTelemetryOffCostsNothing(t *testing.T) {
	e := smallBlockEngine(t, 8<<10)
	if e.tx != nil {
		t.Fatal("instruments resolved without a registry")
	}
	if e.Telemetry().enabled() {
		t.Fatal("zero telemetry reports enabled")
	}
	// ObserveBlock with telemetry off must be a no-op, not a panic.
	e.ObserveBlock(BlockResult{})
	var r Reader
	r.observeBlock(codec.BlockInfo{})
	r.observeCorrupt(io.ErrUnexpectedEOF)
}

func BenchmarkTransmitBlock(b *testing.B) {
	run := func(b *testing.B, tel Telemetry) {
		cfg := selector.DefaultConfig()
		cfg.BlockSize = 64 << 10
		e, err := NewEngine(Config{Selector: cfg, Telemetry: tel})
		if err != nil {
			b.Fatal(err)
		}
		s := NewSession(e)
		block := datagen.OISTransactions(64<<10, 0.9, 1)
		send := func(frame []byte) (dur time.Duration, _ error) { return time.Millisecond, nil }
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.TransmitBlock(block, nil, send); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("telemetry=off", func(b *testing.B) { run(b, Telemetry{}) })
	b.Run("telemetry=on", func(b *testing.B) {
		run(b, Telemetry{Metrics: metrics.NewRegistry(), Trace: obs.NewDecisionLog(0), Stream: "bench"})
	})
	// Tracing variants stack on full telemetry, so the deltas isolate what
	// the span plane adds on top of PR 3's metrics cost.
	b.Run("tracing=1pct", func(b *testing.B) {
		run(b, Telemetry{Metrics: metrics.NewRegistry(), Trace: obs.NewDecisionLog(0), Stream: "bench",
			Tracer: tracing.New("bench", 0.01, 4096)})
	})
	b.Run("tracing=always", func(b *testing.B) {
		run(b, Telemetry{Metrics: metrics.NewRegistry(), Trace: obs.NewDecisionLog(0), Stream: "bench",
			Tracer: tracing.New("bench", 1, 4096)})
	})
}
