package core

import (
	"errors"
	"io"
	"time"

	"ccx/internal/codec"
)

// Writer adapts the adaptive engine to io.Writer: bytes written are cut
// into engine-sized blocks, each compressed with the method the selector
// picks at that moment, framed, and forwarded to the underlying writer.
// Close flushes the final partial block.
//
// Send time is measured around the underlying Write call. Over a TCP
// connection with a full pipe this tracks the receiver's acceptance rate
// through backpressure — the end-to-end signal the paper's monitor wants.
type Writer struct {
	e       *Engine
	s       *Session
	w       io.Writer
	buf     []byte
	onBlock func(BlockResult)
	pipe    *Pipeline // non-nil when the engine configured Workers > 1
	closed  bool
}

// NewWriter returns an adaptive Writer. onBlock, when non-nil, observes
// every transmitted block. With Config.Workers > 1 blocks are compressed
// concurrently on a Pipeline (frames still reach w strictly in block
// order), and onBlock fires from the pipeline's sequencer goroutine.
func NewWriter(w io.Writer, e *Engine, onBlock func(BlockResult)) *Writer {
	wr := &Writer{
		e:       e,
		s:       NewSession(e),
		w:       w,
		buf:     make([]byte, 0, e.BlockSize()),
		onBlock: onBlock,
	}
	if e.workers > 1 {
		wr.pipe = NewPipeline(e, wr.send, e.workers, onBlock)
	}
	return wr
}

// send transmits one frame over the underlying writer, timing the call.
func (w *Writer) send(frame []byte) (time.Duration, error) {
	start := time.Now()
	if _, err := w.w.Write(frame); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, errors.New("core: write on closed Writer")
	}
	total := len(p)
	bs := w.e.BlockSize()
	for len(p) > 0 {
		space := bs - len(w.buf)
		n := len(p)
		if n > space {
			n = space
		}
		w.buf = append(w.buf, p[:n]...)
		p = p[n:]
		if len(w.buf) == bs {
			if err := w.flushBlock(); err != nil {
				return total - len(p), err
			}
		}
	}
	return total, nil
}

func (w *Writer) flushBlock() error {
	block := w.buf
	w.buf = make([]byte, 0, w.e.BlockSize())
	if w.pipe != nil {
		// Ownership of block transfers to the pipeline (a fresh buffer was
		// just allocated above, so the Writer never mutates it again).
		return w.pipe.Submit(block)
	}
	// The next block is unknown in streaming mode, so the probe runs at
	// Decide time for each block (the synchronous fallback).
	res, err := w.s.TransmitBlock(block, nil, w.send)
	if err != nil {
		return err
	}
	if w.onBlock != nil {
		w.onBlock(res)
	}
	return nil
}

// Close flushes buffered data (and, in pipelined mode, waits for every
// in-flight block to reach the underlying writer). It does not close the
// underlying writer.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	var err error
	if len(w.buf) > 0 {
		err = w.flushBlock()
	}
	if w.pipe != nil {
		if cerr := w.pipe.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

var _ io.WriteCloser = (*Writer)(nil)

// Reader decodes an adaptive frame stream back into the original bytes.
type Reader struct {
	fr        *codec.FrameReader
	rest      []byte
	onBlock   func(codec.BlockInfo)
	onCorrupt func(error) bool
	err       error

	tel     Telemetry
	rx      *rxInstruments   // nil unless SetTelemetry installed a registry
	seq     int              // ordinal of the next frame (healthy or corrupt)
	track   *DeliveryTracker // nil unless SetDeliveryTracker installed one
	onClose func(anno []byte) error
}

// NewReader returns a Reader over r. reg selects the codec set (nil =
// built-ins); onBlock, when non-nil, observes every received block.
func NewReader(r io.Reader, reg *codec.Registry, onBlock func(codec.BlockInfo)) *Reader {
	return &Reader{fr: codec.NewFrameReader(r, reg), onBlock: onBlock}
}

// SetCorruptHandler installs h, called whenever a frame fails integrity
// checks (errors.Is(err, codec.ErrCorruptFrame)). Returning true skips the
// poisoned frame and resynchronizes on the next frame boundary; returning
// false (or h being nil) keeps the old fail-stop behaviour. Truncation and
// transport errors are never offered to h: there is no stream left to
// resync onto.
func (r *Reader) SetCorruptHandler(h func(error) bool) { r.onCorrupt = h }

// SetDeliveryTracker installs t, consulted for every sequenced (v3) frame:
// replayed duplicates are suppressed (counted, not delivered) and sequence
// discontinuities are accounted as explicit gaps — both surfaced through
// the telemetry instruments and trace. The tracker outlives the Reader, so
// a reconnecting consumer hands the same tracker to each new Reader and
// gets exactly-once delivery across the whole session. Unsequenced (v1/v2)
// frames pass through untouched.
func (r *Reader) SetDeliveryTracker(t *DeliveryTracker) { r.track = t }

// SetCloseHandler installs h, called for zero-length annotated control
// frames (the broker's explicit-close protocol: a close-reason TLV stamped
// into an empty v4 frame right before the connection is severed). A non-nil
// return becomes the Reader's terminal error, letting clients surface
// "evicted: overload" instead of whatever the torn transport produces; a
// nil return skips the frame like a heartbeat. Control frames bypass the
// delivery tracker — their sequence numbers are not data sequences.
func (r *Reader) SetCloseHandler(h func(anno []byte) error) { r.onClose = h }

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	for len(r.rest) == 0 {
		if r.err != nil {
			return 0, r.err
		}
		data, info, err := r.fr.ReadBlock()
		if err != nil {
			if r.onCorrupt != nil && errors.Is(err, codec.ErrCorruptFrame) && r.onCorrupt(err) {
				r.observeCorrupt(err)
				r.seq++
				switch rerr := r.fr.Resync(); rerr {
				case nil:
					continue
				case io.EOF:
					// The stream died inside its final frame; the handler
					// already saw the damage, so end cleanly.
					err = io.EOF
				default:
					err = rerr
				}
			}
			r.err = err
			return 0, err
		}
		if len(data) == 0 && len(info.Anno) > 0 && r.onClose != nil {
			// Control frame: empty payload with an annotation. Handle before
			// the delivery tracker — its seq is not a data sequence and must
			// not be suppressed as a duplicate or counted as a gap.
			if cerr := r.onClose(info.Anno); cerr != nil {
				r.err = cerr
				return 0, cerr
			}
			r.seq++
			continue
		}
		if r.track != nil && info.HasSeq {
			deliver, gap := r.track.Observe(info.Seq)
			if gap > 0 {
				r.observeGap(info.Seq, gap)
			}
			if !deliver {
				r.observeDup(info)
				r.seq++
				continue
			}
		}
		r.observeBlock(info)
		r.seq++
		if r.onBlock != nil {
			r.onBlock(info)
		}
		r.rest = data
	}
	n := copy(p, r.rest)
	r.rest = r.rest[n:]
	return n, nil
}

var _ io.Reader = (*Reader)(nil)
