// Package core is the paper's primary contribution: the configurable
// compression engine that IQ-ECho integrates. It glues together
//
//   - end-to-end goodput monitoring (internal/bwmon),
//   - concurrent Lempel-Ziv sampling probes (internal/sampling),
//   - the table-driven selection algorithm (internal/selector), and
//   - the compression method registry and framed wire format
//     (internal/codec),
//
// into a per-block adaptation loop that follows §2.5's pseudocode: take a
// 128 KB block, choose a method from the current send-time/reducing-speed
// balance and the previous probe, fork a probe of the next block, send, and
// join the probe.
//
// Three integration surfaces are provided: a transport-agnostic Session
// (used by the experiment harness over simulated links), io.Writer/Reader
// adapters (used by the TCP tools), and ECho channel handlers with
// quality-attribute feedback (used by the middleware examples).
package core

import (
	"fmt"
	"sync"
	"time"

	"ccx/internal/bwmon"
	"ccx/internal/codec"
	"ccx/internal/sampling"
	"ccx/internal/selector"
	"ccx/internal/tracing"
)

// Config assembles an Engine.
type Config struct {
	// Selector holds the decision thresholds and block size; zero value
	// means selector.DefaultConfig.
	Selector selector.Config
	// ProbeSize overrides the 4 KB sampling probe (0 = default).
	ProbeSize int
	// Alpha is the goodput EWMA weight (0 = bwmon.DefaultAlpha).
	Alpha float64
	// SpeedScale emulates a slower or loaded CPU by dividing measured
	// reducing speeds (0 or 1 = native speed).
	SpeedScale float64
	// Registry supplies codecs (nil = built-in methods).
	Registry *codec.Registry
	// Policy overrides the decision policy (nil = the paper's published
	// ratio algorithm over Selector's thresholds).
	Policy selector.Policy
	// Placement decides where compression runs relative to this engine's
	// hop. The zero value pins publisher-side (inline) compression —
	// exactly the pre-placement behavior. When the placement decision
	// offloads a block downstream, the engine bypasses Policy and ships
	// the block raw (Method None, Decision.Offloaded set).
	Placement selector.PlacementPolicy
	// Now supplies timestamps for probe and compression timing; nil means
	// time.Now. Experiments inject virtual clocks for determinism.
	Now func() time.Time
	// Workers sets the encode worker-pool size used by Session.Stream/
	// StreamBlocks, core.Writer, and the broker's per-subscriber loops.
	// 0 or 1 keeps the paper's sequential loop (probe-ahead overlap and
	// all); >1 routes blocks through a core.Pipeline, which compresses
	// them concurrently while emitting frames strictly in block order.
	// Negative is invalid.
	Workers int
	// Telemetry wires the engine into the observability plane (histograms
	// and per-block decision traces). The zero value disables all
	// instrumentation at no hot-path cost.
	Telemetry Telemetry
	// Limiter, when set, constrains the selector's method ladder under
	// resource pressure (the overload governor implements it). The policy
	// still runs per block with the paper's measurements; the limiter only
	// caps how expensive the outcome may be, and every demotion is surfaced
	// in Decision.Reason and the limiter's own accounting.
	Limiter MethodLimiter
}

// MethodLimiter is the engine's hook into process-wide CPU governance:
// CapMethod reports the heaviest permitted method (ok=false means no cap),
// and NoteDemoted observes each decision actually stepped down. Both are
// called per block and must be cheap and concurrency-safe.
// *governor.Governor implements it.
type MethodLimiter interface {
	CapMethod() (max codec.Method, cause string, ok bool)
	NoteDemoted(from, to codec.Method)
}

// Engine runs the adaptation loop. It is safe for concurrent use, though
// the paper's loop (and Session) is sequential per stream.
type Engine struct {
	sel    selector.Config
	policy selector.Policy
	plc    selector.PlacementPolicy
	reg    *codec.Registry
	mon    *bwmon.Monitor
	smp    *sampling.Sampler
	now    func() time.Time
	tel    Telemetry
	tx     *txInstruments // nil unless Telemetry.Metrics is set
	lim    MethodLimiter  // nil = ungoverned

	workers int

	mu      sync.Mutex
	pending chan sampling.ProbeResult
}

// NewEngine validates cfg and builds an Engine.
func NewEngine(cfg Config) (*Engine, error) {
	sel := cfg.Selector
	if sel == (selector.Config{}) {
		sel = selector.DefaultConfig()
	}
	if err := sel.Validate(); err != nil {
		return nil, err
	}
	reg := cfg.Registry
	if reg == nil {
		reg = codec.NewRegistry()
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	policy := cfg.Policy
	if policy == nil {
		policy = selector.RatioPolicy{Config: sel}
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("core: negative worker count %d", cfg.Workers)
	}
	if err := cfg.Placement.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		sel:    sel,
		policy: policy,
		plc:    cfg.Placement,
		reg:    reg,
		mon:    bwmon.New(cfg.Alpha),
		smp: &sampling.Sampler{
			ProbeSize:  cfg.ProbeSize,
			SpeedScale: cfg.SpeedScale,
			Now:        now,
		},
		now:     now,
		tel:     cfg.Telemetry,
		workers: cfg.Workers,
		lim:     cfg.Limiter,
	}
	if cfg.Telemetry.Metrics != nil {
		e.tx = newTxInstruments(cfg.Telemetry.Metrics, reg)
	}
	return e, nil
}

// BlockSize returns the configured transmission block size.
func (e *Engine) BlockSize() int { return e.sel.BlockSize }

// Workers returns the effective encode worker-pool size (1 = sequential).
func (e *Engine) Workers() int {
	if e.workers > 1 {
		return e.workers
	}
	return 1
}

// Monitor exposes the goodput monitor (receivers' acceptance rate feeds it).
func (e *Engine) Monitor() *bwmon.Monitor { return e.mon }

// Registry exposes the codec registry, for runtime method deployment.
func (e *Engine) Registry() *codec.Registry { return e.reg }

// StartProbe forks the paper's sampling child for the next block: a
// goroutine compresses its first 4 KB with Lempel-Ziv. The result is
// consumed by the next Decide call.
func (e *Engine) StartProbe(next []byte) {
	ch := make(chan sampling.ProbeResult, 1)
	e.mu.Lock()
	e.pending = ch
	e.mu.Unlock()
	go func() {
		ch <- e.smp.Probe(next)
	}()
}

// takeProbe joins the pending probe if one exists ("wait for child
// process"), otherwise probes block synchronously.
func (e *Engine) takeProbe(block []byte) sampling.ProbeResult {
	e.mu.Lock()
	ch := e.pending
	e.pending = nil
	e.mu.Unlock()
	if ch != nil {
		return <-ch
	}
	return e.smp.Probe(block)
}

// Decide selects the compression method for block, consuming the pending
// probe when one was started (the probe must have been for this block).
func (e *Engine) Decide(block []byte) selector.Decision {
	return e.DecideProbed(len(block), e.takeProbe(block))
}

// DecideProbed selects a method for a block of blockLen bytes from an
// already-computed sampling probe. The probe depends only on the block's
// bytes, so the shared encode plane computes it once and amortizes it across
// every subscriber of a channel; SendTime still comes from this engine's own
// goodput monitor, keeping the paper's per-path decision intact.
//
// Placement runs first: when the policy offloads the block downstream,
// this hop ships it raw (Method None) and the method selector never runs —
// the downstream hop, seeing its own placement decision, compresses (or
// doesn't) with its own measurements.
func (e *Engine) DecideProbed(blockLen int, probe sampling.ProbeResult) selector.Decision {
	in := selector.Inputs{
		BlockLen:      blockLen,
		SendTime:      e.mon.SendTime(blockLen),
		ProbeRatio:    probe.Ratio,
		ReducingSpeed: probe.ReducingSpeed,
		Entropy:       probe.Entropy,
		Repetition:    probe.Repetition,
		ProbeTime:     probe.Duration,
	}
	pl := e.plc.Decide(in)
	if !e.plc.Encodes(pl) {
		return selector.Decision{
			Method:       codec.None,
			Inputs:       in,
			LZReduceTime: in.LZReduceTime(),
			Placement:    pl,
			Offloaded:    true,
		}
	}
	d := e.policy.Select(in)
	d.Placement = pl
	if e.lim != nil && d.Method != codec.None {
		if max, cause, ok := e.lim.CapMethod(); ok && codec.CostRank(d.Method) > codec.CostRank(max) {
			d.Demoted, d.DemotedFrom, d.DemoteCause = true, d.Method, cause
			d.Method = max
			e.lim.NoteDemoted(d.DemotedFrom, max)
		}
	}
	return d
}

// Placement returns the engine's placement policy.
func (e *Engine) Placement() selector.PlacementPolicy { return e.plc }

// BlockResult records one transmitted block for the experiment plots
// (Figures 8-12 all read these fields).
type BlockResult struct {
	// Index is the block's ordinal in the stream.
	Index int
	// Decision holds the selected method and its reasoning inputs.
	Decision selector.Decision
	// Info is the wire-level outcome (after any expansion fallback).
	Info codec.BlockInfo
	// CompressTime is the time spent compressing (scaled by SpeedScale).
	CompressTime time.Duration
	// SendTime is the measured transmission time of the frame.
	SendTime time.Duration
	// WireBytes is the full frame size on the wire, header included.
	WireBytes int
	// Workers is the encode-pool size that produced the block (1 = the
	// sequential loop, >1 = a core.Pipeline).
	Workers int
	// PipelineWait is how long the in-order sequencer stalled waiting for
	// this block's encode to finish (0 in the sequential loop; near-zero
	// when the pipeline is keeping up).
	PipelineWait time.Duration
}

// SendFunc transmits one encoded frame and reports how long the transfer
// took end to end. Implementations wrap sockets, simulated links, or pipes.
type SendFunc func(frame []byte) (time.Duration, error)

// Session drives the per-block loop over any transport. Not safe for
// concurrent use; create one per stream (matching the paper's one loop per
// data exchange).
type Session struct {
	e       *Engine
	scratch []byte // frame encode buffer, reused across blocks
	index   int
}

// NewSession returns a Session on the engine.
func NewSession(e *Engine) *Session {
	return &Session{e: e}
}

// TransmitBlock runs one iteration of §2.5's loop body for block, using
// send as the network. next is the following block (nil at end of stream);
// its probe overlaps the send, exactly as the paper forks its sampling
// process before sending and joins it after.
//
// When the engine's telemetry carries a Tracer and the block is head-
// sampled, a trace context is stamped into the frame's v4 annotation (the
// frame then also carries the block's ordinal as its sequence number) and
// the probe/encode/write spans are recorded. Unsampled blocks emit exactly
// the pre-tracing v2 frame bytes.
func (s *Session) TransmitBlock(block, next []byte, send SendFunc) (BlockResult, error) {
	e := s.e
	res := BlockResult{Index: s.index, Workers: 1}
	s.index++

	tr := e.tel.Tracer
	var tc tracing.Context
	seqno := uint64(res.Index) + 1
	if tr.Sample() {
		tc = tr.NewContext()
		tr.Record(tracing.Span{Trace: tc.Trace, Seq: seqno, Stream: e.tel.Stream, Stage: tracing.StageStamp, Start: tc.WallNs})
	}

	res.Decision = e.Decide(block)
	res.Decision.Trace = tc.Trace

	var opts codec.FrameOpts
	if tc.Valid() {
		opts = codec.FrameOpts{Seq: seqno, Anno: tc.AppendAnno(nil)}
	}
	start := e.now()
	frame, info, err := codec.AppendFrameOpts(s.scratch[:0], e.reg, res.Decision.Method, block, opts)
	s.scratch = frame
	if err != nil {
		return res, fmt.Errorf("core: encode block %d: %w", res.Index, err)
	}
	res.CompressTime = e.now().Sub(start)
	if scale := e.smp.SpeedScale; scale > 0 && scale != 1 {
		res.CompressTime = time.Duration(float64(res.CompressTime) * scale)
	}
	res.Info = info
	res.WireBytes = len(frame)

	if next != nil {
		e.StartProbe(next)
	}
	d, err := send(frame)
	if err != nil {
		return res, fmt.Errorf("core: send block %d: %w", res.Index, err)
	}
	res.SendTime = d
	e.mon.Observe(len(frame), d)
	if tc.Valid() {
		e.recordTxSpans(tc, seqno, res, time.Now().UnixNano(), 0)
	}
	e.ObserveBlock(res)
	return res, nil
}

// Stream splits data into engine-sized blocks and transmits them all,
// returning per-block results. onBlock, when non-nil, observes each result
// as it completes (the experiment harness streams these into its series).
func (s *Session) Stream(data []byte, send SendFunc, onBlock func(BlockResult)) ([]BlockResult, error) {
	bs := s.e.BlockSize()
	var blocks [][]byte
	for off := 0; off < len(data); off += bs {
		end := off + bs
		if end > len(data) {
			end = len(data)
		}
		blocks = append(blocks, data[off:end])
	}
	return s.StreamBlocks(blocks, send, onBlock)
}

// StreamBlocks transmits pre-cut blocks in order. With Config.Workers > 1
// the blocks are compressed concurrently on a pipeline while frames still
// hit the wire strictly in block order; the sequential path below keeps the
// paper's probe-ahead overlap.
func (s *Session) StreamBlocks(blocks [][]byte, send SendFunc, onBlock func(BlockResult)) ([]BlockResult, error) {
	if s.e.workers > 1 {
		return s.streamPipelined(blocks, send, onBlock)
	}
	results := make([]BlockResult, 0, len(blocks))
	for i, block := range blocks {
		var next []byte
		if i+1 < len(blocks) {
			next = blocks[i+1]
		}
		res, err := s.TransmitBlock(block, next, send)
		if err != nil {
			return results, err
		}
		results = append(results, res)
		if onBlock != nil {
			onBlock(res)
		}
	}
	return results, nil
}
