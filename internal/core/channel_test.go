package core

import (
	"bytes"
	"net"
	"strconv"
	"testing"
	"time"

	"ccx/internal/codec"
	"ccx/internal/datagen"
	"ccx/internal/echo"
	"ccx/internal/selector"
)

func TestDeriveCompressedLocal(t *testing.T) {
	d := echo.NewDomain()
	src := d.OpenChannel("md.frames")
	cfg := selector.DefaultConfig()
	cfg.BlockSize = 16 * 1024
	e, err := NewEngine(Config{Selector: cfg})
	if err != nil {
		t.Fatal(err)
	}
	compressed, err := DeriveCompressed(src, "md.frames.z", e)
	if err != nil {
		t.Fatal(err)
	}

	// Make the engine believe the line is slow so it compresses.
	e.Monitor().Observe(16*1024, time.Second)

	payload := datagen.OISTransactions(16*1024, 0.9, 1)
	var gotData []byte
	var gotInfo codec.BlockInfo
	compressed.Subscribe(func(ev echo.Event) {
		data, info, err := DecodeEvent(ev, nil)
		if err != nil {
			t.Errorf("decode: %v", err)
			return
		}
		gotData, gotInfo = data, info
		if ev.Attrs[AttrMethod] != info.Method.String() {
			t.Errorf("attr method %q != frame method %v", ev.Attrs[AttrMethod], info.Method)
		}
		if ev.Attrs[AttrOrigLen] != strconv.Itoa(info.OrigLen) {
			t.Errorf("attr origlen %q", ev.Attrs[AttrOrigLen])
		}
	})
	if err := src.Submit(echo.Event{Data: payload}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotData, payload) {
		t.Fatal("payload mismatch through compressed channel")
	}
	if gotInfo.Method == codec.None {
		t.Fatalf("expected compression on slow line, got %v", gotInfo.Method)
	}
	if gotInfo.CompLen >= gotInfo.OrigLen {
		t.Fatal("no size reduction")
	}
}

func TestDeriveCompressedGoodputFeedback(t *testing.T) {
	d := echo.NewDomain()
	src := d.OpenChannel("s")
	e, err := NewEngine(Config{})
	if err != nil {
		t.Fatal(err)
	}
	compressed, err := DeriveCompressed(src, "s.z", e)
	if err != nil {
		t.Fatal(err)
	}
	if e.Monitor().Goodput() != 0 {
		t.Fatal("fresh monitor should be empty")
	}
	// Consumer reports acceptance rate via the quality attribute.
	compressed.SetAttr(AttrGoodput, "2000000")
	if g := e.Monitor().Goodput(); g != 2000000 {
		t.Fatalf("goodput = %v", g)
	}
	// Malformed and irrelevant attributes are ignored.
	compressed.SetAttr(AttrGoodput, "not-a-number")
	compressed.SetAttr("other", "1")
	if g := e.Monitor().Goodput(); g != 2000000 {
		t.Fatalf("goodput polluted: %v", g)
	}
}

func TestSubscribeDecompressed(t *testing.T) {
	d := echo.NewDomain()
	src := d.OpenChannel("s")
	e, _ := NewEngine(Config{})
	compressed, _ := DeriveCompressed(src, "s.z", e)
	var payloads [][]byte
	SubscribeDecompressed(compressed, nil, 2, func(data []byte, info codec.BlockInfo) {
		payloads = append(payloads, data)
	})
	for i := 0; i < 4; i++ {
		src.Submit(echo.Event{Data: datagen.OISTransactions(4096, 0.9, int64(i))})
	}
	if len(payloads) != 4 {
		t.Fatalf("delivered %d", len(payloads))
	}
	// Feedback fired at least once (every 2 events).
	if _, ok := compressed.Attr(AttrGoodput); !ok {
		t.Fatal("no goodput feedback attr")
	}
}

func TestDecodeEventRawFallback(t *testing.T) {
	ev := echo.Event{
		Data:  []byte("plain payload"),
		Attrs: echo.Attributes{AttrMethod: codec.None.String()},
	}
	data, info, err := DecodeEvent(ev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "plain payload" || info.Method != codec.None {
		t.Fatalf("got %q %+v", data, info)
	}
}

// TestCompressedChannelAcrossBridge is the full §3.2 picture: producer and
// consumer in different address spaces, a derived compression channel on
// the producer side, events flowing across the transport encapsulation
// layer, and quality attributes flowing back upstream.
func TestCompressedChannelAcrossBridge(t *testing.T) {
	c1, c2 := net.Pipe()
	prodDomain, consDomain := echo.NewDomain(), echo.NewDomain()
	b1 := echo.NewBridge(prodDomain, c1)
	b2 := echo.NewBridge(consDomain, c2)
	defer func() {
		b1.Close()
		b2.Close()
		<-b1.Done()
		<-b2.Done()
	}()

	cfg := selector.DefaultConfig()
	cfg.BlockSize = 16 * 1024
	e, err := NewEngine(Config{Selector: cfg})
	if err != nil {
		t.Fatal(err)
	}
	raw := prodDomain.OpenChannel("ois.txns")
	if _, err := DeriveCompressed(raw, "ois.txns.z", e); err != nil {
		t.Fatal(err)
	}
	// Slow-line belief → compression on.
	e.Monitor().Observe(16*1024, time.Second)

	imported, err := b2.ImportChannel("ois.txns.z")
	if err != nil {
		t.Fatal(err)
	}
	type rx struct {
		data []byte
		info codec.BlockInfo
	}
	got := make(chan rx, 16)
	SubscribeDecompressed(imported, nil, 0, func(data []byte, info codec.BlockInfo) {
		got <- rx{data, info}
	})

	// Wait for the bridge subscription to land on the producer side.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ch, ok := prodDomain.Channel("ois.txns.z"); ok && ch.Subscribers() > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	payload := datagen.OISTransactions(16*1024, 0.9, 3)
	if err := raw.Submit(echo.Event{Data: payload}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if !bytes.Equal(r.data, payload) {
			t.Fatal("payload mismatch across bridge")
		}
		if r.info.Method == codec.None {
			t.Fatalf("expected compressed method, got %v", r.info.Method)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("event never arrived")
	}

	// Upstream feedback: consumer reports goodput; producer's monitor sees it.
	imported.SetAttr(AttrGoodput, "123456")
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if g := e.Monitor().Goodput(); g > 0 && g != float64(16*1024) {
			// EWMA folded the report in.
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goodput feedback never reached producer (still %v)", e.Monitor().Goodput())
}
