package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"testing"
	"time"

	"ccx/internal/codec"
	"ccx/internal/datagen"
	"ccx/internal/faultnet"
	"ccx/internal/metrics"
	"ccx/internal/obs"
	"ccx/internal/selector"
)

// spreadPolicy keys the method choice on content-derived probe inputs only
// (entropy, repetition, probe ratio, block length) — never on timing — so
// the decision for a given block is identical no matter which worker runs
// it or when. That makes N-worker output provably byte-identical to the
// 1-worker output, which is what the pipeline's ordering tests assert.
type spreadPolicy struct{}

func (spreadPolicy) Name() string { return "spread" }

func (spreadPolicy) Select(in selector.Inputs) selector.Decision {
	methods := []codec.Method{codec.None, codec.Huffman, codec.Arithmetic, codec.LempelZiv, codec.BurrowsWheeler}
	k := in.BlockLen + int(in.Entropy*4096) + int(in.Repetition*4096) + int(in.ProbeRatio*4096)
	return selector.Decision{Method: methods[k%len(methods)], Inputs: in}
}

// pipelineCorpus builds a seeded stream mixing the shapes that drive every
// codec down a different path: long runs, incompressible noise, and
// repetitive text.
func pipelineCorpus(t testing.TB, size int) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 0, size)
	text := datagen.OISTransactions(size/3, 0.9, 11)
	data = append(data, text...)
	runs := make([]byte, size/3)
	for i := range runs {
		runs[i] = byte(i / 997)
	}
	data = append(data, runs...)
	noise := make([]byte, size-len(data))
	rng.Read(noise)
	data = append(data, noise...)
	return data
}

func pipelineEngine(t testing.TB, workers, blockSize int, tel Telemetry) *Engine {
	t.Helper()
	cfg := selector.DefaultConfig()
	cfg.BlockSize = blockSize
	e, err := NewEngine(Config{
		Selector:  cfg,
		Policy:    spreadPolicy{},
		Workers:   workers,
		Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// streamBytes runs data through a Session (sequential or pipelined per the
// engine's worker count) into a buffer and returns wire bytes + results.
func streamBytes(t testing.TB, e *Engine, data []byte) ([]byte, []BlockResult) {
	t.Helper()
	var wire bytes.Buffer
	s := NewSession(e)
	results, err := s.Stream(data, func(frame []byte) (time.Duration, error) {
		wire.Write(frame)
		return time.Microsecond, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return wire.Bytes(), results
}

// TestPipelineByteIdentity is the ordering acceptance test: for a seeded
// mixed-shape stream, the wire bytes produced with 2, 4, and 8 workers must
// equal the 1-worker (sequential Session) output exactly, and the stream
// must decode back to the original data. Run under -race this also
// exercises every cross-worker handoff.
func TestPipelineByteIdentity(t *testing.T) {
	const blockSize = 16 << 10
	data := pipelineCorpus(t, 48*blockSize+123) // ragged final block on purpose
	want, wantRes := streamBytes(t, pipelineEngine(t, 1, blockSize, Telemetry{}), data)

	for _, workers := range []int{2, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got, res := streamBytes(t, pipelineEngine(t, workers, blockSize, Telemetry{}), data)
			if !bytes.Equal(got, want) {
				t.Fatalf("%d-worker wire stream differs from sequential: %d vs %d bytes",
					workers, len(got), len(want))
			}
			if len(res) != len(wantRes) {
				t.Fatalf("got %d results, want %d", len(res), len(wantRes))
			}
			for i, r := range res {
				if r.Index != i {
					t.Fatalf("result %d carries index %d: emission out of order", i, r.Index)
				}
				if r.Workers != workers {
					t.Fatalf("result %d reports %d workers, want %d", i, r.Workers, workers)
				}
				if r.Info.Method != wantRes[i].Info.Method {
					t.Fatalf("block %d method %v, sequential chose %v", i, r.Info.Method, wantRes[i].Info.Method)
				}
			}
			decoded, err := io.ReadAll(NewReader(bytes.NewReader(got), nil, nil))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(decoded, data) {
				t.Fatalf("decoded stream differs from original (%d vs %d bytes)", len(decoded), len(data))
			}
		})
	}
}

// TestPipelineStallIdentity drives the 4-worker pipeline through a faultnet
// link that stalls mid-frame: the stall must delay, not reorder or damage,
// the stream — the receiver still sees the exact sequential bytes.
func TestPipelineStallIdentity(t *testing.T) {
	const blockSize = 8 << 10
	data := pipelineCorpus(t, 16*blockSize)
	want, _ := streamBytes(t, pipelineEngine(t, 1, blockSize, Telemetry{}), data)

	client, server := net.Pipe()
	faulty := faultnet.Wrap(client, faultnet.Plan{StallAt: len(want) / 2, Stall: 30 * time.Millisecond})
	received := make(chan []byte, 1)
	go func() {
		raw, _ := io.ReadAll(server)
		received <- raw
	}()

	e := pipelineEngine(t, 4, blockSize, Telemetry{})
	s := NewSession(e)
	if _, err := s.Stream(data, func(frame []byte) (time.Duration, error) {
		start := time.Now()
		if _, err := faulty.Write(frame); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}, nil); err != nil {
		t.Fatal(err)
	}
	client.Close()
	got := <-received
	server.Close()
	if !bytes.Equal(got, want) {
		t.Fatalf("stalled 4-worker stream differs from sequential: %d vs %d bytes", len(got), len(want))
	}
}

// waitGoroutines polls until the goroutine count falls back to base.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 64<<10)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPipelineShutdownNoLeaks kills the pipeline in the three unhappy ways
// — transport error mid-stream, encode error, and early Close with blocks
// still in flight — and requires every worker and the sequencer to exit.
func TestPipelineShutdownNoLeaks(t *testing.T) {
	const blockSize = 4 << 10
	data := pipelineCorpus(t, 8*blockSize)
	base := runtime.NumGoroutine()

	t.Run("send-error", func(t *testing.T) {
		e := pipelineEngine(t, 4, blockSize, Telemetry{})
		sent := 0
		boom := errors.New("link down")
		p := NewPipeline(e, func(frame []byte) (time.Duration, error) {
			sent++
			if sent > 2 {
				return 0, boom
			}
			return 0, nil
		}, 4, nil)
		var submitErr error
		for i := 0; i < 64; i++ {
			if submitErr = p.Submit(data[:blockSize]); submitErr != nil {
				break
			}
		}
		err := p.Close()
		if !errors.Is(err, boom) {
			t.Fatalf("Close = %v, want the transport error", err)
		}
		if submitErr != nil && !errors.Is(submitErr, boom) {
			t.Fatalf("Submit = %v, want the transport error", submitErr)
		}
		if p.Err() == nil {
			t.Fatal("Err() lost the failure")
		}
	})

	t.Run("encode-error", func(t *testing.T) {
		// An unregistered method poisons the encode inside the worker.
		reg := codec.NewRegistry()
		cfg := selector.DefaultConfig()
		cfg.BlockSize = blockSize
		e, err := NewEngine(Config{
			Selector: cfg,
			Registry: reg,
			Policy:   staticPolicy{method: codec.Method(77)},
			Workers:  4,
		})
		if err != nil {
			t.Fatal(err)
		}
		p := NewPipeline(e, func([]byte) (time.Duration, error) { return 0, nil }, 4, nil)
		for i := 0; i < 8; i++ {
			if err := p.Submit(data[:blockSize]); err != nil {
				break
			}
		}
		if err := p.Close(); err == nil {
			t.Fatal("Close succeeded despite unregistered method")
		}
	})

	t.Run("early-close", func(t *testing.T) {
		e := pipelineEngine(t, 4, blockSize, Telemetry{})
		p := NewPipeline(e, func([]byte) (time.Duration, error) { return 0, nil }, 4, nil)
		for i := 0; i < 6; i++ {
			if err := p.Submit(data[i*blockSize : (i+1)*blockSize]); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		if err := p.Submit(data[:blockSize]); !errors.Is(err, ErrPipelineClosed) {
			t.Fatalf("Submit after Close = %v, want ErrPipelineClosed", err)
		}
		if err := p.Close(); err != nil {
			t.Fatalf("second Close = %v", err)
		}
	})

	waitGoroutines(t, base)
}

// staticPolicy always selects one method.
type staticPolicy struct{ method codec.Method }

func (staticPolicy) Name() string { return "static" }

func (p staticPolicy) Select(in selector.Inputs) selector.Decision {
	return selector.Decision{Method: p.method, Inputs: in}
}

// sleepCodec simulates an expensive compressor whose cost is pure latency,
// so encode overlap is measurable even on a single-core machine.
type sleepCodec struct{ d time.Duration }

func (c sleepCodec) Method() codec.Method { return codec.FirstCustom }
func (c sleepCodec) Compress(src []byte) ([]byte, error) {
	time.Sleep(c.d)
	out := make([]byte, len(src)/2)
	return out, nil
}
func (c sleepCodec) Decompress(src []byte, origLen int) ([]byte, error) {
	return make([]byte, origLen), nil
}

// TestPipelineOverlap demonstrates the point of the subsystem: with encode
// cost dominating, 4 workers must finish the same stream at least twice as
// fast as 1 worker. The cost is simulated with sleeps so the assertion
// holds on single-core CI runners too; BenchmarkPipeline* measures the real
// codecs on real cores.
func TestPipelineOverlap(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const (
		blocks    = 8
		blockSize = 1 << 10
		cost      = 10 * time.Millisecond
	)
	run := func(workers int) time.Duration {
		reg := codec.NewRegistry()
		reg.Register(sleepCodec{d: cost})
		cfg := selector.DefaultConfig()
		cfg.BlockSize = blockSize
		e, err := NewEngine(Config{
			Selector: cfg,
			Registry: reg,
			Policy:   staticPolicy{method: codec.FirstCustom},
			Workers:  workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, blocks*blockSize)
		start := time.Now()
		s := NewSession(e)
		if _, err := s.Stream(data, func([]byte) (time.Duration, error) { return 0, nil }, nil); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	// Timing tests can lose to scheduler noise; allow one retry.
	for attempt := 0; ; attempt++ {
		t1, t4 := run(1), run(4)
		if t4 > 0 && float64(t1)/float64(t4) >= 2 {
			t.Logf("1 worker %v, 4 workers %v (%.1fx)", t1, t4, float64(t1)/float64(t4))
			return
		}
		if attempt >= 1 {
			t.Fatalf("4-worker pipeline not ≥2x faster: 1 worker %v, 4 workers %v", t1, t4)
		}
	}
}

// TestPipelineTelemetry checks the pipeline's observability wiring: the
// in-flight depth gauge and sequencer-wait histogram exist and fill, trace
// records carry the worker count, and sequence numbers survive SubmitSeq.
func TestPipelineTelemetry(t *testing.T) {
	const blockSize = 4 << 10
	met := metrics.NewRegistry()
	trace := obs.NewDecisionLog(256)
	e := pipelineEngine(t, 3, blockSize, Telemetry{Metrics: met, Trace: trace, Stream: "pipe"})
	data := pipelineCorpus(t, 12*blockSize)

	var wire bytes.Buffer
	p := NewPipeline(e, func(frame []byte) (time.Duration, error) {
		wire.Write(frame)
		return time.Microsecond, nil
	}, 3, nil)
	var seq uint64
	for off := 0; off < len(data); off += blockSize {
		seq++
		if err := p.SubmitSeq(data[off:off+blockSize], seq); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	snap := met.Snapshot()
	if _, ok := snap["ccx.pipeline_depth"]; !ok {
		t.Fatal("ccx.pipeline_depth gauge missing")
	}
	if got := snap["ccx.pipeline_depth"]; got != 0 {
		t.Fatalf("pipeline_depth = %v after Close, want 0", got)
	}
	if got := snap["ccx.pipeline_wait_seconds.count"]; got != 12 {
		t.Fatalf("pipeline_wait_seconds.count = %v, want 12", got)
	}
	recs := trace.Recent(0)
	if len(recs) != 12 {
		t.Fatalf("got %d trace records, want 12", len(recs))
	}
	for i, r := range recs {
		if r.Workers != 3 {
			t.Fatalf("record %d workers = %d, want 3", i, r.Workers)
		}
		if r.Stream != "pipe" {
			t.Fatalf("record %d stream = %q", i, r.Stream)
		}
	}

	// The sequenced frames must decode with their sequence numbers in order.
	fr := codec.NewFrameReader(bytes.NewReader(wire.Bytes()), nil)
	var want uint64
	for {
		_, info, err := fr.ReadBlock()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		want++
		if !info.HasSeq || info.Seq != want {
			t.Fatalf("frame seq = %d (hasSeq=%v), want %d", info.Seq, info.HasSeq, want)
		}
	}
	if want != 12 {
		t.Fatalf("decoded %d sequenced frames, want 12", want)
	}
}
