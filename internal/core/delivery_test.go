package core

import (
	"bytes"
	"io"
	"testing"

	"ccx/internal/codec"
	"ccx/internal/metrics"
	"ccx/internal/obs"
)

func TestDeliveryTrackerContiguous(t *testing.T) {
	var tr DeliveryTracker
	for seq := uint64(1); seq <= 5; seq++ {
		deliver, gap := tr.Observe(seq)
		if !deliver || gap != 0 {
			t.Fatalf("Observe(%d) = (%v, %d), want (true, 0)", seq, deliver, gap)
		}
	}
	st := tr.Stats()
	if st.Delivered != 5 || st.Dups != 0 || st.GapEvents != 0 || st.Last != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeliveryTrackerDuplicates(t *testing.T) {
	var tr DeliveryTracker
	tr.Observe(1)
	tr.Observe(2)
	tr.Observe(3)
	for _, seq := range []uint64{1, 2, 3, 3} {
		deliver, gap := tr.Observe(seq)
		if deliver || gap != 0 {
			t.Fatalf("replayed Observe(%d) = (%v, %d), want (false, 0)", seq, deliver, gap)
		}
	}
	if st := tr.Stats(); st.Dups != 4 || st.Delivered != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeliveryTrackerGap(t *testing.T) {
	var tr DeliveryTracker
	tr.Observe(1)
	deliver, gap := tr.Observe(5)
	if !deliver || gap != 3 {
		t.Fatalf("Observe(5) after 1 = (%v, %d), want (true, 3)", deliver, gap)
	}
	st := tr.Stats()
	if st.GapEvents != 1 || st.GapBlocks != 3 || st.Last != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeliveryTrackerMidStreamJoin(t *testing.T) {
	// A fresh subscriber joining live starts wherever the channel is; that
	// first block is a join point, not a loss.
	var tr DeliveryTracker
	deliver, gap := tr.Observe(100)
	if !deliver || gap != 0 {
		t.Fatalf("first Observe(100) = (%v, %d), want (true, 0)", deliver, gap)
	}
	if st := tr.Stats(); st.GapEvents != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeliveryTrackerNoteGapAndSkipTo(t *testing.T) {
	var tr DeliveryTracker
	tr.Observe(1)
	tr.Observe(2)
	// Broker says: window starts at 7, so 3..6 are gone. The client accounts
	// the gap out-of-band and advances the cursor so block 7 does not count
	// a second discontinuity.
	tr.NoteGap(4)
	tr.SkipTo(7)
	deliver, gap := tr.Observe(7)
	if !deliver || gap != 0 {
		t.Fatalf("Observe(7) after SkipTo(7) = (%v, %d), want (true, 0)", deliver, gap)
	}
	st := tr.Stats()
	if st.GapEvents != 1 || st.GapBlocks != 4 {
		t.Fatalf("stats = %+v", st)
	}
	// SkipTo never rewinds.
	tr.SkipTo(3)
	if last, _ := tr.LastDelivered(); last != 7 {
		t.Fatalf("LastDelivered after rewind attempt = %d, want 7", last)
	}
	// NoteGap(0) is a no-op.
	tr.NoteGap(0)
	if st := tr.Stats(); st.GapEvents != 1 {
		t.Fatalf("NoteGap(0) counted: %+v", st)
	}
}

func TestDeliveryTrackerLastDelivered(t *testing.T) {
	var tr DeliveryTracker
	if _, ok := tr.LastDelivered(); ok {
		t.Fatal("fresh tracker reports started")
	}
	tr.Observe(9)
	last, ok := tr.LastDelivered()
	if !ok || last != 9 {
		t.Fatalf("LastDelivered = (%d, %v), want (9, true)", last, ok)
	}
}

// seqStream frames each payload as a sequenced (v3) frame with the given
// sequence numbers.
func seqStream(t *testing.T, payloads [][]byte, seqs []uint64) []byte {
	t.Helper()
	var buf []byte
	for i, p := range payloads {
		var err error
		buf, _, err = codec.AppendFrameSeq(buf, nil, codec.None, p, seqs[i])
		if err != nil {
			t.Fatalf("AppendFrameSeq: %v", err)
		}
	}
	return buf
}

func TestReaderSuppressesDuplicates(t *testing.T) {
	payloads := [][]byte{
		[]byte("alpha"), []byte("bravo"), []byte("bravo"), []byte("charlie"),
	}
	stream := seqStream(t, payloads, []uint64{1, 2, 2, 3})

	var tr DeliveryTracker
	reg := metrics.NewRegistry()
	trace := obs.NewDecisionLog(16)
	r := NewReader(bytes.NewReader(stream), nil, nil)
	r.SetDeliveryTracker(&tr)
	r.SetTelemetry(Telemetry{Metrics: reg, Trace: trace})

	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if want := "alphabravocharlie"; string(got) != want {
		t.Fatalf("got %q, want %q", got, want)
	}
	if st := tr.Stats(); st.Dups != 1 || st.Delivered != 3 {
		t.Fatalf("tracker stats = %+v", st)
	}
	if v := reg.Counter("ccx.rx_dup_frames").Value(); v != 1 {
		t.Fatalf("rx_dup_frames = %d, want 1", v)
	}
	var dupRecs int
	for _, rec := range trace.Recent(0) {
		if rec.Dup {
			dupRecs++
			if rec.FrameSeq != 2 {
				t.Fatalf("dup record FrameSeq = %d, want 2", rec.FrameSeq)
			}
		}
	}
	if dupRecs != 1 {
		t.Fatalf("dup trace records = %d, want 1", dupRecs)
	}
}

func TestReaderAccountsGaps(t *testing.T) {
	payloads := [][]byte{[]byte("one"), []byte("five")}
	stream := seqStream(t, payloads, []uint64{1, 5})

	var tr DeliveryTracker
	reg := metrics.NewRegistry()
	trace := obs.NewDecisionLog(16)
	r := NewReader(bytes.NewReader(stream), nil, nil)
	r.SetDeliveryTracker(&tr)
	r.SetTelemetry(Telemetry{Metrics: reg, Trace: trace})

	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	// The gapped block is still delivered — the gap is accounted, not hidden.
	if want := "onefive"; string(got) != want {
		t.Fatalf("got %q, want %q", got, want)
	}
	if v := reg.Counter("ccx.rx_gap_events").Value(); v != 1 {
		t.Fatalf("rx_gap_events = %d, want 1", v)
	}
	if v := reg.Counter("ccx.rx_gap_blocks").Value(); v != 3 {
		t.Fatalf("rx_gap_blocks = %d, want 3", v)
	}
	var gapRecs int
	for _, rec := range trace.Recent(0) {
		if rec.GapBlocks > 0 {
			gapRecs++
			if rec.GapBlocks != 3 || rec.FrameSeq != 5 {
				t.Fatalf("gap record = %+v", rec)
			}
		}
	}
	if gapRecs != 1 {
		t.Fatalf("gap trace records = %d, want 1", gapRecs)
	}
}

func TestReaderUnsequencedFramesBypassTracker(t *testing.T) {
	var buf []byte
	var err error
	buf, _, err = codec.AppendFrame(buf, nil, codec.None, []byte("plain"))
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	var tr DeliveryTracker
	r := NewReader(bytes.NewReader(buf), nil, nil)
	r.SetDeliveryTracker(&tr)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(got) != "plain" {
		t.Fatalf("got %q", got)
	}
	if _, started := tr.LastDelivered(); started {
		t.Fatal("unsequenced frame touched the tracker")
	}
}
