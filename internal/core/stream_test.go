package core

import (
	"bytes"
	"io"
	"net"
	"testing"

	"ccx/internal/codec"
	"ccx/internal/datagen"
	"ccx/internal/selector"
)

func smallBlockEngine(t *testing.T, blockSize int) *Engine {
	t.Helper()
	cfg := selector.DefaultConfig()
	cfg.BlockSize = blockSize
	e, err := NewEngine(Config{Selector: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestWriterReaderRoundtrip(t *testing.T) {
	e := smallBlockEngine(t, 8*1024)
	data := datagen.OISTransactions(100*1024, 0.9, 1)

	var wire bytes.Buffer
	w := NewWriter(&wire, e, nil)
	// Write in awkward sizes to exercise buffering.
	for off := 0; off < len(data); {
		n := 3000
		if off+n > len(data) {
			n = len(data) - off
		}
		if _, err := w.Write(data[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if wire.Len() == 0 {
		t.Fatal("nothing written")
	}

	r := NewReader(&wire, nil, nil)
	got, err := io.ReadAll(r)
	if err != io.EOF && err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("roundtrip mismatch: %d vs %d bytes", len(got), len(data))
	}
}

func TestWriterCloseFlushesPartial(t *testing.T) {
	e := smallBlockEngine(t, 64*1024)
	var wire bytes.Buffer
	w := NewWriter(&wire, e, nil)
	if _, err := w.Write([]byte("short tail")); err != nil {
		t.Fatal(err)
	}
	if wire.Len() != 0 {
		t.Fatal("partial block flushed early")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal("double close errored")
	}
	r := NewReader(&wire, nil, nil)
	got, _ := io.ReadAll(r)
	if string(got) != "short tail" {
		t.Fatalf("got %q", got)
	}
}

func TestWriterRejectsAfterClose(t *testing.T) {
	e := smallBlockEngine(t, 1024)
	w := NewWriter(io.Discard, e, nil)
	w.Close()
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("write after close accepted")
	}
}

func TestWriterBlockCallback(t *testing.T) {
	e := smallBlockEngine(t, 4*1024)
	var results []BlockResult
	w := NewWriter(io.Discard, e, func(r BlockResult) { results = append(results, r) })
	data := datagen.OISTransactions(20*1024, 0.9, 1)
	w.Write(data)
	w.Close()
	if len(results) != 5 {
		t.Fatalf("got %d block callbacks", len(results))
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("indices out of order: %+v", results)
		}
	}
}

func TestReaderBlockInfoCallback(t *testing.T) {
	e := smallBlockEngine(t, 4*1024)
	var wire bytes.Buffer
	w := NewWriter(&wire, e, nil)
	w.Write(datagen.OISTransactions(12*1024, 0.9, 1))
	w.Close()
	var infos []codec.BlockInfo
	r := NewReader(&wire, nil, func(i codec.BlockInfo) { infos = append(infos, i) })
	io.ReadAll(r)
	if len(infos) != 3 {
		t.Fatalf("got %d infos", len(infos))
	}
}

func TestReaderPropagatesCorruption(t *testing.T) {
	e := smallBlockEngine(t, 4*1024)
	var wire bytes.Buffer
	w := NewWriter(&wire, e, nil)
	w.Write(datagen.OISTransactions(8*1024, 0.9, 1))
	w.Close()
	raw := wire.Bytes()
	raw[len(raw)-1] ^= 0xFF
	r := NewReader(bytes.NewReader(raw), nil, nil)
	if _, err := io.ReadAll(r); err == nil {
		t.Fatal("corruption not surfaced")
	}
}

func TestWriterReaderOverTCP(t *testing.T) {
	// End-to-end over a real socket: adaptation runs on genuine send timing.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	data := datagen.OISTransactions(600*1024, 0.9, 2)
	recvDone := make(chan []byte, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			recvDone <- nil
			return
		}
		defer conn.Close()
		r := NewReader(conn, nil, nil)
		got, _ := io.ReadAll(r)
		recvDone <- got
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	e := smallBlockEngine(t, 64*1024)
	w := NewWriter(conn, e, nil)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	got := <-recvDone
	if !bytes.Equal(got, data) {
		t.Fatalf("TCP roundtrip mismatch: %d vs %d bytes", len(got), len(data))
	}
}
