package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ccx/internal/codec"
	"ccx/internal/datagen"
	"ccx/internal/netsim"
	"ccx/internal/selector"
)

// virtualNow returns a deterministic clock advancing fixedStep per call.
func virtualNow(step time.Duration) func() time.Time {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineDefaults(t *testing.T) {
	e := newTestEngine(t, Config{})
	if e.BlockSize() != selector.DefaultBlockSize {
		t.Fatalf("BlockSize = %d", e.BlockSize())
	}
	if e.Registry() == nil || e.Monitor() == nil {
		t.Fatal("missing components")
	}
}

func TestNewEngineInvalidConfig(t *testing.T) {
	if _, err := NewEngine(Config{Selector: selector.Config{BlockSize: -1, SendVsReduce: 1, StrongVsReduce: 2, SampleCutoff: 0.5}}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestFirstBlockUncompressed(t *testing.T) {
	e := newTestEngine(t, Config{})
	block := datagen.OISTransactions(128*1024, 0.9, 1)
	dec := e.Decide(block)
	if dec.Method != codec.None {
		t.Fatalf("first block = %v, want none (paper convention)", dec.Method)
	}
}

func TestDecideAfterSlowObservations(t *testing.T) {
	e := newTestEngine(t, Config{Now: virtualNow(time.Millisecond)})
	block := datagen.OISTransactions(128*1024, 0.9, 1)
	// Feed the monitor a slow line: 128 KB in 2 s ≈ 65 KB/s.
	e.Monitor().Observe(128*1024, 2*time.Second)
	dec := e.Decide(block)
	if dec.Method != codec.LempelZiv && dec.Method != codec.BurrowsWheeler {
		t.Fatalf("slow line on repetitive data = %v, want a dictionary method", dec.Method)
	}
}

func TestDecideFastLine(t *testing.T) {
	e := newTestEngine(t, Config{})
	block := datagen.OISTransactions(128*1024, 0.9, 1)
	// 1 GB/s: sending is far cheaper than compressing.
	e.Monitor().Observe(128*1024, 130*time.Microsecond)
	dec := e.Decide(block)
	if dec.Method != codec.None {
		t.Fatalf("fast line = %v, want none", dec.Method)
	}
}

func TestDecideIncompressibleData(t *testing.T) {
	e := newTestEngine(t, Config{})
	block := datagen.Random(128*1024, 2)
	e.Monitor().Observe(128*1024, 10*time.Second) // terrible line
	dec := e.Decide(block)
	if dec.Method != codec.None {
		t.Fatalf("random data = %v, want none", dec.Method)
	}
}

func TestProbeOverlap(t *testing.T) {
	e := newTestEngine(t, Config{})
	blockA := datagen.OISTransactions(64*1024, 0.9, 1)
	blockB := datagen.Random(64*1024, 2)
	e.StartProbe(blockB)
	// Decide must consume the probe for blockB (which is random), not probe
	// blockA: so even on a slow line the decision is None.
	e.Monitor().Observe(64*1024, 10*time.Second)
	dec := e.Decide(blockA)
	if dec.Method != codec.None {
		t.Fatalf("probe overlap broken: got %v", dec.Method)
	}
	// Next decide has no pending probe: falls back to probing blockA itself.
	dec = e.Decide(blockA)
	if dec.Method == codec.None {
		t.Fatalf("synchronous probe fallback broken: got %v", dec.Method)
	}
}

// fakeLimiter is a scripted MethodLimiter standing in for the overload
// governor.
type fakeLimiter struct {
	max     codec.Method
	cause   string
	on      bool
	demoted []codec.Method // NoteDemoted from-methods, in order
}

func (l *fakeLimiter) CapMethod() (codec.Method, string, bool) { return l.max, l.cause, l.on }
func (l *fakeLimiter) NoteDemoted(from, to codec.Method)       { l.demoted = append(l.demoted, from) }

func TestLimiterDemotesSelection(t *testing.T) {
	lim := &fakeLimiter{max: codec.Huffman, cause: "cpu critical", on: true}
	e := newTestEngine(t, Config{Now: virtualNow(time.Millisecond), Limiter: lim})
	block := datagen.OISTransactions(128*1024, 0.9, 1)
	e.Monitor().Observe(128*1024, 2*time.Second) // slow line: wants LZ/BWT
	dec := e.Decide(block)
	if dec.Method != codec.Huffman {
		t.Fatalf("capped decision = %v, want huffman", dec.Method)
	}
	if !dec.Demoted || dec.DemoteCause != "cpu critical" {
		t.Fatalf("demotion not recorded: %+v", dec)
	}
	if dec.DemotedFrom != codec.LempelZiv && dec.DemotedFrom != codec.BurrowsWheeler {
		t.Fatalf("DemotedFrom = %v, want a dictionary method", dec.DemotedFrom)
	}
	if len(lim.demoted) != 1 || lim.demoted[0] != dec.DemotedFrom {
		t.Fatalf("NoteDemoted calls = %v", lim.demoted)
	}
	reason := dec.Reason()
	for _, want := range []string{"governor demoted", "cpu critical"} {
		if !strings.Contains(reason, want) {
			t.Fatalf("Reason %q missing %q", reason, want)
		}
	}
}

func TestLimiterLeavesCompliantSelectionAlone(t *testing.T) {
	// Cap at the top of the ladder: nothing the selector picks outranks it.
	lim := &fakeLimiter{max: codec.BurrowsWheeler, cause: "cpu elevated", on: true}
	e := newTestEngine(t, Config{Now: virtualNow(time.Millisecond), Limiter: lim})
	block := datagen.OISTransactions(128*1024, 0.9, 1)
	e.Monitor().Observe(128*1024, 2*time.Second)
	if dec := e.Decide(block); dec.Demoted || len(lim.demoted) != 0 {
		t.Fatalf("decision under a non-binding cap was demoted: %+v", dec)
	}
	// Inactive limiter (ok=false): even a tight cap is ignored.
	lim2 := &fakeLimiter{max: codec.None, cause: "cpu critical", on: false}
	e2 := newTestEngine(t, Config{Now: virtualNow(time.Millisecond), Limiter: lim2})
	e2.Monitor().Observe(128*1024, 2*time.Second)
	if dec := e2.Decide(block); dec.Demoted || dec.Method == codec.None {
		t.Fatalf("inactive limiter interfered: %+v", dec)
	}
	// A None selection is never "demoted" — there is nothing cheaper.
	lim3 := &fakeLimiter{max: codec.None, cause: "cpu critical", on: true}
	e3 := newTestEngine(t, Config{Limiter: lim3})
	fast := datagen.Random(128*1024, 2)
	e3.Monitor().Observe(128*1024, 10*time.Second)
	if dec := e3.Decide(fast); dec.Method != codec.None || dec.Demoted {
		t.Fatalf("incompressible block under cap: %+v", dec)
	}
}

// linkSend adapts a netsim link to SendFunc.
func linkSend(link *netsim.Link) SendFunc {
	return func(frame []byte) (time.Duration, error) {
		return link.Send(len(frame)), nil
	}
}

func TestSessionStreamOverSimulatedSlowLink(t *testing.T) {
	clk := netsim.NewVirtual()
	e := newTestEngine(t, Config{Now: virtualNow(100 * time.Microsecond)})
	link := netsim.NewLink(netsim.Slow1M, clk, 7)
	data := datagen.OISTransactions(1<<20, 0.9, 3)

	s := NewSession(e)
	results, err := s.Stream(data, linkSend(link), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("got %d blocks", len(results))
	}
	if results[0].Decision.Method != codec.None {
		t.Fatalf("block 0 method = %v", results[0].Decision.Method)
	}
	// After the first observation the slow link must trigger compression.
	compressed := 0
	var wire int
	for _, r := range results {
		wire += r.WireBytes
		if r.Decision.Method != codec.None {
			compressed++
		}
	}
	if compressed < 6 {
		t.Fatalf("only %d of %d blocks compressed on a 1 MBit link", compressed, len(results))
	}
	if wire >= len(data) {
		t.Fatalf("no net reduction: %d wire bytes for %d data bytes", wire, len(data))
	}
}

// paperCPU scales the probe's reducing speed down to the paper's Figure 4
// regime (≈2-3 MB/s for Lempel-Ziv on the Sun-Fire): with the 100 µs
// virtual probe tick, a 4 KB OIS sample reduces ≈2.9 KB → ≈29 MB/s raw, so
// a scale of 12 lands at ≈2.4 MB/s.
const paperCPU = 12

func TestSessionStreamFastLinkStaysRaw(t *testing.T) {
	clk := netsim.NewVirtual()
	e := newTestEngine(t, Config{Now: virtualNow(100 * time.Microsecond), SpeedScale: paperCPU})
	link := netsim.NewLink(netsim.Gigabit, clk, 7)
	data := datagen.OISTransactions(1<<20, 0.9, 3)
	s := NewSession(e)
	results, err := s.Stream(data, linkSend(link), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Decision.Method != codec.None {
			t.Fatalf("block %d compressed (%v) on a gigabit link", r.Index, r.Decision.Method)
		}
	}
}

func TestSessionRoundtripDecodable(t *testing.T) {
	// Whatever the engine sends must decode back to the original stream.
	clk := netsim.NewVirtual()
	e := newTestEngine(t, Config{Now: virtualNow(50 * time.Microsecond)})
	link := netsim.NewLink(netsim.Slow1M, clk, 9)
	data := datagen.OISTransactions(512*1024, 0.8, 5)

	var wire bytes.Buffer
	send := func(frame []byte) (time.Duration, error) {
		wire.Write(frame)
		return link.Send(len(frame)), nil
	}
	s := NewSession(e)
	if _, err := s.Stream(data, send, nil); err != nil {
		t.Fatal(err)
	}
	fr := codec.NewFrameReader(&wire, nil)
	var got bytes.Buffer
	for got.Len() < len(data) {
		block, _, err := fr.ReadBlock()
		if err != nil {
			t.Fatal(err)
		}
		got.Write(block)
	}
	if !bytes.Equal(got.Bytes(), data) {
		t.Fatal("stream did not roundtrip")
	}
}

func TestSessionOnBlockCallback(t *testing.T) {
	clk := netsim.NewVirtual()
	e := newTestEngine(t, Config{})
	link := netsim.NewLink(netsim.Fast100, clk, 1)
	var seen []int
	s := NewSession(e)
	_, err := s.Stream(datagen.OISTransactions(300*1024, 0.9, 1), linkSend(link), func(r BlockResult) {
		seen = append(seen, r.Index)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != 0 || seen[2] != 2 {
		t.Fatalf("callback indices = %v", seen)
	}
}

// TestAdaptationUnderLoadSwing reproduces the Figure 8 dynamic in miniature:
// unloaded → raw; loaded → dictionary method; unloaded again → raw.
func TestAdaptationUnderLoadSwing(t *testing.T) {
	clk := netsim.NewVirtual()
	e := newTestEngine(t, Config{Now: virtualNow(100 * time.Microsecond), SpeedScale: paperCPU})
	link := netsim.NewLink(netsim.Fast100, clk, 3)
	loaded := false
	link.SetLoad(func(time.Time) float64 {
		if loaded {
			return 0.97
		}
		return 0
	})
	data := datagen.OISTransactions(e.BlockSize()*4, 0.9, 1)
	blocks := make([][]byte, 0, 18)
	for i := 0; i < 18; i++ {
		blocks = append(blocks, data[(i%4)*e.BlockSize():(i%4+1)*e.BlockSize()])
	}
	s := NewSession(e)
	var methods []codec.Method
	phase := 0
	_, err := s.StreamBlocks(blocks, func(frame []byte) (time.Duration, error) {
		d := link.Send(len(frame))
		phase++
		if phase == 4 {
			loaded = true // load arrives mid-stream
		}
		if phase == 8 {
			loaded = false
		}
		return d, nil
	}, func(r BlockResult) {
		methods = append(methods, r.Decision.Method)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1 (blocks 0-3): mostly raw. Phase 2 (5-8ish): compressed.
	if methods[1] != codec.None {
		t.Fatalf("unloaded phase compressed: %v", methods)
	}
	sawCompressed := false
	for _, m := range methods[5:9] {
		if m == codec.LempelZiv || m == codec.BurrowsWheeler {
			sawCompressed = true
		}
	}
	if !sawCompressed {
		t.Fatalf("loaded phase never compressed: %v", methods)
	}
	// Recovery: the tail returns to raw once load clears.
	if methods[len(methods)-1] != codec.None {
		t.Fatalf("did not recover to raw: %v", methods)
	}
}
