package core

import (
	"fmt"

	"time"

	"ccx/internal/codec"
	"ccx/internal/metrics"
	"ccx/internal/obs"
	"ccx/internal/selector"
	"ccx/internal/tracing"
)

// Telemetry wires an adaptation loop into the observability plane. Both
// fields are optional and nil by default: a zero Telemetry disables all
// instrumentation, and every hot-path hook is gated on a single nil check,
// so un-instrumented engines pay nothing.
type Telemetry struct {
	// Metrics receives latency/size/ratio histograms and method-mix
	// counters under "ccx.*" names (shared across engines on the same
	// registry, so distributions aggregate per process).
	Metrics *metrics.Registry
	// Trace receives one obs.Record per transmitted (or received) block.
	Trace *obs.DecisionLog
	// Stream labels this loop's trace records ("send", "sub.3", ...).
	Stream string
	// Tracer records distributed-trace spans for head-sampled blocks (and
	// always for anomalies). On a sending engine it also owns the sampling
	// decision: sampled blocks get a trace context stamped into their frame
	// annotation. nil disables tracing entirely.
	Tracer *tracing.Tracer
}

// enabled reports whether any sink is configured.
func (t Telemetry) enabled() bool { return t.Metrics != nil || t.Trace != nil || t.Tracer != nil }

// txInstruments are the send-side metrics, resolved once at engine build
// so the per-block path touches only atomics.
type txInstruments struct {
	encodeLat *metrics.Histogram      // ccx.encode_seconds
	sendLat   *metrics.Histogram      // ccx.send_seconds
	blockIn   *metrics.Histogram      // ccx.tx_block_bytes (original)
	wireOut   *metrics.Histogram      // ccx.tx_wire_bytes (frame)
	blocks    *metrics.Counter        // ccx.tx_blocks
	fallbacks *metrics.Counter        // ccx.tx_fallbacks
	pipeDepth *metrics.Gauge          // ccx.pipeline_depth (blocks in flight)
	pipeWait  *metrics.Histogram      // ccx.pipeline_wait_seconds
	ratio     [256]*metrics.Histogram // ccx.ratio.<method>
	methods   [256]*metrics.Counter   // ccx.tx_method.<method>

	placements [selector.NumPlacements]*metrics.Counter // ccx.tx_placement.<name>
}

// newTxInstruments resolves the send-side metric set against reg. The
// per-method slots cover every codec registered at engine build; methods
// deployed afterwards still count in the aggregate histograms but skip the
// per-method views.
func newTxInstruments(reg *metrics.Registry, codecs *codec.Registry) *txInstruments {
	ins := &txInstruments{
		encodeLat: reg.Histogram("ccx.encode_seconds", metrics.LatencyBuckets),
		sendLat:   reg.Histogram("ccx.send_seconds", metrics.LatencyBuckets),
		blockIn:   reg.Histogram("ccx.tx_block_bytes", metrics.SizeBuckets),
		wireOut:   reg.Histogram("ccx.tx_wire_bytes", metrics.SizeBuckets),
		blocks:    reg.Counter("ccx.tx_blocks"),
		fallbacks: reg.Counter("ccx.tx_fallbacks"),
		pipeDepth: reg.Gauge("ccx.pipeline_depth"),
		pipeWait:  reg.Histogram("ccx.pipeline_wait_seconds", metrics.LatencyBuckets),
	}
	for _, m := range codecs.Methods() {
		ins.ratio[m] = reg.Histogram(fmt.Sprintf("ccx.ratio.%s", m), metrics.RatioBuckets)
		ins.methods[m] = reg.Counter(fmt.Sprintf("ccx.tx_method.%s", m))
	}
	for p := selector.Placement(0); p < selector.NumPlacements; p++ {
		ins.placements[p] = reg.Counter(fmt.Sprintf("ccx.tx_placement.%s", p))
	}
	return ins
}

// Telemetry returns the engine's telemetry wiring (zero value when none).
func (e *Engine) Telemetry() Telemetry { return e.tel }

// ObserveBlock feeds one transmitted block into the engine's telemetry:
// histograms for encode/send latency, block and wire sizes, per-method
// realized ratio; and a decision-trace record carrying the selector's
// inputs alongside the realized outcome. No-op without telemetry.
//
// Session.TransmitBlock calls this for every block; transports that frame
// blocks themselves (the broker's per-subscriber loop) call it directly.
func (e *Engine) ObserveBlock(res BlockResult) {
	if !e.tel.enabled() {
		return
	}
	if ins := e.tx; ins != nil {
		ins.blocks.Inc()
		ins.encodeLat.ObserveDuration(res.CompressTime)
		if res.SendTime > 0 {
			ins.sendLat.ObserveDuration(res.SendTime)
		}
		ins.blockIn.Observe(float64(res.Info.OrigLen))
		ins.wireOut.Observe(float64(res.WireBytes))
		if res.Info.Fallback {
			ins.fallbacks.Inc()
		}
		if h := ins.ratio[res.Info.Method]; h != nil {
			h.Observe(res.Info.Ratio())
		}
		if c := ins.methods[res.Info.Method]; c != nil {
			c.Inc()
		}
		if pl := res.Decision.Placement; pl.Valid() {
			ins.placements[pl].Inc()
		}
	}
	if e.tel.Trace != nil {
		in := res.Decision.Inputs
		e.tel.Trace.Add(obs.Record{
			Stream:       e.tel.Stream,
			Block:        res.Index,
			BlockLen:     in.BlockLen,
			GoodputBps:   e.mon.Goodput(),
			ProbeRatio:   in.ProbeRatio,
			ReduceSpeed:  in.ReducingSpeed,
			Entropy:      in.Entropy,
			Repetition:   in.Repetition,
			PredSendNs:   int64(in.SendTime),
			PredReduceNs: int64(res.Decision.LZReduceTime),
			Method:       res.Info.Method.String(),
			Placement:    res.Decision.Placement.String(),
			Reason:       res.Decision.Reason(),
			WireBytes:    res.WireBytes,
			Ratio:        res.Info.Ratio(),
			EncodeNs:     int64(res.CompressTime),
			SendNs:       int64(res.SendTime),
			Fallback:     res.Info.Fallback,
			Workers:      res.Workers,
			PipeWaitNs:   int64(res.PipelineWait),
			Trace:        res.Decision.Trace,
		})
	}
}

// recordTxSpans appends the send-side span set for one sampled block. The
// spans are reconstructed backwards from endNs (the wall clock right after
// the write returned) using the measured phase durations, so the unsampled
// hot path takes zero extra timestamps. pipeWait is the sequencer stall
// (0 on the sequential loop).
func (e *Engine) recordTxSpans(tc tracing.Context, seq uint64, res BlockResult, endNs int64, pipeWait time.Duration) {
	tr := e.tel.Tracer
	if tr == nil || !tc.Valid() {
		return
	}
	wr := int64(res.SendTime)
	wait := int64(pipeWait)
	enc := int64(res.CompressTime)
	probe := int64(res.Decision.Inputs.ProbeTime)
	method := res.Info.Method.String()
	placement := res.Decision.Placement.String()
	base := tracing.Span{Trace: tc.Trace, Seq: seq, Stream: e.tel.Stream, Method: method, Placement: placement}

	s := base
	s.Stage, s.Start, s.Dur = tracing.StageProbe, endNs-wr-wait-enc-probe, probe
	tr.Record(s)
	s = base
	s.Stage, s.Start, s.Dur, s.Bytes = tracing.StageEncode, endNs-wr-wait-enc, enc, res.WireBytes
	tr.Record(s)
	if wait > 0 {
		s = base
		s.Stage, s.Start, s.Dur = tracing.StagePipeWait, endNs-wr-wait, wait
		tr.Record(s)
	}
	s = base
	s.Stage, s.Start, s.Dur, s.Bytes = tracing.StageWrite, endNs-wr, wr, res.WireBytes
	tr.Record(s)
}

// rxInstruments are the receive-side metrics, resolved by SetTelemetry.
// The per-method counters fill lazily; the Reader is sequential (one
// goroutine), so the array needs no synchronization.
type rxInstruments struct {
	decodeLat *metrics.Histogram // ccx.decode_seconds
	wireIn    *metrics.Histogram // ccx.rx_wire_bytes
	blockOut  *metrics.Histogram // ccx.rx_block_bytes
	blocks    *metrics.Counter   // ccx.rx_blocks
	corrupt   *metrics.Counter   // ccx.rx_corrupt_frames
	dups      *metrics.Counter   // ccx.rx_dup_frames
	gapEvents *metrics.Counter   // ccx.rx_gap_events
	gapBlocks *metrics.Counter   // ccx.rx_gap_blocks
	methods   [256]*metrics.Counter
}

// SetTelemetry instruments the Reader: every decoded block observes the
// decode-latency and size histograms and appends a trace record; every
// corrupt frame offered to the corrupt handler bumps ccx.rx_corrupt_frames
// and appends a Corrupt trace record documenting the skipped block. Call
// before the first Read; pass a zero Telemetry to disable.
func (r *Reader) SetTelemetry(t Telemetry) {
	r.tel = t
	if t.Metrics == nil {
		r.rx = nil
		return
	}
	r.rx = &rxInstruments{
		decodeLat: t.Metrics.Histogram("ccx.decode_seconds", metrics.LatencyBuckets),
		wireIn:    t.Metrics.Histogram("ccx.rx_wire_bytes", metrics.SizeBuckets),
		blockOut:  t.Metrics.Histogram("ccx.rx_block_bytes", metrics.SizeBuckets),
		blocks:    t.Metrics.Counter("ccx.rx_blocks"),
		corrupt:   t.Metrics.Counter("ccx.rx_corrupt_frames"),
		dups:      t.Metrics.Counter("ccx.rx_dup_frames"),
		gapEvents: t.Metrics.Counter("ccx.rx_gap_events"),
		gapBlocks: t.Metrics.Counter("ccx.rx_gap_blocks"),
	}
}

// observeBlock records one successfully decoded block.
func (r *Reader) observeBlock(info codec.BlockInfo) {
	if ins := r.rx; ins != nil {
		ins.blocks.Inc()
		ins.decodeLat.ObserveDuration(info.DecodeTime)
		ins.wireIn.Observe(float64(info.CompLen))
		ins.blockOut.Observe(float64(info.OrigLen))
		c := ins.methods[info.Method]
		if c == nil {
			c = r.tel.Metrics.Counter(fmt.Sprintf("ccx.rx_method.%s", info.Method))
			ins.methods[info.Method] = c
		}
		c.Inc()
	}
	if r.tel.Trace != nil {
		r.tel.Trace.Add(obs.Record{
			Stream:    r.tel.Stream,
			Block:     r.seq,
			BlockLen:  info.OrigLen,
			Method:    info.Method.String(),
			WireBytes: info.CompLen,
			Ratio:     info.Ratio(),
			Fallback:  info.Fallback,
			DecodeNs:  int64(info.DecodeTime),
			FrameSeq:  info.Seq,
		})
	}
	if tr := r.tel.Tracer; tr != nil && len(info.Anno) > 0 {
		if tc := tracing.ParseAnno(info.Anno); tc.Valid() {
			now := time.Now().UnixNano()
			tr.Record(tracing.Span{
				Trace:      tc.Trace,
				Seq:        info.Seq,
				Stream:     r.tel.Stream,
				Stage:      tracing.StageDecode,
				Start:      now - int64(info.DecodeTime),
				Dur:        int64(info.DecodeTime),
				OriginWall: tc.WallNs,
				Method:     info.Method.String(),
				Bytes:      info.CompLen,
			})
		}
	}
}

// observeDup records one replayed duplicate the delivery tracker
// suppressed: counted and traced, never delivered.
func (r *Reader) observeDup(info codec.BlockInfo) {
	if r.rx != nil {
		r.rx.dups.Inc()
	}
	if r.tel.Trace != nil {
		r.tel.Trace.Add(obs.Record{
			Stream:   r.tel.Stream,
			Block:    r.seq,
			Method:   info.Method.String(),
			FrameSeq: info.Seq,
			Dup:      true,
		})
	}
	if tr := r.tel.Tracer; tr != nil {
		tr.Record(tracing.Span{
			Trace:   tracing.ParseAnno(info.Anno).Trace,
			Seq:     info.Seq,
			Stream:  r.tel.Stream,
			Stage:   tracing.StageDup,
			Start:   time.Now().UnixNano(),
			Anomaly: true,
		})
	}
}

// observeGap records a sequence discontinuity: blocks blocks are known
// lost immediately before the frame carrying seq.
func (r *Reader) observeGap(seq, blocks uint64) {
	if r.rx != nil {
		r.rx.gapEvents.Inc()
		r.rx.gapBlocks.Add(int64(blocks))
	}
	if r.tel.Trace != nil {
		r.tel.Trace.Add(obs.Record{
			Stream:    r.tel.Stream,
			Block:     r.seq,
			FrameSeq:  seq,
			GapBlocks: blocks,
		})
	}
	if tr := r.tel.Tracer; tr != nil {
		tr.Record(tracing.Span{
			Seq:     seq,
			Stream:  r.tel.Stream,
			Stage:   tracing.StageGap,
			Start:   time.Now().UnixNano(),
			Bytes:   int(blocks),
			Anomaly: true,
		})
	}
}

// observeCorrupt records one corrupt frame the reader skipped via resync.
func (r *Reader) observeCorrupt(err error) {
	if r.rx != nil {
		r.rx.corrupt.Inc()
	}
	if r.tel.Trace != nil {
		r.tel.Trace.Add(obs.Record{
			Stream:  r.tel.Stream,
			Block:   r.seq,
			Corrupt: true,
			Err:     err.Error(),
		})
	}
	if tr := r.tel.Tracer; tr != nil {
		tr.Record(tracing.Span{
			Stream:  r.tel.Stream,
			Stage:   tracing.StageResync,
			Start:   time.Now().UnixNano(),
			Err:     err.Error(),
			Anomaly: true,
		})
	}
}
