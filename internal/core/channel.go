package core

import (
	"bytes"
	"fmt"
	"strconv"
	"time"

	"ccx/internal/codec"
	"ccx/internal/echo"
)

// Quality attribute names used by the compression integration (§3.2). They
// are globally named so every layer interprets them identically.
const (
	// AttrMethod carries the wire method of an event's payload.
	AttrMethod = "ccx.method"
	// AttrOrigLen carries the payload's original length.
	AttrOrigLen = "ccx.origlen"
	// AttrGoodput is the consumer's reported acceptance rate in bytes/s —
	// the upstream feedback that drives the producer's selector.
	AttrGoodput = "ccx.goodput"
	// AttrRequestMethod lets a consumer explicitly request a method change
	// at the source (the paper's dynamic change instructions).
	AttrRequestMethod = "ccx.request-method"
	// AttrSeq carries a block's per-channel sequence number (decimal) on
	// events flowing through a replay-capable transport such as the fan-out
	// broker. Consumers use it for dedup and gap accounting across resumes.
	AttrSeq = "ccx.seq"
)

// DeriveCompressed derives a new channel from src whose events carry
// framed, adaptively compressed payloads — the §3.2 integration where
// compression methods run as handlers on a derived event channel. The
// engine picks a method per event payload (events are the natural block
// unit in middleware use; oversized payloads are still framed as one
// logical block per frame split).
//
// The producer-side engine listens for AttrGoodput feedback on the derived
// channel, completing the end-to-end loop across address spaces.
func DeriveCompressed(src *echo.EventChannel, name string, e *Engine) (*echo.EventChannel, error) {
	fw := newEventFramer(e)
	derived, err := src.Derive(name, func(ev echo.Event) (echo.Event, bool) {
		frame, info, err := fw.encode(ev.Data)
		if err != nil {
			// A handler cannot surface errors to the producer mid-stream;
			// fall back to transporting the event unmodified but flagged.
			attrs := ev.Attrs.Clone()
			if attrs == nil {
				attrs = echo.Attributes{}
			}
			attrs[AttrMethod] = codec.None.String()
			return echo.Event{Data: ev.Data, Attrs: attrs}, true
		}
		attrs := ev.Attrs.Clone()
		if attrs == nil {
			attrs = echo.Attributes{}
		}
		attrs[AttrMethod] = info.Method.String()
		attrs[AttrOrigLen] = strconv.Itoa(info.OrigLen)
		return echo.Event{Data: frame, Attrs: attrs}, true
	})
	if err != nil {
		return nil, err
	}
	// Feedback path: consumers report goodput via attributes; feed the
	// engine's monitor.
	derived.WatchAttrs(func(key, value string) {
		if key != AttrGoodput {
			return
		}
		if rate, err := strconv.ParseFloat(value, 64); err == nil {
			e.Monitor().ObserveRate(rate)
		}
	})
	return derived, nil
}

// eventFramer reuses a Session-like encoder for event payloads.
type eventFramer struct {
	e   *Engine
	buf bytes.Buffer
	fw  *codec.FrameWriter
}

func newEventFramer(e *Engine) *eventFramer {
	f := &eventFramer{e: e}
	f.fw = codec.NewFrameWriter(&f.buf, e.Registry())
	return f
}

func (f *eventFramer) encode(payload []byte) ([]byte, codec.BlockInfo, error) {
	dec := f.e.Decide(payload)
	f.buf.Reset()
	info, err := f.fw.WriteBlock(dec.Method, payload)
	if err != nil {
		return nil, info, err
	}
	out := make([]byte, f.buf.Len())
	copy(out, f.buf.Bytes())
	return out, info, nil
}

// DecodeEvent decompresses an event produced by DeriveCompressed. reg may
// be nil for built-in methods.
func DecodeEvent(ev echo.Event, reg *codec.Registry) ([]byte, codec.BlockInfo, error) {
	if m, ok := ev.Attrs[AttrMethod]; ok && m == codec.None.String() {
		// Either an uncompressed fallback or a raw frame; try the frame
		// first, fall back to the raw payload.
		if data, info, err := codec.NewFrameReader(bytes.NewReader(ev.Data), reg).ReadBlock(); err == nil {
			return data, info, nil
		}
		return ev.Data, codec.BlockInfo{Method: codec.None, OrigLen: len(ev.Data), CompLen: len(ev.Data)}, nil
	}
	return codec.NewFrameReader(bytes.NewReader(ev.Data), reg).ReadBlock()
}

// SubscribeDecompressed subscribes fn to a compressed channel, transparently
// decoding payloads and reporting goodput feedback upstream every
// feedbackEvery events (0 disables feedback). It returns the subscription.
func SubscribeDecompressed(ch *echo.EventChannel, reg *codec.Registry, feedbackEvery int, fn func(data []byte, info codec.BlockInfo)) *echo.Subscription {
	var (
		count     int
		bytesAcc  int64
		lastStamp = time.Now()
	)
	return ch.Subscribe(func(ev echo.Event) {
		data, info, err := DecodeEvent(ev, reg)
		if err != nil {
			// Corrupt events are dropped; the frame CRC already localizes
			// the fault.
			return
		}
		fn(data, info)
		if feedbackEvery <= 0 {
			return
		}
		count++
		bytesAcc += int64(info.CompLen)
		if count%feedbackEvery == 0 {
			elapsed := time.Since(lastStamp)
			lastStamp = time.Now()
			if elapsed > 0 && bytesAcc > 0 {
				rate := float64(bytesAcc) / elapsed.Seconds()
				ch.SetAttr(AttrGoodput, fmt.Sprintf("%.0f", rate))
				bytesAcc = 0
			}
		}
	})
}
