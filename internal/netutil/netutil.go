// Package netutil holds small net.Conn helpers shared by the TCP tools and
// the fan-out broker. Its main job is idle-timeout enforcement: the repo's
// transports block forever on a dead peer without it, because raw TCP
// reads/writes carry no deadline by default.
package netutil

import (
	"net"
	"time"
)

// deadlineConn arms a fresh deadline before every Read and Write, turning a
// one-shot net.Conn deadline into a rolling idle timeout: any single
// operation that stalls longer than the timeout fails with a timeout error
// instead of hanging.
type deadlineConn struct {
	net.Conn
	readTimeout  time.Duration
	writeTimeout time.Duration
}

// WithTimeout wraps conn so every Read and Write must complete within d.
// A non-positive d returns conn unchanged.
func WithTimeout(conn net.Conn, d time.Duration) net.Conn {
	return WithTimeouts(conn, d, d)
}

// WithTimeouts wraps conn with independent read and write idle timeouts;
// a non-positive value disables that side. If both are non-positive, conn
// is returned unchanged.
func WithTimeouts(conn net.Conn, read, write time.Duration) net.Conn {
	if read <= 0 && write <= 0 {
		return conn
	}
	return &deadlineConn{Conn: conn, readTimeout: read, writeTimeout: write}
}

// Read implements net.Conn with a rolling read deadline.
func (c *deadlineConn) Read(p []byte) (int, error) {
	if c.readTimeout > 0 {
		if err := c.Conn.SetReadDeadline(time.Now().Add(c.readTimeout)); err != nil {
			return 0, err
		}
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn with a rolling write deadline.
func (c *deadlineConn) Write(p []byte) (int, error) {
	if c.writeTimeout > 0 {
		if err := c.Conn.SetWriteDeadline(time.Now().Add(c.writeTimeout)); err != nil {
			return 0, err
		}
	}
	return c.Conn.Write(p)
}
