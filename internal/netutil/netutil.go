// Package netutil holds small net.Conn helpers shared by the TCP tools and
// the fan-out broker. Its main job is idle-timeout enforcement: the repo's
// transports block forever on a dead peer without it, because raw TCP
// reads/writes carry no deadline by default.
package netutil

import (
	"io"
	"net"
	"time"
)

// deadlineConn arms a fresh deadline before every Read and Write, turning a
// one-shot net.Conn deadline into a rolling idle timeout: any single
// operation that stalls longer than the timeout fails with a timeout error
// instead of hanging.
type deadlineConn struct {
	net.Conn
	readTimeout  time.Duration
	writeTimeout time.Duration
}

// WithTimeout wraps conn so every Read and Write must complete within d.
// A non-positive d returns conn unchanged.
func WithTimeout(conn net.Conn, d time.Duration) net.Conn {
	return WithTimeouts(conn, d, d)
}

// WithTimeouts wraps conn with independent read and write idle timeouts;
// a non-positive value disables that side. If both are non-positive, conn
// is returned unchanged.
func WithTimeouts(conn net.Conn, read, write time.Duration) net.Conn {
	if read <= 0 && write <= 0 {
		return conn
	}
	return &deadlineConn{Conn: conn, readTimeout: read, writeTimeout: write}
}

// Read implements net.Conn with a rolling read deadline.
func (c *deadlineConn) Read(p []byte) (int, error) {
	if c.readTimeout > 0 {
		if err := c.Conn.SetReadDeadline(time.Now().Add(c.readTimeout)); err != nil {
			return 0, err
		}
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn with a rolling write deadline.
func (c *deadlineConn) Write(p []byte) (int, error) {
	if c.writeTimeout > 0 {
		if err := c.Conn.SetWriteDeadline(time.Now().Add(c.writeTimeout)); err != nil {
			return 0, err
		}
	}
	return c.Conn.Write(p)
}

// BuffersWriter is implemented by writers with their own batch-write
// strategy — the deadlineConn wrapper, whose vectored path must keep the
// rolling per-operation write timeout.
type BuffersWriter interface {
	WriteBuffers(bufs *net.Buffers) (int64, error)
}

// WriteBuffers writes the batch one buffer at a time, re-arming the rolling
// write deadline before each. The timeout is a per-operation stall bound —
// a slow-but-moving peer taking several timeouts' worth of wall clock for a
// large batch is healthy, a peer stalling one buffer for the full timeout
// is dead — so a single deadline arm across the whole batch would turn
// batching into spurious evictions on slow links. The cost is one syscall
// per buffer on deadline-wrapped conns; conns without a write timeout keep
// the single-writev path in the package-level WriteBuffers.
func (c *deadlineConn) WriteBuffers(bufs *net.Buffers) (int64, error) {
	var n int64
	for _, p := range *bufs {
		nn, err := c.Write(p)
		n += int64(nn)
		if err != nil {
			*bufs = nil
			return n, err
		}
	}
	*bufs = nil
	return n, nil
}

// WriteBuffers writes the batch through w with as few syscalls as the
// transport allows: a BuffersWriter (deadline wrapper) or raw net.Conn gets
// the vectored net.Buffers path (writev on TCP, sequential writes on
// pipes — byte-identical either way); anything else falls back to one
// Write per buffer. The buffers slice is consumed.
func WriteBuffers(w io.Writer, bufs *net.Buffers) (int64, error) {
	if bw, ok := w.(BuffersWriter); ok {
		return bw.WriteBuffers(bufs)
	}
	return bufs.WriteTo(w)
}
