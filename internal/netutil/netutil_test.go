package netutil

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

func TestWithTimeoutZeroIsPassthrough(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if got := WithTimeout(a, 0); got != a {
		t.Fatal("zero timeout must return the original conn")
	}
}

func TestReadTimesOutOnSilentPeer(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := WithTimeout(a, 50*time.Millisecond)
	buf := make([]byte, 1)
	start := time.Now()
	_, err := c.Read(buf)
	if err == nil {
		t.Fatal("read from silent peer should time out")
	}
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("want net.Error timeout, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("timeout took %v, want ~50ms", elapsed)
	}
}

func TestWriteTimesOutOnStalledPeer(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := WithTimeouts(a, 0, 50*time.Millisecond)
	// net.Pipe writes block until the peer reads; b never reads.
	_, err := c.Write(make([]byte, 1))
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("want net.Error timeout, got %v", err)
	}
}

func TestWriteBuffersConcatenatesInOrder(t *testing.T) {
	var sink bytes.Buffer
	bufs := net.Buffers{[]byte("one"), []byte("two"), []byte("three")}
	n, err := WriteBuffers(&sink, &bufs)
	if err != nil || n != 11 {
		t.Fatalf("WriteBuffers = (%d, %v), want (11, nil)", n, err)
	}
	if got := sink.String(); got != "onetwothree" {
		t.Fatalf("batched bytes = %q: vectored write must preserve frame order", got)
	}
}

func TestWriteBuffersThroughDeadlineConn(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := WithTimeouts(a, 0, time.Second)
	if _, ok := c.(BuffersWriter); !ok {
		t.Fatal("deadline wrapper must expose the vectored-write path")
	}
	got := make(chan []byte, 1)
	go func() {
		data, _ := io.ReadAll(io.LimitReader(b, 6))
		got <- data
	}()
	bufs := net.Buffers{[]byte("abc"), []byte("def")}
	if n, err := WriteBuffers(c, &bufs); err != nil || n != 6 {
		t.Fatalf("WriteBuffers = (%d, %v), want (6, nil)", n, err)
	}
	if data := <-got; string(data) != "abcdef" {
		t.Fatalf("peer read %q, want abcdef", data)
	}
}

func TestWriteBuffersTimesOutOnStalledPeer(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := WithTimeouts(a, 0, 50*time.Millisecond)
	bufs := net.Buffers{make([]byte, 1)}
	_, err := WriteBuffers(c, &bufs)
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("want net.Error timeout, got %v", err)
	}
}

func TestDeadlineRollsForwardAcrossOperations(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := WithTimeout(a, 200*time.Millisecond)
	go func() {
		buf := make([]byte, 1)
		for i := 0; i < 4; i++ {
			time.Sleep(60 * time.Millisecond) // each gap is under the timeout
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	// Four writes, each slower than half the timeout: a one-shot deadline
	// set at connection time would expire; a rolling one must not.
	for i := 0; i < 4; i++ {
		if _, err := c.Write([]byte{byte(i)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
}
