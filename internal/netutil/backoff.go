package netutil

import "time"

// Backoff default bounds.
const (
	DefaultBackoffMin = 200 * time.Millisecond
	DefaultBackoffMax = 15 * time.Second
)

// Backoff produces capped exponential delays for reconnect loops: Min,
// 2·Min, 4·Min, … clamped to Max. It is deterministic (no jitter) so
// chaos-test schedules reproduce exactly. The zero value uses the defaults
// above. Not safe for concurrent use; one Backoff per reconnect loop.
type Backoff struct {
	// Min is the first delay (DefaultBackoffMin if 0).
	Min time.Duration
	// Max caps the delay (DefaultBackoffMax if 0).
	Max time.Duration

	attempts int
}

// Next returns the delay to sleep before the next attempt and advances the
// schedule.
func (b *Backoff) Next() time.Duration {
	min, max := b.Min, b.Max
	if min <= 0 {
		min = DefaultBackoffMin
	}
	if max <= 0 {
		max = DefaultBackoffMax
	}
	if min > max {
		min = max
	}
	d := min
	for i := 0; i < b.attempts && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	b.attempts++
	return d
}

// Attempts reports how many delays have been handed out since the last
// Reset.
func (b *Backoff) Attempts() int { return b.attempts }

// Reset restarts the schedule at Min; call it after a healthy connection so
// the next outage starts with a short retry again.
func (b *Backoff) Reset() { b.attempts = 0 }
