package netutil

import (
	"math/rand"
	"time"
)

// Backoff default bounds.
const (
	DefaultBackoffMin = 200 * time.Millisecond
	DefaultBackoffMax = 15 * time.Second
)

// Backoff produces capped exponential delays for reconnect loops: Min,
// 2·Min, 4·Min, … clamped to Max. With Jitter set, each delay is drawn
// uniformly from [0, d] ("full jitter"), which decorrelates a thundering
// herd of evicted or refused clients all reconnecting to the same broker;
// without it the schedule is deterministic so chaos-test schedules
// reproduce exactly. The zero value uses the defaults above, unjittered.
// Not safe for concurrent use; one Backoff per reconnect loop.
type Backoff struct {
	// Min is the first delay (DefaultBackoffMin if 0).
	Min time.Duration
	// Max caps the delay (DefaultBackoffMax if 0).
	Max time.Duration
	// Jitter draws each delay uniformly from [0, d] instead of d.
	Jitter bool
	// Rand is the jitter source; nil lazily seeds one from the clock.
	// Inject a seeded source for deterministic tests.
	Rand *rand.Rand

	attempts   int
	retryAfter time.Duration // one-shot server override, consumed by Next
	hasRetry   bool
}

// Next returns the delay to sleep before the next attempt and advances the
// schedule. A pending SetRetryAfter override is returned verbatim instead
// (no jitter, schedule not advanced): the server said when, so that is
// when.
func (b *Backoff) Next() time.Duration {
	if b.hasRetry {
		b.hasRetry = false
		return b.retryAfter
	}
	min, max := b.Min, b.Max
	if min <= 0 {
		min = DefaultBackoffMin
	}
	if max <= 0 {
		max = DefaultBackoffMax
	}
	if min > max {
		min = max
	}
	d := min
	for i := 0; i < b.attempts && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	b.attempts++
	if b.Jitter {
		if b.Rand == nil {
			b.Rand = rand.New(rand.NewSource(time.Now().UnixNano()))
		}
		d = time.Duration(b.Rand.Int63n(int64(d) + 1))
	}
	return d
}

// SetRetryAfter installs a one-shot override honored by the next Next call:
// the broker's RETRY-AFTER handshake reply knows the server's recovery
// horizon better than any client-side schedule. Negative is clamped to
// zero; the exponential sequence continues unadvanced afterwards.
func (b *Backoff) SetRetryAfter(d time.Duration) {
	if d < 0 {
		d = 0
	}
	b.retryAfter = d
	b.hasRetry = true
}

// Attempts reports how many delays have been handed out since the last
// Reset (RetryAfter overrides not counted).
func (b *Backoff) Attempts() int { return b.attempts }

// Reset restarts the schedule at Min and drops any pending RetryAfter;
// call it after a healthy connection so the next outage starts with a
// short retry again.
func (b *Backoff) Reset() {
	b.attempts = 0
	b.hasRetry = false
}
