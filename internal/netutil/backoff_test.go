package netutil

import (
	"math/rand"
	"testing"
	"time"
)

func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Min: 100 * time.Millisecond, Max: time.Second}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second, // capped
		time.Second, // stays capped
	}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Fatalf("attempt %d: got %v want %v", i, got, w)
		}
	}
	if b.Attempts() != len(want) {
		t.Fatalf("Attempts = %d", b.Attempts())
	}
	b.Reset()
	if got := b.Next(); got != 100*time.Millisecond {
		t.Fatalf("after Reset: got %v", got)
	}
}

func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	if got := b.Next(); got != DefaultBackoffMin {
		t.Fatalf("first default delay = %v", got)
	}
	for i := 0; i < 20; i++ {
		if got := b.Next(); got > DefaultBackoffMax {
			t.Fatalf("delay %v exceeds cap %v", got, DefaultBackoffMax)
		}
	}
}

func TestBackoffMinAboveMax(t *testing.T) {
	b := Backoff{Min: time.Minute, Max: time.Second}
	if got := b.Next(); got != time.Second {
		t.Fatalf("got %v want the cap", got)
	}
}

func TestBackoffFullJitterDeterministic(t *testing.T) {
	mk := func() *Backoff {
		return &Backoff{
			Min:    100 * time.Millisecond,
			Max:    time.Second,
			Jitter: true,
			Rand:   rand.New(rand.NewSource(42)),
		}
	}
	// Same seed → same schedule.
	a, b := mk(), mk()
	for i := 0; i < 8; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("attempt %d: seeded runs diverged: %v vs %v", i, da, db)
		}
	}
	// Full jitter: every draw lands in [0, unjittered delay], and the draws
	// are not all equal to the deterministic schedule.
	c, plain := mk(), &Backoff{Min: 100 * time.Millisecond, Max: time.Second}
	jittered := false
	for i := 0; i < 32; i++ {
		d, ceil := c.Next(), plain.Next()
		if d < 0 || d > ceil {
			t.Fatalf("attempt %d: jittered delay %v outside [0, %v]", i, d, ceil)
		}
		if d != ceil {
			jittered = true
		}
	}
	if !jittered {
		t.Fatal("32 seeded draws all equal the unjittered schedule")
	}
}

func TestBackoffRetryAfterOverride(t *testing.T) {
	b := &Backoff{Min: 100 * time.Millisecond, Max: time.Second}
	if got := b.Next(); got != 100*time.Millisecond {
		t.Fatalf("first delay = %v", got)
	}
	b.SetRetryAfter(3 * time.Second)
	if got := b.Next(); got != 3*time.Second {
		t.Fatalf("override delay = %v, want the server's 3s", got)
	}
	if b.Attempts() != 1 {
		t.Fatalf("override advanced the schedule: attempts = %d", b.Attempts())
	}
	// The exponential sequence resumes where it left off.
	if got := b.Next(); got != 200*time.Millisecond {
		t.Fatalf("post-override delay = %v, want 200ms", got)
	}
	// Overrides are one-shot and jitter-exempt even with Jitter set.
	b.Jitter = true
	b.Rand = rand.New(rand.NewSource(1))
	b.SetRetryAfter(5 * time.Second)
	if got := b.Next(); got != 5*time.Second {
		t.Fatalf("jittered override = %v, want exactly 5s", got)
	}
	// Negative clamps to zero (retry immediately).
	b.SetRetryAfter(-time.Second)
	if got := b.Next(); got != 0 {
		t.Fatalf("negative override = %v, want 0", got)
	}
	// Reset drops a pending override.
	b.SetRetryAfter(time.Hour)
	b.Reset()
	b.Jitter = false
	if got := b.Next(); got != 100*time.Millisecond {
		t.Fatalf("after Reset: got %v, want Min", got)
	}
}
