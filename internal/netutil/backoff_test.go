package netutil

import (
	"testing"
	"time"
)

func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Min: 100 * time.Millisecond, Max: time.Second}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second, // capped
		time.Second, // stays capped
	}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Fatalf("attempt %d: got %v want %v", i, got, w)
		}
	}
	if b.Attempts() != len(want) {
		t.Fatalf("Attempts = %d", b.Attempts())
	}
	b.Reset()
	if got := b.Next(); got != 100*time.Millisecond {
		t.Fatalf("after Reset: got %v", got)
	}
}

func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	if got := b.Next(); got != DefaultBackoffMin {
		t.Fatalf("first default delay = %v", got)
	}
	for i := 0; i < 20; i++ {
		if got := b.Next(); got > DefaultBackoffMax {
			t.Fatalf("delay %v exceeds cap %v", got, DefaultBackoffMax)
		}
	}
}

func TestBackoffMinAboveMax(t *testing.T) {
	b := Backoff{Min: time.Minute, Max: time.Second}
	if got := b.Next(); got != time.Second {
		t.Fatalf("got %v want the cap", got)
	}
}
