package selector

import (
	"testing"
	"testing/quick"
	"time"

	"ccx/internal/codec"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.BlockSize != 128*1024 {
		t.Errorf("BlockSize = %d", c.BlockSize)
	}
	if c.SendVsReduce != 0.83 || c.StrongVsReduce != 3.48 || c.SampleCutoff != 0.4878 {
		t.Errorf("thresholds = %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{BlockSize: 0, SendVsReduce: 1, StrongVsReduce: 2, SampleCutoff: 0.5},
		{BlockSize: 1, SendVsReduce: 0, StrongVsReduce: 2, SampleCutoff: 0.5},
		{BlockSize: 1, SendVsReduce: 3, StrongVsReduce: 2, SampleCutoff: 0.5},
		{BlockSize: 1, SendVsReduce: 1, StrongVsReduce: 2, SampleCutoff: 0},
		{BlockSize: 1, SendVsReduce: 1, StrongVsReduce: 2, SampleCutoff: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// base returns inputs for a compressible 128 KB block whose probe shrank to
// 30 % at 5 MB/s reducing speed → LZReduceTime ≈ 18.35 ms.
func base() Inputs {
	return Inputs{
		BlockLen:      128 * 1024,
		ProbeRatio:    0.30,
		ReducingSpeed: 5e6,
	}
}

func TestFirstBlockUncompressed(t *testing.T) {
	in := base()
	in.SendTime = 0 // no goodput measurement yet
	if d := DefaultConfig().Select(in); d.Method != codec.None {
		t.Fatalf("first block method = %v", d.Method)
	}
}

func TestFastLineNoCompression(t *testing.T) {
	in := base()
	// Send time well below 0.83 × reduce time.
	in.SendTime = time.Millisecond
	if d := DefaultConfig().Select(in); d.Method != codec.None {
		t.Fatalf("fast line method = %v", d.Method)
	}
}

func TestModerateLineLempelZiv(t *testing.T) {
	in := base()
	// Between 0.83× and 3.48× of reduce time (~18.35 ms): pick 30 ms.
	in.SendTime = 30 * time.Millisecond
	if d := DefaultConfig().Select(in); d.Method != codec.LempelZiv {
		t.Fatalf("moderate line method = %v", d.Method)
	}
}

func TestSlowLineBurrowsWheeler(t *testing.T) {
	in := base()
	in.SendTime = 200 * time.Millisecond // ≫ 3.48 × reduce
	if d := DefaultConfig().Select(in); d.Method != codec.BurrowsWheeler {
		t.Fatalf("slow line method = %v", d.Method)
	}
}

func TestPoorlyCompressibleHuffman(t *testing.T) {
	in := base()
	in.ProbeRatio = 0.85 // above the 48.78 % cutoff
	in.SendTime = 200 * time.Millisecond
	if d := DefaultConfig().Select(in); d.Method != codec.Huffman {
		t.Fatalf("low-repetition method = %v", d.Method)
	}
}

func TestIncompressibleStaysRaw(t *testing.T) {
	in := base()
	in.ProbeRatio = 1.0
	in.ReducingSpeed = 0
	in.SendTime = time.Hour
	if d := DefaultConfig().Select(in); d.Method != codec.None {
		t.Fatalf("incompressible method = %v", d.Method)
	}
}

func TestThresholdBoundaries(t *testing.T) {
	cfg := DefaultConfig()
	in := base()
	reduce := in.LZReduceTime()
	// Exactly at 0.83×: not strictly greater → no compression.
	in.SendTime = time.Duration(0.83 * float64(reduce))
	if d := cfg.Select(in); d.Method != codec.None {
		t.Fatalf("at weak threshold: %v", d.Method)
	}
	// Just above: LZ.
	in.SendTime = time.Duration(0.84 * float64(reduce))
	if d := cfg.Select(in); d.Method != codec.LempelZiv {
		t.Fatalf("just above weak threshold: %v", d.Method)
	}
	// Just above strong threshold: BWT.
	in.SendTime = time.Duration(3.49 * float64(reduce))
	if d := cfg.Select(in); d.Method != codec.BurrowsWheeler {
		t.Fatalf("just above strong threshold: %v", d.Method)
	}
}

func TestLZReduceTime(t *testing.T) {
	in := Inputs{BlockLen: 1000, ProbeRatio: 0.5, ReducingSpeed: 500}
	// Expected reduction 500 bytes at 500 B/s → 1 s.
	if got := in.LZReduceTime(); got != time.Second {
		t.Fatalf("LZReduceTime = %v", got)
	}
	if (Inputs{BlockLen: 1000, ProbeRatio: 1.2, ReducingSpeed: 500}).LZReduceTime() != 0 {
		t.Fatal("expanding probe should yield 0")
	}
	if (Inputs{BlockLen: 1000, ProbeRatio: 0.5}).LZReduceTime() != 0 {
		t.Fatal("zero speed should yield 0")
	}
}

// TestMonotoneInSendTime is the core safety property: for fixed data
// characteristics, a slower line never selects a *weaker* method.
func TestMonotoneInSendTime(t *testing.T) {
	strength := map[codec.Method]int{
		codec.None: 0, codec.Huffman: 1, codec.LempelZiv: 2, codec.BurrowsWheeler: 3,
	}
	cfg := DefaultConfig()
	f := func(probePct uint8, speedKBs uint16) bool {
		in := base()
		in.ProbeRatio = float64(probePct%101) / 100
		in.ReducingSpeed = float64(speedKBs) * 1024
		prev := -1
		for _, st := range []time.Duration{
			0, time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond,
			80 * time.Millisecond, 300 * time.Millisecond, time.Second, time.Minute,
		} {
			in.SendTime = st
			d := cfg.Select(in)
			s := strength[d.Method]
			// Huffman and LZ/BWT are alternative branches, not a strength
			// ladder across the cutoff; monotonicity applies within the
			// reachable branch. With fixed ratio the branch is fixed, so
			// method strength must be non-decreasing in send time.
			if s < prev {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecisionCarriesAudit(t *testing.T) {
	in := base()
	in.SendTime = 30 * time.Millisecond
	d := DefaultConfig().Select(in)
	if d.Inputs != in {
		t.Fatal("decision lost inputs")
	}
	if d.LZReduceTime != in.LZReduceTime() {
		t.Fatal("decision lost reduce time")
	}
}

func TestMethodTableMatchesPaper(t *testing.T) {
	tbl := MethodTable()
	if len(tbl) != 4 {
		t.Fatalf("table has %d methods", len(tbl))
	}
	// Spot-check the paper's most decision-relevant cells.
	if tbl[codec.BurrowsWheeler].CompressTime != Poor {
		t.Error("BWT compression time should be Poor")
	}
	if tbl[codec.Huffman].GlobalTime != Excellent {
		t.Error("Huffman global time should be Excellent")
	}
	if tbl[codec.LempelZiv].StringRepetition != Excellent {
		t.Error("LZ string repetition should be Excellent")
	}
	if tbl[codec.Arithmetic].Efficiency != Poor {
		t.Error("Arithmetic efficiency should be Poor")
	}
	// Every dimension accessor works for every method.
	for _, m := range TableMethods() {
		for _, dim := range Dimensions() {
			if tbl[m].Rating(dim) == 0 {
				t.Errorf("%v: missing rating for %q", m, dim)
			}
		}
	}
	if (Characteristics{}).Rating("nope") != 0 {
		t.Error("unknown dimension should be 0")
	}
}

func TestRatingString(t *testing.T) {
	if Poor.String() != "Poor" || Excellent.String() != "Excellent" ||
		Satisfactory.String() != "Satisfactory" || Good.String() != "Good" {
		t.Fatal("rating labels wrong")
	}
	if Rating(99).String() != "Unknown" {
		t.Fatal("unknown rating label")
	}
}
