// Package selector implements the paper's table-driven compression-method
// selection algorithm (§2.5). Per 128 KB block, it weighs the predicted
// time to send the block uncompressed (from end-to-end goodput measurement)
// against the predicted time for Lempel-Ziv to reduce the block (from the
// 4 KB sampling probe), and picks:
//
//	no compression   — the line is fast relative to the CPU
//	Huffman          — the line is slow but the data lacks string repeats
//	Lempel-Ziv       — the line is slow and the data is compressible
//	Burrows-Wheeler  — the line is so slow the strongest method pays off
//
// The paper's constants (0.83, 3.48, 48.78 %) are defaults in Config; §2.5
// notes they "can be tuned easily by sampling even a small piece of data",
// so everything is parameterized.
package selector

import (
	"fmt"
	"time"

	"ccx/internal/codec"
)

// Paper constants from the §2.5 pseudocode.
const (
	// DefaultBlockSize is the paper's 128 KB block unit.
	DefaultBlockSize = 128 * 1024
	// DefaultSendVsReduce is the compression-pays-off threshold: compress
	// when sending takes more than 0.83× the Lempel-Ziv reduction time.
	DefaultSendVsReduce = 0.83
	// DefaultStrongVsReduce is the Burrows-Wheeler threshold: use the
	// strongest method when sending takes more than 3.48× the Lempel-Ziv
	// reduction time.
	DefaultStrongVsReduce = 3.48
	// DefaultSampleCutoff is the compressibility gate: the 4 KB probe must
	// shrink below 48.78 % of its original size for the dictionary methods
	// to be preferred over Huffman.
	DefaultSampleCutoff = 0.4878
)

// Config parameterizes the decision algorithm.
type Config struct {
	// BlockSize is the transmission block unit in bytes.
	BlockSize int
	// SendVsReduce, StrongVsReduce and SampleCutoff are the three decision
	// thresholds described above.
	SendVsReduce   float64
	StrongVsReduce float64
	SampleCutoff   float64
}

// DefaultConfig returns the paper's published constants.
func DefaultConfig() Config {
	return Config{
		BlockSize:      DefaultBlockSize,
		SendVsReduce:   DefaultSendVsReduce,
		StrongVsReduce: DefaultStrongVsReduce,
		SampleCutoff:   DefaultSampleCutoff,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.BlockSize <= 0 {
		return fmt.Errorf("selector: block size %d", c.BlockSize)
	}
	if c.SendVsReduce <= 0 || c.StrongVsReduce <= 0 {
		return fmt.Errorf("selector: thresholds must be positive")
	}
	if c.StrongVsReduce < c.SendVsReduce {
		return fmt.Errorf("selector: strong threshold %v below weak threshold %v",
			c.StrongVsReduce, c.SendVsReduce)
	}
	if c.SampleCutoff <= 0 || c.SampleCutoff > 1 {
		return fmt.Errorf("selector: sample cutoff %v out of (0,1]", c.SampleCutoff)
	}
	return nil
}

// Inputs are the per-block measurements the algorithm consumes.
type Inputs struct {
	// BlockLen is the size of the block about to be sent.
	BlockLen int
	// SendTime is the predicted time to send the block uncompressed, from
	// the end-to-end monitor. Zero means "no measurement yet" — the paper's
	// first-block convention (reducing speed assumed infinite), which sends
	// uncompressed.
	SendTime time.Duration
	// ProbeRatio is the 4 KB Lempel-Ziv probe's compressed fraction
	// (CompressedLen/SampleLen).
	ProbeRatio float64
	// ReducingSpeed is the probe's observed bytes-of-reduction per second;
	// zero means the probe could not shrink the sample.
	ReducingSpeed float64
	// Entropy is the probe sample's order-0 entropy in bits/byte and
	// Repetition its 4-gram repeat fraction — the Figure 6 data
	// characteristics consumed by CharacteristicPolicy (the published
	// RatioPolicy ignores them).
	Entropy    float64
	Repetition float64
	// ProbeTime is how long the sampling probe took (wall time on the
	// probing goroutine). It never influences selection — it exists so the
	// tracing layer can attribute probe cost on sampled blocks without a
	// second timestamp plumbing path.
	ProbeTime time.Duration
}

// LZReduceTime predicts how long Lempel-Ziv needs to reduce the block: the
// expected byte reduction (extrapolated from the probe ratio) divided by the
// observed reducing speed. It returns 0 when no reduction is expected —
// "infinite speed" in the paper's first-block sense never helps compression,
// and an incompressible probe means there is nothing to reduce.
func (in Inputs) LZReduceTime() time.Duration {
	if in.ReducingSpeed <= 0 || in.ProbeRatio >= 1 {
		return 0
	}
	expectedReduction := float64(in.BlockLen) * (1 - in.ProbeRatio)
	return time.Duration(expectedReduction / in.ReducingSpeed * float64(time.Second))
}

// Decision records a selection and the reasoning inputs, for the audit
// trails the experiments plot (Figures 8 and 11) and the decision traces
// internal/obs serves over /debug/decisions.
type Decision struct {
	Method       codec.Method
	Inputs       Inputs
	LZReduceTime time.Duration
	// Placement says where this block's compression runs (the zero value,
	// publisher, is inline compression at the deciding node).
	Placement Placement
	// Offloaded marks a block the deciding node ships raw because a
	// downstream hop owns compression under Placement; Method is then None
	// regardless of what the method selector would have chosen.
	Offloaded bool
	// Trace links the decision to its distributed-trace spans: the trace id
	// stamped into the block's frame annotation when the block was head-
	// sampled, 0 otherwise. The selector itself never sets or reads it —
	// the engine fills it in so the decision ring and the span ring can be
	// joined on (trace, block).
	Trace uint64
	// Demoted marks a decision the engine stepped down the method ladder
	// after selection because the overload governor capped CPU spend;
	// DemotedFrom is what the policy originally chose and DemoteCause the
	// governor's one-word justification (e.g. "cpu elevated"). The selector
	// never sets these — they exist so Reason() and the decision traces show
	// governed decisions honestly.
	Demoted     bool
	DemotedFrom codec.Method
	DemoteCause string
}

// Reason summarizes in one line why the decision came out the way it did,
// in terms of the §2.5 comparisons: which branch fired and the send/reduce
// ratio that drove it. The string is stable enough for decision traces but
// not a parseable format.
func (d Decision) Reason() string {
	base := d.baseReason()
	if d.Demoted {
		return fmt.Sprintf("%s; governor demoted %s->%s (%s)",
			base, d.DemotedFrom, d.Method, d.DemoteCause)
	}
	return base
}

func (d Decision) baseReason() string {
	in := d.Inputs
	if d.Offloaded {
		if ratio, ok := offloadRatio(in, d.LZReduceTime); ok {
			return fmt.Sprintf("placement %s: link outruns codec (send/reduce %.2f): ship raw", d.Placement, ratio)
		}
		return fmt.Sprintf("placement %s: compression offloaded downstream: ship raw", d.Placement)
	}
	switch {
	case in.SendTime <= 0 || in.BlockLen == 0:
		return "no goodput measurement yet: send raw"
	case d.LZReduceTime <= 0:
		return "probe found block incompressible: send raw"
	}
	ratio := float64(in.SendTime) / float64(d.LZReduceTime)
	chosen := d.Method
	if d.Demoted {
		chosen = d.DemotedFrom // the branch that actually fired in Select
	}
	switch chosen {
	case codec.None:
		return fmt.Sprintf("line fast: send/reduce %.2f below threshold", ratio)
	case codec.Huffman:
		return fmt.Sprintf("line slow (send/reduce %.2f) but probe ratio %.2f above cutoff: entropy coding", ratio, in.ProbeRatio)
	case codec.BurrowsWheeler:
		return fmt.Sprintf("line very slow (send/reduce %.2f), probe ratio %.2f: strongest method", ratio, in.ProbeRatio)
	case codec.LempelZiv:
		return fmt.Sprintf("line slow (send/reduce %.2f), probe ratio %.2f: dictionary coding", ratio, in.ProbeRatio)
	}
	return fmt.Sprintf("custom policy chose %s (send/reduce %.2f)", d.Method, ratio)
}

// Select runs the paper's §2.5 algorithm.
func (c Config) Select(in Inputs) Decision {
	d := Decision{Method: codec.None, Inputs: in, LZReduceTime: in.LZReduceTime()}
	// First block, or no goodput measurement: send raw.
	if in.SendTime <= 0 || in.BlockLen == 0 {
		return d
	}
	reduce := d.LZReduceTime
	if reduce <= 0 {
		// The probe could not shrink the sample at all: the block is
		// effectively incompressible (LZ subsumes an entropy coder for its
		// literals), so spending CPU cannot reduce network time. Send raw.
		return d
	}
	send := float64(in.SendTime)
	if send <= c.SendVsReduce*float64(reduce) {
		return d // line fast enough: don't compress
	}
	if in.ProbeRatio < c.SampleCutoff {
		if send > c.StrongVsReduce*float64(reduce) {
			d.Method = codec.BurrowsWheeler
		} else {
			d.Method = codec.LempelZiv
		}
		return d
	}
	d.Method = codec.Huffman
	return d
}
