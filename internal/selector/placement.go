package selector

import (
	"fmt"
	"time"
)

// Placement says where a block's compression runs on its way from publisher
// to receiver. The paper's §2.5 algorithm decides *how* to compress;
// placement extends the decision space with *where*, following the
// DTSchedule observation that offloading compression downstream wins by
// large factors whenever the network outruns the codec, and only loses once
// the network is orders of magnitude slower.
//
// The zero value is PlacementPublisher — compress at the source, exactly
// today's behavior — so existing configurations are unchanged.
type Placement uint8

const (
	// PlacementPublisher compresses at the source: the publisher's engine
	// selects a method and ships encoded frames (the pre-placement behavior,
	// and the zero value).
	PlacementPublisher Placement = iota
	// PlacementBroker ships raw (Method None) frames from the publisher and
	// lets the broker's shared encode plane compress once per subscriber
	// equivalence class.
	PlacementBroker
	// PlacementReceiver ships raw frames end to end: on links faster than
	// the codec, any compression step only adds latency, and receiver-side
	// re-compression of delivered bytes is a no-op.
	PlacementReceiver
	// PlacementAuto decides per block from the measured goodput /
	// reducing-speed balance: offload downstream while the link outruns the
	// codec, fall back to inline compression once it no longer does.
	PlacementAuto

	// NumPlacements sizes per-placement counter arrays.
	NumPlacements = 4
)

// String renders the placement's flag spelling.
func (p Placement) String() string {
	switch p {
	case PlacementPublisher:
		return "publisher"
	case PlacementBroker:
		return "broker"
	case PlacementReceiver:
		return "receiver"
	case PlacementAuto:
		return "auto"
	}
	return fmt.Sprintf("placement(%d)", uint8(p))
}

// Valid reports whether p is one of the defined placements.
func (p Placement) Valid() bool { return p < NumPlacements }

// ParsePlacement reads a -placement flag value.
func ParsePlacement(s string) (Placement, error) {
	switch s {
	case "publisher":
		return PlacementPublisher, nil
	case "broker":
		return PlacementBroker, nil
	case "receiver":
		return PlacementReceiver, nil
	case "auto":
		return PlacementAuto, nil
	}
	return 0, fmt.Errorf("selector: unknown placement %q (want auto, publisher, broker, or receiver)", s)
}

// Wire bytes for the broker handshake's placement field. Unknown bytes
// degrade to publisher rather than erroring, so a newer client advertising a
// placement this broker has never heard of still gets a working (inline)
// session.
const (
	WirePlacementPublisher = byte('P')
	WirePlacementBroker    = byte('B')
	WirePlacementReceiver  = byte('R')
	WirePlacementAuto      = byte('A')
)

// WireByte returns the handshake byte for p.
func (p Placement) WireByte() byte {
	switch p {
	case PlacementBroker:
		return WirePlacementBroker
	case PlacementReceiver:
		return WirePlacementReceiver
	case PlacementAuto:
		return WirePlacementAuto
	}
	return WirePlacementPublisher
}

// PlacementFromWire maps a handshake byte back to a Placement. Unknown
// bytes report ok=false and the publisher fallback.
func PlacementFromWire(b byte) (p Placement, ok bool) {
	switch b {
	case WirePlacementPublisher:
		return PlacementPublisher, true
	case WirePlacementBroker:
		return PlacementBroker, true
	case WirePlacementReceiver:
		return PlacementReceiver, true
	case WirePlacementAuto:
		return PlacementAuto, true
	}
	return PlacementPublisher, false
}

// DefaultOffloadFactor is the auto-placement break-even threshold: offload
// while the predicted raw send time is below this multiple of the predicted
// Lempel-Ziv reduction time — i.e. while the network moves the block faster
// than the codec can shrink it.
const DefaultOffloadFactor = 1.0

// PlacementPolicy decides where a block's compression runs. It is evaluated
// by a specific node (the publisher's engine or one of the broker's
// per-subscriber loops), so the same Mode means different local actions at
// different hops: a publisher offloading to the broker ships raw, while the
// broker hop still encodes for that placement.
type PlacementPolicy struct {
	// Mode pins the placement, or lets PlacementAuto decide per block from
	// measurements. The zero value pins publisher-side compression.
	Mode Placement
	// Node is the hop evaluating the policy: PlacementPublisher (the
	// default) for source engines, PlacementBroker for the broker's
	// per-subscriber selection loops. It is also the placement Auto reports
	// when compressing inline.
	Node Placement
	// OffloadFactor tunes Auto's break-even (0 = DefaultOffloadFactor):
	// offload while predicted send time < OffloadFactor × predicted reduce
	// time.
	OffloadFactor float64
	// Brokered tells a publisher-node policy that a broker sits downstream,
	// making PlacementBroker the natural Auto offload target (the broker's
	// own per-path policies may push further to the receiver). Without it
	// Auto offloads straight to the receiver.
	Brokered bool
}

// Validate reports configuration errors.
func (p PlacementPolicy) Validate() error {
	if !p.Mode.Valid() {
		return fmt.Errorf("selector: invalid placement mode %s", p.Mode)
	}
	if p.Node != PlacementPublisher && p.Node != PlacementBroker {
		return fmt.Errorf("selector: placement node must be publisher or broker, got %s", p.Node)
	}
	if p.OffloadFactor < 0 {
		return fmt.Errorf("selector: negative offload factor %v", p.OffloadFactor)
	}
	return nil
}

// Decide picks the block's placement. Pinned modes return Mode unchanged.
// Auto mirrors the paper's first-block convention — with no goodput
// measurement yet (or an incompressible probe) it stays inline, since the
// method selector will ship raw anyway — and otherwise offloads exactly
// while the link outruns the codec: predicted raw send time below
// OffloadFactor × predicted reduce time.
func (p PlacementPolicy) Decide(in Inputs) Placement {
	if p.Mode != PlacementAuto {
		return p.Mode
	}
	inline := p.Node
	if in.SendTime <= 0 || in.BlockLen == 0 {
		return inline
	}
	reduce := in.LZReduceTime()
	if reduce <= 0 {
		return inline // incompressible: nothing to offload
	}
	factor := p.OffloadFactor
	if factor == 0 {
		factor = DefaultOffloadFactor
	}
	if float64(in.SendTime) < factor*float64(reduce) {
		// The wire moves raw bytes faster than the codec shrinks them: ship
		// raw and let a downstream hop (or nobody) compress.
		if p.Node == PlacementPublisher && p.Brokered {
			return PlacementBroker
		}
		return PlacementReceiver
	}
	return inline
}

// Encodes reports whether this node compresses blocks under placement pl.
// The publisher hop encodes only for publisher placement; the broker hop
// encodes for publisher placement too (re-encoding per subscriber class is
// how the broker realizes per-path selection) and for broker placement, but
// never for receiver placement, which ships raw end to end.
func (p PlacementPolicy) Encodes(pl Placement) bool {
	switch p.Node {
	case PlacementBroker:
		return pl == PlacementPublisher || pl == PlacementBroker
	default:
		return pl == PlacementPublisher
	}
}

// offloadRatio is Reason's send/reduce figure, guarded for display.
func offloadRatio(in Inputs, reduce time.Duration) (float64, bool) {
	if in.SendTime <= 0 || reduce <= 0 {
		return 0, false
	}
	return float64(in.SendTime) / float64(reduce), true
}
