package selector

import "ccx/internal/codec"

// Policy selects a compression method from per-block measurements. The
// published §2.5 algorithm is RatioPolicy; CharacteristicPolicy implements
// the refinement §4.1 sketches after Figure 6 — sampling "to detect whether
// data has low entropy, string repetitions, or both" and choosing by those
// characteristics. Policies are pluggable into the engine so deployments
// (and our ablations) can compare them.
type Policy interface {
	// Name labels the policy in reports.
	Name() string
	// Select picks a method for one block.
	Select(Inputs) Decision
}

// RatioPolicy is the paper's published decision algorithm: the 4 KB probe's
// compression ratio gates the dictionary branch.
type RatioPolicy struct {
	Config Config
}

var _ Policy = RatioPolicy{}

// Name implements Policy.
func (RatioPolicy) Name() string { return "ratio" }

// Select implements Policy.
func (p RatioPolicy) Select(in Inputs) Decision {
	return p.Config.Select(in)
}

// Characteristic thresholds, from the Figure 6 discussion: "Huffman codes
// and Arithmetic codes are suitable for low entropy data, while Lempel-Ziv
// methods are good at handling data with string repetitions.
// Burrows-Wheeler handles both".
const (
	// RepetitionCutoff is the 4-gram repeat fraction above which data
	// counts as string-repetitive.
	RepetitionCutoff = 0.5
	// LowEntropyBits is the order-0 entropy (bits/byte) below which data
	// counts as low-entropy.
	LowEntropyBits = 6.0
)

// CharacteristicPolicy chooses the method family from the probe's entropy
// and repetition measurements, then applies the same cost gates as the
// published algorithm within the family.
type CharacteristicPolicy struct {
	Config Config
}

var _ Policy = CharacteristicPolicy{}

// Name implements Policy.
func (CharacteristicPolicy) Name() string { return "characteristic" }

// Select implements Policy.
func (p CharacteristicPolicy) Select(in Inputs) Decision {
	c := p.Config
	d := Decision{Method: codec.None, Inputs: in, LZReduceTime: in.LZReduceTime()}
	if in.SendTime <= 0 || in.BlockLen == 0 {
		return d
	}
	repetitive := in.Repetition >= RepetitionCutoff
	lowEntropy := in.Entropy > 0 && in.Entropy <= LowEntropyBits
	send := float64(in.SendTime)

	if repetitive {
		reduce := d.LZReduceTime
		if reduce <= 0 || send <= c.SendVsReduce*float64(reduce) {
			return d
		}
		if send > c.StrongVsReduce*float64(reduce) {
			d.Method = codec.BurrowsWheeler
		} else {
			d.Method = codec.LempelZiv
		}
		return d
	}
	if lowEntropy {
		// Estimate Huffman's achievable reduction from entropy: an order-0
		// coder approaches Entropy/8 of the original size. Gate it with the
		// same pays-for-itself test, reusing the probe's reducing speed as
		// the CPU capability signal (Huffman reduces faster than LZ, so
		// this is conservative).
		expectedRatio := in.Entropy / 8
		if expectedRatio >= 1 {
			return d
		}
		reduction := float64(in.BlockLen) * (1 - expectedRatio)
		if in.ReducingSpeed <= 0 {
			// No LZ reduction measured (no string repeats) — entropy coding
			// may still pay; require the line to be slower than the block's
			// worth of estimated coding work at the paper's Huffman/LZ
			// speed ratio (~1.7x from Figure 4).
			return d
		}
		huffSpeed := in.ReducingSpeed * 1.7
		reduceTime := reduction / huffSpeed // seconds
		if send/1e9 > c.SendVsReduce*reduceTime {
			d.Method = codec.Huffman
		}
		return d
	}
	return d
}
