package selector

import (
	"strings"
	"testing"
	"time"

	"ccx/internal/codec"
)

func TestPlacementParseString(t *testing.T) {
	for _, p := range []Placement{PlacementPublisher, PlacementBroker, PlacementReceiver, PlacementAuto} {
		got, err := ParsePlacement(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePlacement(%q) = %v, %v; want %v", p.String(), got, err, p)
		}
		if !p.Valid() {
			t.Errorf("%v.Valid() = false", p)
		}
	}
	if _, err := ParsePlacement("consumer"); err == nil {
		t.Error("ParsePlacement accepted an unknown spelling")
	}
	if Placement(200).Valid() {
		t.Error("Placement(200).Valid() = true")
	}
}

func TestPlacementZeroValueIsPublisher(t *testing.T) {
	// Every existing Config zero value must keep today's inline behavior.
	var p Placement
	if p != PlacementPublisher {
		t.Fatalf("zero Placement = %v, want publisher", p)
	}
	var pol PlacementPolicy
	in := Inputs{BlockLen: 1 << 17, SendTime: time.Second, ProbeRatio: 0.3, ReducingSpeed: 1e6}
	if got := pol.Decide(in); got != PlacementPublisher {
		t.Fatalf("zero policy Decide = %v, want publisher", got)
	}
	if !pol.Encodes(PlacementPublisher) {
		t.Fatal("zero policy must encode inline for publisher placement")
	}
}

func TestPlacementWireRoundtrip(t *testing.T) {
	for _, p := range []Placement{PlacementPublisher, PlacementBroker, PlacementReceiver, PlacementAuto} {
		got, ok := PlacementFromWire(p.WireByte())
		if !ok || got != p {
			t.Errorf("PlacementFromWire(%q) = %v, %v; want %v", p.WireByte(), got, ok, p)
		}
	}
	// Unknown wire bytes degrade to publisher, never error.
	for _, b := range []byte{0, 'x', 'Z', 0xFF} {
		got, ok := PlacementFromWire(b)
		if ok || got != PlacementPublisher {
			t.Errorf("PlacementFromWire(%#x) = %v, %v; want publisher, false", b, got, ok)
		}
	}
}

// offloadInputs describes a block whose predicted raw send is fast relative
// to the codec's predicted reduce time (send/reduce = 0.5): the network
// outruns the codec, so Auto should offload.
func offloadInputs() Inputs {
	// reduce = BlockLen*(1-ratio)/speed = 131072*0.5/1e6 s ≈ 65.5 ms;
	// send 32 ms ≈ 0.5× reduce.
	return Inputs{
		BlockLen:      128 << 10,
		SendTime:      32 * time.Millisecond,
		ProbeRatio:    0.5,
		ReducingSpeed: 1e6,
	}
}

func TestPlacementAutoDecide(t *testing.T) {
	fast := offloadInputs()
	slow := fast
	slow.SendTime = time.Second // send/reduce ≈ 15: codec outruns network

	cases := []struct {
		name string
		pol  PlacementPolicy
		in   Inputs
		want Placement
	}{
		{"publisher node offloads to receiver", PlacementPolicy{Mode: PlacementAuto}, fast, PlacementReceiver},
		{"brokered publisher offloads to broker", PlacementPolicy{Mode: PlacementAuto, Brokered: true}, fast, PlacementBroker},
		{"broker node offloads to receiver", PlacementPolicy{Mode: PlacementAuto, Node: PlacementBroker}, fast, PlacementReceiver},
		{"slow link stays inline", PlacementPolicy{Mode: PlacementAuto}, slow, PlacementPublisher},
		{"slow link stays inline at broker", PlacementPolicy{Mode: PlacementAuto, Node: PlacementBroker}, slow, PlacementBroker},
		{"no measurement stays inline", PlacementPolicy{Mode: PlacementAuto}, Inputs{BlockLen: 4096}, PlacementPublisher},
		{"incompressible stays inline", PlacementPolicy{Mode: PlacementAuto},
			Inputs{BlockLen: 4096, SendTime: time.Second, ProbeRatio: 1.0}, PlacementPublisher},
		{"pinned receiver ignores measurements", PlacementPolicy{Mode: PlacementReceiver}, slow, PlacementReceiver},
		{"pinned broker ignores measurements", PlacementPolicy{Mode: PlacementBroker}, fast, PlacementBroker},
	}
	for _, tc := range cases {
		if got := tc.pol.Decide(tc.in); got != tc.want {
			t.Errorf("%s: Decide = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestPlacementAutoOffloadFactor(t *testing.T) {
	in := offloadInputs() // send/reduce ≈ 0.5
	tight := PlacementPolicy{Mode: PlacementAuto, OffloadFactor: 0.25}
	if got := tight.Decide(in); got != PlacementPublisher {
		t.Errorf("factor 0.25 should keep send/reduce 0.5 inline, got %v", got)
	}
	loose := PlacementPolicy{Mode: PlacementAuto, OffloadFactor: 4}
	if got := loose.Decide(in); got != PlacementReceiver {
		t.Errorf("factor 4 should offload send/reduce 0.5, got %v", got)
	}
}

func TestPlacementEncodes(t *testing.T) {
	pub := PlacementPolicy{Node: PlacementPublisher}
	brk := PlacementPolicy{Node: PlacementBroker}
	cases := []struct {
		pol      PlacementPolicy
		pl       Placement
		want     bool
		nodeName string
	}{
		{pub, PlacementPublisher, true, "publisher"},
		{pub, PlacementBroker, false, "publisher"},
		{pub, PlacementReceiver, false, "publisher"},
		{brk, PlacementPublisher, true, "broker"},
		{brk, PlacementBroker, true, "broker"},
		{brk, PlacementReceiver, false, "broker"},
	}
	for _, tc := range cases {
		if got := tc.pol.Encodes(tc.pl); got != tc.want {
			t.Errorf("%s node Encodes(%v) = %v, want %v", tc.nodeName, tc.pl, got, tc.want)
		}
	}
}

func TestPlacementPolicyValidate(t *testing.T) {
	good := []PlacementPolicy{
		{},
		{Mode: PlacementAuto, Node: PlacementBroker, OffloadFactor: 2},
		{Mode: PlacementReceiver, Node: PlacementPublisher},
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", p, err)
		}
	}
	bad := []PlacementPolicy{
		{Mode: Placement(9)},
		{Node: PlacementReceiver},
		{Node: PlacementAuto},
		{OffloadFactor: -1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid policy", p)
		}
	}
}

func TestDecisionReasonOffloaded(t *testing.T) {
	in := offloadInputs()
	d := Decision{Method: codec.None, Inputs: in, LZReduceTime: in.LZReduceTime(),
		Placement: PlacementReceiver, Offloaded: true}
	r := d.Reason()
	if !strings.Contains(r, "receiver") || !strings.Contains(r, "ship raw") {
		t.Errorf("offloaded reason = %q", r)
	}
	// Pinned offload before any measurement still explains itself.
	d2 := Decision{Method: codec.None, Placement: PlacementBroker, Offloaded: true}
	if r := d2.Reason(); !strings.Contains(r, "broker") {
		t.Errorf("unmeasured offload reason = %q", r)
	}
}
