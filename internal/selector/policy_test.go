package selector

import (
	"testing"
	"time"

	"ccx/internal/codec"
)

func TestRatioPolicyMatchesConfigSelect(t *testing.T) {
	cfg := DefaultConfig()
	p := RatioPolicy{Config: cfg}
	if p.Name() != "ratio" {
		t.Fatal("name")
	}
	in := base()
	in.SendTime = 30 * time.Millisecond
	if got, want := p.Select(in).Method, cfg.Select(in).Method; got != want {
		t.Fatalf("policy %v != config %v", got, want)
	}
}

func charBase() Inputs {
	return Inputs{
		BlockLen:      128 * 1024,
		ProbeRatio:    0.30,
		ReducingSpeed: 5e6,
		Entropy:       4.5,
		Repetition:    0.8,
	}
}

func TestCharacteristicPolicyFirstBlock(t *testing.T) {
	p := CharacteristicPolicy{Config: DefaultConfig()}
	in := charBase()
	in.SendTime = 0
	if d := p.Select(in); d.Method != codec.None {
		t.Fatalf("first block = %v", d.Method)
	}
}

func TestCharacteristicPolicyRepetitiveData(t *testing.T) {
	p := CharacteristicPolicy{Config: DefaultConfig()}
	in := charBase() // repetition 0.8 → dictionary family
	in.SendTime = 30 * time.Millisecond
	if d := p.Select(in); d.Method != codec.LempelZiv {
		t.Fatalf("moderate line, repetitive = %v", d.Method)
	}
	in.SendTime = 500 * time.Millisecond
	if d := p.Select(in); d.Method != codec.BurrowsWheeler {
		t.Fatalf("slow line, repetitive = %v", d.Method)
	}
	in.SendTime = time.Millisecond
	if d := p.Select(in); d.Method != codec.None {
		t.Fatalf("fast line, repetitive = %v", d.Method)
	}
}

func TestCharacteristicPolicyLowEntropyData(t *testing.T) {
	p := CharacteristicPolicy{Config: DefaultConfig()}
	in := charBase()
	in.Repetition = 0.05 // no string structure
	in.Entropy = 2.0     // strongly low-entropy
	in.ProbeRatio = 0.8
	in.SendTime = 200 * time.Millisecond
	if d := p.Select(in); d.Method != codec.Huffman {
		t.Fatalf("low-entropy family = %v", d.Method)
	}
	// Very fast line: entropy coding cannot pay.
	in.SendTime = 10 * time.Microsecond
	if d := p.Select(in); d.Method != codec.None {
		t.Fatalf("fast line, low entropy = %v", d.Method)
	}
}

func TestCharacteristicPolicyHighEntropyRandom(t *testing.T) {
	p := CharacteristicPolicy{Config: DefaultConfig()}
	in := charBase()
	in.Repetition = 0.01
	in.Entropy = 7.99
	in.ProbeRatio = 1.0
	in.ReducingSpeed = 0
	in.SendTime = time.Hour
	if d := p.Select(in); d.Method != codec.None {
		t.Fatalf("random data = %v", d.Method)
	}
}

func TestCharacteristicPolicyNoReductionRepetitive(t *testing.T) {
	// Claims repetition but LZ found no reduction: trust the cost model
	// and send raw.
	p := CharacteristicPolicy{Config: DefaultConfig()}
	in := charBase()
	in.ReducingSpeed = 0
	in.ProbeRatio = 1
	in.SendTime = time.Second
	if d := p.Select(in); d.Method != codec.None {
		t.Fatalf("got %v", d.Method)
	}
}

func TestPolicyNames(t *testing.T) {
	if (CharacteristicPolicy{}).Name() != "characteristic" {
		t.Fatal("name")
	}
}
