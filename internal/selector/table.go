package selector

import "ccx/internal/codec"

// Rating is the paper's four-level qualitative scale (Figure 1).
type Rating int

// Qualitative ratings, worst to best.
const (
	Poor Rating = iota + 1
	Satisfactory
	Good
	Excellent
)

// String returns the rating label used in the paper's Figure 1.
func (r Rating) String() string {
	switch r {
	case Poor:
		return "Poor"
	case Satisfactory:
		return "Satisfactory"
	case Good:
		return "Good"
	case Excellent:
		return "Excellent"
	}
	return "Unknown"
}

// Characteristics qualitatively ranks one method along the paper's six
// dimensions (rows of Figure 1).
type Characteristics struct {
	StringRepetition Rating // compresses files with string repetitions
	LowEntropy       Rating // compresses files with low entropy
	Efficiency       Rating // compression efficiency
	CompressTime     Rating // time of compression
	DecompressTime   Rating // time of decompression
	GlobalTime       Rating // global time
}

// MethodTable returns the paper's Figure 1 exactly as published. The
// Figure1 experiment re-derives these rankings from microbenchmarks to
// check that our implementations exhibit the same qualitative behaviour.
func MethodTable() map[codec.Method]Characteristics {
	return map[codec.Method]Characteristics{
		codec.BurrowsWheeler: {
			StringRepetition: Excellent,
			LowEntropy:       Excellent,
			Efficiency:       Excellent,
			CompressTime:     Poor,
			DecompressTime:   Satisfactory,
			GlobalTime:       Poor,
		},
		codec.LempelZiv: {
			StringRepetition: Excellent,
			LowEntropy:       Poor,
			Efficiency:       Good,
			CompressTime:     Satisfactory,
			DecompressTime:   Excellent,
			GlobalTime:       Good,
		},
		codec.Arithmetic: {
			StringRepetition: Poor,
			LowEntropy:       Excellent,
			Efficiency:       Poor,
			CompressTime:     Poor,
			DecompressTime:   Poor,
			GlobalTime:       Poor,
		},
		codec.Huffman: {
			StringRepetition: Poor,
			LowEntropy:       Excellent,
			Efficiency:       Poor,
			CompressTime:     Excellent,
			DecompressTime:   Excellent,
			GlobalTime:       Excellent,
		},
	}
}

// TableMethods lists the Figure 1 columns in the paper's order.
func TableMethods() []codec.Method {
	return []codec.Method{codec.BurrowsWheeler, codec.LempelZiv, codec.Arithmetic, codec.Huffman}
}

// Dimensions lists the Figure 1 rows in the paper's order.
func Dimensions() []string {
	return []string{
		"Compress files with string repetitions",
		"Compress files with low entropy",
		"Compression Efficiency",
		"Time of Compression",
		"Time of Decompression",
		"Global Time",
	}
}

// Rating extracts the rating for a named dimension (as listed by
// Dimensions); unknown names return 0.
func (c Characteristics) Rating(dimension string) Rating {
	switch dimension {
	case "Compress files with string repetitions":
		return c.StringRepetition
	case "Compress files with low entropy":
		return c.LowEntropy
	case "Compression Efficiency":
		return c.Efficiency
	case "Time of Compression":
		return c.CompressTime
	case "Time of Decompression":
		return c.DecompressTime
	case "Global Time":
		return c.GlobalTime
	}
	return 0
}
