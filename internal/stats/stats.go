// Package stats provides the small descriptive-statistics and table
// rendering helpers shared by the experiment harness.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation (0 for fewer than 2 values).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MinMax returns the extremes (0,0 for empty input).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between closest ranks.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Table is a fixed-width text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(cell)
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", pad))
		}
		return strings.TrimRight(sb.String(), " ")
	}
	if len(t.Columns) > 0 {
		if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
			return err
		}
		total := 0
		for _, wd := range widths {
			total += wd + 2
		}
		if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}
