package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if m := Mean([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Fatalf("mean = %v", m)
	}
}

func TestStd(t *testing.T) {
	if Std([]float64{5}) != 0 {
		t.Fatal("single-value std")
	}
	// Population std of {2,4,4,4,5,5,7,9} is 2.
	if s := Std([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(s-2) > 1e-12 {
		t.Fatalf("std = %v", s)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Fatalf("minmax = %v %v", min, max)
	}
	if a, b := MinMax(nil); a != 0 || b != 0 {
		t.Fatal("empty minmax")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {-5, 1}, {150, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("P%v = %v want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
	// Input must not be mutated (sorted copy).
	in := []float64{3, 1, 2}
	Percentile(in, 50)
	if in[0] != 3 {
		t.Fatal("input mutated")
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:   "methods",
		Columns: []string{"method", "ratio"},
	}
	tbl.AddRow("huffman", "0.48")
	tbl.AddRow("burrows-wheeler", "0.20")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"methods", "method", "huffman", "burrows-wheeler", "0.20"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Columns align: the ratio header sits at the same offset as values.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	hdrIdx := strings.Index(lines[1], "ratio")
	if hdrIdx < 0 {
		t.Fatal("no header line")
	}
	if idx := strings.Index(lines[4], "0.20"); idx != hdrIdx {
		t.Fatalf("misaligned: %d vs %d\n%s", idx, hdrIdx, out)
	}
}
