//go:build race

package broker

// Under the race detector the Lempel-Ziv probe runs an order of magnitude
// slower, deflating measured reducing speeds. Scale down accordingly so the
// selector still sees "fast CPU relative to the slow link, slow CPU
// relative to the fast link" — the regime the integration test asserts.
const integrationSpeedScale = 4

// The race build also time-slices all subscribers onto instrumented (and on
// CI often single-core) schedulers, so the slow link's compression work can
// transiently starve the fast link's reader and collapse its observed
// goodput. Compressing during such a stall is correct adaptation, so the
// race build only requires a clear majority of raw blocks on the fast path;
// the strict 0.8 bar is enforced by the native build.
const integrationFastNoneFrac = 0.55
