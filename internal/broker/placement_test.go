package broker

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"ccx/internal/codec"
	"ccx/internal/selector"
)

// readAllFrames drains event frames from conn until EOF/close, skipping
// heartbeats, and keeps each frame's wire method alongside its payload.
func readAllFrames(conn net.Conn) (events [][]byte, methods []codec.Method) {
	fr := codec.NewFrameReader(conn, nil)
	for {
		data, info, err := fr.ReadBlock()
		if err != nil {
			return events, methods
		}
		if len(data) == 0 {
			continue
		}
		events = append(events, data)
		methods = append(methods, info.Method)
	}
}

// TestPlacementReceiverShipsRaw pins receiver-side placement as the broker
// default: every frame toward a (legacy, non-advertising) subscriber must be
// Method None with byte-identical payloads, even for data the method
// selector would otherwise love to compress.
func TestPlacementReceiverShipsRaw(t *testing.T) {
	b := newTestBroker(t, func(c *Config) { c.Placement = selector.PlacementReceiver })
	conn := attachSubscriber(t, b, "md")
	done := make(chan struct{})
	var events [][]byte
	var methods []codec.Method
	go func() {
		defer close(done)
		events, methods = readAllFrames(conn)
	}()
	var want [][]byte
	for i := 0; i < 8; i++ {
		ev := bytes.Repeat([]byte{byte('a' + i)}, 4096) // maximally compressible
		want = append(want, ev)
		if err := b.Publish("md", ev); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	<-done
	if len(events) != len(want) {
		t.Fatalf("%d events, want %d", len(events), len(want))
	}
	for i := range want {
		if !bytes.Equal(events[i], want[i]) {
			t.Fatalf("event %d differs", i)
		}
		if methods[i] != codec.None {
			t.Fatalf("event %d shipped as %s, want None under receiver placement", i, methods[i])
		}
	}
	if n := b.Metrics().Counter("encplane.placement.receiver").Value(); n == 0 {
		t.Fatal("encplane.placement.receiver counter never incremented")
	}
}

// TestPlacementAdvertOverridesDefault lets a version-3 subscriber advertise
// receiver placement against a publisher-default broker; its session must
// run raw while a legacy subscriber on the same channel keeps the default.
func TestPlacementAdvertOverridesDefault(t *testing.T) {
	b := newTestBroker(t, nil) // default placement: publisher (broker encodes)
	client, server := net.Pipe()
	b.HandleConn(server)
	if err := HandshakeSubscribePlacement(client, "md", selector.PlacementReceiver); err != nil {
		t.Fatalf("placement handshake: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	done := make(chan struct{})
	var events [][]byte
	var methods []codec.Method
	go func() {
		defer close(done)
		events, methods = readAllFrames(client)
	}()
	var want [][]byte
	for i := 0; i < 6; i++ {
		ev := bytes.Repeat([]byte("abcd"), 1024)
		want = append(want, ev)
		if err := b.Publish("md", ev); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	<-done
	if len(events) != len(want) {
		t.Fatalf("%d events, want %d", len(events), len(want))
	}
	for i := range want {
		if !bytes.Equal(events[i], want[i]) {
			t.Fatalf("event %d differs", i)
		}
		if methods[i] != codec.None {
			t.Fatalf("event %d shipped as %s, want None for advertised receiver placement",
				i, methods[i])
		}
	}
}

// TestPlacementUnknownByteDegrades sends a hand-crafted version-3 hello with
// a placement byte the broker has never heard of. The regression contract
// (see readHandshake) is degrade-don't-refuse: the session is accepted as
// publisher-side, events flow byte-identically, and the degradation is
// counted so operators can see the version skew.
func TestPlacementUnknownByteDegrades(t *testing.T) {
	b := newTestBroker(t, nil)
	client, server := net.Pipe()
	b.HandleConn(server)
	t.Cleanup(func() { client.Close() })
	// magic + v3 + subscribe + channel "md" + unknown placement byte 'Q'.
	hello := []byte("CCB\x03S\x02mdQ")
	if _, err := client.Write(hello); err != nil {
		t.Fatalf("hello write: %v", err)
	}
	var status [1]byte
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := client.Read(status[:]); err != nil {
		t.Fatalf("status read: %v", err)
	}
	if status[0] != statusOK {
		t.Fatalf("status = %d, want accept: unknown placement must degrade, not refuse", status[0])
	}
	client.SetReadDeadline(time.Time{})
	done := make(chan struct{})
	var events [][]byte
	go func() {
		defer close(done)
		events, _ = readAllFrames(client)
	}()
	ev := []byte("degraded but delivered")
	if err := b.Publish("md", ev); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	<-done
	if len(events) != 1 || !bytes.Equal(events[0], ev) {
		t.Fatalf("got %d events, want the published one intact", len(events))
	}
	if n := b.Metrics().Counter("broker.placement_degraded").Value(); n != 1 {
		t.Fatalf("placement_degraded = %d, want 1", n)
	}
}

// TestPlacementResumeCarriesPlacement resumes with an advertised receiver
// placement: the replay backlog and the live stream must both arrive raw.
func TestPlacementResumeCarriesPlacement(t *testing.T) {
	b := newTestBroker(t, func(c *Config) { c.ReplayBlocks = 64 })
	var want [][]byte
	for i := 0; i < 4; i++ {
		ev := bytes.Repeat([]byte{byte('r' + i)}, 2048)
		want = append(want, ev)
		if err := b.Publish("md", ev); err != nil {
			t.Fatal(err)
		}
	}
	client, server := net.Pipe()
	b.HandleConn(server)
	t.Cleanup(func() { client.Close() })
	firstSeq, err := HandshakeResumePlacement(client, "md", 0, selector.PlacementReceiver)
	if err != nil {
		t.Fatalf("resume handshake: %v", err)
	}
	if firstSeq != 1 {
		t.Fatalf("firstSeq = %d, want 1", firstSeq)
	}
	done := make(chan struct{})
	var events [][]byte
	var methods []codec.Method
	go func() {
		defer close(done)
		events, methods = readAllFrames(client)
	}()
	live := bytes.Repeat([]byte("live"), 512)
	want = append(want, live)
	if err := b.Publish("md", live); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	<-done
	if len(events) != len(want) {
		t.Fatalf("%d events, want %d", len(events), len(want))
	}
	for i := range want {
		if !bytes.Equal(events[i], want[i]) {
			t.Fatalf("event %d differs", i)
		}
		if methods[i] != codec.None {
			t.Fatalf("event %d shipped as %s, want None", i, methods[i])
		}
	}
}
