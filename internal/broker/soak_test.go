package broker

import (
	"context"
	"errors"
	"net"
	"os"
	"strconv"
	"testing"
	"time"

	"ccx/internal/codec"
	"ccx/internal/governor"
	"ccx/internal/testx"
)

// soakSubscribers is the swarm size for the overload soak; CCX_SOAK_SUBS
// overrides it (CI's soak-smoke job runs the full 1000, -short trims it so
// the default test run stays fast).
func soakSubscribers(t *testing.T) int {
	n := 1000
	if testing.Short() {
		n = 64
	}
	if s := os.Getenv("CCX_SOAK_SUBS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			t.Fatalf("CCX_SOAK_SUBS = %q: want a positive integer", s)
		}
		n = v
	}
	return n
}

// TestSoakOverloadGovernor is the overload soak: a memory-capped broker is
// driven past its byte budget by a swarm of stalled subscribers. It must
// go critical, refuse new admissions with RETRY-AFTER, degrade the method
// ladder under CPU pressure, shed the whole stalled swarm in bounded
// per-sample steps, come back under its budget, and restore the full
// method set and open admission once pressure subsides — all without
// leaking a single goroutine or shared-frame reference. Sampling is driven
// through SampleNow so every pressure step is deterministic; each call
// stands in for one governor interval.
func TestSoakOverloadGovernor(t *testing.T) {
	subs := soakSubscribers(t)
	guard := testx.GoroutineGuard(t, 10)

	const budget = 2 << 20
	b := newTestBroker(t, func(c *Config) {
		c.QueueLen = 16
		c.Policy = DropOldest // shedding is the governor's job here
		c.ReplayBlocks = 16
		c.ReplayBytes = 1 << 20
		c.CacheBytes = 64 << 10
		c.RetryAfter = 500 * time.Millisecond
		c.Governor = &governor.Config{MemBudget: -1, BytesBudget: budget, Interval: time.Hour}
	})
	gov := b.Governor()
	met := b.Metrics()

	// Phase 1: the swarm attaches and stalls (nobody reads), so every
	// queue backs up holding shared-frame references.
	clients := make([]net.Conn, 0, subs)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for i := 0; i < subs; i++ {
		client, server := net.Pipe()
		b.HandleConn(server)
		if err := HandshakeSubscribe(client, "md"); err != nil {
			t.Fatalf("subscriber %d: %v", i, err)
		}
		clients = append(clients, client)
	}
	if got := b.Subscribers(); got != subs {
		t.Fatalf("attached %d subscribers, want %d", got, subs)
	}

	// Phase 2: drive past the budget. Incompressible 64 KiB blocks pin
	// shared frames in every stalled queue and fill the replay ring.
	rng := testx.Rand(t)
	block := make([]byte, 64<<10)
	for i := 0; i < 40; i++ {
		rng.Read(block)
		if err := b.Publish("md", block); err != nil {
			t.Fatal(err)
		}
	}
	testx.WaitUntil(t, "queued bytes past the critical fraction", func() bool {
		return b.queuedBytes() >= budget*9/10
	})

	// Phase 3: overload. One sample flips the governor critical.
	snap := gov.SampleNow()
	if snap.Mem != governor.LevelCritical {
		t.Fatalf("mem = %v (queued %d / budget %d), want critical", snap.Mem, snap.Queued, budget)
	}
	if v := met.Gauge("governor.level").Value(); v != int64(governor.LevelCritical) {
		t.Fatalf("governor.level gauge = %d, want critical", v)
	}

	// Admission control: while the memory level reads critical, a new
	// subscriber is refused with the configured RETRY-AFTER instead of
	// being accepted and immediately shed.
	refused, server := net.Pipe()
	b.HandleConn(server)
	err := HandshakeSubscribe(refused, "md")
	refused.Close()
	var ov *OverloadError
	if !errors.As(err, &ov) || ov.RetryAfter != 500*time.Millisecond {
		t.Fatalf("subscribe under pressure = %v, want OverloadError with 500ms retry", err)
	}
	if met.Counter("broker.admission_refused").Value() < 1 ||
		met.Counter("governor.shed_subscribes").Value() < 1 {
		t.Fatal("admission refusal not recorded in metrics")
	}

	// Degradation: sustained pipeline waits push CPU critical, capping the
	// method ladder at Huffman for every subscriber engine. The signal is
	// an EWMA, so it takes a short run of saturated observations.
	for i := 0; i < 8; i++ {
		gov.NotePipeWait(250 * time.Millisecond)
	}
	if snap = gov.SampleNow(); snap.CPU != governor.LevelCritical {
		t.Fatalf("cpu = %v after sustained 250ms pipeline waits, want critical", snap.CPU)
	}
	if max, cause, ok := gov.CapMethod(); !ok || max != codec.Huffman || cause != "cpu critical" {
		t.Fatalf("CapMethod = (%v, %q, %v), want huffman cap for cpu critical", max, cause, ok)
	}

	// Phase 4: shedding. Each critical sample evicts at most
	// maxShedPerSample of the deepest queues, so the swarm drains in
	// bounded steps until the memory dimension clears.
	for i := 0; b.Subscribers() > 0 && i < subs/maxShedPerSample+20; i++ {
		gov.SampleNow()
	}
	if got := b.Subscribers(); got != 0 {
		t.Fatalf("%d stalled subscribers still attached after shed loop", got)
	}
	if n := met.Counter("governor.shed_evictions").Value(); n != int64(subs) {
		t.Fatalf("shed_evictions = %d, want the whole swarm (%d)", n, subs)
	}
	// Eviction teardown is asynchronous (dying write loops still hold frame
	// references for a beat), so wait for the steady state below the
	// ok-level down threshold (ElevatedFrac × DownFrac = 0.585 of budget),
	// not merely under the budget — the recovery phase asserts the very
	// next sample steps to ok.
	testx.WaitUntil(t, "queued bytes back under the ok threshold", func() bool {
		return b.queuedBytes() <= budget*117/200
	})

	// Phase 5: recovery. The memory dimension steps down on the first calm
	// sample (Hold = 1 — within one governor interval of the load ending);
	// the CPU EWMA decays over a few more idle samples.
	if snap = gov.SampleNow(); snap.Mem != governor.LevelOK {
		t.Fatalf("mem = %v on the first calm sample (queued %d), want ok", snap.Mem, snap.Queued)
	}
	for i := 0; gov.Level() != governor.LevelOK && i < 40; i++ {
		gov.SampleNow()
	}
	if gov.Level() != governor.LevelOK {
		t.Fatalf("level = %v after idle decay, want ok", gov.Level())
	}
	if _, _, ok := gov.CapMethod(); ok {
		t.Fatal("method cap still active after recovery: full method set not restored")
	}
	if v := met.Gauge("governor.level").Value(); v != int64(governor.LevelOK) {
		t.Fatalf("governor.level gauge = %d after recovery, want ok", v)
	}

	// Admission is open again.
	conn := attachSubscriber(t, b, "md")
	conn.Close()
	testx.WaitUntil(t, "recovery subscriber torn down", func() bool { return b.Subscribers() == 0 })

	// Phase 6: teardown proves nothing leaked — no goroutines beyond the
	// baseline, no live shared-frame references once the cache is purged.
	for _, c := range clients {
		c.Close()
	}
	clients = nil
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	testx.NoLeakedFrames(t, b.plane)
	guard()

	testx.DumpMetrics(t, "overload-soak", met)
}
