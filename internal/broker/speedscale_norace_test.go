//go:build !race

package broker

// integrationSpeedScale divides measured reducing speeds in the fan-out
// integration test so the simulated links and the real CPU sit in the
// paper's operating regime: fast link below the compression threshold,
// slow link above it. See the race-tagged sibling for the -race values.
const integrationSpeedScale = 25

// integrationFastNoneFrac is the fraction of the fast link's blocks that
// must ship uncompressed. Native builds hold the strict bar.
const integrationFastNoneFrac = 0.8
