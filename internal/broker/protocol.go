package broker

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"ccx/internal/codec"
	"ccx/internal/selector"
)

// Wire protocol.
//
// A client opens a TCP connection and sends one handshake:
//
//	magic "CCB" + version(1)
//	role(1)              'P' = publish, 'S' = subscribe, 'R' = resume
//	channelLen(uvarint) channelName
//	[lastSeq(uvarint)]   role 'R' only: last contiguously delivered seq
//	[placement(1)]       version 3 only: 'P'/'B'/'R'/'A'
//
// Version 1 handshakes carry roles 'P' and 'S'; version 2 adds role 'R'
// (resume), a subscription that also presents the last sequence number the
// client delivered contiguously. Version 3 appends one compression-placement
// byte to every role: where this peer wants compression to run (publisher,
// broker, receiver, or auto — see selector.Placement). An unknown placement
// byte degrades to publisher-side compression rather than refusing the
// session, so newer clients always get a working (if inline-compressed)
// stream from older-configured brokers. The broker accepts all versions
// forever.
//
// The broker answers with a single status byte: 0 accepts the session, any
// other value is followed by uvarint-length error text and a close. For an
// accepted resume the status byte is followed by one uvarint: the sequence
// number of the first block this session will deliver. A client that asked
// to resume from lastSeq reads a gap of (firstSeq - lastSeq - 1) blocks
// when the broker's replay window no longer reaches back far enough — an
// explicit, counted discontinuity rather than a silent skip.
//
// After acceptance the connection speaks the internal/codec frame format,
// one logical event per frame:
//
//   - publishers send frames to the broker (compressed however the
//     publisher's own engine decided; the broker decodes to recover the
//     original event bytes before fan-out);
//   - subscribers receive frames from the broker, each compressed by that
//     subscriber's private adaptation loop. Blocks published through the
//     broker carry per-channel sequence numbers in version-3 frames.
//
// Zero-length frames are keepalives in both directions and never carry
// data. Subscribers may additionally write arbitrary bytes at any time;
// the broker discards them but counts them as liveness (pings) against its
// read timeout.
const (
	// ProtocolVersion is the baseline handshake version byte.
	ProtocolVersion = 1
	// ProtocolVersionResume is the handshake version that introduces the
	// resume role.
	ProtocolVersionResume = 2
	// ProtocolVersionPlacement is the handshake version that appends a
	// trailing compression-placement byte to every role.
	ProtocolVersionPlacement = 3
	// RolePublish and RoleSubscribe are the handshake role bytes; RoleResume
	// is a subscribe that presents resume state (version 2 handshakes only).
	RolePublish   = 'P'
	RoleSubscribe = 'S'
	RoleResume    = 'R'
	// MaxChannelName bounds the handshake channel-name length.
	MaxChannelName = 255

	statusOK     = 0
	statusRefuse = 1
	// statusRetry is the admission-control reply: refuse-with-RETRY-AFTER.
	// The wire is the refusal layout (uvarint-length reason text) followed by
	// one uvarint of suggested retry delay in milliseconds. Clients predating
	// it parse the prefix as a plain refusal and never read the trailing
	// uvarint — harmless, since the connection closes right after.
	statusRetry = 2
)

var handshakeMagic = [3]byte{'C', 'C', 'B'}

// Handshake errors.
var (
	ErrBadHandshake = errors.New("broker: bad handshake")
	// ErrRefused reports that the broker rejected the session; the reason
	// from the wire is attached to the returned error text.
	ErrRefused = errors.New("broker: session refused")
)

// OverloadError is the client-side face of a RETRY-AFTER refusal: the
// broker's admission control shed this subscribe under memory pressure and
// suggested when to try again. It matches errors.Is(err, ErrRefused), so
// callers that only know refusals still behave; callers that know better
// (errors.As) honor RetryAfter instead of their own backoff schedule.
type OverloadError struct {
	RetryAfter time.Duration
	Reason     string
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("broker: session refused: %s (retry after %v)", e.Reason, e.RetryAfter)
}

// Is makes errors.Is(err, ErrRefused) hold for overload refusals.
func (e *OverloadError) Is(target error) bool { return target == ErrRefused }

// EvictedError is what a subscriber's frame stream ends with when the
// broker severed it deliberately and said why (the explicit close-reason
// frame): "evicted: overload" instead of a generic read error. Clients
// treat it as a signal to back off with jitter and resume.
type EvictedError struct {
	Reason codec.CloseReason
	Msg    string
}

func (e *EvictedError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("broker: evicted: %s (%s)", e.Reason, e.Msg)
	}
	return fmt.Sprintf("broker: evicted: %s", e.Reason)
}

// HandshakePublish performs the client half of a publisher handshake on
// conn. On return the caller owns a frame stream to the broker: every
// internal/codec frame written becomes one event on the named channel.
func HandshakePublish(conn net.Conn, channel string) error {
	_, err := clientHandshake(conn, RolePublish, channel, 0, 0, false)
	return err
}

// HandshakeSubscribe performs the client half of a subscriber handshake on
// conn. On return the broker streams internal/codec frames, one event per
// frame; zero-length frames are heartbeats to be skipped.
func HandshakeSubscribe(conn net.Conn, channel string) error {
	_, err := clientHandshake(conn, RoleSubscribe, channel, 0, 0, false)
	return err
}

// HandshakeResume performs the client half of a resuming subscription:
// channel plus the last sequence number the client delivered contiguously
// (0 = nothing delivered yet). It returns the sequence number of the first
// block the broker will send on this session; a firstSeq greater than
// lastSeq+1 means the replay window was exceeded and firstSeq-lastSeq-1
// blocks are irrecoverably gone — the caller should surface that gap, not
// hide it.
func HandshakeResume(conn net.Conn, channel string, lastSeq uint64) (firstSeq uint64, err error) {
	return clientHandshake(conn, RoleResume, channel, lastSeq, 0, false)
}

// HandshakePublishPlacement is HandshakePublish with an advertised
// compression placement (version-3 handshake): where this publisher wants
// compression to run for the channel's consumers. The advert is
// informational for the broker's accounting — the publisher enforces its
// own half by shipping raw frames when placement offloads downstream.
func HandshakePublishPlacement(conn net.Conn, channel string, pl selector.Placement) error {
	_, err := clientHandshake(conn, RolePublish, channel, 0, pl, true)
	return err
}

// HandshakeSubscribePlacement is HandshakeSubscribe with an advertised
// compression placement: the subscriber's placement overrides the broker's
// configured default for this session. Brokers that predate placement
// refuse version-3 handshakes; callers that must interoperate should retry
// with HandshakeSubscribe.
func HandshakeSubscribePlacement(conn net.Conn, channel string, pl selector.Placement) error {
	_, err := clientHandshake(conn, RoleSubscribe, channel, 0, pl, true)
	return err
}

// HandshakeResumePlacement is HandshakeResume with an advertised
// compression placement.
func HandshakeResumePlacement(conn net.Conn, channel string, lastSeq uint64, pl selector.Placement) (firstSeq uint64, err error) {
	return clientHandshake(conn, RoleResume, channel, lastSeq, pl, true)
}

func clientHandshake(conn net.Conn, role byte, channel string, lastSeq uint64, pl selector.Placement, advertise bool) (uint64, error) {
	if channel == "" || len(channel) > MaxChannelName {
		return 0, fmt.Errorf("%w: channel name length %d out of [1,%d]",
			ErrBadHandshake, len(channel), MaxChannelName)
	}
	if advertise && !pl.Valid() {
		return 0, fmt.Errorf("%w: invalid placement %s", ErrBadHandshake, pl)
	}
	version := byte(ProtocolVersion)
	if role == RoleResume {
		version = ProtocolVersionResume
	}
	if advertise {
		version = ProtocolVersionPlacement
	}
	msg := make([]byte, 0, 16+len(channel))
	msg = append(msg, handshakeMagic[:]...)
	msg = append(msg, version, role)
	msg = binary.AppendUvarint(msg, uint64(len(channel)))
	msg = append(msg, channel...)
	if role == RoleResume {
		msg = binary.AppendUvarint(msg, lastSeq)
	}
	if advertise {
		msg = append(msg, pl.WireByte())
	}
	if _, err := conn.Write(msg); err != nil {
		return 0, fmt.Errorf("broker: handshake write: %w", err)
	}
	var status [1]byte
	if _, err := io.ReadFull(conn, status[:]); err != nil {
		return 0, fmt.Errorf("broker: handshake reply: %w", err)
	}
	if status[0] == statusOK {
		if role != RoleResume {
			return 0, nil
		}
		firstSeq, err := readUvarint(conn)
		if err != nil {
			return 0, fmt.Errorf("broker: resume reply: %w", err)
		}
		return firstSeq, nil
	}
	reason, err := readShortString(conn)
	if err != nil {
		return 0, ErrRefused
	}
	if status[0] == statusRetry {
		millis, err := readUvarint(conn)
		if err != nil {
			// Reason arrived, delay didn't: still an overload refusal, with
			// no retry hint for the caller's backoff to override.
			return 0, &OverloadError{Reason: reason}
		}
		return 0, &OverloadError{RetryAfter: time.Duration(millis) * time.Millisecond, Reason: reason}
	}
	return 0, fmt.Errorf("%w: %s", ErrRefused, reason)
}

// handshake is the parsed server half of a client hello.
type handshake struct {
	role    byte
	channel string
	// lastSeq is the resume point presented by a RoleResume client: the last
	// sequence number it delivered contiguously (0 = none).
	lastSeq uint64
	// hasPlacement marks a version-3 hello; placement is then the peer's
	// advertised compression placement, already degraded to publisher when
	// the wire byte was unknown (placementDegraded reports that, so the
	// broker can count it).
	hasPlacement      bool
	placement         selector.Placement
	placementDegraded bool
}

// readHandshake parses the server half. It reads byte-at-a-time so no
// stream data past the handshake is consumed.
func readHandshake(r io.Reader) (handshake, error) {
	var hs handshake
	var fixed [5]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return hs, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	if fixed[0] != handshakeMagic[0] || fixed[1] != handshakeMagic[1] || fixed[2] != handshakeMagic[2] {
		return hs, fmt.Errorf("%w: bad magic", ErrBadHandshake)
	}
	version := fixed[3]
	if version != ProtocolVersion && version != ProtocolVersionResume &&
		version != ProtocolVersionPlacement {
		return hs, fmt.Errorf("%w: unsupported version %d", ErrBadHandshake, version)
	}
	hs.role = fixed[4]
	switch hs.role {
	case RolePublish, RoleSubscribe:
	case RoleResume:
		if version < ProtocolVersionResume {
			return hs, fmt.Errorf("%w: role %q needs version %d",
				ErrBadHandshake, hs.role, ProtocolVersionResume)
		}
	default:
		return hs, fmt.Errorf("%w: unknown role %q", ErrBadHandshake, hs.role)
	}
	channel, err := readShortString(r)
	if err != nil {
		return hs, fmt.Errorf("%w: channel name: %v", ErrBadHandshake, err)
	}
	if channel == "" {
		return hs, fmt.Errorf("%w: empty channel name", ErrBadHandshake)
	}
	hs.channel = channel
	if hs.role == RoleResume {
		lastSeq, err := readUvarint(r)
		if err != nil {
			return hs, fmt.Errorf("%w: resume seq: %v", ErrBadHandshake, err)
		}
		hs.lastSeq = lastSeq
	}
	if version >= ProtocolVersionPlacement {
		var one [1]byte
		if _, err := io.ReadFull(r, one[:]); err != nil {
			return hs, fmt.Errorf("%w: placement: %v", ErrBadHandshake, err)
		}
		hs.hasPlacement = true
		pl, known := selector.PlacementFromWire(one[0])
		hs.placement = pl
		hs.placementDegraded = !known
	}
	return hs, nil
}

// writeResumeReply sends the accept status followed by the first sequence
// number the session will deliver.
func writeResumeReply(w io.Writer, firstSeq uint64) error {
	msg := make([]byte, 0, 11)
	msg = append(msg, statusOK)
	msg = binary.AppendUvarint(msg, firstSeq)
	_, err := w.Write(msg)
	return err
}

// writeRetryReply sends the admission-control refusal: reason text plus the
// suggested retry delay.
func writeRetryReply(w io.Writer, reason string, retryAfter time.Duration) error {
	if len(reason) > MaxChannelName {
		reason = reason[:MaxChannelName]
	}
	millis := retryAfter.Milliseconds()
	if millis < 0 {
		millis = 0
	}
	msg := make([]byte, 0, 12+len(reason))
	msg = append(msg, statusRetry)
	msg = binary.AppendUvarint(msg, uint64(len(reason)))
	msg = append(msg, reason...)
	msg = binary.AppendUvarint(msg, uint64(millis))
	_, err := w.Write(msg)
	return err
}

// writeReply sends the broker's accept/refuse status. A nil reason accepts.
func writeReply(w io.Writer, reason error) error {
	if reason == nil {
		_, err := w.Write([]byte{statusOK})
		return err
	}
	text := reason.Error()
	if len(text) > MaxChannelName {
		text = text[:MaxChannelName]
	}
	msg := make([]byte, 0, 2+len(text))
	msg = append(msg, statusRefuse)
	msg = binary.AppendUvarint(msg, uint64(len(text)))
	msg = append(msg, text...)
	_, err := w.Write(msg)
	return err
}

// readShortString reads a uvarint-length-prefixed string bounded by
// MaxChannelName, one byte at a time (the stream that follows must not be
// consumed).
func readShortString(r io.Reader) (string, error) {
	n, err := readUvarint(r)
	if err != nil {
		return "", err
	}
	if n > MaxChannelName {
		return "", fmt.Errorf("string length %d over limit %d", n, MaxChannelName)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// readUvarint decodes a uvarint with single-byte reads (no buffering).
func readUvarint(r io.Reader) (uint64, error) {
	var one [1]byte
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if _, err := io.ReadFull(r, one[:]); err != nil {
			return 0, err
		}
		b := one[0]
		v |= uint64(b&0x7F) << shift
		if b < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("uvarint overflow")
}
