package broker

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
)

// Wire protocol.
//
// A client opens a TCP connection and sends one handshake:
//
//	magic "CCB" + version(1)
//	role(1)              'P' = publish, 'S' = subscribe
//	channelLen(uvarint) channelName
//
// The broker answers with a single status byte: 0 accepts the session, any
// other value is followed by uvarint-length error text and a close.
//
// After acceptance the connection speaks the internal/codec frame format,
// one logical event per frame:
//
//   - publishers send frames to the broker (compressed however the
//     publisher's own engine decided; the broker decodes to recover the
//     original event bytes before fan-out);
//   - subscribers receive frames from the broker, each compressed by that
//     subscriber's private adaptation loop.
//
// Zero-length frames are keepalives in both directions and never carry
// data. Subscribers may additionally write arbitrary bytes at any time;
// the broker discards them but counts them as liveness (pings) against its
// read timeout.
const (
	// ProtocolVersion is the handshake version byte.
	ProtocolVersion = 1
	// RolePublish and RoleSubscribe are the handshake role bytes.
	RolePublish   = 'P'
	RoleSubscribe = 'S'
	// MaxChannelName bounds the handshake channel-name length.
	MaxChannelName = 255

	statusOK     = 0
	statusRefuse = 1
)

var handshakeMagic = [3]byte{'C', 'C', 'B'}

// Handshake errors.
var (
	ErrBadHandshake = errors.New("broker: bad handshake")
	// ErrRefused reports that the broker rejected the session; the reason
	// from the wire is attached to the returned error text.
	ErrRefused = errors.New("broker: session refused")
)

// HandshakePublish performs the client half of a publisher handshake on
// conn. On return the caller owns a frame stream to the broker: every
// internal/codec frame written becomes one event on the named channel.
func HandshakePublish(conn net.Conn, channel string) error {
	return clientHandshake(conn, RolePublish, channel)
}

// HandshakeSubscribe performs the client half of a subscriber handshake on
// conn. On return the broker streams internal/codec frames, one event per
// frame; zero-length frames are heartbeats to be skipped.
func HandshakeSubscribe(conn net.Conn, channel string) error {
	return clientHandshake(conn, RoleSubscribe, channel)
}

func clientHandshake(conn net.Conn, role byte, channel string) error {
	if channel == "" || len(channel) > MaxChannelName {
		return fmt.Errorf("%w: channel name length %d out of [1,%d]",
			ErrBadHandshake, len(channel), MaxChannelName)
	}
	msg := make([]byte, 0, 5+len(channel))
	msg = append(msg, handshakeMagic[:]...)
	msg = append(msg, ProtocolVersion, role)
	msg = binary.AppendUvarint(msg, uint64(len(channel)))
	msg = append(msg, channel...)
	if _, err := conn.Write(msg); err != nil {
		return fmt.Errorf("broker: handshake write: %w", err)
	}
	var status [1]byte
	if _, err := io.ReadFull(conn, status[:]); err != nil {
		return fmt.Errorf("broker: handshake reply: %w", err)
	}
	if status[0] == statusOK {
		return nil
	}
	reason, err := readShortString(conn)
	if err != nil {
		return ErrRefused
	}
	return fmt.Errorf("%w: %s", ErrRefused, reason)
}

// readHandshake parses the server half. It reads byte-at-a-time so no
// stream data past the handshake is consumed.
func readHandshake(r io.Reader) (role byte, channel string, err error) {
	var fixed [5]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return 0, "", fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	if fixed[0] != handshakeMagic[0] || fixed[1] != handshakeMagic[1] || fixed[2] != handshakeMagic[2] {
		return 0, "", fmt.Errorf("%w: bad magic", ErrBadHandshake)
	}
	if fixed[3] != ProtocolVersion {
		return 0, "", fmt.Errorf("%w: unsupported version %d", ErrBadHandshake, fixed[3])
	}
	role = fixed[4]
	if role != RolePublish && role != RoleSubscribe {
		return 0, "", fmt.Errorf("%w: unknown role %q", ErrBadHandshake, role)
	}
	channel, err = readShortString(r)
	if err != nil {
		return 0, "", fmt.Errorf("%w: channel name: %v", ErrBadHandshake, err)
	}
	if channel == "" {
		return 0, "", fmt.Errorf("%w: empty channel name", ErrBadHandshake)
	}
	return role, channel, nil
}

// writeReply sends the broker's accept/refuse status. A nil reason accepts.
func writeReply(w io.Writer, reason error) error {
	if reason == nil {
		_, err := w.Write([]byte{statusOK})
		return err
	}
	text := reason.Error()
	if len(text) > MaxChannelName {
		text = text[:MaxChannelName]
	}
	msg := make([]byte, 0, 2+len(text))
	msg = append(msg, statusRefuse)
	msg = binary.AppendUvarint(msg, uint64(len(text)))
	msg = append(msg, text...)
	_, err := w.Write(msg)
	return err
}

// readShortString reads a uvarint-length-prefixed string bounded by
// MaxChannelName, one byte at a time (the stream that follows must not be
// consumed).
func readShortString(r io.Reader) (string, error) {
	n, err := readUvarint(r)
	if err != nil {
		return "", err
	}
	if n > MaxChannelName {
		return "", fmt.Errorf("string length %d over limit %d", n, MaxChannelName)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// readUvarint decodes a uvarint with single-byte reads (no buffering).
func readUvarint(r io.Reader) (uint64, error) {
	var one [1]byte
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if _, err := io.ReadFull(r, one[:]); err != nil {
			return 0, err
		}
		b := one[0]
		v |= uint64(b&0x7F) << shift
		if b < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("uvarint overflow")
}
