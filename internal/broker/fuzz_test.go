package broker

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzHandshake throws arbitrary bytes at the server-side handshake/RESUME
// parser. Invariants: no panic, no unbounded read (the parser consumes at
// most the handshake's own bytes), and every accepted hello is internally
// consistent and survives a canonical re-encode/re-parse roundtrip.
//
// The seed corpus under testdata/fuzz/FuzzHandshake covers well-formed
// hellos of every role and version, truncations at each field boundary,
// bad magic, refused roles, and absurd resume sequence numbers; the seeds
// run as part of the ordinary test suite, and
// `go test -fuzz=FuzzHandshake ./internal/broker` explores further.
func FuzzHandshake(f *testing.F) {
	f.Add([]byte("CCB\x01S\x02md"))
	f.Add([]byte("CCB\x01P\x02md"))
	f.Add([]byte("CCB\x02R\x02md\x2a"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		hs, err := readHandshake(r)
		if err != nil {
			return
		}
		// The parser must never consume bytes past the handshake: the frame
		// stream begins immediately after it. The longest legal hello is
		// magic+version+role (5) + channel length uvarint (2 for <=255) +
		// channel (255) + lastSeq uvarint (10).
		if consumed := len(data) - r.Len(); consumed > 5+2+255+10 {
			t.Fatalf("parser consumed %d bytes", consumed)
		}
		switch hs.role {
		case RolePublish, RoleSubscribe, RoleResume:
		default:
			t.Fatalf("accepted unknown role %q", hs.role)
		}
		if hs.channel == "" || len(hs.channel) > MaxChannelName {
			t.Fatalf("accepted channel name of length %d", len(hs.channel))
		}
		if hs.role != RoleResume && hs.lastSeq != 0 {
			t.Fatalf("non-resume hello carries lastSeq %d", hs.lastSeq)
		}
		// Canonical re-encode must parse back to the same hello.
		ver := byte(ProtocolVersion)
		if hs.role == RoleResume {
			ver = ProtocolVersionResume
		}
		msg := append([]byte{}, handshakeMagic[:]...)
		msg = append(msg, ver, hs.role)
		msg = binary.AppendUvarint(msg, uint64(len(hs.channel)))
		msg = append(msg, hs.channel...)
		if hs.role == RoleResume {
			msg = binary.AppendUvarint(msg, hs.lastSeq)
		}
		hs2, err := readHandshake(bytes.NewReader(msg))
		if err != nil {
			t.Fatalf("canonical re-encode rejected: %v", err)
		}
		if hs2 != hs {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", hs2, hs)
		}
	})
}

// FuzzHandshakeRoundtrip drives the parser through the structured space:
// any role byte, channel, and resume sequence, encoded exactly as the
// client side does. Valid inputs must parse to the same fields; invalid
// ones must be rejected, never mangled.
func FuzzHandshakeRoundtrip(f *testing.F) {
	f.Add(uint8('S'), "md", uint64(0))
	f.Add(uint8('P'), "audit", uint64(0))
	f.Add(uint8('R'), "md", uint64(1<<40))
	f.Add(uint8('X'), "md", uint64(7))
	f.Add(uint8('R'), "", uint64(3))
	f.Fuzz(func(t *testing.T, role uint8, channel string, lastSeq uint64) {
		ver := byte(ProtocolVersion)
		if role == RoleResume {
			ver = ProtocolVersionResume
		}
		msg := append([]byte{}, handshakeMagic[:]...)
		msg = append(msg, ver, role)
		msg = binary.AppendUvarint(msg, uint64(len(channel)))
		msg = append(msg, channel...)
		if role == RoleResume {
			msg = binary.AppendUvarint(msg, lastSeq)
		}
		hs, err := readHandshake(bytes.NewReader(msg))
		valid := (role == RolePublish || role == RoleSubscribe || role == RoleResume) &&
			channel != "" && len(channel) <= MaxChannelName
		if valid != (err == nil) {
			t.Fatalf("role %q channel %q: valid=%v but err=%v", role, channel, valid, err)
		}
		if err != nil {
			return
		}
		if hs.role != role || hs.channel != channel {
			t.Fatalf("parsed %+v from role %q channel %q", hs, role, channel)
		}
		if role == RoleResume && hs.lastSeq != lastSeq {
			t.Fatalf("lastSeq = %d, want %d", hs.lastSeq, lastSeq)
		}
	})
}
