package broker

import (
	"bytes"
	"encoding/binary"
	"testing"

	"ccx/internal/selector"
)

// FuzzHandshake throws arbitrary bytes at the server-side handshake/RESUME
// parser. Invariants: no panic, no unbounded read (the parser consumes at
// most the handshake's own bytes), and every accepted hello is internally
// consistent and survives a canonical re-encode/re-parse roundtrip.
//
// The seed corpus under testdata/fuzz/FuzzHandshake covers well-formed
// hellos of every role and version, truncations at each field boundary,
// bad magic, refused roles, and absurd resume sequence numbers; the seeds
// run as part of the ordinary test suite, and
// `go test -fuzz=FuzzHandshake ./internal/broker` explores further.
func FuzzHandshake(f *testing.F) {
	f.Add([]byte("CCB\x01S\x02md"))
	f.Add([]byte("CCB\x01P\x02md"))
	f.Add([]byte("CCB\x02R\x02md\x2a"))
	f.Add([]byte("CCB\x03S\x02mdB"))       // v3 subscribe, broker placement
	f.Add([]byte("CCB\x03P\x02mdR"))       // v3 publish, receiver placement
	f.Add([]byte("CCB\x03R\x02md\x2aA"))   // v3 resume, auto placement
	f.Add([]byte("CCB\x03S\x02md\x00"))    // v3 with unknown placement byte
	f.Add([]byte("CCB\x03S\x02mdZ"))       // v3 with unknown placement byte
	f.Add([]byte("CCB\x03S\x02md"))        // v3 truncated before placement
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		hs, err := readHandshake(r)
		if err != nil {
			return
		}
		// The parser must never consume bytes past the handshake: the frame
		// stream begins immediately after it. The longest legal hello is
		// magic+version+role (5) + channel length uvarint (2 for <=255) +
		// channel (255) + lastSeq uvarint (10) + placement (1).
		if consumed := len(data) - r.Len(); consumed > 5+2+255+10+1 {
			t.Fatalf("parser consumed %d bytes", consumed)
		}
		switch hs.role {
		case RolePublish, RoleSubscribe, RoleResume:
		default:
			t.Fatalf("accepted unknown role %q", hs.role)
		}
		if hs.channel == "" || len(hs.channel) > MaxChannelName {
			t.Fatalf("accepted channel name of length %d", len(hs.channel))
		}
		if hs.role != RoleResume && hs.lastSeq != 0 {
			t.Fatalf("non-resume hello carries lastSeq %d", hs.lastSeq)
		}
		if hs.hasPlacement && !hs.placement.Valid() {
			t.Fatalf("accepted invalid placement %d", hs.placement)
		}
		if !hs.hasPlacement && (hs.placement != selector.PlacementPublisher || hs.placementDegraded) {
			t.Fatalf("pre-placement hello carries placement state: %+v", hs)
		}
		// An unknown placement byte must degrade to publisher, never error.
		if hs.placementDegraded && hs.placement != selector.PlacementPublisher {
			t.Fatalf("degraded placement is %s, want publisher", hs.placement)
		}
		// Canonical re-encode must parse back to the same hello. A degraded
		// placement re-encodes canonically (the 'P' wire byte), so the parse
		// back is non-degraded by construction: clear the flag first.
		ver := byte(ProtocolVersion)
		if hs.role == RoleResume {
			ver = ProtocolVersionResume
		}
		if hs.hasPlacement {
			ver = ProtocolVersionPlacement
		}
		msg := append([]byte{}, handshakeMagic[:]...)
		msg = append(msg, ver, hs.role)
		msg = binary.AppendUvarint(msg, uint64(len(hs.channel)))
		msg = append(msg, hs.channel...)
		if hs.role == RoleResume {
			msg = binary.AppendUvarint(msg, hs.lastSeq)
		}
		if hs.hasPlacement {
			msg = append(msg, hs.placement.WireByte())
		}
		hs.placementDegraded = false
		hs2, err := readHandshake(bytes.NewReader(msg))
		if err != nil {
			t.Fatalf("canonical re-encode rejected: %v", err)
		}
		if hs2 != hs {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", hs2, hs)
		}
	})
}

// FuzzHandshakeRoundtrip drives the parser through the structured space:
// any role byte, channel, resume sequence, and (when advertised) placement
// byte, encoded exactly as the client side does. Valid inputs must parse to
// the same fields; invalid ones must be rejected, never mangled — with one
// deliberate exception: an unknown placement byte in an otherwise valid v3
// hello degrades to publisher-side compression rather than refusing the
// session (forward compatibility for placements we haven't invented yet).
func FuzzHandshakeRoundtrip(f *testing.F) {
	f.Add(uint8('S'), "md", uint64(0), false, uint8(0))
	f.Add(uint8('P'), "audit", uint64(0), false, uint8(0))
	f.Add(uint8('R'), "md", uint64(1<<40), false, uint8(0))
	f.Add(uint8('X'), "md", uint64(7), false, uint8(0))
	f.Add(uint8('R'), "", uint64(3), false, uint8(0))
	f.Add(uint8('S'), "md", uint64(0), true, uint8('B'))
	f.Add(uint8('P'), "md", uint64(0), true, uint8('R'))
	f.Add(uint8('R'), "md", uint64(9), true, uint8('A'))
	f.Add(uint8('S'), "md", uint64(0), true, uint8('z')) // unknown placement
	f.Add(uint8('S'), "md", uint64(0), true, uint8(0))   // unknown placement
	f.Fuzz(func(t *testing.T, role uint8, channel string, lastSeq uint64, advertise bool, plByte uint8) {
		ver := byte(ProtocolVersion)
		if role == RoleResume {
			ver = ProtocolVersionResume
		}
		if advertise {
			ver = ProtocolVersionPlacement
		}
		msg := append([]byte{}, handshakeMagic[:]...)
		msg = append(msg, ver, role)
		msg = binary.AppendUvarint(msg, uint64(len(channel)))
		msg = append(msg, channel...)
		if role == RoleResume {
			msg = binary.AppendUvarint(msg, lastSeq)
		}
		if advertise {
			msg = append(msg, plByte)
		}
		hs, err := readHandshake(bytes.NewReader(msg))
		valid := (role == RolePublish || role == RoleSubscribe || role == RoleResume) &&
			channel != "" && len(channel) <= MaxChannelName
		if valid != (err == nil) {
			t.Fatalf("role %q channel %q: valid=%v but err=%v", role, channel, valid, err)
		}
		if err != nil {
			return
		}
		if hs.role != role || hs.channel != channel {
			t.Fatalf("parsed %+v from role %q channel %q", hs, role, channel)
		}
		if role == RoleResume && hs.lastSeq != lastSeq {
			t.Fatalf("lastSeq = %d, want %d", hs.lastSeq, lastSeq)
		}
		if hs.hasPlacement != advertise {
			t.Fatalf("hasPlacement = %v, want %v", hs.hasPlacement, advertise)
		}
		if advertise {
			want, known := selector.PlacementFromWire(plByte)
			if hs.placement != want || hs.placementDegraded != !known {
				t.Fatalf("placement byte %q parsed to (%s, degraded=%v), want (%s, degraded=%v)",
					plByte, hs.placement, hs.placementDegraded, want, !known)
			}
		}
	})
}
