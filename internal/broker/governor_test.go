package broker

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ccx/internal/codec"
	"ccx/internal/core"
	"ccx/internal/governor"
	"ccx/internal/testx"
)

// readUntilError drains a subscriber connection through the client-side
// stack ccrecv uses — frame decode plus the close-reason handler — and
// returns the terminal error. onBlock, when non-nil, runs per decoded
// block (a sleep there makes a deliberately slow consumer).
func readUntilError(conn net.Conn, onBlock func()) error {
	r := core.NewReader(conn, nil, func(codec.BlockInfo) {
		if onBlock != nil {
			onBlock()
		}
	})
	r.SetCloseHandler(func(anno []byte) error {
		if reason, msg, ok := codec.ParseCloseAnno(anno); ok {
			return &EvictedError{Reason: reason, Msg: msg}
		}
		return nil
	})
	buf := make([]byte, 1<<16)
	for {
		if _, err := r.Read(buf); err != nil {
			return err
		}
	}
}

// TestEvictionReasonSurfacesToClient pins the close-frame handshake: an
// eviction must reach the client as "evicted: overload", not as a generic
// read error on a severed connection.
func TestEvictionReasonSurfacesToClient(t *testing.T) {
	b := newTestBroker(t, nil)
	conn := attachSubscriber(t, b, "md")
	got := make(chan struct{}, 4)
	errc := make(chan error, 1)
	go func() { errc <- readUntilError(conn, func() { got <- struct{}{} }) }()

	// Deliver one block so the write loop is demonstrably live, then let it
	// go idle so the goodbye frame has the write lock to itself.
	if err := b.Publish("md", []byte("one healthy block")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber never received the first block")
	}
	time.Sleep(50 * time.Millisecond)

	var s *subscriber
	for _, x := range b.allSubs() {
		s = x
	}
	if s == nil {
		t.Fatal("no subscriber registered")
	}
	b.evictSub(s, codec.CloseOverload, "overload shed: memory pressure critical")

	var err error
	select {
	case err = <-errc:
	case <-time.After(5 * time.Second):
		t.Fatal("client read never terminated after eviction")
	}
	var ev *EvictedError
	if !errors.As(err, &ev) {
		t.Fatalf("client error = %v (%T), want *EvictedError", err, err)
	}
	if ev.Reason != codec.CloseOverload {
		t.Fatalf("reason = %v, want overload", ev.Reason)
	}
	if !strings.Contains(err.Error(), "evicted: overload") {
		t.Fatalf("error text %q does not surface the eviction reason", err)
	}
	if n := b.Metrics().Counter("broker.evictions").Value(); n != 1 {
		t.Fatalf("evictions = %d, want 1", n)
	}
}

// TestBreakerEvictsSlowConsumer drives the circuit breaker organically: a
// consumer that keeps reading, but so slowly that every delivery's queue
// wait stays over BreakerWait for the whole window, is evicted with the
// explicit "slow consumer" reason.
func TestBreakerEvictsSlowConsumer(t *testing.T) {
	b := newTestBroker(t, func(c *Config) {
		c.QueueLen = 64
		c.BreakerWait = time.Millisecond
		c.BreakerWindow = 25 * time.Millisecond
	})
	conn := attachSubscriber(t, b, "md")
	errc := make(chan error, 1)
	go func() {
		errc <- readUntilError(conn, func() { time.Sleep(5 * time.Millisecond) })
	}()
	// Flood the queue up front: every subsequent dequeue observes a wait
	// far over the threshold, so the over-threshold run begins at the
	// first delivery and trips once the window elapses.
	payload := bytes.Repeat([]byte("slow"), 128)
	for i := 0; i < 64; i++ {
		if err := b.Publish("md", payload); err != nil {
			t.Fatal(err)
		}
	}

	var err error
	select {
	case err = <-errc:
	case <-time.After(10 * time.Second):
		t.Fatal("breaker never tripped")
	}
	var ev *EvictedError
	if !errors.As(err, &ev) {
		t.Fatalf("client error = %v (%T), want *EvictedError", err, err)
	}
	if ev.Reason != codec.CloseSlowConsumer {
		t.Fatalf("reason = %v, want slow consumer", ev.Reason)
	}
	if !strings.Contains(err.Error(), "evicted: slow consumer") {
		t.Fatalf("error text %q does not surface the breaker reason", err)
	}
	if n := b.Metrics().Counter("broker.breaker_trips").Value(); n != 1 {
		t.Fatalf("breaker_trips = %d, want 1", n)
	}
}

// TestAdmissionRefusesAndRecovers drives the memory dimension critical
// through the replay ring, asserts new subscribes get the RETRY-AFTER
// refusal, and then — after the governor's own retention shrink relieves
// the pressure — recovers admission within one sample (Hold = 1).
func TestAdmissionRefusesAndRecovers(t *testing.T) {
	const budget = 4 << 20
	b := newTestBroker(t, func(c *Config) {
		c.ReplayBlocks = 256
		c.ReplayBytes = 8 << 20
		c.RetryAfter = 750 * time.Millisecond
		c.Governor = &governor.Config{MemBudget: -1, BytesBudget: budget, Interval: time.Hour}
	})
	// 64 × 64 KiB fills the ring to the full budget — past the 85% critical
	// fraction.
	for i := 0; i < 64; i++ {
		if err := b.Publish("md", make([]byte, 64<<10)); err != nil {
			t.Fatal(err)
		}
	}
	snap := b.Governor().SampleNow()
	if snap.Mem != governor.LevelCritical || b.Governor().Level() != governor.LevelCritical {
		t.Fatalf("mem level = %v (queued %d / budget %d), want critical", snap.Mem, snap.Queued, budget)
	}

	client, server := net.Pipe()
	b.HandleConn(server)
	err := HandshakeSubscribe(client, "md")
	client.Close()
	var ov *OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("subscribe under critical memory = %v (%T), want *OverloadError", err, err)
	}
	if ov.RetryAfter != 750*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want the configured 750ms", ov.RetryAfter)
	}
	if !errors.Is(err, ErrRefused) {
		t.Fatal("an overload refusal must still be an ErrRefused")
	}
	if n := b.Metrics().Counter("broker.admission_refused").Value(); n != 1 {
		t.Fatalf("admission_refused = %d, want 1", n)
	}
	if n := b.Metrics().Counter("governor.shed_subscribes").Value(); n != 1 {
		t.Fatalf("governor.shed_subscribes = %d, want 1", n)
	}

	// The critical sample shrank retention to 25% of the configured budget:
	// the ring must hold exactly 2 MiB now, with its byte ledger matching
	// the surviving entries to the byte.
	st := b.state("md")
	st.mu.Lock()
	var sum int64
	for _, e := range st.ring.entries[st.ring.head:] {
		sum += int64(len(e.data))
	}
	ringBytes, ringLen := st.ring.bytes, st.ring.len()
	st.mu.Unlock()
	if ringBytes != 2<<20 || ringLen != 32 {
		t.Fatalf("ring after shrink = %d bytes / %d blocks, want 2MiB / 32", ringBytes, ringLen)
	}
	if sum != ringBytes {
		t.Fatalf("ring ledger %d != entry sum %d after pressure eviction", ringBytes, sum)
	}

	// One calm sample later (queued 2 MiB, well under the down threshold)
	// the level is back to ok and admission is open again.
	if snap = b.Governor().SampleNow(); snap.Level != governor.LevelOK {
		t.Fatalf("level after shrink = %v (queued %d), want ok within one sample", snap.Level, snap.Queued)
	}
	conn := attachSubscriber(t, b, "md")
	conn.Close()
	if n := b.Metrics().Counter("governor.transitions").Value(); n < 2 {
		t.Fatalf("transitions = %d, want the up and down moves recorded", n)
	}
}

// TestChurnStormExactAccounting hammers subscribe/evict churn against a
// live publish storm with a fast-sampling governor shedding alongside the
// Evict policy, then proves nothing leaked: the replay ring's byte ledger
// matches its entries exactly, and after shutdown (which purges the frame
// cache) not one shared frame reference is still alive. Run under -race.
func TestChurnStormExactAccounting(t *testing.T) {
	b := newTestBroker(t, func(c *Config) {
		c.QueueLen = 8
		c.Policy = Evict
		c.ReplayBlocks = 32
		c.ReplayBytes = 256 << 10
		c.CacheBytes = 128 << 10
		c.Governor = &governor.Config{MemBudget: -1, BytesBudget: 384 << 10, Interval: 2 * time.Millisecond}
	})
	stop := make(chan struct{})
	var pubWG sync.WaitGroup
	pubWG.Add(1)
	go func() {
		defer pubWG.Done()
		payload := bytes.Repeat([]byte("churn-storm "), 512)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := b.Publish("md", payload); err != nil {
				return
			}
		}
	}()

	var readers sync.WaitGroup
	for round := 0; round < 6; round++ {
		conns := make([]net.Conn, 0, 12)
		for i := 0; i < 12; i++ {
			client, server := net.Pipe()
			b.HandleConn(server)
			if err := HandshakeSubscribe(client, "md"); err != nil {
				// The governor may be shedding this instant; overload
				// refusals are churn too.
				var ov *OverloadError
				if errors.As(err, &ov) {
					client.Close()
					continue
				}
				t.Fatalf("round %d subscribe: %v", round, err)
			}
			conns = append(conns, client)
			if i%2 == 0 {
				// Half consume until cut off; the stalled half back up their
				// queues and get evicted (policy or governor shed).
				readers.Add(1)
				go func(c net.Conn) {
					defer readers.Done()
					_, _ = io.Copy(io.Discard, c)
				}(client)
			}
		}
		time.Sleep(20 * time.Millisecond)
		for _, c := range conns {
			c.Close()
		}
	}
	close(stop)
	pubWG.Wait()
	readers.Wait()
	testx.WaitUntil(t, "all churned subscribers torn down", func() bool { return b.Subscribers() == 0 })

	st := b.state("md")
	st.mu.Lock()
	var sum int64
	for _, e := range st.ring.entries[st.ring.head:] {
		sum += int64(len(e.data))
	}
	ringBytes, ringLen := st.ring.bytes, st.ring.len()
	maxBlocks, maxBytes := st.ring.maxBlocks, st.ring.maxBytes
	st.mu.Unlock()
	if sum != ringBytes {
		t.Fatalf("ring ledger %d != entry sum %d after churn", ringBytes, sum)
	}
	if ringLen > maxBlocks || ringBytes > maxBytes {
		t.Fatalf("ring over bounds after churn: %d blocks / %d bytes (max %d / %d)",
			ringLen, ringBytes, maxBlocks, maxBytes)
	}

	// Shutdown flushes the plane and purges the frame cache; any reference
	// the churn failed to release would survive as a live frame.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	testx.NoLeakedFrames(t, b.plane)
	if n := b.plane.LiveBytes(); n != 0 {
		t.Fatalf("LiveBytes = %d after churn + shutdown, want 0", n)
	}
}
