package broker

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"ccx/internal/codec"
	"ccx/internal/core"
	"ccx/internal/datagen"
	"ccx/internal/metrics"
	"ccx/internal/netsim"
	"ccx/internal/obs"
	"ccx/internal/selector"
)

// TestFanOutAdaptsPerLink is the subsystem's acceptance test: one published
// stream fans out to subscribers behind netsim-shaped links of very
// different speeds, and each subscriber's private adaptation loop must
// drift to a different operating point — raw blocks on the fast LAN-class
// link, compressed blocks on the slow WAN-class link — while a deliberately
// stalled subscriber is evicted without disturbing anyone else.
func TestFanOutAdaptsPerLink(t *testing.T) {
	const (
		eventSize = 16 << 10
		numEvents = 48
	)
	met := metrics.NewRegistry()
	trace := obs.NewDecisionLog(1024)
	cfg := Config{
		QueueLen:     256,
		Policy:       Evict,
		WriteTimeout: 400 * time.Millisecond,
		Heartbeat:    -1,
		Metrics:      met,
		Trace:        trace,
	}
	// SpeedScale emulates a CPU slow enough relative to the simulated links
	// that the selector faces the paper's actual trade-off (native reducing
	// speeds would dwarf every netsim profile and compress unconditionally).
	// The constant is build-tagged: the race detector slows the LZ probe
	// ~20x, so the race build scales less to land in the same regime.
	cfg.Engine.SpeedScale = integrationSpeedScale
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Three live links spanning ~600x in rate, in the shape of the paper's
	// Figure 5 classes, plus one stalled consumer.
	links := []netsim.Profile{
		{Name: "lan", RateBps: 60e6, JitterFrac: 0.005, Latency: 100 * time.Microsecond},
		{Name: "campus", RateBps: 4e6, JitterFrac: 0.02, Latency: 300 * time.Microsecond},
		{Name: "wan", RateBps: 0.1e6, JitterFrac: 0.01, Latency: 2 * time.Millisecond},
	}
	type result struct {
		data    []byte
		methods map[codec.Method]int
	}
	results := make([]result, len(links))
	var wg sync.WaitGroup
	for i, prof := range links {
		client, server := netsim.ShapedPipe(prof, int64(1000+i))
		defer client.Close()
		b.HandleConn(server)
		if err := HandshakeSubscribe(client, "md"); err != nil {
			t.Fatalf("%s handshake: %v", prof.Name, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Drain the wire first and decode after EOF: the subscriber's
			// goodput must reflect the shaped link, not this goroutine's
			// decompression speed (which the race detector slows ~20x).
			raw, _ := io.ReadAll(client)
			fr := codec.NewFrameReader(bytes.NewReader(raw), nil)
			res := result{methods: make(map[codec.Method]int)}
			var buf bytes.Buffer
			for {
				data, info, err := fr.ReadBlock()
				if err != nil {
					break
				}
				if len(data) == 0 {
					continue
				}
				res.methods[info.Method]++
				buf.Write(data)
			}
			res.data = buf.Bytes()
			results[i] = res
		}()
	}
	// Subscriber 4 stalls: it completes the handshake and then never reads,
	// so the broker's first write to it blocks until the write deadline.
	stalledClient, stalledServer := net.Pipe()
	defer stalledClient.Close()
	b.HandleConn(stalledServer)
	if err := HandshakeSubscribe(stalledClient, "md"); err != nil {
		t.Fatalf("stalled handshake: %v", err)
	}

	// One publisher, over the network path, streaming OIS transactions cut
	// into event-sized blocks by its own adaptive writer.
	stream := datagen.OISTransactions(numEvents*eventSize, 0.9, 42)
	pubClient, pubServer := net.Pipe()
	b.HandleConn(pubServer)
	if err := HandshakePublish(pubClient, "md"); err != nil {
		t.Fatalf("publish handshake: %v", err)
	}
	selCfg := selector.DefaultConfig()
	selCfg.BlockSize = eventSize
	pubEngine, err := core.NewEngine(core.Config{Selector: selCfg})
	if err != nil {
		t.Fatal(err)
	}
	w := core.NewWriter(pubClient, pubEngine, nil)
	if _, err := w.Write(stream); err != nil {
		t.Fatalf("publish stream: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	pubClient.Close()

	// Graceful shutdown: the publisher's frames are all submitted (its
	// connection closed), queues drain to every live subscriber, then the
	// connections close and the readers see EOF.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()

	// (a) Every live subscriber received byte-identical data.
	for i, res := range results {
		if !bytes.Equal(res.data, stream) {
			t.Errorf("%s subscriber: %d bytes received, want %d identical bytes",
				links[i].Name, len(res.data), len(stream))
		}
	}

	// (b) The method histograms diverge: the fast link stays raw while the
	// slow link compresses. Subscriber IDs follow attach order (1=lan,
	// 2=campus, 3=wan, 4=stalled).
	snap := met.Snapshot()
	methodCount := func(id int, m codec.Method) float64 {
		return snap[fmt.Sprintf("sub.%d.method.%s", id, m)]
	}
	fastNone := methodCount(1, codec.None)
	slowNone := methodCount(3, codec.None)
	slowCompressed := float64(numEvents) - slowNone
	t.Logf("histograms: lan=%v campus=%v wan=%v", results[0].methods, results[1].methods, results[2].methods)
	if fastNone < integrationFastNoneFrac*numEvents {
		t.Errorf("fast link sent only %.0f/%d raw blocks; adaptation should leave a fast path uncompressed (histogram: %v)",
			fastNone, numEvents, results[0].methods)
	}
	if slowCompressed < 0.5*numEvents {
		t.Errorf("slow link compressed only %.0f/%d blocks; adaptation should compress on a congested path (histogram: %v)",
			slowCompressed, numEvents, results[2].methods)
	}
	if fastNone <= slowNone {
		t.Errorf("histograms did not diverge: fast none=%.0f, slow none=%.0f", fastNone, slowNone)
	}
	// Compression on the slow path must have actually shrunk the traffic.
	if in, out := snap["sub.3.bytes_in"], snap["sub.3.bytes_out"]; out >= in {
		t.Errorf("slow subscriber wire bytes %.0f >= original %.0f; expected net compression", out, in)
	}

	// (c) The stalled subscriber was evicted without stalling the others
	// (they all completed above), and the metrics snapshot reflects it.
	if ev := snap["broker.evictions"]; ev != 1 {
		t.Errorf("evictions = %.0f, want exactly 1 (the stalled subscriber)", ev)
	}
	if drops := snap["broker.drops"]; drops != 0 {
		t.Errorf("drops = %.0f, want 0 under evict policy with ample queues", drops)
	}
	if got := snap["broker.events_in"]; got != numEvents {
		t.Errorf("events_in = %.0f, want %d", got, numEvents)
	}
	if left := snap["broker.subscribers"]; left != 0 {
		t.Errorf("subscribers gauge = %.0f after shutdown, want 0", left)
	}
	if _, ok := snap["sub.3.queue_depth"]; !ok {
		t.Error("metrics snapshot missing per-subscriber queue depth")
	}

	// (d) Queue telemetry: the slow WAN subscriber must have backed its
	// queue up at some point (high-water mark), and every delivered event
	// must have contributed a time-in-queue observation.
	if hwm := snap["sub.3.queue_hwm"]; hwm < 1 {
		t.Errorf("wan subscriber queue high-water mark = %.0f, want >= 1 on a 600x-slower link", hwm)
	}
	if fast, slow := snap["sub.1.queue_hwm"], snap["sub.3.queue_hwm"]; fast > slow {
		t.Errorf("queue high-water marks inverted: lan %.0f > wan %.0f", fast, slow)
	}
	// 3 live subscribers x numEvents events, minus anything flushed at
	// shutdown; at minimum every wan delivery waited in queue.
	if waits := snap["broker.queue_wait_seconds.count"]; waits < numEvents {
		t.Errorf("time-in-queue observations = %.0f, want >= %d", waits, numEvents)
	}

	// (e) The decision trace carries one record per delivered block, and
	// its per-stream method mix agrees with the wire-level histograms each
	// subscriber decoded in (b).
	recs := trace.Recent(0)
	traceMethods := make(map[string]map[string]int)
	for _, rec := range recs {
		if rec.Stream == "" || rec.Method == "" || rec.Reason == "" {
			t.Fatalf("incomplete trace record: %+v", rec)
		}
		mm := traceMethods[rec.Stream]
		if mm == nil {
			mm = make(map[string]int)
			traceMethods[rec.Stream] = mm
		}
		mm[rec.Method]++
	}
	for i := range links {
		stream := fmt.Sprintf("sub.%d", i+1)
		for m, n := range results[i].methods {
			if got := traceMethods[stream][m.String()]; got != n {
				t.Errorf("%s trace records %d %s blocks, wire shows %d",
					stream, got, m, n)
			}
		}
	}
}
