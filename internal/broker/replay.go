package broker

// replayRing assigns a channel's monotonically increasing block sequence
// numbers and retains the most recent blocks for resume replay, bounded by
// block count and total payload bytes. The zero value stamps sequence
// numbers but retains nothing (replay disabled); setBounds enables
// retention. All methods require the owning channelState's lock.
type replayRing struct {
	maxBlocks int
	maxBytes  int64
	// baseBlocks/baseBytes remember the configured bounds so pressure
	// scaling (setPressure) is reversible; zero means setBounds was never
	// called with retention enabled.
	baseBlocks int
	baseBytes  int64

	entries []ringEntry // FIFO window; entries[head:] are live
	head    int         // index of the oldest live entry
	bytes   int64       // sum of live entry payload sizes
	last    uint64      // most recently assigned sequence number (0 = none yet)
}

// ringEntry is one retained block: its channel sequence number, the
// original event bytes (shared read-only with subscriber queues), and the
// block's frame annotation, so a replayed block keeps its trace context.
type ringEntry struct {
	seq  uint64
	data []byte
	anno []byte
}

// setBounds configures retention. Non-positive bounds disable replay.
func (r *replayRing) setBounds(blocks int, bytes int64) {
	r.maxBlocks, r.maxBytes = blocks, bytes
	r.baseBlocks, r.baseBytes = blocks, bytes
}

// Pressure floors: however hard the governor squeezes, a ring that had
// replay enabled keeps a minimal resume window so short-lived pressure
// doesn't turn every reconnect into a gap.
const (
	ringFloorBlocks = 16
	ringFloorBytes  = 1 << 20
)

// setPressure rescales the retention bounds to the configured values times
// factor (clamped to the floors above; factor 1 restores them exactly) and
// evicts immediately to fit. Returns what the shrink discarded. No-op on a
// ring without replay enabled.
func (r *replayRing) setPressure(factor float64) (evictedBlocks int, evictedBytes int64) {
	if r.baseBlocks <= 0 || r.baseBytes <= 0 {
		return 0, 0
	}
	if factor <= 0 || factor > 1 {
		factor = 1
	}
	blocks := int(float64(r.baseBlocks) * factor)
	bytes := int64(float64(r.baseBytes) * factor)
	if blocks < ringFloorBlocks {
		blocks = ringFloorBlocks
	}
	if blocks > r.baseBlocks {
		blocks = r.baseBlocks
	}
	if bytes < ringFloorBytes {
		bytes = ringFloorBytes
	}
	if bytes > r.baseBytes {
		bytes = r.baseBytes
	}
	r.maxBlocks, r.maxBytes = blocks, bytes
	return r.evictTo(blocks, bytes)
}

// enabled reports whether the ring retains blocks at all.
func (r *replayRing) enabled() bool { return r.maxBlocks > 0 && r.maxBytes > 0 }

// stamp assigns the next sequence number to data, retains it when replay is
// enabled, and reports what eviction had to discard to stay within bounds.
// Sequence numbers start at 1.
func (r *replayRing) stamp(data, anno []byte) (seq uint64, evictedBlocks int, evictedBytes int64) {
	r.last++
	seq = r.last
	if !r.enabled() || int64(len(data)) > r.maxBytes {
		// A block that alone exceeds the byte budget would evict the whole
		// window and still not fit; it is sent live but never retained, which
		// shows up as an immediate eviction.
		if r.enabled() {
			evictedBlocks, evictedBytes = r.evictTo(r.maxBlocks, r.maxBytes)
			evictedBlocks++ // the unretained block itself
		}
		return seq, evictedBlocks, evictedBytes
	}
	r.entries = append(r.entries, ringEntry{seq: seq, data: data, anno: anno})
	r.bytes += int64(len(data))
	evictedBlocks, evictedBytes = r.evictTo(r.maxBlocks, r.maxBytes)
	return seq, evictedBlocks, evictedBytes
}

// evictTo discards oldest entries until the window fits the given bounds.
func (r *replayRing) evictTo(maxBlocks int, maxBytes int64) (blocks int, bytes int64) {
	for r.len() > 0 && (r.len() > maxBlocks || r.bytes > maxBytes) {
		e := &r.entries[r.head]
		r.bytes -= int64(len(e.data))
		blocks++
		bytes += int64(len(e.data))
		e.data = nil // release the payload even while the slot lingers
		r.head++
	}
	// Compact once the dead prefix dominates, so the backing array's size
	// stays proportional to the live window.
	if r.head > len(r.entries)/2 && r.head > 32 {
		n := copy(r.entries, r.entries[r.head:])
		r.entries = r.entries[:n]
		r.head = 0
	}
	return blocks, bytes
}

// len reports the number of live entries.
func (r *replayRing) len() int { return len(r.entries) - r.head }

// lastSeq returns the most recently assigned sequence number (0 before the
// first block).
func (r *replayRing) lastSeq() uint64 { return r.last }

// replayFrom resolves a resume request: the client has delivered everything
// through lastSeq and wants lastSeq+1 onward. It returns the retained
// entries to replay (oldest first, possibly empty) and the sequence number
// of the first block the session will deliver — replayed or live. A
// firstSeq beyond lastSeq+1 means the window was evicted past the resume
// point: the difference is an explicit gap the caller must surface.
func (r *replayRing) replayFrom(lastSeq uint64) (replay []ringEntry, firstSeq uint64) {
	// A client claiming more than the channel ever published (absurd or
	// corrupted resume state) is treated as fully caught up: nothing to
	// replay, the next live block is firstSeq.
	if lastSeq >= r.last {
		return nil, r.last + 1
	}
	want := lastSeq + 1
	if r.len() == 0 || r.entries[len(r.entries)-1].seq < want {
		// Nothing retained at or past the resume point. Everything in
		// (lastSeq, nextSeq] — if anything — is gone.
		return nil, r.last + 1
	}
	start := r.head
	for start < len(r.entries) && r.entries[start].seq < want {
		start++
	}
	live := r.entries[start:]
	replay = make([]ringEntry, len(live))
	copy(replay, live)
	return replay, live[0].seq
}
