package broker

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"ccx/internal/codec"
	"ccx/internal/selector"
	"ccx/internal/testx"
)

// propBlock builds the deterministic payload for (channel, seq): readers
// reconstruct it independently, so delivered-byte identity needs no shared
// table between publisher and subscribers.
func propBlock(ch string, seq uint64) []byte {
	head := fmt.Sprintf("%s|%06d|", ch, seq)
	return append([]byte(head), bytes.Repeat([]byte(head), 256/len(head))...)
}

// propReader drains one subscriber connection, recording the sequence
// stream and flagging the first invariant violation (unsequenced event, or
// payload bytes that don't match the publish for that sequence).
type propReader struct {
	ch string
	// resumedFrom is the handshake's lastSeq for resumed sessions, -1 for a
	// fresh subscribe.
	resumedFrom int64
	conn        net.Conn
	done        chan struct{}

	mu   sync.Mutex
	seqs []uint64
	bad  string
}

func (r *propReader) run() {
	defer close(r.done)
	fr := codec.NewFrameReader(r.conn, nil)
	for {
		data, info, err := fr.ReadBlock()
		if err != nil {
			return
		}
		if len(data) == 0 {
			continue
		}
		r.mu.Lock()
		switch {
		case !info.HasSeq:
			r.bad = "unsequenced event delivered"
		case !bytes.Equal(data, propBlock(r.ch, info.Seq)):
			r.bad = fmt.Sprintf("seq %d delivered with wrong bytes", info.Seq)
		default:
			r.seqs = append(r.seqs, info.Seq)
		}
		r.mu.Unlock()
	}
}

func (r *propReader) lastSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.seqs) == 0 {
		return 0
	}
	return r.seqs[len(r.seqs)-1]
}

// TestShardRoutingProperties is the sharded core's property test: a
// seeded random schedule of publishes, fresh and resumed subscriber joins
// (with random advertised placements), and subscriber churn runs against
// an explicitly multi-shard broker (GOMAXPROCS on the CI runner may be 1,
// which would collapse the default to a single loop). The invariants, per
// ISSUE and DESIGN §15:
//
//   - per-member sequence monotonicity: every subscriber's delivered seq
//     stream is strictly increasing and gap-free from its first delivery;
//   - exactly-one-of-replay/live: a resumed session's first delivery is
//     exactly lastSeq+1 — the replay snapshot and the live stream splice
//     without duplicating or dropping the block at the boundary;
//   - ledger exactness: at every quiesce point the per-shard byte ledgers
//     sum to the independently computed global ledger, with stalled
//     subscribers pinning nonzero queued bytes so the check isn't 0 == 0.
//
// Replay with CCX_SEED=<n> to reproduce a failing schedule.
func TestShardRoutingProperties(t *testing.T) {
	rng := testx.Rand(t)
	guard := testx.GoroutineGuard(t, 10)

	const (
		nChannels = 6
		nOps      = 400
	)
	b := newTestBroker(t, func(c *Config) {
		c.QueueLen = 512
		c.ReplayBlocks = 4096
		c.ReplayBytes = 32 << 20
		c.Shards = 4
	})
	channels := make([]string, nChannels)
	for i := range channels {
		channels[i] = fmt.Sprintf("prop%d", i)
	}
	published := make([]uint64, nChannels) // per-channel last stamped seq
	placements := []selector.Placement{
		selector.PlacementPublisher, selector.PlacementBroker, selector.PlacementReceiver,
	}

	var (
		readers []*propReader // every reader ever attached (for final asserts)
		active  []*propReader // still-connected readers
		stalled []net.Conn    // attached but never reading: they pin queue bytes
	)
	attach := func(c int) {
		client, server := net.Pipe()
		b.HandleConn(server)
		pl := placements[rng.Intn(len(placements))]
		r := &propReader{ch: channels[c], resumedFrom: -1, conn: client, done: make(chan struct{})}
		if rng.Intn(2) == 0 && published[c] > 0 {
			last := uint64(rng.Intn(int(published[c]) + 1))
			first, err := HandshakeResumePlacement(client, channels[c], last, pl)
			if err != nil {
				t.Fatalf("resume(%s, %d): %v", channels[c], last, err)
			}
			if first != last+1 {
				t.Fatalf("resume(%s, %d): firstSeq = %d, want %d (window covers the whole stream)",
					channels[c], last, first, last+1)
			}
			r.resumedFrom = int64(last)
		} else if err := HandshakeSubscribePlacement(client, channels[c], pl); err != nil {
			t.Fatalf("subscribe(%s): %v", channels[c], err)
		}
		readers = append(readers, r)
		active = append(active, r)
		go r.run()
	}
	// quiesce publishes one flush block per channel, waits for every live
	// reader to catch up to its channel's final sequence, and then asserts
	// the shard-summed ledger equals the global one. The two ledgers are
	// sampled independently (per-shard ring walks + channel frame bytes vs
	// one global ring walk + the plane total), so agreement here is the
	// accounting invariant, not a tautology.
	quiesce := func(label string) {
		for c := range channels {
			published[c]++
			if err := b.Publish(channels[c], propBlock(channels[c], published[c])); err != nil {
				t.Fatalf("%s flush publish: %v", label, err)
			}
		}
		for _, r := range active {
			r := r
			want := published[chanIndex(channels, r.ch)]
			testx.WaitUntil(t, fmt.Sprintf("%s: reader on %s caught up to seq %d", label, r.ch, want),
				func() bool { return r.lastSeq() == want })
		}
		testx.WaitUntil(t, label+": shard ledgers sum to the global ledger", func() bool {
			var sum int64
			for _, v := range b.queuedBytesByShard() {
				sum += v
			}
			return sum == b.queuedBytes()
		})
		if b.queuedBytes() == 0 {
			t.Fatalf("%s: global ledger is 0 — the invariant check is vacuous", label)
		}
	}

	for i := 0; i < nOps; i++ {
		switch r := rng.Float64(); {
		case r < 0.55: // publish
			c := rng.Intn(nChannels)
			published[c]++
			if err := b.Publish(channels[c], propBlock(channels[c], published[c])); err != nil {
				t.Fatalf("publish op %d: %v", i, err)
			}
		case r < 0.78: // attach a reading subscriber (fresh or resumed)
			attach(rng.Intn(nChannels))
		case r < 0.92: // churn: detach a random live reader
			if len(active) == 0 {
				continue
			}
			k := rng.Intn(len(active))
			active[k].conn.Close()
			active = append(active[:k], active[k+1:]...)
		default: // attach a stalled subscriber (bounded: they hold frames)
			if len(stalled) >= 4 {
				continue
			}
			client, server := net.Pipe()
			b.HandleConn(server)
			if err := HandshakeSubscribe(client, channels[rng.Intn(nChannels)]); err != nil {
				t.Fatalf("stalled subscribe op %d: %v", i, err)
			}
			stalled = append(stalled, client)
		}
		if i == nOps/3 || i == 2*nOps/3 {
			quiesce(fmt.Sprintf("mid-schedule op %d", i))
		}
	}
	quiesce("end of schedule")

	// Tear everything down before the final per-reader asserts so every
	// stream is complete.
	for _, c := range stalled {
		c.Close()
	}
	for _, r := range readers {
		r.conn.Close()
		<-r.done
	}

	caughtUp := make(map[*propReader]bool, len(active))
	for _, r := range active {
		caughtUp[r] = true
	}
	for _, r := range readers {
		r.mu.Lock()
		seqs, bad := r.seqs, r.bad
		r.mu.Unlock()
		if bad != "" {
			t.Fatalf("reader on %s: %s", r.ch, bad)
		}
		for k := 1; k < len(seqs); k++ {
			if seqs[k] != seqs[k-1]+1 {
				t.Fatalf("reader on %s: seq %d follows %d — stream not strictly contiguous",
					r.ch, seqs[k], seqs[k-1])
			}
		}
		if r.resumedFrom >= 0 && len(seqs) > 0 && seqs[0] != uint64(r.resumedFrom)+1 {
			t.Fatalf("reader resumed from %d on %s started at seq %d, want %d — replay/live boundary duplicated or dropped",
				r.resumedFrom, r.ch, seqs[0], r.resumedFrom+1)
		}
		if caughtUp[r] {
			want := published[chanIndex(channels, r.ch)]
			if len(seqs) == 0 || seqs[len(seqs)-1] != want {
				t.Fatalf("live reader on %s ended at seq %v, want %d", r.ch, seqs, want)
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	testx.NoLeakedFrames(t, b.plane)
	guard()
}

func chanIndex(channels []string, name string) int {
	for i, c := range channels {
		if c == name {
			return i
		}
	}
	return -1
}
