package broker

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"ccx/internal/codec"
)

// newTestBroker builds a broker with test-friendly defaults; mutate cfg via
// the callback.
func newTestBroker(t *testing.T, mod func(*Config)) *Broker {
	t.Helper()
	cfg := Config{
		Heartbeat: -1, // keep streams deterministic unless a test wants it
	}
	if mod != nil {
		mod(&cfg)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = b.Shutdown(ctx)
	})
	return b
}

// attachSubscriber connects a pipe subscriber and completes the handshake.
func attachSubscriber(t *testing.T, b *Broker, channel string) net.Conn {
	t.Helper()
	client, server := net.Pipe()
	b.HandleConn(server)
	if err := HandshakeSubscribe(client, channel); err != nil {
		t.Fatalf("subscribe handshake: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

// readAllEvents drains event frames from conn until EOF/close, skipping
// heartbeats.
func readAllEvents(conn net.Conn) [][]byte {
	fr := codec.NewFrameReader(conn, nil)
	var events [][]byte
	for {
		data, _, err := fr.ReadBlock()
		if err != nil {
			return events
		}
		if len(data) == 0 {
			continue
		}
		events = append(events, data)
	}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestHandshakeRefusesUnknownChannel(t *testing.T) {
	b := newTestBroker(t, func(c *Config) { c.Channels = []string{"md"} })
	client, server := net.Pipe()
	defer client.Close()
	b.HandleConn(server)
	err := HandshakeSubscribe(client, "secrets")
	if err == nil {
		t.Fatal("handshake on unserved channel must be refused")
	}
}

func TestHandshakeRejectsGarbage(t *testing.T) {
	b := newTestBroker(t, nil)
	client, server := net.Pipe()
	defer client.Close()
	b.HandleConn(server)
	// The write may itself fail once the broker hangs up mid-message — both
	// outcomes are fine; what matters is that the broker disconnects.
	_, _ = client.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	// The broker must refuse and hang up, not wedge.
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := client.Read(buf); err != nil {
			return // closed: good
		}
	}
}

func TestFanOutDeliversToAllSubscribers(t *testing.T) {
	b := newTestBroker(t, nil)
	subs := []net.Conn{
		attachSubscriber(t, b, "md"),
		attachSubscriber(t, b, "md"),
	}
	results := make([][][]byte, len(subs))
	var wg sync.WaitGroup
	for i, conn := range subs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = readAllEvents(conn)
		}()
	}
	var want [][]byte
	for i := 0; i < 5; i++ {
		ev := bytes.Repeat([]byte{byte('a' + i)}, 100+i)
		want = append(want, ev)
		if err := b.Publish("md", ev); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	for i, got := range results {
		if len(got) != len(want) {
			t.Fatalf("subscriber %d: %d events, want %d", i, len(got), len(want))
		}
		for j := range want {
			if !bytes.Equal(got[j], want[j]) {
				t.Fatalf("subscriber %d event %d differs", i, j)
			}
		}
	}
}

func TestPublishViaNetworkPublisher(t *testing.T) {
	b := newTestBroker(t, nil)
	subConn := attachSubscriber(t, b, "md")
	received := make(chan [][]byte, 1)
	go func() { received <- readAllEvents(subConn) }()

	pubClient, pubServer := net.Pipe()
	b.HandleConn(pubServer)
	if err := HandshakePublish(pubClient, "md"); err != nil {
		t.Fatalf("publish handshake: %v", err)
	}
	want := [][]byte{[]byte("first event"), bytes.Repeat([]byte("xyz"), 500)}
	for _, ev := range want {
		frame, _, err := codec.AppendFrame(nil, nil, codec.LempelZiv, ev)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pubClient.Write(frame); err != nil {
			t.Fatal(err)
		}
	}
	// A keepalive frame must not become an event.
	hb, _, err := codec.AppendFrame(nil, nil, codec.None, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pubClient.Write(hb); err != nil {
		t.Fatal(err)
	}
	pubClient.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	got := <-received
	if len(got) != len(want) {
		t.Fatalf("%d events, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("event %d differs", i)
		}
	}
	if n := b.Metrics().Counter("broker.events_in").Value(); n != int64(len(want)) {
		t.Fatalf("events_in = %d, want %d", n, len(want))
	}
}

func TestDropOldestPolicyCountsDrops(t *testing.T) {
	b := newTestBroker(t, func(c *Config) {
		c.QueueLen = 4
		c.Policy = DropOldest
	})
	conn := attachSubscriber(t, b, "md")
	// The subscriber stalls: nothing reads conn, so the broker's write loop
	// blocks on the first event and the queue backs up.
	const published = 20
	for i := 0; i < published; i++ {
		if err := b.Publish("md", []byte(fmt.Sprintf("event-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "drops to register", func() bool {
		return b.Metrics().Counter("broker.drops").Value() > 0
	})
	// Resume reading: the straggler stays connected and gets the newest
	// events rather than being cut off.
	received := make(chan [][]byte, 1)
	go func() { received <- readAllEvents(conn) }()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	got := <-received
	drops := b.Metrics().Counter("broker.drops").Value()
	if drops == 0 {
		t.Fatal("expected drops under a stalled subscriber")
	}
	if int64(len(got))+drops != published {
		t.Fatalf("received %d + dropped %d != published %d", len(got), drops, published)
	}
	if b.Metrics().Counter("broker.evictions").Value() != 0 {
		t.Fatal("drop-oldest must not evict")
	}
	// The last published event must have survived (gaps eat the oldest).
	if last := got[len(got)-1]; !bytes.Equal(last, []byte("event-19")) {
		t.Fatalf("last event = %q, want event-19", last)
	}
}

func TestEvictPolicyCutsSlowSubscriberOnly(t *testing.T) {
	b := newTestBroker(t, func(c *Config) {
		c.QueueLen = 8
		c.Policy = Evict
	})
	stalled := attachSubscriber(t, b, "md")
	healthy := attachSubscriber(t, b, "md")
	received := make(chan [][]byte, 1)
	go func() { received <- readAllEvents(healthy) }()

	const published = 40
	for i := 0; i < published; i++ {
		if err := b.Publish("md", bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // healthy keeps up; stalled backs up
	}
	waitUntil(t, "stalled subscriber eviction", func() bool {
		return b.Metrics().Counter("broker.evictions").Value() == 1
	})
	if n := b.Subscribers(); n != 1 {
		t.Fatalf("%d subscribers after eviction, want 1", n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := <-received; len(got) != published {
		t.Fatalf("healthy subscriber got %d events, want all %d", len(got), published)
	}
	// The evicted peer observes a closed connection.
	stalled.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4096)
	for {
		if _, err := stalled.Read(buf); err != nil {
			break
		}
	}
}

func TestHeartbeatKeepsIdleSubscriberWarm(t *testing.T) {
	b := newTestBroker(t, func(c *Config) { c.Heartbeat = 25 * time.Millisecond })
	conn := attachSubscriber(t, b, "md")
	fr := codec.NewFrameReader(conn, nil)
	beats := 0
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for beats < 2 {
		data, info, err := fr.ReadBlock()
		if err != nil {
			t.Fatalf("after %d heartbeats: %v", beats, err)
		}
		if len(data) != 0 || info.OrigLen != 0 {
			t.Fatalf("idle channel delivered a non-empty frame: %+v", info)
		}
		beats++
	}
}

func TestReadTimeoutEvictsSilentPeer(t *testing.T) {
	b := newTestBroker(t, func(c *Config) { c.ReadTimeout = 60 * time.Millisecond })
	conn := attachSubscriber(t, b, "md")
	// The client never pings; the broker must declare it dead.
	waitUntil(t, "silent peer eviction", func() bool {
		return b.Metrics().Counter("broker.evictions").Value() == 1
	})
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := conn.Read(buf); err != nil {
			break // connection was closed on us: correct
		}
	}
}

func TestPingsKeepSilentReaderAlive(t *testing.T) {
	b := newTestBroker(t, func(c *Config) { c.ReadTimeout = 80 * time.Millisecond })
	conn := attachSubscriber(t, b, "md")
	stop := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(stop) {
		if _, err := conn.Write([]byte{0}); err != nil {
			t.Fatalf("ping: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if n := b.Subscribers(); n != 1 {
		t.Fatalf("pinging subscriber was dropped (subscribers=%d)", n)
	}
	if ev := b.Metrics().Counter("broker.evictions").Value(); ev != 0 {
		t.Fatalf("evictions = %d, want 0", ev)
	}
}

func TestShutdownDrainsQueuedEvents(t *testing.T) {
	b := newTestBroker(t, nil)
	conn := attachSubscriber(t, b, "md")
	var want [][]byte
	for i := 0; i < 10; i++ {
		ev := bytes.Repeat([]byte{byte('0' + i)}, 200)
		want = append(want, ev)
		if err := b.Publish("md", ev); err != nil {
			t.Fatal(err)
		}
	}
	// Shutdown races the subscriber's slow reads: every queued event must
	// still arrive before the connection closes.
	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- b.Shutdown(ctx)
	}()
	fr := codec.NewFrameReader(conn, nil)
	var got [][]byte
	for {
		data, _, err := fr.ReadBlock()
		if err != nil {
			break
		}
		if len(data) == 0 {
			continue
		}
		time.Sleep(5 * time.Millisecond) // deliberately slow consumer
		got = append(got, data)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("event %d differs after drain", i)
		}
	}
}

// panicCodec "compresses" by truncation and panics on decompression — a
// poisoned codec for exercising panic isolation.
type panicCodec struct{}

func (panicCodec) Method() codec.Method { return codec.FirstCustom }
func (panicCodec) Compress(src []byte) ([]byte, error) {
	out := make([]byte, len(src)/2)
	copy(out, src)
	return out, nil
}
func (panicCodec) Decompress(src []byte, origLen int) ([]byte, error) {
	panic("poisoned codec")
}

func TestPanicInConnectionIsIsolated(t *testing.T) {
	reg := codec.NewRegistry()
	reg.Register(panicCodec{})
	b := newTestBroker(t, func(c *Config) { c.Engine.Registry = reg })

	pubClient, pubServer := net.Pipe()
	defer pubClient.Close()
	b.HandleConn(pubServer)
	if err := HandshakePublish(pubClient, "md"); err != nil {
		t.Fatal(err)
	}
	frame, _, err := codec.AppendFrame(nil, reg, codec.FirstCustom, bytes.Repeat([]byte("x"), 256))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pubClient.Write(frame); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "panic counter", func() bool {
		return b.Metrics().Counter("broker.panics").Value() == 1
	})
	// The broker survives: new sessions still work end to end.
	conn := attachSubscriber(t, b, "md")
	got := make(chan [][]byte, 1)
	go func() { got <- readAllEvents(conn) }()
	if err := b.Publish("md", []byte("still alive")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	events := <-got
	if len(events) != 1 || string(events[0]) != "still alive" {
		t.Fatalf("post-panic delivery = %q", events)
	}
}

func TestNewRejectsOversizedBlock(t *testing.T) {
	cfg := Config{}
	cfg.Engine.Selector.BlockSize = codec.MaxFrameLen + 1
	if _, err := New(cfg); err == nil {
		t.Fatal("block size above codec.MaxFrameLen must be rejected")
	}
}

func TestPublishValidation(t *testing.T) {
	b := newTestBroker(t, func(c *Config) { c.Channels = []string{"md"} })
	if err := b.Publish("other", []byte("x")); err == nil {
		t.Fatal("publish to unserved channel must fail")
	}
	if err := b.Publish("md", make([]byte, codec.MaxFrameLen+1)); err == nil {
		t.Fatal("oversized event must fail")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("md", []byte("x")); err != ErrClosed {
		t.Fatalf("publish after shutdown = %v, want ErrClosed", err)
	}
}
