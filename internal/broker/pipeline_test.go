package broker

import (
	"bytes"
	"context"
	"io"
	"net"
	"runtime"
	"testing"
	"time"

	"ccx/internal/codec"
	"ccx/internal/core"
	"ccx/internal/datagen"
	"ccx/internal/metrics"
	"ccx/internal/selector"
)

// TestSubscriberPipeline runs a subscriber behind a 4-worker encode
// pipeline and checks the invariants the parallel path must preserve:
// every published payload arrives intact, in publication order, with
// strictly increasing sequence numbers, and the broker still shuts down
// without leaking the pipeline's goroutines.
func TestSubscriberPipeline(t *testing.T) {
	const (
		eventSize = 8 << 10
		numEvents = 64
	)
	base := runtime.NumGoroutine()

	met := metrics.NewRegistry()
	cfg := Config{
		QueueLen:  256,
		Policy:    Evict,
		Heartbeat: -1,
		Metrics:   met,
	}
	cfg.Engine.Selector = selector.DefaultConfig()
	cfg.Engine.Selector.BlockSize = eventSize
	cfg.Engine.Workers = 4
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	subClient, subServer := net.Pipe()
	defer subClient.Close()
	b.HandleConn(subServer)
	if err := HandshakeSubscribe(subClient, "md"); err != nil {
		t.Fatal(err)
	}
	type delivery struct {
		data []byte
		seqs []uint64
	}
	got := make(chan delivery, 1)
	go func() {
		raw, _ := io.ReadAll(subClient)
		fr := codec.NewFrameReader(bytes.NewReader(raw), nil)
		var d delivery
		var buf bytes.Buffer
		for {
			data, info, err := fr.ReadBlock()
			if err != nil {
				break
			}
			if len(data) == 0 {
				continue // heartbeat
			}
			buf.Write(data)
			d.seqs = append(d.seqs, info.Seq)
		}
		d.data = buf.Bytes()
		got <- d
	}()

	stream := datagen.OISTransactions(numEvents*eventSize, 0.9, 42)
	pubClient, pubServer := net.Pipe()
	b.HandleConn(pubServer)
	if err := HandshakePublish(pubClient, "md"); err != nil {
		t.Fatal(err)
	}
	pubCfg := selector.DefaultConfig()
	pubCfg.BlockSize = eventSize
	pubEngine, err := core.NewEngine(core.Config{Selector: pubCfg})
	if err != nil {
		t.Fatal(err)
	}
	w := core.NewWriter(pubClient, pubEngine, nil)
	if _, err := w.Write(stream); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	pubClient.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	d := <-got
	if !bytes.Equal(d.data, stream) {
		t.Fatalf("delivered payload differs from published stream: %d vs %d bytes",
			len(d.data), len(stream))
	}
	if len(d.seqs) != numEvents {
		t.Fatalf("delivered %d blocks, want %d", len(d.seqs), numEvents)
	}
	for i, s := range d.seqs {
		if s != uint64(i+1) {
			t.Fatalf("block %d carries seq %d, want %d: parallel encode reordered the wire", i, s, i+1)
		}
	}

	// The pipeline's workers and sequencer must be gone after Shutdown.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 64<<10)
			t.Fatalf("goroutine leak after shutdown: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
