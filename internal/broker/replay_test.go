package broker

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"ccx/internal/codec"
)

// --- replayRing unit tests ---------------------------------------------

func TestReplayRingZeroValueStampsOnly(t *testing.T) {
	var r replayRing
	if r.enabled() {
		t.Fatal("zero ring reports enabled")
	}
	for i := 1; i <= 3; i++ {
		seq, evB, evBy := r.stamp([]byte("x"), nil)
		if seq != uint64(i) || evB != 0 || evBy != 0 {
			t.Fatalf("stamp #%d = (%d, %d, %d)", i, seq, evB, evBy)
		}
	}
	if r.len() != 0 {
		t.Fatalf("disabled ring retained %d entries", r.len())
	}
	if got, first := r.replayFrom(1); got != nil || first != 4 {
		t.Fatalf("replayFrom(1) = (%v, %d), want (nil, 4)", got, first)
	}
}

func TestReplayRingBlockBound(t *testing.T) {
	var r replayRing
	r.setBounds(3, 1<<20)
	var evicted int
	for i := 0; i < 5; i++ {
		_, evB, _ := r.stamp([]byte{byte(i)}, nil)
		evicted += evB
	}
	if evicted != 2 || r.len() != 3 {
		t.Fatalf("evicted %d, len %d; want 2, 3", evicted, r.len())
	}
	replay, first := r.replayFrom(0)
	if first != 3 || len(replay) != 3 {
		t.Fatalf("replayFrom(0) = %d entries from %d, want 3 from 3", len(replay), first)
	}
	for i, e := range replay {
		if e.seq != uint64(3+i) {
			t.Fatalf("replay[%d].seq = %d", i, e.seq)
		}
	}
}

func TestReplayRingByteBound(t *testing.T) {
	var r replayRing
	r.setBounds(1000, 10) // ten payload bytes total
	for i := 0; i < 6; i++ {
		r.stamp([]byte("abcd"), nil) // 4 bytes each; at most 2 fit under 10
	}
	if r.len() != 2 || r.bytes != 8 {
		t.Fatalf("len %d bytes %d; want 2, 8", r.len(), r.bytes)
	}
	if _, first := r.replayFrom(0); first != 5 {
		t.Fatalf("firstSeq = %d, want 5", first)
	}
}

func TestReplayRingOversizedBlockNeverRetained(t *testing.T) {
	var r replayRing
	r.setBounds(8, 10)
	r.stamp([]byte("ok"), nil)
	seq, evB, evBy := r.stamp(make([]byte, 64), nil) // alone exceeds the byte budget
	if seq != 2 {
		t.Fatalf("seq = %d", seq)
	}
	if evB != 1 || evBy != 0 {
		t.Fatalf("oversized stamp evicted (%d, %d), want (1, 0)", evB, evBy)
	}
	// The window skips the oversized block: a resume over it reports it via
	// firstSeq/sequence accounting, never replays it.
	replay, first := r.replayFrom(0)
	if first != 1 || len(replay) != 1 || replay[0].seq != 1 {
		t.Fatalf("replayFrom(0) = %d entries from %d", len(replay), first)
	}
}

func TestReplayRingCaughtUpAndAbsurdResume(t *testing.T) {
	var r replayRing
	r.setBounds(8, 1<<20)
	for i := 0; i < 4; i++ {
		r.stamp([]byte("x"), nil)
	}
	if replay, first := r.replayFrom(4); replay != nil || first != 5 {
		t.Fatalf("caught-up resume = (%v, %d), want (nil, 5)", replay, first)
	}
	if replay, first := r.replayFrom(1 << 40); replay != nil || first != 5 {
		t.Fatalf("absurd resume = (%v, %d), want (nil, 5)", replay, first)
	}
}

func TestReplayRingCompaction(t *testing.T) {
	var r replayRing
	r.setBounds(10, 1<<20)
	for i := 0; i < 500; i++ {
		r.stamp([]byte{byte(i)}, nil)
	}
	if r.len() != 10 {
		t.Fatalf("len = %d, want 10", r.len())
	}
	// Compaction must keep the backing array proportional to the window,
	// not the stream.
	if len(r.entries) > 64 {
		t.Fatalf("backing array grew to %d entries for a 10-block window", len(r.entries))
	}
	replay, first := r.replayFrom(490)
	if first != 491 || len(replay) != 10 {
		t.Fatalf("replayFrom(490) = %d entries from %d", len(replay), first)
	}
}

// --- resume integration over the live broker ---------------------------

// readSeqEvents reads events from a subscriber connection until n data
// frames arrived (heartbeats skipped), returning payloads and sequence
// numbers.
func readSeqEvents(t *testing.T, conn net.Conn, n int) (payloads [][]byte, seqs []uint64) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	fr := codec.NewFrameReader(conn, nil)
	for len(payloads) < n {
		data, info, err := fr.ReadBlock()
		if err != nil {
			t.Fatalf("after %d/%d events: %v", len(payloads), n, err)
		}
		if len(data) == 0 {
			continue
		}
		if !info.HasSeq {
			t.Fatalf("event %d arrived without a sequence number", len(payloads))
		}
		payloads = append(payloads, data)
		seqs = append(seqs, info.Seq)
	}
	return payloads, seqs
}

// TestResumeReplaysMissedBlocks is the acceptance scenario: a subscriber
// consumes part of the stream, its connection dies, more blocks are
// published, and the resumed session delivers every missed block exactly
// once, in order, byte-identical.
func TestResumeReplaysMissedBlocks(t *testing.T) {
	b := newTestBroker(t, func(c *Config) {
		c.ReplayBlocks = 64
	})
	blocks := make([][]byte, 8)
	for i := range blocks {
		blocks[i] = []byte(fmt.Sprintf("block-%d-payload", i+1))
	}

	sub1 := attachSubscriber(t, b, "md")
	for _, blk := range blocks[:5] {
		if err := b.Publish("md", blk); err != nil {
			t.Fatal(err)
		}
	}
	got1, seqs1 := readSeqEvents(t, sub1, 3)
	for i := range got1 {
		if string(got1[i]) != string(blocks[i]) || seqs1[i] != uint64(i+1) {
			t.Fatalf("live event %d = %q seq %d", i, got1[i], seqs1[i])
		}
	}
	sub1.Close() // the outage: connection dies after delivering seq 3
	waitUntil(t, "dead subscriber detached", func() bool { return b.Subscribers() == 0 })

	for _, blk := range blocks[5:] {
		if err := b.Publish("md", blk); err != nil {
			t.Fatal(err)
		}
	}

	client, server := net.Pipe()
	defer client.Close()
	b.HandleConn(server)
	firstSeq, err := HandshakeResume(client, "md", 3)
	if err != nil {
		t.Fatalf("resume handshake: %v", err)
	}
	if firstSeq != 4 {
		t.Fatalf("firstSeq = %d, want 4 (loss-free resume)", firstSeq)
	}
	got2, seqs2 := readSeqEvents(t, client, 5)
	for i := range got2 {
		want := blocks[3+i]
		if string(got2[i]) != string(want) {
			t.Fatalf("replayed event %d = %q, want %q", i, got2[i], want)
		}
		if seqs2[i] != uint64(4+i) {
			t.Fatalf("replayed seq[%d] = %d, want %d", i, seqs2[i], 4+i)
		}
	}

	met := b.Metrics()
	if v := met.Counter("broker.resumes").Value(); v != 1 {
		t.Fatalf("broker.resumes = %d", v)
	}
	if v := met.Counter("broker.resume_replayed_blocks").Value(); v != 5 {
		t.Fatalf("broker.resume_replayed_blocks = %d", v)
	}
	if v := met.Counter("broker.resume_gaps").Value(); v != 0 {
		t.Fatalf("broker.resume_gaps = %d", v)
	}
}

// TestResumeStraddlesLivePublish interleaves a resume with concurrent
// publishes: the atomic snapshot must hand every block to exactly one of
// replay and live delivery.
func TestResumeStraddlesLivePublish(t *testing.T) {
	b := newTestBroker(t, func(c *Config) {
		c.ReplayBlocks = 1024
		c.QueueLen = 1024
	})
	const total = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if err := b.Publish("md", []byte(fmt.Sprintf("ev-%04d", i))); err != nil {
				return
			}
		}
	}()

	client, server := net.Pipe()
	defer client.Close()
	b.HandleConn(server)
	firstSeq, err := HandshakeResume(client, "md", 0)
	if err != nil {
		t.Fatalf("resume handshake: %v", err)
	}
	if firstSeq != 1 {
		t.Fatalf("firstSeq = %d, want 1", firstSeq)
	}
	_, seqs := readSeqEvents(t, client, total)
	wg.Wait()
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("seqs[%d] = %d: duplicate or gap across the replay/live boundary", i, s)
		}
	}
}

// TestResumePastWindowReportsGap: a resume point evicted beyond the replay
// window must produce an explicit, counted gap — never a silent skip.
func TestResumePastWindowReportsGap(t *testing.T) {
	b := newTestBroker(t, func(c *Config) {
		c.ReplayBlocks = 2
	})
	for i := 1; i <= 6; i++ {
		if err := b.Publish("md", []byte(fmt.Sprintf("block-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	client, server := net.Pipe()
	defer client.Close()
	b.HandleConn(server)
	firstSeq, err := HandshakeResume(client, "md", 1)
	if err != nil {
		t.Fatalf("resume handshake: %v", err)
	}
	if firstSeq != 5 {
		t.Fatalf("firstSeq = %d, want 5 (window holds only 5,6)", firstSeq)
	}
	got, seqs := readSeqEvents(t, client, 2)
	if string(got[0]) != "block-5" || string(got[1]) != "block-6" || seqs[0] != 5 || seqs[1] != 6 {
		t.Fatalf("replay = %q seqs %v", got, seqs)
	}
	met := b.Metrics()
	if v := met.Counter("broker.resume_gaps").Value(); v != 1 {
		t.Fatalf("broker.resume_gaps = %d", v)
	}
	if v := met.Counter("broker.resume_gap_blocks").Value(); v != 3 {
		t.Fatalf("broker.resume_gap_blocks = %d (blocks 2,3,4 are gone)", v)
	}
	if v := met.Counter("broker.replay_evicted_blocks").Value(); v != 4 {
		t.Fatalf("broker.replay_evicted_blocks = %d", v)
	}
}

// TestResumeWithReplayDisabled: resumes are still accepted, but the session
// can only join live — the whole distance to the stream head is the gap.
func TestResumeWithReplayDisabled(t *testing.T) {
	b := newTestBroker(t, nil) // both replay bounds zero
	for i := 1; i <= 3; i++ {
		if err := b.Publish("md", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	client, server := net.Pipe()
	defer client.Close()
	b.HandleConn(server)
	firstSeq, err := HandshakeResume(client, "md", 1)
	if err != nil {
		t.Fatalf("resume handshake: %v", err)
	}
	if firstSeq != 4 {
		t.Fatalf("firstSeq = %d, want 4 (nothing retained)", firstSeq)
	}
	if err := b.Publish("md", []byte("live")); err != nil {
		t.Fatal(err)
	}
	got, seqs := readSeqEvents(t, client, 1)
	if string(got[0]) != "live" || seqs[0] != 4 {
		t.Fatalf("live event = %q seq %d", got[0], seqs[0])
	}
}

// TestShutdownRacesSubscriberTeardown hammers the attach/teardown paths
// against Shutdown. Run under -race: the regression it guards against is a
// subscriber published in the broker's map before its echo subscription was
// assigned, which let Shutdown dereference a nil subscription.
func TestShutdownRacesSubscriberTeardown(t *testing.T) {
	for round := 0; round < 25; round++ {
		b, err := New(Config{Heartbeat: -1, ReplayBlocks: 8})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for j := 0; j < 4; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				client, server := net.Pipe()
				defer client.Close()
				b.HandleConn(server)
				// Either outcome is fine — attached (then torn down by
				// Shutdown) or refused because the broker closed first.
				if j%2 == 0 {
					_ = HandshakeSubscribe(client, "md")
				} else if _, err := HandshakeResume(client, "md", 0); err == nil {
					// Read whatever the broker manages to send before close.
					client.SetReadDeadline(time.Now().Add(2 * time.Second))
					readAllEvents(client)
				}
			}(j)
		}
		_ = b.Publish("md", []byte("payload"))
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = b.Shutdown(ctx)
		cancel()
		wg.Wait()
	}
}
