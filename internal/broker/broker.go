// Package broker fans one event stream out to many heterogeneous
// subscribers, compressing independently for each of them.
//
// The paper configures compression per *path*: at the same instant a
// fast-LAN receiver wants raw blocks while a congested-WAN receiver wants
// Burrows-Wheeler. The repo's point-to-point tools (ccsend/ccrecv, one
// echo.Bridge per pair) cannot express that. This broker can: publishers
// submit events to named channels (internal/echo domains carry the
// channel namespace), and every subscriber connection keeps its own
// *selection state* — its own goodput EWMA and method choice — so a slow
// link independently drifts toward heavier compression while a fast link
// stays at None/Huffman.
//
// Encoding, by contrast, is shared: subscribers that currently select the
// same method form a method-equivalence class, and the internal/encplane
// subsystem encodes each (block, method) pair exactly once into a
// refcounted frame delivered to every queue in the class. Encode CPU
// scales with the number of distinct methods, not with subscriber count.
//
// Production behaviour under misbehaving peers:
//
//   - each subscriber has a bounded outbound queue with a configurable
//     slow-subscriber policy (drop-oldest or evict);
//   - reads and writes carry rolling idle deadlines, with zero-length
//     frames as heartbeats in both directions;
//   - Shutdown drains queued events to every live subscriber before
//     closing connections;
//   - per-connection goroutines are panic-isolated, so one poisoned codec
//     or handler cannot take the daemon down.
//
// Everything observable feeds an internal/metrics registry: per-subscriber
// bytes in/out, compression-ratio EWMA, method histogram, queue depth, and
// global eviction/drop/panic counters.
package broker

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ccx/internal/codec"
	"ccx/internal/core"
	"ccx/internal/echo"
	"ccx/internal/encplane"
	"ccx/internal/governor"
	"ccx/internal/metrics"
	"ccx/internal/netutil"
	"ccx/internal/obs"
	"ccx/internal/sampling"
	"ccx/internal/selector"
	"ccx/internal/tracing"
)

// Policy says what to do when a subscriber's outbound queue overflows.
type Policy int

const (
	// DropOldest discards the oldest queued event to make room — late
	// joiners and stragglers see gaps but stay connected (live telemetry).
	DropOldest Policy = iota
	// Evict disconnects the subscriber instead — consumers that must not
	// observe gaps are better served by reconnecting (bulk transfer).
	Evict
)

// String renders the policy's flag spelling.
func (p Policy) String() string {
	switch p {
	case DropOldest:
		return "drop"
	case Evict:
		return "evict"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy reads a policy flag value ("drop" or "evict").
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "drop":
		return DropOldest, nil
	case "evict":
		return Evict, nil
	}
	return 0, fmt.Errorf("broker: unknown policy %q (want drop or evict)", s)
}

// Defaults for Config zero values.
const (
	DefaultQueueLen         = 64
	DefaultHeartbeat        = 10 * time.Second
	DefaultHandshakeTimeout = 10 * time.Second
	// DefaultReplayBlocks and DefaultReplayBytes bound a channel's replay
	// ring when exactly one of the two limits is configured; with both zero,
	// replay is disabled entirely.
	DefaultReplayBlocks = 256
	DefaultReplayBytes  = 8 << 20
	// DefaultRetryAfter is the retry delay suggested to subscribers refused
	// by overload admission control.
	DefaultRetryAfter = time.Second
	// DefaultBreakerWindow is how long a subscriber's queue wait must stay
	// over BreakerWait before the circuit breaker trips.
	DefaultBreakerWindow = time.Second
	// closeFrameTimeout bounds the best-effort write of the explicit
	// close-reason frame toward an evicted subscriber.
	closeFrameTimeout = 100 * time.Millisecond
)

// ErrClosed reports an operation on a shut-down broker.
var ErrClosed = errors.New("broker: closed")

// Config assembles a Broker.
type Config struct {
	// Channels restricts which channel names peers may attach to; empty
	// means any name is served.
	Channels []string
	// QueueLen bounds each subscriber's outbound event queue
	// (DefaultQueueLen if 0).
	QueueLen int
	// Shards sets how many channel event loops the broker fans out on (the
	// sharded channel core, see shard.go and DESIGN.md §15). Each channel
	// is homed on one loop keyed by (channel, placement-class), so
	// per-channel ordering is untouched while distinct channels publish
	// concurrently. 0 aligns to GOMAXPROCS; explicit counts round up to a
	// power of two; 1 is the degenerate single-loop broker (the
	// byte-identity reference in tests); capped at MaxShards.
	Shards int
	// Policy picks the slow-subscriber behaviour on queue overflow.
	Policy Policy
	// ReplayBlocks and ReplayBytes bound each channel's replay ring: the
	// window of recent blocks retained for loss-free resume (see
	// HandshakeResume). A resuming subscriber whose last delivered sequence
	// still falls inside the window is replayed every missed block; past the
	// window it gets an explicit gap. Both zero disables replay (resumes are
	// still accepted but can only join live); if exactly one is set the
	// other takes its Default. Sequence numbers are stamped regardless, so
	// receivers can always detect loss.
	ReplayBlocks int
	ReplayBytes  int64
	// CacheBytes bounds each channel's shared-frame cache on the encode
	// plane (0 = encplane.DefaultCacheBytes); resume replays are served
	// from it instead of re-encoding.
	CacheBytes int64
	// Engine is the adaptation template: every subscriber gets its own
	// core.Engine built from this config for *selection* (goodput EWMA,
	// thresholds, block size apply per path), while encoding itself runs on
	// the shared plane — Workers sets the plane's per-channel encode pool.
	// The Registry is shared; nil means the built-in codec set.
	Engine core.Config
	// Placement is the default compression placement for subscriber paths:
	// where each subscriber's blocks get compressed relative to this broker
	// hop. The zero value (publisher) keeps broker-side encoding — the
	// pre-placement behaviour, since from a subscriber's viewpoint the
	// broker *is* the publishing hop. PlacementReceiver ships raw frames and
	// lets consumers compress (or not) themselves; PlacementAuto lets each
	// subscriber's own goodput/reducing-speed balance decide per block. A
	// version-3 handshake that advertises a placement overrides this default
	// for that session only.
	Placement selector.Placement
	// HandshakeTimeout bounds the initial handshake exchange
	// (DefaultHandshakeTimeout if 0).
	HandshakeTimeout time.Duration
	// ReadTimeout is the rolling idle deadline on peer reads; a subscriber
	// or publisher silent for longer is considered dead and evicted.
	// 0 disables (peers may be silent forever).
	ReadTimeout time.Duration
	// WriteTimeout is the rolling per-write deadline toward subscribers; a
	// write stalled longer evicts the subscriber. 0 disables.
	WriteTimeout time.Duration
	// Heartbeat is the keepalive interval toward idle subscribers
	// (DefaultHeartbeat if 0, negative disables).
	Heartbeat time.Duration
	// Metrics receives instrumentation (nil = a private registry,
	// retrievable via Broker.Metrics).
	Metrics *metrics.Registry
	// Trace receives one decision record per block sent to any subscriber
	// (stream "sub.<id>"), served over the -debug plane's
	// /debug/decisions. nil disables tracing entirely.
	Trace *obs.DecisionLog
	// Tracer records this hop's distributed-trace spans: ingest decode,
	// per-subscriber queue wait and write, and anomaly spans (resume,
	// migration). Blocks arriving with a trace-context annotation are
	// traced through; unannotated blocks are head-sampled here, making the
	// broker a trace origin for in-process publishers. nil disables.
	Tracer *tracing.Tracer
	// Logf logs connection lifecycle events (nil = silent).
	Logf func(format string, args ...any)
	// Governor, when non-nil, enables the overload governor (see
	// internal/governor): its levels drive CPU-pressure method demotion on
	// every subscriber path, memory-pressure shrinking of replay rings and
	// the frame cache, admission control (RETRY-AFTER refusals of new
	// subscribes while memory-critical), and shedding of the slowest
	// subscriber queues. The broker fills in QueuedBytes, Metrics, Tracer,
	// and Logf when unset, wires Engine.Limiter, and owns Start/Stop.
	Governor *governor.Config
	// RetryAfter is the delay suggested to subscribers refused by admission
	// control (DefaultRetryAfter if 0).
	RetryAfter time.Duration
	// BreakerWait arms the slow-subscriber circuit breaker: a subscriber
	// whose deliveries sit queued longer than this, continuously for
	// BreakerWindow, is evicted with an explicit "slow consumer" close
	// frame. 0 disables the breaker.
	BreakerWait   time.Duration
	BreakerWindow time.Duration
}

// Broker accepts publisher and subscriber connections and fans events out.
type Broker struct {
	cfg     Config
	domain  *echo.Domain
	reg     *codec.Registry
	met     *metrics.Registry
	plane   *encplane.Plane
	gov     *governor.Governor // nil unless Config.Governor was set
	hbFrame []byte             // precomputed zero-length None frame (heartbeats)
	logf    func(string, ...any)

	// memFactor is the replay/cache scale last applied by the governor's
	// memory dimension, in percent (100 = full budgets). The sampler
	// compares-and-applies so shrink/restore runs once per level change.
	memFactor atomic.Int64

	// shards is the channel event-loop set; it also owns the sharded
	// subscriber registry (b.mu no longer guards subscribers — only
	// lifecycle state below).
	shards *shardSet

	mu     sync.Mutex
	closed bool
	nextID int
	pubs   map[net.Conn]struct{}
	lns    map[net.Listener]struct{}

	// chmu guards the channel-state map only; each channelState has its own
	// lock ordered before b.mu (a state's lock may be held while taking
	// b.mu, never the reverse).
	chmu  sync.Mutex
	chans map[string]*channelState

	pubWG  sync.WaitGroup // publisher frame loops
	connWG sync.WaitGroup // every connection goroutine
}

// channelState is the broker-side per-channel session state: the sequence
// counter and replay window, plus the echo channel events fan out on.
// st.mu serializes publishes with resume snapshots, which is what makes a
// resume atomic: every block is either in the replay snapshot or delivered
// through the live subscription, never both, never neither.
type channelState struct {
	mu    sync.Mutex
	name  string
	ch    *echo.EventChannel
	ring  replayRing
	plane *encplane.Channel
	shard *shard // home event loop; fixed for the channel's lifetime

	seqGauge    *metrics.Gauge // chan.<name>.seq — last assigned sequence
	depthBlocks *metrics.Gauge // chan.<name>.replay_blocks
	depthBytes  *metrics.Gauge // chan.<name>.replay_bytes
}

// state returns (creating on first use) the named channel's session state.
func (b *Broker) state(name string) *channelState {
	b.chmu.Lock()
	defer b.chmu.Unlock()
	if st, ok := b.chans[name]; ok {
		return st
	}
	st := &channelState{
		name:        name,
		ch:          b.domain.OpenChannel(name),
		plane:       b.plane.Channel(name),
		shard:       b.shards.forChannel(name, placementClass(b.cfg.Placement)),
		seqGauge:    b.met.Gauge(fmt.Sprintf("chan.%s.seq", name)),
		depthBlocks: b.met.Gauge(fmt.Sprintf("chan.%s.replay_blocks", name)),
		depthBytes:  b.met.Gauge(fmt.Sprintf("chan.%s.replay_bytes", name)),
	}
	st.ring.setBounds(b.cfg.ReplayBlocks, b.cfg.ReplayBytes)
	st.shard.addState(st)
	b.chans[name] = st
	return st
}

// submit stamps one event with the channel's next sequence number, retains
// it in the replay window, and hands the fan-out — encode-plane publish
// (one encode per method class) and the in-process echo channel — to the
// channel's home event loop. Stamping and the task enqueue both happen
// under the ring lock, so the shard FIFO sees fan-outs in sequence order
// and resume snapshots / subscriber joins interleave atomically with
// publishes (a join task enqueued under the same lock splits the stream
// exactly: earlier blocks are in the snapshot, later ones arrive live).
// The enqueue blocks when the home loop is shardTaskBuf behind — that is
// the publisher backpressure.
//
// anno is the block's frame annotation as it arrived from the publisher
// (nil for in-process publishes). An unannotated block may be head-sampled
// here, making this broker the trace origin.
func (b *Broker) submit(st *channelState, data, anno []byte) error {
	if tr := b.cfg.Tracer; len(anno) == 0 && tr.Sample() {
		tc := tr.NewContext()
		anno = tc.AppendAnno(nil)
		tr.Record(tracing.Span{
			Trace:      tc.Trace,
			Stream:     st.name,
			Stage:      tracing.StageStamp,
			Start:      tc.WallNs,
			OriginWall: tc.WallNs,
			Bytes:      len(data),
		})
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	seq, evBlocks, evBytes := st.ring.stamp(data, anno)
	if evBlocks > 0 {
		b.met.Counter("broker.replay_evicted_blocks").Add(int64(evBlocks))
		b.met.Counter("broker.replay_evicted_bytes").Add(evBytes)
	}
	st.seqGauge.Set(int64(seq))
	st.depthBlocks.Set(int64(st.ring.len()))
	st.depthBytes.Set(st.ring.bytes)
	if !st.shard.do(func() {
		st.plane.PublishAnno(data, seq, anno)
		if err := st.ch.Submit(echo.Event{
			Data:  data,
			Attrs: echo.Attributes{core.AttrSeq: strconv.FormatUint(seq, 10)},
		}); err != nil {
			b.logf("broker: channel %q echo submit: %v", st.name, err)
		}
	}) {
		return ErrClosed
	}
	return nil
}

// New validates cfg and returns a Broker ready to Serve or HandleConn.
func New(cfg Config) (*Broker, error) {
	if cfg.QueueLen == 0 {
		cfg.QueueLen = DefaultQueueLen
	}
	if cfg.QueueLen < 1 {
		return nil, fmt.Errorf("broker: queue length %d", cfg.QueueLen)
	}
	if cfg.Heartbeat == 0 {
		cfg.Heartbeat = DefaultHeartbeat
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = DefaultHandshakeTimeout
	}
	if bs := cfg.Engine.Selector.BlockSize; bs > codec.MaxFrameLen {
		return nil, fmt.Errorf("broker: block size %d exceeds codec.MaxFrameLen %d",
			bs, codec.MaxFrameLen)
	}
	for _, name := range cfg.Channels {
		if name == "" || len(name) > MaxChannelName {
			return nil, fmt.Errorf("broker: invalid channel name %q", name)
		}
	}
	if cfg.ReplayBlocks < 0 || cfg.ReplayBytes < 0 {
		return nil, fmt.Errorf("broker: negative replay bounds (%d blocks, %d bytes)",
			cfg.ReplayBlocks, cfg.ReplayBytes)
	}
	// One configured bound enables replay with the other defaulted; both
	// zero keeps replay off.
	if cfg.ReplayBlocks > 0 && cfg.ReplayBytes == 0 {
		cfg.ReplayBytes = DefaultReplayBytes
	}
	if cfg.ReplayBytes > 0 && cfg.ReplayBlocks == 0 {
		cfg.ReplayBlocks = DefaultReplayBlocks
	}
	if !cfg.Placement.Valid() {
		return nil, fmt.Errorf("broker: invalid placement %s", cfg.Placement)
	}
	nshards, err := alignShards(cfg.Shards)
	if err != nil {
		return nil, err
	}
	if cfg.Engine.Registry == nil {
		cfg.Engine.Registry = codec.NewRegistry()
	}
	// Build one engine up front so a bad template fails at New, not at the
	// first subscriber.
	if _, err := core.NewEngine(cfg.Engine); err != nil {
		return nil, fmt.Errorf("broker: engine template: %w", err)
	}
	met := cfg.Metrics
	if met == nil {
		met = metrics.NewRegistry()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.BreakerWait > 0 && cfg.BreakerWindow <= 0 {
		cfg.BreakerWindow = DefaultBreakerWindow
	}

	// The governor is built before the plane (its NotePipeWait feeds the
	// plane's sequencer) but samples broker state, so its sources close over
	// the *Broker assigned below — safe because sampling only starts after b
	// exists, and nil-guarded anyway.
	var b *Broker
	var gov *governor.Governor
	if cfg.Governor != nil {
		gcfg := *cfg.Governor
		if gcfg.Metrics == nil {
			gcfg.Metrics = met
		}
		if gcfg.Tracer == nil {
			gcfg.Tracer = cfg.Tracer
		}
		if gcfg.Logf == nil {
			gcfg.Logf = logf
		}
		if gcfg.QueuedBytes == nil && gcfg.QueuedBytesByShard == nil {
			// Per-shard ledgers, not the global sum: the sampler adds them
			// exactly (frame accounting updates channel and plane totals
			// atomically together, so the shard sum equals queuedBytes) and
			// additionally publishes the widest shard.
			gcfg.QueuedBytesByShard = func() []int64 {
				if b == nil {
					return nil
				}
				return b.queuedBytesByShard()
			}
		}
		userSample := gcfg.OnSample
		gcfg.OnSample = func(s governor.Snapshot) {
			if b != nil {
				b.onPressureSample(s)
			}
			if userSample != nil {
				userSample(s)
			}
		}
		gov = governor.New(gcfg)
		// Every subscriber engine built from this template now demotes
		// selections down the method ladder under CPU pressure.
		cfg.Engine.Limiter = gov
	}

	pcfg := encplane.Config{
		Engine:     cfg.Engine,
		Workers:    cfg.Engine.Workers,
		CacheBytes: cfg.CacheBytes,
		Metrics:    met,
		Trace:      cfg.Trace,
		Tracer:     cfg.Tracer,
		Logf:       logf,
	}
	if gov != nil {
		pcfg.PipeWait = gov.NotePipeWait
	}
	plane, err := encplane.New(pcfg)
	if err != nil {
		return nil, err
	}
	// Heartbeats are zero-length None frames — constant bytes, so one
	// buffer serves every subscriber forever.
	hb, _, err := codec.AppendFrame(nil, cfg.Engine.Registry, codec.None, nil)
	if err != nil {
		return nil, fmt.Errorf("broker: heartbeat frame: %w", err)
	}
	b = &Broker{
		cfg:     cfg,
		domain:  echo.NewDomain(),
		reg:     cfg.Engine.Registry,
		met:     met,
		plane:   plane,
		gov:     gov,
		hbFrame: hb,
		logf:    logf,
		pubs:    make(map[net.Conn]struct{}),
		lns:     make(map[net.Listener]struct{}),
		chans:   make(map[string]*channelState),
	}
	b.shards = newShardSet(nshards, met)
	b.memFactor.Store(100)
	if gov != nil {
		gov.Start()
	}
	return b, nil
}

// Domain exposes the broker's channel namespace for in-process publishers
// and derived channels.
func (b *Broker) Domain() *echo.Domain { return b.domain }

// Metrics returns the instrumentation registry the broker feeds.
func (b *Broker) Metrics() *metrics.Registry { return b.met }

// Governor returns the overload governor, nil unless Config.Governor was
// set. Tests drive SampleNow through it for deterministic pressure steps.
func (b *Broker) Governor() *governor.Governor { return b.gov }

// states snapshots the channel-state map.
func (b *Broker) states() []*channelState {
	b.chmu.Lock()
	defer b.chmu.Unlock()
	out := make([]*channelState, 0, len(b.chans))
	for _, st := range b.chans {
		out = append(out, st)
	}
	return out
}

// queuedBytes is the aggregate-bytes ledger computed globally: wire bytes
// held by live shared frames (queued deliveries, the frame cache,
// in-flight encodes) plus every replay ring's retained payload. The
// governor normally samples queuedBytesByShard instead; this global form
// is kept as the independent reading the shard-sum invariant is tested
// against (Σ queuedBytesByShard == queuedBytes at quiesce).
func (b *Broker) queuedBytes() int64 {
	total := b.plane.LiveBytes()
	for _, st := range b.states() {
		st.mu.Lock()
		total += st.ring.bytes
		st.mu.Unlock()
	}
	return total
}

// queuedBytesByShard reads each shard's slice of the byte ledger (and
// refreshes the broker.shard.N.queued_bytes gauges). Every channel is
// homed on exactly one shard and frame accounting moves per-channel and
// plane totals together, so the entries sum to queuedBytes exactly.
func (b *Broker) queuedBytesByShard() []int64 {
	out := make([]int64, len(b.shards.shards))
	for i, sh := range b.shards.shards {
		out[i] = sh.queuedBytes()
	}
	return out
}

// allSubs snapshots every live subscriber across the shard registries.
func (b *Broker) allSubs() []*subscriber {
	var out []*subscriber
	for _, sh := range b.shards.shards {
		out = append(out, sh.snapshotSubs()...)
	}
	return out
}

// memScale maps a memory-pressure level to the replay/cache budget scale in
// percent.
func memScale(l governor.Level) int64 {
	switch l {
	case governor.LevelElevated:
		return 50
	case governor.LevelCritical:
		return 25
	}
	return 100
}

// onPressureSample runs on the governor's sampling goroutine after every
// sample: rescale retention budgets when the memory level moved, and shed
// the slowest subscriber queues while memory stays critical. CPU pressure
// needs no push — every subscriber's next selection reads the method cap
// through the engine's limiter.
func (b *Broker) onPressureSample(snap governor.Snapshot) {
	factor := memScale(snap.Mem)
	if b.memFactor.Swap(factor) != factor {
		b.applyMemFactor(factor)
	}
	if snap.Mem == governor.LevelCritical {
		b.shedSlowest()
	}
}

// applyMemFactor rescales the frame cache and every replay ring to
// factor percent of their configured budgets (floored; 100 restores).
func (b *Broker) applyMemFactor(factor int64) {
	f := float64(factor) / 100
	b.plane.SetCacheScale(f, ringFloorBytes)
	var evBlocks int
	var evBytes int64
	for _, st := range b.states() {
		st.mu.Lock()
		blocks, bytes := st.ring.setPressure(f)
		st.depthBlocks.Set(int64(st.ring.len()))
		st.depthBytes.Set(st.ring.bytes)
		st.mu.Unlock()
		evBlocks += blocks
		evBytes += bytes
	}
	if evBlocks > 0 {
		b.met.Counter("broker.replay_evicted_blocks").Add(int64(evBlocks))
		b.met.Counter("broker.replay_evicted_bytes").Add(evBytes)
	}
	b.logf("broker: governor scaled retention to %d%% (shrink evicted %d blocks)", factor, evBlocks)
}

// maxShedPerSample bounds one sampling interval's evictions so a single
// critical sample cannot dump the whole subscriber population — pressure
// relief arrives in governor-interval-sized steps, newest readings first.
const maxShedPerSample = 64

// shedSlowest evicts the deepest subscriber queues (at least half full)
// while memory pressure is critical: each eviction releases that queue's
// frame references immediately. Victims get the explicit overload close
// frame, so they back off and resume rather than hammer the handshake.
func (b *Broker) shedSlowest() {
	half := b.cfg.QueueLen / 2
	if half < 1 {
		half = 1
	}
	victims := make([]*subscriber, 0, 8)
	for _, s := range b.allSubs() {
		if s.backlog() >= half {
			victims = append(victims, s)
		}
	}
	if len(victims) == 0 {
		return
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].backlog() > victims[j].backlog() })
	if len(victims) > maxShedPerSample {
		victims = victims[:maxShedPerSample]
	}
	for _, s := range victims {
		b.gov.NoteShedEviction()
		b.met.Counter("broker.shed_evictions").Inc()
		s.sh.shedC.Inc()
		b.evictSub(s, codec.CloseOverload, "overload shed: memory pressure critical")
	}
}

// Decisions returns the per-block decision trace, nil unless Config.Trace
// was set.
func (b *Broker) Decisions() *obs.DecisionLog { return b.cfg.Trace }

// Subscribers reports the number of live subscriber connections.
func (b *Broker) Subscribers() int {
	n := 0
	for _, sh := range b.shards.shards {
		n += sh.subscribers()
	}
	return n
}

// Publish submits one event to the named channel from inside the process.
// data is copied, so callers may reuse their buffer.
func (b *Broker) Publish(channel string, data []byte) error {
	b.mu.Lock()
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if err := b.channelAllowed(channel); err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	if len(data) > codec.MaxFrameLen {
		return fmt.Errorf("broker: event size %d exceeds codec.MaxFrameLen %d",
			len(data), codec.MaxFrameLen)
	}
	owned := make([]byte, len(data))
	copy(owned, data)
	b.met.Counter("broker.events_in").Inc()
	b.met.Counter("broker.bytes_in").Add(int64(len(owned)))
	return b.submit(b.state(channel), owned, nil)
}

// Serve accepts connections on ln until the broker shuts down. It returns
// nil after Shutdown, or the accept error otherwise.
func (b *Broker) Serve(ln net.Listener) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	b.lns[ln] = struct{}{}
	b.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			b.mu.Lock()
			closed := b.closed
			delete(b.lns, ln)
			b.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		b.HandleConn(conn)
	}
}

// HandleConn adopts an established connection (any net.Conn — TCP, pipes,
// netsim-shaped links) and runs its session asynchronously: handshake,
// then the publisher frame loop or the subscriber fan-out loop. A
// connection handed to a broker that already shut down is closed.
func (b *Broker) HandleConn(conn net.Conn) {
	// The Add must be ordered against Shutdown's Wait via b.mu: once closed
	// is set the counter may be zero and a bare Add would race the Wait.
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		conn.Close()
		return
	}
	b.connWG.Add(1)
	b.mu.Unlock()
	go b.handle(conn)
}

func (b *Broker) handle(conn net.Conn) {
	defer b.connWG.Done()
	defer func() {
		if r := recover(); r != nil {
			b.met.Counter("broker.panics").Inc()
			b.logf("broker: connection panic: %v", r)
			conn.Close()
		}
	}()

	_ = conn.SetDeadline(time.Now().Add(b.cfg.HandshakeTimeout))
	hs, err := readHandshake(conn)
	if err != nil {
		// The peer is not speaking our protocol (and on a synchronous
		// transport may still be mid-write), so reply nothing: just hang up.
		conn.Close()
		b.logf("broker: %v", err)
		return
	}
	if err := b.channelAllowed(hs.channel); err != nil {
		_ = writeReply(conn, err)
		conn.Close()
		b.logf("broker: refused %c on %q: %v", hs.role, hs.channel, err)
		return
	}

	// Placement resolution: an advertised (version-3) placement overrides
	// the broker's configured default for this session. An unknown wire byte
	// was already degraded to publisher by the parser; count it so operators
	// can see version skew instead of silently-inline sessions.
	pl := b.cfg.Placement
	if hs.hasPlacement {
		pl = hs.placement
		if hs.placementDegraded {
			b.met.Counter("broker.placement_degraded").Inc()
			b.logf("broker: %c on %q advertised unknown placement byte, degrading to %s",
				hs.role, hs.channel, pl)
		}
	}

	switch hs.role {
	case RolePublish:
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			_ = writeReply(conn, ErrClosed)
			conn.Close()
			return
		}
		b.pubs[conn] = struct{}{}
		b.pubWG.Add(1)
		b.mu.Unlock()
		// finishPublisher must run even if the frame loop panics — Shutdown
		// waits on the publisher group.
		defer b.finishPublisher(conn)
		if err := writeReply(conn, nil); err != nil {
			return
		}
		_ = conn.SetDeadline(time.Time{})
		if hs.hasPlacement {
			// Informational only: the publisher enforces its half by shipping
			// raw frames when it offloads; the broker decodes either way.
			b.met.Counter(fmt.Sprintf("broker.pub_placement.%s", pl)).Inc()
			b.logf("broker: publisher attached to %q (placement %s)", hs.channel, pl)
		} else {
			b.logf("broker: publisher attached to %q", hs.channel)
		}
		b.handlePublisher(conn, hs.channel)

	case RoleSubscribe, RoleResume:
		// Admission control: while the memory dimension is critical, taking
		// on another queue + engine + replay snapshot makes the exhaustion
		// worse, so refuse with an explicit RETRY-AFTER instead of accepting
		// a session that shedding would immediately evict.
		if b.gov != nil && b.gov.Memory() == governor.LevelCritical {
			b.gov.NoteShedSubscribe()
			b.met.Counter("broker.admission_refused").Inc()
			_ = writeRetryReply(conn, "overloaded: memory pressure critical", b.cfg.RetryAfter)
			conn.Close()
			b.logf("broker: refused %c on %q: memory pressure critical (retry after %v)",
				hs.role, hs.channel, b.cfg.RetryAfter)
			return
		}
		resume := hs.role == RoleResume
		s, firstSeq, err := b.addSubscriber(conn, hs.channel, pl, resume, hs.lastSeq)
		if err != nil {
			_ = writeReply(conn, err)
			conn.Close()
			return
		}
		if resume {
			err = writeResumeReply(conn, firstSeq)
		} else {
			err = writeReply(conn, nil)
		}
		if err != nil {
			b.removeSub(s, false, "handshake reply failed")
			return
		}
		_ = conn.SetDeadline(time.Time{})
		if resume {
			b.logf("broker: subscriber %d resumed %q from seq %d (replaying %d)",
				s.id, hs.channel, hs.lastSeq, len(s.replay))
		} else {
			b.logf("broker: subscriber %d attached to %q", s.id, hs.channel)
		}
		b.connWG.Add(1)
		go s.readDrain(b)
		s.run(b)
	}
}

func (b *Broker) finishPublisher(conn net.Conn) {
	conn.Close()
	b.mu.Lock()
	delete(b.pubs, conn)
	b.mu.Unlock()
	b.pubWG.Done()
}

func (b *Broker) channelAllowed(name string) error {
	if name == "" || len(name) > MaxChannelName {
		return fmt.Errorf("broker: invalid channel name %q", name)
	}
	if len(b.cfg.Channels) == 0 {
		return nil
	}
	for _, allowed := range b.cfg.Channels {
		if name == allowed {
			return nil
		}
	}
	return fmt.Errorf("broker: channel %q not served", name)
}

// handlePublisher decodes the publisher's frame stream and fans every
// event into the channel. FrameReader returns freshly allocated payloads,
// so events can be shared across subscriber queues without copying.
//
// A corrupt frame (flipped bits, swallowed bytes, a payload the codec
// rejects) poisons only itself: the broker counts it, resynchronizes on
// the next frame boundary, and keeps serving the survivors. Only transport
// errors — truncation, timeouts, hangups — end the publisher session.
func (b *Broker) handlePublisher(conn net.Conn, channel string) {
	st := b.state(channel)
	rc := netutil.WithTimeouts(conn, b.cfg.ReadTimeout, 0)
	fr := codec.NewFrameReader(rc, b.reg)
	events := b.met.Counter("broker.events_in")
	bytesIn := b.met.Counter("broker.bytes_in")
	corrupt := b.met.Counter("broker.corrupt_frames")
	for {
		data, info, err := fr.ReadBlock()
		if err != nil {
			if errors.Is(err, codec.ErrCorruptFrame) {
				corrupt.Inc()
				b.logf("broker: publisher on %q: dropping corrupt frame: %v", channel, err)
				// Resync is always-on traced (anomaly), sampled or not.
				rstart := time.Now()
				rerr := fr.Resync()
				b.cfg.Tracer.Record(tracing.Span{
					Stream:  channel,
					Stage:   tracing.StageResync,
					Start:   rstart.UnixNano(),
					Dur:     time.Since(rstart).Nanoseconds(),
					Err:     err.Error(),
					Anomaly: true,
				})
				if rerr == nil {
					continue
				}
				// No further frame boundary before the stream ended.
				return
			}
			if err != io.EOF {
				b.logf("broker: publisher on %q: %v", channel, err)
			}
			return
		}
		if len(data) == 0 {
			continue // keepalive
		}
		events.Inc()
		bytesIn.Add(int64(len(data)))
		if tr := b.cfg.Tracer; tr != nil && len(info.Anno) > 0 {
			if tc := tracing.ParseAnno(info.Anno); tc.Valid() {
				// Arrival marker: a zero-duration decode span pins when the
				// annotated block reached this hop, which is what lets the
				// stitcher attribute the publisher→broker wire gap.
				tr.Record(tracing.Span{
					Trace:      tc.Trace,
					Seq:        info.Seq,
					Stream:     channel,
					Stage:      tracing.StageDecode,
					Start:      time.Now().UnixNano(),
					OriginWall: tc.WallNs,
					Method:     info.Method.String(),
					Bytes:      len(data),
				})
			}
		}
		_ = b.submit(st, data, info.Anno)
	}
}

// subscriber is one consumer connection. Selection state (goodput EWMA,
// current method) is private; encoded frames arrive ready-made from the
// shared encode plane through the outbound queue.
type subscriber struct {
	id      int
	channel string
	conn    net.Conn     // raw; Close unblocks both loops
	wc      net.Conn     // write side with rolling deadline
	engine  *core.Engine // selection + per-path telemetry; never encodes
	member  *encplane.Member
	st      *channelState
	sh      *shard // home shard: registry slot + per-shard shed/breaker accounting

	queue  chan encplane.Delivery
	replay []ringEntry   // resume backlog, sent before any live delivery
	drain  chan struct{} // closed by Shutdown: flush queue, then hang up
	quit   chan struct{} // closed on evict/teardown: exit immediately
	once   sync.Once

	// qmu orders deliveries against teardown: deliver refuses once dead is
	// set, and removeSub sets dead before draining the queue, so no frame
	// reference can slip into a queue nobody will ever drain.
	qmu  sync.Mutex
	dead bool

	// wmu serializes connection writes so the eviction path can interleave
	// its close-reason frame on whole-frame boundaries. The write loop holds
	// it per frame; teardown only TryLocks — a writer blocked on a dead peer
	// means the close frame is skipped, not waited for.
	wmu sync.Mutex
	// closeCode, when non-zero, overrides the close-reason frame's default
	// (overload) — the breaker sets slow-consumer before evicting.
	closeCode atomic.Int32
	// slowSince is when the current over-threshold queue-wait run started
	// (breaker state; write-loop only).
	slowSince time.Time

	curMethod    codec.Method       // current class method (write-loop only)
	curPlacement selector.Placement // current class placement (write-loop only)
	lastDec      selector.Decision  // decision that chose curMethod, for traces
	blocks       int                // ordinal of the next block, for trace records
	batchScratch []encplane.Delivery // write-loop scratch for vectored batches
	// inflight counts frames collected into an in-progress batch write.
	// They are off the queue but not yet on the wire, so backlog-depth
	// readers (shedding) must add them back or a stalled subscriber hiding
	// a full batch behind a blocked write looks nearly idle.
	inflight atomic.Int32

	bytesIn   *metrics.Counter
	bytesOut  *metrics.Counter
	drops     *metrics.Counter
	depth     *metrics.Gauge
	depthHWM  *metrics.Gauge
	ratio     *metrics.EWMA
	queueWait *metrics.Histogram
}

// addSubscriber builds a subscriber session with the resolved placement pl.
// For a resume it additionally snapshots the replay backlog and reports the
// first sequence number the session will deliver; snapshot, subscription,
// and registration happen atomically with respect to publishes (the
// channel-state lock), so no block can fall between the replay window and
// the live stream.
func (b *Broker) addSubscriber(conn net.Conn, channel string, pl selector.Placement, resume bool, lastSeq uint64) (*subscriber, uint64, error) {
	// Reserve the subscriber's id first: the engine's telemetry stream
	// label ("sub.<id>") needs it before the engine is built.
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, 0, ErrClosed
	}
	b.nextID++
	id := b.nextID
	b.mu.Unlock()

	ecfg := b.cfg.Engine
	ecfg.Telemetry = core.Telemetry{
		Metrics: b.met,
		Trace:   b.cfg.Trace,
		Stream:  fmt.Sprintf("sub.%d", id),
	}
	// The broker is the deciding node on every subscriber path: "publisher"
	// placement here means broker-side (inline) encoding, "receiver" ships
	// raw and offloads downstream, "auto" flips between the two from this
	// path's own goodput/reducing-speed balance.
	ecfg.Placement = selector.PlacementPolicy{
		Mode:          pl,
		Node:          selector.PlacementBroker,
		OffloadFactor: b.cfg.Engine.Placement.OffloadFactor,
	}
	engine, err := core.NewEngine(ecfg)
	if err != nil {
		return nil, 0, fmt.Errorf("broker: subscriber engine: %w", err)
	}
	s := &subscriber{
		id:      id,
		channel: channel,
		conn:    conn,
		wc:      netutil.WithTimeouts(conn, 0, b.cfg.WriteTimeout),
		engine:  engine,
		queue:   make(chan encplane.Delivery, b.cfg.QueueLen),
		drain:   make(chan struct{}),
		quit:    make(chan struct{}),

		bytesIn:   b.met.Counter(fmt.Sprintf("sub.%d.bytes_in", id)),
		bytesOut:  b.met.Counter(fmt.Sprintf("sub.%d.bytes_out", id)),
		drops:     b.met.Counter(fmt.Sprintf("sub.%d.drops", id)),
		depth:     b.met.Gauge(fmt.Sprintf("sub.%d.queue_depth", id)),
		depthHWM:  b.met.Gauge(fmt.Sprintf("sub.%d.queue_hwm", id)),
		ratio:     b.met.EWMA(fmt.Sprintf("sub.%d.ratio", id), 0),
		queueWait: b.met.Histogram("broker.queue_wait_seconds", metrics.LatencyBuckets),
	}

	st := b.state(channel)
	s.st = st
	s.sh = st.shard
	st.mu.Lock()
	var firstSeq uint64
	if resume {
		s.replay, firstSeq = st.ring.replayFrom(lastSeq)
		b.noteResume(s, lastSeq, firstSeq, len(s.replay))
	}
	// The plane join runs as a task on the channel's home event loop,
	// enqueued while the channel lock is still held: publishes already
	// stamped (and, for resumes, captured in the replay snapshot) have
	// their fan-out tasks ahead of the join in the shard FIFO, so they
	// cannot reach the new member; publishes stamped after the lock drops
	// enqueue behind the join and arrive live. That splits the stream
	// exactly — every block is replayed or delivered live, never both,
	// never neither — without holding the lock across the join itself.
	// The initial class is (None, decided placement): unmeasured paths
	// start raw, and adapt migrates both dimensions from the first
	// delivery on.
	s.curPlacement = engine.Placement().Decide(selector.Inputs{})
	joined := make(chan struct{})
	ok := st.shard.do(func() {
		s.member = st.plane.JoinPlaced(codec.None, s.curPlacement, func(d encplane.Delivery) bool {
			return s.deliver(b, d)
		})
		close(joined)
	})
	st.mu.Unlock()
	if !ok {
		return nil, 0, ErrClosed
	}
	<-joined
	// Registration is ordered against Shutdown via b.mu: once closed is
	// set, Shutdown snapshots the shard registries, so a session that lost
	// the race backs out (leaving the membership) instead of registering a
	// subscriber nobody will ever drain. The dead re-check under qmu closes
	// the other race: deliveries start the moment the join task runs, so a
	// queue-overflow eviction can tear the session down before this point —
	// registering it afterwards would leak a registry slot forever.
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		s.member.Leave()
		return nil, 0, ErrClosed
	}
	s.qmu.Lock()
	if s.dead {
		s.qmu.Unlock()
		b.mu.Unlock()
		return nil, 0, errors.New("broker: subscriber evicted during handshake")
	}
	s.sh.register(s)
	b.met.Gauge("broker.subscribers").Add(1)
	s.qmu.Unlock()
	b.mu.Unlock()
	return s, firstSeq, nil
}

// noteResume records one resume handshake in the metrics registry and the
// decision trace. Caller holds the channel-state lock.
func (b *Broker) noteResume(s *subscriber, lastSeq, firstSeq uint64, replayed int) {
	b.met.Counter("broker.resumes").Inc()
	b.met.Counter("broker.resume_replayed_blocks").Add(int64(replayed))
	var gap uint64
	// want wraps to 0 only for an absurd lastSeq of MaxUint64, which
	// replayFrom already treats as fully caught up — no gap to report.
	if want := lastSeq + 1; want != 0 && firstSeq > want {
		gap = firstSeq - want
	}
	if gap > 0 {
		b.met.Counter("broker.resume_gaps").Inc()
		b.met.Counter("broker.resume_gap_blocks").Add(int64(gap))
	}
	if b.cfg.Trace != nil {
		b.cfg.Trace.Add(obs.Record{
			Stream:    fmt.Sprintf("sub.%d", s.id),
			Resume:    true,
			FrameSeq:  firstSeq,
			GapBlocks: gap,
			Reason: fmt.Sprintf("resume %q from seq %d: replaying %d, first live seq %d, gap %d",
				s.channel, lastSeq, replayed, firstSeq, gap),
		})
	}
	// Resume handshakes are always-on traced anomalies: Bytes carries the
	// replayed block count, Err the gap (blocks lost past the window).
	sp := tracing.Span{
		Stream:  fmt.Sprintf("sub.%d", s.id),
		Seq:     firstSeq,
		Stage:   tracing.StageResume,
		Start:   time.Now().UnixNano(),
		Bytes:   replayed,
		Anomaly: true,
	}
	if gap > 0 {
		sp.Err = fmt.Sprintf("gap of %d blocks past replay window", gap)
	}
	b.cfg.Tracer.Record(sp)
}

// deliver runs on the encode plane's sequencer goroutine and must never
// block: a full queue triggers the slow-subscriber policy. It reports
// whether the delivery (and its frame reference) was accepted.
func (s *subscriber) deliver(b *Broker, d encplane.Delivery) bool {
	s.qmu.Lock()
	if s.dead {
		s.qmu.Unlock()
		return false
	}
	select {
	case s.queue <- d:
		s.noteDepth()
		s.qmu.Unlock()
		return true
	default:
	}
	switch b.cfg.Policy {
	case DropOldest:
		select {
		case old := <-s.queue:
			old.Frame.Release()
			s.drops.Inc()
			b.met.Counter("broker.drops").Inc()
		default:
		}
		accepted := true
		select {
		case s.queue <- d:
		default:
			// Lost the race to the draining write loop refilling; the new
			// delivery is the drop.
			accepted = false
			s.drops.Inc()
			b.met.Counter("broker.drops").Inc()
		}
		s.noteDepth()
		s.qmu.Unlock()
		return accepted
	case Evict:
		s.qmu.Unlock()
		b.removeSub(s, true, "outbound queue overflow")
		return false
	}
	s.qmu.Unlock()
	return false
}

// backlog is the shedding view of this subscriber's depth: frames still
// queued plus those already collected into an in-progress batch write.
func (s *subscriber) backlog() int {
	return len(s.queue) + int(s.inflight.Load())
}

// noteDepth refreshes the queue-depth gauge and its high-water mark.
func (s *subscriber) noteDepth() {
	d := int64(len(s.queue))
	s.depth.Set(d)
	s.depthHWM.SetMax(d)
}

// run is the subscriber's write loop: dequeue a shared frame, write it,
// feed the realized send time into this path's goodput monitor, and re-run
// selection to keep the member in the right method class. Encoding already
// happened once per class on the plane.
func (s *subscriber) run(b *Broker) {
	defer func() {
		if r := recover(); r != nil {
			b.met.Counter("broker.panics").Inc()
			b.logf("broker: subscriber %d panic: %v", s.id, r)
		}
		b.removeSub(s, false, "write loop exit")
	}()
	var hb <-chan time.Time
	if b.cfg.Heartbeat > 0 {
		t := time.NewTicker(b.cfg.Heartbeat)
		defer t.Stop()
		hb = t.C
	}
	// Resume backlog first: replayed blocks all precede any live delivery
	// in sequence order (the snapshot was atomic with the plane join), and
	// are served from the shared frame cache where possible.
	for _, e := range s.replay {
		select {
		case <-s.quit:
			return
		default:
		}
		if !s.sendReplay(b, e) {
			return
		}
	}
	s.replay = nil
	for {
		select {
		case <-s.quit:
			return
		case <-s.drain:
			// Graceful shutdown: flush whatever is queued, then hang up.
			for {
				select {
				case d := <-s.queue:
					if !s.sendBatch(b, s.collectBatch(d)) {
						return
					}
				default:
					return
				}
			}
		case d := <-s.queue:
			batch := s.collectBatch(d)
			s.depth.Set(int64(len(s.queue)))
			if !s.sendBatch(b, batch) {
				return
			}
		case <-hb:
			s.wmu.Lock()
			_, err := s.wc.Write(b.hbFrame)
			s.wmu.Unlock()
			if err != nil {
				b.logf("broker: subscriber %d write: %v", s.id, err)
				b.removeSub(s, true, "write failed or timed out")
				return
			}
		}
	}
}

// maxBatchFrames bounds one vectored write: enough frames to amortize the
// syscall and write-lock cost across a burst, few enough that queue-wait
// attribution and the breaker stay per-delivery accurate.
const maxBatchFrames = 32

// collectBatch starts a batch with first and greedily takes whatever else
// is already queued, up to maxBatchFrames. It never blocks: batching only
// coalesces backlog that has already accumulated — a quiet stream keeps
// its one-frame latency.
func (s *subscriber) collectBatch(first encplane.Delivery) []encplane.Delivery {
	batch := append(s.batchScratch[:0], first)
	for len(batch) < maxBatchFrames {
		select {
		case d := <-s.queue:
			batch = append(batch, d)
		default:
			s.batchScratch = batch
			return batch
		}
	}
	s.batchScratch = batch
	return batch
}

// sendBatch writes a run of queued deliveries as one vectored write
// (net.Buffers, writev on TCP-backed conns), releasing every frame
// reference exactly once. All per-delivery work is unchanged from the
// one-frame path — queue wait is attributed once per class (first
// dequeuer, so the histogram measures distinct frames, not fan-out
// width), the slow-consumer breaker runs per delivery, and selection runs
// at dequeue with this block's shared probe and the path's live goodput,
// the same instant a per-subscriber encode loop would decide. When a
// decision differs from the class a frame was encoded for at publish
// time, the frame is swapped through the shared (seq, method) cache:
// however many subscribers migrated the same way, the block is re-encoded
// at most once. Only the wire write is coalesced; its measured duration
// is attributed evenly across the batch for spans and the goodput
// monitor. It reports false when the subscriber was torn down (breaker
// trip or write failure).
func (s *subscriber) sendBatch(b *Broker, batch []encplane.Delivery) bool {
	s.inflight.Store(int32(len(batch)))
	defer s.inflight.Store(0)
	tr := b.cfg.Tracer
	frames := make([]*encplane.Frame, 0, len(batch))
	bufs := make(net.Buffers, 0, len(batch))
	for i, d := range batch {
		f := d.Frame
		if f.FirstWait() {
			s.queueWait.Observe(time.Since(d.At).Seconds())
		}
		if b.cfg.BreakerWait > 0 && s.checkBreaker(b, time.Since(d.At)) {
			// removeSub drained the queue, but the deliveries in our hands
			// are already off-queue and still hold their references.
			for _, pf := range frames {
				pf.Release()
			}
			for _, rest := range batch[i:] {
				rest.Frame.Release()
			}
			return false
		}
		if tr != nil && d.TC.Valid() {
			tr.Record(tracing.Span{
				Trace:      d.TC.Trace,
				Seq:        f.Seq(),
				Stream:     fmt.Sprintf("sub.%d", s.id),
				Stage:      tracing.StageQueue,
				Start:      d.At.UnixNano(),
				Dur:        time.Since(d.At).Nanoseconds(),
				OriginWall: d.TC.WallNs,
			})
		}
		if s.adapt(len(d.Data), d.Probe) && tr != nil {
			// Class migrations are always-on traced: they are exactly the
			// adaptation events the paper's Figure 8 plots.
			tr.Record(tracing.Span{
				Trace:      d.TC.Trace,
				Seq:        f.Seq(),
				Stream:     fmt.Sprintf("sub.%d", s.id),
				Stage:      tracing.StageMigrate,
				Start:      time.Now().UnixNano(),
				OriginWall: d.TC.WallNs,
				Method:     s.curMethod.String(),
				Placement:  s.curPlacement.String(),
				Anomaly:    true,
			})
		}
		if f.RequestedMethod() != s.curMethod {
			nf, err := s.st.plane.EncodeCached(d.Data, f.Seq(), s.curMethod, d.Anno)
			if err != nil {
				// Fall back to the delivered frame: stale method, correct bytes.
				b.logf("broker: subscriber %d re-encode: %v", s.id, err)
			} else {
				f.Release()
				f = nf
			}
		}
		bufs = append(bufs, f.Bytes())
		frames = append(frames, f)
	}
	start := time.Now()
	s.wmu.Lock()
	_, err := netutil.WriteBuffers(s.wc, &bufs)
	s.wmu.Unlock()
	batchDur := time.Since(start)
	if err != nil {
		for _, f := range frames {
			f.Release()
		}
		b.logf("broker: subscriber %d write: %v", s.id, err)
		b.removeSub(s, true, "write failed or timed out")
		return false
	}
	if len(frames) > 1 {
		b.met.Counter("broker.writev_batches").Inc()
		b.met.Counter("broker.writev_frames").Add(int64(len(frames)))
	}
	share := batchDur / time.Duration(len(frames))
	for k, f := range frames {
		d := batch[k]
		wire := len(f.Bytes())
		if tr != nil && d.TC.Valid() {
			tr.Record(tracing.Span{
				Trace:      d.TC.Trace,
				Seq:        f.Seq(),
				Stream:     fmt.Sprintf("sub.%d", s.id),
				Stage:      tracing.StageWrite,
				Start:      start.Add(time.Duration(k) * share).UnixNano(),
				Dur:        share.Nanoseconds(),
				OriginWall: d.TC.WallNs,
				Method:     f.Info().Method.String(),
				Placement:  s.curPlacement.String(),
				Bytes:      wire,
			})
		}
		s.observeBlock(b, f.Info(), share, wire, len(d.Data))
		f.Release()
	}
	return true
}

// sendReplay encodes (or cache-fetches) one resume-backlog block at the
// subscriber's current method and writes it.
func (s *subscriber) sendReplay(b *Broker, e ringEntry) bool {
	s.adapt(len(e.data), s.st.plane.ProbeFor(e.data, e.seq))
	f, err := s.st.plane.EncodeCached(e.data, e.seq, s.curMethod, e.anno)
	if err != nil {
		b.logf("broker: subscriber %d replay encode: %v", s.id, err)
		return false
	}
	defer f.Release()
	frame := f.Bytes()
	start := time.Now()
	s.wmu.Lock()
	_, werr := s.wc.Write(frame)
	s.wmu.Unlock()
	if werr != nil {
		b.logf("broker: subscriber %d write: %v", s.id, werr)
		b.removeSub(s, true, "write failed or timed out")
		return false
	}
	if tr := b.cfg.Tracer; tr != nil && len(e.anno) > 0 {
		if tc := tracing.ParseAnno(e.anno); tc.Valid() {
			tr.Record(tracing.Span{
				Trace:      tc.Trace,
				Seq:        e.seq,
				Stream:     fmt.Sprintf("sub.%d", s.id),
				Stage:      tracing.StageWrite,
				Start:      start.UnixNano(),
				Dur:        time.Since(start).Nanoseconds(),
				OriginWall: tc.WallNs,
				Method:     f.Info().Method.String(),
				Bytes:      len(frame),
			})
		}
	}
	s.observeBlock(b, f.Info(), time.Since(start), len(frame), len(e.data))
	return true
}

// observeBlock feeds one delivered block into this path's monitor, metrics,
// and decision trace. The trace's Method is the wire truth (the class frame
// that was sent); Decision is the selection that placed the subscriber in
// its current class.
func (s *subscriber) observeBlock(b *Broker, info codec.BlockInfo, sendTime time.Duration, wire, origLen int) {
	// End-to-end feedback: the write stalls under receiver backpressure,
	// which is exactly the acceptance-rate signal the selector wants.
	s.engine.Monitor().Observe(wire, sendTime)
	s.bytesIn.Add(int64(origLen))
	s.bytesOut.Add(int64(wire))
	s.ratio.Observe(info.Ratio())
	b.met.Counter(fmt.Sprintf("sub.%d.method.%s", s.id, info.Method)).Inc()
	s.engine.ObserveBlock(core.BlockResult{
		Index:     s.blocks,
		Decision:  s.lastDec,
		Info:      info,
		SendTime:  sendTime,
		WireBytes: wire,
		Workers:   1,
	})
	s.blocks++
}

// adapt runs selection with the shared probe and this path's own predicted
// send time, migrating the member's class when the choice changes. It runs
// before each write, so the decision applies to the block about to be sent —
// identical timing to a per-subscriber encode loop (see DESIGN.md §11).
// Placement runs inside the same decision: a path whose link outruns its
// codec flips to receiver-side placement, which surfaces here as Method
// None with Decision.Offloaded set, and the member migrates to the raw
// (None, receiver) class. It reports whether the path migrated, so callers
// can trace the event.
func (s *subscriber) adapt(blockLen int, probe sampling.ProbeResult) bool {
	dec := s.engine.DecideProbed(blockLen, probe)
	s.lastDec = dec
	if dec.Method != s.curMethod || dec.Placement != s.curPlacement {
		s.curMethod = dec.Method
		s.curPlacement = dec.Placement
		s.member.MigratePlaced(dec.Method, dec.Placement)
		return true
	}
	return false
}

// checkBreaker runs the slow-subscriber circuit breaker against one
// delivery's queue wait: a wait over BreakerWait starts (or continues) an
// over-threshold run, and a run lasting BreakerWindow trips — the
// subscriber is evicted with an explicit "slow consumer" close frame so it
// backs off and resumes instead of dragging the shared plane. Returns true
// when tripped (the caller's write loop exits). Write-loop only.
func (s *subscriber) checkBreaker(b *Broker, wait time.Duration) bool {
	if wait < b.cfg.BreakerWait {
		s.slowSince = time.Time{}
		return false
	}
	now := time.Now()
	if s.slowSince.IsZero() {
		s.slowSince = now
		return false
	}
	if now.Sub(s.slowSince) < b.cfg.BreakerWindow {
		return false
	}
	b.met.Counter("broker.breaker_trips").Inc()
	s.sh.breakerC.Inc()
	if b.gov != nil {
		b.gov.NoteBreakerTrip()
	}
	b.evictSub(s, codec.CloseSlowConsumer,
		fmt.Sprintf("slow consumer: queue wait %v over %v for %v", wait, b.cfg.BreakerWait, b.cfg.BreakerWindow))
	return true
}

// evictSub is removeSub with an explicit close-reason code for the
// subscriber's goodbye frame.
func (b *Broker) evictSub(s *subscriber, code codec.CloseReason, reason string) {
	s.closeCode.Store(int32(code))
	b.removeSub(s, true, reason)
}

// closeFrame builds the explicit close-reason frame: a zero-length
// annotated frame carrying the reason TLV. Clients that predate it see an
// empty frame with an unknown annotation — a heartbeat — and then EOF,
// which is exactly the old behaviour.
func (b *Broker) closeFrame(code codec.CloseReason, msg string) []byte {
	anno := codec.AppendCloseAnno(nil, code, msg)
	frame, _, err := codec.AppendFrameOpts(nil, b.reg, codec.None, nil, codec.FrameOpts{Anno: anno})
	if err != nil {
		return nil
	}
	return frame
}

// sendCloseFrame best-effort-writes the eviction goodbye before the
// connection is severed. TryLock keeps it safe against the write loop: if a
// writer is mid-frame (or wedged on a dead peer), the frame is skipped
// rather than interleaved or waited for — the client then sees the generic
// teardown it would have seen anyway.
func (b *Broker) sendCloseFrame(s *subscriber, code codec.CloseReason, msg string) {
	frame := b.closeFrame(code, msg)
	if frame == nil {
		return
	}
	if !s.wmu.TryLock() {
		return
	}
	defer s.wmu.Unlock()
	_ = s.conn.SetWriteDeadline(time.Now().Add(closeFrameTimeout))
	// The handshake epilogue clears conn deadlines; an eviction racing it
	// (the governor can shed a subscriber the instant it registers) can have
	// its write deadline wiped and wedge forever on a synchronous transport.
	// The conn is severed right after this returns anyway, so a watchdog
	// close bounds the goodbye unconditionally.
	watchdog := time.AfterFunc(2*closeFrameTimeout, func() { s.conn.Close() })
	defer watchdog.Stop()
	_, _ = s.conn.Write(frame)
}

// readDrain consumes and discards anything the subscriber writes (pings),
// detecting dead or silent peers via the read timeout.
func (s *subscriber) readDrain(b *Broker) {
	defer b.connWG.Done()
	defer func() {
		if r := recover(); r != nil {
			b.met.Counter("broker.panics").Inc()
			b.logf("broker: subscriber %d read panic: %v", s.id, r)
		}
	}()
	rc := netutil.WithTimeouts(s.conn, b.cfg.ReadTimeout, 0)
	buf := make([]byte, 256)
	for {
		if _, err := rc.Read(buf); err != nil {
			evicted := false
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				evicted = true // silent past the read deadline: presumed dead
			}
			b.removeSub(s, evicted, fmt.Sprintf("peer read: %v", err))
			return
		}
	}
}

// removeSub tears a subscriber down exactly once: leave the encode plane,
// stop the write loop, close the connection, release every frame reference
// still queued, update accounting.
func (b *Broker) removeSub(s *subscriber, evicted bool, reason string) {
	s.once.Do(func() {
		s.member.Leave()
		// Mark dead under qmu so no concurrent deliver can enqueue after the
		// drain below — the frame references would leak.
		s.qmu.Lock()
		s.dead = true
		s.qmu.Unlock()
		close(s.quit)
		if evicted {
			// Say why before hanging up, so the client surfaces "evicted:
			// overload" (and backs off) instead of a generic read error.
			code := codec.CloseReason(s.closeCode.Load())
			if code == 0 {
				code = codec.CloseOverload
			}
			b.sendCloseFrame(s, code, reason)
		}
		s.conn.Close()
		for {
			select {
			case d := <-s.queue:
				d.Frame.Release()
				continue
			default:
			}
			break
		}
		// The registry slot and gauge move together: a session evicted
		// before registration completed (deregister reports false) was
		// never counted.
		if s.sh.deregister(s.id) {
			b.met.Gauge("broker.subscribers").Add(-1)
		}
		if evicted {
			b.met.Counter("broker.evictions").Inc()
		}
		b.logf("broker: subscriber %d detached (%s)", s.id, reason)
	})
}

// Shutdown stops the broker gracefully: listeners close, publishers finish
// their in-flight streams, subscriber queues drain, then connections close.
// The context bounds the wait; on expiry remaining connections are severed
// and ctx.Err() is returned.
func (b *Broker) Shutdown(ctx context.Context) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	lns := make([]net.Listener, 0, len(b.lns))
	for ln := range b.lns {
		lns = append(lns, ln)
	}
	b.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	// Stop the governor before draining: its sampler must not shed
	// subscribers that are mid-flush.
	if b.gov != nil {
		b.gov.Stop()
	}

	// Let publishers finish naturally so every submitted event reaches the
	// queues; past the deadline, sever them.
	if !waitCtx(ctx, &b.pubWG) {
		b.mu.Lock()
		for conn := range b.pubs {
			conn.Close()
		}
		b.mu.Unlock()
	}

	// Drain the channel event loops: every stamped block's fan-out task
	// (plane publish + echo submit) runs before the plane flush below, so
	// no submitted event is lost in a shard queue.
	b.shards.close()

	// Flush the encode plane: every submitted block is encoded and lands in
	// its class queues before the subscriber drain below starts.
	_ = b.plane.Close()

	// Ask every subscriber's write loop to flush its queue and hang up.
	for _, s := range b.allSubs() {
		close(s.drain)
	}

	if waitCtx(ctx, &b.connWG) {
		return nil
	}
	// Deadline passed: sever whatever is still blocked (e.g. a stalled
	// subscriber with no write timeout) and report the truncation.
	for _, s := range b.allSubs() {
		s.conn.Close()
	}
	b.mu.Lock()
	for conn := range b.pubs {
		conn.Close()
	}
	b.mu.Unlock()
	return ctx.Err()
}

// waitCtx waits for wg until ctx is done; it reports whether the group
// finished in time.
func waitCtx(ctx context.Context, wg *sync.WaitGroup) bool {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-ctx.Done():
		return false
	}
}
