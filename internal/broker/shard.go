package broker

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"

	"ccx/internal/metrics"
	"ccx/internal/selector"
)

// The sharded channel core (DESIGN.md §15). One broker-wide mutex and one
// inline PublishAnno per publish made the channel path the scaling
// bottleneck once encode itself went parallel: every publisher serialized
// behind every other publisher's probe + pipeline submit, and every
// subscriber join/leave fought the same registry lock. The shard set
// splits that state across GOMAXPROCS-aligned event loops:
//
//   - each channel is homed on exactly one shard, keyed by (channel,
//     placement-class): the hash mixes the channel name with whether the
//     channel's configured placement makes it receiver-raw, so raw fan-out
//     channels (which skip the encode pipeline entirely — see
//     encplane.publishRaw) land on loops of their own class and never
//     queue behind encode-bound channels;
//   - the fan-out half of a publish (probe, pipeline submit, echo submit)
//     runs as a task on the channel's home loop, so a publisher's read
//     loop overlaps the previous block's fan-out instead of waiting for
//     it. Per-channel order is preserved because one channel always runs
//     on one loop; the encode plane's per-channel mu/pipeMu remain the
//     shard-level locks below it (broker lock order: channelState.mu →
//     shard dispatch → plane locks; tasks themselves take no broker
//     locks);
//   - the subscriber registry is sharded the same way: a subscriber
//     registers on its channel's home shard, so attach/detach storms
//     update per-shard maps instead of one global one, and the governor's
//     byte ledgers and shed/breaker accounting aggregate per shard —
//     summed exactly, never sampled (governor.Config.QueuedBytesByShard).
//
// shardTaskBuf bounds each loop's task queue: enqueueing blocks once the
// loop falls this many publishes behind, which keeps publisher
// backpressure intact (a publisher cannot buffer unbounded blocks into a
// stalled loop).
const shardTaskBuf = 128

// MaxShards bounds Config.Shards; past this, loop scheduling overhead
// dwarfs any lock-splitting win.
const MaxShards = 256

// shard is one event loop plus the registry slice homed on it.
type shard struct {
	id    int
	tasks chan func()
	quit  chan struct{}

	// closeMu orders dispatch against close: dispatchers enqueue under
	// RLock after checking closed, close sets closed under Lock — so every
	// do() that returned true enqueued before the drain starts, and its
	// task is guaranteed to run.
	closeMu sync.RWMutex
	closed  bool

	// smu guards this shard's subscriber registry and channel list.
	smu    sync.Mutex
	subs   map[int]*subscriber
	states []*channelState

	subsG    *metrics.Gauge   // broker.shard.<i>.subscribers
	queuedG  *metrics.Gauge   // broker.shard.<i>.queued_bytes
	tasksC   *metrics.Counter // broker.shard.<i>.tasks
	shedC    *metrics.Counter // broker.shard.<i>.shed_evictions
	breakerC *metrics.Counter // broker.shard.<i>.breaker_trips
}

// shardSet owns the broker's event loops. len(shards) is a power of two so
// homing is a mask, not a mod.
type shardSet struct {
	shards []*shard
	mask   uint32
	wg     sync.WaitGroup
}

// alignShards resolves Config.Shards: explicit positive counts are rounded
// up to a power of two (the homing mask needs one); 0 aligns to GOMAXPROCS
// the same way. 1 is the degenerate single-loop broker TestSwarmByteIdentity
// compares the sharded one against.
func alignShards(configured int) (int, error) {
	if configured < 0 {
		return 0, fmt.Errorf("broker: negative shard count %d", configured)
	}
	if configured > MaxShards {
		return 0, fmt.Errorf("broker: shard count %d exceeds MaxShards %d", configured, MaxShards)
	}
	want := configured
	if want == 0 {
		want = runtime.GOMAXPROCS(0)
		if want > MaxShards {
			want = MaxShards
		}
	}
	n := 1
	for n < want {
		n <<= 1
	}
	return n, nil
}

func newShardSet(n int, met *metrics.Registry) *shardSet {
	ss := &shardSet{shards: make([]*shard, n), mask: uint32(n - 1)}
	met.Gauge("broker.shards").Set(int64(n))
	for i := range ss.shards {
		sh := &shard{
			id:    i,
			tasks: make(chan func(), shardTaskBuf),
			quit:  make(chan struct{}),
			subs:  make(map[int]*subscriber),

			subsG:    met.Gauge(fmt.Sprintf("broker.shard.%d.subscribers", i)),
			queuedG:  met.Gauge(fmt.Sprintf("broker.shard.%d.queued_bytes", i)),
			tasksC:   met.Counter(fmt.Sprintf("broker.shard.%d.tasks", i)),
			shedC:    met.Counter(fmt.Sprintf("broker.shard.%d.shed_evictions", i)),
			breakerC: met.Counter(fmt.Sprintf("broker.shard.%d.breaker_trips", i)),
		}
		ss.shards[i] = sh
		ss.wg.Add(1)
		go sh.loop(&ss.wg)
	}
	return ss
}

// placementClass folds a placement into the shard key's class bit:
// receiver placement means the channel's default path ships raw and skips
// the encode pipeline, everything else encodes on the home loop.
func placementClass(pl selector.Placement) byte {
	if pl == selector.PlacementReceiver {
		return 1
	}
	return 0
}

// forChannel homes a channel: hash of (channel name, placement class),
// masked onto the loop array. Deterministic, so a channel keeps its home
// for the broker's lifetime — the ordering guarantee rests on that.
func (ss *shardSet) forChannel(name string, class byte) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(name))
	_, _ = h.Write([]byte{class})
	return ss.shards[h.Sum32()&ss.mask]
}

// loop runs tasks in FIFO order until quit, then drains what close()
// guaranteed was already enqueued.
func (sh *shard) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case fn := <-sh.tasks:
			sh.tasksC.Inc()
			fn()
		case <-sh.quit:
			for {
				select {
				case fn := <-sh.tasks:
					sh.tasksC.Inc()
					fn()
				default:
					return
				}
			}
		}
	}
}

// do enqueues one task, reporting false once the set is closed. A true
// return guarantees the task will run: the enqueue completed under the
// RLock, and close() cannot mark the shard closed (let alone start the
// drain) until every in-flight RLock is released. The channel send may
// block when the loop is shardTaskBuf behind — that is the publisher
// backpressure, and it cannot deadlock close() because the loop keeps
// consuming until quit.
func (sh *shard) do(fn func()) bool {
	sh.closeMu.RLock()
	if sh.closed {
		sh.closeMu.RUnlock()
		return false
	}
	sh.tasks <- fn
	sh.closeMu.RUnlock()
	return true
}

// register adds a subscriber to its home shard's registry.
func (sh *shard) register(s *subscriber) {
	sh.smu.Lock()
	sh.subs[s.id] = s
	sh.smu.Unlock()
	sh.subsG.Add(1)
}

// deregister removes a subscriber, reporting whether it was present.
func (sh *shard) deregister(id int) bool {
	sh.smu.Lock()
	_, ok := sh.subs[id]
	if ok {
		delete(sh.subs, id)
	}
	sh.smu.Unlock()
	if ok {
		sh.subsG.Add(-1)
	}
	return ok
}

// addState homes a channel state on this shard.
func (sh *shard) addState(st *channelState) {
	sh.smu.Lock()
	sh.states = append(sh.states, st)
	sh.smu.Unlock()
}

// snapshotSubs copies the shard's live subscribers.
func (sh *shard) snapshotSubs() []*subscriber {
	sh.smu.Lock()
	out := make([]*subscriber, 0, len(sh.subs))
	for _, s := range sh.subs {
		out = append(out, s)
	}
	sh.smu.Unlock()
	return out
}

// queuedBytes is this shard's slice of the governor ledger: replay-ring
// payload plus live shared-frame wire bytes, summed over the channels
// homed here. Channel frame accounting updates per-channel and plane
// totals atomically together (encplane.noteBytes), so shard ledgers summed
// across the set equal the global ledger exactly.
func (sh *shard) queuedBytes() int64 {
	sh.smu.Lock()
	states := append([]*channelState(nil), sh.states...)
	sh.smu.Unlock()
	var total int64
	for _, st := range states {
		st.mu.Lock()
		total += st.ring.bytes
		st.mu.Unlock()
		total += st.plane.LiveBytes()
	}
	sh.queuedG.Set(total)
	return total
}

// subscribers reports the shard's registry size.
func (sh *shard) subscribers() int {
	sh.smu.Lock()
	defer sh.smu.Unlock()
	return len(sh.subs)
}

// close stops every loop: mark closed (no dispatch can start a new
// enqueue), then signal quit and wait for the drains. Tasks enqueued by a
// do() that returned true are all executed before close returns.
func (ss *shardSet) close() {
	for _, sh := range ss.shards {
		sh.closeMu.Lock()
		sh.closed = true
		sh.closeMu.Unlock()
	}
	for _, sh := range ss.shards {
		close(sh.quit)
	}
	ss.wg.Wait()
}
