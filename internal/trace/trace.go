// Package trace models the MBone session-membership load traces the paper
// uses to vary network load artificially (§4.2, ref [36]). A trace is a
// step function from elapsed time to the number of connected MBone end
// users; the paper multiplies the raw connection counts by 4 and uses the
// product as background traffic on its 100 MBit/s link.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"ccx/internal/netsim"
)

// Sample is one trace point: the connection count from time T until the
// next sample.
type Sample struct {
	T           time.Duration
	Connections int
}

// Trace is a time-ordered series of samples.
type Trace struct {
	samples []Sample
}

// New builds a trace from samples, sorting them by time.
func New(samples []Sample) *Trace {
	s := make([]Sample, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i].T < s[j].T })
	return &Trace{samples: s}
}

// Samples returns a copy of the trace points.
func (tr *Trace) Samples() []Sample {
	out := make([]Sample, len(tr.samples))
	copy(out, tr.samples)
	return out
}

// Duration returns the time of the last sample.
func (tr *Trace) Duration() time.Duration {
	if len(tr.samples) == 0 {
		return 0
	}
	return tr.samples[len(tr.samples)-1].T
}

// At returns the connection count in effect at elapsed time t (step
// interpolation; before the first sample it is the first sample's value).
func (tr *Trace) At(t time.Duration) int {
	if len(tr.samples) == 0 {
		return 0
	}
	idx := sort.Search(len(tr.samples), func(i int) bool {
		return tr.samples[i].T > t
	})
	if idx == 0 {
		return tr.samples[0].Connections
	}
	return tr.samples[idx-1].Connections
}

// Max returns the largest connection count in the trace.
func (tr *Trace) Max() int {
	m := 0
	for _, s := range tr.samples {
		if s.Connections > m {
			m = s.Connections
		}
	}
	return m
}

// MBoneSynthetic generates a 160-second trace with the shape of the paper's
// Figure 7: a quiet start, a ramp with bursts peaking near 20 connections
// mid-experiment, and a decay back to a handful of sessions. Deterministic
// for a given seed.
func MBoneSynthetic(seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	// Control points mirror Figure 7's envelope.
	anchors := []struct {
		t time.Duration
		c float64
	}{
		{0, 1}, {10 * time.Second, 3}, {25 * time.Second, 6},
		{40 * time.Second, 11}, {55 * time.Second, 16}, {70 * time.Second, 19},
		{85 * time.Second, 17}, {100 * time.Second, 12}, {115 * time.Second, 14},
		{130 * time.Second, 8}, {145 * time.Second, 5}, {160 * time.Second, 3},
	}
	var samples []Sample
	for step := time.Duration(0); step <= 160*time.Second; step += 2 * time.Second {
		// Linear interpolation across anchors plus membership churn noise.
		var base float64
		for i := 1; i < len(anchors); i++ {
			if step <= anchors[i].t {
				a, b := anchors[i-1], anchors[i]
				frac := float64(step-a.t) / float64(b.t-a.t)
				base = a.c + (b.c-a.c)*frac
				break
			}
		}
		n := int(base + rng.NormFloat64()*1.2 + 0.5)
		if n < 0 {
			n = 0
		}
		if n > 20 {
			n = 20
		}
		samples = append(samples, Sample{T: step, Connections: n})
	}
	return New(samples)
}

// Parse reads a whitespace-separated "seconds connections" trace, one
// sample per line; '#' starts a comment. This accepts the common textual
// form of published MBone membership traces.
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	var samples []Sample
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("trace: line %d: want 2 fields, got %d", line, len(fields))
		}
		secs, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time: %v", line, err)
		}
		conns, err := strconv.Atoi(fields[1])
		if err != nil || conns < 0 {
			return nil, fmt.Errorf("trace: line %d: bad connection count", line)
		}
		samples = append(samples, Sample{
			T:           time.Duration(secs * float64(time.Second)),
			Connections: conns,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("trace: no samples")
	}
	return New(samples), nil
}

// Format writes the trace in the textual form Parse reads.
func (tr *Trace) Format(w io.Writer) error {
	for _, s := range tr.samples {
		if _, err := fmt.Fprintf(w, "%.3f %d\n", s.T.Seconds(), s.Connections); err != nil {
			return err
		}
	}
	return nil
}

// LoadConfig maps connection counts to link load, as in §4.2.
type LoadConfig struct {
	// Multiplier scales raw connection counts (the paper uses 4 to adapt
	// the trace to 100 MBit/s capacity).
	Multiplier float64
	// PerConnBps is the background bandwidth one scaled connection
	// consumes, in bytes per second.
	PerConnBps float64
	// Start anchors trace time zero onto the clock.
	Start time.Time
	// Loop replays the trace from the beginning once it ends; otherwise the
	// final sample's load holds for the remainder of the run.
	Loop bool
}

// DefaultLoadConfig reproduces the paper's §4.2 setup for a given link:
// raw counts ×4, with per-connection bandwidth chosen so the trace's peak
// (20 connections × 4) consumes 95 % of the link.
func DefaultLoadConfig(link netsim.Profile, start time.Time) LoadConfig {
	return LoadConfig{
		Multiplier: 4,
		PerConnBps: link.RateBps * 0.95 / (20 * 4),
		Start:      start,
	}
}

// LoadFunc converts the trace into a netsim background-load function.
func (tr *Trace) LoadFunc(cfg LoadConfig, link netsim.Profile) netsim.LoadFunc {
	return func(now time.Time) float64 {
		t := now.Sub(cfg.Start)
		if t < 0 {
			t = 0
		}
		if d := tr.Duration(); d > 0 && t > d {
			if cfg.Loop {
				t = t % d
			} else {
				t = d
			}
		}
		conns := float64(tr.At(t)) * cfg.Multiplier
		frac := conns * cfg.PerConnBps / link.RateBps
		if frac > 0.99 {
			frac = 0.99
		}
		if frac < 0 {
			frac = 0
		}
		return frac
	}
}
