package trace

import (
	"strings"
	"testing"
	"time"

	"ccx/internal/netsim"
)

func TestNewSortsSamples(t *testing.T) {
	tr := New([]Sample{
		{T: 10 * time.Second, Connections: 5},
		{T: 0, Connections: 1},
		{T: 5 * time.Second, Connections: 3},
	})
	s := tr.Samples()
	if s[0].T != 0 || s[1].T != 5*time.Second || s[2].T != 10*time.Second {
		t.Fatalf("not sorted: %+v", s)
	}
}

func TestAtStepInterpolation(t *testing.T) {
	tr := New([]Sample{
		{T: 0, Connections: 2},
		{T: 10 * time.Second, Connections: 8},
	})
	cases := []struct {
		t    time.Duration
		want int
	}{
		{0, 2}, {5 * time.Second, 2}, {10 * time.Second, 8}, {60 * time.Second, 8},
	}
	for _, c := range cases {
		if got := tr.At(c.t); got != c.want {
			t.Errorf("At(%v) = %d want %d", c.t, got, c.want)
		}
	}
	empty := New(nil)
	if empty.At(time.Second) != 0 {
		t.Fatal("empty trace should report 0")
	}
}

func TestMBoneSyntheticShape(t *testing.T) {
	tr := MBoneSynthetic(1)
	if tr.Duration() != 160*time.Second {
		t.Fatalf("duration = %v", tr.Duration())
	}
	if m := tr.Max(); m < 15 || m > 20 {
		t.Fatalf("peak = %d, want within Figure 7's 15..20", m)
	}
	// The paper's trace peaks in the middle of the run.
	early := tr.At(5 * time.Second)
	mid := tr.At(70 * time.Second)
	late := tr.At(155 * time.Second)
	if mid <= early || mid <= late {
		t.Fatalf("no mid-run peak: early=%d mid=%d late=%d", early, mid, late)
	}
	// Deterministic per seed.
	a, b := MBoneSynthetic(7).Samples(), MBoneSynthetic(7).Samples()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical traces")
		}
	}
}

func TestParseAndFormat(t *testing.T) {
	in := `# MBone membership trace
0 3
2.5 5

5.0 8
`
	tr, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples()) != 3 {
		t.Fatalf("got %d samples", len(tr.Samples()))
	}
	if tr.At(3*time.Second) != 5 {
		t.Fatalf("At(3s) = %d", tr.At(3*time.Second))
	}
	var sb strings.Builder
	if err := tr.Format(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.At(3*time.Second) != 5 || back.Duration() != tr.Duration() {
		t.Fatal("format/parse roundtrip mismatch")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"", "1 2 3\n", "abc 2\n", "1 -4\n", "1 x\n",
	}
	for i, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestLoadFunc(t *testing.T) {
	tr := New([]Sample{
		{T: 0, Connections: 0},
		{T: 10 * time.Second, Connections: 10},
		{T: 20 * time.Second, Connections: 20},
	})
	start := time.Unix(0, 0)
	cfg := DefaultLoadConfig(netsim.Fast100, start)
	fn := tr.LoadFunc(cfg, netsim.Fast100)

	if l := fn(start); l != 0 {
		t.Fatalf("load at t=0 should be 0, got %v", l)
	}
	half := fn(start.Add(15 * time.Second))
	peak := fn(start.Add(20 * time.Second))
	if peak <= half || half <= 0 {
		t.Fatalf("load not increasing: half=%v peak=%v", half, peak)
	}
	// Peak (20 conns ×4) should approach but not exceed the 0.99 clamp.
	if peak < 0.90 || peak > 0.99 {
		t.Fatalf("peak load = %v, want ≈0.95", peak)
	}
	// Before the start the load is the t=0 value.
	if l := fn(start.Add(-5 * time.Second)); l != 0 {
		t.Fatalf("pre-start load = %v", l)
	}
	// Past the end the final load holds.
	if l := fn(start.Add(25 * time.Second)); l != peak {
		t.Fatalf("post-trace load = %v, want held peak %v", l, peak)
	}
	// With Loop set, time wraps to the beginning instead.
	loopCfg := cfg
	loopCfg.Loop = true
	loopFn := tr.LoadFunc(loopCfg, netsim.Fast100)
	if l := loopFn(start.Add(25 * time.Second)); l != fn(start.Add(5*time.Second)) {
		t.Fatalf("looped load = %v", l)
	}
}

func TestLoadFuncWithNetsimLink(t *testing.T) {
	// Integration: a loaded link is slower mid-trace than at the start.
	clk := netsim.NewVirtual()
	link := netsim.NewLink(netsim.Profile{Name: "flat", RateBps: 1e6}, clk, 3)
	tr := New([]Sample{
		{T: 0, Connections: 0},
		{T: 10 * time.Second, Connections: 20},
	})
	cfg := DefaultLoadConfig(link.Profile(), clk.Now())
	link.SetLoad(tr.LoadFunc(cfg, link.Profile()))
	early := link.TransferTime(100000)
	clk.Advance(12 * time.Second)
	late := link.TransferTime(100000)
	if late < early*5 {
		t.Fatalf("peak load should slow transfers: early=%v late=%v", early, late)
	}
}
