package datagen

import (
	"bytes"
	"testing"

	"ccx/internal/codec"
	"ccx/internal/sampling"
)

func TestMolecularDeterministic(t *testing.T) {
	a := Molecular(100, 7)
	b := Molecular(100, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical atoms")
		}
	}
	c := Molecular(100, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical atoms")
	}
}

func TestMolecularTypeAlphabet(t *testing.T) {
	atoms := Molecular(10000, 1)
	var counts [256]int
	for _, a := range atoms {
		counts[a.Type]++
	}
	for typ := len(elementWeights); typ < 256; typ++ {
		if counts[typ] != 0 {
			t.Fatalf("unexpected atom type %d", typ)
		}
	}
	// The most common element must dominate (skewed distribution).
	if counts[0] < counts[len(elementWeights)-1]*3 {
		t.Fatalf("type distribution not skewed: %v", counts[:len(elementWeights)])
	}
}

func TestMolecularBatchSize(t *testing.T) {
	atoms := Molecular(50, 2)
	batch, err := MolecularBatch(atoms)
	if err != nil {
		t.Fatal(err)
	}
	want := 50 * MolecularFormat().RecordSize()
	if len(batch) != want {
		t.Fatalf("batch = %d bytes, want %d", len(batch), want)
	}
}

// TestMolecularColumnCompressibility verifies the Figure 6 structure: type
// column ≪ velocity column < coordinate column in compressed ratio.
func TestMolecularColumnCompressibility(t *testing.T) {
	atoms := Molecular(20000, 3)
	types, vels, coords, err := MolecularColumns(atoms)
	if err != nil {
		t.Fatal(err)
	}
	ratio := func(data []byte) float64 {
		out, err := codec.Compress(codec.LempelZiv, data)
		if err != nil {
			t.Fatal(err)
		}
		return float64(len(out)) / float64(len(data))
	}
	rt, rv, rc := ratio(types), ratio(vels), ratio(coords)
	t.Logf("LZ ratios: types=%.3f velocities=%.3f coords=%.3f", rt, rv, rc)
	if rt > 0.5 {
		t.Errorf("type column ratio %.3f: should be highly compressible", rt)
	}
	if rc < 0.8 {
		t.Errorf("coordinate column ratio %.3f: should be nearly incompressible", rc)
	}
	if !(rt < rv && rv < rc) {
		t.Errorf("Figure 6 ordering violated: %.3f, %.3f, %.3f", rt, rv, rc)
	}
}

func TestOISTransactionsShape(t *testing.T) {
	data := OISTransactions(100000, 0.8, 5)
	if len(data) != 100000 {
		t.Fatalf("size = %d", len(data))
	}
	if !bytes.Contains(data, []byte("TXN")) || !bytes.Contains(data, []byte("flight=")) {
		t.Fatal("transaction structure missing")
	}
	// Deterministic.
	if !bytes.Equal(data, OISTransactions(100000, 0.8, 5)) {
		t.Fatal("not deterministic")
	}
}

// TestOISHighRepetition verifies the commercial dataset is LZ-friendly (the
// paper: "This data set has a high rate of strings repetitions, so the best
// methods to be used were Lempel-Ziv and Burrows-Wheeler").
func TestOISHighRepetition(t *testing.T) {
	data := OISTransactions(128*1024, 0.9, 11)
	rep := sampling.RepetitionScore(data)
	if rep < 0.5 {
		t.Fatalf("repetition score %.3f, want > 0.5", rep)
	}
	lzOut, _ := codec.Compress(codec.LempelZiv, data)
	hufOut, _ := codec.Compress(codec.Huffman, data)
	if len(lzOut) >= len(hufOut) {
		t.Fatalf("LZ (%d) should beat Huffman (%d) on repetitive commercial data", len(lzOut), len(hufOut))
	}
}

func TestOISRepetitionKnob(t *testing.T) {
	low := OISTransactions(64*1024, 0.0, 1)
	high := OISTransactions(64*1024, 0.95, 1)
	lzLow, _ := codec.Compress(codec.LempelZiv, low)
	lzHigh, _ := codec.Compress(codec.LempelZiv, high)
	if len(lzHigh) >= len(lzLow) {
		t.Fatalf("higher repetition should compress better: %d vs %d", len(lzHigh), len(lzLow))
	}
}

func TestXMLDocuments(t *testing.T) {
	data := XMLDocuments(50000, 4)
	if len(data) != 50000 {
		t.Fatalf("size = %d", len(data))
	}
	if !bytes.Contains(data, []byte("<txn")) {
		t.Fatal("missing XML structure")
	}
	out, _ := codec.Compress(codec.BurrowsWheeler, data)
	if ratio := float64(len(out)) / float64(len(data)); ratio > 0.25 {
		t.Fatalf("XML should be highly compressible, ratio %.3f", ratio)
	}
}

func TestLowEntropy(t *testing.T) {
	data := LowEntropy(64*1024, 4, 9)
	h := sampling.Entropy(data)
	if h > 2.01 || h < 1.9 {
		t.Fatalf("entropy of 4-symbol uniform data = %.3f, want ≈2", h)
	}
	if got := LowEntropy(10, 0, 1); len(got) != 10 {
		t.Fatal("alphabet clamp failed")
	}
}

func TestRandomIncompressible(t *testing.T) {
	data := Random(64*1024, 10)
	out, _ := codec.Compress(codec.LempelZiv, data)
	if len(out) < len(data) {
		t.Fatalf("random data compressed from %d to %d", len(data), len(out))
	}
}
