// Package datagen synthesizes the workloads of the paper's evaluation:
// molecular-dynamics frames (the scientific dataset of ref [4]), operational
// information system transactions (the commercial dataset of ref [2]), XML
// documents, and low-entropy / incompressible control streams.
//
// The paper's actual datasets are proprietary (a large company's OIS feed)
// or unavailable (the Georgia Tech MD runs), so these generators are tuned
// to reproduce the *compressibility structure* the paper reports: OIS data
// has heavy string repetition (LZ/BWT excel, Figure 2); MD coordinates are
// nearly incompressible, velocities middling, and atom types highly
// redundant (Figure 6). All generators are deterministic given a seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"ccx/internal/pbio"
)

// Atom is one particle of the molecular-dynamics workload.
type Atom struct {
	Type     uint8
	Velocity [3]float64
	Coord    [3]float64
}

// MolecularFormat is the PBIO record layout for Atom.
func MolecularFormat() *pbio.Format {
	return &pbio.Format{
		Name: "md_atom",
		Fields: []pbio.Field{
			{Name: "type", Kind: pbio.Uint8, Count: 1},
			{Name: "velocity", Kind: pbio.Float32, Count: 3},
			{Name: "coordinates", Kind: pbio.Float64, Count: 3},
		},
	}
}

// elementWeights skews the atom-type distribution: biomolecular systems are
// mostly H/C/O with traces of N/S, giving the low-entropy "type" stream of
// Figure 6.
var elementWeights = []int{50, 25, 15, 8, 2}

// Molecular generates n atoms of a molecular-dynamics frame. Coordinates
// follow a slow random walk, so consecutive float64 values share exponent
// and high-mantissa bytes while low-mantissa bytes stay random — the
// "nearly but not quite incompressible" regime of the paper's Figure 6.
// Velocities are Maxwell-Boltzmann-like float32 values quantized to a
// 1/512 grid (trajectory formats store reduced precision), giving moderate
// compressibility; types are drawn from a small skewed alphabet (low
// entropy).
func Molecular(n int, seed int64) []Atom {
	rng := rand.New(rand.NewSource(seed))
	atoms := make([]Atom, n)
	var pos [3]float64
	totalW := 0
	for _, w := range elementWeights {
		totalW += w
	}
	for i := range atoms {
		t := rng.Intn(totalW)
		typ := 0
		for acc := 0; typ < len(elementWeights); typ++ {
			acc += elementWeights[typ]
			if t < acc {
				break
			}
		}
		atoms[i].Type = uint8(typ)
		for d := 0; d < 3; d++ {
			v := rng.NormFloat64() * math.Sqrt(1.0/(float64(typ)+1))
			atoms[i].Velocity[d] = math.Round(v*512) / 512
			pos[d] += rng.NormFloat64() * 0.02
			atoms[i].Coord[d] = pos[d]
		}
	}
	return atoms
}

// MolecularBatch serializes atoms into one PBIO record batch.
func MolecularBatch(atoms []Atom) ([]byte, error) {
	f := MolecularFormat()
	rec := pbio.NewRecord(f)
	buf := make([]byte, 0, len(atoms)*f.RecordSize())
	var err error
	for _, a := range atoms {
		rec.Ints[0][0] = int64(a.Type)
		for d := 0; d < 3; d++ {
			rec.Floats[1][d] = a.Velocity[d]
			rec.Floats[2][d] = a.Coord[d]
		}
		buf, err = pbio.AppendRecord(buf, f, rec)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// MolecularColumns returns the three field-class streams of Figure 6:
// types, velocities and coordinates, each as packed bytes.
func MolecularColumns(atoms []Atom) (types, velocities, coords []byte, err error) {
	batch, err := MolecularBatch(atoms)
	if err != nil {
		return nil, nil, nil, err
	}
	f := MolecularFormat()
	if types, err = pbio.ExtractColumn(batch, f, 0); err != nil {
		return nil, nil, nil, err
	}
	if velocities, err = pbio.ExtractColumn(batch, f, 1); err != nil {
		return nil, nil, nil, err
	}
	if coords, err = pbio.ExtractColumn(batch, f, 2); err != nil {
		return nil, nil, nil, err
	}
	return types, velocities, coords, nil
}

// OIS workload vocabulary: airline-operations shaped, after the paper's
// reference [2] (an airline's operational information system).
var (
	oisEvents   = []string{"CHECKIN", "BOARDING", "REBOOK", "CANCEL", "UPGRADE", "BAGGAGE", "GATE_CHANGE", "DELAY"}
	oisAirports = []string{"ATL", "JFK", "LAX", "ORD", "DFW", "TLV", "CDG", "NRT", "SFO", "BOS"}
	oisCarriers = []string{"DL", "AA", "UA", "LY", "AF"}
	oisStatus   = []string{"OK", "HELD", "PENDING", "CONFIRMED"}
)

// OISTransactions generates approximately size bytes of transaction
// records with heavy string repetition. repetition ∈ [0,1] controls how
// often consecutive records reuse the previous record's flight context
// (higher = more repetitive = more LZ/BWT-friendly).
func OISTransactions(size int, repetition float64, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.Grow(size + 256)
	flight := ""
	seqno := 100000
	for b.Len() < size {
		if flight == "" || rng.Float64() > repetition {
			flight = fmt.Sprintf("%s%04d %s->%s",
				oisCarriers[rng.Intn(len(oisCarriers))], rng.Intn(10000),
				oisAirports[rng.Intn(len(oisAirports))], oisAirports[rng.Intn(len(oisAirports))])
		}
		seqno++
		fmt.Fprintf(&b, "TXN %d %s flight=%s pax=PX%05d seat=%d%c status=%s agent=GT%02d\n",
			seqno,
			oisEvents[rng.Intn(len(oisEvents))],
			flight,
			rng.Intn(100000),
			rng.Intn(40)+1, 'A'+byte(rng.Intn(6)),
			oisStatus[rng.Intn(len(oisStatus))],
			rng.Intn(30))
	}
	return []byte(b.String()[:size])
}

// XMLDocuments wraps OIS-like content in XML markup (the commercial/XML
// dataset class of the paper's abstract). Tag overhead raises repetition
// further.
func XMLDocuments(size int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.Grow(size + 512)
	b.WriteString("<?xml version=\"1.0\"?>\n<transactions>\n")
	for b.Len() < size {
		fmt.Fprintf(&b, "  <txn id=\"%d\">\n    <event>%s</event>\n    <carrier>%s</carrier>\n    <route from=\"%s\" to=\"%s\"/>\n    <status>%s</status>\n  </txn>\n",
			rng.Intn(1000000),
			oisEvents[rng.Intn(len(oisEvents))],
			oisCarriers[rng.Intn(len(oisCarriers))],
			oisAirports[rng.Intn(len(oisAirports))],
			oisAirports[rng.Intn(len(oisAirports))],
			oisStatus[rng.Intn(len(oisStatus))])
	}
	s := b.String()[:size]
	return []byte(s)
}

// LowEntropy generates size bytes drawn uniformly from an alphabet of the
// given cardinality — compressible by entropy coders but with little string
// structure beyond what chance provides.
func LowEntropy(size, alphabet int, seed int64) []byte {
	if alphabet < 1 {
		alphabet = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, size)
	for i := range out {
		out[i] = byte(rng.Intn(alphabet))
	}
	return out
}

// Random generates size bytes of incompressible data.
func Random(size int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, size)
	rng.Read(out)
	return out
}
