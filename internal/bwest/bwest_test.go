package bwest

import (
	"testing"
	"time"

	"ccx/internal/bwmon"
	"ccx/internal/netsim"
)

// flatProber reports a fixed service rate with no jitter.
type flatProber struct {
	rateBps float64
}

func (p flatProber) ServiceTime(n int) time.Duration {
	return time.Duration(float64(n) / p.rateBps * float64(time.Second))
}

func TestEstimateFlatPath(t *testing.T) {
	for _, rate := range []float64{0.1e6, 1e6, 7.52e6, 26.3e6} {
		got, err := (SLoPS{}).Estimate(flatProber{rateBps: rate})
		if err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		if got < rate*0.9 || got > rate*1.1 {
			t.Errorf("rate %v: estimated %v (%.1f%% off)", rate, got, (got/rate-1)*100)
		}
	}
}

func TestEstimateAboveSearchRange(t *testing.T) {
	s := SLoPS{MaxRate: 1e6}
	got, err := s.Estimate(flatProber{rateBps: 50e6})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1e6 {
		t.Fatalf("expected clamp to MaxRate, got %v", got)
	}
}

func TestEstimateDeadPath(t *testing.T) {
	_, err := (SLoPS{}).Estimate(flatProber{rateBps: 1})
	if err != ErrNoConvergence {
		t.Fatalf("got %v", err)
	}
}

func TestEstimateSimulatedLinks(t *testing.T) {
	for _, prof := range netsim.Profiles() {
		if prof.Name == "international" {
			continue // 46% jitter needs the loaded-link tolerance below
		}
		link := netsim.NewLink(prof, netsim.NewVirtual(), 7)
		got, err := (SLoPS{}).Estimate(LinkProber{Link: link})
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		if got < prof.RateBps*0.7 || got > prof.RateBps*1.3 {
			t.Errorf("%s: estimated %.3f MB/s, actual %.3f MB/s",
				prof.Name, got/1e6, prof.RateBps/1e6)
		}
	}
}

func TestEstimateTracksLoad(t *testing.T) {
	prof := netsim.Fast100
	link := netsim.NewLink(prof, netsim.NewVirtual(), 9)
	unloaded, err := (SLoPS{}).Estimate(LinkProber{Link: link})
	if err != nil {
		t.Fatal(err)
	}
	link.SetLoad(func(time.Time) float64 { return 0.5 })
	halfLoaded, err := (SLoPS{}).Estimate(LinkProber{Link: link})
	if err != nil {
		t.Fatal(err)
	}
	if halfLoaded > unloaded*0.7 {
		t.Fatalf("load not reflected: %.2f vs %.2f MB/s", halfLoaded/1e6, unloaded/1e6)
	}
	link.SetLoad(func(time.Time) float64 { return 0.9 })
	heavy, err := (SLoPS{}).Estimate(LinkProber{Link: link})
	if err != nil {
		t.Fatal(err)
	}
	if heavy >= halfLoaded {
		t.Fatalf("heavier load should lower estimate: %.2f vs %.2f MB/s", heavy/1e6, halfLoaded/1e6)
	}
}

func TestPCT(t *testing.T) {
	rising := []time.Duration{1, 2, 3, 4, 5}
	if p := pct(rising); p != 1 {
		t.Fatalf("rising pct = %v", p)
	}
	flat := []time.Duration{3, 3, 3, 3}
	if p := pct(flat); p != 0 {
		t.Fatalf("flat pct = %v", p)
	}
	if pct(nil) != 0 || pct([]time.Duration{1}) != 0 {
		t.Fatal("degenerate pct")
	}
}

// TestFeedsSelectorLoop closes the integration loop: an active estimate
// drives the goodput monitor exactly like passive block observations.
func TestFeedsSelectorLoop(t *testing.T) {
	link := netsim.NewLink(netsim.Slow1M, netsim.NewVirtual(), 3)
	est, err := (SLoPS{}).Estimate(LinkProber{Link: link})
	if err != nil {
		t.Fatal(err)
	}
	mon := bwmon.New(0)
	mon.ObserveRate(est)
	predicted := mon.SendTime(128 << 10)
	actual := time.Duration(float64(128<<10) / netsim.Slow1M.RateBps * float64(time.Second))
	if predicted < actual/2 || predicted > actual*2 {
		t.Fatalf("predicted send time %v vs actual %v", predicted, actual)
	}
}
