// Package bwest implements end-to-end available-bandwidth estimation in the
// style of Jain & Dovrolis's SLoPS/pathload (the paper's refs [12,13]).
// The paper's middleware architecture explicitly "accommodates ... different
// network measurement techniques"; this package is the pluggable
// alternative to the passive per-block monitor (internal/bwmon): instead of
// waiting for data blocks to reveal the rate, it actively probes with
// periodic packet streams and binary-searches the rate at which one-way
// delays start trending upward.
//
// The estimator runs against anything that can report per-packet service
// times — a simulated link (netsim), or measurements harvested from a real
// path.
package bwest

import (
	"errors"
	"math"
	"time"

	"ccx/internal/netsim"
)

// Prober abstracts the path under measurement: the time the bottleneck
// needs to serialize one packet of n bytes at this instant.
type Prober interface {
	ServiceTime(n int) time.Duration
}

// LinkProber adapts a simulated link to the Prober interface.
type LinkProber struct {
	Link *netsim.Link
}

// ServiceTime implements Prober by sampling the link's instantaneous
// available rate.
func (p LinkProber) ServiceTime(n int) time.Duration {
	rate := p.Link.AvailableRate()
	if rate <= 0 {
		return time.Hour
	}
	return time.Duration(float64(n) / rate * float64(time.Second))
}

// ErrNoConvergence is returned when the search range never brackets the
// available bandwidth.
var ErrNoConvergence = errors.New("bwest: estimate did not converge")

// SLoPS is a self-loading periodic-stream estimator.
type SLoPS struct {
	// PacketSize is the probe packet size in bytes (default 1472, an
	// Ethernet-MTU UDP payload).
	PacketSize int
	// StreamLen is packets per probing stream (default 100, the pathload
	// fleet size).
	StreamLen int
	// MinRate and MaxRate bracket the binary search in bytes/s
	// (defaults 10 kB/s and 1 GB/s).
	MinRate, MaxRate float64
	// Iterations bounds the binary search (default 24; the search runs in
	// log space, so this resolves any rate in [MinRate,MaxRate] to ≪1 %).
	Iterations int
	// IncreaseThreshold is the pairwise-comparison fraction above which a
	// delay series counts as trending upward (default 0.66, the PCT
	// threshold from the paper's refs).
	IncreaseThreshold float64
}

func (s SLoPS) withDefaults() SLoPS {
	if s.PacketSize <= 0 {
		s.PacketSize = 1472
	}
	if s.StreamLen <= 1 {
		s.StreamLen = 100
	}
	if s.MinRate <= 0 {
		s.MinRate = 10e3
	}
	if s.MaxRate <= s.MinRate {
		s.MaxRate = 1e9
	}
	if s.Iterations <= 0 {
		s.Iterations = 24
	}
	if s.IncreaseThreshold <= 0 || s.IncreaseThreshold >= 1 {
		s.IncreaseThreshold = 0.66
	}
	return s
}

// Estimate returns the available bandwidth in bytes/s.
func (s SLoPS) Estimate(path Prober) (float64, error) {
	s = s.withDefaults()
	lo, hi := s.MinRate, s.MaxRate
	// Verify the bracket: the path must self-load at hi and drain at lo.
	if !s.loaded(path, hi) {
		// Even the maximum rate doesn't build a queue: available bandwidth
		// is at or above MaxRate.
		return s.MaxRate, nil
	}
	if s.loaded(path, lo) {
		return 0, ErrNoConvergence
	}
	// Rates span decades, so bisect geometrically: the relative resolution
	// after k steps is (hi/lo)^(1/2^k) regardless of where the answer sits.
	for i := 0; i < s.Iterations; i++ {
		mid := math.Sqrt(lo * hi)
		if s.loaded(path, mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return math.Sqrt(lo * hi), nil
}

// loaded sends one periodic stream at the given rate and reports whether
// one-way delays trend upward (rate exceeds available bandwidth).
func (s SLoPS) loaded(path Prober, rate float64) bool {
	gap := time.Duration(float64(s.PacketSize) / rate * float64(time.Second))
	delays := make([]time.Duration, s.StreamLen)
	var busyUntil time.Duration
	for i := 0; i < s.StreamLen; i++ {
		depart := time.Duration(i) * gap
		if depart > busyUntil {
			busyUntil = depart
		}
		busyUntil += path.ServiceTime(s.PacketSize)
		delays[i] = busyUntil - depart
	}
	return pct(delays) > s.IncreaseThreshold
}

// pct is the pairwise comparison test statistic: the fraction of
// consecutive delay pairs that strictly increase. ≈0.5 for noise, →1 for a
// self-loading stream.
func pct(delays []time.Duration) float64 {
	if len(delays) < 2 {
		return 0
	}
	inc := 0
	for i := 1; i < len(delays); i++ {
		if delays[i] > delays[i-1] {
			inc++
		}
	}
	return float64(inc) / float64(len(delays)-1)
}
