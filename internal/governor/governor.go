// Package governor is the process-wide overload governor: it samples the
// resources a broker daemon actually runs out of — heap against a memory
// budget (GOMEMLIMIT or an explicit cap), aggregate queued/cached bytes
// across replay rings, shared-frame caches, and subscriber queues, and CPU
// saturation via the encode pipeline's head-of-line wait — and publishes a
// hysteresis-smoothed pressure level per dimension plus an overall level.
//
// The paper's premise (§2.5) is that compression adapts to *current
// resources*; the governor extends that from the per-path selection loop to
// the whole process. Consumers react per dimension:
//
//   - CPU pressure constrains the selector's method ladder (BWT→LZ→
//     Huffman→None) through the core.MethodLimiter hook — the engine keeps
//     deciding per path, the governor only caps how expensive the choice
//     may be;
//   - memory pressure shrinks replay rings and frame caches toward floors
//     and makes the broker shed load: refuse new subscriptions with an
//     explicit RETRY-AFTER reply and evict the slowest queues.
//
// Levels rise immediately and fall only after Hold consecutive calm
// samples below the entry threshold by a margin, so a load spike flapping
// around a threshold cannot thrash the degradation machinery. Every
// sample, level, and transition is observable (governor.* gauges/counters,
// pressure-transition anomaly spans, the ccstat "prs" column).
package governor

import (
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"ccx/internal/codec"
	"ccx/internal/metrics"
	"ccx/internal/tracing"
)

// Level is a pressure reading: ok, elevated, critical.
type Level int32

const (
	// LevelOK is normal operation: no degradation anywhere.
	LevelOK Level = iota
	// LevelElevated is sustained pressure: degrade what is cheap to degrade
	// (method cap at LZ, caches/rings at half budget).
	LevelElevated
	// LevelCritical is resource exhaustion territory: shed load (refuse new
	// subscribers, evict the slowest), cap methods at Huffman, shrink
	// retention to floors.
	LevelCritical
)

// String renders the level the way ccstat and logs show it.
func (l Level) String() string {
	switch l {
	case LevelOK:
		return "ok"
	case LevelElevated:
		return "elevated"
	case LevelCritical:
		return "critical"
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// Defaults for Config zero values.
const (
	DefaultInterval     = 250 * time.Millisecond
	DefaultElevatedFrac = 0.65
	DefaultCriticalFrac = 0.85
	// DefaultDownFrac is the hysteresis margin: a dimension steps down only
	// once its signal sits below threshold*DownFrac for Hold samples.
	DefaultDownFrac    = 0.90
	DefaultHold        = 1
	DefaultCPUElevated = 10 * time.Millisecond
	DefaultCPUCritical = 100 * time.Millisecond
)

// Snapshot is one sample's readings.
type Snapshot struct {
	Level    Level // max of the per-dimension levels
	Mem, CPU Level
	// Heap is the sampled heap allocation, Queued the aggregate
	// queued/cached bytes reported by the QueuedBytes source.
	Heap, Queued int64
	// PipeWait is the decayed pipeline-wait EWMA driving the CPU dimension.
	PipeWait time.Duration
}

// Change describes one overall-level transition.
type Change struct {
	From, To Level
	Snapshot
}

// Config assembles a Governor.
type Config struct {
	// MemBudget is the heap budget in bytes. 0 reads GOMEMLIMIT (via
	// runtime/debug.SetMemoryLimit) and disables the heap dimension when no
	// limit is set; negative disables it unconditionally.
	MemBudget int64
	// BytesBudget bounds the aggregate queued/cached bytes reported by
	// QueuedBytes (replay rings + frame caches + live shared frames).
	// 0 disables the dimension.
	BytesBudget int64
	// ElevatedFrac and CriticalFrac are the budget fractions at which the
	// memory dimensions enter elevated/critical (defaults 0.65/0.85).
	ElevatedFrac, CriticalFrac float64
	// DownFrac scales the entry thresholds for stepping back down
	// (hysteresis band; default 0.90).
	DownFrac float64
	// Hold is how many consecutive calm samples a dimension needs before
	// stepping down a level (default 1: recovery within one interval).
	Hold int
	// CPUElevated and CPUCritical are pipeline-wait EWMA thresholds for the
	// CPU dimension (defaults 10ms/100ms). Pipeline wait is how long
	// finished encodes stall waiting for the in-order sequencer — near zero
	// while the encode pool keeps up, and the first thing to grow when the
	// CPU saturates.
	CPUElevated, CPUCritical time.Duration
	// Interval is the sampling period (default 250ms).
	Interval time.Duration
	// QueuedBytes reports the process's aggregate queued/cached bytes
	// (nil: the bytes dimension reads 0).
	QueuedBytes func() int64
	// QueuedBytesByShard, when non-nil, replaces QueuedBytes with a sharded
	// ledger: one queued/cached byte count per broker shard, read in one
	// call. The sampler uses the exact sum — sharding the accounting must
	// not change a single sampled value, which the broker's property tests
	// assert at every quiesce point. It also publishes each shard's reading
	// (governor.shard_queued_max_bytes tracks the widest shard) so a skewed
	// shard is visible even when the sum looks calm.
	QueuedBytesByShard func() []int64
	// HeapBytes overrides the heap source, for tests (nil: runtime
	// MemStats.HeapAlloc).
	HeapBytes func() int64
	// Metrics receives governor.* gauges and counters (nil = private).
	Metrics *metrics.Registry
	// Tracer records pressure-transition anomaly spans. nil disables.
	Tracer *tracing.Tracer
	// OnChange fires on every overall-level transition, OnSample after
	// every sample, both on the sampling goroutine (or inside SampleNow).
	// Keep them non-blocking.
	OnChange func(Change)
	OnSample func(Snapshot)
	// Logf logs transitions (nil = silent).
	Logf func(format string, args ...any)
}

// dimension is one pressure signal's smoothed state.
type dimension struct {
	level Level
	calm  int // consecutive samples clear of the current level's band
}

// Governor samples resource pressure and publishes levels. Create with
// New; Level/Memory/CPU/MethodCap are safe from any goroutine.
type Governor struct {
	cfg       Config
	memBudget int64 // resolved heap budget (0 = dimension off)

	level atomic.Int32 // overall
	mem   atomic.Int32
	cpu   atomic.Int32

	pw pipeWait

	// smu serializes samples (ticker vs SampleNow in tests).
	smu      sync.Mutex
	memDim   dimension
	cpuDim   dimension
	lastSnap Snapshot

	levelG    *metrics.Gauge
	memG      *metrics.Gauge
	cpuG      *metrics.Gauge
	heapG     *metrics.Gauge
	queuedG   *metrics.Gauge
	shardMaxG *metrics.Gauge
	pipeWaitG *metrics.Gauge
	samples   *metrics.Counter
	trans     *metrics.Counter
	demoted   *metrics.Counter
	shedSubs  *metrics.Counter
	shedEvict *metrics.Counter
	breaker   *metrics.Counter

	startMu sync.Mutex
	done    chan struct{}
	wg      sync.WaitGroup
}

// New resolves cfg and builds a Governor (not yet sampling — call Start,
// or drive SampleNow directly in tests).
func New(cfg Config) *Governor {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.ElevatedFrac <= 0 {
		cfg.ElevatedFrac = DefaultElevatedFrac
	}
	if cfg.CriticalFrac <= 0 {
		cfg.CriticalFrac = DefaultCriticalFrac
	}
	if cfg.DownFrac <= 0 || cfg.DownFrac >= 1 {
		cfg.DownFrac = DefaultDownFrac
	}
	if cfg.Hold <= 0 {
		cfg.Hold = DefaultHold
	}
	if cfg.CPUElevated <= 0 {
		cfg.CPUElevated = DefaultCPUElevated
	}
	if cfg.CPUCritical <= 0 {
		cfg.CPUCritical = DefaultCPUCritical
	}
	if cfg.HeapBytes == nil {
		cfg.HeapBytes = heapAlloc
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	met := cfg.Metrics
	if met == nil {
		met = metrics.NewRegistry()
	}
	g := &Governor{
		cfg:       cfg,
		memBudget: resolveMemBudget(cfg.MemBudget),

		levelG:    met.Gauge("governor.level"),
		memG:      met.Gauge("governor.mem_level"),
		cpuG:      met.Gauge("governor.cpu_level"),
		heapG:     met.Gauge("governor.heap_bytes"),
		queuedG:   met.Gauge("governor.queued_bytes"),
		shardMaxG: met.Gauge("governor.shard_queued_max_bytes"),
		pipeWaitG: met.Gauge("governor.pipe_wait_ns"),
		samples:   met.Counter("governor.samples"),
		trans:     met.Counter("governor.transitions"),
		demoted:   met.Counter("governor.demoted_blocks"),
		shedSubs:  met.Counter("governor.shed_subscribes"),
		shedEvict: met.Counter("governor.shed_evictions"),
		breaker:   met.Counter("governor.breaker_trips"),
	}
	met.Gauge("governor.mem_budget_bytes").Set(g.memBudget)
	met.Gauge("governor.bytes_budget_bytes").Set(cfg.BytesBudget)
	return g
}

// resolveMemBudget turns the configured budget into an effective one:
// explicit positive wins, 0 falls back to GOMEMLIMIT, negative (or no
// GOMEMLIMIT) disables the heap dimension.
func resolveMemBudget(configured int64) int64 {
	if configured > 0 {
		return configured
	}
	if configured < 0 {
		return 0
	}
	// SetMemoryLimit with a negative input reports the current limit
	// without changing it; math.MaxInt64 means "no limit configured".
	if lim := debug.SetMemoryLimit(-1); lim > 0 && lim < math.MaxInt64 {
		return lim
	}
	return 0
}

// heapAlloc is the default heap source. ReadMemStats stops the world for
// microseconds; at the default 250ms interval that is noise.
func heapAlloc() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// Start launches the sampling loop. Stop undoes it; Start after Stop
// restarts.
func (g *Governor) Start() {
	g.startMu.Lock()
	defer g.startMu.Unlock()
	if g.done != nil {
		return
	}
	done := make(chan struct{})
	g.done = done
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		t := time.NewTicker(g.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				g.SampleNow()
			}
		}
	}()
}

// Stop halts the sampling loop and waits for it to exit.
func (g *Governor) Stop() {
	g.startMu.Lock()
	done := g.done
	g.done = nil
	g.startMu.Unlock()
	if done == nil {
		return
	}
	close(done)
	g.wg.Wait()
}

// Interval returns the effective sampling period.
func (g *Governor) Interval() time.Duration { return g.cfg.Interval }

// Level returns the overall pressure level (max across dimensions).
func (g *Governor) Level() Level { return Level(g.level.Load()) }

// Memory returns the memory dimension's level (worst of heap-vs-budget
// and queued-bytes-vs-budget).
func (g *Governor) Memory() Level { return Level(g.mem.Load()) }

// CPU returns the CPU dimension's level (pipeline-wait EWMA).
func (g *Governor) CPU() Level { return Level(g.cpu.Load()) }

// NotePipeWait feeds one block's pipeline head-of-line wait into the CPU
// signal. Call it from encode sequencers; it is cheap and concurrent-safe.
func (g *Governor) NotePipeWait(d time.Duration) { g.pw.note(d) }

// MethodCap returns the heaviest compression method currently permitted:
// ok caps nothing, elevated caps at Lempel-Ziv (demoting BWT), critical
// caps at Huffman. The bool reports whether a cap is in force.
func (g *Governor) MethodCap() (codec.Method, bool) {
	switch g.CPU() {
	case LevelElevated:
		return codec.LempelZiv, true
	case LevelCritical:
		return codec.Huffman, true
	}
	return codec.None, false
}

// CapMethod implements core.MethodLimiter against the CPU dimension.
func (g *Governor) CapMethod() (codec.Method, string, bool) {
	m, ok := g.MethodCap()
	if !ok {
		return 0, "", false
	}
	return m, "cpu " + g.CPU().String(), true
}

// NoteDemoted implements core.MethodLimiter: one block's selection was
// demoted down the ladder under the current cap.
func (g *Governor) NoteDemoted(from, to codec.Method) { g.demoted.Inc() }

// NoteShedSubscribe counts one subscription refused by admission control.
func (g *Governor) NoteShedSubscribe() { g.shedSubs.Inc() }

// NoteShedEviction counts one subscriber evicted to relieve pressure.
func (g *Governor) NoteShedEviction() { g.shedEvict.Inc() }

// NoteBreakerTrip counts one slow-subscriber circuit-breaker trip.
func (g *Governor) NoteBreakerTrip() { g.breaker.Inc() }

// Demoted reports how many block selections were demoted so far.
func (g *Governor) Demoted() int64 { return g.demoted.Value() }

// SampleNow takes one synchronous sample, updates levels/metrics, and
// fires hooks. The ticker calls it; tests call it directly for
// deterministic stepping.
func (g *Governor) SampleNow() Snapshot {
	g.smu.Lock()
	defer g.smu.Unlock()

	snap := Snapshot{
		Heap:     g.cfg.HeapBytes(),
		PipeWait: g.pw.tick(),
	}
	switch {
	case g.cfg.QueuedBytesByShard != nil:
		// Sharded ledger: the signal is the exact sum of the per-shard
		// readings — identical to what a single global ledger would report.
		var max int64
		for _, v := range g.cfg.QueuedBytesByShard() {
			snap.Queued += v
			if v > max {
				max = v
			}
		}
		g.shardMaxG.Set(max)
	case g.cfg.QueuedBytes != nil:
		snap.Queued = g.cfg.QueuedBytes()
	}

	// Memory: the worst of heap-vs-budget and queued-bytes-vs-budget, each
	// with the same fractional thresholds.
	memSig := 0.0
	if g.memBudget > 0 {
		memSig = float64(snap.Heap) / float64(g.memBudget)
	}
	if g.cfg.BytesBudget > 0 {
		if s := float64(snap.Queued) / float64(g.cfg.BytesBudget); s > memSig {
			memSig = s
		}
	}
	snap.Mem = g.step(&g.memDim, memSig, g.cfg.ElevatedFrac, g.cfg.CriticalFrac)
	snap.CPU = g.step(&g.cpuDim, float64(snap.PipeWait),
		float64(g.cfg.CPUElevated), float64(g.cfg.CPUCritical))
	snap.Level = snap.Mem
	if snap.CPU > snap.Level {
		snap.Level = snap.CPU
	}

	prev := Level(g.level.Load())
	g.mem.Store(int32(snap.Mem))
	g.cpu.Store(int32(snap.CPU))
	g.level.Store(int32(snap.Level))

	g.heapG.Set(snap.Heap)
	g.queuedG.Set(snap.Queued)
	g.pipeWaitG.Set(int64(snap.PipeWait))
	g.memG.Set(int64(snap.Mem))
	g.cpuG.Set(int64(snap.CPU))
	g.levelG.Set(int64(snap.Level))
	g.samples.Inc()
	g.lastSnap = snap

	if snap.Level != prev {
		g.trans.Inc()
		g.cfg.Logf("governor: pressure %s -> %s (heap=%d queued=%d pipewait=%v mem=%s cpu=%s)",
			prev, snap.Level, snap.Heap, snap.Queued, snap.PipeWait, snap.Mem, snap.CPU)
		// Pressure transitions are always-on traced anomalies: they are the
		// moments degradation machinery engages or releases.
		g.cfg.Tracer.Record(tracing.Span{
			Stream:  "governor",
			Stage:   tracing.StagePressure,
			Start:   time.Now().UnixNano(),
			Bytes:   int(snap.Queued),
			Err:     fmt.Sprintf("%s -> %s (mem %s, cpu %s)", prev, snap.Level, snap.Mem, snap.CPU),
			Anomaly: snap.Level > LevelOK,
		})
		if g.cfg.OnChange != nil {
			g.cfg.OnChange(Change{From: prev, To: snap.Level, Snapshot: snap})
		}
	}
	if g.cfg.OnSample != nil {
		g.cfg.OnSample(snap)
	}
	return snap
}

// step advances one dimension: the level rises the moment the signal
// crosses an entry threshold, and falls only after Hold consecutive
// samples with the signal clear of the band (below threshold*DownFrac) —
// the hysteresis that keeps a flapping signal from thrashing consumers.
func (g *Governor) step(d *dimension, sig, elevated, critical float64) Level {
	target := LevelOK
	switch {
	case sig >= critical:
		target = LevelCritical
	case sig >= elevated:
		target = LevelElevated
	}
	if target >= d.level {
		d.level, d.calm = target, 0
		return d.level
	}
	// Candidate step-down with the margin applied.
	down := LevelOK
	switch {
	case sig >= critical*g.cfg.DownFrac:
		down = LevelCritical
	case sig >= elevated*g.cfg.DownFrac:
		down = LevelElevated
	}
	if down >= d.level {
		d.calm = 0 // inside the hysteresis band: hold the level
		return d.level
	}
	d.calm++
	if d.calm >= g.cfg.Hold {
		d.level, d.calm = down, 0
	}
	return d.level
}

// pipeWait is the CPU signal: an EWMA of pipeline head-of-line waits that
// decays toward zero on samples with no observations — a saturated pool
// that went idle must read as recovered, not stuck at its last agony.
type pipeWait struct {
	mu   sync.Mutex
	val  float64 // nanoseconds
	init bool
	seen bool // observation since the last tick
}

func (w *pipeWait) note(d time.Duration) {
	if d < 0 {
		d = 0
	}
	w.mu.Lock()
	if !w.init {
		w.val, w.init = float64(d), true
	} else {
		w.val = 0.2*float64(d) + 0.8*w.val
	}
	w.seen = true
	w.mu.Unlock()
}

// tick returns the current EWMA, halving it first when no observation
// arrived since the previous tick (idle decay).
func (w *pipeWait) tick() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.seen {
		w.val *= 0.5
		if w.val < float64(time.Microsecond) {
			w.val = 0
		}
	}
	w.seen = false
	return time.Duration(w.val)
}
