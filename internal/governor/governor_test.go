package governor

import (
	"testing"
	"time"

	"ccx/internal/codec"
	"ccx/internal/metrics"
	"ccx/internal/tracing"
)

// fakeSource is an adjustable byte source for deterministic sampling.
type fakeSource struct{ v int64 }

func (f *fakeSource) get() int64 { return f.v }

func newTestGov(t *testing.T, heap, queued *fakeSource, cfg Config) *Governor {
	t.Helper()
	if heap != nil {
		cfg.HeapBytes = heap.get
	} else {
		cfg.HeapBytes = func() int64 { return 0 }
	}
	if queued != nil {
		cfg.QueuedBytes = queued.get
	}
	return New(cfg)
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{LevelOK: "ok", LevelElevated: "elevated", LevelCritical: "critical", Level(7): "level(7)"} {
		if got := l.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", l, got, want)
		}
	}
}

func TestMemoryLevelsAndHysteresis(t *testing.T) {
	heap := &fakeSource{}
	g := newTestGov(t, heap, nil, Config{MemBudget: 1000, Hold: 2})

	heap.v = 100
	if s := g.SampleNow(); s.Level != LevelOK {
		t.Fatalf("10%% of budget: level %v, want ok", s.Level)
	}
	heap.v = 700 // >= 0.65
	if s := g.SampleNow(); s.Mem != LevelElevated || s.Level != LevelElevated {
		t.Fatalf("70%% of budget: level %v, want elevated", s.Level)
	}
	heap.v = 900 // >= 0.85
	if s := g.SampleNow(); s.Mem != LevelCritical {
		t.Fatalf("90%% of budget: level %v, want critical", s.Mem)
	}

	// Inside the hysteresis band (>= 0.85*0.90 = 765): hold critical forever.
	heap.v = 800
	for i := 0; i < 5; i++ {
		if s := g.SampleNow(); s.Mem != LevelCritical {
			t.Fatalf("sample %d inside band: level %v, want critical held", i, s.Mem)
		}
	}

	// Clear of the critical band but inside elevated: needs Hold=2 samples.
	heap.v = 700
	if s := g.SampleNow(); s.Mem != LevelCritical {
		t.Fatalf("first calm sample: level %v, want critical (hold)", s.Mem)
	}
	if s := g.SampleNow(); s.Mem != LevelElevated {
		t.Fatalf("second calm sample: level %v, want elevated", s.Mem)
	}

	// Drop to nothing: two more samples to reach ok.
	heap.v = 0
	g.SampleNow()
	if s := g.SampleNow(); s.Mem != LevelOK {
		t.Fatalf("after drain: level %v, want ok", s.Mem)
	}
}

func TestQueuedBytesDimension(t *testing.T) {
	queued := &fakeSource{}
	g := newTestGov(t, nil, queued, Config{MemBudget: -1, BytesBudget: 1 << 20})

	queued.v = 1 << 19
	if s := g.SampleNow(); s.Level != LevelOK {
		t.Fatalf("half budget: %v, want ok", s.Level)
	}
	queued.v = (1 << 20) + 1
	s := g.SampleNow()
	if s.Mem != LevelCritical {
		t.Fatalf("past budget: mem %v, want critical", s.Mem)
	}
	if g.Memory() != LevelCritical || g.Level() != LevelCritical {
		t.Fatalf("getters: mem %v level %v, want critical", g.Memory(), g.Level())
	}
	// With Hold=1, one quiet sample steps down one level per sample.
	queued.v = 0
	g.SampleNow()
	if s := g.SampleNow(); s.Level != LevelOK {
		t.Fatalf("recovery: %v, want ok within two samples", s.Level)
	}
}

// TestShardedQueuedBytesSumsExactly pins the sharded-ledger contract: the
// sampler's queued signal is the exact sum of the per-shard readings (a
// global QueuedBytes source is ignored when the sharded one is set), the
// widest shard is published, and the level thresholds fire on the sum.
func TestShardedQueuedBytesSumsExactly(t *testing.T) {
	met := metrics.NewRegistry()
	shards := []int64{0, 0, 0, 0}
	g := New(Config{
		MemBudget:   -1,
		BytesBudget: 1 << 20,
		Metrics:     met,
		HeapBytes:   func() int64 { return 0 },
		QueuedBytes: func() int64 { t.Error("global QueuedBytes called despite sharded source"); return 0 },
		QueuedBytesByShard: func() []int64 {
			out := make([]int64, len(shards))
			copy(out, shards)
			return out
		},
	})

	shards = []int64{100, 200, 300, 400}
	if s := g.SampleNow(); s.Queued != 1000 {
		t.Fatalf("Queued = %d, want the exact shard sum 1000", s.Queued)
	}
	if v := met.Gauge("governor.shard_queued_max_bytes").Value(); v != 400 {
		t.Fatalf("shard_queued_max_bytes = %d, want 400", v)
	}

	// Per-shard values each under every threshold, but the sum critical:
	// the dimension must trip on the aggregate, not the widest shard.
	per := int64((1 << 20) / 4)
	shards = []int64{per, per, per, per}
	if s := g.SampleNow(); s.Mem != LevelCritical {
		t.Fatalf("sum at budget: mem %v, want critical", s.Mem)
	}
	if v := met.Gauge("governor.queued_bytes").Value(); v != 4*per {
		t.Fatalf("queued_bytes gauge = %d, want %d", v, 4*per)
	}
	shards = []int64{0, 0, 0, 0}
	g.SampleNow()
	if s := g.SampleNow(); s.Mem != LevelOK {
		t.Fatalf("after drain: mem %v, want ok", s.Mem)
	}
}

func TestCPUPressureAndMethodCap(t *testing.T) {
	g := newTestGov(t, nil, nil, Config{MemBudget: -1})

	if _, ok := g.MethodCap(); ok {
		t.Fatal("idle governor should not cap methods")
	}

	// Sustained ~50ms pipeline waits: elevated (>=10ms, <100ms).
	for i := 0; i < 8; i++ {
		g.NotePipeWait(50 * time.Millisecond)
	}
	if s := g.SampleNow(); s.CPU != LevelElevated {
		t.Fatalf("50ms EWMA: cpu %v, want elevated", s.CPU)
	}
	if m, ok := g.MethodCap(); !ok || m != codec.LempelZiv {
		t.Fatalf("elevated cap = %v,%v, want lz,true", m, ok)
	}
	if m, cause, ok := g.CapMethod(); !ok || m != codec.LempelZiv || cause != "cpu elevated" {
		t.Fatalf("CapMethod = %v,%q,%v", m, cause, ok)
	}

	// Saturation: 300ms waits push the EWMA past critical.
	for i := 0; i < 16; i++ {
		g.NotePipeWait(300 * time.Millisecond)
	}
	if s := g.SampleNow(); s.CPU != LevelCritical {
		t.Fatalf("300ms EWMA: cpu %v, want critical", s.CPU)
	}
	if m, ok := g.MethodCap(); !ok || m != codec.Huffman {
		t.Fatalf("critical cap = %v,%v, want huffman,true", m, ok)
	}

	// Idle decay: no observations → EWMA halves each tick and the level
	// steps back down without any NotePipeWait call.
	for i := 0; i < 40 && g.CPU() != LevelOK; i++ {
		g.SampleNow()
	}
	if g.CPU() != LevelOK {
		t.Fatalf("cpu stuck at %v after idle decay", g.CPU())
	}
	if _, ok := g.MethodCap(); ok {
		t.Fatal("recovered governor must not cap methods")
	}
}

func TestTransitionsMetricsAndSpans(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := tracing.New("test", 0, 64)
	heap := &fakeSource{}
	var changes []Change
	g := newTestGov(t, heap, nil, Config{
		MemBudget: 1000,
		Metrics:   reg,
		Tracer:    tr,
		OnChange:  func(c Change) { changes = append(changes, c) },
	})

	heap.v = 900
	g.SampleNow()
	heap.v = 0
	g.SampleNow()
	g.SampleNow() // critical → elevated → ok with Hold=1... two down-steps
	g.SampleNow()

	snap := reg.Snapshot()
	if snap["governor.transitions"] < 2 {
		t.Fatalf("transitions = %v, want >= 2 (up and back down)", snap["governor.transitions"])
	}
	if snap["governor.samples"] != 4 {
		t.Fatalf("samples = %v, want 4", snap["governor.samples"])
	}
	if snap["governor.mem_budget_bytes"] != 1000 {
		t.Fatalf("mem_budget gauge = %v", snap["governor.mem_budget_bytes"])
	}
	if len(changes) < 2 || changes[0].To != LevelCritical {
		t.Fatalf("OnChange sequence = %+v", changes)
	}

	var pressure, anomalies int
	for _, s := range tr.Ring().Recent(0) {
		if s.Stage == tracing.StagePressure {
			pressure++
			if s.Anomaly {
				anomalies++
			}
		}
	}
	if pressure < 2 || anomalies < 1 {
		t.Fatalf("pressure spans = %d (anomalies %d), want >=2 with >=1 anomaly", pressure, anomalies)
	}
}

func TestNoteCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	g := newTestGov(t, nil, nil, Config{MemBudget: -1, Metrics: reg})
	g.NoteDemoted(codec.BurrowsWheeler, codec.LempelZiv)
	g.NoteDemoted(codec.LempelZiv, codec.Huffman)
	g.NoteShedSubscribe()
	g.NoteShedEviction()
	g.NoteBreakerTrip()
	snap := reg.Snapshot()
	if snap["governor.demoted_blocks"] != 2 || g.Demoted() != 2 {
		t.Fatalf("demoted = %v / %d", snap["governor.demoted_blocks"], g.Demoted())
	}
	for name, want := range map[string]float64{
		"governor.shed_subscribes": 1,
		"governor.shed_evictions":  1,
		"governor.breaker_trips":   1,
	} {
		if snap[name] != want {
			t.Fatalf("%s = %v, want %v", name, snap[name], want)
		}
	}
}

func TestStartStopTicker(t *testing.T) {
	heap := &fakeSource{v: 999}
	reg := metrics.NewRegistry()
	g := newTestGov(t, heap, nil, Config{MemBudget: 1000, Interval: time.Millisecond, Metrics: reg})
	g.Start()
	g.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for g.Level() != LevelCritical && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if g.Level() != LevelCritical {
		t.Fatal("ticker never sampled to critical")
	}
	g.Stop()
	g.Stop() // idempotent
	n := reg.Snapshot()["governor.samples"]
	time.Sleep(5 * time.Millisecond)
	if got := reg.Snapshot()["governor.samples"]; got != n {
		t.Fatalf("samples advanced after Stop: %v -> %v", n, got)
	}
}

func TestResolveMemBudget(t *testing.T) {
	if got := resolveMemBudget(42); got != 42 {
		t.Fatalf("explicit budget: %d", got)
	}
	if got := resolveMemBudget(-1); got != 0 {
		t.Fatalf("disabled budget: %d", got)
	}
	// 0 falls back to GOMEMLIMIT; without one set the dimension is off.
	// (CI's soak job sets GOMEMLIMIT, so accept either outcome — just not
	// a negative.)
	if got := resolveMemBudget(0); got < 0 {
		t.Fatalf("GOMEMLIMIT fallback negative: %d", got)
	}
}
