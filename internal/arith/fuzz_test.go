package arith

import (
	"bytes"
	"testing"
)

// FuzzArithDecode feeds arbitrary bytes to both the order-0 and order-1
// decoders. Arithmetic decoding happily "decodes" random bit streams into
// random symbols — that is fine; what must never happen is a panic, a hang,
// or output of a length other than the claimed one on success.
func FuzzArithDecode(f *testing.F) {
	seeds := [][]byte{
		nil,
		[]byte("e"),
		[]byte("an arithmetic coder models symbol probabilities adaptively"),
		bytes.Repeat([]byte("ratio "), 80),
	}
	for _, s := range seeds {
		comp, err := Compress(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(comp, len(s))
		comp1, err := CompressOrder1(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(comp1, len(s))
	}
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef}, 32)

	f.Fuzz(func(t *testing.T, data []byte, origLen int) {
		if origLen < 0 || origLen > 1<<20 {
			return
		}
		if out, err := Decompress(data, origLen); err == nil && len(out) != origLen {
			t.Fatalf("order-0 decoded %d bytes, claimed %d", len(out), origLen)
		}
		if out, err := DecompressOrder1(data, origLen); err == nil && len(out) != origLen {
			t.Fatalf("order-1 decoded %d bytes, claimed %d", len(out), origLen)
		}
	})
}
