package arith

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundtrip(t *testing.T, data []byte) {
	t.Helper()
	out, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(out, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatalf("roundtrip mismatch (len %d)", len(data))
	}
}

func TestRoundtripBasic(t *testing.T) {
	roundtrip(t, []byte("hello arithmetic coding world, hello again"))
}

func TestRoundtripEmpty(t *testing.T) {
	out, err := Compress(nil)
	if err != nil || out != nil {
		t.Fatalf("Compress(nil) = %v, %v", out, err)
	}
	back, err := Decompress(nil, 0)
	if err != nil || back != nil {
		t.Fatalf("Decompress(nil, 0) = %v, %v", back, err)
	}
}

func TestRoundtripSingleByte(t *testing.T) {
	for _, b := range []byte{0, 1, 127, 255} {
		roundtrip(t, []byte{b})
	}
}

func TestRoundtripAllBytes(t *testing.T) {
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	roundtrip(t, data)
}

func TestRoundtripUniform(t *testing.T) {
	roundtrip(t, bytes.Repeat([]byte{0xAB}, 50000))
}

func TestRoundtripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 255, 256, 257, 4096, 100000} {
		data := make([]byte, n)
		rng.Read(data)
		roundtrip(t, data)
	}
}

func TestRoundtripRescaleBoundary(t *testing.T) {
	// Enough repeated symbols to force multiple model rescales
	// (maxTotal/increment ≈ 2048 updates per rescale cycle).
	data := bytes.Repeat([]byte("ab"), 20000)
	roundtrip(t, data)
}

func TestCompressionEffectiveness(t *testing.T) {
	// Low-entropy data must compress well: ~2 bits/byte source entropy.
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 64*1024)
	for i := range data {
		data[i] = byte(rng.Intn(4))
	}
	out, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(len(out)) / float64(len(data)); ratio > 0.30 {
		t.Fatalf("low-entropy ratio = %.3f, want < 0.30", ratio)
	}
	// Arithmetic coding can beat Huffman's 1-bit floor on skewed data.
	skew := make([]byte, 64*1024)
	for i := range skew {
		if rng.Intn(100) == 0 {
			skew[i] = 1
		}
	}
	outSkew, _ := Compress(skew)
	if ratio := float64(len(outSkew)) / float64(len(skew)); ratio > 0.125 {
		t.Fatalf("skewed ratio = %.3f, want < 1 bit/byte", ratio)
	}
}

func TestRandomDataNearIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 64*1024)
	rng.Read(data)
	out, _ := Compress(data)
	if len(out) < len(data)*99/100 {
		t.Fatalf("random data 'compressed' to %d of %d bytes", len(out), len(data))
	}
}

func TestDecompressGarbage(t *testing.T) {
	// Garbage input must either decode to *some* bytes or fail cleanly; it
	// must never panic. (Every 32-bit value is a valid code prefix under an
	// adaptive model, so errors are not guaranteed — just safety.)
	garbage := []byte{0xFF, 0x00, 0x12, 0x34}
	if _, err := Decompress(garbage, 10); err != nil && err != ErrCorrupt {
		t.Fatalf("unexpected error type: %v", err)
	}
}

func TestQuickRoundtrip(t *testing.T) {
	f := func(data []byte) bool {
		out, err := Compress(data)
		if err != nil {
			return false
		}
		back, err := Decompress(out, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress64K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 64*1024)
	for i := range data {
		data[i] = byte(rng.Intn(16))
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress64K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 64*1024)
	for i := range data {
		data[i] = byte(rng.Intn(16))
	}
	out, err := Compress(data)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(out, len(data)); err != nil {
			b.Fatal(err)
		}
	}
}
