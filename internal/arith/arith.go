// Package arith implements adaptive order-0 arithmetic coding (§2.2 of the
// paper), following the integer implementation of Witten, Neal and Cleary
// (CACM 1987, ref [21]) with 32-bit code values.
//
// The coder is adaptive: both ends start from a uniform byte model and update
// identically after each symbol, so no model needs to be transmitted. The
// framing layer records the original length, so no EOF symbol is coded.
package arith

import (
	"errors"

	"ccx/internal/bitio"
)

// ErrCorrupt is returned when the decoder runs out of input prematurely.
var ErrCorrupt = errors.New("arith: corrupt or truncated input")

const (
	codeBits = 32
	full     = uint64(1) << codeBits
	half     = full / 2
	quarter  = full / 4
	// maxTotal bounds the model's total frequency so range*cum products fit
	// comfortably in 64 bits and precision stays adequate.
	maxTotal = 1 << 16
	// increment is the per-occurrence frequency bump; a larger increment
	// adapts faster to local statistics.
	increment = 32
)

const alphabetSize = 256

// model is an adaptive byte-frequency model backed by a Fenwick tree for
// O(log n) cumulative-frequency queries and updates.
type model struct {
	tree  [alphabetSize + 1]uint32 // 1-based Fenwick tree
	freq  [alphabetSize]uint32
	total uint32
}

func newModel() *model {
	m := &model{}
	for i := 0; i < alphabetSize; i++ {
		m.freq[i] = 1
		m.add(i, 1)
	}
	m.total = alphabetSize
	return m
}

func (m *model) add(sym int, delta uint32) {
	for i := sym + 1; i <= alphabetSize; i += i & (-i) {
		m.tree[i] += delta
	}
}

// cumBefore returns the total frequency of symbols < sym.
func (m *model) cumBefore(sym int) uint32 {
	var s uint32
	for i := sym; i > 0; i -= i & (-i) {
		s += m.tree[i]
	}
	return s
}

// find locates the symbol whose cumulative interval contains target and
// returns (sym, cumBefore(sym)).
func (m *model) find(target uint32) (int, uint32) {
	idx := 0
	var cum uint32
	// Standard Fenwick descent; alphabetSize is a power of two.
	for step := alphabetSize; step > 0; step >>= 1 {
		next := idx + step
		if next <= alphabetSize && cum+m.tree[next] <= target {
			idx = next
			cum += m.tree[next]
		}
	}
	return idx, cum
}

func (m *model) update(sym int) {
	m.add(sym, increment)
	m.freq[sym] += increment
	m.total += increment
	if m.total >= maxTotal {
		m.rescale()
	}
}

// rescale halves all frequencies (keeping them ≥1), preserving adaptivity
// while bounding totals; both encoder and decoder rescale at the same point.
func (m *model) rescale() {
	for i := range m.tree {
		m.tree[i] = 0
	}
	m.total = 0
	for i := 0; i < alphabetSize; i++ {
		f := m.freq[i]/2 + 1
		m.freq[i] = f
		m.add(i, f)
		m.total += f
	}
}

// Compress encodes src adaptively. The caller must retain len(src) for
// Decompress (stored by the codec framing layer).
func Compress(src []byte) ([]byte, error) {
	if len(src) == 0 {
		return nil, nil
	}
	m := newModel()
	w := bitio.NewWriter(len(src)/2 + 64)
	low, high := uint64(0), full-1
	pending := 0

	emit := func(bit int) {
		w.WriteBit(bit)
		inv := 1 - bit
		for ; pending > 0; pending-- {
			w.WriteBit(inv)
		}
	}

	for _, b := range src {
		sym := int(b)
		total := uint64(m.total)
		cumLo := uint64(m.cumBefore(sym))
		cumHi := cumLo + uint64(m.freq[sym])
		span := high - low + 1
		high = low + span*cumHi/total - 1
		low = low + span*cumLo/total
		for {
			switch {
			case high < half:
				emit(0)
			case low >= half:
				emit(1)
				low -= half
				high -= half
			case low >= quarter && high < half+quarter:
				pending++
				low -= quarter
				high -= quarter
			default:
				goto settled
			}
			low <<= 1
			high = high<<1 | 1
		}
	settled:
		m.update(sym)
	}
	// Flush: disambiguate the final interval.
	pending++
	if low < quarter {
		emit(0)
	} else {
		emit(1)
	}
	return w.Bytes(), nil
}

// Decompress reverses Compress, producing exactly origLen bytes.
func Decompress(src []byte, origLen int) ([]byte, error) {
	if origLen == 0 {
		return nil, nil
	}
	m := newModel()
	r := bitio.NewReader(src)
	readBit := func() uint64 {
		// Past end of stream, zero bits are implied; the WNC construction
		// guarantees the encoder emitted enough bits to disambiguate.
		bit, err := r.ReadBit()
		if err != nil {
			return 0
		}
		return uint64(bit)
	}
	var value uint64
	for i := 0; i < codeBits; i++ {
		value = value<<1 | readBit()
	}
	low, high := uint64(0), full-1
	dst := make([]byte, origLen)
	for i := 0; i < origLen; i++ {
		total := uint64(m.total)
		span := high - low + 1
		target := ((value-low+1)*total - 1) / span
		if target >= total {
			return nil, ErrCorrupt
		}
		sym, cum := m.find(uint32(target))
		cumLo := uint64(cum)
		cumHi := cumLo + uint64(m.freq[sym])
		high = low + span*cumHi/total - 1
		low = low + span*cumLo/total
		for {
			switch {
			case high < half:
				// nothing
			case low >= half:
				low -= half
				high -= half
				value -= half
			case low >= quarter && high < half+quarter:
				low -= quarter
				high -= quarter
				value -= quarter
			default:
				goto settled
			}
			low <<= 1
			high = high<<1 | 1
			value = value<<1 | readBit()
		}
	settled:
		dst[i] = byte(sym)
		m.update(sym)
	}
	return dst, nil
}
