package arith

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"ccx/internal/datagen"
)

func roundtrip1(t *testing.T, data []byte) {
	t.Helper()
	out, err := CompressOrder1(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecompressOrder1(out, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatalf("roundtrip mismatch (len %d)", len(data))
	}
}

func TestOrder1RoundtripBasic(t *testing.T) {
	roundtrip1(t, []byte("the quick brown fox; the quick brown fox; the quick brown fox"))
}

func TestOrder1Empty(t *testing.T) {
	out, err := CompressOrder1(nil)
	if err != nil || out != nil {
		t.Fatalf("got %v %v", out, err)
	}
	back, err := DecompressOrder1(nil, 0)
	if err != nil || back != nil {
		t.Fatalf("got %v %v", back, err)
	}
}

func TestOrder1RoundtripVarious(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cases := [][]byte{
		{0}, {255},
		bytes.Repeat([]byte{9}, 10000),
		datagen.OISTransactions(50000, 0.9, 2),
		datagen.Random(20000, 3),
		datagen.LowEntropy(30000, 3, 4),
	}
	mixed := make([]byte, 40000)
	rng.Read(mixed[:20000]) // half random, half text
	copy(mixed[20000:], datagen.OISTransactions(20000, 0.9, 5))
	cases = append(cases, mixed)
	for i, c := range cases {
		_ = i
		roundtrip1(t, c)
	}
}

// TestOrder1BeatsOrder0OnText is the point of the upgrade: first-order
// context exploits character correlation that order-0 cannot see.
func TestOrder1BeatsOrder0OnText(t *testing.T) {
	data := datagen.OISTransactions(256<<10, 0.9, 1)
	o0, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	o1, err := CompressOrder1(data)
	if err != nil {
		t.Fatal(err)
	}
	r0 := float64(len(o0)) / float64(len(data))
	r1 := float64(len(o1)) / float64(len(data))
	t.Logf("order-0 %.3f vs order-1 %.3f", r0, r1)
	if r1 >= r0*0.85 {
		t.Fatalf("order-1 (%.3f) should beat order-0 (%.3f) by >15%% on text", r1, r0)
	}
}

func TestOrder1RandomStaysRandom(t *testing.T) {
	data := datagen.Random(64<<10, 7)
	out, err := CompressOrder1(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) < len(data)*99/100 {
		t.Fatalf("random data 'compressed' to %d of %d", len(out), len(data))
	}
}

func TestOrder1QuickRoundtrip(t *testing.T) {
	f := func(data []byte) bool {
		out, err := CompressOrder1(data)
		if err != nil {
			return false
		}
		back, err := DecompressOrder1(out, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompressOrder1_64K(b *testing.B) {
	data := datagen.OISTransactions(64<<10, 0.9, 1)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CompressOrder1(data); err != nil {
			b.Fatal(err)
		}
	}
}
