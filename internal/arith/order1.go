package arith

import (
	"ccx/internal/bitio"
)

// Order-1 adaptive arithmetic coding: one adaptive model per preceding
// byte, capturing first-order context the paper's order-0 methods miss.
// This is the kind of "improved compression algorithm" §3.2 envisions
// deploying at runtime through the middleware's open method registry:
// no wire-format change, just a new codec identifier.
//
// Context models are materialized lazily — most byte pairs never occur, so
// a 256-entry model array would mostly be cold cache lines.

// CompressOrder1 encodes src with an order-1 adaptive model.
func CompressOrder1(src []byte) ([]byte, error) {
	if len(src) == 0 {
		return nil, nil
	}
	var models [256]*model
	getModel := func(ctx byte) *model {
		m := models[ctx]
		if m == nil {
			m = newModel()
			models[ctx] = m
		}
		return m
	}
	w := bitio.NewWriter(len(src)/2 + 64)
	low, high := uint64(0), full-1
	pending := 0
	emit := func(bit int) {
		w.WriteBit(bit)
		inv := 1 - bit
		for ; pending > 0; pending-- {
			w.WriteBit(inv)
		}
	}
	ctx := byte(0)
	for _, b := range src {
		m := getModel(ctx)
		sym := int(b)
		total := uint64(m.total)
		cumLo := uint64(m.cumBefore(sym))
		cumHi := cumLo + uint64(m.freq[sym])
		span := high - low + 1
		high = low + span*cumHi/total - 1
		low = low + span*cumLo/total
		for {
			switch {
			case high < half:
				emit(0)
			case low >= half:
				emit(1)
				low -= half
				high -= half
			case low >= quarter && high < half+quarter:
				pending++
				low -= quarter
				high -= quarter
			default:
				goto settled
			}
			low <<= 1
			high = high<<1 | 1
		}
	settled:
		m.update(sym)
		ctx = b
	}
	pending++
	if low < quarter {
		emit(0)
	} else {
		emit(1)
	}
	return w.Bytes(), nil
}

// DecompressOrder1 reverses CompressOrder1, producing exactly origLen bytes.
func DecompressOrder1(src []byte, origLen int) ([]byte, error) {
	if origLen == 0 {
		return nil, nil
	}
	var models [256]*model
	getModel := func(ctx byte) *model {
		m := models[ctx]
		if m == nil {
			m = newModel()
			models[ctx] = m
		}
		return m
	}
	r := bitio.NewReader(src)
	readBit := func() uint64 {
		bit, err := r.ReadBit()
		if err != nil {
			return 0
		}
		return uint64(bit)
	}
	var value uint64
	for i := 0; i < codeBits; i++ {
		value = value<<1 | readBit()
	}
	low, high := uint64(0), full-1
	dst := make([]byte, origLen)
	ctx := byte(0)
	for i := 0; i < origLen; i++ {
		m := getModel(ctx)
		total := uint64(m.total)
		span := high - low + 1
		target := ((value-low+1)*total - 1) / span
		if target >= total {
			return nil, ErrCorrupt
		}
		sym, cum := m.find(uint32(target))
		cumLo := uint64(cum)
		cumHi := cumLo + uint64(m.freq[sym])
		high = low + span*cumHi/total - 1
		low = low + span*cumLo/total
		for {
			switch {
			case high < half:
				// nothing
			case low >= half:
				low -= half
				high -= half
				value -= half
			case low >= quarter && high < half+quarter:
				low -= quarter
				high -= quarter
				value -= quarter
			default:
				goto settled
			}
			low <<= 1
			high = high<<1 | 1
			value = value<<1 | readBit()
		}
	settled:
		dst[i] = byte(sym)
		m.update(sym)
		ctx = byte(sym)
	}
	return dst, nil
}
