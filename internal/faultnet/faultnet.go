// Package faultnet wraps a net.Conn with a seeded, schedulable fault plan:
// bit flips, byte truncation (swallowed mid-stream ranges), duplicated and
// reordered writes, mid-frame stalls, and abrupt connection resets. It is
// the chaos half of the repo's integrity story — internal/codec's CRC'd
// frames detect the damage, faultnet manufactures it deterministically.
//
// The same plans drive the fault-matrix integration tests (tests/) and the
// -fault flag on cmd/ccsend and cmd/ccbroker for manual chaos runs:
//
//	ccsend -addr host:9900 -fault "flip=65536,seed=7" big.dat
//
// All faults apply to the write path, modelling a damaging link between
// the writer and its peer; reads pass through untouched. A Conn is safe
// for concurrent use.
package faultnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjectedReset is returned from Write once a plan's reset point is
// reached; the underlying connection is closed abruptly.
var ErrInjectedReset = errors.New("faultnet: injected connection reset")

// Plan schedules faults against the absolute byte offset of the written
// stream (flip, drop, stall, reset) or the ordinal of the Write call
// (dup, reorder). The zero Plan injects nothing.
type Plan struct {
	// Seed makes every random choice (flip positions, flipped bits)
	// reproducible. Zero behaves as 1.
	Seed int64

	// FlipPer flips one random bit of one random byte in every FlipPer-byte
	// window of the stream (0 = off). FlipPer=65536 is "one flipped byte
	// per 64 KB".
	FlipPer int

	// DropAt/DropLen silently swallow DropLen bytes starting at absolute
	// offset DropAt — a mid-stream truncation the receiver only notices
	// when frames stop lining up (DropLen 0 = off).
	DropAt, DropLen int

	// DupEvery writes every DupEvery-th Write call's bytes twice (0 = off).
	DupEvery int

	// ReorderEvery holds every ReorderEvery-th Write call's bytes back and
	// emits them after the following write — adjacent-write reordering
	// (0 = off).
	ReorderEvery int

	// StallAt/Stall pause the writer for Stall once the stream crosses
	// offset StallAt, splitting the in-flight write so the stall lands
	// mid-frame (Stall 0 = off).
	StallAt int
	Stall   time.Duration

	// ResetAt closes the underlying connection abruptly once ResetAt bytes
	// have been written; the offending Write returns ErrInjectedReset
	// (0 = off).
	ResetAt int
}

// Enabled reports whether the plan injects any fault at all.
func (p Plan) Enabled() bool {
	return p.FlipPer > 0 || p.DropLen > 0 || p.DupEvery > 0 ||
		p.ReorderEvery > 0 || p.Stall > 0 || p.ResetAt > 0
}

// String renders the plan in ParsePlan's flag syntax.
func (p Plan) String() string {
	var parts []string
	if p.FlipPer > 0 {
		parts = append(parts, fmt.Sprintf("flip=%d", p.FlipPer))
	}
	if p.DropLen > 0 {
		parts = append(parts, fmt.Sprintf("drop=%d:%d", p.DropAt, p.DropLen))
	}
	if p.DupEvery > 0 {
		parts = append(parts, fmt.Sprintf("dup=%d", p.DupEvery))
	}
	if p.ReorderEvery > 0 {
		parts = append(parts, fmt.Sprintf("reorder=%d", p.ReorderEvery))
	}
	if p.Stall > 0 {
		parts = append(parts, fmt.Sprintf("stall=%d:%s", p.StallAt, p.Stall))
	}
	if p.ResetAt > 0 {
		parts = append(parts, fmt.Sprintf("reset=%d", p.ResetAt))
	}
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParsePlan reads the -fault flag syntax: comma-separated key=value pairs
//
//	flip=N          one random bit flip per N-byte window
//	drop=OFF:LEN    swallow LEN bytes at offset OFF
//	dup=N           duplicate every Nth write
//	reorder=N       swap every Nth write with its successor
//	stall=OFF:DUR   pause DUR (time.ParseDuration) at offset OFF
//	reset=OFF       abruptly close the connection at offset OFF
//	seed=N          RNG seed for reproducibility
//
// An empty string parses to the zero (fault-free) Plan.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return p, nil
	}
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return p, fmt.Errorf("faultnet: %q is not key=value", field)
		}
		atoi := func(v string) (int, error) {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return 0, fmt.Errorf("faultnet: %s=%q: want a non-negative integer", key, v)
			}
			return n, nil
		}
		var err error
		switch key {
		case "flip":
			p.FlipPer, err = atoi(val)
		case "drop":
			off, length, ok := strings.Cut(val, ":")
			if !ok {
				return p, fmt.Errorf("faultnet: drop=%q: want OFF:LEN", val)
			}
			if p.DropAt, err = atoi(off); err == nil {
				p.DropLen, err = atoi(length)
			}
		case "dup":
			p.DupEvery, err = atoi(val)
		case "reorder":
			p.ReorderEvery, err = atoi(val)
		case "stall":
			off, dur, ok := strings.Cut(val, ":")
			if !ok {
				return p, fmt.Errorf("faultnet: stall=%q: want OFF:DURATION", val)
			}
			if p.StallAt, err = atoi(off); err == nil {
				p.Stall, err = time.ParseDuration(dur)
			}
		case "reset":
			p.ResetAt, err = atoi(val)
		case "seed":
			var n int
			n, err = strconv.Atoi(val)
			p.Seed = int64(n)
		default:
			return p, fmt.Errorf("faultnet: unknown fault %q", key)
		}
		if err != nil {
			return p, err
		}
	}
	return p, nil
}

// Conn is a net.Conn whose writes pass through a fault plan.
type Conn struct {
	net.Conn
	plan Plan

	mu       sync.Mutex
	rng      *rand.Rand
	off      int // absolute bytes admitted to the stream
	writes   int // Write call ordinal
	window   int // flip window index
	nextFlip int // absolute offset of the next bit flip
	stalled  bool
	reset    bool
	held     []byte // chunk delayed by the reorder fault
}

// Wrap returns conn with plan applied to every Write. A disabled plan still
// wraps (so callers need no special case); it just never mutates anything.
func Wrap(conn net.Conn, plan Plan) *Conn {
	seed := plan.Seed
	if seed == 0 {
		seed = 1
	}
	c := &Conn{Conn: conn, plan: plan, rng: rand.New(rand.NewSource(seed))}
	if plan.FlipPer > 0 {
		c.nextFlip = c.rng.Intn(plan.FlipPer)
	}
	return c
}

// Write admits p through the fault plan. It reports len(p) on success even
// when bytes were mutated or swallowed — from the caller's perspective the
// write "worked"; only the peer sees the damage. After the plan's reset
// point every call returns ErrInjectedReset.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reset {
		return 0, ErrInjectedReset
	}
	c.writes++

	// Reordering: hold this chunk, emit it after the next one.
	if c.plan.ReorderEvery > 0 && c.writes%c.plan.ReorderEvery == 0 && c.held == nil {
		c.held = append([]byte(nil), p...)
		return len(p), nil
	}
	repeat := 1
	if c.plan.DupEvery > 0 && c.writes%c.plan.DupEvery == 0 {
		repeat = 2
	}
	for i := 0; i < repeat; i++ {
		if err := c.admit(p); err != nil {
			return 0, err
		}
	}
	if held := c.held; held != nil {
		c.held = nil
		if err := c.admit(held); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// Close flushes any chunk held by the reorder fault, then closes the
// underlying connection.
func (c *Conn) Close() error {
	c.mu.Lock()
	if held := c.held; held != nil && !c.reset {
		c.held = nil
		_ = c.admit(held)
	}
	c.mu.Unlock()
	return c.Conn.Close()
}

// admit advances the stream by b, applying byte-offset faults. Callers hold
// c.mu.
func (c *Conn) admit(b []byte) error {
	b = c.flip(b)
	for len(b) > 0 {
		if c.plan.ResetAt > 0 && c.off >= c.plan.ResetAt {
			c.reset = true
			c.Conn.Close()
			return ErrInjectedReset
		}
		if c.plan.Stall > 0 && !c.stalled && c.off >= c.plan.StallAt {
			c.stalled = true
			time.Sleep(c.plan.Stall)
		}
		// Segment until the next scheduled event so stalls and resets land
		// mid-write (and therefore mid-frame).
		n := len(b)
		limit := func(at int) {
			if at > c.off && at-c.off < n {
				n = at - c.off
			}
		}
		if c.plan.ResetAt > 0 {
			limit(c.plan.ResetAt)
		}
		if c.plan.Stall > 0 && !c.stalled {
			limit(c.plan.StallAt)
		}
		seg := b[:n]
		b = b[n:]
		if err := c.emit(seg); err != nil {
			return err
		}
		c.off += n
	}
	return nil
}

// emit writes seg minus any dropped range. Callers hold c.mu.
func (c *Conn) emit(seg []byte) error {
	if c.plan.DropLen > 0 {
		dropStart, dropEnd := c.plan.DropAt, c.plan.DropAt+c.plan.DropLen
		segStart, segEnd := c.off, c.off+len(seg)
		if dropStart < segEnd && segStart < dropEnd {
			pre := seg[:clamp(dropStart-segStart, 0, len(seg))]
			post := seg[clamp(dropEnd-segStart, 0, len(seg)):]
			if err := writeAll(c.Conn, pre); err != nil {
				return err
			}
			return writeAll(c.Conn, post)
		}
	}
	return writeAll(c.Conn, seg)
}

// flip applies the windowed bit flips due within b, copying only when a
// flip actually lands. Callers hold c.mu.
func (c *Conn) flip(b []byte) []byte {
	if c.plan.FlipPer <= 0 {
		return b
	}
	end := c.off + len(b)
	var out []byte
	for c.nextFlip < end {
		if c.nextFlip >= c.off {
			if out == nil {
				out = append([]byte(nil), b...)
			}
			out[c.nextFlip-c.off] ^= 1 << c.rng.Intn(8)
		}
		c.window++
		c.nextFlip = c.window*c.plan.FlipPer + c.rng.Intn(c.plan.FlipPer)
	}
	if out != nil {
		return out
	}
	return b
}

func writeAll(conn net.Conn, b []byte) error {
	for len(b) > 0 {
		n, err := conn.Write(b)
		if err != nil {
			return err
		}
		b = b[n:]
	}
	return nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// listener wraps Accept so every accepted connection carries the plan,
// each with a distinct derived seed (so two subscribers don't see
// byte-identical damage).
type listener struct {
	net.Listener
	plan Plan

	mu sync.Mutex
	n  int64
}

// WrapListener applies plan to every connection ln accepts. With a
// disabled plan, ln is returned unchanged.
func WrapListener(ln net.Listener, plan Plan) net.Listener {
	if !plan.Enabled() {
		return ln
	}
	return &listener{Listener: ln, plan: plan}
}

// Accept implements net.Listener.
func (l *listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.n++
	plan := l.plan
	if plan.Seed == 0 {
		plan.Seed = 1
	}
	plan.Seed += l.n * 7919 // distinct but reproducible per-conn streams
	l.mu.Unlock()
	return Wrap(conn, plan), nil
}

// FaultOffsets reports the absolute stream offsets the plan will damage
// within the first n bytes (flips and the dropped range's start), mainly
// for tests that want to assert where corruption lands.
func (p Plan) FaultOffsets(n int) []int {
	var out []int
	if p.FlipPer > 0 {
		seed := p.Seed
		if seed == 0 {
			seed = 1
		}
		rng := rand.New(rand.NewSource(seed))
		for w := 0; ; w++ {
			off := w*p.FlipPer + rng.Intn(p.FlipPer)
			if off >= n {
				break
			}
			out = append(out, off)
			rng.Intn(8) // consume the bit choice like Conn does
		}
	}
	if p.DropLen > 0 && p.DropAt < n {
		out = append(out, p.DropAt)
	}
	sort.Ints(out)
	return out
}
