package faultnet

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

// sink records everything written to one end of an in-memory pipe.
func sink(t *testing.T) (net.Conn, *collector) {
	t.Helper()
	c1, c2 := net.Pipe()
	col := &collector{done: make(chan struct{})}
	go col.drain(c2)
	t.Cleanup(func() {
		c1.Close()
		c2.Close()
		<-col.done
	})
	return c1, col
}

type collector struct {
	buf  bytes.Buffer
	done chan struct{}
}

func (c *collector) drain(conn net.Conn) {
	defer close(c.done)
	tmp := make([]byte, 4096)
	for {
		n, err := conn.Read(tmp)
		c.buf.Write(tmp[:n])
		if err != nil {
			return
		}
	}
}

func (c *collector) bytes() []byte {
	<-c.done
	return c.buf.Bytes()
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 7)
	}
	return b
}

func TestZeroPlanIsTransparent(t *testing.T) {
	raw, col := sink(t)
	fc := Wrap(raw, Plan{})
	data := pattern(10_000)
	for off := 0; off < len(data); off += 1000 {
		if _, err := fc.Write(data[off : off+1000]); err != nil {
			t.Fatal(err)
		}
	}
	fc.Close()
	if !bytes.Equal(col.bytes(), data) {
		t.Fatal("fault-free plan altered the stream")
	}
}

func TestFlipDamagesExpectedWindows(t *testing.T) {
	plan := Plan{Seed: 5, FlipPer: 1024}
	raw, col := sink(t)
	fc := Wrap(raw, plan)
	data := pattern(8 * 1024)
	for off := 0; off < len(data); off += 300 { // uneven chunks cross windows
		end := off + 300
		if end > len(data) {
			end = len(data)
		}
		if _, err := fc.Write(data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	fc.Close()
	got := col.bytes()
	if len(got) != len(data) {
		t.Fatalf("length changed: %d vs %d", len(got), len(data))
	}
	var diffs []int
	for i := range got {
		if got[i] != data[i] {
			diffs = append(diffs, i)
		}
	}
	want := plan.FaultOffsets(len(data))
	if len(diffs) != len(want) {
		t.Fatalf("flipped %d bytes %v, planned %d %v", len(diffs), diffs, len(want), want)
	}
	for i := range diffs {
		if diffs[i] != want[i] {
			t.Fatalf("flip %d at %d, planned %d", i, diffs[i], want[i])
		}
	}
	// One bit per flip, never more.
	for _, i := range diffs {
		x := got[i] ^ data[i]
		if x&(x-1) != 0 {
			t.Fatalf("offset %d: more than one bit flipped (%08b)", i, x)
		}
	}
}

func TestDropSwallowsExactRange(t *testing.T) {
	raw, col := sink(t)
	fc := Wrap(raw, Plan{DropAt: 2500, DropLen: 700})
	data := pattern(6000)
	for off := 0; off < len(data); off += 512 {
		end := off + 512
		if end > len(data) {
			end = len(data)
		}
		if _, err := fc.Write(data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	fc.Close()
	want := append(append([]byte(nil), data[:2500]...), data[3200:]...)
	if !bytes.Equal(col.bytes(), want) {
		t.Fatal("dropped range mismatch")
	}
}

func TestDupAndReorder(t *testing.T) {
	raw, col := sink(t)
	fc := Wrap(raw, Plan{DupEvery: 3, ReorderEvery: 4})
	chunks := [][]byte{
		[]byte("aa"), []byte("bb"), []byte("cc"), []byte("dd"), []byte("ee"),
	}
	for _, ch := range chunks {
		if _, err := fc.Write(ch); err != nil {
			t.Fatal(err)
		}
	}
	fc.Close()
	// Write 3 duplicated, write 4 held and emitted after write 5.
	want := "aabbcccceedd"
	if got := string(col.bytes()); got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestResetClosesAbruptly(t *testing.T) {
	raw, col := sink(t)
	fc := Wrap(raw, Plan{ResetAt: 1500})
	data := pattern(4000)
	var err error
	for off := 0; off < len(data) && err == nil; off += 1000 {
		_, err = fc.Write(data[off : off+1000])
	}
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("want ErrInjectedReset, got %v", err)
	}
	if _, err := fc.Write([]byte("after")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset write: %v", err)
	}
	if got := col.bytes(); !bytes.Equal(got, data[:1500]) {
		t.Fatalf("peer saw %d bytes, want exactly 1500", len(got))
	}
}

func TestStallPausesMidStream(t *testing.T) {
	raw, col := sink(t)
	fc := Wrap(raw, Plan{StallAt: 512, Stall: 120 * time.Millisecond})
	start := time.Now()
	data := pattern(2048)
	if _, err := fc.Write(data); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("write returned in %v; stall never happened", d)
	}
	fc.Close()
	if !bytes.Equal(col.bytes(), data) {
		t.Fatal("stall corrupted data")
	}
}

func TestParsePlanRoundtrip(t *testing.T) {
	cases := []struct {
		in   string
		want Plan
	}{
		{"", Plan{}},
		{"none", Plan{}},
		{"flip=65536,seed=7", Plan{FlipPer: 65536, Seed: 7}},
		{"drop=4096:16", Plan{DropAt: 4096, DropLen: 16}},
		{"stall=100:250ms", Plan{StallAt: 100, Stall: 250 * time.Millisecond}},
		{"reset=1048576", Plan{ResetAt: 1 << 20}},
		{"dup=7,reorder=13", Plan{DupEvery: 7, ReorderEvery: 13}},
		{
			"flip=1024,drop=10:2,dup=3,reorder=5,stall=9:1s,reset=99,seed=-4",
			Plan{FlipPer: 1024, DropAt: 10, DropLen: 2, DupEvery: 3,
				ReorderEvery: 5, StallAt: 9, Stall: time.Second, ResetAt: 99, Seed: -4},
		},
	}
	for _, tc := range cases {
		got, err := ParsePlan(tc.in)
		if err != nil {
			t.Fatalf("%q: %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("%q: got %+v want %+v", tc.in, got, tc.want)
		}
		// String() must parse back to the same plan.
		back, err := ParsePlan(got.String())
		if err != nil || back != got {
			t.Fatalf("%q: String() %q did not roundtrip (%v)", tc.in, got.String(), err)
		}
	}
	for _, bad := range []string{"flip", "flip=x", "drop=5", "stall=1:nope", "bogus=1", "flip=-3"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Fatalf("%q parsed without error", bad)
		}
	}
}

func TestWrapListenerDerivesSeeds(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := WrapListener(ln, Plan{FlipPer: 64, Seed: 3})
	defer wrapped.Close()
	accepted := make(chan net.Conn, 2)
	go func() {
		for i := 0; i < 2; i++ {
			c, err := wrapped.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	var peers []net.Conn
	for i := 0; i < 2; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		peers = append(peers, c)
	}
	_ = peers
	var plans []Plan
	for i := 0; i < 2; i++ {
		select {
		case c := <-accepted:
			fc, ok := c.(*Conn)
			if !ok {
				t.Fatal("accepted conn is not a faultnet.Conn")
			}
			plans = append(plans, fc.plan)
			c.Close()
		case <-time.After(5 * time.Second):
			t.Fatal("accept timeout")
		}
	}
	if plans[0].Seed == plans[1].Seed {
		t.Fatalf("both conns share seed %d", plans[0].Seed)
	}
	// Disabled plans don't wrap at all.
	if l := WrapListener(ln, Plan{}); l != ln {
		t.Fatal("zero plan should return the listener unchanged")
	}
}
