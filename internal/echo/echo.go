// Package echo implements an event-based communication middleware modelled
// on ECho (Eisenhauer & Schwan, ref [34]), the system the paper integrates
// configurable compression into (§3). It provides:
//
//   - Event channels with anonymous publish/subscribe: producers submit
//     events to a channel; only that channel's subscribers see them.
//   - Derived channels: a consumer-side operation that instantiates a
//     handler over an existing channel's event stream at runtime, creating
//     a new channel carrying the transformed events (§3.2's mechanism for
//     deploying compression methods without re-engineering producers).
//   - Globally named quality attributes on channels, which transport
//     monitoring data and dynamic change instructions across layers and
//     address spaces (§3.1).
//   - A transport encapsulation layer (see Bridge) that multiplexes many
//     channels over a single connection.
//
// Event delivery within a domain is synchronous and in subscription order,
// which keeps middleware behaviour deterministic under test; cross-address-
// space delivery via Bridge is asynchronous, as in the original system.
package echo

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Common errors.
var (
	ErrChannelExists = errors.New("echo: channel already exists")
	ErrChannelClosed = errors.New("echo: channel closed")
)

// Attributes are the globally named, interpreted quality attributes of
// §3.1: small string-keyed metadata that rides with events and channels.
type Attributes map[string]string

// Clone returns a copy of a (nil stays nil).
func (a Attributes) Clone() Attributes {
	if a == nil {
		return nil
	}
	out := make(Attributes, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// Event is one unit of exchange: an opaque payload plus quality attributes.
type Event struct {
	Data  []byte
	Attrs Attributes
}

// Handler transforms events on a derived channel. Returning false drops the
// event ("handlers ... can even prevent events from being transported").
type Handler func(Event) (Event, bool)

// ConsumerFunc receives delivered events.
type ConsumerFunc func(Event)

// Domain is one address space's view of the channel namespace.
type Domain struct {
	mu       sync.RWMutex
	channels map[string]*EventChannel
}

// NewDomain returns an empty domain.
func NewDomain() *Domain {
	return &Domain{channels: make(map[string]*EventChannel)}
}

// CreateChannel makes a new channel; it fails if the name is taken.
func (d *Domain) CreateChannel(name string) (*EventChannel, error) {
	if name == "" {
		return nil, errors.New("echo: channel needs a name")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.channels[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrChannelExists, name)
	}
	ch := newChannel(d, name)
	d.channels[name] = ch
	return ch, nil
}

// OpenChannel returns the named channel, creating it if needed — the
// "registering with appropriate sets of events" entry point for new
// participants.
func (d *Domain) OpenChannel(name string) *EventChannel {
	d.mu.Lock()
	defer d.mu.Unlock()
	if ch, ok := d.channels[name]; ok {
		return ch
	}
	ch := newChannel(d, name)
	d.channels[name] = ch
	return ch
}

// Channel looks up a channel without creating it.
func (d *Domain) Channel(name string) (*EventChannel, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ch, ok := d.channels[name]
	return ch, ok
}

// Channels lists channel names in sorted order.
func (d *Domain) Channels() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.channels))
	for name := range d.channels {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// remove unregisters a closed channel.
func (d *Domain) remove(name string) {
	d.mu.Lock()
	delete(d.channels, name)
	d.mu.Unlock()
}

// Subscription is one consumer's registration on a channel.
type Subscription struct {
	ch    *EventChannel
	id    int
	fn    ConsumerFunc
	owner any // origin tag; deliveries from the same origin are skipped
}

// Cancel unsubscribes. It is safe to call more than once.
func (s *Subscription) Cancel() {
	s.ch.unsubscribe(s.id)
}

// AttrWatch is one observer of a channel's attribute updates.
type AttrWatch struct {
	ch *EventChannel
	id int
}

// Cancel stops the watch.
func (w *AttrWatch) Cancel() {
	w.ch.unwatch(w.id)
}

// EventChannel is a distributed event stream endpoint.
type EventChannel struct {
	domain *Domain
	name   string

	mu       sync.RWMutex
	closed   bool
	subs     map[int]*Subscription
	subOrder []int
	nextID   int

	attrs           Attributes
	watchers        map[int]func(key, value string)
	watchOrder      []int
	watchOwnersByID map[int]any
	nextWatchID     int
	deriveSource    *Subscription // set on derived channels
}

func newChannel(d *Domain, name string) *EventChannel {
	return &EventChannel{
		domain:   d,
		name:     name,
		subs:     make(map[int]*Subscription),
		attrs:    make(Attributes),
		watchers: make(map[int]func(string, string)),
	}
}

// Name returns the channel's global name.
func (ch *EventChannel) Name() string { return ch.name }

// Subscribe registers fn to receive every event submitted to the channel.
func (ch *EventChannel) Subscribe(fn ConsumerFunc) *Subscription {
	return ch.subscribeFrom(nil, fn)
}

func (ch *EventChannel) subscribeFrom(owner any, fn ConsumerFunc) *Subscription {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	id := ch.nextID
	ch.nextID++
	sub := &Subscription{ch: ch, id: id, fn: fn, owner: owner}
	ch.subs[id] = sub
	ch.subOrder = append(ch.subOrder, id)
	return sub
}

func (ch *EventChannel) unsubscribe(id int) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if _, ok := ch.subs[id]; !ok {
		return
	}
	delete(ch.subs, id)
	for i, sid := range ch.subOrder {
		if sid == id {
			ch.subOrder = append(ch.subOrder[:i], ch.subOrder[i+1:]...)
			break
		}
	}
}

// Subscribers reports the current subscription count (including derived
// channels and bridges).
func (ch *EventChannel) Subscribers() int {
	ch.mu.RLock()
	defer ch.mu.RUnlock()
	return len(ch.subs)
}

// Submit publishes an event to all subscribers. Delivery is synchronous and
// in subscription order. Submitting on a closed channel returns an error.
func (ch *EventChannel) Submit(ev Event) error {
	return ch.submitFrom(nil, ev)
}

// submitFrom publishes, skipping subscriptions owned by origin — the loop
// guard that lets bridges both import and export the same channel.
func (ch *EventChannel) submitFrom(origin any, ev Event) error {
	ch.mu.RLock()
	if ch.closed {
		ch.mu.RUnlock()
		return fmt.Errorf("%w: %q", ErrChannelClosed, ch.name)
	}
	targets := make([]*Subscription, 0, len(ch.subOrder))
	for _, id := range ch.subOrder {
		sub := ch.subs[id]
		if origin != nil && sub.owner == origin {
			continue
		}
		targets = append(targets, sub)
	}
	ch.mu.RUnlock()
	for _, sub := range targets {
		sub.fn(ev)
	}
	return nil
}

// Derive creates a new channel carrying this channel's events transformed
// by handler — the consumer-initiated dynamic handler instantiation of
// §3.2. The derived channel lives in the same domain under the given name.
func (ch *EventChannel) Derive(name string, handler Handler) (*EventChannel, error) {
	if handler == nil {
		return nil, errors.New("echo: derive needs a handler")
	}
	derived, err := ch.domain.CreateChannel(name)
	if err != nil {
		return nil, err
	}
	src := ch.Subscribe(func(ev Event) {
		out, ok := handler(ev)
		if !ok {
			return
		}
		// Best effort: a closed derived channel just stops the flow.
		_ = derived.Submit(out)
	})
	derived.mu.Lock()
	derived.deriveSource = src
	derived.mu.Unlock()
	return derived, nil
}

// SetAttr publishes a quality attribute on the channel and notifies
// watchers. Attributes cross address spaces when the channel is bridged.
func (ch *EventChannel) SetAttr(key, value string) {
	ch.setAttrFrom(nil, key, value)
}

func (ch *EventChannel) setAttrFrom(origin any, key, value string) {
	ch.mu.Lock()
	if ch.closed {
		ch.mu.Unlock()
		return
	}
	ch.attrs[key] = value
	fns := make([]func(string, string), 0, len(ch.watchOrder))
	for _, id := range ch.watchOrder {
		fns = append(fns, ch.watchers[id])
	}
	watchOwners := ch.watchOwners(origin)
	ch.mu.Unlock()
	for i, fn := range fns {
		if watchOwners[i] {
			continue
		}
		fn(key, value)
	}
}

// watchOwners returns, per watcher in order, whether it is owned by origin.
// Callers hold ch.mu.
func (ch *EventChannel) watchOwners(origin any) []bool {
	out := make([]bool, len(ch.watchOrder))
	if origin == nil {
		return out
	}
	for i, id := range ch.watchOrder {
		if owner, ok := ch.watchOwnersByID[id]; ok && owner == origin {
			out[i] = true
		}
	}
	return out
}

// Attr reads a quality attribute.
func (ch *EventChannel) Attr(key string) (string, bool) {
	ch.mu.RLock()
	defer ch.mu.RUnlock()
	v, ok := ch.attrs[key]
	return v, ok
}

// Attrs returns a snapshot of all attributes.
func (ch *EventChannel) Attrs() Attributes {
	ch.mu.RLock()
	defer ch.mu.RUnlock()
	return ch.attrs.Clone()
}

// WatchAttrs registers fn for every subsequent attribute update.
func (ch *EventChannel) WatchAttrs(fn func(key, value string)) *AttrWatch {
	return ch.watchAttrsFrom(nil, fn)
}

func (ch *EventChannel) watchAttrsFrom(owner any, fn func(key, value string)) *AttrWatch {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	id := ch.nextWatchID
	ch.nextWatchID++
	ch.watchers[id] = fn
	ch.watchOrder = append(ch.watchOrder, id)
	if owner != nil {
		if ch.watchOwnersByID == nil {
			ch.watchOwnersByID = make(map[int]any)
		}
		ch.watchOwnersByID[id] = owner
	}
	return &AttrWatch{ch: ch, id: id}
}

func (ch *EventChannel) unwatch(id int) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if _, ok := ch.watchers[id]; !ok {
		return
	}
	delete(ch.watchers, id)
	delete(ch.watchOwnersByID, id)
	for i, wid := range ch.watchOrder {
		if wid == id {
			ch.watchOrder = append(ch.watchOrder[:i], ch.watchOrder[i+1:]...)
			break
		}
	}
}

// Close shuts the channel: subscribers are dropped, submissions fail, and a
// derived channel detaches from its source.
func (ch *EventChannel) Close() error {
	ch.mu.Lock()
	if ch.closed {
		ch.mu.Unlock()
		return nil
	}
	ch.closed = true
	src := ch.deriveSource
	ch.subs = make(map[int]*Subscription)
	ch.subOrder = nil
	ch.watchers = make(map[int]func(string, string))
	ch.watchOrder = nil
	ch.mu.Unlock()
	if src != nil {
		src.Cancel()
	}
	ch.domain.remove(ch.name)
	return nil
}
