package echo

import (
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// bridgePair wires two domains over an in-memory duplex connection.
func bridgePair(t *testing.T) (*Domain, *Bridge, *Domain, *Bridge) {
	t.Helper()
	c1, c2 := net.Pipe()
	d1, d2 := NewDomain(), NewDomain()
	b1 := NewBridge(d1, c1)
	b2 := NewBridge(d2, c2)
	t.Cleanup(func() {
		b1.Close()
		b2.Close()
		<-b1.Done()
		<-b2.Done()
	})
	return d1, b1, d2, b2
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

type collector struct {
	mu     sync.Mutex
	events []Event
}

func (c *collector) add(ev Event) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

func (c *collector) at(i int) Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.events[i]
}

func TestBridgeEventFlow(t *testing.T) {
	d1, _, _, b2 := bridgePair(t)

	// Producer lives in d1; consumer imports the channel through b2.
	prod := d1.OpenChannel("stream")
	cons, err := b2.ImportChannel("stream")
	if err != nil {
		t.Fatal(err)
	}
	var got collector
	cons.Subscribe(got.add)

	// The subscribe message must reach d1 before events flow.
	waitFor(t, "export subscription", func() bool { return prod.Subscribers() > 0 })
	prod.Submit(Event{Data: []byte("payload-1"), Attrs: Attributes{"seq": "1"}})
	prod.Submit(Event{Data: []byte("payload-2")})
	waitFor(t, "events", func() bool { return got.len() == 2 })
	if string(got.at(0).Data) != "payload-1" || got.at(0).Attrs["seq"] != "1" {
		t.Fatalf("event 0 = %+v", got.at(0))
	}
	if string(got.at(1).Data) != "payload-2" {
		t.Fatalf("event 1 = %+v", got.at(1))
	}
}

func TestBridgeMultiplexesChannels(t *testing.T) {
	d1, _, _, b2 := bridgePair(t)
	chA := d1.OpenChannel("a")
	chB := d1.OpenChannel("b")
	impA, _ := b2.ImportChannel("a")
	impB, _ := b2.ImportChannel("b")
	var gotA, gotB collector
	impA.Subscribe(gotA.add)
	impB.Subscribe(gotB.add)
	waitFor(t, "exports", func() bool { return chA.Subscribers() > 0 && chB.Subscribers() > 0 })
	for i := 0; i < 10; i++ {
		chA.Submit(Event{Data: []byte{'a', byte(i)}})
		chB.Submit(Event{Data: []byte{'b', byte(i)}})
	}
	waitFor(t, "deliveries", func() bool { return gotA.len() == 10 && gotB.len() == 10 })
	for i := 0; i < 10; i++ {
		if gotA.at(i).Data[0] != 'a' || gotB.at(i).Data[0] != 'b' {
			t.Fatal("channels crossed")
		}
	}
}

func TestBridgeAttributePropagation(t *testing.T) {
	d1, _, _, b2 := bridgePair(t)
	prod := d1.OpenChannel("stream")
	cons, _ := b2.ImportChannel("stream")
	waitFor(t, "export", func() bool { return prod.Subscribers() > 0 })

	// Producer watches for consumer-side instructions (the §3.2 flow where
	// the consumer informs the source of a method change via attributes).
	type kv struct{ k, v string }
	var mu sync.Mutex
	var seen []kv
	prod.WatchAttrs(func(k, v string) {
		mu.Lock()
		seen = append(seen, kv{k, v})
		mu.Unlock()
	})
	cons.SetAttr("ccx.method", "burrows-wheeler")
	waitFor(t, "attr", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(seen) == 1
	})
	mu.Lock()
	if seen[0].k != "ccx.method" || seen[0].v != "burrows-wheeler" {
		t.Fatalf("seen = %+v", seen)
	}
	mu.Unlock()
	// And it is readable as state on the producer side.
	waitFor(t, "attr state", func() bool {
		v, ok := prod.Attr("ccx.method")
		return ok && v == "burrows-wheeler"
	})
}

func TestBridgeUnimport(t *testing.T) {
	d1, _, _, b2 := bridgePair(t)
	prod := d1.OpenChannel("stream")
	cons, _ := b2.ImportChannel("stream")
	var got collector
	cons.Subscribe(got.add)
	waitFor(t, "export", func() bool { return prod.Subscribers() > 0 })
	prod.Submit(Event{Data: []byte("1")})
	waitFor(t, "first event", func() bool { return got.len() == 1 })
	if err := b2.UnimportChannel("stream"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "unexport", func() bool { return prod.Subscribers() == 0 })
	prod.Submit(Event{Data: []byte("2")})
	time.Sleep(20 * time.Millisecond)
	if got.len() != 1 {
		t.Fatalf("got %d events after unimport", got.len())
	}
}

func TestBridgeNoEchoLoop(t *testing.T) {
	// Both sides import the same channel; a submit on one side must arrive
	// exactly once on the other and not bounce back.
	d1, b1, d2, b2 := bridgePair(t)
	ch1, _ := b1.ImportChannel("shared")
	ch2, _ := b2.ImportChannel("shared")
	waitFor(t, "exports both ways", func() bool {
		return ch1.Subscribers() > 0 && ch2.Subscribers() > 0
	})
	var got1, got2 collector
	ch1.Subscribe(got1.add)
	ch2.Subscribe(got2.add)
	ch1.Submit(Event{Data: []byte("ping")})
	waitFor(t, "delivery", func() bool { return got2.len() == 1 })
	time.Sleep(20 * time.Millisecond)
	// Local submit delivers locally once, remotely once — no storm.
	if got1.len() != 1 || got2.len() != 1 {
		t.Fatalf("loop: got1=%d got2=%d", got1.len(), got2.len())
	}
	_ = d1
	_ = d2
}

func TestBridgeCloseUnblocks(t *testing.T) {
	c1, c2 := net.Pipe()
	d1, d2 := NewDomain(), NewDomain()
	b1 := NewBridge(d1, c1)
	b2 := NewBridge(d2, c2)
	if err := b1.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b1.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("b1 read loop did not exit")
	}
	select {
	case <-b2.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("b2 did not notice peer hangup")
	}
	if err := b1.Err(); err != nil {
		t.Fatalf("clean close reported %v", err)
	}
	b2.Close()
}

func TestBridgeOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	d1, d2 := NewDomain(), NewDomain()
	accepted := make(chan *Bridge, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- NewBridge(d1, conn)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	b2 := NewBridge(d2, conn)
	defer b2.Close()
	b1 := <-accepted
	defer b1.Close()

	prod := d1.OpenChannel("tcp.stream")
	cons, _ := b2.ImportChannel("tcp.stream")
	var got collector
	cons.Subscribe(got.add)
	waitFor(t, "export", func() bool { return prod.Subscribers() > 0 })
	payload := make([]byte, 100000)
	for i := range payload {
		payload[i] = byte(i)
	}
	prod.Submit(Event{Data: payload})
	waitFor(t, "large event", func() bool { return got.len() == 1 })
	if len(got.at(0).Data) != len(payload) {
		t.Fatalf("payload size = %d", len(got.at(0).Data))
	}
}

// TestBridgeAbruptPeerHangup kills the transport underneath a bridge —
// no Close, no unsubscribe protocol — and verifies the exporting side
// tears down its subscriptions and goroutines instead of leaking them
// into the channel's delivery path.
func TestBridgeAbruptPeerHangup(t *testing.T) {
	baseline := runtime.NumGoroutine()

	c1, c2 := net.Pipe()
	d1, d2 := NewDomain(), NewDomain()
	b1 := NewBridge(d1, c1) // exporter
	b2 := NewBridge(d2, c2) // importer, about to die
	defer b1.Close()

	ch2, err := b2.ImportChannel("feed")
	if err != nil {
		t.Fatal(err)
	}
	var got collector
	ch2.Subscribe(got.add)
	ch1 := d1.OpenChannel("feed")
	waitFor(t, "export subscription", func() bool { return ch1.Subscribers() == 1 })

	// One event flows while the peer is healthy.
	if err := ch1.Submit(Event{Data: []byte("mid-stream")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "event delivery", func() bool { return got.len() == 1 })

	// The peer vanishes mid-conversation: the raw conn closes with no
	// protocol goodbye.
	c2.Close()
	select {
	case <-b1.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("exporter read loop never noticed the hangup")
	}
	if err := b1.Err(); err != nil {
		t.Fatalf("abrupt hangup should read as clean EOF, got %v", err)
	}

	// The dead peer's subscription must be gone from the channel...
	waitFor(t, "subscription teardown", func() bool { return ch1.Subscribers() == 0 })
	// ...so further submits touch nobody.
	if err := ch1.Submit(Event{Data: []byte("after hangup")}); err != nil {
		t.Fatal(err)
	}
	if got.len() != 1 {
		t.Fatalf("dead subscriber still received events: %d", got.len())
	}

	// And both bridges' goroutines exited (b2's loop died with its conn).
	waitFor(t, "goroutine cleanup", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline
	})
}
