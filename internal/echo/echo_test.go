package echo

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func TestCreateAndLookup(t *testing.T) {
	d := NewDomain()
	ch, err := d.CreateChannel("md.frames")
	if err != nil {
		t.Fatal(err)
	}
	if ch.Name() != "md.frames" {
		t.Fatalf("name = %q", ch.Name())
	}
	if _, err := d.CreateChannel("md.frames"); !errors.Is(err, ErrChannelExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	got, ok := d.Channel("md.frames")
	if !ok || got != ch {
		t.Fatal("lookup failed")
	}
	if _, ok := d.Channel("missing"); ok {
		t.Fatal("phantom channel")
	}
	if _, err := d.CreateChannel(""); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestOpenChannelIdempotent(t *testing.T) {
	d := NewDomain()
	a := d.OpenChannel("x")
	b := d.OpenChannel("x")
	if a != b {
		t.Fatal("OpenChannel created a duplicate")
	}
	names := d.Channels()
	if len(names) != 1 || names[0] != "x" {
		t.Fatalf("Channels() = %v", names)
	}
}

func TestPubSub(t *testing.T) {
	d := NewDomain()
	ch := d.OpenChannel("c")
	var got [][]byte
	ch.Subscribe(func(ev Event) { got = append(got, ev.Data) })
	for _, msg := range []string{"one", "two", "three"} {
		if err := ch.Submit(Event{Data: []byte(msg)}); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 3 || string(got[0]) != "one" || string(got[2]) != "three" {
		t.Fatalf("got %q", got)
	}
}

func TestOnlySubscribersNotified(t *testing.T) {
	d := NewDomain()
	a := d.OpenChannel("a")
	b := d.OpenChannel("b")
	aCount, bCount := 0, 0
	a.Subscribe(func(Event) { aCount++ })
	b.Subscribe(func(Event) { bCount++ })
	a.Submit(Event{})
	if aCount != 1 || bCount != 0 {
		t.Fatalf("delivery crossed channels: %d %d", aCount, bCount)
	}
}

func TestMultipleSubscribersInOrder(t *testing.T) {
	d := NewDomain()
	ch := d.OpenChannel("c")
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		ch.Subscribe(func(Event) { order = append(order, i) })
	}
	ch.Submit(Event{})
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestUnsubscribe(t *testing.T) {
	d := NewDomain()
	ch := d.OpenChannel("c")
	n := 0
	sub := ch.Subscribe(func(Event) { n++ })
	ch.Submit(Event{})
	sub.Cancel()
	sub.Cancel() // idempotent
	ch.Submit(Event{})
	if n != 1 {
		t.Fatalf("n = %d", n)
	}
	if ch.Subscribers() != 0 {
		t.Fatalf("subscribers = %d", ch.Subscribers())
	}
}

func TestDerivedChannel(t *testing.T) {
	d := NewDomain()
	src := d.OpenChannel("raw")
	derived, err := src.Derive("raw.upper", func(ev Event) (Event, bool) {
		return Event{Data: bytes.ToUpper(ev.Data), Attrs: ev.Attrs}, true
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	derived.Subscribe(func(ev Event) { got = ev.Data })
	src.Submit(Event{Data: []byte("hello")})
	if string(got) != "HELLO" {
		t.Fatalf("got %q", got)
	}
	// Source subscribers are unaffected.
	plain := []byte(nil)
	src.Subscribe(func(ev Event) { plain = ev.Data })
	src.Submit(Event{Data: []byte("x")})
	if string(plain) != "x" {
		t.Fatal("source delivery broken")
	}
}

func TestDerivedChannelDropsEvents(t *testing.T) {
	d := NewDomain()
	src := d.OpenChannel("raw")
	derived, _ := src.Derive("filtered", func(ev Event) (Event, bool) {
		return ev, len(ev.Data) > 2
	})
	n := 0
	derived.Subscribe(func(Event) { n++ })
	src.Submit(Event{Data: []byte("xy")})
	src.Submit(Event{Data: []byte("xyz")})
	if n != 1 {
		t.Fatalf("n = %d", n)
	}
}

func TestDeriveChain(t *testing.T) {
	d := NewDomain()
	src := d.OpenChannel("a")
	b, _ := src.Derive("b", func(ev Event) (Event, bool) {
		return Event{Data: append(ev.Data, '1')}, true
	})
	c, _ := b.Derive("c", func(ev Event) (Event, bool) {
		return Event{Data: append(ev.Data, '2')}, true
	})
	var got []byte
	c.Subscribe(func(ev Event) { got = ev.Data })
	src.Submit(Event{Data: []byte("x")})
	if string(got) != "x12" {
		t.Fatalf("got %q", got)
	}
}

func TestDeriveNameCollision(t *testing.T) {
	d := NewDomain()
	src := d.OpenChannel("a")
	d.OpenChannel("taken")
	if _, err := src.Derive("taken", func(ev Event) (Event, bool) { return ev, true }); err == nil {
		t.Fatal("expected collision error")
	}
	if _, err := src.Derive("ok", nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestDerivedClosesDetachesFromSource(t *testing.T) {
	d := NewDomain()
	src := d.OpenChannel("a")
	derived, _ := src.Derive("b", func(ev Event) (Event, bool) { return ev, true })
	n := 0
	derived.Subscribe(func(Event) { n++ })
	src.Submit(Event{})
	derived.Close()
	src.Submit(Event{})
	if n != 1 {
		t.Fatalf("n = %d", n)
	}
	if src.Subscribers() != 0 {
		t.Fatal("derived channel still attached to source")
	}
	if _, ok := d.Channel("b"); ok {
		t.Fatal("closed channel still registered")
	}
}

func TestClosedChannelRejectsSubmit(t *testing.T) {
	d := NewDomain()
	ch := d.OpenChannel("c")
	ch.Close()
	if err := ch.Submit(Event{}); !errors.Is(err, ErrChannelClosed) {
		t.Fatalf("got %v", err)
	}
	if err := ch.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestAttributes(t *testing.T) {
	d := NewDomain()
	ch := d.OpenChannel("c")
	var gotK, gotV string
	watch := ch.WatchAttrs(func(k, v string) { gotK, gotV = k, v })
	ch.SetAttr("ccx.method", "lempel-ziv")
	if gotK != "ccx.method" || gotV != "lempel-ziv" {
		t.Fatalf("watch got %q=%q", gotK, gotV)
	}
	v, ok := ch.Attr("ccx.method")
	if !ok || v != "lempel-ziv" {
		t.Fatalf("Attr = %q %v", v, ok)
	}
	snap := ch.Attrs()
	snap["ccx.method"] = "mutated"
	if v, _ := ch.Attr("ccx.method"); v != "lempel-ziv" {
		t.Fatal("Attrs snapshot aliases internal state")
	}
	watch.Cancel()
	watch.Cancel()
	ch.SetAttr("other", "x")
	if gotK != "ccx.method" {
		t.Fatal("cancelled watch still fired")
	}
}

func TestAttributesClone(t *testing.T) {
	if Attributes(nil).Clone() != nil {
		t.Fatal("nil clone")
	}
	a := Attributes{"k": "v"}
	b := a.Clone()
	b["k"] = "w"
	if a["k"] != "v" {
		t.Fatal("clone aliases")
	}
}

func TestHandlerResubmitNoDeadlock(t *testing.T) {
	// A subscriber that submits to another channel must not deadlock
	// (delivery happens outside the channel lock).
	d := NewDomain()
	a := d.OpenChannel("a")
	b := d.OpenChannel("b")
	got := 0
	b.Subscribe(func(Event) { got++ })
	a.Subscribe(func(ev Event) { b.Submit(ev) })
	a.Submit(Event{})
	if got != 1 {
		t.Fatalf("got = %d", got)
	}
}

func TestConcurrentPubSub(t *testing.T) {
	d := NewDomain()
	ch := d.OpenChannel("c")
	var mu sync.Mutex
	count := 0
	ch.Subscribe(func(Event) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				ch.Submit(Event{Data: []byte{byte(j)}})
			}
		}()
	}
	wg.Wait()
	if count != 4000 {
		t.Fatalf("count = %d", count)
	}
}
