package echo

import (
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"

	"ccx/internal/pbio"
)

// AttrFormat is the quality attribute carrying a channel's PBIO format
// descriptor (hex-encoded). Typed channels are how the original system
// moved structured scientific data: PBIO (ref [35]) provided "fast
// heterogeneous binary data interchange for event-based monitoring", with
// the format negotiated out of band — here, through channel attributes,
// which the transport bridge synchronizes across address spaces.
const AttrFormat = "pbio.format"

// ErrNoFormat is returned when opening a typed view of a channel that has
// no format attribute yet.
var ErrNoFormat = errors.New("echo: channel has no pbio format attribute")

// TypedChannel is a typed view over an event channel: producers submit
// PBIO records, consumers receive decoded records. The payload of each
// event is one packed record batch.
type TypedChannel struct {
	ch     *EventChannel
	format *pbio.Format
}

// BindFormat declares ch's record format, publishing the descriptor as a
// quality attribute so any consumer — local or bridged — can decode.
func BindFormat(ch *EventChannel, f *pbio.Format) (*TypedChannel, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := pbio.WriteFormat(&buf, f); err != nil {
		return nil, err
	}
	ch.SetAttr(AttrFormat, hex.EncodeToString(buf.Bytes()))
	return &TypedChannel{ch: ch, format: f}, nil
}

// OpenTyped builds a typed view from the channel's published format
// attribute (the consumer side of format negotiation).
func OpenTyped(ch *EventChannel) (*TypedChannel, error) {
	enc, ok := ch.Attr(AttrFormat)
	if !ok {
		return nil, ErrNoFormat
	}
	raw, err := hex.DecodeString(enc)
	if err != nil {
		return nil, fmt.Errorf("echo: bad format attribute: %w", err)
	}
	f, err := pbio.ReadFormat(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	return &TypedChannel{ch: ch, format: f}, nil
}

// Channel returns the underlying event channel.
func (tc *TypedChannel) Channel() *EventChannel { return tc.ch }

// Format returns the channel's record format.
func (tc *TypedChannel) Format() *pbio.Format { return tc.format }

// SubmitRecords packs records into one event and publishes it.
func (tc *TypedChannel) SubmitRecords(recs []pbio.Record, attrs Attributes) error {
	buf := make([]byte, 0, len(recs)*tc.format.RecordSize())
	var err error
	for i := range recs {
		buf, err = pbio.AppendRecord(buf, tc.format, recs[i])
		if err != nil {
			return err
		}
	}
	return tc.ch.Submit(Event{Data: buf, Attrs: attrs})
}

// SubscribeRecords delivers decoded record batches to fn. Events whose
// payloads do not parse as record batches are dropped (a derived channel
// carrying transformed payloads should be opened raw instead).
func (tc *TypedChannel) SubscribeRecords(fn func(recs []pbio.Record, attrs Attributes)) *Subscription {
	f := tc.format
	return tc.ch.Subscribe(func(ev Event) {
		rs := f.RecordSize()
		if rs == 0 || len(ev.Data)%rs != 0 {
			return
		}
		n := len(ev.Data) / rs
		recs := make([]pbio.Record, n)
		rest := ev.Data
		var err error
		for i := 0; i < n; i++ {
			recs[i] = pbio.NewRecord(f)
			rest, err = pbio.DecodeRecord(rest, f, &recs[i])
			if err != nil {
				return
			}
		}
		fn(recs, ev.Attrs)
	})
}
