package echo

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Bridge is the transport encapsulation layer of §3.2: it multiplexes any
// number of event channels over a single bidirectional connection between
// two address spaces, so "maintaining a small number of open channels and
// switching among them ... does not adversely affect performance".
//
// Protocol (all integers are uvarints, strings are length-prefixed):
//
//	msg       = type(1) channelName body
//	subscribe = —                    (peer wants the named channel's events)
//	unsub     = —
//	event     = attrCount (key value)* payloadLen payload
//	attr      = key value            (quality-attribute propagation)
//
// A bridge forwards a channel's events to the peer once the peer has
// subscribed, and submits events arriving from the peer into the local
// channel. Origin tagging prevents echo loops when both directions are
// active on one channel.
type Bridge struct {
	domain *Domain
	conn   io.ReadWriteCloser
	wmu    sync.Mutex
	w      *bufio.Writer

	mu      sync.Mutex
	exports map[string]*Subscription // channels the peer subscribed to
	imports map[string]bool          // channels we subscribed to
	watches map[string]*AttrWatch
	closed  bool

	done chan struct{}
	err  error
}

// Message type bytes.
const (
	msgSubscribe = 1
	msgUnsub     = 2
	msgEvent     = 3
	msgAttr      = 4
)

const maxBridgePayload = 64 << 20

// NewBridge wires domain to a peer over conn and starts the read loop.
// Callers must eventually Close the bridge (closing conn as a side effect).
func NewBridge(domain *Domain, conn io.ReadWriteCloser) *Bridge {
	b := &Bridge{
		domain:  domain,
		conn:    conn,
		w:       bufio.NewWriter(conn),
		exports: make(map[string]*Subscription),
		imports: make(map[string]bool),
		watches: make(map[string]*AttrWatch),
		done:    make(chan struct{}),
	}
	go b.readLoop()
	return b
}

// ImportChannel asks the peer to forward the named channel's events here.
// The local channel is created on demand; returned so callers can subscribe.
func (b *Bridge) ImportChannel(name string) (*EventChannel, error) {
	b.mu.Lock()
	already := b.imports[name]
	b.imports[name] = true
	b.mu.Unlock()
	ch := b.domain.OpenChannel(name)
	if already {
		return ch, nil
	}
	b.watchChannel(ch)
	if err := b.send(msgSubscribe, name, nil); err != nil {
		return nil, err
	}
	return ch, nil
}

// UnimportChannel stops the peer's forwarding for name.
func (b *Bridge) UnimportChannel(name string) error {
	b.mu.Lock()
	delete(b.imports, name)
	b.mu.Unlock()
	return b.send(msgUnsub, name, nil)
}

// Done is closed when the read loop exits (peer hangup or Close).
func (b *Bridge) Done() <-chan struct{} { return b.done }

// Err reports why the bridge stopped (nil after a clean Close).
func (b *Bridge) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if errors.Is(b.err, io.EOF) || errors.Is(b.err, io.ErrClosedPipe) {
		return nil
	}
	return b.err
}

// Close tears the bridge down and closes the connection.
func (b *Bridge) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	b.mu.Unlock()
	b.teardown()
	return b.conn.Close()
}

// teardown cancels every export subscription and attribute watch. It runs
// from Close and when the read loop exits on its own (abrupt peer hangup),
// so a dead peer's subscriptions stop receiving — and serialising — events
// instead of leaking in the channel's delivery path forever.
func (b *Bridge) teardown() {
	b.mu.Lock()
	subs := b.exports
	b.exports = make(map[string]*Subscription)
	watches := b.watches
	b.watches = make(map[string]*AttrWatch)
	b.mu.Unlock()
	for _, s := range subs {
		s.Cancel()
	}
	for _, w := range watches {
		w.Cancel()
	}
}

// watchChannel forwards local attribute updates for ch to the peer — the
// upstream path consumers use to inform producers of method changes.
func (b *Bridge) watchChannel(ch *EventChannel) {
	b.mu.Lock()
	if _, ok := b.watches[ch.Name()]; ok {
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	w := ch.watchAttrsFrom(b, func(key, value string) {
		body := appendString(nil, key)
		body = appendString(body, value)
		_ = b.send(msgAttr, ch.Name(), body)
	})
	b.mu.Lock()
	b.watches[ch.Name()] = w
	b.mu.Unlock()
}

// send writes one message.
func (b *Bridge) send(typ byte, channel string, body []byte) error {
	b.wmu.Lock()
	defer b.wmu.Unlock()
	var hdr []byte
	hdr = append(hdr, typ)
	hdr = appendString(hdr, channel)
	if _, err := b.w.Write(hdr); err != nil {
		return err
	}
	var lenBuf []byte
	lenBuf = binary.AppendUvarint(lenBuf, uint64(len(body)))
	if _, err := b.w.Write(lenBuf); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := b.w.Write(body); err != nil {
			return err
		}
	}
	return b.w.Flush()
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func (b *Bridge) readLoop() {
	defer close(b.done)
	defer b.teardown()
	r := bufio.NewReader(b.conn)
	for {
		if err := b.readMessage(r); err != nil {
			b.mu.Lock()
			if b.err == nil {
				b.err = err
			}
			b.mu.Unlock()
			return
		}
	}
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxBridgePayload {
		return "", fmt.Errorf("echo: string length %d too large", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func (b *Bridge) readMessage(r *bufio.Reader) error {
	typ, err := r.ReadByte()
	if err != nil {
		return err
	}
	channel, err := readString(r)
	if err != nil {
		return err
	}
	bodyLen, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	if bodyLen > maxBridgePayload {
		return fmt.Errorf("echo: message body %d too large", bodyLen)
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	switch typ {
	case msgSubscribe:
		b.handleSubscribe(channel)
	case msgUnsub:
		b.handleUnsub(channel)
	case msgEvent:
		return b.handleEvent(channel, body)
	case msgAttr:
		return b.handleAttr(channel, body)
	default:
		return fmt.Errorf("echo: unknown message type %d", typ)
	}
	return nil
}

func (b *Bridge) handleSubscribe(channel string) {
	ch := b.domain.OpenChannel(channel)
	b.mu.Lock()
	if _, ok := b.exports[channel]; ok || b.closed {
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	sub := ch.subscribeFrom(b, func(ev Event) {
		body := binary.AppendUvarint(nil, uint64(len(ev.Attrs)))
		for k, v := range ev.Attrs {
			body = appendString(body, k)
			body = appendString(body, v)
		}
		body = binary.AppendUvarint(body, uint64(len(ev.Data)))
		body = append(body, ev.Data...)
		_ = b.send(msgEvent, channel, body)
	})
	b.mu.Lock()
	b.exports[channel] = sub
	b.mu.Unlock()
	b.watchChannel(ch)
	// Late-joiner attribute sync: the peer needs the channel's current
	// quality-attribute state (format descriptors, method settings, ...),
	// not just future updates.
	for k, v := range ch.Attrs() {
		body := appendString(nil, k)
		body = appendString(body, v)
		_ = b.send(msgAttr, channel, body)
	}
}

func (b *Bridge) handleUnsub(channel string) {
	b.mu.Lock()
	sub, ok := b.exports[channel]
	delete(b.exports, channel)
	b.mu.Unlock()
	if ok {
		sub.Cancel()
	}
}

func (b *Bridge) handleEvent(channel string, body []byte) error {
	br := newByteCursor(body)
	nAttrs, err := br.uvarint()
	if err != nil {
		return err
	}
	var attrs Attributes
	if nAttrs > 0 {
		if nAttrs > 4096 {
			return fmt.Errorf("echo: %d attributes too many", nAttrs)
		}
		attrs = make(Attributes, nAttrs)
		for i := uint64(0); i < nAttrs; i++ {
			k, err := br.str()
			if err != nil {
				return err
			}
			v, err := br.str()
			if err != nil {
				return err
			}
			attrs[k] = v
		}
	}
	payload, err := br.bytes()
	if err != nil {
		return err
	}
	ch := b.domain.OpenChannel(channel)
	// Deliver locally, skipping our own export subscription to avoid loops.
	_ = ch.submitFrom(b, Event{Data: payload, Attrs: attrs})
	return nil
}

func (b *Bridge) handleAttr(channel string, body []byte) error {
	br := newByteCursor(body)
	k, err := br.str()
	if err != nil {
		return err
	}
	v, err := br.str()
	if err != nil {
		return err
	}
	ch := b.domain.OpenChannel(channel)
	ch.setAttrFrom(b, k, v)
	return nil
}

// byteCursor is a tiny sequential decoder over a message body.
type byteCursor struct {
	buf []byte
}

func newByteCursor(buf []byte) *byteCursor { return &byteCursor{buf: buf} }

func (c *byteCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.buf)
	if n <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	c.buf = c.buf[n:]
	return v, nil
}

func (c *byteCursor) str() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(c.buf)) < n {
		return "", io.ErrUnexpectedEOF
	}
	s := string(c.buf[:n])
	c.buf = c.buf[n:]
	return s, nil
}

func (c *byteCursor) bytes() ([]byte, error) {
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(len(c.buf)) < n {
		return nil, io.ErrUnexpectedEOF
	}
	out := make([]byte, n)
	copy(out, c.buf[:n])
	c.buf = c.buf[n:]
	return out, nil
}
