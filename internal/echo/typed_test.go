package echo

import (
	"net"
	"testing"
	"time"

	"ccx/internal/pbio"
)

func sensorFormat() *pbio.Format {
	return &pbio.Format{
		Name: "sensor",
		Fields: []pbio.Field{
			{Name: "id", Kind: pbio.Int64, Count: 1},
			{Name: "reading", Kind: pbio.Float64, Count: 2},
		},
	}
}

func TestTypedChannelLocal(t *testing.T) {
	d := NewDomain()
	ch := d.OpenChannel("sensors")
	prod, err := BindFormat(ch, sensorFormat())
	if err != nil {
		t.Fatal(err)
	}
	cons, err := OpenTyped(ch)
	if err != nil {
		t.Fatal(err)
	}
	if cons.Format().Name != "sensor" || cons.Channel() != ch {
		t.Fatal("format negotiation broken")
	}

	var got []pbio.Record
	var gotAttrs Attributes
	cons.SubscribeRecords(func(recs []pbio.Record, attrs Attributes) {
		got = recs
		gotAttrs = attrs
	})

	recs := make([]pbio.Record, 3)
	for i := range recs {
		recs[i] = pbio.NewRecord(prod.Format())
		recs[i].Ints[0][0] = int64(100 + i)
		recs[i].Floats[1][0] = float64(i) * 1.5
		recs[i].Floats[1][1] = -float64(i)
	}
	if err := prod.SubmitRecords(recs, Attributes{"batch": "7"}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d records", len(got))
	}
	if got[2].Ints[0][0] != 102 || got[1].Floats[1][0] != 1.5 {
		t.Fatalf("record values wrong: %+v", got)
	}
	if gotAttrs["batch"] != "7" {
		t.Fatal("attrs lost")
	}
}

func TestOpenTypedWithoutFormat(t *testing.T) {
	d := NewDomain()
	ch := d.OpenChannel("untyped")
	if _, err := OpenTyped(ch); err != ErrNoFormat {
		t.Fatalf("got %v", err)
	}
	ch.SetAttr(AttrFormat, "zz-not-hex")
	if _, err := OpenTyped(ch); err == nil {
		t.Fatal("bad hex accepted")
	}
}

func TestBindFormatInvalid(t *testing.T) {
	d := NewDomain()
	ch := d.OpenChannel("x")
	if _, err := BindFormat(ch, &pbio.Format{Name: ""}); err == nil {
		t.Fatal("invalid format accepted")
	}
}

func TestSubscribeRecordsSkipsMalformed(t *testing.T) {
	d := NewDomain()
	ch := d.OpenChannel("sensors")
	tc, _ := BindFormat(ch, sensorFormat())
	n := 0
	tc.SubscribeRecords(func([]pbio.Record, Attributes) { n++ })
	// Payload not a multiple of record size: dropped, not delivered or
	// panicking.
	ch.Submit(Event{Data: []byte{1, 2, 3}})
	if n != 0 {
		t.Fatal("malformed batch delivered")
	}
}

// TestTypedChannelAcrossBridge checks format negotiation across address
// spaces, including the late-joiner attribute sync: the consumer imports
// the channel after the format was bound.
func TestTypedChannelAcrossBridge(t *testing.T) {
	c1, c2 := net.Pipe()
	d1, d2 := NewDomain(), NewDomain()
	b1, b2 := NewBridge(d1, c1), NewBridge(d2, c2)
	defer func() {
		b1.Close()
		b2.Close()
		<-b1.Done()
		<-b2.Done()
	}()

	prodCh := d1.OpenChannel("sensors")
	prod, err := BindFormat(prodCh, sensorFormat())
	if err != nil {
		t.Fatal(err)
	}

	imported, err := b2.ImportChannel("sensors")
	if err != nil {
		t.Fatal(err)
	}
	// The format attribute arrives asynchronously with the subscription.
	var cons *TypedChannel
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cons, err = OpenTyped(imported); err == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if cons == nil {
		t.Fatal("format attribute never propagated")
	}

	got := make(chan []pbio.Record, 1)
	cons.SubscribeRecords(func(recs []pbio.Record, _ Attributes) { got <- recs })

	for time.Now().Before(deadline) {
		if prodCh.Subscribers() > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	rec := pbio.NewRecord(prod.Format())
	rec.Ints[0][0] = 424242
	rec.Floats[1][0] = 3.25
	if err := prod.SubmitRecords([]pbio.Record{rec}, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case recs := <-got:
		if len(recs) != 1 || recs[0].Ints[0][0] != 424242 || recs[0].Floats[1][0] != 3.25 {
			t.Fatalf("records = %+v", recs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("typed event never arrived")
	}
}
