// Package lossy implements the paper's §5 future-work direction: letting
// end users "integrate their own, application-specific, lossy compression
// techniques into data streaming middleware". The paper motivates this
// with exactly the case our Figure 11/12 runs reproduce — molecular
// coordinate data that lossless methods cannot shrink, where the useful
// information fits in far fewer bits than IEEE-754 carries.
//
// Float64Quantizer is such a codec: it reads the payload as a little-endian
// float64 array, snaps each value to a caller-chosen absolute grid, delta
// codes the grid indices (scientific trajectories vary slowly), and entropy
// codes the result. It implements codec.Codec, so it deploys at runtime
// through the open registry and a derived channel, with no change to
// producers — the §3.2 mechanism.
package lossy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"ccx/internal/codec"
	"ccx/internal/huffman"
)

// ErrCorrupt is returned for malformed compressed data.
var ErrCorrupt = errors.New("lossy: corrupt input")

// Float64Quantizer is a lossy codec for streams of float64 values.
// Reconstructed values differ from the originals by at most Step/2.
type Float64Quantizer struct {
	id codec.Method
	// step is the quantization grid; larger steps compress harder.
	step float64
}

var _ codec.Codec = (*Float64Quantizer)(nil)

// NewFloat64Quantizer builds a quantizer with the given registry identifier
// (use codec.FirstCustom or above) and absolute tolerance step.
func NewFloat64Quantizer(id codec.Method, step float64) (*Float64Quantizer, error) {
	if id < codec.FirstCustom {
		return nil, fmt.Errorf("lossy: method id %v collides with built-in space; use ≥ %v",
			id, codec.FirstCustom)
	}
	if step <= 0 || math.IsInf(step, 0) || math.IsNaN(step) {
		return nil, fmt.Errorf("lossy: invalid step %v", step)
	}
	return &Float64Quantizer{id: id, step: step}, nil
}

// Method implements codec.Codec.
func (q *Float64Quantizer) Method() codec.Method { return q.id }

// Step reports the quantization grid.
func (q *Float64Quantizer) Step() float64 { return q.step }

// Compress implements codec.Codec. Payload layout:
//
//	tailLen(uvarint) tail(raw)            — bytes past the last full float64
//	interLen(uvarint) huffman(zigzag-varint deltas of grid indices)
//
// Values that do not survive quantization (NaN, ±Inf, |v| too large for the
// grid) abort with an error rather than silently corrupting science data.
func (q *Float64Quantizer) Compress(src []byte) ([]byte, error) {
	if len(src) == 0 {
		return nil, nil
	}
	n := len(src) / 8
	tail := src[n*8:]

	inter := make([]byte, 0, n*2+16)
	prev := int64(0)
	for i := 0; i < n; i++ {
		v := math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("lossy: value %v at index %d not quantizable", v, i)
		}
		idxF := math.Round(v / q.step)
		if idxF > math.MaxInt64/2 || idxF < math.MinInt64/2 {
			return nil, fmt.Errorf("lossy: value %v at index %d overflows the grid", v, i)
		}
		idx := int64(idxF)
		inter = binary.AppendVarint(inter, idx-prev)
		prev = idx
	}
	hc, err := huffman.Compress(inter)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(hc)+len(tail)+2*binary.MaxVarintLen64)
	out = binary.AppendUvarint(out, uint64(len(tail)))
	out = append(out, tail...)
	out = binary.AppendUvarint(out, uint64(len(inter)))
	return append(out, hc...), nil
}

// Decompress implements codec.Codec.
func (q *Float64Quantizer) Decompress(src []byte, origLen int) ([]byte, error) {
	if origLen == 0 {
		return nil, nil
	}
	tailLen, used := binary.Uvarint(src)
	if used <= 0 || uint64(len(src)-used) < tailLen || tailLen > 7 {
		return nil, fmt.Errorf("%w: tail header", ErrCorrupt)
	}
	src = src[used:]
	tail := src[:tailLen]
	src = src[tailLen:]
	interLen, used := binary.Uvarint(src)
	if used <= 0 || interLen > uint64(origLen)*3+64 {
		return nil, fmt.Errorf("%w: stream header", ErrCorrupt)
	}
	inter, err := huffman.Decompress(src[used:], int(interLen))
	if err != nil {
		return nil, err
	}
	n := (origLen - int(tailLen)) / 8
	if n*8+int(tailLen) != origLen {
		return nil, fmt.Errorf("%w: length %d not consistent with tail %d", ErrCorrupt, origLen, tailLen)
	}
	dst := make([]byte, 0, origLen)
	prev := int64(0)
	for i := 0; i < n; i++ {
		delta, used := binary.Varint(inter)
		if used <= 0 {
			return nil, fmt.Errorf("%w: truncated delta stream", ErrCorrupt)
		}
		inter = inter[used:]
		prev += delta
		v := float64(prev) * q.step
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return append(dst, tail...), nil
}
