package lossy

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ccx/internal/codec"
	"ccx/internal/core"
	"ccx/internal/datagen"
	"ccx/internal/echo"
	"ccx/internal/pbio"
)

func packFloats(vs []float64) []byte {
	out := make([]byte, 0, len(vs)*8)
	for _, v := range vs {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}

func unpackFloats(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := NewFloat64Quantizer(codec.Huffman, 0.1); err == nil {
		t.Fatal("built-in id accepted")
	}
	for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := NewFloat64Quantizer(codec.FirstCustom, bad); err == nil {
			t.Fatalf("step %v accepted", bad)
		}
	}
	q, err := NewFloat64Quantizer(codec.FirstCustom, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if q.Method() != codec.FirstCustom || q.Step() != 0.25 {
		t.Fatal("accessors broken")
	}
}

func TestToleranceBound(t *testing.T) {
	const step = 1e-3
	q, err := NewFloat64Quantizer(codec.FirstCustom, step)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	vals := make([]float64, 5000)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 100
	}
	src := packFloats(vals)
	comp, err := q.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	back, err := q.Decompress(comp, len(src))
	if err != nil {
		t.Fatal(err)
	}
	got := unpackFloats(back)
	for i, v := range vals {
		if d := math.Abs(got[i] - v); d > step/2+math.Abs(v)*1e-12 {
			t.Fatalf("index %d: error %v exceeds step/2", i, d)
		}
	}
}

func TestIdempotent(t *testing.T) {
	// Quantize(quantize(x)) == quantize(x): a second pass is lossless.
	q, _ := NewFloat64Quantizer(codec.FirstCustom, 0.01)
	vals := []float64{1.234567, -9.87654, 0, 42}
	src := packFloats(vals)
	c1, err := q.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := q.Decompress(c1, len(src))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := q.Compress(d1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := q.Decompress(c2, len(d1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatal("second quantization pass changed data")
	}
}

func TestBeatsLosslessOnCoordinates(t *testing.T) {
	// The motivating case: MD coordinates are nearly incompressible
	// losslessly (Figure 6) but collapse under application-chosen
	// tolerance.
	atoms := datagen.Molecular(20000, 6)
	_, _, coords, err := datagen.MolecularColumns(atoms)
	if err != nil {
		t.Fatal(err)
	}
	lossless, err := codec.Compress(codec.BurrowsWheeler, coords)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := NewFloat64Quantizer(codec.FirstCustom, 1e-4) // 0.1 mÅ grid
	lossyOut, err := q.Compress(coords)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("coords: %d bytes, lossless BWT %d (%.1f%%), lossy %d (%.1f%%)",
		len(coords), len(lossless), 100*float64(len(lossless))/float64(len(coords)),
		len(lossyOut), 100*float64(len(lossyOut))/float64(len(coords)))
	if len(lossyOut) >= len(lossless)/2 {
		t.Fatalf("lossy (%d) should compress at least 2x better than lossless (%d)",
			len(lossyOut), len(lossless))
	}
}

func TestTailBytes(t *testing.T) {
	q, _ := NewFloat64Quantizer(codec.FirstCustom, 0.5)
	src := append(packFloats([]float64{1, 2, 3}), 0xAA, 0xBB, 0xCC)
	comp, err := q.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	back, err := q.Decompress(comp, len(src))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back[len(back)-3:], []byte{0xAA, 0xBB, 0xCC}) {
		t.Fatal("tail bytes lost")
	}
}

func TestEmpty(t *testing.T) {
	q, _ := NewFloat64Quantizer(codec.FirstCustom, 0.5)
	out, err := q.Compress(nil)
	if err != nil || out != nil {
		t.Fatalf("got %v %v", out, err)
	}
	back, err := q.Decompress(nil, 0)
	if err != nil || back != nil {
		t.Fatalf("got %v %v", back, err)
	}
}

func TestRejectsNonFinite(t *testing.T) {
	q, _ := NewFloat64Quantizer(codec.FirstCustom, 0.5)
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e300} {
		if _, err := q.Compress(packFloats([]float64{v})); err == nil {
			t.Fatalf("value %v accepted", v)
		}
	}
}

func TestDecompressCorrupt(t *testing.T) {
	q, _ := NewFloat64Quantizer(codec.FirstCustom, 0.5)
	src := packFloats([]float64{1, 2, 3, 4})
	comp, _ := q.Compress(src)
	if _, err := q.Decompress(comp[:2], len(src)); err == nil {
		t.Fatal("truncation accepted")
	}
	if _, err := q.Decompress([]byte{0xFF, 0xFF, 0xFF}, 32); err == nil {
		t.Fatal("garbage accepted")
	}
	// Wrong origLen inconsistent with tail.
	if _, err := q.Decompress(comp, len(src)+3); err == nil {
		t.Fatal("inconsistent length accepted")
	}
}

func TestQuickToleranceProperty(t *testing.T) {
	q, _ := NewFloat64Quantizer(codec.FirstCustom, 0.01)
	f := func(raw []int32) bool {
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r) / 1000
		}
		src := packFloats(vals)
		comp, err := q.Compress(src)
		if err != nil {
			return false
		}
		back, err := q.Decompress(comp, len(src))
		if err != nil {
			return false
		}
		got := unpackFloats(back)
		for i := range vals {
			if math.Abs(got[i]-vals[i]) > 0.005+math.Abs(vals[i])*1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestRuntimeDeploymentThroughMiddleware is the full §5 story: a lossy,
// application-specific codec registered at runtime, deployed as a derived
// channel handler, decoded transparently by the consumer.
func TestRuntimeDeploymentThroughMiddleware(t *testing.T) {
	const step = 1e-3
	q, err := NewFloat64Quantizer(codec.FirstCustom, step)
	if err != nil {
		t.Fatal(err)
	}
	reg := codec.NewRegistry()
	reg.Register(q)

	engine, err := core.NewEngine(core.Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	_ = engine // the lossy path below frames blocks directly with the registry

	domain := echo.NewDomain()
	src := domain.OpenChannel("md.coords")
	// Handler: frame every event with the lossy method (the application
	// knows its tolerance; the adaptive selector governs lossless methods).
	derived, err := src.Derive("md.coords.lossy", func(ev echo.Event) (echo.Event, bool) {
		var buf bytes.Buffer
		fw := codec.NewFrameWriter(&buf, reg)
		if _, err := fw.WriteBlock(q.Method(), ev.Data); err != nil {
			return echo.Event{}, false
		}
		return echo.Event{Data: append([]byte(nil), buf.Bytes()...), Attrs: ev.Attrs}, true
	})
	if err != nil {
		t.Fatal(err)
	}

	atoms := datagen.Molecular(2000, 8)
	batch, err := datagen.MolecularBatch(atoms)
	if err != nil {
		t.Fatal(err)
	}
	f := datagen.MolecularFormat()
	coords, err := pbio.ExtractColumn(batch, f, f.FieldIndex("coordinates"))
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wireLen int
	derived.Subscribe(func(ev echo.Event) {
		defer close(done)
		wireLen = len(ev.Data)
		data, info, err := codec.NewFrameReader(bytes.NewReader(ev.Data), reg).ReadBlock()
		if err != nil {
			t.Errorf("decode: %v", err)
			return
		}
		if info.Method != q.Method() {
			t.Errorf("method = %v", info.Method)
		}
		got := unpackFloats(data)
		want := unpackFloats(coords)
		for i := range want {
			if math.Abs(got[i]-want[i]) > step/2+1e-12 {
				t.Errorf("coord %d off by %v", i, math.Abs(got[i]-want[i]))
				return
			}
		}
	})
	if err := src.Submit(echo.Event{Data: coords}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("event never delivered")
	}
	if wireLen >= len(coords)/2 {
		t.Fatalf("lossy channel shipped %d of %d bytes", wireLen, len(coords))
	}
}
