// Package tracing is the cross-hop, per-block distributed trace for ccx
// streams. The publisher stamps a compact trace context (trace id + origin
// wall/monotonic timestamps) into a frame v4 annotation for a head-sampled
// subset of blocks; every hop that handles an annotated block appends local
// span records — probe, decide, encode, queue wait, write, decode — to a
// lock-free ring modeled on the obs decision ring, exported as JSONL over
// the debug HTTP plane (/debug/spans) and optionally to a file. Anomalies
// (corrupt frames, resyncs, gaps, migrations, resumes) are recorded
// regardless of the sampling decision so the rare events that motivate
// tracing are never lost. cmd/cctrace stitches dumps from N hops into
// per-block waterfalls with critical-path attribution (see stitch.go).
package tracing

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"sync/atomic"
)

// Span stage names. A span is one timed interval of one block's life on one
// hop; stages are coarse on purpose — they are the rows of the cctrace
// critical-path table.
const (
	// StageStamp marks trace-context creation at the origin hop. Its start
	// time is the trace's epoch; duration is zero.
	StageStamp = "stamp"
	// StageProbe is the sampling probe (paper §2.5): compressing the probe
	// prefix to estimate ratio and reducing speed.
	StageProbe = "probe"
	// StageDecide is selector evaluation — probe join wait included on the
	// pipelined path.
	StageDecide = "decide"
	// StageEncode is payload compression plus frame construction.
	StageEncode = "encode"
	// StagePipeWait is time a finished encode waited for the in-order
	// emission sequencer (pipeline head-of-line wait).
	StagePipeWait = "pipe-wait"
	// StageQueue is time a frame waited in a broker subscriber queue
	// between fan-out and dequeue.
	StageQueue = "queue"
	// StageWrite is the blocking socket write of the encoded frame.
	StageWrite = "write"
	// StageDecode is frame decode + payload decompression at a receiving
	// hop (the broker ingesting a publisher frame, or the final receiver).
	StageDecode = "decode"
	// StageResync is corrupt-frame recovery: scanning the stream for the
	// next plausible boundary. Always recorded (anomaly).
	StageResync = "resync"
	// StageGap is a delivery-tracker gap observation: seq jumped forward.
	// Always recorded (anomaly).
	StageGap = "gap"
	// StageDup is a delivery-tracker duplicate suppression. Always
	// recorded (anomaly).
	StageDup = "dup"
	// StageMigrate is a subscriber's class migration on the broker (the
	// adaptation loop changed method or placement). Always recorded.
	StageMigrate = "migrate"
	// StageResume is a RESUME handshake replaying a subscriber's tail.
	// Always recorded (anomaly).
	StageResume = "resume"
	// StagePressure is an overload-governor level transition (ok/elevated/
	// critical). Always recorded; marked anomaly when entering pressure.
	StagePressure = "pressure"
)

// Span is one record in a hop's span ring: a stage of one block's life,
// timed on the local clock. JSON field names are the /debug/spans and
// spans.jsonl wire format consumed by cmd/cctrace.
type Span struct {
	// Trace links spans across hops; 0 marks an always-on anomaly span for
	// a block whose trace context was absent or unsampled.
	Trace uint64 `json:"trace"`
	// Seq is the block sequence at this hop (publisher block index + 1, or
	// the broker channel sequence); 0 when unknown.
	Seq uint64 `json:"seq,omitempty"`
	// Hop names the recording process ("pub", "broker", "recv", or as
	// configured); Stream narrows it to a flow within the process (e.g. a
	// broker subscriber id).
	Hop    string `json:"hop"`
	Stream string `json:"stream,omitempty"`
	Stage  string `json:"stage"`
	// Start is local wall-clock Unix nanoseconds; Dur the span length.
	// Clocks are NOT assumed synchronized across hops — cctrace
	// skew-corrects at stitch time.
	Start int64 `json:"start_ns"`
	Dur   int64 `json:"dur_ns"`
	// OriginWall echoes the trace context's origin wall clock on remote
	// hops, so a two-file stitch still has the trace epoch when the origin
	// hop's dump is missing.
	OriginWall int64  `json:"origin_wall_ns,omitempty"`
	Method     string `json:"method,omitempty"`
	Placement  string `json:"placement,omitempty"`
	// Class is the encode-plane class key and CacheHit whether the frame
	// came from the (seq, method) frame cache rather than a fresh encode.
	Class    string `json:"class,omitempty"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	// Bytes is the wire size relevant to the stage (frame bytes for
	// encode/write, compressed payload for decode).
	Bytes int    `json:"bytes,omitempty"`
	Err   string `json:"err,omitempty"`
	// Anomaly marks spans recorded outside the head sampling decision.
	Anomaly bool `json:"anomaly,omitempty"`
}

// Ring is a bounded, lock-free span buffer, same design as the obs
// decision ring: writers atomically claim a slot index and publish a
// pointer; readers snapshot without blocking writers. Overwrites under
// wrap or torn reads lose individual spans, never corrupt them.
type Ring struct {
	slots []atomic.Pointer[ringSlot]
	next  atomic.Uint64
	mask  uint64
}

type ringSlot struct {
	seq  uint64
	span Span
}

// NewRing returns a ring holding the most recent size spans (rounded up to
// a power of two, minimum 16).
func NewRing(size int) *Ring {
	n := 16
	for n < size {
		n <<= 1
	}
	return &Ring{slots: make([]atomic.Pointer[ringSlot], n), mask: uint64(n - 1)}
}

// Add appends one span. Safe for any number of concurrent writers; the
// nil ring drops it.
func (r *Ring) Add(s Span) {
	if r == nil {
		return
	}
	seq := r.next.Add(1) - 1
	r.slots[seq&r.mask].Store(&ringSlot{seq: seq, span: s})
}

// Len reports how many spans have ever been added (not how many are
// retained).
func (r *Ring) Len() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Recent returns up to max of the newest spans, oldest first. Slots being
// overwritten mid-snapshot are skipped: only records whose claimed sequence
// matches the expected one survive.
func (r *Ring) Recent(max int) []Span {
	if r == nil {
		return nil
	}
	if max <= 0 || max > len(r.slots) {
		max = len(r.slots)
	}
	end := r.next.Load()
	start := uint64(0)
	if end > uint64(max) {
		start = end - uint64(max)
	}
	out := make([]Span, 0, end-start)
	for seq := start; seq < end; seq++ {
		if slot := r.slots[seq&r.mask].Load(); slot != nil && slot.seq == seq {
			out = append(out, slot.span)
		}
	}
	return out
}

// WriteJSONL streams up to max recent spans as JSON Lines, oldest first —
// the /debug/spans format cmd/cctrace consumes.
func (r *Ring) WriteJSONL(w io.Writer, max int) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range r.Recent(max) {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL span dump (the inverse of WriteJSONL). Blank
// lines are skipped. A malformed *final* line is tolerated — a hop killed
// mid-write (crash, SIGKILL, fatal SIGPIPE) always tears the buffered tail
// of its -trace-out file, and a post-mortem must still stitch the spans
// that made it to disk. A malformed line anywhere else is real corruption
// and aborts with its error.
func ReadJSONL(rd io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	var out []Span
	var pendErr error // malformed line, fatal unless it proves to be last
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if pendErr != nil {
			return out, pendErr
		}
		var s Span
		if err := json.Unmarshal(line, &s); err != nil {
			pendErr = err
			continue
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	return out, nil
}
