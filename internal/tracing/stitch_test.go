package tracing

import (
	"os"
	"testing"
)

func readFile(path string) ([]byte, error) { return os.ReadFile(path) }

// synthetic three-hop trace: publisher at wall 1000, broker clock running
// 5000ns ahead, receiver 9000ns ahead. True one-way delay pub→broker is
// 100ns on the fastest block, broker→recv 200ns.
func threeHopSpans() []Span {
	mk := func(hop, stage string, trace uint64, start, dur int64) Span {
		return Span{Trace: trace, Hop: hop, Stage: stage, Start: start, Dur: dur}
	}
	var spans []Span
	for i := int64(0); i < 4; i++ {
		id := uint64(i + 1)
		base := 1000 + i*10_000
		jitter := i * 50 // later blocks see more queueing, so the min-gap floor comes from block 0
		spans = append(spans,
			mk("pub", StageStamp, id, base, 0),
			mk("pub", StageProbe, id, base, 30),
			mk("pub", StageEncode, id, base+30, 400),
			mk("pub", StageWrite, id, base+430, 70),
			// broker clock = true + 5000; arrives 100ns after pub write end.
			mk("broker", StageDecode, id, base+500+100+jitter+5000, 60),
			mk("broker", StageQueue, id, base+660+jitter+5000, 300),
			mk("broker", StageWrite, id, base+960+jitter+5000, 40),
			// recv clock = true + 9000; arrives 200ns after broker write end.
			mk("recv", StageDecode, id, base+1000+jitter+200+9000, 150),
		)
	}
	return spans
}

func TestStitchSkewCorrection(t *testing.T) {
	r := Stitch(threeHopSpans())
	if r.Origin != "pub" {
		t.Fatalf("origin: got %q want pub", r.Origin)
	}
	if len(r.Traces) != 4 {
		t.Fatalf("traces: got %d want 4", len(r.Traces))
	}
	// The broker's fastest first-span gap vs the publisher's corrected
	// write end is 100 (true delay) + 5000 (skew); the chain correction
	// absorbs both, pinning the floor block's hand-off gap at zero.
	if off := r.Offsets["broker"]; off != 5100 {
		t.Fatalf("broker offset: got %d want 5100", off)
	}
	// recv corrects against the broker's corrected write end
	// (base+900): gap = 200 (true) + 100 (queue floor error) + 9000.
	if off := r.Offsets["recv"]; off != 9300 {
		t.Fatalf("recv offset: got %d want 9300", off)
	}
	for _, tr := range r.Complete(3) {
		if got := tr.Hops; len(got) != 3 || got[0] != "pub" || got[2] != "recv" {
			t.Fatalf("hop order: %v", got)
		}
		// Corrected spans must be causally ordered: no downstream span
		// before the trace epoch.
		for _, s := range tr.Spans {
			if s.Start < tr.Start() {
				t.Fatalf("span before trace start after correction: %+v", s)
			}
		}
	}
	if len(r.Complete(3)) != 4 {
		t.Fatalf("complete(3): got %d want 4", len(r.Complete(3)))
	}
}

// Attribution must partition the end-to-end duration exactly: the sum of
// all (hop, stage) rows — wire and idle pseudo-stages included — equals
// Duration(). This is the acceptance criterion's "percentages sum to the
// measured end-to-end latency".
func TestAttributionSumsToDuration(t *testing.T) {
	r := Stitch(threeHopSpans())
	for _, tr := range r.Traces {
		var sum int64
		rows := tr.Attribution()
		for _, row := range rows {
			sum += row.Ns
			if row.Ns < 0 {
				t.Fatalf("negative attribution row: %+v", row)
			}
		}
		if sum != tr.Duration() {
			t.Fatalf("trace %d: attribution sums to %d, duration %d (rows %+v)",
				tr.ID, sum, tr.Duration(), rows)
		}
	}
	// The fastest block's wire rows exist and the broker queue dominates
	// where expected.
	tr := r.Traces[0]
	byStage := map[string]int64{}
	for _, row := range tr.Attribution() {
		byStage[row.Stage] += row.Ns
	}
	if byStage[StageEncode] != 400 || byStage[StageQueue] != 300 {
		t.Fatalf("stage totals off: %+v", byStage)
	}
}

func TestStitchAnomalies(t *testing.T) {
	spans := threeHopSpans()
	spans = append(spans, Span{Trace: 0, Hop: "recv", Stage: StageResync, Anomaly: true, Dur: 10})
	spans = append(spans, Span{Trace: 1, Hop: "recv", Stage: StageGap, Anomaly: true})
	r := Stitch(spans)
	if len(r.Anomalies) != 2 {
		t.Fatalf("anomalies: got %d want 2", len(r.Anomalies))
	}
	// The trace-linked anomaly also joins its trace.
	for _, tr := range r.Traces {
		if tr.ID == 1 {
			found := false
			for _, s := range tr.Spans {
				if s.Stage == StageGap {
					found = true
				}
			}
			if !found {
				t.Fatal("trace-linked anomaly span missing from trace")
			}
		}
	}
}

func TestPercentile(t *testing.T) {
	durs := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if p := Percentile(durs, 50); p != 50 {
		t.Fatalf("p50: got %d", p)
	}
	if p := Percentile(durs, 99); p != 100 {
		t.Fatalf("p99: got %d", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Fatalf("empty: got %d", p)
	}
}
