package tracing

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer is one hop's span recorder: it owns the sampling decision at the
// origin, mints trace contexts, and sinks spans into the hop's ring (and
// optionally a JSONL file). All methods are nil-safe — a nil *Tracer is
// the disabled tracer, so call sites carry no conditionals — and safe for
// concurrent use.
type Tracer struct {
	hop   string
	ring  *Ring
	start time.Time // monotonic epoch for Context.MonoNs

	// Head-based sampling: every period-th Sample() call says yes. A
	// deterministic stride (not a PRNG) keeps the hot path to one atomic
	// add and makes smoke tests reproducible; period 0 disables, 1 traces
	// everything.
	period uint64
	calls  atomic.Uint64

	idSeed uint64
	idCtr  atomic.Uint64

	mu sync.Mutex // guards the optional file sink
	fw *bufio.Writer
	fc io.Closer
}

// New returns a Tracer for the named hop sampling the given rate (0..1;
// 0 disables origin sampling but anomaly spans still record) with a ring
// retaining ringSize spans.
func New(hop string, rate float64, ringSize int) *Tracer {
	t := &Tracer{
		hop:    hop,
		ring:   NewRing(ringSize),
		start:  time.Now(),
		idSeed: uint64(time.Now().UnixNano()),
	}
	switch {
	case rate >= 1:
		t.period = 1
	case rate > 0:
		t.period = uint64(1/rate + 0.5)
	}
	return t
}

// SetOutput attaches a JSONL sink: every recorded span is also appended to
// w (buffered; Close flushes). Pass the file from os.Create; the Tracer
// takes ownership.
func (t *Tracer) SetOutput(w io.WriteCloser) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fw = bufio.NewWriter(w)
	t.fc = w
}

// OpenOutput is SetOutput for a file path.
func (t *Tracer) OpenOutput(path string) error {
	if t == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	t.SetOutput(f)
	return nil
}

// Close flushes and closes the file sink, if any.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.fw == nil {
		return nil
	}
	err := t.fw.Flush()
	if cerr := t.fc.Close(); err == nil {
		err = cerr
	}
	t.fw, t.fc = nil, nil
	return err
}

// Hop returns the tracer's hop name ("" for the nil tracer).
func (t *Tracer) Hop() string {
	if t == nil {
		return ""
	}
	return t.hop
}

// Ring exposes the span ring for the debug HTTP plane (nil for the nil
// tracer).
func (t *Tracer) Ring() *Ring {
	if t == nil {
		return nil
	}
	return t.ring
}

// Sample makes the head-based sampling decision for one origin block.
// Exactly the origin hop calls it — downstream hops trace whatever arrives
// annotated.
func (t *Tracer) Sample() bool {
	if t == nil || t.period == 0 {
		return false
	}
	return t.calls.Add(1)%t.period == 0
}

// NewContext mints a trace context stamped with the local clocks. Call
// only after Sample() said yes.
func (t *Tracer) NewContext() Context {
	if t == nil {
		return Context{}
	}
	now := time.Now()
	return Context{
		Trace:  splitmix64(t.idSeed + t.idCtr.Add(1)),
		WallNs: now.UnixNano(),
		MonoNs: int64(now.Sub(t.start)),
	}
}

// Record appends one span, stamping the hop name. The nil tracer drops it.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	s.Hop = t.hop
	t.ring.Add(s)
	t.mu.Lock()
	if t.fw != nil {
		// Encoding under the lock keeps file lines whole; the file sink is
		// for smoke tests and post-mortems, not the hot path.
		b, err := json.Marshal(s)
		if err == nil {
			t.fw.Write(b)
			t.fw.WriteByte('\n')
		}
	}
	t.mu.Unlock()
}

// splitmix64 is the SplitMix64 output function: a cheap bijective mixer
// turning a counter into well-spread 64-bit trace ids (0 is remapped, as 0
// means "no trace").
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}
