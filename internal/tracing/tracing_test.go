package tracing

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestContextAnnoRoundtrip(t *testing.T) {
	c := Context{Trace: 0xDEADBEEFCAFE, WallNs: time.Now().UnixNano(), MonoNs: 12345678}
	anno := c.AppendAnno(nil)
	got := ParseAnno(anno)
	if got != c {
		t.Fatalf("roundtrip: got %+v want %+v", got, c)
	}
	if !got.Valid() {
		t.Fatal("parsed context should be valid")
	}
}

func TestParseAnnoSkipsUnknownKinds(t *testing.T) {
	c := Context{Trace: 7, WallNs: 100, MonoNs: 50}
	// Unknown TLV kind 0x7F before the trace context, and trailing junk
	// kind after it: both must be skipped / ignored.
	anno := append([]byte{0x7F, 3, 1, 2, 3}, c.AppendAnno(nil)...)
	anno = append(anno, 0x42, 1, 9)
	if got := ParseAnno(anno); got != c {
		t.Fatalf("got %+v want %+v", got, c)
	}
}

func TestParseAnnoMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{annoKindTrace},                // kind with no length
		{annoKindTrace, 200, 1},        // length overruns buffer
		{annoKindTrace, 1, 0x80},       // truncated uvarint body
		{0x7F, 5, 1, 2},                // unknown kind overrunning
		bytes.Repeat([]byte{0x80}, 16), // varint garbage
	}
	for _, anno := range cases {
		if got := ParseAnno(anno); got.Valid() {
			t.Fatalf("ParseAnno(%x) = %+v, want invalid", anno, got)
		}
	}
}

func TestTracerSamplingPeriod(t *testing.T) {
	tr := New("pub", 0.25, 64)
	hits := 0
	for i := 0; i < 400; i++ {
		if tr.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("rate 0.25 over 400 calls: got %d samples, want 100", hits)
	}
	if tr := New("pub", 0, 64); tr.Sample() {
		t.Fatal("rate 0 must never sample")
	}
	always := New("pub", 1, 64)
	for i := 0; i < 10; i++ {
		if !always.Sample() {
			t.Fatal("rate 1 must always sample")
		}
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Sample() {
		t.Fatal("nil tracer sampled")
	}
	tr.Record(Span{Stage: StageStamp})
	if tr.Ring() != nil || tr.Hop() != "" || tr.NewContext().Valid() {
		t.Fatal("nil tracer accessors must be zero")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRingRecentAndJSONL(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 100; i++ {
		r.Add(Span{Trace: uint64(i + 1), Stage: StageEncode})
	}
	recent := r.Recent(0)
	if len(recent) != 64 {
		t.Fatalf("Recent: got %d spans, want 64", len(recent))
	}
	if recent[0].Trace != 37 || recent[63].Trace != 100 {
		t.Fatalf("Recent window wrong: first=%d last=%d", recent[0].Trace, recent[63].Trace)
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, 10); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 10 {
		t.Fatalf("WriteJSONL lines: got %d want 10", n)
	}
	spans, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 10 || spans[9].Trace != 100 {
		t.Fatalf("ReadJSONL: %d spans, last trace %d", len(spans), spans[len(spans)-1].Trace)
	}
}

// TestRingDumpRace drives concurrent Add against WriteJSONL snapshots —
// under -race this proves the lock-free ring's publication discipline, and
// functionally that a dump taken mid-write only ever contains whole spans.
func TestRingDumpRace(t *testing.T) {
	r := NewRing(128)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					r.Add(Span{Trace: uint64(w*1_000_000 + i + 1), Stage: StageWrite, Dur: 1})
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WriteJSONL(&buf, 0); err != nil {
			t.Fatal(err)
		}
		spans, err := ReadJSONL(&buf)
		if err != nil {
			t.Fatalf("dump %d produced malformed JSONL: %v", i, err)
		}
		for _, s := range spans {
			if s.Trace == 0 || s.Dur != 1 {
				t.Fatalf("torn span surfaced: %+v", s)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestTracerFileSink(t *testing.T) {
	tr := New("recv", 1, 16)
	path := t.TempDir() + "/spans.jsonl"
	if err := tr.OpenOutput(path); err != nil {
		t.Fatal(err)
	}
	tr.Record(Span{Trace: 9, Stage: StageDecode, Dur: 42})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	spans, err := ReadJSONL(bytes.NewReader(b))
	if err != nil || len(spans) != 1 {
		t.Fatalf("file sink: %v, %d spans", err, len(spans))
	}
	if spans[0].Hop != "recv" || spans[0].Trace != 9 {
		t.Fatalf("bad span in file: %+v", spans[0])
	}
}

// TestReadJSONLTornTail pins the post-mortem contract: a hop killed
// mid-write leaves a truncated final line in its -trace-out file, and
// ReadJSONL must return every complete span instead of aborting. Damage
// anywhere but the tail is real corruption and still errors.
func TestReadJSONLTornTail(t *testing.T) {
	var buf bytes.Buffer
	r := NewRing(16)
	for i := 1; i <= 3; i++ {
		r.Add(Span{Trace: uint64(i), Hop: "h", Stage: StageWrite})
	}
	if err := r.WriteJSONL(&buf, 0); err != nil {
		t.Fatal(err)
	}
	whole := buf.String()

	// Tear the last line mid-record, as a dead buffered writer would.
	torn := whole[:len(whole)-20]
	spans, err := ReadJSONL(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("torn tail should be tolerated, got %v", err)
	}
	if len(spans) != 2 || spans[1].Trace != 2 {
		t.Fatalf("want the 2 complete spans, got %+v", spans)
	}

	// The same damage mid-file is corruption, not truncation.
	lines := strings.SplitAfter(whole, "\n")
	corrupt := lines[0][:len(lines[0])-20] + "\n" + lines[1] + lines[2]
	if _, err := ReadJSONL(strings.NewReader(corrupt)); err == nil {
		t.Fatal("mid-file damage must error")
	}
}
