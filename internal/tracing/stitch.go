package tracing

import (
	"sort"
)

// Trace is one block's stitched, skew-corrected life across hops.
type Trace struct {
	ID uint64
	// Spans hold corrected Start values (the per-hop offset from
	// Report.Offsets already subtracted), sorted by Start.
	Spans []Span
	// Hops lists the distinct hops that recorded spans, in causal
	// (corrected first-span) order.
	Hops []string
}

// Start and End bound the corrected trace; Duration is the end-to-end
// latency the critical-path attribution must sum to.
func (t *Trace) Start() int64 {
	if len(t.Spans) == 0 {
		return 0
	}
	return t.Spans[0].Start
}

func (t *Trace) End() int64 {
	var end int64
	for _, s := range t.Spans {
		if e := s.Start + s.Dur; e > end {
			end = e
		}
	}
	return end
}

func (t *Trace) Duration() int64 { return t.End() - t.Start() }

// Complete reports whether the trace saw at least minHops distinct hops —
// the smoke test's "publisher → broker → receiver" assertion is
// Complete(3).
func (t *Trace) Complete(minHops int) bool { return len(t.Hops) >= minHops }

// Placement returns the publisher-side placement decision recorded on the
// trace ("" when no span carried one).
func (t *Trace) Placement() string {
	for _, s := range t.Spans {
		if s.Placement != "" {
			return s.Placement
		}
	}
	return ""
}

// StageCost is one row of a critical-path attribution: time assigned to a
// (hop, stage) pair. The pseudo-stages "wire" (uncovered time between two
// hops' spans, attributed to the arriving hop) and "idle" (uncovered time
// within one hop) complete the partition, so a trace's rows sum exactly to
// its Duration.
type StageCost struct {
	Hop   string `json:"hop"`
	Stage string `json:"stage"`
	Ns    int64  `json:"ns"`
}

// StageWire and StageIdle are the attribution-only pseudo-stages.
const (
	StageWire = "wire"
	StageIdle = "idle"
)

// Attribution partitions the trace's end-to-end duration across
// (hop, stage) rows by an innermost-span sweep: every instant between
// Start and End is charged to the latest-started span covering it; time
// covered by no span is charged to "wire" on the next hop when the
// surrounding spans belong to different hops, else to "idle" on the
// current hop. Rows are returned largest first and sum exactly to
// Duration().
func (t *Trace) Attribution() []StageCost {
	if len(t.Spans) == 0 {
		return nil
	}
	// Elementary intervals between consecutive span boundaries.
	cuts := make([]int64, 0, 2*len(t.Spans))
	for _, s := range t.Spans {
		cuts = append(cuts, s.Start, s.Start+s.Dur)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	type key struct{ hop, stage string }
	acc := make(map[key]int64)
	for i := 0; i+1 < len(cuts); i++ {
		a, b := cuts[i], cuts[i+1]
		if a >= b {
			continue
		}
		// Innermost covering span: the one that started last.
		var cover *Span
		for j := range t.Spans {
			s := &t.Spans[j]
			if s.Start <= a && b <= s.Start+s.Dur && s.Dur > 0 {
				if cover == nil || s.Start >= cover.Start {
					cover = s
				}
			}
		}
		if cover != nil {
			acc[key{cover.Hop, cover.Stage}] += b - a
			continue
		}
		// Uncovered: wire when the gap crosses hops, idle otherwise.
		prev, next := t.neighbor(a, -1), t.neighbor(b, +1)
		switch {
		case prev != nil && next != nil && prev.Hop != next.Hop:
			acc[key{next.Hop, StageWire}] += b - a
		case next != nil:
			acc[key{next.Hop, StageIdle}] += b - a
		case prev != nil:
			acc[key{prev.Hop, StageIdle}] += b - a
		}
	}
	out := make([]StageCost, 0, len(acc))
	for k, ns := range acc {
		out = append(out, StageCost{Hop: k.hop, Stage: k.stage, Ns: ns})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ns != out[j].Ns {
			return out[i].Ns > out[j].Ns
		}
		return out[i].Hop+out[i].Stage < out[j].Hop+out[j].Stage
	})
	return out
}

// neighbor finds the span ending at or before ts (dir<0) or starting at or
// after ts (dir>0) that is closest to it.
func (t *Trace) neighbor(ts int64, dir int) *Span {
	var best *Span
	for j := range t.Spans {
		s := &t.Spans[j]
		if dir < 0 {
			if e := s.Start + s.Dur; e <= ts && (best == nil || e > best.Start+best.Dur) {
				best = s
			}
		} else {
			if s.Start >= ts && (best == nil || s.Start < best.Start) {
				best = s
			}
		}
	}
	return best
}

// Report is the result of stitching span dumps from N hops.
type Report struct {
	// Traces are the stitched traces, oldest first.
	Traces []*Trace
	// Origin is the hop that stamped trace contexts (the one recording
	// "stamp" spans).
	Origin string
	// Offsets records the per-hop clock correction (nanoseconds
	// subtracted from that hop's Start values). The correction pins each
	// hop's fastest observed origin→hop latency at zero — a one-way-delay
	// floor, since without a synchronized clock or an RTT estimate the
	// propagation delay and the clock skew are indistinguishable.
	Offsets map[string]int64
	// Anomalies are the always-on spans (resync, gap, dup, migrate,
	// resume, corrupt decodes) across all hops, including those with no
	// trace id.
	Anomalies []Span
}

// Complete filters to traces that saw at least minHops distinct hops.
func (r *Report) Complete(minHops int) []*Trace {
	var out []*Trace
	for _, t := range r.Traces {
		if t.Complete(minHops) {
			out = append(out, t)
		}
	}
	return out
}

// Stitch groups spans by trace id, computes per-hop clock-skew
// corrections, and returns the corrected traces plus the anomaly roll-up.
// Spans may come from any number of hop dumps in any order.
func Stitch(spans []Span) *Report {
	r := &Report{Offsets: make(map[string]int64)}
	byTrace := make(map[uint64][]Span)
	for _, s := range spans {
		if s.Anomaly {
			r.Anomalies = append(r.Anomalies, s)
		}
		if s.Trace != 0 {
			byTrace[s.Trace] = append(byTrace[s.Trace], s)
		}
	}

	// The origin hop is the one stamping contexts.
	originVotes := make(map[string]int)
	for _, ss := range byTrace {
		for _, s := range ss {
			if s.Stage == StageStamp {
				originVotes[s.Hop]++
			}
		}
	}
	for hop, n := range originVotes {
		if n > originVotes[r.Origin] || r.Origin == "" {
			r.Origin = hop
		}
	}

	// Causal hop ordering. Clocks are not comparable before correction,
	// so raw timestamps cannot order hops; the stage mix can. The origin
	// stamps; any other hop that records write spans forwards frames (the
	// broker); hops that only receive are terminal. That matches every
	// topology this system builds (publisher → broker* → receiver).
	tier := func(hop string, writes map[string]bool) int {
		switch {
		case hop == r.Origin:
			return 0
		case writes[hop]:
			return 1
		default:
			return 2
		}
	}
	writes := make(map[string]bool)
	allHops := make(map[string]bool)
	for _, ss := range byTrace {
		for _, s := range ss {
			allHops[s.Hop] = true
			if s.Stage == StageWrite {
				writes[s.Hop] = true
			}
		}
	}
	hopOrder := make([]string, 0, len(allHops))
	for hop := range allHops {
		hopOrder = append(hopOrder, hop)
	}
	sort.Slice(hopOrder, func(i, j int) bool {
		ti, tj := tier(hopOrder[i], writes), tier(hopOrder[j], writes)
		if ti != tj {
			return ti < tj
		}
		return hopOrder[i] < hopOrder[j]
	})

	// Chain skew correction in causal order: each hop's offset is the
	// minimum over traces of (hop's first span start − the latest
	// corrected end among upstream hops in that trace). Subtracting it
	// pins the hop's fastest observed hand-off gap at zero — the one-way-
	// delay floor; see Report.Offsets.
	offsets := make(map[string]int64)
	for i, hop := range hopOrder {
		if i == 0 {
			offsets[hop] = 0
			continue
		}
		upstream := hopOrder[:i]
		best, seen := int64(0), false
		for _, ss := range byTrace {
			var first int64
			var hasFirst bool
			var prevEnd int64
			var hasPrev bool
			for _, s := range ss {
				if s.Hop == hop {
					if !hasFirst || s.Start < first {
						first, hasFirst = s.Start, true
					}
					continue
				}
				for _, up := range upstream {
					if s.Hop == up {
						if e := s.Start - offsets[up] + s.Dur; !hasPrev || e > prevEnd {
							prevEnd, hasPrev = e, true
						}
					}
				}
			}
			if hasFirst && hasPrev {
				if d := first - prevEnd; !seen || d < best {
					best, seen = d, true
				}
			}
		}
		if seen {
			offsets[hop] = best
		} else {
			offsets[hop] = 0
		}
	}
	r.Offsets = offsets

	ids := make([]uint64, 0, len(byTrace))
	for id := range byTrace {
		ids = append(ids, id)
	}
	for _, id := range ids {
		ss := byTrace[id]
		for i := range ss {
			if off, ok := offsets[ss[i].Hop]; ok && ss[i].Hop != r.Origin {
				ss[i].Start -= off
			}
		}
		sort.SliceStable(ss, func(i, j int) bool { return ss[i].Start < ss[j].Start })
		t := &Trace{ID: id, Spans: ss}
		hopSeen := make(map[string]bool)
		for _, s := range ss {
			if !hopSeen[s.Hop] {
				hopSeen[s.Hop] = true
				t.Hops = append(t.Hops, s.Hop)
			}
		}
		r.Traces = append(r.Traces, t)
	}
	sort.Slice(r.Traces, func(i, j int) bool { return r.Traces[i].Start() < r.Traces[j].Start() })
	return r
}

// Percentile returns the p-th percentile (0..100, nearest-rank) of ns
// durations; 0 for an empty slice.
func Percentile(durs []int64, p float64) int64 {
	if len(durs) == 0 {
		return 0
	}
	sorted := append([]int64(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p/100*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
