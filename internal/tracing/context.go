package tracing

import (
	"encoding/binary"
	"time"
)

// Annotation TLV kinds. A frame v4 annotation block is a sequence of
// records: kind(1 byte) length(uvarint) payload(length bytes). Consumers
// skip kinds they do not understand, so new kinds never need a frame
// version bump.
const (
	// annoKindTrace carries a trace context: trace id, origin wall clock
	// (Unix nanoseconds), origin monotonic reading (nanoseconds since the
	// origin tracer started) — all uvarint-encoded.
	annoKindTrace = 0x01
)

// Context is the trace context a publisher stamps into a frame v4
// annotation and every downstream hop copies forward: the trace id plus
// the origin's wall and monotonic clocks at stamp time. The zero Context
// means "unsampled".
type Context struct {
	Trace uint64
	// WallNs is the origin's wall clock (Unix ns) at stamp time — the
	// trace epoch all hops' spans are measured against after skew
	// correction.
	WallNs int64
	// MonoNs is the origin's monotonic clock at stamp time (ns since the
	// origin process's tracer start). Wall clocks can step mid-trace;
	// origin-side durations derived from MonoNs cannot.
	MonoNs int64
}

// Valid reports whether the context was stamped (trace ids are never 0).
func (c Context) Valid() bool { return c.Trace != 0 }

// AppendAnno appends the context as one TLV record to dst, returning the
// extended slice — the bytes that go inside a frame v4 annotation block.
func (c Context) AppendAnno(dst []byte) []byte {
	var body [3 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(body[:], c.Trace)
	n += binary.PutUvarint(body[n:], uint64(c.WallNs))
	n += binary.PutUvarint(body[n:], uint64(c.MonoNs))
	dst = append(dst, annoKindTrace)
	dst = binary.AppendUvarint(dst, uint64(n))
	return append(dst, body[:n]...)
}

// ParseAnno scans a frame v4 annotation block for a trace context,
// skipping unknown TLV kinds. It returns the zero Context (Valid() false)
// when the block carries none or is malformed — annotation damage is
// already caught by the frame CRC, so a parse failure here means an
// incompatible writer, and the block simply goes untraced.
func ParseAnno(anno []byte) Context {
	for len(anno) >= 2 {
		kind := anno[0]
		l, n := binary.Uvarint(anno[1:])
		if n <= 0 || uint64(len(anno)-1-n) < l {
			return Context{}
		}
		body := anno[1+n : 1+n+int(l)]
		anno = anno[1+n+int(l):]
		if kind != annoKindTrace {
			continue
		}
		var c Context
		var k int
		if c.Trace, k = binary.Uvarint(body); k <= 0 {
			return Context{}
		}
		body = body[k:]
		wall, k := binary.Uvarint(body)
		if k <= 0 {
			return Context{}
		}
		body = body[k:]
		mono, k := binary.Uvarint(body)
		if k <= 0 {
			return Context{}
		}
		c.WallNs, c.MonoNs = int64(wall), int64(mono)
		return c
	}
	return Context{}
}

// Age returns the elapsed time since the context was stamped, measured
// against the local wall clock at now. Only meaningful on the origin hop
// or after skew correction.
func (c Context) Age(now time.Time) time.Duration {
	return time.Duration(now.UnixNano() - c.WallNs)
}
