package bwmon

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestFirstObservationSetsGoodput(t *testing.T) {
	m := New(0.5)
	m.Observe(1000, time.Second)
	if g := m.Goodput(); g != 1000 {
		t.Fatalf("goodput = %v", g)
	}
}

func TestEWMASmoothing(t *testing.T) {
	m := New(0.5)
	m.Observe(1000, time.Second) // 1000 B/s → 1e-3 s/B
	m.Observe(3000, time.Second) // 3000 B/s → 1/3e-3 s/B
	// EWMA runs over seconds-per-byte: 0.5/3000 + 0.5/1000 = 1/1500.
	if g := m.Goodput(); math.Abs(g-1500) > 1e-9 {
		t.Fatalf("goodput = %v want 1500", g)
	}
}

func TestAlphaClamp(t *testing.T) {
	for _, bad := range []float64{0, -1, 1.5} {
		m := New(bad)
		m.Observe(100, time.Second)
		m.Observe(300, time.Second)
		want := 1 / (DefaultAlpha/300 + (1-DefaultAlpha)/100)
		if g := m.Goodput(); math.Abs(g-want) > 1e-9 {
			t.Fatalf("alpha=%v: goodput = %v want %v", bad, g, want)
		}
	}
}

// TestStallWeighting is the property that motivated the per-byte-time EWMA:
// alternating buffer-absorbed (near-instant) and stalled sends must yield a
// goodput near the stalled rate, not near the meaningless fast one.
func TestStallWeighting(t *testing.T) {
	m := New(DefaultAlpha)
	for i := 0; i < 20; i++ {
		m.Observe(64*1024, 50*time.Microsecond) // absorbed by kernel buffer
		m.Observe(64*1024, 40*time.Millisecond) // real backpressure stall
	}
	g := m.Goodput()
	stallRate := float64(64*1024) / 0.040
	if g > 4*stallRate {
		t.Fatalf("goodput %v ignores stalls (stall rate %v)", g, stallRate)
	}
}

func TestSendTimePrediction(t *testing.T) {
	m := New(1)
	if d := m.SendTime(100); d != 0 {
		t.Fatalf("pre-observation SendTime = %v, want 0 (first block convention)", d)
	}
	m.Observe(1_000_000, time.Second)
	if d := m.SendTime(500_000); math.Abs(d.Seconds()-0.5) > 1e-9 {
		t.Fatalf("SendTime = %v want 0.5s", d)
	}
	if d := m.SendTime(0); d != 0 {
		t.Fatalf("SendTime(0) = %v", d)
	}
}

func TestIgnoresInvalidObservations(t *testing.T) {
	m := New(0.5)
	m.Observe(0, time.Second)
	m.Observe(100, 0)
	m.Observe(-5, time.Second)
	if m.Observations() != 0 {
		t.Fatal("invalid observations were counted")
	}
}

func TestTotalsAndReset(t *testing.T) {
	m := New(0.5)
	m.Observe(100, time.Second)
	m.Observe(200, 2*time.Second)
	bytes, busy := m.Totals()
	if bytes != 300 || busy != 3*time.Second {
		t.Fatalf("totals = %d %v", bytes, busy)
	}
	m.Reset()
	if m.Goodput() != 0 || m.Observations() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestTracksLoadSwing(t *testing.T) {
	// Goodput must chase a rate drop within a few blocks (the behaviour the
	// paper's adaptation loop depends on).
	m := New(DefaultAlpha)
	for i := 0; i < 10; i++ {
		m.Observe(128*1024, 20*time.Millisecond) // ≈6.5 MB/s
	}
	fast := m.Goodput()
	for i := 0; i < 4; i++ {
		m.Observe(128*1024, 400*time.Millisecond) // ≈0.33 MB/s
	}
	slow := m.Goodput()
	if slow > fast/8 {
		t.Fatalf("EWMA too sluggish: %v → %v", fast, slow)
	}
}

func TestConcurrentUse(t *testing.T) {
	m := New(0.5)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Observe(1000, time.Millisecond)
				_ = m.Goodput()
				_ = m.SendTime(5000)
			}
		}()
	}
	wg.Wait()
	if m.Observations() != 8000 {
		t.Fatalf("observations = %d", m.Observations())
	}
}
