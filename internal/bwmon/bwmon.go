// Package bwmon implements the paper's end-to-end throughput measurement:
// "continually measured is the speed with which compressed blocks are
// accepted by receivers, thereby assessing both current network bandwidth
// and receiver speed" (§2.5). The monitor observes per-block send times and
// maintains an exponentially weighted moving average of goodput, which the
// selector uses to predict the send time of the next block.
package bwmon

import (
	"sync"
	"time"
)

// DefaultAlpha is the EWMA weight of the newest observation. The paper
// reacts within one or two 128 KB blocks to load changes, which a weight
// around one half reproduces.
const DefaultAlpha = 0.5

// Monitor tracks end-to-end goodput. It is safe for concurrent use.
// The zero value is invalid; use New.
//
// Internally the EWMA runs over seconds-per-byte rather than bytes-per-
// second: block send times over TCP alternate between near-zero (the
// kernel buffer absorbed the write) and long stalls (backpressure), and an
// arithmetic mean of instantaneous rates would be dominated by the
// meaningless fast samples. Averaging per-byte time weights each sample by
// what it actually costs, so Goodput is a harmonic-style mean that tracks
// the real acceptance rate.
type Monitor struct {
	mu         sync.Mutex
	alpha      float64
	secPerByte float64 // EWMA; 0 until first observation
	observed   int64
	bytes      int64
	busy       time.Duration
}

// New returns a Monitor with the given EWMA weight (DefaultAlpha if
// alpha ≤ 0 or > 1).
func New(alpha float64) *Monitor {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	return &Monitor{alpha: alpha}
}

// Observe records that n bytes were accepted by the receiver in d.
// Non-positive durations and sizes are ignored.
func (m *Monitor) Observe(n int, d time.Duration) {
	if n <= 0 || d <= 0 {
		return
	}
	m.fold(d.Seconds() / float64(n))
	m.mu.Lock()
	m.bytes += int64(n)
	m.busy += d
	m.mu.Unlock()
}

// ObserveRate folds an externally measured goodput (bytes/s) into the EWMA
// without byte accounting. Receivers report their acceptance rate upstream
// through quality attributes; producers feed those reports here.
func (m *Monitor) ObserveRate(rate float64) {
	if rate <= 0 {
		return
	}
	m.fold(1 / rate)
}

// fold updates the per-byte-time EWMA.
func (m *Monitor) fold(spb float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.observed == 0 {
		m.secPerByte = spb
	} else {
		m.secPerByte = m.alpha*spb + (1-m.alpha)*m.secPerByte
	}
	m.observed++
}

// Goodput returns the smoothed end-to-end rate in bytes/s, or 0 before any
// observation.
func (m *Monitor) Goodput() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.secPerByte <= 0 {
		return 0
	}
	return 1 / m.secPerByte
}

// SendTime predicts how long n bytes will take at the current goodput.
// Before any observation it returns 0 — the paper's "assume the reducing
// size speed of first block is infinity" convention, which makes the
// selector send the first block uncompressed.
func (m *Monitor) SendTime(n int) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.secPerByte <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) * m.secPerByte * float64(time.Second))
}

// Observations returns how many blocks have been observed.
func (m *Monitor) Observations() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.observed
}

// Totals returns cumulative bytes and busy time.
func (m *Monitor) Totals() (bytes int64, busy time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes, m.busy
}

// Reset clears all state.
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.secPerByte, m.observed, m.bytes, m.busy = 0, 0, 0, 0
}
