package bitio

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter(0)
	pattern := []int{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
}

func TestMSBFirstPacking(t *testing.T) {
	w := NewWriter(0)
	// 1010 1100 should pack into 0xAC.
	if err := w.WriteBits(0b10101100, 8); err != nil {
		t.Fatal(err)
	}
	got := w.Bytes()
	if !bytes.Equal(got, []byte{0xAC}) {
		t.Fatalf("got % x want ac", got)
	}
}

func TestPartialBytePadding(t *testing.T) {
	w := NewWriter(0)
	if err := w.WriteBits(0b101, 3); err != nil {
		t.Fatal(err)
	}
	got := w.Bytes()
	if !bytes.Equal(got, []byte{0xA0}) {
		t.Fatalf("got % x want a0", got)
	}
}

func TestWriteBitsWidths(t *testing.T) {
	vals := []struct {
		v uint64
		n uint
	}{
		{0, 1}, {1, 1}, {0x3, 2}, {0x7F, 7}, {0xFF, 8}, {0x1FF, 9},
		{0xDEAD, 16}, {0xDEADBEEF, 32}, {0x0123456789ABCDEF, 60},
		{^uint64(0), 64}, {0x55, 13}, {1, 64},
	}
	w := NewWriter(0)
	for _, tc := range vals {
		if err := w.WriteBits(tc.v, tc.n); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(w.Bytes())
	for i, tc := range vals {
		want := tc.v
		if tc.n < 64 {
			want &= (1 << tc.n) - 1
		}
		got, err := r.ReadBits(tc.n)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("read %d (n=%d): got %#x want %#x", i, tc.n, got, want)
		}
	}
}

func TestWriteByteReadByte(t *testing.T) {
	w := NewWriter(0)
	w.WriteBit(1) // unaligned prefix
	for i := 0; i < 256; i++ {
		if err := w.WriteByte(byte(i)); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(w.Bytes())
	if _, err := r.ReadBit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		b, err := r.ReadByte()
		if err != nil {
			t.Fatal(err)
		}
		if b != byte(i) {
			t.Fatalf("byte %d: got %#x", i, b)
		}
	}
}

func TestBitLen(t *testing.T) {
	w := NewWriter(0)
	if w.BitLen() != 0 {
		t.Fatalf("empty BitLen = %d", w.BitLen())
	}
	w.WriteBits(0x1F, 5)
	if w.BitLen() != 5 {
		t.Fatalf("BitLen = %d want 5", w.BitLen())
	}
	w.WriteBits(0xFFFF, 16)
	if w.BitLen() != 21 {
		t.Fatalf("BitLen = %d want 21", w.BitLen())
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBits(1); err != io.ErrUnexpectedEOF {
		t.Fatalf("got %v want ErrUnexpectedEOF", err)
	}
}

func TestTooManyBits(t *testing.T) {
	w := NewWriter(0)
	if err := w.WriteBits(0, 65); err != ErrTooManyBits {
		t.Fatalf("write: got %v", err)
	}
	r := NewReader(nil)
	if _, err := r.ReadBits(65); err != ErrTooManyBits {
		t.Fatalf("read: got %v", err)
	}
}

func TestAlignByte(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b101, 3)
	w.Bytes() // pads to 8 bits
	r := NewReader(w.Bytes())
	r.ReadBits(3)
	r.AlignByte()
	if rem := r.BitsRemaining(); rem != 0 {
		t.Fatalf("remaining = %d want 0", rem)
	}
}

func TestReset(t *testing.T) {
	w := NewWriter(16)
	w.WriteBits(0xFFFF, 16)
	w.Reset()
	if w.BitLen() != 0 {
		t.Fatalf("BitLen after reset = %d", w.BitLen())
	}
	w.WriteBits(0xA, 4)
	if got := w.Bytes(); !bytes.Equal(got, []byte{0xA0}) {
		t.Fatalf("got % x", got)
	}
}

func TestBitsRemaining(t *testing.T) {
	r := NewReader([]byte{0, 0, 0})
	if r.BitsRemaining() != 24 {
		t.Fatalf("got %d", r.BitsRemaining())
	}
	r.ReadBits(5)
	if r.BitsRemaining() != 19 {
		t.Fatalf("got %d", r.BitsRemaining())
	}
}

// TestQuickRoundtrip writes a random sequence of (value, width) pairs and
// verifies bit-exact recovery.
func TestQuickRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 1
		type item struct {
			v uint64
			n uint
		}
		items := make([]item, n)
		w := NewWriter(0)
		for i := range items {
			width := uint(rng.Intn(64) + 1)
			v := rng.Uint64()
			if width < 64 {
				v &= (1 << width) - 1
			}
			items[i] = item{v, width}
			if err := w.WriteBits(v, width); err != nil {
				return false
			}
		}
		r := NewReader(w.Bytes())
		for _, it := range items {
			got, err := r.ReadBits(it.n)
			if err != nil || got != it.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%(1<<17) == 0 {
			w.Reset()
		}
		w.WriteBits(uint64(i), 13)
	}
}

func BenchmarkReadBits(b *testing.B) {
	w := NewWriter(1 << 20)
	for i := 0; i < 1<<17; i++ {
		w.WriteBits(uint64(i), 13)
	}
	buf := w.Bytes()
	b.ResetTimer()
	b.ReportAllocs()
	r := NewReader(buf)
	for i := 0; i < b.N; i++ {
		if r.BitsRemaining() < 13 {
			r = NewReader(buf)
		}
		r.ReadBits(13)
	}
}

func TestPeekBits(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b1011_0110_01, 10)
	r := NewReader(w.Bytes())
	v, avail := r.PeekBits(10)
	if avail != 10 || v != 0b1011011001 {
		t.Fatalf("peek = %b avail %d", v, avail)
	}
	// Peeking must not consume.
	v2, _ := r.PeekBits(10)
	if v2 != v {
		t.Fatal("peek consumed bits")
	}
	if err := r.SkipBits(4); err != nil {
		t.Fatal(err)
	}
	v3, avail3 := r.PeekBits(10)
	// 6 data bits remain plus 6 padding bits from Bytes(); the writer padded
	// to 16 bits, so 12 remain: avail is full.
	if avail3 != 10 {
		t.Fatalf("avail after skip = %d", avail3)
	}
	if v3>>4 != 0b011001 {
		t.Fatalf("post-skip peek = %b", v3)
	}
}

func TestPeekBitsNearEnd(t *testing.T) {
	r := NewReader([]byte{0b1010_0000})
	r.ReadBits(5)
	v, avail := r.PeekBits(10)
	if avail != 3 {
		t.Fatalf("avail = %d want 3", avail)
	}
	// Remaining 3 bits (000) left-aligned into 10: all zero.
	if v != 0 {
		t.Fatalf("v = %b", v)
	}
	if err := r.SkipBits(3); err != nil {
		t.Fatal(err)
	}
	if err := r.SkipBits(1); err == nil {
		t.Fatal("skip past end accepted")
	}
}

func TestPeekBitsClampsTo32(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xDEADBEEFCAFE, 48)
	r := NewReader(w.Bytes())
	v, avail := r.PeekBits(64)
	if avail != 32 {
		t.Fatalf("avail = %d", avail)
	}
	if v != 0xDEADBEEF {
		t.Fatalf("v = %x", v)
	}
}
