// Package bitio provides bit-granular reading and writing on top of byte
// slices and io streams. It is the substrate shared by every entropy coder in
// this repository (Huffman, arithmetic, LZ pointer coding, BWT back end).
//
// Bits are packed MSB-first within each byte: the first bit written becomes
// the most significant bit of the first output byte. This matches the
// convention used by JPEG-style Huffman streams and makes hex dumps of the
// output legible during debugging.
package bitio

import (
	"errors"
	"io"
)

// ErrTooManyBits is returned when a caller asks to read or write more than 64
// bits in a single call.
var ErrTooManyBits = errors.New("bitio: at most 64 bits per call")

// Writer accumulates bits MSB-first into an in-memory buffer.
//
// The zero value is ready to use. Writer never fails: it grows its buffer as
// needed, so the only error surface is the explicit ErrTooManyBits guard.
type Writer struct {
	buf  []byte
	cur  uint64 // bits accumulated, left-aligned within nbits
	nbit uint   // number of valid bits in cur (0..63)
}

// NewWriter returns a Writer with capacity preallocated for sizeHint bytes of
// output. A sizeHint of 0 is valid.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// WriteBits appends the low n bits of v, most significant first.
func (w *Writer) WriteBits(v uint64, n uint) error {
	if n > 64 {
		return ErrTooManyBits
	}
	if n == 0 {
		return nil
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	w.pushBits(v, n)
	w.flushWord()
	return nil
}

// pushBits appends bits to cur, which holds nbit bits right-aligned.
func (w *Writer) pushBits(v uint64, n uint) {
	for n > 0 {
		space := 64 - w.nbit
		take := n
		if take > space {
			take = space
		}
		chunk := v >> (n - take)
		if take < 64 {
			chunk &= (1 << take) - 1
		}
		w.cur = w.cur<<take | chunk
		w.nbit += take
		n -= take
		if w.nbit == 64 {
			w.flushWord()
		}
	}
}

func (w *Writer) flushWord() {
	for w.nbit >= 8 {
		w.buf = append(w.buf, byte(w.cur>>(w.nbit-8)))
		w.nbit -= 8
	}
	w.cur &= (1 << w.nbit) - 1
}

// WriteBit appends a single bit (any nonzero b writes 1).
func (w *Writer) WriteBit(b int) {
	var v uint64
	if b != 0 {
		v = 1
	}
	w.pushBits(v, 1)
	if w.nbit >= 8 {
		w.flushWord()
	}
}

// WriteByte appends 8 bits.
func (w *Writer) WriteByte(b byte) error {
	w.pushBits(uint64(b), 8)
	w.flushWord()
	return nil
}

// BitLen reports the total number of bits written so far.
func (w *Writer) BitLen() int {
	return len(w.buf)*8 + int(w.nbit)
}

// Bytes pads the final partial byte with zero bits and returns the packed
// buffer. The Writer remains usable; further writes continue bit-exactly
// after the previously written bits only if the bit length was already a
// multiple of 8, so callers normally call Bytes exactly once, at the end.
func (w *Writer) Bytes() []byte {
	w.flushWord()
	if w.nbit > 0 {
		pad := 8 - w.nbit
		b := byte(w.cur << pad)
		w.cur, w.nbit = 0, 0
		w.buf = append(w.buf, b)
	}
	return w.buf
}

// Reset truncates the writer to empty, retaining capacity.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nbit = 0, 0
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf  []byte
	pos  int    // next byte index
	cur  uint64 // prefetched bits, right-aligned
	nbit uint   // valid bits in cur
}

// NewReader returns a Reader over buf. The Reader does not copy buf; callers
// must not mutate it while reading.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// fill tries to buffer at least n (≤57) bits.
func (r *Reader) fill(n uint) {
	for r.nbit < n && r.pos < len(r.buf) {
		r.cur = r.cur<<8 | uint64(r.buf[r.pos])
		r.pos++
		r.nbit += 8
	}
}

// ReadBits reads n bits MSB-first. It returns io.ErrUnexpectedEOF if fewer
// than n bits remain.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		return 0, ErrTooManyBits
	}
	if n == 0 {
		return 0, nil
	}
	if n > 57 {
		// Split: the prefetch word can only hold 57+7 bits safely.
		hi, err := r.ReadBits(n - 32)
		if err != nil {
			return 0, err
		}
		lo, err := r.ReadBits(32)
		if err != nil {
			return 0, err
		}
		return hi<<32 | lo, nil
	}
	r.fill(n)
	if r.nbit < n {
		return 0, io.ErrUnexpectedEOF
	}
	v := r.cur >> (r.nbit - n)
	r.nbit -= n
	r.cur &= (1 << r.nbit) - 1
	return v, nil
}

// ReadBit reads one bit.
func (r *Reader) ReadBit() (int, error) {
	v, err := r.ReadBits(1)
	return int(v), err
}

// PeekBits returns the next n (≤ 32) bits without consuming them. If fewer
// than n bits remain, the result is left-aligned into n bits with zero
// padding and avail reports how many real bits it contains.
func (r *Reader) PeekBits(n uint) (v uint64, avail uint) {
	if n > 32 {
		n = 32
	}
	r.fill(n)
	avail = r.nbit
	if avail >= n {
		return r.cur >> (r.nbit - n), n
	}
	// Left-align what we have and pad with zeros.
	return r.cur << (n - r.nbit), avail
}

// SkipBits consumes n bits previously peeked. n must not exceed the bits
// actually buffered plus remaining input; exceeding input is an error.
func (r *Reader) SkipBits(n uint) error {
	_, err := r.ReadBits(n)
	return err
}

// ReadByte reads 8 bits as a byte.
func (r *Reader) ReadByte() (byte, error) {
	v, err := r.ReadBits(8)
	return byte(v), err
}

// BitsRemaining reports how many unread bits remain (including padding bits
// in the final byte).
func (r *Reader) BitsRemaining() int {
	return int(r.nbit) + (len(r.buf)-r.pos)*8
}

// AlignByte discards bits up to the next byte boundary.
func (r *Reader) AlignByte() {
	drop := r.nbit % 8
	if drop > 0 {
		r.nbit -= drop
		r.cur &= (1 << r.nbit) - 1
	}
}
