package experiments

import "ccx/internal/codec"

// Paper reference values. Figure 5's numbers are printed in the paper;
// the bar-chart figures (2, 3, 4, 6) publish no tables, so those values
// are digitized by eye from the published charts and marked as estimates
// wherever they are displayed. EXPERIMENTS.md records the comparison.

// paperFig2Percent is Figure 2: compressed size as percent of original on
// the commercial dataset (chart estimates).
var paperFig2Percent = map[codec.Method]float64{
	codec.BurrowsWheeler: 20,
	codec.LempelZiv:      29,
	codec.Arithmetic:     44,
	codec.Huffman:        47,
}

// paperFig3Seconds is Figure 3: compression/decompression wall times on the
// Sun-Fire for the commercial dataset (chart estimates; dataset size
// unpublished, so only the ordering and ratios are meaningful).
var paperFig3Seconds = map[codec.Method][2]float64{
	codec.BurrowsWheeler: {8.0, 3.2},
	codec.LempelZiv:      {2.6, 0.8},
	codec.Arithmetic:     {5.5, 7.5},
	codec.Huffman:        {1.2, 1.0},
}

// paperFig4ReducingMBs is Figure 4: reducing speed in MB/s on the two Sun
// machines (chart estimates).
var paperFig4ReducingMBs = map[codec.Method][2]float64{ // {Sun-Fire, Ultra-Sparc}
	codec.BurrowsWheeler: {0.55, 0.27},
	codec.LempelZiv:      {2.2, 1.1},
	codec.Arithmetic:     {0.9, 0.45},
	codec.Huffman:        {3.7, 1.85},
}

// paperFig5 is Figure 5: measured link speeds (exact values printed in the
// paper) and their standard deviations.
var paperFig5 = []struct {
	Name   string
	MBs    float64
	StdPct float64
}{
	{"1GBit", 26.32094622, 0.782},
	{"100MBit", 7.520270348, 8.95},
	{"1MBit", 0.146907607, 1.17},
	{"international", 0.10891426, 46.02},
}

// paperFig6Percent is Figure 6: compressed size as percent of original per
// molecular field class (chart estimates; "original" bar = 100).
var paperFig6Percent = map[string]map[codec.Method]float64{
	"type": {
		codec.Huffman:        30,
		codec.Arithmetic:     27,
		codec.LempelZiv:      20,
		codec.BurrowsWheeler: 15,
	},
	"velocity": {
		codec.Huffman:        78,
		codec.Arithmetic:     75,
		codec.LempelZiv:      85,
		codec.BurrowsWheeler: 72,
	},
	"coordinates": {
		codec.Huffman:        95,
		codec.Arithmetic:     93,
		codec.LempelZiv:      98,
		codec.BurrowsWheeler: 91,
	},
}

// Section 5 published totals for the 100 MBit/s variable-load exchange.
const (
	paperCommercialAdaptiveSeconds = 10.7142
	paperCommercialRawSeconds      = 29.1388
	// "compression took slightly more than 60% of total time"
	paperCommercialCompressShare = 0.60
	paperMolecularRawSeconds     = 29.0
	paperMolecularAdaptiveSecs   = 30.5
)

// paperCompressBps charges the adaptive timeline the paper's per-method
// compression throughputs (bytes of input per second, derived from Figures
// 3/4; divided by TimeScale in scaled runs). This substitutes the Sun-Fire's
// CPU behaviour so that the compute/network balance — and therefore both
// the selector's operating point and the reported totals — match the
// paper's testbed rather than whatever modern hardware this runs on.
var paperCompressBps = map[codec.Method]float64{
	codec.BurrowsWheeler: 1.0e6,
	codec.LempelZiv:      3.1e6,
	codec.Arithmetic:     1.45e6,
	codec.Huffman:        6.7e6,
}

// paperLZReducingBps is Figure 4's Sun-Fire Lempel-Ziv reducing speed, the
// calibration target for the engine's sampling probe.
const paperLZReducingBps = 2.2e6
