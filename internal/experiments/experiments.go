// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) plus the §5 end-to-end totals. Each FigureN function
// returns a Report whose tables/series mirror the rows the paper plots;
// cmd/ccbench renders them and bench_test.go wraps them as benchmarks.
//
// # Scaling model
//
// The paper's testbed (Sun-Fire 280R, 2003-era links) is reproduced by a
// documented scaling substitution rather than by hoping modern hardware
// behaves like 2003 hardware:
//
//   - Links are simulated (internal/netsim) at the paper's measured rates
//     divided by TimeScale K, with the paper's jitter.
//   - The adaptive-run timeline charges compression at the paper's measured
//     per-method speeds (paperCompressBps) divided by K.
//   - The engine's sampling probe is scaled so Lempel-Ziv reducing speed
//     lands at the paper's Figure 4 value divided by K.
//
// Dividing both network and CPU rates by the same K leaves every ratio the
// selector consumes — and therefore every decision and every reported
// virtual duration — invariant, while shrinking the data volume (and hence
// wall-clock cost) by K. Reported times are directly comparable to the
// paper's.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"ccx/internal/codec"
	"ccx/internal/datagen"
	"ccx/internal/netsim"
	"ccx/internal/stats"
)

// Options tunes an experiment run.
type Options struct {
	// TimeScale is K in the scaling model (0 = default 8). Larger K runs
	// faster with coarser time series.
	TimeScale float64
	// Seed drives all synthetic data and jitter (0 = default 1).
	Seed int64
	// TraceSeconds shortens the 160 s MBone scenario for quick runs
	// (0 = full 160).
	TraceSeconds float64
	// DataBytes overrides the microbenchmark dataset size (0 = 4 MiB).
	DataBytes int
}

func (o Options) withDefaults() Options {
	if o.TimeScale <= 0 {
		o.TimeScale = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TraceSeconds <= 0 {
		o.TraceSeconds = 160
	}
	if o.DataBytes <= 0 {
		o.DataBytes = 4 << 20
	}
	return o
}

// Quick returns options sized for unit tests and smoke runs.
func Quick() Options {
	return Options{TimeScale: 32, TraceSeconds: 40, DataBytes: 1 << 20}
}

// Report is one regenerated table/figure.
type Report struct {
	ID     string
	Title  string
	Tables []stats.Table
	Series []Series
	Notes  []string
}

// Series is a time/value series (the line charts of Figures 7-12).
type Series struct {
	Title  string
	XLabel string
	YLabel string
	Points []Point
}

// Point is one series sample.
type Point struct {
	X, Y float64
}

// RenderCSV writes the report's tables and series as CSV, one section per
// table/series separated by blank lines — convenient for plotting the
// figures with external tools.
func (r *Report) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	for _, tbl := range r.Tables {
		if err := cw.Write(append([]string{"table"}, tbl.Columns...)); err != nil {
			return err
		}
		for _, row := range tbl.Rows {
			if err := cw.Write(append([]string{tbl.Title}, row...)); err != nil {
				return err
			}
		}
	}
	for _, s := range r.Series {
		if err := cw.Write([]string{"series", s.XLabel, s.YLabel}); err != nil {
			return err
		}
		for _, p := range s.Points {
			if err := cw.Write([]string{
				s.Title,
				strconv.FormatFloat(p.X, 'f', 6, 64),
				strconv.FormatFloat(p.Y, 'f', 6, 64),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Render writes the report as text.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	for i := range r.Tables {
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		if err := r.Tables[i].Render(w); err != nil {
			return err
		}
	}
	const maxRendered = 200
	for _, s := range r.Series {
		if _, err := fmt.Fprintf(w, "\n%s  (%s vs %s)\n", s.Title, s.YLabel, s.XLabel); err != nil {
			return err
		}
		step := 1
		if len(s.Points) > maxRendered {
			step = (len(s.Points) + maxRendered - 1) / maxRendered
			if _, err := fmt.Fprintf(w, "(showing every %dth of %d samples)\n", step, len(s.Points)); err != nil {
				return err
			}
		}
		for i := 0; i < len(s.Points); i += step {
			p := s.Points[i]
			if _, err := fmt.Fprintf(w, "%12.3f %12.3f\n", p.X, p.Y); err != nil {
				return err
			}
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// Runner is one registered experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(Options) (*Report, error)
}

// Registry lists every experiment in paper order.
func Registry() []Runner {
	return []Runner{
		{"fig1", "Qualitative method characteristics (Figure 1)", Figure1},
		{"fig2", "Compression ratios, commercial data (Figure 2)", Figure2},
		{"fig3", "Compression/decompression times (Figure 3)", Figure3},
		{"fig4", "Reducing speed per CPU (Figure 4)", Figure4},
		{"fig5", "Link transfer speeds (Figure 5)", Figure5},
		{"fig6", "Compression ratios, molecular data (Figure 6)", Figure6},
		{"fig7", "MBone connection trace (Figure 7)", Figure7},
		{"fig8", "Method selection over time, commercial (Figure 8)", Figure8},
		{"fig9", "Compression time over time, commercial (Figure 9)", Figure9},
		{"fig10", "Compressed block sizes, commercial (Figure 10)", Figure10},
		{"fig11", "Method selection over time, molecular (Figure 11)", Figure11},
		{"fig12", "Compressed block sizes, molecular (Figure 12)", Figure12},
		{"conclusion", "End-to-end totals (Section 5)", Conclusion},
		{"ablation-methods", "Fixed methods vs adaptive across links", AblationMethods},
		{"ablation-thresholds", "Selection threshold sensitivity", AblationThresholds},
		{"ablation-blocksize", "Block size sweep", AblationBlockSize},
		{"ablation-probe", "Sampling probe size sweep", AblationProbeSize},
		{"ablation-policy", "Selection policy comparison", AblationPolicies},
	}
}

// Run dispatches by experiment ID.
func Run(id string, o Options) (*Report, error) {
	for _, r := range Registry() {
		if r.ID == id {
			return r.Run(o)
		}
	}
	return nil, fmt.Errorf("experiments: unknown id %q (try one of %v)", id, IDs())
}

// IDs lists registered experiment identifiers.
func IDs() []string {
	rs := Registry()
	ids := make([]string, len(rs))
	for i, r := range rs {
		ids[i] = r.ID
	}
	sort.Strings(ids)
	return ids
}

// paperMethods lists the four methods in the paper's figure order.
func paperMethods() []codec.Method {
	return []codec.Method{codec.BurrowsWheeler, codec.LempelZiv, codec.Arithmetic, codec.Huffman}
}

// commercialData builds the OIS transaction workload (§4's commercial set).
func commercialData(o Options) []byte {
	return datagen.OISTransactions(o.DataBytes, 0.9, o.Seed)
}

// scaleProfile divides a link profile's rate by K (latency multiplied by K
// to preserve its relative weight).
func scaleProfile(p netsim.Profile, k float64) netsim.Profile {
	p.RateBps /= k
	p.Latency = time.Duration(float64(p.Latency) * k)
	return p
}
