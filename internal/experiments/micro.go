package experiments

import (
	"fmt"
	"sort"

	"ccx/internal/codec"
	"ccx/internal/cpumon"
	"ccx/internal/datagen"
	"ccx/internal/netsim"
	"ccx/internal/selector"
	"ccx/internal/stats"
)

// Figure1 re-derives the paper's qualitative method-characteristics table
// from microbenchmarks of our implementations and sets it beside the
// published table. Ratings are assigned by rank within each dimension
// (best = Excellent, then Good, Satisfactory, Poor), which reproduces the
// paper's scale without its tie-breaking judgement calls.
func Figure1(o Options) (*Report, error) {
	o = o.withDefaults()
	repetitive := commercialData(o)
	lowEntropy := datagen.LowEntropy(o.DataBytes, 4, o.Seed)

	var cal cpumon.Calibrator
	type scores struct {
		repRatio, lowRatio       float64
		compressSec, decompSec   float64
		globalSec, meanRatioBoth float64
	}
	measured := make(map[codec.Method]scores, 4)
	for _, m := range paperMethods() {
		rep, err := cal.Measure(m, repetitive)
		if err != nil {
			return nil, err
		}
		low, err := cal.Measure(m, lowEntropy)
		if err != nil {
			return nil, err
		}
		measured[m] = scores{
			repRatio:      rep.Ratio,
			lowRatio:      low.Ratio,
			compressSec:   rep.CompressTime.Seconds(),
			decompSec:     rep.DecompressTime.Seconds(),
			globalSec:     (rep.CompressTime + rep.DecompressTime).Seconds(),
			meanRatioBoth: (rep.Ratio + low.Ratio) / 2,
		}
	}

	// rank maps methods to ratings for one dimension; lower metric = better.
	rank := func(metric func(scores) float64) map[codec.Method]selector.Rating {
		ms := paperMethods()
		sort.Slice(ms, func(i, j int) bool {
			return metric(measured[ms[i]]) < metric(measured[ms[j]])
		})
		ratings := []selector.Rating{selector.Excellent, selector.Good, selector.Satisfactory, selector.Poor}
		out := make(map[codec.Method]selector.Rating, len(ms))
		for i, m := range ms {
			out[m] = ratings[i]
		}
		return out
	}

	dims := []struct {
		name   string
		metric func(scores) float64
	}{
		{"Compress files with string repetitions", func(s scores) float64 { return s.repRatio }},
		{"Compress files with low entropy", func(s scores) float64 { return s.lowRatio }},
		{"Compression Efficiency", func(s scores) float64 { return s.meanRatioBoth }},
		{"Time of Compression", func(s scores) float64 { return s.compressSec }},
		{"Time of Decompression", func(s scores) float64 { return s.decompSec }},
		{"Global Time", func(s scores) float64 { return s.globalSec }},
	}

	paper := selector.MethodTable()
	tbl := stats.Table{
		Title:   "Figure 1: derived vs published qualitative ratings",
		Columns: []string{"dimension", "method", "measured", "derived", "paper"},
	}
	agreements, total := 0, 0
	for _, dim := range dims {
		derived := rank(dim.metric)
		for _, m := range paperMethods() {
			val := dim.metric(measured[m])
			unit := ""
			if dim.name == "Time of Compression" || dim.name == "Time of Decompression" || dim.name == "Global Time" {
				unit = "s"
			}
			paperRating := paper[m].Rating(dim.name)
			tbl.AddRow(dim.name, m.String(),
				fmt.Sprintf("%.3f%s", val, unit),
				derived[m].String(), paperRating.String())
			total++
			// Count agreement loosely: within one rating step.
			diff := int(derived[m]) - int(paperRating)
			if diff < 0 {
				diff = -diff
			}
			if diff <= 1 {
				agreements++
			}
		}
	}
	return &Report{
		ID:     "fig1",
		Title:  "Qualitative method characteristics",
		Tables: []stats.Table{tbl},
		Notes: []string{
			fmt.Sprintf("derived ratings within one step of the paper's for %d/%d cells", agreements, total),
			"measured columns are this machine's native times/ratios on synthetic workloads",
		},
	}, nil
}

// ratioTable measures compressed-percent for every method over data and
// sets it beside paper reference percentages.
func ratioTable(title string, data []byte, ref map[codec.Method]float64) (stats.Table, map[codec.Method]float64, error) {
	tbl := stats.Table{
		Title:   title,
		Columns: []string{"method", "measured %", "paper % (est)"},
	}
	out := make(map[codec.Method]float64, 4)
	for _, m := range paperMethods() {
		comp, err := codec.Compress(m, data)
		if err != nil {
			return tbl, nil, err
		}
		pct := float64(len(comp)) / float64(len(data)) * 100
		out[m] = pct
		tbl.AddRow(m.String(), fmt.Sprintf("%.2f", pct), fmt.Sprintf("%.0f", ref[m]))
	}
	return tbl, out, nil
}

// Figure2 reproduces the commercial-data compression ratios.
func Figure2(o Options) (*Report, error) {
	o = o.withDefaults()
	data := commercialData(o)
	tbl, measured, err := ratioTable("Figure 2: compressed size, commercial data (percent of original)", data, paperFig2Percent)
	if err != nil {
		return nil, err
	}
	notes := []string{
		fmt.Sprintf("dataset: %d bytes of OIS transactions (repetition 0.9, seed %d)", len(data), o.Seed),
	}
	if measured[codec.BurrowsWheeler] < measured[codec.LempelZiv] &&
		measured[codec.LempelZiv] < measured[codec.Huffman] {
		notes = append(notes, "shape holds: BWT < LZ < Huffman, as in the paper")
	} else {
		notes = append(notes, "SHAPE MISMATCH: expected BWT < LZ < Huffman")
	}
	return &Report{ID: "fig2", Title: "Compression ratios, commercial data", Tables: []stats.Table{tbl}, Notes: notes}, nil
}

// Figure3 reproduces the compression/decompression time comparison.
func Figure3(o Options) (*Report, error) {
	o = o.withDefaults()
	data := commercialData(o)
	var cal cpumon.Calibrator
	tbl := stats.Table{
		Title:   "Figure 3: compression and decompression times, commercial data",
		Columns: []string{"method", "compress (s)", "decompress (s)", "paper compress (s est)", "paper decompress (s est)"},
	}
	type pair struct{ c, d float64 }
	meas := make(map[codec.Method]pair, 4)
	for _, m := range paperMethods() {
		res, err := cal.Measure(m, data)
		if err != nil {
			return nil, err
		}
		meas[m] = pair{res.CompressTime.Seconds(), res.DecompressTime.Seconds()}
		ref := paperFig3Seconds[m]
		tbl.AddRow(m.String(),
			fmt.Sprintf("%.4f", res.CompressTime.Seconds()),
			fmt.Sprintf("%.4f", res.DecompressTime.Seconds()),
			fmt.Sprintf("%.1f", ref[0]),
			fmt.Sprintf("%.1f", ref[1]))
	}
	notes := []string{
		"measured columns are native wall times on this machine; the paper's Sun-Fire is ~1-2 orders slower",
	}
	if meas[codec.BurrowsWheeler].c > meas[codec.LempelZiv].c &&
		meas[codec.Huffman].c < meas[codec.LempelZiv].c &&
		meas[codec.Arithmetic].d > meas[codec.Huffman].d {
		notes = append(notes, "shape holds: BWT slowest to compress, Huffman fastest, arithmetic slow to decompress")
	} else {
		notes = append(notes, "SHAPE MISMATCH vs paper ordering")
	}
	return &Report{ID: "fig3", Title: "Compression/decompression times", Tables: []stats.Table{tbl}, Notes: notes}, nil
}

// Figure4 reproduces the reducing-speed comparison across two machine
// classes. The Ultra-Sparc analog is emulated as a 2× slower CPU, matching
// the paper's roughly constant inter-machine ratio across methods.
func Figure4(o Options) (*Report, error) {
	o = o.withDefaults()
	data := commercialData(o)
	fast := cpumon.Calibrator{}
	slow := cpumon.Calibrator{SpeedScale: 2}
	tbl := stats.Table{
		Title:   "Figure 4: reducing speed (MB/s)",
		Columns: []string{"method", "sun-fire analog", "ultra-sparc analog", "paper sun-fire (est)", "paper ultra-sparc (est)"},
	}
	speeds := make(map[codec.Method]float64, 4)
	for _, m := range paperMethods() {
		rf, err := fast.Measure(m, data)
		if err != nil {
			return nil, err
		}
		rs, err := slow.Measure(m, data)
		if err != nil {
			return nil, err
		}
		speeds[m] = rf.ReducingSpeed
		ref := paperFig4ReducingMBs[m]
		tbl.AddRow(m.String(),
			fmt.Sprintf("%.2f", rf.ReducingSpeed/1e6),
			fmt.Sprintf("%.2f", rs.ReducingSpeed/1e6),
			fmt.Sprintf("%.2f", ref[0]),
			fmt.Sprintf("%.2f", ref[1]))
	}
	notes := []string{
		"absolute speeds reflect this machine; the selector consumes only ratios",
	}
	if speeds[codec.BurrowsWheeler] < speeds[codec.LempelZiv] {
		notes = append(notes, "shape holds: Burrows-Wheeler reduces far slower than Lempel-Ziv")
	} else {
		notes = append(notes, "SHAPE MISMATCH: BWT should reduce slower than LZ")
	}
	return &Report{ID: "fig4", Title: "Reducing speed per CPU", Tables: []stats.Table{tbl}, Notes: notes}, nil
}

// Figure5 validates that the simulated links reproduce the paper's measured
// transfer speeds and variability.
func Figure5(o Options) (*Report, error) {
	o = o.withDefaults()
	tbl := stats.Table{
		Title:   "Figure 5: transfer speed of communication lines",
		Columns: []string{"line", "measured MB/s", "measured std %", "paper MB/s", "paper std %"},
	}
	const blocks = 400
	for i, prof := range netsim.Profiles() {
		clk := netsim.NewVirtual()
		link := netsim.NewLink(prof, clk, o.Seed+int64(i))
		blockSize := 1 << 20
		if prof.RateBps < 1e6 {
			blockSize = 128 << 10 // keep slow-line virtual time sane
		}
		var rates []float64
		for b := 0; b < blocks; b++ {
			d := link.Send(blockSize)
			rates = append(rates, float64(blockSize)/d.Seconds())
		}
		mean := stats.Mean(rates)
		stdPct := stats.Std(rates) / mean * 100
		ref := paperFig5[i]
		tbl.AddRow(prof.Name,
			fmt.Sprintf("%.4f", mean/1e6),
			fmt.Sprintf("%.2f", stdPct),
			fmt.Sprintf("%.4f", ref.MBs),
			fmt.Sprintf("%.2f", ref.StdPct))
	}
	return &Report{
		ID: "fig5", Title: "Link transfer speeds",
		Tables: []stats.Table{tbl},
		Notes:  []string{fmt.Sprintf("%d blocks per line on warm simulated links; paper values are the calibration targets", blocks)},
	}, nil
}

// Figure6 reproduces the per-field-class molecular compression ratios.
func Figure6(o Options) (*Report, error) {
	o = o.withDefaults()
	recSize := datagen.MolecularFormat().RecordSize()
	atoms := datagen.Molecular(o.DataBytes/recSize, o.Seed)
	types, vels, coords, err := datagen.MolecularColumns(atoms)
	if err != nil {
		return nil, err
	}
	tbl := stats.Table{
		Title:   "Figure 6: compressed size per molecular field class (percent of original)",
		Columns: []string{"kind of data", "method", "measured %", "paper % (est)"},
	}
	classes := []struct {
		name string
		data []byte
	}{{"type", types}, {"velocity", vels}, {"coordinates", coords}}
	meas := make(map[string]map[codec.Method]float64, 3)
	for _, cl := range classes {
		meas[cl.name] = make(map[codec.Method]float64, 4)
		for _, m := range paperMethods() {
			comp, err := codec.Compress(m, cl.data)
			if err != nil {
				return nil, err
			}
			pct := float64(len(comp)) / float64(len(cl.data)) * 100
			meas[cl.name][m] = pct
			tbl.AddRow(cl.name, m.String(),
				fmt.Sprintf("%.2f", pct),
				fmt.Sprintf("%.0f", paperFig6Percent[cl.name][m]))
		}
	}
	notes := []string{fmt.Sprintf("%d atoms serialized via PBIO; columns extracted per field class", len(atoms))}
	typeBest, _ := bestWorst(meas["type"])
	_, coordWorst := bestWorst(meas["coordinates"])
	if typeBest < 50 && coordWorst > 85 {
		notes = append(notes, "shape holds: types highly compressible, coordinates nearly incompressible")
	} else {
		notes = append(notes, "SHAPE MISMATCH vs Figure 6 expectations")
	}
	return &Report{ID: "fig6", Title: "Compression ratios, molecular data", Tables: []stats.Table{tbl}, Notes: notes}, nil
}

func bestWorst(m map[codec.Method]float64) (best, worst float64) {
	first := true
	for _, v := range m {
		if first {
			best, worst = v, v
			first = false
			continue
		}
		if v < best {
			best = v
		}
		if v > worst {
			worst = v
		}
	}
	return best, worst
}
