package experiments

import (
	"fmt"
	"time"

	"ccx/internal/codec"

	"ccx/internal/datagen"
	"ccx/internal/stats"
)

// Conclusion reproduces the §5 end-to-end totals: the commercial dataset on
// a variable-load 100 MBit/s link took 10.7142 s with configurable
// compression (compression slightly more than 60 % of that) against
// 29.1388 s without; the molecular dataset went the other way, from ~29 s
// raw to ~30.5 s with compression.
//
// The transported volume is the paper-implied ≈20 MiB of transactional
// data divided by the TimeScale K; the reported virtual durations are in
// paper-equivalent seconds. Absolute totals land where the load dynamics
// put them — the comparison targets are who wins and by roughly what
// factor, with the compression share of total time as the cross-check.
func Conclusion(o Options) (*Report, error) {
	o = o.withDefaults()
	k := o.TimeScale

	// The conclusion runs sample the loaded mid-trace region under the
	// heavy ×4 MBone load (see scenario.heavyLoad): the paper's published
	// totals imply a mean effective rate near 0.7 MB/s on the 7.5 MB/s
	// link, i.e. ~90 % background consumption.
	const traceOffset = 40 * time.Second
	base := scenario{heavyLoad: true, traceOffset: traceOffset}

	// Transported volume: the paper's published totals imply ≈20 MB of
	// transactional data (29.1388 s at the ~0.69 MB/s the loaded link
	// sustains). The volume is fixed — per-run totals then fall where the
	// load dynamics put them, exactly as in the paper's measurements.
	const paperImpliedVolume = 20 << 20
	blockSize := int64(scaledBlockSize(k))
	volume := int64(float64(paperImpliedVolume) / k)
	if volume < blockSize {
		volume = blockSize
	}
	volume -= volume % blockSize
	rawVolume := volume

	commercial := datagen.OISTransactions(4<<20, 0.9, o.Seed)
	longRun := 24 * time.Hour // byte-bounded, not time-bounded

	commRaw := base
	commRaw.data, commRaw.duration, commRaw.maxBytes, commRaw.fixed = commercial, longRun, rawVolume, fixedMethod(codec.None)
	rawRun, err := runAdaptive(o, commRaw)
	if err != nil {
		return nil, err
	}
	commAdapt := commRaw
	commAdapt.fixed = nil
	adaptRun, err := runAdaptive(o, commAdapt)
	if err != nil {
		return nil, err
	}

	// Molecular stream, sized for the paper's ~29 s raw baseline.
	recSize := datagen.MolecularFormat().RecordSize()
	atoms := datagen.Molecular((2<<20)/recSize, o.Seed)
	molBatch, err := datagen.MolecularBatch(atoms)
	if err != nil {
		return nil, err
	}
	molVolume := volume
	molRawSc := base
	molRawSc.data, molRawSc.duration, molRawSc.maxBytes, molRawSc.fixed = molBatch, longRun, molVolume, fixedMethod(codec.None)
	molRaw, err := runAdaptive(o, molRawSc)
	if err != nil {
		return nil, err
	}
	molAdaptSc := molRawSc
	molAdaptSc.fixed = nil
	molAdaptive, err := runAdaptive(o, molAdaptSc)
	if err != nil {
		return nil, err
	}

	tbl := stats.Table{
		Title:   "Section 5: end-to-end exchange totals (seconds, paper-equivalent virtual time)",
		Columns: []string{"dataset", "mode", "measured total (s)", "compress share", "paper total (s)"},
	}
	share := func(r *adaptiveRun) string {
		if r.Total <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f%%", 100*r.CompBusy.Seconds()/r.Total.Seconds())
	}
	tbl.AddRow("commercial", "no compression", fmt.Sprintf("%.3f", rawRun.Total.Seconds()), "-",
		fmt.Sprintf("%.4f", paperCommercialRawSeconds))
	tbl.AddRow("commercial", "configurable", fmt.Sprintf("%.3f", adaptRun.Total.Seconds()), share(adaptRun),
		fmt.Sprintf("%.4f", paperCommercialAdaptiveSeconds))
	tbl.AddRow("molecular", "no compression", fmt.Sprintf("%.3f", molRaw.Total.Seconds()), "-",
		fmt.Sprintf("%.1f", paperMolecularRawSeconds))
	tbl.AddRow("molecular", "configurable", fmt.Sprintf("%.3f", molAdaptive.Total.Seconds()), share(molAdaptive),
		fmt.Sprintf("%.1f", paperMolecularAdaptiveSecs))

	speedup := rawRun.Total.Seconds() / adaptRun.Total.Seconds()
	notes := []string{
		fmt.Sprintf("volumes: commercial %d bytes, molecular %d bytes (at K=%.0f; paper-implied 20 MiB at K=1)", rawVolume, molVolume, k),
		fmt.Sprintf("commercial speedup %.2fx (paper: %.2fx)", speedup,
			paperCommercialRawSeconds/paperCommercialAdaptiveSeconds),
	}
	if speedup > 1.5 {
		notes = append(notes, "shape holds: configurable compression wins big on commercial data")
	} else {
		notes = append(notes, "SHAPE MISMATCH: expected a large commercial speedup")
	}
	molRatio := molAdaptive.Total.Seconds() / molRaw.Total.Seconds()
	if molRatio > 0.85 {
		notes = append(notes, fmt.Sprintf("shape holds: molecular data gains little or loses (adaptive/raw = %.2f; paper 1.05)", molRatio))
	} else {
		notes = append(notes, fmt.Sprintf("molecular adaptive/raw = %.2f — stronger gain than the paper saw", molRatio))
	}
	return &Report{ID: "conclusion", Title: "End-to-end totals", Tables: []stats.Table{tbl}, Notes: notes}, nil
}
