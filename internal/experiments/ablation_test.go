package experiments

import (
	"strings"
	"testing"
)

func TestAblationMethods(t *testing.T) {
	r := runQuick(t, "ablation-methods")
	noShapeMismatch(t, r)
	tbl := r.Tables[0]
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Structural checks on the two extreme links: on the gigabit link the
	// "none" column must be near the adaptive column (compression cannot
	// pay), and on the international link "none" must be the worst.
	var giga, intl []string
	for _, row := range tbl.Rows {
		switch row[0] {
		case "1GBit":
			giga = row
		case "international":
			intl = row
		}
	}
	if giga == nil || intl == nil {
		t.Fatal("missing link rows")
	}
	gAdaptive, gNone := parseF(t, giga[1]), parseF(t, giga[2])
	if gAdaptive > gNone*1.1 {
		t.Errorf("gigabit: adaptive %.2f should track raw %.2f", gAdaptive, gNone)
	}
	iNone := parseF(t, intl[2])
	for c := 3; c <= 5; c++ {
		if parseF(t, intl[c]) >= iNone {
			t.Errorf("international: fixed method col %d (%.2f) should beat raw (%.2f)",
				c, parseF(t, intl[c]), iNone)
		}
	}
}

func TestAblationThresholds(t *testing.T) {
	r := runQuick(t, "ablation-thresholds")
	tbl := r.Tables[0]
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Extreme thresholds must hurt: the largest scale (effectively "never
	// compress until absurdly slow") must ship more wire bytes than the
	// paper's constants.
	defWire := parseF(t, tbl.Rows[2][2])
	hugeWire := parseF(t, tbl.Rows[len(tbl.Rows)-1][2])
	if hugeWire <= defWire {
		t.Errorf("8x thresholds shipped %.1f%% wire vs default %.1f%% — sweep not discriminating",
			hugeWire, defWire)
	}
}

func TestAblationBlockSize(t *testing.T) {
	r := runQuick(t, "ablation-blocksize")
	tbl := r.Tables[0]
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Tiny blocks must pay visible per-block overhead: worse wire ratio
	// than the paper's size.
	tinyWire := parseF(t, tbl.Rows[0][3])
	paperWire := parseF(t, tbl.Rows[2][3])
	if tinyWire <= paperWire {
		t.Errorf("0.25x blocks wire %.1f%% should exceed paper-size %.1f%%", tinyWire, paperWire)
	}
}

func TestAblationProbeSize(t *testing.T) {
	r := runQuick(t, "ablation-probe")
	tbl := r.Tables[0]
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// A 256-byte probe must misjudge compressibility badly enough to ship
	// more wire bytes than the 4 KB probe.
	tiny := parseF(t, tbl.Rows[0][2])
	paper := parseF(t, tbl.Rows[2][2])
	if tiny <= paper {
		t.Errorf("256 B probe wire %.1f%% should exceed 4 KB probe %.1f%%", tiny, paper)
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSpace(s)
	var v float64
	if _, err := sscan(s, &v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestAblationPolicies(t *testing.T) {
	r := runQuick(t, "ablation-policy")
	tbl := r.Tables[0]
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Both policies must agree on the easy case: compressing commercial
	// data under heavy load, with comparable totals.
	ratioTotal := parseF(t, tbl.Rows[0][2])
	charTotal := parseF(t, tbl.Rows[1][2])
	if charTotal > ratioTotal*1.3 || ratioTotal > charTotal*1.3 {
		t.Errorf("commercial totals diverge: %v vs %v", ratioTotal, charTotal)
	}
}
